// Benchmarks regenerating the paper's tables and figures. Each bench
// runs the corresponding experiment on the simulated machine and reports
// the paper's metric via b.ReportMetric (virtual-time throughput/latency
// — wall-clock ns/op only measures the simulator itself).
//
//	go test -bench=. -benchmem
//
// Mapping: BenchmarkSec22* -> Section 2.2 motivation; BenchmarkFig6* ->
// Figure 6; BenchmarkFig7* -> Figure 7; BenchmarkFig8* -> Figure 8;
// BenchmarkTable4* -> Table 4; BenchmarkAblation* -> DESIGN.md section 5.
// The red-blue queue benches run with real goroutine concurrency.
package memif_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"memif"
	"memif/internal/bench"
	"memif/internal/hw"
	"memif/internal/rbq"
)

func sizeLabel(b int64) string {
	if b >= 1<<20 {
		return fmt.Sprintf("%dMB", b>>20)
	}
	return fmt.Sprintf("%dKB", b>>10)
}

// BenchmarkSec22LinuxMigration reproduces the Section 2.2 baseline
// throughputs (paper: ARM 0.30 GB/s; Xeon 0.66 GB/s; Xeon@1M 1.41 GB/s).
func BenchmarkSec22LinuxMigration(b *testing.B) {
	for _, row := range bench.Sec22() {
		row := row
		name := fmt.Sprintf("%s/pages=%d", row.Platform, row.Pages)
		b.Run(name, func(b *testing.B) {
			var last bench.Sec22Row
			for i := 0; i < b.N; i++ {
				last = row
			}
			b.ReportMetric(last.GBs, "GB/s")
			b.ReportMetric(last.PaperGBs, "paper-GB/s")
		})
	}
}

// BenchmarkFig6 regenerates the Figure 6 cells: per-request breakdown
// time and CPU usage for each system at each page granularity.
func BenchmarkFig6(b *testing.B) {
	for _, size := range []int64{hw.Page4K, hw.Page64K, hw.Page2M} {
		for _, pages := range []int{1, 16, 64} {
			for _, sys := range bench.Systems {
				name := fmt.Sprintf("%s/size=%s/pages=%d", sys, sizeLabel(size), pages)
				b.Run(name, func(b *testing.B) {
					var r bench.Fig6Result
					for i := 0; i < b.N; i++ {
						r = bench.Fig6(sys, size, pages)
					}
					b.ReportMetric(r.Elapsed.Micros(), "elapsed-µs")
					b.ReportMetric(float64(r.CPUBusy)/1e3, "cpu-µs")
					b.ReportMetric(r.CPUUsage*100, "cpu-%")
				})
			}
		}
	}
}

// BenchmarkFig7 regenerates the Figure 7 latency series (paper: memif
// delivers each notification right after its request completes, with one
// syscall; batching trades latency against syscall count).
func BenchmarkFig7(b *testing.B) {
	run := func(name string, fn func() bench.Fig7Series) {
		b.Run(name, func(b *testing.B) {
			var s bench.Fig7Series
			for i := 0; i < b.N; i++ {
				s = fn()
			}
			b.ReportMetric(s.Latency[0].Micros(), "first-µs")
			b.ReportMetric(s.Latency[len(s.Latency)-1].Micros(), "last-µs")
			b.ReportMetric(float64(s.Syscalls), "syscalls")
		})
	}
	run("memif", bench.Fig7Memif)
	run("linux-batch1", func() bench.Fig7Series { return bench.Fig7Linux(1) })
	run("linux-batch4", func() bench.Fig7Series { return bench.Fig7Linux(4) })
	run("linux-batch8", func() bench.Fig7Series { return bench.Fig7Linux(8) })
}

// BenchmarkFig8 regenerates the Figure 8 throughput bars (paper: memif
// beats migspeed by >=40% on small pages outside the 1-page extreme and
// by up to ~3x on 2MB pages; replication beats migration).
func BenchmarkFig8(b *testing.B) {
	for _, size := range []int64{hw.Page4K, hw.Page64K, hw.Page2M} {
		for _, pages := range []int{1, 16, 64} {
			for _, sys := range bench.Systems {
				name := fmt.Sprintf("%s/size=%s/pages=%d", sys, sizeLabel(size), pages)
				b.Run(name, func(b *testing.B) {
					var r bench.Fig8Result
					for i := 0; i < b.N; i++ {
						r = bench.Fig8(sys, size, pages)
					}
					b.ReportMetric(r.GBs, "GB/s")
				})
			}
		}
	}
}

// BenchmarkTable4 regenerates the streaming case study (paper: pgain
// 1440->1778 MB/s, triad 2384->3184, add 2390->3187).
func BenchmarkTable4(b *testing.B) {
	for _, k := range []memif.StreamKernel{memif.KernelPGain, memif.KernelTriad, memif.KernelAdd} {
		k := k
		b.Run(k.Name, func(b *testing.B) {
			var row bench.Table4Row
			for i := 0; i < b.N; i++ {
				row = bench.Table4Run(k)
			}
			b.ReportMetric(row.LinuxMBs, "linux-MB/s")
			b.ReportMetric(row.MemifMBs, "memif-MB/s")
			b.ReportMetric(row.GainPct, "gain-%")
		})
	}
}

// Ablation benches: the design choices DESIGN.md calls out.

func reportAblation(b *testing.B, fn func() bench.AblationResult) {
	var a bench.AblationResult
	for i := 0; i < b.N; i++ {
		a = fn()
	}
	b.ReportMetric(a.On, "on")
	b.ReportMetric(a.Off, "off")
	b.ReportMetric(a.Factor(), "off/on")
}

// BenchmarkAblationGangLookup: Section 5.1 gang page lookup vs per-page
// vertical walks.
func BenchmarkAblationGangLookup(b *testing.B) { reportAblation(b, bench.AblateGangLookup) }

// BenchmarkAblationDescReuse: Section 5.3 descriptor-chain reuse vs full
// writes.
func BenchmarkAblationDescReuse(b *testing.B) { reportAblation(b, bench.AblateDescReuse) }

// BenchmarkAblationRaceHandling: Section 5.2 race detection vs
// prevention.
func BenchmarkAblationRaceHandling(b *testing.B) { reportAblation(b, bench.AblateRaceHandling) }

// BenchmarkAblationIrqVsPoll: Section 5.4 adaptive completion vs
// all-interrupt.
func BenchmarkAblationIrqVsPoll(b *testing.B) { reportAblation(b, bench.AblateIrqVsPoll) }

// BenchmarkMultiApp measures concurrent applications over one engine
// (beyond the paper; Section 6.7 left it unevaluated).
func BenchmarkMultiApp(b *testing.B) {
	cases := []struct {
		name  string
		size  int64
		pages int
	}{{"cpu-bound-4KBx16", 4 << 10, 16}, {"dma-bound-2MBx4", 2 << 20, 4}}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var r bench.MultiAppResult
			for i := 0; i < b.N; i++ {
				r = bench.MultiApp(2, c.size, c.pages)
			}
			b.ReportMetric(r.SoloGBs, "solo-GB/s")
			b.ReportMetric(r.TotalGBs, "total-GB/s")
		})
	}
}

// BenchmarkLimitations measures the Section 6.7 negative result:
// compute-bound workloads gain little.
func BenchmarkLimitations(b *testing.B) {
	var rows []bench.LimitationRow
	for i := 0; i < b.N; i++ {
		rows = bench.Limitations()
	}
	for _, r := range rows {
		b.ReportMetric(r.GainPct, r.Workload+"-gain-%")
	}
}

// BenchmarkProjection measures the projected-platform outlook of
// Section 6.7 (1 GB fast node, 64 KB pages).
func BenchmarkProjection(b *testing.B) {
	var rows []bench.ProjectionRow
	for i := 0; i < b.N; i++ {
		rows = bench.Projection()
	}
	for _, r := range rows {
		b.ReportMetric(r.FutureMBs, r.Workload+"-MB/s")
	}
}

// BenchmarkTLBIndirect measures the indirect TLB cost of migration
// flushes (Section 5.2).
func BenchmarkTLBIndirect(b *testing.B) {
	var r bench.TLBIndirectResult
	for i := 0; i < b.N; i++ {
		r = bench.TLBIndirect()
	}
	b.ReportMetric(r.MissesMigrating, "misses/scan")
	b.ReportMetric(r.OverheadPct, "scan-overhead-%")
}

// BenchmarkGuidance measures user-guided vs reactive-transparent
// placement (the Section 2.1 argument).
func BenchmarkGuidance(b *testing.B) {
	var r bench.GuidanceResult
	for i := 0; i < b.N; i++ {
		r = bench.Guidance()
	}
	b.ReportMetric(r.StaticMBs, "static-MB/s")
	b.ReportMetric(r.GuidedMBs, "guided-MB/s")
	b.ReportMetric(r.AdvisorMBs, "advisor-MB/s")
}

// BenchmarkRedBlueQueue measures the real (wall-clock, multi-goroutine)
// red-blue queue under the memif submit pattern.
func BenchmarkRedBlueQueue(b *testing.B) {
	for _, procs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", procs), func(b *testing.B) {
			s := rbq.NewSlab(1 << 16)
			q := s.NewQueue(rbq.Blue)
			b.SetParallelism(procs)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if c, ok := q.Enqueue(7); ok && c == rbq.Blue {
						q.Drain(func(uint32) {})
					}
				}
			})
		})
	}
}

// BenchmarkRealtimeThroughput measures the realtime device (real
// goroutines, real memcpy) streaming copies through the memif protocol.
func BenchmarkRealtimeThroughput(b *testing.B) {
	for _, blockKB := range []int{64, 1024} {
		blockKB := blockKB
		b.Run(fmt.Sprintf("block=%dKB", blockKB), func(b *testing.B) {
			d := memif.OpenRealtime(memif.DefaultRealtimeOptions())
			defer d.Close()
			src := make([]byte, blockKB<<10)
			dst := make([]byte, blockKB<<10)
			b.SetBytes(int64(blockKB) << 10)
			b.ResetTimer()
			outstanding := 0
			for i := 0; i < b.N; i++ {
				var r *memif.RealtimeRequest
				for r == nil {
					if got := d.RetrieveCompleted(); got != nil {
						d.FreeRequest(got)
						outstanding--
						continue
					}
					if r = d.AllocRequest(); r == nil {
						d.Poll(time.Second)
					}
				}
				r.Src, r.Dst = src, dst
				if err := d.Submit(r); err != nil {
					b.Fatal(err)
				}
				outstanding++
			}
			for outstanding > 0 {
				if got := d.RetrieveCompleted(); got != nil {
					d.FreeRequest(got)
					outstanding--
					continue
				}
				d.Poll(time.Second)
			}
			b.StopTimer()
		})
	}
}

// BenchmarkAblationRedBlue compares the red-blue queue (color entangled
// in the CAS'd links) against the alternative the paper rejects: a
// vanilla lock-free queue plus a flag that needs a mutex to stay
// consistent with the queue (Section 4.2 "Why a red-blue queue?").
func BenchmarkAblationRedBlue(b *testing.B) {
	b.Run("redblue", func(b *testing.B) {
		s := rbq.NewSlab(1 << 16)
		q := s.NewQueue(rbq.Blue)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c, _ := q.Enqueue(1)
				if c == rbq.Blue {
					q.Drain(func(uint32) {})
					q.SetColor(rbq.Red)
					q.SetColor(rbq.Blue)
				}
			}
		})
	})
	b.Run("vanilla+mutex-flag", func(b *testing.B) {
		s := rbq.NewSlab(1 << 16)
		q := s.NewQueue(rbq.Blue)
		var mu sync.Mutex
		flag := rbq.Blue
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				// The flag must be read atomically with the enqueue,
				// which forces the lock around the whole operation.
				mu.Lock()
				q.Enqueue(1)
				c := flag
				if c == rbq.Blue {
					q.Drain(func(uint32) {})
					flag = rbq.Red
					flag = rbq.Blue
				}
				mu.Unlock()
			}
		})
	})
}
