package memif_test

import (
	"bytes"
	"testing"

	"memif"
)

// TestFigure2Flow exercises the public facade end to end, following the
// structure of the paper's Figure 2 example.
func TestFigure2Flow(t *testing.T) {
	m := memif.NewMachine(memif.KeyStoneII())
	ran := false
	m.Eng.Spawn("app", func(p *memif.Proc) {
		as := m.NewAddressSpace(memif.Page4K)
		dev := memif.Open(m, as, memif.DefaultOptions())
		defer dev.Close()

		const n = 64 << 10
		src, err := as.Mmap(p, n, memif.NodeSlow, "src")
		if err != nil {
			t.Fatal(err)
		}
		dst, err := as.Mmap(p, n, memif.NodeFast, "dst")
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte{0xA5, 0x5A}, n/2)
		if err := as.Write(p, src, payload); err != nil {
			t.Fatal(err)
		}

		for i := 0; i < 10; i++ {
			req := dev.AllocRequest(p)
			if req == nil {
				t.Fatal("AllocRequest failed")
			}
			req.Op = memif.OpReplicate
			req.SrcBase, req.DstBase, req.Length = src, dst, n
			if err := dev.Submit(p, req); err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
		}
		done := 0
		for done < 10 {
			if req := dev.RetrieveCompleted(p); req != nil {
				if req.Status != memif.StatusDone {
					t.Fatalf("completion: %v", req)
				}
				dev.FreeRequest(p, req)
				done++
				continue
			}
			dev.Poll(p, 0)
		}
		got := make([]byte, n)
		if err := as.Read(p, dst, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Error("replica differs from source")
		}
		if s := dev.Stats().Syscalls; s < 1 || s > 3 {
			t.Errorf("syscalls = %d for a 10-request burst", s)
		}
		ran = true
	})
	m.Eng.Run()
	if !ran {
		t.Fatal("app never ran")
	}
}

// TestMigrationViaFacade checks the migration path and race constants
// through the facade.
func TestMigrationViaFacade(t *testing.T) {
	m := memif.NewMachine(memif.KeyStoneII())
	m.Eng.Spawn("app", func(p *memif.Proc) {
		as := m.NewAddressSpace(memif.Page4K)
		opts := memif.DefaultOptions()
		opts.RaceMode = memif.RaceDetect
		dev := memif.Open(m, as, opts)
		defer dev.Close()

		base, _ := as.Mmap(p, 128<<10, memif.NodeSlow, "w")
		req := dev.AllocRequest(p)
		req.Op = memif.OpMigrate
		req.SrcBase, req.Length, req.DstNode = base, 128<<10, memif.NodeFast
		if err := dev.Submit(p, req); err != nil {
			t.Fatal(err)
		}
		dev.Poll(p, 0)
		got := dev.RetrieveCompleted(p)
		if got == nil || got.Status != memif.StatusDone || got.Err != memif.ErrNone {
			t.Fatalf("completion = %v", got)
		}
		if f := as.FrameAt(base); f == nil || f.Node != memif.NodeFast {
			t.Errorf("page not on fast node: %v", f)
		}
	})
	m.Eng.Run()
}

// TestRedBlueFacade exercises the standalone queue export.
func TestRedBlueFacade(t *testing.T) {
	s := memif.NewQueueSlab(16)
	q := s.NewQueue(memif.Blue)
	if c, ok := q.Enqueue(42); !ok || c != memif.Blue {
		t.Fatalf("enqueue = %v,%v", c, ok)
	}
	v, c, ok := q.Dequeue()
	if !ok || v != 42 || c != memif.Blue {
		t.Fatalf("dequeue = %d,%v,%v", v, c, ok)
	}
	if _, ok := q.SetColor(memif.Red); !ok {
		t.Fatal("SetColor on empty queue failed")
	}
}
