// memif-bench regenerates the tables and figures of the memif paper's
// evaluation (Section 6) on the simulated KeyStone II machine.
//
// Usage:
//
//	memif-bench [command]
//
// Commands:
//
//	platform   print the test platform (Table 2)
//	sloc       count this repository's source lines (Table 3 analogue)
//	sec2       Linux page-migration throughput motivation (Section 2.2)
//	fig6       per-request time breakdown and CPU usage (Figure 6)
//	fig7       request latency, memif vs batched syscalls (Figure 7)
//	fig8       move throughput across page granularities (Figure 8)
//	table4     streaming workloads on the mini runtime (Table 4)
//	ablate     design-choice ablations (DESIGN.md section 5)
//	extra      beyond the paper: multi-app sharing, compute-bound limits
//	all        everything above (default)
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"memif/internal/bench"
)

func main() {
	cmd := "all"
	if len(os.Args) > 1 {
		cmd = os.Args[1]
	}
	w := os.Stdout
	run := func(name string, fn func()) {
		if cmd == name || cmd == "all" {
			fn()
			fmt.Fprintln(w)
		}
	}
	known := map[string]bool{"platform": true, "sloc": true, "sec2": true,
		"fig6": true, "fig7": true, "fig8": true, "table4": true,
		"ablate": true, "extra": true, "all": true}
	if !known[cmd] {
		fmt.Fprintf(os.Stderr, "memif-bench: unknown command %q\n", cmd)
		fmt.Fprintln(os.Stderr, "commands: platform sloc sec2 fig6 fig7 fig8 table4 ablate extra all")
		os.Exit(2)
	}

	run("platform", func() { bench.ReportPlatform(w) })
	run("sloc", func() {
		root := "."
		if _, err := os.Stat("go.mod"); err != nil {
			root = findRepoRoot()
		}
		if err := bench.ReportSLoC(w, root); err != nil {
			fmt.Fprintf(os.Stderr, "sloc: %v\n", err)
		}
	})
	run("sec2", func() { bench.ReportSec22(w, bench.Sec22()) })
	run("fig6", func() { bench.ReportFig6(w, bench.Fig6Sweep()) })
	run("fig7", func() { bench.ReportFig7(w, bench.Fig7()) })
	run("fig8", func() { bench.ReportFig8(w, bench.Fig8Sweep()) })
	run("table4", func() { bench.ReportTable4(w, bench.Table4()) })
	run("ablate", func() { bench.ReportAblations(w, bench.Ablations()) })
	run("extra", func() {
		rows := []bench.MultiAppResult{
			bench.MultiApp(2, 4<<10, 16),
			bench.MultiApp(2, 2<<20, 4),
		}
		bench.ReportMultiApp(w, rows, []string{"4KB x16 (CPU-bound)", "2MB x4 (DMA-bound)"})
		fmt.Fprintln(w)
		bench.ReportLimitations(w, bench.Limitations())
		fmt.Fprintln(w)
		bench.ReportProjection(w, bench.Projection())
		fmt.Fprintln(w)
		bench.ReportTLBIndirect(w, bench.TLBIndirect())
		fmt.Fprintln(w)
		bench.ReportGuidance(w, bench.Guidance())
	})
}

// findRepoRoot walks up from the working directory to the module root.
func findRepoRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}
