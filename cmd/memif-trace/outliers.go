package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"memif/internal/obs/flight"
	"memif/internal/obs/lifecycle"
	"memif/internal/obs/obshttp"
)

// The -outliers mode: fetch a /debug/outliers document (URL or a saved
// file) and print the top-K captured tail requests as a table with
// per-stage attribution — which pipeline edge ate the latency — plus a
// one-line summary of stall and domain-event records per source.

// stageEdge is one attributable edge of the seven-stage stamp vector.
type stageEdge struct {
	name     string
	from, to lifecycle.Stage
}

// outlierEdges attributes the full submit→retrieved window; unlike the
// histogram spans it includes the dispatch→copy-start and
// copy-end→completion gaps so the columns sum to the total latency.
var outlierEdges = []stageEdge{
	{"staging_wait", lifecycle.StageSubmit, lifecycle.StageFlushed},
	{"dispatch_wait", lifecycle.StageFlushed, lifecycle.StageDispatched},
	{"chunk_queue", lifecycle.StageDispatched, lifecycle.StageCopyStart},
	{"copy", lifecycle.StageCopyStart, lifecycle.StageCopyEnd},
	{"post", lifecycle.StageCopyEnd, lifecycle.StageCompleted},
	{"completion_dwell", lifecycle.StageCompleted, lifecycle.StageRetrieved},
}

// edgeDurations extracts each edge's duration from a stamp vector;
// edges with a missing endpoint come back -1 (rendered as "-").
func edgeDurations(ts [lifecycle.NumStages]int64) []int64 {
	out := make([]int64, len(outlierEdges))
	for i, e := range outlierEdges {
		if ts[e.from] == 0 || ts[e.to] == 0 {
			out[i] = -1
			continue
		}
		d := ts[e.to] - ts[e.from]
		if d < 0 {
			d = 0
		}
		out[i] = d
	}
	return out
}

// fetchOutliers loads the outlier document from an http(s) URL or a
// local file path.
func fetchOutliers(from string) ([]obshttp.OutlierReport, error) {
	var body []byte
	if strings.HasPrefix(from, "http://") || strings.HasPrefix(from, "https://") {
		resp, err := http.Get(from)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: %s", from, resp.Status)
		}
		if body, err = io.ReadAll(resp.Body); err != nil {
			return nil, err
		}
	} else {
		var err error
		if body, err = os.ReadFile(from); err != nil {
			return nil, err
		}
	}
	var reports []obshttp.OutlierReport
	if err := json.Unmarshal(body, &reports); err != nil {
		return nil, fmt.Errorf("not a /debug/outliers document: %w", err)
	}
	return reports, nil
}

// sourcedOutlier pairs a record with the recorder it came from.
type sourcedOutlier struct {
	source string
	o      flight.Outlier
}

// showOutliers renders the top-K latency outliers across every source.
func showOutliers(from string, topK int) error {
	reports, err := fetchOutliers(from)
	if err != nil {
		return err
	}
	var rows []sourcedOutlier
	for _, rep := range reports {
		fs := rep.Flight
		armed := "armed"
		if !fs.Enabled {
			armed = "disarmed"
		}
		fmt.Printf("source %-10s %s  ring %d  breaches %d  stalls %d  events %d  captured %d\n",
			rep.Source, armed, fs.RingDepth, fs.Breaches, fs.Stalls, fs.Events, fs.Captured)
		for _, o := range fs.Outliers {
			switch o.Kind {
			case flight.KindLatency:
				rows = append(rows, sourcedOutlier{rep.Source, o})
			case flight.KindStall, flight.KindEvent:
				fmt.Printf("  %-8s %-18s at %12dns  depth %d  inflight %v\n",
					o.Kind, o.Reason, o.Nano, o.Ambient.SubmissionDepth, o.Ambient.ClassInFlight)
			}
		}
	}
	if len(rows) == 0 {
		fmt.Println("\nno latency outliers captured")
		return nil
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].o.LatencyNs > rows[j].o.LatencyNs })
	total := len(rows)
	if len(rows) > topK {
		rows = rows[:topK]
	}

	fmt.Printf("\ntop %d latency outliers (of %d retained), worst first:\n\n", len(rows), total)
	fmt.Printf("%-10s %5s %6s %7s %10s %12s %12s  %-22s", "source", "seq", "class", "tenant", "bytes", "latency", "threshold", "dominant stage")
	for _, e := range outlierEdges {
		fmt.Printf(" %13s", e.name)
	}
	fmt.Println()
	for _, r := range rows {
		o := r.o
		durs := edgeDurations(o.TS)
		domIdx, domDur := -1, int64(-1)
		for i, d := range durs {
			if d > domDur {
				domIdx, domDur = i, d
			}
		}
		dom := "-"
		if domIdx >= 0 && domDur >= 0 && o.LatencyNs > 0 {
			dom = fmt.Sprintf("%s (%2.0f%%)", outlierEdges[domIdx].name,
				100*float64(domDur)/float64(o.LatencyNs))
		}
		fmt.Printf("%-10s %5d %6d %7d %10d %12v %12v  %-22s",
			r.source, o.Seq, o.Class, o.Tenant, o.Bytes,
			time.Duration(o.LatencyNs), time.Duration(o.ThresholdNs), dom)
		for _, d := range durs {
			if d < 0 {
				fmt.Printf(" %13s", "-")
			} else {
				fmt.Printf(" %13v", time.Duration(d))
			}
		}
		fmt.Println()
	}
	return nil
}

// checkOutliers validates a saved /debug/outliers document for CI: at
// least one armed source, every retained latency record internally
// consistent (breach above its threshold, complete monotone stamp
// vector), and any source that counted breaches must retain evidence.
func checkOutliers(path string) error {
	reports, err := fetchOutliers(path)
	if err != nil {
		return err
	}
	if len(reports) == 0 {
		return fmt.Errorf("document lists no flight sources")
	}
	armed, latRecords := 0, 0
	for _, rep := range reports {
		fs := rep.Flight
		if !fs.Enabled {
			continue
		}
		armed++
		if fs.Captured != fs.Breaches+fs.Stalls+fs.Events {
			return fmt.Errorf("source %s: captured %d != breaches %d + stalls %d + events %d",
				rep.Source, fs.Captured, fs.Breaches, fs.Stalls, fs.Events)
		}
		retained := int64(0)
		for _, o := range fs.Outliers {
			if o.Kind != flight.KindLatency {
				continue
			}
			latRecords++
			retained++
			if o.LatencyNs <= o.ThresholdNs {
				return fmt.Errorf("source %s seq %d: latency %d within threshold %d — not a breach",
					rep.Source, o.Seq, o.LatencyNs, o.ThresholdNs)
			}
			prev := int64(0)
			for st, ts := range o.TS {
				if ts == 0 {
					return fmt.Errorf("source %s seq %d: missing stage %s stamp",
						rep.Source, o.Seq, lifecycle.Stage(st))
				}
				if ts < prev {
					return fmt.Errorf("source %s seq %d: stage %s stamp %d before %d",
						rep.Source, o.Seq, lifecycle.Stage(st), ts, prev)
				}
				prev = ts
			}
		}
		if fs.Breaches > 0 && retained == 0 {
			return fmt.Errorf("source %s: %d breaches counted but no latency records retained",
				rep.Source, fs.Breaches)
		}
	}
	if armed == 0 {
		return fmt.Errorf("no armed flight source in document")
	}
	if latRecords == 0 {
		return fmt.Errorf("no latency outliers retained by any source")
	}
	fmt.Printf("memif-trace: %s holds %d consistent latency outliers across %d armed sources\n",
		path, latRecords, armed)
	return nil
}
