package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"memif/internal/core"
	"memif/internal/hw"
	"memif/internal/machine"
	"memif/internal/obs/flight"
	"memif/internal/obs/lifecycle"
	"memif/internal/obs/obshttp"
	"memif/internal/realtime"
	"memif/internal/sim"
	"memif/internal/streamrt"
	"memif/internal/swapd"
	"memif/internal/uapi"
	"memif/internal/workloads"
)

// runServe populates all three instrumented subsystems — the realtime
// device (wall clock, full lifecycle capture), the swap daemon and the
// streaming runtime (virtual clock, stage stamps) — then serves their
// combined observability on addr: /metrics, /trace, /debug/pprof/*.
// A positive serveFor shuts the server down after that long (CI smoke);
// zero serves until killed.
func runServe(addr string, serveFor time.Duration, reqs, bytesPer int) {
	// Realtime: a burst of real copies with every lifecycle captured.
	// The chaos hook injects a delay into a few designated requests
	// after the burst so the flight recorder always holds outliers.
	var delayCopies atomic.Bool
	opts := realtime.DefaultOptions()
	opts.TraceFullCapture = true
	// The warmup burst below is only `reqs` (default 8) requests; the
	// recorder's default warmup gate (16) would leave the foreground
	// lane cold and the provoked stragglers breach-proof. Serve mode is
	// a smoke demo, so warm the lane on half the burst.
	opts.Flight.Warmup = int64(reqs) / 2
	if opts.Flight.Warmup < 1 {
		opts.Flight.Warmup = 1
	}
	opts.Chaos = &realtime.ChaosHooks{
		BeforeChunkCopy: func(idx uint32, off, end int) {
			if delayCopies.Load() {
				time.Sleep(25 * time.Millisecond)
			}
		},
	}
	d := realtime.Open(opts)
	src := make([]byte, bytesPer)
	dsts := make([][]byte, reqs)
	for i := 0; i < reqs; i++ {
		dsts[i] = make([]byte, bytesPer)
		r := d.AllocRequest()
		if r == nil {
			fmt.Fprintln(os.Stderr, "memif-trace: out of request slots")
			os.Exit(1)
		}
		r.Src, r.Dst = src, dsts[i]
		if err := d.Submit(r); err != nil {
			fmt.Fprintf(os.Stderr, "memif-trace: submit %d: %v\n", i, err)
			os.Exit(1)
		}
	}
	for done := 0; done < reqs; {
		r := d.RetrieveCompleted()
		if r == nil {
			d.Poll(time.Second)
			continue
		}
		d.FreeRequest(r)
		done++
	}
	defer d.Close()

	// The burst above trained the flight recorder's adaptive
	// threshold; a few chaos-delayed stragglers now breach it far past
	// any plausible EWMA, so /debug/outliers always has forensic
	// records to show.
	delayCopies.Store(true)
	dst := make([]byte, bytesPer)
	for i := 0; i < 4; i++ {
		r := d.AllocRequest()
		if r == nil {
			break
		}
		r.Src, r.Dst = src, dst
		if err := d.Submit(r); err != nil {
			fmt.Fprintf(os.Stderr, "memif-trace: outlier submit: %v\n", err)
			os.Exit(1)
		}
		for {
			if got := d.RetrieveCompleted(); got != nil {
				d.FreeRequest(got)
				break
			}
			d.Poll(time.Second)
		}
	}
	delayCopies.Store(false)

	swSnap, stSnap, engSnap := runSimScenario()

	h := obshttp.NewHandler()
	h.Register(obshttp.RealtimeCollector("rt0", d))
	h.Register(func() []obshttp.Metric { return obshttp.SwapdMetrics("swapd0", swSnap) })
	h.Register(func() []obshttp.Metric { return obshttp.StreamMetrics("stream0", stSnap) })
	h.Register(func() []obshttp.Metric { return obshttp.StreamEngineMetrics("eng0", engSnap) })
	h.RegisterTrace("realtime", func() []lifecycle.Lifecycle {
		return d.Stats().Lifecycle.Captured
	})
	h.RegisterOutliers("realtime", d.FlightSnapshot)
	h.RegisterOutliers("swapd", func() flight.Snapshot { return swSnap.Flight })
	h.RegisterOutliers("streams", func() flight.Snapshot { return engSnap.Flight })

	srv := &http.Server{Addr: addr, Handler: h}
	fmt.Fprintf(os.Stderr, "memif-trace: serving http://%s/{metrics,trace,debug/outliers,debug/pprof/}\n", addr)
	if serveFor > 0 {
		go func() {
			time.Sleep(serveFor)
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
	}
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "memif-trace: serve: %v\n", err)
		os.Exit(1)
	}
}

// runSimScenario exercises the simulated stack enough to populate the
// swap daemon's and streaming runtime's stage histograms: an
// over-committed working set forces evictions, then a stream engine
// runs Triad and Add concurrently through one prefetch ring, with its
// flight recorder set aggressive so /debug/outliers has stream-fill
// records to serve.
func runSimScenario() (swapd.MetricsSnapshot, streamrt.MetricsSnapshot, streamrt.EngineSnapshot) {
	const bufBytes = 1 << 20

	// Swap-out pressure: 10 x 1 MB promoted into the 6 MB fast node.
	m := machine.New(hw.KeyStoneII())
	as := m.NewAddressSpace(hw.Page4K)
	dev := core.Open(m, as, core.DefaultOptions())
	sd := swapd.New(dev, swapd.DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer dev.Close()
		defer sd.Stop()
		bases := make([]int64, 10)
		for i := range bases {
			b, err := as.Mmap(p, bufBytes, hw.NodeSlow, fmt.Sprintf("buf%d", i))
			if err != nil {
				fmt.Fprintf(os.Stderr, "memif-trace: mmap: %v\n", err)
				return
			}
			bases[i] = b
		}
		for round := 0; round < 3; round++ {
			for _, base := range bases {
				if f := as.FrameAt(base); f == nil || f.Node != hw.NodeFast {
					r := dev.AllocRequest(p)
					if r == nil {
						continue
					}
					r.Op = uapi.OpMigrate
					r.SrcBase, r.Length, r.DstNode = base, bufBytes, hw.NodeFast
					if err := dev.Submit(p, r); err != nil {
						dev.FreeRequest(p, r)
						continue
					}
					for {
						if got := dev.RetrieveCompleted(p); got != nil {
							dev.FreeRequest(p, got)
							break
						}
						dev.Poll(p, 0)
					}
				}
				sd.Register(base, bufBytes)
				sd.Touch(base, p.Now())
				p.SleepNS(2_000_000) // let daemon periods pass
			}
		}
	})
	m.Eng.Run()

	// Streaming: Triad and Add multiplexed over one engine's prefetch
	// ring. The flight thresholds are floored at 1 ns so ordinary fills
	// breach and the outlier ring fills with stream-fill forensics.
	m2 := machine.New(hw.KeyStoneII())
	as2 := m2.NewAddressSpace(hw.Page4K)
	dev2 := core.Open(m2, as2, core.DefaultOptions())
	eopts := streamrt.DefaultEngineOptions()
	eopts.Metrics = &streamrt.Metrics{}
	eopts.Flight = flight.Options{ThresholdFloorNs: 1, ThresholdMult: 1, Warmup: 4, RingDepth: 64}
	var engSnap streamrt.EngineSnapshot
	m2.Eng.Spawn("app", func(p *sim.Proc) {
		defer dev2.Close()
		eng, err := streamrt.OpenEngine(p, dev2, eopts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memif-trace: open engine: %v\n", err)
			return
		}
		length := int64(16) * eopts.BufBytes
		kernels := []workloads.Kernel{workloads.Triad, workloads.Add}
		done := 0
		for i, k := range kernels {
			base, err := as2.Mmap(p, length, hw.NodeSlow, fmt.Sprintf("input%d", i))
			if err != nil {
				fmt.Fprintf(os.Stderr, "memif-trace: mmap: %v\n", err)
				return
			}
			workloads.FillInput(p, as2, base, length, uint64(i)+42)
			s, err := eng.OpenStream(p, streamrt.StreamSpec{
				Kernel: k, Base: base, Length: length,
				Class: uapi.ClassBackground, Credits: 2, Name: k.Name,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "memif-trace: open stream: %v\n", err)
				return
			}
			m2.Eng.Spawn(k.Name, func(cp *sim.Proc) {
				if _, err := s.Run(cp); err != nil {
					fmt.Fprintf(os.Stderr, "memif-trace: stream %s: %v\n", k.Name, err)
				}
				done++
			})
		}
		for done < len(kernels) {
			p.SleepNS(500_000)
		}
		eng.Close(p)
		engSnap = eng.Snapshot()
	})
	m2.Eng.Run()

	sw := sd.Metrics()
	if sw.Evictions == 0 {
		fmt.Fprintln(os.Stderr, "memif-trace: warning: sim scenario produced no evictions")
	}
	return sw, eopts.Metrics.Snapshot(), engSnap
}

// stageFamilies are the per-subsystem stage-histogram families the
// acceptance checks require, with the spans every pipeline must have
// attributed at least once.
var stageFamilies = []string{
	"memif_realtime_stage_latency_ns",
	"memif_swapd_stage_latency_ns",
	"memif_stream_stage_latency_ns",
}

var requiredStages = []string{"staging_wait", "dispatch_wait", "copy", "completion_dwell"}

// checkMetrics validates a scraped /metrics body: well-formed
// Prometheus exposition carrying populated per-stage histograms for the
// realtime device, the swap daemon and the streaming runtime.
func checkMetrics(path string) error {
	body, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := obshttp.ParseExposition(body); err != nil {
		return fmt.Errorf("exposition invalid: %w", err)
	}
	lines := strings.Split(string(body), "\n")
	for _, fam := range stageFamilies {
		for _, stage := range requiredStages {
			want := fmt.Sprintf("stage=%q", stage)
			found := false
			for _, ln := range lines {
				if !strings.HasPrefix(ln, fam+"_count{") || !strings.Contains(ln, want) {
					continue
				}
				val := ln[strings.LastIndexByte(ln, ' ')+1:]
				n, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return fmt.Errorf("%s stage %s: bad count %q", fam, stage, val)
				}
				if n > 0 {
					found = true
				}
				break
			}
			if !found {
				return fmt.Errorf("%s has no samples for stage %s", fam, stage)
			}
		}
	}
	fmt.Printf("memif-trace: %s is a valid exposition with per-stage histograms for all subsystems\n", path)
	return nil
}

// checkTrace validates a downloaded /trace body: Chrome trace_event
// JSON with at least one complete ("X") span event.
func checkTrace(path string) error {
	body, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("not valid trace_event JSON: %w", err)
	}
	spans := 0
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			if ev.TS < 0 || ev.Dur < 0 {
				return fmt.Errorf("event %s has negative ts/dur (%f/%f)", ev.Name, ev.TS, ev.Dur)
			}
			spans++
		}
	}
	if spans == 0 {
		return fmt.Errorf("trace has no complete events (%d events total)", len(doc.TraceEvents))
	}
	fmt.Printf("memif-trace: %s is a valid Chrome trace with %d span events\n", path, spans)
	return nil
}
