// memif-trace runs a short memif scenario on the simulated KeyStone II
// machine and prints a request-level timeline: when each request was
// submitted, when its notification was posted, its latency, and where
// the driver spent the time — a quick way to see the asynchronous
// pipeline (one kick-start syscall, worker/interrupt handoffs,
// DMA overlap) at work.
//
// Usage:
//
//	memif-trace [-reqs N] [-pages N] [-op migrate|replicate] [-race detect|recover|prevent] [-v]
//	memif-trace -rt [-reqs N] [-rt-bytes N] [-rt-controllers N] [-rt-chunk N] [-rt-trace N]
//	memif-trace -serve :9090 [-serve-for 30s] [-reqs N] [-rt-bytes N]
//	memif-trace -outliers http://host:9090/debug/outliers [-top K]
//	memif-trace -check-metrics metrics.txt
//	memif-trace -check-trace trace.json
//	memif-trace -check-outliers outliers.json
//
// With -serve the tool exercises all three instrumented subsystems (a
// realtime burst with full lifecycle capture, a swap-out scenario, a
// streaming run) and serves their combined observability over HTTP:
// /metrics (Prometheus text format), /trace (Chrome trace_event JSON
// for chrome://tracing or Perfetto), /debug/pprof/*. The -check-*
// modes validate files scraped from those endpoints, for CI.
//
// With -v the engine's process-dispatch trace is streamed too, showing
// every app/worker/interrupt context switch in virtual time.
//
// With -rt the scenario runs on the realtime device instead — real
// goroutines, real copies, wall-clock time — and prints its obs layer:
// outcome counters, latency/size histograms, queue watermarks, and (with
// -rt-trace) the ring-buffer event trace of the submit / kick / dispatch
// / chunk / complete edges.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"memif/internal/core"
	"memif/internal/hw"
	"memif/internal/machine"
	"memif/internal/obs"
	"memif/internal/realtime"
	"memif/internal/sim"
	"memif/internal/uapi"
)

func main() {
	reqs := flag.Int("reqs", 8, "requests to submit")
	pages := flag.Int("pages", 16, "4KB pages per request")
	op := flag.String("op", "migrate", "operation: migrate or replicate")
	race := flag.String("race", "detect", "race policy: detect, recover or prevent")
	verbose := flag.Bool("v", false, "stream the engine's context-switch trace")
	rt := flag.Bool("rt", false, "run on the realtime device (real goroutines and copies)")
	rtBytes := flag.Int("rt-bytes", 4<<20, "realtime: bytes per request")
	rtControllers := flag.Int("rt-controllers", 0, "realtime: transfer controllers (0 = default)")
	rtChunk := flag.Int("rt-chunk", 0, "realtime: chunk bytes (0 = default, <0 disables chunking)")
	rtTrace := flag.Int("rt-trace", 32, "realtime: event-trace ring depth (0 disables)")
	serveAddr := flag.String("serve", "", "serve /metrics, /trace and /debug/pprof on this address")
	serveFor := flag.Duration("serve-for", 0, "with -serve: shut down after this long (0 = forever)")
	checkMetricsPath := flag.String("check-metrics", "", "validate a scraped /metrics file and exit")
	checkTracePath := flag.String("check-trace", "", "validate a downloaded /trace file and exit")
	outliersFrom := flag.String("outliers", "", "render a /debug/outliers URL or saved file as a top-K table and exit")
	topK := flag.Int("top", 10, "with -outliers: how many outliers to show")
	checkOutliersPath := flag.String("check-outliers", "", "validate a downloaded /debug/outliers file and exit")
	flag.Parse()

	if *outliersFrom != "" {
		if err := showOutliers(*outliersFrom, *topK); err != nil {
			fmt.Fprintf(os.Stderr, "memif-trace: outliers %s: %v\n", *outliersFrom, err)
			os.Exit(1)
		}
		return
	}
	if *checkOutliersPath != "" {
		if err := checkOutliers(*checkOutliersPath); err != nil {
			fmt.Fprintf(os.Stderr, "memif-trace: check-outliers %s: %v\n", *checkOutliersPath, err)
			os.Exit(1)
		}
		return
	}
	if *checkMetricsPath != "" || *checkTracePath != "" {
		if *checkMetricsPath != "" {
			if err := checkMetrics(*checkMetricsPath); err != nil {
				fmt.Fprintf(os.Stderr, "memif-trace: check-metrics %s: %v\n", *checkMetricsPath, err)
				os.Exit(1)
			}
		}
		if *checkTracePath != "" {
			if err := checkTrace(*checkTracePath); err != nil {
				fmt.Fprintf(os.Stderr, "memif-trace: check-trace %s: %v\n", *checkTracePath, err)
				os.Exit(1)
			}
		}
		return
	}
	if *serveAddr != "" {
		runServe(*serveAddr, *serveFor, *reqs, *rtBytes)
		return
	}

	if *rt {
		runRealtime(*reqs, *rtBytes, *rtControllers, *rtChunk, *rtTrace)
		return
	}

	opts := core.DefaultOptions()
	switch *race {
	case "detect":
		opts.RaceMode = core.RaceDetect
	case "recover":
		opts.RaceMode = core.RaceRecover
	case "prevent":
		opts.RaceMode = core.RacePrevent
	default:
		fmt.Fprintf(os.Stderr, "memif-trace: bad -race %q\n", *race)
		os.Exit(2)
	}
	var reqOp uapi.Op
	switch *op {
	case "migrate":
		reqOp = uapi.OpMigrate
	case "replicate":
		reqOp = uapi.OpReplicate
	default:
		fmt.Fprintf(os.Stderr, "memif-trace: bad -op %q\n", *op)
		os.Exit(2)
	}

	m := machine.New(hw.KeyStoneII())
	m.Mem.DisableData()
	if *verbose {
		m.Eng.SetTrace(func(s string) { fmt.Println(s) })
	}
	as := m.NewAddressSpace(hw.Page4K)
	d := core.Open(m, as, opts)

	reqBytes := int64(*pages) * hw.Page4K
	type row struct {
		idx                  uint64
		submitted, completed sim.Time
		retrieved            sim.Time
		status               uapi.Status
		errc                 uapi.ErrCode
	}
	rows := make([]row, *reqs)

	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		src, err := as.Mmap(p, int64(*reqs)*reqBytes, hw.NodeSlow, "src")
		if err != nil {
			fmt.Fprintf(os.Stderr, "memif-trace: %v\n", err)
			return
		}
		var dst int64
		if reqOp == uapi.OpReplicate {
			if dst, err = as.Mmap(p, int64(*reqs)*reqBytes, hw.NodeFast, "dst"); err != nil {
				fmt.Fprintf(os.Stderr, "memif-trace: %v\n", err)
				return
			}
		}
		for i := 0; i < *reqs; i++ {
			r := d.AllocRequest(p)
			if r == nil {
				fmt.Fprintln(os.Stderr, "memif-trace: out of request slots")
				return
			}
			r.Op = reqOp
			r.SrcBase = src + int64(i)*reqBytes
			r.DstBase = dst + int64(i)*reqBytes
			r.Length = reqBytes
			r.DstNode = hw.NodeFast
			r.Cookie = uint64(i)
			if err := d.Submit(p, r); err != nil {
				fmt.Fprintf(os.Stderr, "memif-trace: submit %d: %v\n", i, err)
				return
			}
			rows[i] = row{idx: r.Cookie, submitted: r.Submitted}
		}
		for done := 0; done < *reqs; {
			r := d.RetrieveCompleted(p)
			if r == nil {
				d.Poll(p, 0)
				continue
			}
			rw := &rows[r.Cookie]
			rw.completed = r.Completed
			rw.retrieved = p.Now()
			rw.status = r.Status
			rw.errc = r.Err
			d.FreeRequest(p, r)
			done++
		}
	})
	end := m.Eng.Run()

	fmt.Printf("scenario: %d x %s of %d pages (%d KB each), race policy %s\n\n",
		*reqs, *op, *pages, reqBytes>>10, *race)
	fmt.Printf("%4s %14s %14s %14s %12s %8s\n",
		"req", "submitted", "completed", "retrieved", "latency", "result")
	for _, r := range rows {
		fmt.Printf("%4d %14v %14v %14v %12v %8v\n",
			r.idx, r.submitted, r.completed, r.retrieved, r.completed-r.submitted, r.errc)
	}
	st := d.Stats()
	fmt.Printf("\nsyscalls: %d   worker wakes: %d   DMA transfers: %d (%d MB, %d IRQs)\n",
		st.Syscalls, st.WorkerWakes, m.DMA.Stats().Transfers,
		m.DMA.Stats().BytesMoved>>20, m.DMA.Stats().IRQs)
	fmt.Printf("CPU: user %v, kernel %v over %v elapsed (%.1f%%)\n",
		d.UserMeter.Busy(), d.KernMeter.Busy(), end,
		sim.MeterGroup{d.UserMeter, d.KernMeter}.Usage(end)*100)
	fmt.Printf("driver time by phase: %v\n", d.Breakdown)
}

// runRealtime drives the realtime device through a burst of copies and
// renders its observability layer.
func runRealtime(reqs, bytesPer, controllers, chunkBytes, traceDepth int) {
	opts := realtime.DefaultOptions()
	if controllers > 0 {
		opts.Controllers = controllers
	}
	if chunkBytes != 0 {
		opts.ChunkBytes = chunkBytes
	}
	opts.TraceDepth = traceDepth
	d := realtime.Open(opts)

	src := make([]byte, bytesPer)
	for i := range src {
		src[i] = byte(i)
	}
	dsts := make([][]byte, reqs)
	start := time.Now()
	for i := 0; i < reqs; i++ {
		dsts[i] = make([]byte, bytesPer)
		r := d.AllocRequest()
		if r == nil {
			fmt.Fprintln(os.Stderr, "memif-trace: out of request slots")
			os.Exit(1)
		}
		r.Src, r.Dst = src, dsts[i]
		r.Cookie = uint64(i)
		if err := d.Submit(r); err != nil {
			fmt.Fprintf(os.Stderr, "memif-trace: submit %d: %v\n", i, err)
			os.Exit(1)
		}
	}
	for done := 0; done < reqs; {
		r := d.RetrieveCompleted()
		if r == nil {
			d.Poll(time.Second)
			continue
		}
		lat, _ := r.Latency()
		fmt.Printf("req %3d  %8d KB  latency %10v  err=%v\n",
			r.Cookie, len(r.Src)>>10, lat, r.Err)
		d.FreeRequest(r)
		done++
	}
	elapsed := time.Since(start)
	if !d.CloseDrain(5 * time.Second) {
		fmt.Fprintln(os.Stderr, "memif-trace: drain timed out")
	}

	st := d.Stats()
	chunkDesc := fmt.Sprintf("%d KB", opts.ChunkBytes>>10)
	if opts.ChunkBytes < 0 {
		chunkDesc = "off"
	}
	fmt.Printf("\nscenario: %d x %d KB copies, %d controllers, chunk %s, %v elapsed (%.0f MB/s)\n",
		reqs, bytesPer>>10, opts.Controllers, chunkDesc, elapsed,
		float64(st.BytesMoved)/elapsed.Seconds()/1e6)
	fmt.Printf("submitted %d  completed %d  canceled %d  expired %d  failed %d\n",
		st.Submitted, st.Completed, st.Canceled, st.Expired, st.Failed)
	fmt.Printf("kicks %d  worker wakes %d  chunks %d  bytes %d MB  flush retries %d\n",
		st.Kicks, st.WorkerWakes, st.Chunks, st.BytesMoved>>20, st.EnqueueRetries)
	fmt.Printf("batches %d  steals %d  dispatch retries %d\n",
		st.Batches, st.Steals, st.DispatchRetries)
	fmt.Printf("queue high watermarks: submission %d, completion %d\n",
		st.SubmissionHighWater, st.CompletionHighWater)
	fmt.Printf("latency (ns): %v\n", st.Latency)
	fmt.Printf("sizes (bytes): %v\n", st.Sizes)
	if len(st.Trace) > 0 {
		fmt.Printf("\nlast %d trace events:\n%s", len(st.Trace),
			obs.FormatEvents(st.Trace, realtime.EventName))
	}
}
