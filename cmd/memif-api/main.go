// memif-api maintains api/memif.txt, the committed snapshot of the
// package memif public surface.
//
// Usage:
//
//	memif-api [-dir .] -o api/memif.txt     regenerate the snapshot
//	memif-api [-dir .] -check api/memif.txt fail (exit 1) on drift
//
// CI runs the -check form: any change to the exported facade — a new
// symbol, a removed alias, a signature change — fails until the
// snapshot is regenerated and committed, so API drift is always a
// reviewed diff.
package main

import (
	"flag"
	"fmt"
	"os"

	"memif/internal/apisnap"
)

func main() {
	dir := flag.String("dir", ".", "package directory to snapshot")
	out := flag.String("o", "", "write the surface to this file (\"-\" or empty = stdout)")
	check := flag.String("check", "", "compare the surface against this snapshot file and exit nonzero on drift")
	flag.Parse()

	if *check != "" {
		if err := apisnap.Check(*dir, *check); err != nil {
			fmt.Fprintf(os.Stderr, "memif-api: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("memif-api: %s matches the exported surface of %s\n", *check, *dir)
		return
	}

	surface, err := apisnap.Surface(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memif-api: %v\n", err)
		os.Exit(1)
	}
	if *out == "" || *out == "-" {
		os.Stdout.WriteString(surface)
		return
	}
	if err := os.WriteFile(*out, []byte(surface), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "memif-api: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "memif-api: wrote %s\n", *out)
}
