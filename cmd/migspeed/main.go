// migspeed mirrors the utility of the same name shipped with numactl,
// which the paper uses as the Linux baseline in Figure 8: it migrates a
// region between the two memory nodes in a loop and reports the achieved
// throughput. Optionally it runs the same workload through memif for a
// side-by-side comparison.
//
// Usage:
//
//	migspeed [-pages N] [-pagesize 4K|64K|2M] [-loops N] [-memif] [-xeon]
package main

import (
	"flag"
	"fmt"
	"os"

	"memif/internal/core"
	"memif/internal/hw"
	"memif/internal/linuxmig"
	"memif/internal/machine"
	"memif/internal/sim"
	"memif/internal/stats"
	"memif/internal/uapi"
)

func main() {
	pages := flag.Int("pages", 256, "pages per migration request")
	pageSize := flag.String("pagesize", "4K", "page size: 4K, 64K or 2M")
	loops := flag.Int("loops", 16, "migration round trips")
	useMemif := flag.Bool("memif", false, "also measure memif migration")
	xeon := flag.Bool("xeon", false, "use the Xeon E5 platform instead of KeyStone II")
	flag.Parse()

	var pb int64
	switch *pageSize {
	case "4K", "4k":
		pb = hw.Page4K
	case "64K", "64k":
		pb = hw.Page64K
	case "2M", "2m":
		pb = hw.Page2M
	default:
		fmt.Fprintf(os.Stderr, "migspeed: bad -pagesize %q\n", *pageSize)
		os.Exit(2)
	}
	plat := hw.KeyStoneII()
	if *xeon {
		plat = hw.XeonE5()
	}
	// Remove the capacity wall so sweeps with large regions make sense
	// (the cost model does not depend on node size).
	for i := range plat.Nodes {
		if plat.Nodes[i].Capacity < 2<<30 {
			plat.Nodes[i].Capacity = 2 << 30
		}
	}
	length := int64(*pages) * pb

	fmt.Printf("migspeed: %d pages x %s per request, %d round trips on %s\n",
		*pages, *pageSize, *loops, plat.Name)

	{ // Linux baseline
		m := machine.New(plat)
		m.Mem.DisableData()
		as := m.NewAddressSpace(pb)
		mg := linuxmig.New(m, as)
		m.Eng.Spawn("migspeed", func(p *sim.Proc) {
			base, err := as.Mmap(p, length, hw.NodeSlow, "region")
			if err != nil {
				fmt.Fprintf(os.Stderr, "migspeed: %v\n", err)
				return
			}
			start := p.Now()
			node := hw.NodeFast
			for i := 0; i < 2**loops; i++ {
				if err := mg.MBind(p, base, length, node); err != nil {
					fmt.Fprintf(os.Stderr, "migspeed: %v\n", err)
					return
				}
				if node == hw.NodeFast {
					node = hw.NodeSlow
				} else {
					node = hw.NodeFast
				}
			}
			moved := int64(2**loops) * length
			fmt.Printf("  linux:  %6.2f GB/s (%d MB moved, CPU usage 100%%)\n",
				stats.ThroughputGBs(moved, p.Now()-start), moved>>20)
		})
		m.Eng.Run()
	}

	if *useMemif {
		m := machine.New(plat)
		m.Mem.DisableData()
		as := m.NewAddressSpace(pb)
		d := core.Open(m, as, core.DefaultOptions())
		m.Eng.Spawn("migspeed", func(p *sim.Proc) {
			defer d.Close()
			base, err := as.Mmap(p, length, hw.NodeSlow, "region")
			if err != nil {
				fmt.Fprintf(os.Stderr, "migspeed: %v\n", err)
				return
			}
			start := p.Now()
			node := hw.NodeFast
			for i := 0; i < 2**loops; i++ {
				r := d.AllocRequest(p)
				r.Op = uapi.OpMigrate
				r.SrcBase, r.Length, r.DstNode = base, length, node
				if err := d.Submit(p, r); err != nil {
					fmt.Fprintf(os.Stderr, "migspeed: %v\n", err)
					return
				}
				// Same region each trip: wait for completion before
				// reversing direction.
				for d.RetrieveCompleted(p) == nil {
					d.Poll(p, 0)
				}
				d.FreeRequest(p, r)
				if node == hw.NodeFast {
					node = hw.NodeSlow
				} else {
					node = hw.NodeFast
				}
			}
			moved := int64(2**loops) * length
			elapsed := p.Now() - start
			cpu := sim.MeterGroup{d.UserMeter, d.KernMeter}.Usage(elapsed)
			fmt.Printf("  memif:  %6.2f GB/s (%d MB moved, CPU usage %.1f%%, %d syscalls)\n",
				stats.ThroughputGBs(moved, elapsed), moved>>20, cpu*100, d.Stats().Syscalls)
		})
		m.Eng.Run()
	}
}
