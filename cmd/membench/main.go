// membench is the steady-state benchmark harness for the realtime
// device: it drives the sharded submission pipeline with configurable
// submitter/poller fleets, measures only the steady-state window
// (warmup excluded via histogram deltas), and emits a machine-readable
// JSON report for CI archival.
//
// Usage:
//
//	membench [-quick] [-o BENCH_realtime.json]
//	membench -validate BENCH_realtime.json
//
// Workloads:
//
//	small_iops   8 submitters × 2 pollers, 4 KB requests batched ×16 —
//	             the IOPS / kick-amortization story
//	large_bw     2 submitters × 1 poller, 4 MB chunked transfers —
//	             bandwidth through the ring + work-stealing dispatch
//	mixed        6 small-request submitters alongside 2 large-request
//	             submitters on one device
//	open_loop    paced arrivals at a fixed target rate, so the latency
//	             histogram reflects queueing rather than saturation
//	fg_baseline  paced foreground-only load — the uncontended latency
//	             reference for the overload run
//	overload     the same paced foreground load with closed-loop
//	             scavenger flooding (large transfers) on top: the
//	             priority-isolation story — scavengers are shed with
//	             ErrOverload, foreground latency holds near baseline
//	inline_small paced small requests with adaptive inline completion on
//	notify_small the same load with inline completion disabled
//	             (always-notify) — the adaptive-completion ablation
//	smallrt      the 8-submitter 4 KB scenario unbatched, park/wake vs
//	             busy-poll worker (schema v6): the kick-elimination
//	             story, reported as an off/on pair with the speedup
//	flight       deterministic outlier probe (schema v7): warm the
//	             adaptive threshold with fast requests, inject one
//	             chaos-delayed request, and verify the flight recorder
//	             captured it with a complete stage vector
//	streams      multi-stream ingest (schema v8, virtual time): four
//	             GB-scale producers multiplexed over one stream engine's
//	             pinned buffer ring while a foreground prober holds its
//	             uncontended p99 bucket; checksums are gated against an
//	             independent direct pass
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"memif/internal/obs/flight"
	"memif/internal/obs/lifecycle"
	"memif/internal/obs/obshttp"
	"memif/internal/realtime"
)

// Report is the schema of BENCH_realtime.json. Version bumps whenever a
// field changes meaning; CI validates the invariants in validate().
type Report struct {
	Benchmark  string           `json:"benchmark"` // always "membench"
	Version    int              `json:"version"`
	UnixTime   int64            `json:"unix_time"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Quick      bool             `json:"quick"`
	Workloads  []WorkloadResult `json:"workloads"`
	// Tiering is the virtual-time tiering-daemon scenario (schema v4):
	// promotion/demotion counts, promotion lag, and the foreground-p99-
	// under-migration comparison. See tiering.go.
	Tiering *TieringResult `json:"tiering,omitempty"`
	// Tenants is the multi-tenant fairness/isolation scenario (schema
	// v5): 1k+ tenant cohort Jain's index, weighted DRR shares, and the
	// victim-vs-aggressor p99 comparison. See tenants.go.
	Tenants *TenantsResult `json:"tenants,omitempty"`
	// SmallRT is the busy-poll ablation (schema v6): the 8-submitter
	// 4 KB unbatched scenario with the park/wake worker vs the spinning
	// worker, and the resulting throughput ratio.
	SmallRT *SmallRTResult `json:"smallrt,omitempty"`
	// Flight is the deterministic outlier probe (schema v7): a known
	// chaos-delayed request must breach the adaptive threshold and
	// come back out of the flight ring with a complete stage vector.
	// See flight.go.
	Flight *FlightProbeResult `json:"flight,omitempty"`
	// Streams is the multi-stream ingest scenario (schema v8): four
	// GB-scale producers over one engine's pinned buffer ring, with
	// checksum, never-stall, O(ring)-mmap, batching, foreground-p99 and
	// flight-forensics gates. See streams.go.
	Streams *StreamsResult `json:"streams,omitempty"`
}

// SmallRTResult is the busy-poll off/on pair over the identical
// small-request load. Speedup is On.OpsPerSec / Off.OpsPerSec.
type SmallRTResult struct {
	Off     WorkloadResult `json:"off"`
	On      WorkloadResult `json:"on"`
	Speedup float64        `json:"speedup"`
}

type WorkloadResult struct {
	Name       string  `json:"name"`
	Mode       string  `json:"mode"` // closed_loop | open_loop
	Submitters int     `json:"submitters"`
	Pollers    int     `json:"pollers"`
	SizeBytes  int     `json:"size_bytes"`
	Batch      int     `json:"batch"`
	WindowSec  float64 `json:"window_sec"`
	Ops        int64   `json:"ops"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	GBPerSec   float64 `json:"gb_per_sec"`
	// P50/P99/P999 are interpolated within histogram buckets (schema
	// v7, obs.Quantiles): smooth estimates rather than power-of-two
	// upper bounds.
	P50Ns      int64   `json:"p50_ns"`
	P99Ns      int64   `json:"p99_ns"`
	P999Ns     int64   `json:"p999_ns"`
	MeanNs     float64 `json:"mean_ns"`
	Kicks      int64   `json:"kicks"`
	KicksPerOp float64 `json:"kicks_per_op"`
	Steals     int64   `json:"steals"`
	Batches    int64   `json:"batches"`
	// Stages is the per-stage latency breakdown of the steady-state
	// window, from the lifecycle tracer's sampled requests (schema v2).
	// Quantiles are interpolated within histogram buckets
	// (obs.QuantileInterp), so they are smooth estimates rather than
	// power-of-two upper bounds. Only stages with samples appear.
	Stages []StageLatency `json:"stages"`
	// QoS fields (schema v3). Shed counts admission rejections in the
	// window; InlineCompleted the requests the worker copied inline;
	// InlineThresholdBytes the adaptive cutoff at window end (0 =
	// disabled); AgedPops the out-of-priority-order dispatches. Classes
	// breaks the window down per priority class — present only for
	// workloads that declare a class mix.
	Shed                 int64         `json:"shed,omitempty"`
	InlineCompleted      int64         `json:"inline_completed,omitempty"`
	InlineThresholdBytes int64         `json:"inline_threshold_bytes,omitempty"`
	AgedPops             int64         `json:"aged_pops,omitempty"`
	Classes              []ClassResult `json:"classes,omitempty"`
	// Busy-poll attribution (schema v6): worker wakes and busy-poll
	// spin/park counts, plus the Poll micro-wait's spin/park split, all
	// window deltas. BusyPollSpins > 0 identifies a spinning-worker run.
	WorkerWakes   int64 `json:"worker_wakes,omitempty"`
	BusyPollSpins int64 `json:"busy_poll_spins,omitempty"`
	BusyPollParks int64 `json:"busy_poll_parks,omitempty"`
	PollerSpins   int64 `json:"poller_spins,omitempty"`
	PollerParks   int64 `json:"poller_parks,omitempty"`
	// Flight is the workload's flight-recorder summary (schema v7),
	// snapshotted after teardown so the counts are quiescent. The
	// counters cover the whole run including warmup, not just the
	// measure window — outlier capture has no window delta.
	Flight *FlightSummary `json:"flight,omitempty"`
}

// ClassResult is one priority class's slice of a workload window.
type ClassResult struct {
	Class  string  `json:"class"`
	Ops    int64   `json:"ops"`  // completions, including shed batch members
	Shed   int64   `json:"shed"` // admission rejections
	P50Ns  int64   `json:"p50_ns"`
	P99Ns  int64   `json:"p99_ns"`
	P999Ns int64   `json:"p999_ns"`
	MeanNs float64 `json:"mean_ns"`
}

// StageLatency is one attribution bucket of the request latency:
// staging wait, dispatch wait, ring wait, steal delay, copy, or
// completion dwell.
type StageLatency struct {
	Stage  string  `json:"stage"`
	Count  int64   `json:"count"`
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
	P999Ns float64 `json:"p999_ns"`
	MeanNs float64 `json:"mean_ns"`
}

// stageBreakdown converts a steady-state span delta into the report
// rows, skipping empty spans (e.g. steal_delay on a steal-free run).
func stageBreakdown(spans lifecycle.SpanSnapshot) []StageLatency {
	names := lifecycle.SpanNames()
	var out []StageLatency
	for i, name := range names {
		h := spans.Spans[i]
		if h.Count == 0 {
			continue
		}
		q := h.Quantiles(0.50, 0.99, 0.999)
		out = append(out, StageLatency{
			Stage:  name,
			Count:  h.Count,
			P50Ns:  q[0],
			P99Ns:  q[1],
			P999Ns: q[2],
			MeanNs: h.Mean(),
		})
	}
	return out
}

// workload describes one steady-state scenario. Large is an optional
// second submitter class for the mixed workload; classMix, when set,
// replaces the legacy submitter fields with an explicit per-priority-
// class load mix (the QoS workloads).
type workload struct {
	name       string
	mode       string // closed_loop | open_loop
	submitters int
	pollers    int
	size       int
	batch      int
	largeSubs  int // extra submitters issuing largeSize requests
	largeSize  int
	targetRate int // open_loop only: requests/second
	classMix   []classLoad
	opts       realtime.Options
}

// classLoad is one priority class's share of a workload: submitters
// issuing size-byte requests in batches, paced at rate requests/second
// across the class (0 = closed loop, as fast as slots allow).
type classLoad struct {
	class      realtime.Class
	submitters int
	size       int
	batch      int
	rate       int
}

func workloads(quick bool) []workload {
	rate := 50000
	if quick {
		rate = 20000
	}
	return []workload{
		{
			name: "small_iops", mode: "closed_loop",
			submitters: 8, pollers: 2, size: 4 << 10, batch: 16,
			opts: realtime.Options{NumReqs: 512, Controllers: 4, StagingShards: 4},
		},
		{
			name: "large_bw", mode: "closed_loop",
			submitters: 2, pollers: 1, size: 4 << 20, batch: 1,
			// Low request rate (a few thousand 4 MB ops/s): a denser shift
			// than the 1/128 default so short windows still land samples.
			opts: realtime.Options{NumReqs: 16, Controllers: 4, StagingShards: 2, ChunkBytes: 256 << 10,
				TraceSampleShift: 3},
		},
		{
			name: "mixed", mode: "closed_loop",
			submitters: 6, pollers: 2, size: 4 << 10, batch: 8,
			largeSubs: 2, largeSize: 1 << 20,
			opts: realtime.Options{NumReqs: 64, Controllers: 4, StagingShards: 4, ChunkBytes: 256 << 10},
		},
		{
			name: "open_loop", mode: "open_loop",
			submitters: 2, pollers: 1, size: 4 << 10, batch: 8,
			targetRate: rate,
			// Sampling is per slot (1 in 2^k uses of that slot), so a
			// low-rate paced workload needs a denser shift than the 1/128
			// default to land samples inside a short measure window — at
			// 20-50k ops/s the tracing cost is irrelevant anyway.
			opts: realtime.Options{NumReqs: 256, Controllers: 2, StagingShards: 2,
				TraceSampleShift: 3},
		},
		{
			// The uncontended reference: the overload workload's foreground
			// load alone, on the same small device.
			name: "fg_baseline", mode: "open_loop",
			pollers: 2, size: 4 << 10, batch: 1,
			classMix: []classLoad{
				{class: realtime.ClassForeground, submitters: 2, size: 4 << 10, batch: 1, rate: rate / 2},
			},
			opts: realtime.Options{NumReqs: 64, Controllers: 2, StagingShards: 2,
				TraceSampleShift: 3},
		},
		{
			// Priority isolation under overload: the same paced foreground
			// load, plus closed-loop scavenger submitters flooding the
			// device with 1 MB transfers. The scavenger flood drives total
			// occupancy past its 50% admission share, so scavengers are
			// shed with ErrOverload while foreground — never shed, popped
			// first, mostly completed inline — holds near its baseline
			// latency.
			name: "overload", mode: "open_loop",
			pollers: 2, size: 4 << 10, batch: 1,
			classMix: []classLoad{
				{class: realtime.ClassForeground, submitters: 2, size: 4 << 10, batch: 1, rate: rate / 2},
				{class: realtime.ClassScavenger, submitters: 4, size: 1 << 20, batch: 4},
			},
			opts: realtime.Options{NumReqs: 64, Controllers: 2, StagingShards: 2,
				ChunkBytes: 256 << 10, TraceSampleShift: 3,
				// A deep outlier ring: every breaching foreground request
				// of the run must still be present at the end (validated
				// against the breach counter — the tail-forensics
				// acceptance gate).
				Flight: flight.Options{RingDepth: 8192}},
		},
		{
			// Adaptive completion on: small paced requests, worker copies
			// them inline (the paper's poll path).
			name: "inline_small", mode: "open_loop",
			pollers: 1, size: 4 << 10, batch: 1,
			classMix: []classLoad{
				{class: realtime.ClassForeground, submitters: 2, size: 4 << 10, batch: 1, rate: rate / 2},
			},
			opts: realtime.Options{NumReqs: 128, Controllers: 2, StagingShards: 2,
				TraceSampleShift: 3},
		},
		{
			// The always-notify ablation: identical load with inline
			// completion disabled, so every request pays the ring push,
			// controller wakeup and notify hop.
			name: "notify_small", mode: "open_loop",
			pollers: 1, size: 4 << 10, batch: 1,
			classMix: []classLoad{
				{class: realtime.ClassForeground, submitters: 2, size: 4 << 10, batch: 1, rate: rate / 2},
			},
			opts: realtime.Options{NumReqs: 128, Controllers: 2, StagingShards: 2,
				TraceSampleShift: 3, QoS: realtime.QoSOptions{InlineThreshold: -1}},
		},
	}
}

// liveDevice is the device of the workload currently running, for the
// -http observability endpoint; nil between workloads.
var liveDevice atomic.Pointer[realtime.Device]

func main() {
	quick := flag.Bool("quick", false, "short warmup/measure windows (CI smoke)")
	out := flag.String("o", "BENCH_realtime.json", "output path for the JSON report (\"-\" for stdout only)")
	validatePath := flag.String("validate", "", "validate an existing report file and exit")
	httpAddr := flag.String("http", "", "serve /metrics, /trace and /debug/pprof on this address while benchmarking")
	flag.Parse()

	if *validatePath != "" {
		if err := validateFile(*validatePath); err != nil {
			fmt.Fprintf(os.Stderr, "membench: validate %s: %v\n", *validatePath, err)
			os.Exit(1)
		}
		fmt.Printf("membench: %s is a valid report\n", *validatePath)
		return
	}

	if *httpAddr != "" {
		h := obshttp.NewHandler()
		h.Register(func() []obshttp.Metric {
			d := liveDevice.Load()
			if d == nil {
				return nil
			}
			return obshttp.RealtimeMetrics("bench", d.Stats())
		})
		h.RegisterTrace("membench", func() []lifecycle.Lifecycle {
			d := liveDevice.Load()
			if d == nil {
				return nil
			}
			return d.Stats().Lifecycle.Captured
		})
		h.RegisterOutliers("membench", func() flight.Snapshot {
			d := liveDevice.Load()
			if d == nil {
				return flight.Snapshot{}
			}
			return d.FlightSnapshot()
		})
		go func() {
			fmt.Fprintf(os.Stderr, "membench: serving observability on %s\n", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, h); err != nil {
				fmt.Fprintf(os.Stderr, "membench: http: %v\n", err)
			}
		}()
	}

	warmup, window := time.Second, 3*time.Second
	if *quick {
		warmup, window = 150*time.Millisecond, 400*time.Millisecond
	}

	rep := Report{
		Benchmark:  "membench",
		Version:    8,
		UnixTime:   time.Now().Unix(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      *quick,
	}
	for _, wl := range workloads(*quick) {
		fmt.Fprintf(os.Stderr, "membench: running %-10s (warmup %v, window %v)\n", wl.name, warmup, window)
		res := runWorkload(wl, warmup, window)
		fmt.Fprintf(os.Stderr, "membench: %-12s %12.0f ops/s %8.2f GB/s  p50 %s  p99 %s  kicks/op %.4f\n",
			wl.name, res.OpsPerSec, res.GBPerSec, time.Duration(res.P50Ns), time.Duration(res.P99Ns), res.KicksPerOp)
		for _, c := range res.Classes {
			fmt.Fprintf(os.Stderr, "membench:   %-12s %10d ops %10d shed  p50 %s  p99 %s\n",
				c.Class, c.Ops, c.Shed, time.Duration(c.P50Ns), time.Duration(c.P99Ns))
		}
		rep.Workloads = append(rep.Workloads, res)
	}

	fmt.Fprintf(os.Stderr, "membench: running tiering    (virtual-time sim)\n")
	rep.Tiering = runTiering(*quick)
	reportTiering(rep.Tiering)

	fmt.Fprintf(os.Stderr, "membench: running tenants    (fairness + isolation)\n")
	rep.Tenants = runTenants(*quick)
	reportTenants(rep.Tenants)

	fmt.Fprintf(os.Stderr, "membench: running smallrt    (busy-poll off vs on)\n")
	rep.SmallRT = runSmallRT(warmup, window)
	fmt.Fprintf(os.Stderr, "membench:   off %12.0f ops/s  kicks/op %.4f  wakes %d\n",
		rep.SmallRT.Off.OpsPerSec, rep.SmallRT.Off.KicksPerOp, rep.SmallRT.Off.WorkerWakes)
	fmt.Fprintf(os.Stderr, "membench:   on  %12.0f ops/s  kicks/op %.4f  spins %d parks %d  (%.2fx)\n",
		rep.SmallRT.On.OpsPerSec, rep.SmallRT.On.KicksPerOp,
		rep.SmallRT.On.BusyPollSpins, rep.SmallRT.On.BusyPollParks, rep.SmallRT.Speedup)

	fmt.Fprintf(os.Stderr, "membench: running streams    (multi-stream ingest, virtual time)\n")
	rep.Streams = runStreams(*quick)
	reportStreams(rep.Streams)

	fmt.Fprintf(os.Stderr, "membench: running flight     (deterministic outlier probe)\n")
	rep.Flight = runFlightProbe()
	fmt.Fprintf(os.Stderr, "membench:   breaches %d captured %d  threshold %s  outlier %s  complete_vector %v\n",
		rep.Flight.Breaches, rep.Flight.Captured, time.Duration(rep.Flight.ThresholdNs),
		time.Duration(rep.Flight.OutlierLatencyNs), rep.Flight.CompleteVector)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "membench: marshal: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "membench: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "membench: wrote %s\n", *out)
	}
	if err := validate(rep); err != nil {
		fmt.Fprintf(os.Stderr, "membench: self-check failed: %v\n", err)
		os.Exit(1)
	}
}

// runWorkload opens a device, spins up the submitter and poller fleets,
// waits out the warmup, measures one steady-state window via stats
// deltas, then tears everything down.
func runWorkload(wl workload, warmup, window time.Duration) WorkloadResult {
	d := realtime.Open(wl.opts)
	liveDevice.Store(d)
	defer liveDevice.Store(nil)
	// Legacy workloads describe a single (implicitly foreground) class,
	// plus optionally a large-request side channel; normalize both forms
	// into a class mix.
	mix := wl.classMix
	if len(mix) == 0 {
		mix = []classLoad{{class: realtime.ClassForeground,
			submitters: wl.submitters, size: wl.size, batch: wl.batch, rate: wl.targetRate}}
		if wl.largeSubs > 0 {
			mix = append(mix, classLoad{class: realtime.ClassForeground,
				submitters: wl.largeSubs, size: wl.largeSize, batch: 1})
		}
	}
	maxSize := 0
	for _, cl := range mix {
		if cl.size > maxSize {
			maxSize = cl.size
		}
	}
	// Destinations are owned per slot: a slot is exclusive from Alloc to
	// Free, so slot-indexed buffers can never be written concurrently.
	dsts := make([][]byte, wl.opts.NumReqs)
	for i := range dsts {
		dsts[i] = make([]byte, maxSize)
	}
	src := make([]byte, maxSize)

	var stop atomic.Bool
	var wg, pwg sync.WaitGroup

	submitter := func(cl classLoad) {
		defer wg.Done()
		pending := make([]*realtime.Request, 0, cl.batch)
		var tick *time.Ticker
		perTick := 0
		if cl.rate > 0 {
			// Coarse pacing: the class's target rate split across its
			// submitters, refilled every 2ms.
			tick = time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			perTick = cl.rate / cl.submitters / 500
			if perTick < 1 {
				perTick = 1
			}
		}
		for !stop.Load() {
			n := 1
			if tick != nil {
				<-tick.C
				n = perTick
			}
			for i := 0; i < n && !stop.Load(); i++ {
				var r *realtime.Request
				for r == nil && !stop.Load() {
					if r = d.AllocRequest(); r == nil {
						runtime.Gosched() // pollers are freeing slots
					}
				}
				if r == nil {
					break
				}
				r.Class = cl.class
				r.Src, r.Dst = src[:cl.size], dsts[r.Index()][:cl.size]
				pending = append(pending, r)
				if len(pending) == cl.batch {
					if err := d.SubmitBatch(pending); err != nil {
						panic(err)
					}
					pending = pending[:0]
				}
			}
		}
		if len(pending) > 0 {
			if err := d.SubmitBatch(pending); err != nil {
				panic(err)
			}
		}
	}

	poller := func() {
		defer pwg.Done()
		buf := make([]*realtime.Request, 64)
		for {
			n := d.RetrieveCompletedBatch(buf)
			for i := 0; i < n; i++ {
				d.FreeRequest(buf[i])
			}
			if n > 0 {
				continue
			}
			if stop.Load() {
				s := d.Stats()
				if s.Completed >= s.Submitted && d.RetrieveCompletedBatch(buf[:1]) == 0 {
					return
				}
			}
			d.Poll(time.Millisecond)
		}
	}

	for i := 0; i < wl.pollers; i++ {
		pwg.Add(1)
		go poller()
	}
	totalSubs := 0
	for _, cl := range mix {
		totalSubs += cl.submitters
		for i := 0; i < cl.submitters; i++ {
			wg.Add(1)
			go submitter(cl)
		}
	}

	time.Sleep(warmup)
	s0 := d.Stats()
	t0 := time.Now()
	time.Sleep(window)
	s1 := d.Stats()
	elapsed := time.Since(t0)

	stop.Store(true)
	wg.Wait()
	pwg.Wait()
	// Quiescent flight snapshot: every request is retrieved, so the
	// breach counter and the ring contents are settled (the watchdog
	// may still tick until Close, but stall records are counted apart).
	fsnap := d.FlightSnapshot()
	d.Close()

	lat := s1.Latency.Delta(s0.Latency)
	latQ := lat.Quantiles(0.50, 0.99, 0.999)
	ops := s1.Completed - s0.Completed
	kicks := s1.Kicks - s0.Kicks
	res := WorkloadResult{
		Name:                 wl.name,
		Mode:                 wl.mode,
		Submitters:           totalSubs,
		Pollers:              wl.pollers,
		SizeBytes:            wl.size,
		Batch:                wl.batch,
		WindowSec:            elapsed.Seconds(),
		Ops:                  ops,
		OpsPerSec:            float64(ops) / elapsed.Seconds(),
		GBPerSec:             float64(s1.BytesMoved-s0.BytesMoved) / elapsed.Seconds() / 1e9,
		P50Ns:                int64(latQ[0]),
		P99Ns:                int64(latQ[1]),
		P999Ns:               int64(latQ[2]),
		MeanNs:               lat.Mean(),
		Kicks:                kicks,
		Steals:               s1.Steals - s0.Steals,
		Batches:              s1.Batches - s0.Batches,
		Stages:               stageBreakdown(s1.Lifecycle.Spans.Delta(s0.Lifecycle.Spans)),
		Shed:                 s1.Shed - s0.Shed,
		InlineCompleted:      s1.InlineCompleted - s0.InlineCompleted,
		InlineThresholdBytes: s1.InlineThresholdBytes,
		AgedPops:             s1.AgedPops - s0.AgedPops,
		WorkerWakes:          s1.WorkerWakes - s0.WorkerWakes,
		BusyPollSpins:        s1.BusyPollSpins - s0.BusyPollSpins,
		BusyPollParks:        s1.BusyPollParks - s0.BusyPollParks,
		PollerSpins:          s1.PollerSpins - s0.PollerSpins,
		PollerParks:          s1.PollerParks - s0.PollerParks,
		Flight:               flightSummary(fsnap),
	}
	if ops > 0 {
		res.KicksPerOp = float64(kicks) / float64(ops)
	}
	if len(wl.classMix) > 0 {
		for c := range s1.Classes {
			c0, c1 := s0.Classes[c], s1.Classes[c]
			if c1.Submitted == c0.Submitted && c1.Shed == c0.Shed {
				continue // class idle in this workload
			}
			clat := c1.Latency.Delta(c0.Latency)
			cq := clat.Quantiles(0.50, 0.99, 0.999)
			res.Classes = append(res.Classes, ClassResult{
				Class:  realtime.ClassName(c),
				Ops:    c1.Completed - c0.Completed,
				Shed:   c1.Shed - c0.Shed,
				P50Ns:  int64(cq[0]),
				P99Ns:  int64(cq[1]),
				P999Ns: int64(cq[2]),
				MeanNs: clat.Mean(),
			})
		}
	}
	return res
}

// runSmallRT runs the busy-poll ablation: the 8-submitter 4 KB scenario
// unbatched (batch 1 keeps the kick path live, so the elimination is
// visible) with the park/wake worker and then the identical load with
// the spinning worker.
func runSmallRT(warmup, window time.Duration) *SmallRTResult {
	base := workload{
		name: "smallrt_parkwake", mode: "closed_loop",
		submitters: 8, pollers: 2, size: 4 << 10, batch: 1,
		opts: realtime.Options{NumReqs: 512, Controllers: 4, StagingShards: 4},
	}
	busy := base
	busy.name = "smallrt_busypoll"
	busy.opts.BusyPoll = true

	res := &SmallRTResult{
		Off: runWorkload(base, warmup, window),
		On:  runWorkload(busy, warmup, window),
	}
	if res.Off.OpsPerSec > 0 {
		res.Speedup = res.On.OpsPerSec / res.Off.OpsPerSec
	}
	return res
}

// validate enforces the report invariants CI depends on. It is run both
// on the report membench just produced (self-check) and, via -validate,
// on the artifact a previous step wrote.
func validate(rep Report) error {
	if rep.Benchmark != "membench" {
		return fmt.Errorf("benchmark field is %q, want \"membench\"", rep.Benchmark)
	}
	if rep.Version < 1 {
		return fmt.Errorf("version %d < 1", rep.Version)
	}
	if rep.UnixTime <= 0 {
		return fmt.Errorf("unix_time %d is not positive", rep.UnixTime)
	}
	if len(rep.Workloads) == 0 {
		return fmt.Errorf("no workloads in report")
	}
	for _, w := range rep.Workloads {
		if w.Name == "" {
			return fmt.Errorf("workload with empty name")
		}
		if w.Mode != "closed_loop" && w.Mode != "open_loop" {
			return fmt.Errorf("workload %s: bad mode %q", w.Name, w.Mode)
		}
		if w.Ops <= 0 {
			return fmt.Errorf("workload %s: completed %d ops, want > 0", w.Name, w.Ops)
		}
		if w.OpsPerSec <= 0 {
			return fmt.Errorf("workload %s: ops_per_sec %f, want > 0", w.Name, w.OpsPerSec)
		}
		if w.WindowSec <= 0 {
			return fmt.Errorf("workload %s: window_sec %f, want > 0", w.Name, w.WindowSec)
		}
		if w.P99Ns < w.P50Ns {
			return fmt.Errorf("workload %s: p99 %d < p50 %d", w.Name, w.P99Ns, w.P50Ns)
		}
		for _, st := range w.Stages {
			if st.Stage == "" {
				return fmt.Errorf("workload %s: stage entry with empty name", w.Name)
			}
			if st.Count <= 0 {
				return fmt.Errorf("workload %s stage %s: count %d, want > 0", w.Name, st.Stage, st.Count)
			}
			if st.P99Ns < st.P50Ns {
				return fmt.Errorf("workload %s stage %s: p99 %.0f < p50 %.0f", w.Name, st.Stage, st.P99Ns, st.P50Ns)
			}
		}
	}
	if rep.Version >= 2 {
		// The lifecycle tracer samples by default; a report with no stage
		// attribution anywhere means tracing silently broke.
		any := false
		for _, w := range rep.Workloads {
			if len(w.Stages) > 0 {
				any = true
				break
			}
		}
		if !any {
			return fmt.Errorf("version %d report has no per-stage latency data in any workload", rep.Version)
		}
	}
	if rep.Version >= 3 {
		if err := validateQoS(rep); err != nil {
			return err
		}
	}
	if rep.Version >= 4 {
		if err := validateTiering(rep); err != nil {
			return err
		}
	}
	if rep.Version >= 5 {
		if err := validateTenants(rep); err != nil {
			return err
		}
	}
	if rep.Version >= 6 {
		if err := validateSmallRT(rep); err != nil {
			return err
		}
	}
	if rep.Version >= 7 {
		if err := validateFlight(rep); err != nil {
			return err
		}
	}
	if rep.Version >= 8 {
		if err := validateStreams(rep); err != nil {
			return err
		}
	}
	return nil
}

// validateSmallRT enforces the schema-v6 busy-poll ablation invariants.
// The mode gates are structural (did the spinning worker actually spin,
// did the park/wake run actually kick), so they hold on loaded CI
// machines; the ≥1.3× speedup acceptance gate applies only to full
// (non-quick) runs on a multi-core host, where the spinning worker has
// a core to burn — on one CPU the spin phase is cooperative scheduling
// and the two modes converge (see EXPERIMENTS.md).
func validateSmallRT(rep Report) error {
	sr := rep.SmallRT
	if sr == nil {
		return fmt.Errorf("version %d report has no smallrt ablation", rep.Version)
	}
	if sr.Off.Ops <= 0 || sr.On.Ops <= 0 {
		return fmt.Errorf("smallrt: ops off=%d on=%d, want both > 0", sr.Off.Ops, sr.On.Ops)
	}
	if sr.Off.BusyPollSpins != 0 {
		return fmt.Errorf("smallrt off: %d busy-poll spins with BusyPoll disabled", sr.Off.BusyPollSpins)
	}
	if sr.On.BusyPollSpins <= 0 {
		return fmt.Errorf("smallrt on: no busy-poll spins — the worker never entered the spin phase")
	}
	if sr.Off.Kicks <= 0 {
		return fmt.Errorf("smallrt off: no kicks — the park/wake baseline is not exercising the kick path")
	}
	if sr.Speedup <= 0 {
		return fmt.Errorf("smallrt: speedup %.3f, want > 0", sr.Speedup)
	}
	if !rep.Quick && rep.GoMaxProcs > 1 && sr.Speedup < 1.3 {
		return fmt.Errorf("smallrt: busy-poll speedup %.3fx < 1.3x acceptance gate", sr.Speedup)
	}
	return nil
}

// validateQoS enforces the schema-v3 QoS invariants: the overload
// workload must actually shed scavengers and never shed foreground, and
// the inline/notify ablation pair must differ in the inline counter.
// The gates are structural, not timing-based, so they hold on loaded CI
// machines; the latency comparison itself lives in EXPERIMENTS.md.
func validateQoS(rep Report) error {
	byName := map[string]WorkloadResult{}
	for _, w := range rep.Workloads {
		byName[w.Name] = w
	}
	if w, ok := byName["overload"]; ok {
		if len(w.Classes) == 0 {
			return fmt.Errorf("overload workload has no per-class results")
		}
		var fg, scav *ClassResult
		for i := range w.Classes {
			switch w.Classes[i].Class {
			case "foreground":
				fg = &w.Classes[i]
			case "scavenger":
				scav = &w.Classes[i]
			}
		}
		if fg == nil || scav == nil {
			return fmt.Errorf("overload workload is missing foreground or scavenger class results")
		}
		if fg.Shed != 0 {
			return fmt.Errorf("overload: %d foreground requests shed — foreground must never be shed", fg.Shed)
		}
		if fg.Ops <= 0 {
			return fmt.Errorf("overload: no foreground completions in the window")
		}
		if scav.Shed <= 0 {
			return fmt.Errorf("overload: no scavenger requests shed — admission control is not engaging")
		}
	}
	inline, haveInline := byName["inline_small"]
	notify, haveNotify := byName["notify_small"]
	if haveInline && inline.InlineCompleted <= 0 {
		return fmt.Errorf("inline_small: no inline completions — adaptive completion is not engaging")
	}
	if haveNotify && notify.InlineCompleted != 0 {
		return fmt.Errorf("notify_small: %d inline completions with inline disabled", notify.InlineCompleted)
	}
	return nil
}

func validateFile(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	return validate(rep)
}
