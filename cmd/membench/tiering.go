// The tiering workload exercises the transactional tiering daemon
// (internal/swapd) end to end on the simulated KeyStone II machine: a
// 400 MB slow-tier dataset (102,400 pages in 64 KB regions) under
// Zipf-skewed access whose hot set shifts every epoch, with a laggy
// writer trailing one epoch behind so demotions race real stores. A
// paced foreground prober ping-pongs one page through the application
// device the whole time, giving an uncontended latency baseline before
// the storm and a contended histogram during it — the QoS story is that
// the two p99s land within one log2 histogram bucket of each other.
//
// Unlike the realtime workloads this one runs in virtual time, so its
// numbers are deterministic for fixed seeds and safe to gate CI on.
package main

import (
	"fmt"
	"math/bits"
	"math/rand"
	"os"

	"memif/internal/core"
	"memif/internal/hw"
	"memif/internal/machine"
	"memif/internal/obs"
	"memif/internal/sim"
	"memif/internal/swapd"
	"memif/internal/uapi"
)

// TieringResult is the tiering section of the report (schema v4). All
// latencies are virtual (simulated) nanoseconds.
type TieringResult struct {
	Pages       int64 `json:"pages"`
	Regions     int   `json:"regions"`
	RegionBytes int64 `json:"region_bytes"`
	Epochs      int   `json:"epochs"`
	VirtNs      int64 `json:"virt_ns"` // simulated duration of the scenario

	Promotions        int64 `json:"promotions"`
	Demotions         int64 `json:"demotions"`
	ZeroCopyDemotions int64 `json:"zero_copy_demotions"`
	TxnAborts         int64 `json:"txn_aborts"`
	BytesMoved        int64 `json:"bytes_moved"`

	// PromotionLag measures region-turned-hot to promotion-committed.
	PromotionLagP50Ns int64 `json:"promotion_lag_p50_ns"`
	PromotionLagP99Ns int64 `json:"promotion_lag_p99_ns"`

	// Foreground probe latency, uncontended vs. during the migration
	// storm. The validate() gate allows at most one log2 bucket of
	// drift between the two p99s.
	FgBaselineOps   int64 `json:"fg_baseline_ops"`
	FgStormOps      int64 `json:"fg_storm_ops"`
	FgP99BaselineNs int64 `json:"fg_p99_baseline_ns"`
	FgP99StormNs    int64 `json:"fg_p99_storm_ns"`
}

// runTiering builds the machine, runs the scenario to completion in
// virtual time, and distills the daemon's metrics into the report row.
func runTiering(quick bool) *TieringResult {
	const (
		pageBytes   = 4096
		regionPages = 16
		regionBytes = regionPages * pageBytes
		numRegions  = 6400 // 102,400 pages ≈ 400 MB of slow memory
		baselineNS  = 20_000_000
		zipfS       = 1.2
	)
	epochs, epochNS := 5, int64(15_000_000)
	if quick {
		epochs, epochNS = 3, 10_000_000
	}

	m := machine.New(hw.KeyStoneII())
	as := m.NewAddressSpace(pageBytes)
	app := core.Open(m, as, core.DefaultOptions())

	opts := swapd.DefaultOptions()
	// Lower watermarks than the 90/70 defaults: the promotion rate is
	// MaxInflight-bound, so quick-mode windows must hit pressure with
	// ~70 resident regions rather than ~90.
	opts.HighWatermark, opts.LowWatermark = 0.72, 0.55
	opts.PeriodNS = 500_000
	opts.ScanPeriodNS = 1_000_000
	opts.MaxInflight = 8
	opts.ChainPages = 4 // small DMA batches bound foreground HOL blocking
	opts.ScanBudget = 400
	sd := swapd.New(app, opts)

	var (
		bases      [numRegions]int64
		fgBase     int64
		stormStart sim.Time // 0 until the baseline window closes
		stormDone  bool
		virtEnd    sim.Time
		baseHist   obs.Histogram
		stormHist  obs.Histogram
	)

	// fgOnce issues one paced foreground page move and records its
	// submission-to-completion latency. Failures (transiently full fast
	// node) are not observed; the prober simply retries next period.
	fgOnce := func(p *sim.Proc, dst hw.NodeID, h *obs.Histogram) bool {
		r := app.AllocRequest(p)
		if r == nil {
			return false
		}
		r.Op = uapi.OpMigrate
		r.SrcBase, r.Length, r.DstNode = fgBase, pageBytes, dst
		r.Class = uapi.ClassForeground
		if err := app.Submit(p, r); err != nil {
			app.FreeRequest(p, r)
			return false
		}
		for {
			if got := app.RetrieveCompleted(p); got != nil {
				ok := got.Status == uapi.StatusDone
				if ok {
					h.Observe(int64(got.Completed - got.Submitted))
				}
				app.FreeRequest(p, got)
				return ok
			}
			app.Poll(p, 0)
		}
	}

	m.Eng.Spawn("fg", func(p *sim.Proc) {
		defer app.Close()
		defer sd.Stop()
		for i := range bases {
			b, err := as.Mmap(p, regionBytes, hw.NodeSlow, fmt.Sprintf("t%d", i))
			if err != nil {
				panic(err)
			}
			bases[i] = b
			sd.Register(b, regionBytes)
		}
		fgBase, _ = as.Mmap(p, pageBytes, hw.NodeSlow, "fg-probe")
		if err := as.Write(p, fgBase, []byte{1}); err != nil {
			panic(err)
		}

		dst := hw.NodeFast
		flip := func(ok bool) {
			if !ok {
				return // retry the same destination next period
			}
			if dst == hw.NodeFast {
				dst = hw.NodeSlow
			} else {
				dst = hw.NodeFast
			}
		}
		start := p.Now()
		for p.Now() < start+baselineNS {
			flip(fgOnce(p, dst, &baseHist))
			p.SleepNS(50_000)
		}
		stormStart = p.Now()
		for !stormDone {
			flip(fgOnce(p, dst, &stormHist))
			p.SleepNS(50_000)
		}
		virtEnd = p.Now()
	})

	// The reader drives the Zipf hot set: touch hints plus a real read
	// so the access-bit scanner sees referenced-but-clean pages. The
	// hot set shifts by a fixed stride each epoch (churn).
	m.Eng.Spawn("reader", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(42))
		zipf := rand.NewZipf(rng, zipfS, 1, numRegions-1)
		for stormStart == 0 {
			p.SleepNS(500_000)
		}
		for e := 0; e < epochs; e++ {
			stride := e * 997
			end := stormStart + sim.Time(int64(e+1)*epochNS)
			for p.Now() < end {
				b := bases[(int(zipf.Uint64())+stride)%numRegions]
				sd.Touch(b, p.Now())
				if err := as.Touch(p, b, false); err != nil {
					panic(err)
				}
				p.SleepNS(3_000)
			}
		}
		stormDone = true
	})

	// The laggy writer trails one epoch behind the reader: it keeps
	// storing into regions that have already gone cold and are being
	// demoted, so commits race real dirty bits — the txn-abort path.
	m.Eng.Spawn("writer", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(1337))
		zipf := rand.NewZipf(rng, zipfS, 1, numRegions-1)
		for stormStart == 0 {
			p.SleepNS(500_000)
		}
		for e := 0; e < epochs && !stormDone; e++ {
			stride := 0
			if e > 0 {
				stride = (e - 1) * 997
			}
			end := stormStart + sim.Time(int64(e+1)*epochNS)
			for p.Now() < end && !stormDone {
				b := bases[(int(zipf.Uint64())+stride)%numRegions]
				if err := as.Write(p, b, []byte{0xEE}); err != nil {
					panic(err)
				}
				p.SleepNS(4_000)
			}
		}
	})

	m.Eng.Run()

	st := sd.Stats()
	ms := sd.Metrics()
	base, storm := baseHist.Snapshot(), stormHist.Snapshot()
	return &TieringResult{
		Pages:             int64(numRegions * regionPages),
		Regions:           numRegions,
		RegionBytes:       regionBytes,
		Epochs:            epochs,
		VirtNs:            int64(virtEnd),
		Promotions:        st.Promotions,
		Demotions:         st.Demotions,
		ZeroCopyDemotions: st.ZeroCopyDemotions,
		TxnAborts:         st.Aborts,
		BytesMoved:        st.BytesMoved,
		PromotionLagP50Ns: ms.PromotionLag.Quantile(0.50),
		PromotionLagP99Ns: ms.PromotionLag.Quantile(0.99),
		FgBaselineOps:     base.Count,
		FgStormOps:        storm.Count,
		FgP99BaselineNs:   base.Quantile(0.99),
		FgP99StormNs:      storm.Quantile(0.99),
	}
}

// bucketDelta is the distance between two latencies in log2 histogram
// buckets — the unit the "p99 holds under migration" gate is stated in.
func bucketDelta(a, b int64) int {
	ba, bb := bits.Len64(uint64(a)), bits.Len64(uint64(b))
	if ba > bb {
		return ba - bb
	}
	return bb - ba
}

// validateTiering enforces the schema-v4 tiering invariants: the
// scenario is big enough to count (≥100k pages), every migration path
// fired (promotions, demotions, zero-copy demotions, txn aborts), the
// promotion-lag histogram has data, and foreground p99 held within one
// log2 bucket of its uncontended baseline during the storm.
func validateTiering(rep Report) error {
	t := rep.Tiering
	if t == nil {
		return fmt.Errorf("version %d report has no tiering section", rep.Version)
	}
	if t.Pages < 100_000 {
		return fmt.Errorf("tiering: %d pages, want >= 100000", t.Pages)
	}
	if t.Promotions <= 0 {
		return fmt.Errorf("tiering: no promotions — scan/touch-driven promotion is not engaging")
	}
	if t.Demotions <= 0 {
		return fmt.Errorf("tiering: no demotions — watermark pressure is not engaging")
	}
	if t.ZeroCopyDemotions <= 0 {
		return fmt.Errorf("tiering: no zero-copy demotions — non-exclusive shadows are not being used")
	}
	if t.TxnAborts <= 0 {
		return fmt.Errorf("tiering: no txn aborts — the racing writer never hit a commit window")
	}
	if t.PromotionLagP99Ns <= 0 {
		return fmt.Errorf("tiering: empty promotion-lag histogram")
	}
	if t.FgBaselineOps <= 0 || t.FgStormOps <= 0 {
		return fmt.Errorf("tiering: foreground probe recorded %d baseline / %d storm ops, want both > 0",
			t.FgBaselineOps, t.FgStormOps)
	}
	if d := bucketDelta(t.FgP99StormNs, t.FgP99BaselineNs); d > 1 {
		return fmt.Errorf("tiering: foreground p99 under migration (%dns) drifted %d log2 buckets from baseline (%dns)",
			t.FgP99StormNs, d, t.FgP99BaselineNs)
	}
	return nil
}

// reportTiering prints the human summary line mirroring the per-workload
// lines of the realtime benchmarks.
func reportTiering(t *TieringResult) {
	fmt.Fprintf(os.Stderr,
		"membench: tiering      %6d promo %6d demo (%d zero-copy) %5d aborts  promo-lag p99 %dns  fg p99 %dns vs %dns\n",
		t.Promotions, t.Demotions, t.ZeroCopyDemotions, t.TxnAborts,
		t.PromotionLagP99Ns, t.FgP99StormNs, t.FgP99BaselineNs)
}
