// The tenants workload exercises the multi-tenant virtualization layer
// end to end, in two sub-scenarios on two devices:
//
//   - fairness: 1,021 equal-weight cohort tenants plus a weighted trio
//     (weights 1/2/4) are open on one device. The cohort phase offers
//     symmetric round-robin load and measures Jain's fairness index over
//     per-tenant completions. The trio phase then keeps all three
//     weighted tenants saturated at quotas well past the chunk rings'
//     capacity, so the DRR scheduler — not the offered load — sets their
//     completion shares, which must land within 10% of the weight ratio.
//     (The phases are sequential on purpose: with 1k tenants sweeping,
//     the cohort exhausts the request slab and the trio would be
//     arrival-limited, measuring the harness instead of the scheduler.)
//
//   - isolation: a paced foreground victim shares a device with an
//     aggressor that floods its own quota (shedding) and mass-cancels
//     everything it submitted, over and over. A background "hum" tenant
//     keeps the device equally busy in both conditions so the comparison
//     isolates the aggressor's effect, not worker wake-up latency. The
//     victim must see zero sheds and its p99 must hold within one log2
//     bucket width (a doubling) of its uncontended baseline.
//
// Unlike the tiering scenario this runs in real time; the gates are
// structural (counts, shares, bucket identity) rather than absolute
// latencies, so they hold on loaded CI runners.
package main

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"memif/internal/obs"
	"memif/internal/realtime"
)

// TenantsResult is the tenants section of the report (schema v5).
type TenantsResult struct {
	// Tenants is the peak concurrently-open tenant count across the
	// scenario's devices; CohortTenants the equal-weight fairness cohort.
	Tenants       int `json:"tenants"`
	CohortTenants int `json:"cohort_tenants"`

	// JainIndex is Jain's fairness index over the cohort tenants'
	// completions in the measure window (1.0 = perfectly fair).
	JainIndex float64 `json:"jain_index"`
	CohortOps int64   `json:"cohort_ops"`
	WindowSec float64 `json:"window_sec"`

	// WeightedShares is the weighted trio's split of its own completions
	// versus the share its DRR weight promises.
	WeightedShares []WeightedShare `json:"weighted_shares"`

	// Victim-vs-aggressor isolation: the victim's paced-foreground p99
	// with and without the aggressor storm, its shed count (must be 0),
	// and the aggressor's shed/cancel counters (must both fire).
	VictimBaselineOps   int64 `json:"victim_baseline_ops"`
	VictimStormOps      int64 `json:"victim_storm_ops"`
	VictimP99BaselineNs int64 `json:"victim_p99_baseline_ns"`
	VictimP99StormNs    int64 `json:"victim_p99_storm_ns"`
	VictimShed          int64 `json:"victim_shed"`
	AggressorShed       int64 `json:"aggressor_shed"`
	AggressorCanceled   int64 `json:"aggressor_canceled"`
}

// WeightedShare is one weighted-trio tenant's slice of its phase.
type WeightedShare struct {
	Name        string  `json:"name"`
	Weight      int64   `json:"weight"`
	Ops         int64   `json:"ops"`
	Share       float64 `json:"share"`        // of the trio's total completions
	TargetShare float64 `json:"target_share"` // weight / Σweights
}

// runTenants runs both sub-scenarios and distills them into the report
// row.
func runTenants(quick bool) *TenantsResult {
	res := &TenantsResult{}
	runTenantFairness(quick, res)
	runTenantIsolation(quick, res)
	return res
}

// drainFreeLoop retrieves and frees completions until stop is set and
// the device has drained.
func drainFreeLoop(d *realtime.Device, stop *atomic.Bool, wg *sync.WaitGroup) {
	defer wg.Done()
	buf := make([]*realtime.Request, 64)
	for {
		n := d.RetrieveCompletedBatch(buf)
		for i := 0; i < n; i++ {
			d.FreeRequest(buf[i])
		}
		if n > 0 {
			continue
		}
		if stop.Load() {
			s := d.Stats()
			if s.Completed >= s.Submitted && d.RetrieveCompletedBatch(buf[:1]) == 0 {
				return
			}
		}
		d.Poll(time.Millisecond)
	}
}

// runTenantFairness is the cohort + weighted-trio device.
func runTenantFairness(quick bool, res *TenantsResult) {
	const (
		cohortN    = 1021
		cohortSize = 4 << 10
		trioSize   = 32 << 10
		trioQuota  = 128
	)
	warmup, window := 500*time.Millisecond, 1500*time.Millisecond
	if quick {
		warmup, window = 200*time.Millisecond, 400*time.Millisecond
	}
	d := realtime.Open(realtime.Options{
		NumReqs: 512, Controllers: 2, StagingShards: 2, ChunkBytes: 8 << 10,
	})
	defer d.Close()

	cohort := make([]*realtime.Tenant, cohortN)
	for i := range cohort {
		t, err := d.OpenTenant(realtime.TenantConfig{
			Name: fmt.Sprintf("cohort-%04d", i), Weight: 1, SlotQuota: 2,
		})
		if err != nil {
			panic(err)
		}
		cohort[i] = t
	}
	trioWeights := []int{1, 2, 4}
	trio := make([]*realtime.Tenant, len(trioWeights))
	for i, w := range trioWeights {
		t, err := d.OpenTenant(realtime.TenantConfig{
			Name: fmt.Sprintf("weighted-%d", w), Weight: w, SlotQuota: trioQuota,
		})
		if err != nil {
			panic(err)
		}
		trio[i] = t
	}
	res.Tenants = cohortN + len(trio) + 3 // + isolation device's victim, aggressor, hum
	res.CohortTenants = cohortN

	dsts := make([][]byte, 512)
	for i := range dsts {
		dsts[i] = make([]byte, trioSize)
	}
	src := make([]byte, trioSize)

	var stop atomic.Bool
	var pwg sync.WaitGroup
	for p := 0; p < 2; p++ {
		pwg.Add(1)
		go drainFreeLoop(d, &stop, &pwg)
	}

	// Phase 1 — cohort fairness. Symmetric round-robin sweeps, one small
	// request per tenant per sweep, so every tenant sees the same offered
	// load and the completion spread measures the scheduler, not the
	// harness.
	var stopCohort atomic.Bool
	var cwg sync.WaitGroup
	for shard := 0; shard < 2; shard++ {
		shard := shard
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for !stopCohort.Load() {
				for i := shard; i < cohortN && !stopCohort.Load(); i += 2 {
					var r *realtime.Request
					for try := 0; try < 4 && r == nil; try++ {
						if r = d.AllocRequest(); r == nil {
							runtime.Gosched()
						}
					}
					if r == nil {
						continue // slab exhausted: catch this tenant next sweep
					}
					r.Src, r.Dst = src[:cohortSize], dsts[r.Index()][:cohortSize]
					if err := cohort[i].Submit(r); err != nil {
						d.FreeRequest(r) // quota full: the tenant already has service coming
					}
				}
			}
		}()
	}
	time.Sleep(warmup)
	c0 := d.Stats()
	t0 := time.Now()
	time.Sleep(window)
	c1 := d.Stats()
	res.WindowSec = time.Since(t0).Seconds()
	stopCohort.Store(true)
	cwg.Wait()

	// Tenant ids are dense and stable: the default namespace is 0, the
	// cohort occupies [1, cohortN], the trio the next three slots.
	var sum, sumSq float64
	for i := 0; i < cohortN; i++ {
		x := float64(c1.Tenants[1+i].Completed - c0.Tenants[1+i].Completed)
		res.CohortOps += int64(x)
		sum += x
		sumSq += x * x
	}
	if sumSq > 0 {
		res.JainIndex = sum * sum / (float64(cohortN) * sumSq)
	}

	// Phase 2 — weighted shares. One submitter keeps all three weighted
	// tenants saturated near quota with chunked transfers; three quotas
	// times four chunks each is several times the chunk rings' capacity,
	// so dispatch backpressure reaches the submission queues and DRR
	// arbitration — not arrival order — decides the shares.
	var stopTrio atomic.Bool
	var twg sync.WaitGroup
	twg.Add(1)
	go func() {
		defer twg.Done()
		for !stopTrio.Load() {
			idle := true
			for _, t := range trio {
				if t.Stats().InFlight >= trioQuota-8 {
					continue
				}
				r := d.AllocRequest()
				if r == nil {
					break
				}
				r.Src, r.Dst = src[:trioSize], dsts[r.Index()][:trioSize]
				if err := t.Submit(r); err != nil {
					d.FreeRequest(r)
				} else {
					idle = false
				}
			}
			if idle {
				runtime.Gosched()
			}
		}
	}()
	time.Sleep(warmup)
	w0 := d.Stats()
	time.Sleep(window)
	w1 := d.Stats()
	stopTrio.Store(true)
	twg.Wait()
	stop.Store(true)
	pwg.Wait()

	totalW, totalOps := 0, int64(0)
	trioOps := make([]int64, len(trio))
	for i, t := range trio {
		id := t.ID()
		trioOps[i] = w1.Tenants[id].Completed - w0.Tenants[id].Completed
		totalOps += trioOps[i]
		totalW += trioWeights[i]
	}
	for i, t := range trio {
		share := 0.0
		if totalOps > 0 {
			share = float64(trioOps[i]) / float64(totalOps)
		}
		res.WeightedShares = append(res.WeightedShares, WeightedShare{
			Name:        t.Name(),
			Weight:      int64(trioWeights[i]),
			Ops:         trioOps[i],
			Share:       share,
			TargetShare: float64(trioWeights[i]) / float64(totalW),
		})
	}
}

// runTenantIsolation is the victim-vs-aggressor device: baseline window
// first (victim paced over the background hum), then the same paced
// victim under the aggressor's overload + cancel storm.
func runTenantIsolation(quick bool, res *TenantsResult) {
	const (
		victimSize = 4 << 10
		bgSize     = 32 << 10
	)
	// Interleaved pooling, in the spirit of the tracing-overhead guard's
	// min-of-N: three baseline/storm window pairs alternate and each
	// condition's latency histogram is pooled across its three windows
	// before taking the p99. Interleaving shares runner noise between
	// the conditions instead of concentrating it in one contiguous
	// stretch; a real isolation leak persists in every storm window and
	// survives the pooling.
	const rounds = 3
	settle, window := 100*time.Millisecond, 400*time.Millisecond
	if quick {
		settle, window = 50*time.Millisecond, 150*time.Millisecond
	}
	// The inline threshold is frozen between the victim's and the bg
	// request sizes so both windows use identical service paths: the
	// victim completes inline on the worker, the 32 KB background
	// traffic is chunked through the controllers. Leaving the adaptive
	// retuner on would let the storm shift the victim's own path
	// between the windows, and the comparison would measure the retuner
	// rather than tenant isolation.
	d := realtime.Open(realtime.Options{
		NumReqs: 128, Controllers: 2, StagingShards: 2, ChunkBytes: 8 << 10,
		QoS: realtime.QoSOptions{InlineThreshold: 8 << 10, DisableRetune: true},
	})
	defer d.Close()

	victim, err := d.OpenTenant(realtime.TenantConfig{Name: "victim", Weight: 2, SlotQuota: 16})
	if err != nil {
		panic(err)
	}
	aggr, err := d.OpenTenant(realtime.TenantConfig{Name: "aggressor", Weight: 1, SlotQuota: 16})
	if err != nil {
		panic(err)
	}
	hum, err := d.OpenTenant(realtime.TenantConfig{Name: "hum", Weight: 1, SlotQuota: 8})
	if err != nil {
		panic(err)
	}

	dsts := make([][]byte, 128)
	for i := range dsts {
		dsts[i] = make([]byte, bgSize)
	}
	src := make([]byte, bgSize)

	var stop atomic.Bool
	var pwg sync.WaitGroup
	pwg.Add(1)
	go drainFreeLoop(d, &stop, &pwg)

	var wg sync.WaitGroup
	// Hum: closed-loop background transfers in BOTH windows, paced by
	// its own admission (quota full → brief sleep). It keeps the worker,
	// the controllers, and the background class busy, so the baseline
	// and storm windows differ only by the aggressor's behavior — not by
	// wake-up latency — and the aggressor's scavenger-class traffic
	// stays starved behind it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			r := d.AllocRequest()
			if r == nil {
				runtime.Gosched()
				continue
			}
			r.Class = realtime.ClassBackground
			r.Src, r.Dst = src[:bgSize], dsts[r.Index()][:bgSize]
			if err := hum.Submit(r); err != nil {
				d.FreeRequest(r)
				time.Sleep(20 * time.Microsecond)
			}
		}
	}()
	// Victim: paced foreground, small inline-completed requests, well
	// under its own quota — shed-free by construction unless another
	// tenant's pressure leaks through admission.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for !stop.Load() {
			<-tick.C
			r := d.AllocRequest()
			if r == nil {
				continue
			}
			r.Src, r.Dst = src[:victimSize], dsts[r.Index()][:victimSize]
			if err := victim.Submit(r); err != nil {
				// Leave the evidence in the victim's shed counter; the
				// validate gate turns any shed into a failure.
				d.FreeRequest(r)
			}
		}
	}()

	// Aggressor storm: a scavenger-class flood plus periodic mass-cancels
	// of everything it has in flight. Strict priority starves the
	// scavenger class behind the hum's background traffic, so the
	// aggressor's in-flight count pins at its quota and every further
	// attempt sheds — no CPU-monopolizing burst loop needed, which
	// matters on single-core runs where a burst would delay the victim
	// through the Go scheduler rather than through the device.
	// stormOn gates the aggressor between window pairs; while off it
	// cancels its residue and idles. While on, every ~10ms it floods a
	// scavenger-class burst well past its own quota — the first sixteen
	// fill the quota, the rest shed at admission — then mass-cancels
	// whatever is still queued. Each burst-and-cancel costs tens of
	// microseconds out of a 10ms period, well under 1% of the window, so
	// the victim's p99 — an order statistic over the worst 1% — cannot
	// be an artifact of the aggressor goroutine's own CPU time; any p99
	// movement it causes must come through the device.
	var stormOn, stopStorm atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stopStorm.Load() {
			if !stormOn.Load() {
				aggr.CancelAll()
				time.Sleep(2 * time.Millisecond)
				continue
			}
			for i := 0; i < 28; i++ {
				r := d.AllocRequest()
				if r == nil {
					break
				}
				r.Class = realtime.ClassScavenger
				r.Src, r.Dst = src[:bgSize], dsts[r.Index()][:bgSize]
				if err := aggr.Submit(r); err != nil {
					d.FreeRequest(r) // ErrOverload: the shed the gate demands
				}
			}
			aggr.CancelAll()
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Alternate baseline and storm windows; the victim's pacing and the
	// hum never change, only the aggressor toggles.
	measure := func(on bool, pool *obs.HistogramSnapshot) int64 {
		stormOn.Store(on)
		time.Sleep(settle)
		s0 := victim.Stats()
		time.Sleep(window)
		s1 := victim.Stats()
		lat := s1.Latency.Delta(s0.Latency)
		pool.Count += lat.Count
		pool.Sum += lat.Sum
		for i := range lat.Buckets {
			pool.Buckets[i] += lat.Buckets[i]
		}
		return s1.Completed - s0.Completed
	}
	var basePool, stormPool obs.HistogramSnapshot
	for round := 0; round < rounds; round++ {
		res.VictimBaselineOps += measure(false, &basePool)
		res.VictimStormOps += measure(true, &stormPool)
	}
	res.VictimP99BaselineNs = int64(basePool.QuantileInterp(0.99))
	res.VictimP99StormNs = int64(stormPool.QuantileInterp(0.99))

	stopStorm.Store(true)
	stop.Store(true)
	wg.Wait()
	pwg.Wait()

	res.VictimShed = victim.Stats().Shed
	ast := aggr.Stats()
	res.AggressorShed = ast.Shed
	res.AggressorCanceled = ast.Canceled
}

// validateTenants enforces the schema-v5 multi-tenant invariants: a
// four-digit tenant fleet, cohort fairness by Jain's index, weighted
// shares within 10% of the DRR weights, and victim isolation — zero
// sheds and a p99 that holds its uncontended log2 bucket — while the
// aggressor demonstrably overloaded and cancel-stormed its own lane.
func validateTenants(rep Report) error {
	t := rep.Tenants
	if t == nil {
		return fmt.Errorf("version %d report has no tenants section", rep.Version)
	}
	if t.Tenants < 1000 {
		return fmt.Errorf("tenants: %d tenants, want >= 1000", t.Tenants)
	}
	if t.CohortOps <= 0 {
		return fmt.Errorf("tenants: no cohort completions in the window")
	}
	if t.JainIndex < 0.90 {
		return fmt.Errorf("tenants: Jain index %.4f < 0.90 across the equal-weight cohort", t.JainIndex)
	}
	if len(t.WeightedShares) == 0 {
		return fmt.Errorf("tenants: no weighted-share results")
	}
	for _, w := range t.WeightedShares {
		if w.Ops <= 0 {
			return fmt.Errorf("tenants: weighted tenant %s completed nothing", w.Name)
		}
		if rel := (w.Share - w.TargetShare) / w.TargetShare; rel > 0.10 || rel < -0.10 {
			return fmt.Errorf("tenants: %s share %.4f is %.1f%% off its weight share %.4f (tolerance 10%%)",
				w.Name, w.Share, rel*100, w.TargetShare)
		}
	}
	if t.VictimBaselineOps <= 0 || t.VictimStormOps <= 0 {
		return fmt.Errorf("tenants: victim recorded %d baseline / %d storm ops, want both > 0",
			t.VictimBaselineOps, t.VictimStormOps)
	}
	if t.VictimShed != 0 {
		return fmt.Errorf("tenants: victim shed %d times — the aggressor's overload leaked through admission", t.VictimShed)
	}
	// "Holds its log2 bucket" as a noise-robust gate: the storm p99 must
	// stay within one bucket width — a doubling — of the uncontended
	// p99. Exact bucket identity would turn into a coin flip whenever
	// the true p99 sits near a power-of-two boundary, which depends on
	// the machine, not on the device's isolation.
	if t.VictimP99StormNs > 2*t.VictimP99BaselineNs {
		return fmt.Errorf("tenants: victim p99 under the storm (%dns) degraded past a log2 bucket width of its uncontended p99 (%dns)",
			t.VictimP99StormNs, t.VictimP99BaselineNs)
	}
	if t.AggressorShed <= 0 {
		return fmt.Errorf("tenants: aggressor was never shed — per-tenant admission is not engaging")
	}
	if t.AggressorCanceled <= 0 {
		return fmt.Errorf("tenants: aggressor canceled nothing — the cancel storm never claimed a request")
	}
	return nil
}

// reportTenants prints the human summary lines.
func reportTenants(t *TenantsResult) {
	fmt.Fprintf(os.Stderr,
		"membench: tenants      %d tenants  Jain %.4f over %d cohort ops  victim p99 %dns vs %dns (shed %d)  aggressor shed %d canceled %d\n",
		t.Tenants, t.JainIndex, t.CohortOps,
		t.VictimP99StormNs, t.VictimP99BaselineNs, t.VictimShed,
		t.AggressorShed, t.AggressorCanceled)
	for _, w := range t.WeightedShares {
		fmt.Fprintf(os.Stderr, "membench:   weight %d    %10d ops  share %.4f (target %.4f)\n",
			w.Weight, w.Ops, w.Share, w.TargetShare)
	}
}
