package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"memif/internal/obs/flight"
	"memif/internal/realtime"
)

// The deterministic flight probe: instead of hoping a natural outlier
// shows up inside a benchmark window, warm the adaptive threshold with
// a fleet of fast requests, then inject exactly one request whose copy
// is chaos-delayed far past any plausible threshold. The recorder must
// breach on it, capture it with a complete seven-stage vector, and —
// with the watchdog off — capture nothing it didn't breach on. This is
// the CI acceptance gate for retroactive tail capture.

// FlightSummary is one workload's flight-recorder footprint in the
// report: whole-run counter totals plus what the ring still holds.
type FlightSummary struct {
	RingDepth int   `json:"ring_depth"`
	Breaches  int64 `json:"breaches"`
	Stalls    int64 `json:"stalls"`
	Captured  int64 `json:"captured"`
	// LatencyOutliers is how many breach records the ring retains;
	// CompleteVectors how many of those carry all seven stage stamps
	// (they must all). MaxLatencyNs is the worst retained outlier.
	LatencyOutliers int   `json:"latency_outliers"`
	CompleteVectors int   `json:"complete_vectors"`
	MaxLatencyNs    int64 `json:"max_latency_ns,omitempty"`
	// SLORequests/SLOGood are the foreground-class objective totals.
	SLORequests int64 `json:"slo_requests"`
	SLOGood     int64 `json:"slo_good"`
}

// flightSummary condenses a snapshot into the report row; nil when the
// recorder was disarmed.
func flightSummary(fs flight.Snapshot) *FlightSummary {
	if !fs.Enabled {
		return nil
	}
	s := &FlightSummary{
		RingDepth: fs.RingDepth,
		Breaches:  fs.Breaches,
		Stalls:    fs.Stalls,
		Captured:  fs.Captured,
	}
	for _, o := range fs.Outliers {
		if o.Kind != flight.KindLatency {
			continue
		}
		s.LatencyOutliers++
		complete := true
		for _, ts := range o.TS {
			if ts == 0 {
				complete = false
			}
		}
		if complete {
			s.CompleteVectors++
		}
		if o.LatencyNs > s.MaxLatencyNs {
			s.MaxLatencyNs = o.LatencyNs
		}
	}
	for _, cs := range fs.SLO.Classes {
		if cs.Class == int(realtime.ClassForeground) {
			s.SLORequests, s.SLOGood = cs.Total, cs.Good
		}
	}
	return s
}

// FlightProbeResult is the deterministic probe's report section.
type FlightProbeResult struct {
	WarmupRequests  int   `json:"warmup_requests"`
	InjectedDelayNs int64 `json:"injected_delay_ns"`
	Breaches        int64 `json:"breaches"`
	Captured        int64 `json:"captured"`
	// ThresholdNs is the adaptive threshold the delayed request was
	// judged against; OutlierLatencyNs its measured latency; both from
	// the captured record. CompleteVector reports all seven stage
	// stamps present on it.
	ThresholdNs      int64 `json:"threshold_ns"`
	OutlierLatencyNs int64 `json:"outlier_latency_ns"`
	CompleteVector   bool  `json:"complete_vector"`
	SLORequests      int64 `json:"slo_requests"`
	SLOGood          int64 `json:"slo_good"`
}

// runFlightProbe drives the deterministic scenario on a small device:
// sequential 4 KB requests past the recorder's warmup, then one
// request delayed 10 ms in BeforeChunkCopy — orders of magnitude past
// the threshold the warmup trained, on any host.
func runFlightProbe() *FlightProbeResult {
	const warmupReqs = 96
	const delay = 10 * time.Millisecond
	var delayArmed atomic.Bool
	d := realtime.Open(realtime.Options{
		NumReqs: 64, Controllers: 2, StagingShards: 2,
		// Watchdog off: with no stall records, captured == breaches is
		// an exact accounting check.
		Flight: flight.Options{Watchdog: flight.WatchdogOptions{Disable: true}},
		Chaos: &realtime.ChaosHooks{
			BeforeChunkCopy: func(idx uint32, off, end int) {
				if delayArmed.Load() {
					time.Sleep(delay)
				}
			},
		},
	})
	defer d.Close()

	src := make([]byte, 4<<10)
	dst := make([]byte, 4<<10)
	do := func() {
		var r *realtime.Request
		for r == nil {
			r = d.AllocRequest()
		}
		r.Src, r.Dst = src, dst
		if err := d.Submit(r); err != nil {
			panic(fmt.Sprintf("flight probe submit: %v", err))
		}
		for {
			if got := d.RetrieveCompleted(); got != nil {
				d.FreeRequest(got)
				return
			}
			d.Poll(time.Millisecond)
		}
	}
	for i := 0; i < warmupReqs; i++ {
		do()
	}
	delayArmed.Store(true)
	do()
	delayArmed.Store(false)

	fs := d.FlightSnapshot()
	res := &FlightProbeResult{
		WarmupRequests:  warmupReqs,
		InjectedDelayNs: int64(delay),
		Breaches:        fs.Breaches,
		Captured:        fs.Captured,
	}
	for _, o := range fs.Outliers {
		// The delayed request is the record at or past the injected
		// delay; warmup jitter can legitimately add smaller breaches.
		if o.Kind != flight.KindLatency || o.LatencyNs < int64(delay) {
			continue
		}
		res.ThresholdNs = o.ThresholdNs
		res.OutlierLatencyNs = o.LatencyNs
		res.CompleteVector = true
		for _, ts := range o.TS {
			if ts == 0 {
				res.CompleteVector = false
			}
		}
	}
	for _, cs := range fs.SLO.Classes {
		if cs.Class == int(realtime.ClassForeground) {
			res.SLORequests, res.SLOGood = cs.Total, cs.Good
		}
	}
	return res
}

// validateFlight enforces the schema-v7 invariants: the deterministic
// probe must have caught its injected outlier, and every workload's
// retained breach records must carry complete stage vectors — with the
// overload workload's deep ring additionally required to retain every
// breach of the run (modulo records a stall snapshot overwrote).
func validateFlight(rep Report) error {
	p := rep.Flight
	if p == nil {
		return fmt.Errorf("version %d report has no flight probe", rep.Version)
	}
	if p.Breaches < 1 {
		return fmt.Errorf("flight probe: no breaches — the injected %s delay went uncaptured",
			time.Duration(p.InjectedDelayNs))
	}
	if p.Captured != p.Breaches {
		return fmt.Errorf("flight probe: captured %d != breaches %d (watchdog off: must match exactly)",
			p.Captured, p.Breaches)
	}
	if p.OutlierLatencyNs < p.InjectedDelayNs {
		return fmt.Errorf("flight probe: no retained outlier at or past the injected delay (worst %s < %s)",
			time.Duration(p.OutlierLatencyNs), time.Duration(p.InjectedDelayNs))
	}
	if p.ThresholdNs <= 0 || p.ThresholdNs >= p.OutlierLatencyNs {
		return fmt.Errorf("flight probe: threshold %d not in (0, %d)", p.ThresholdNs, p.OutlierLatencyNs)
	}
	if !p.CompleteVector {
		return fmt.Errorf("flight probe: captured outlier is missing stage stamps")
	}
	if p.SLORequests < int64(p.WarmupRequests) {
		return fmt.Errorf("flight probe: SLO tracked %d requests, want >= %d warmup",
			p.SLORequests, p.WarmupRequests)
	}
	for _, w := range rep.Workloads {
		f := w.Flight
		if f == nil {
			return fmt.Errorf("workload %s: no flight summary — the recorder was not armed", w.Name)
		}
		if f.CompleteVectors != f.LatencyOutliers {
			return fmt.Errorf("workload %s: %d of %d retained outliers have incomplete stage vectors",
				w.Name, f.LatencyOutliers-f.CompleteVectors, f.LatencyOutliers)
		}
		if f.SLORequests <= 0 {
			return fmt.Errorf("workload %s: SLO tracker saw no requests", w.Name)
		}
		if w.Name == "overload" {
			// The tail-forensics acceptance gate: the 8192-deep ring
			// must still hold every breach of the run. Stall and event
			// records share the ring, so each may displace at most one
			// breach record.
			if f.Breaches > int64(f.RingDepth) {
				return fmt.Errorf("overload: %d breaches overflow the %d-deep ring — gate unverifiable",
					f.Breaches, f.RingDepth)
			}
			lost := f.Breaches - int64(f.LatencyOutliers)
			if lost < 0 || lost > f.Stalls+(f.Captured-f.Breaches-f.Stalls) {
				return fmt.Errorf("overload: ring retains %d of %d breaches with only %d stall/event records",
					f.LatencyOutliers, f.Breaches, f.Captured-f.Breaches)
			}
		}
	}
	return nil
}
