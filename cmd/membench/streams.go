// The streams workload exercises the multi-stream engine
// (internal/streamrt) end to end on the simulated KeyStone II machine:
// four GB-scale producer streams ingest disjoint slow-tier ranges
// through one engine's pinned eight-buffer ring while a paced
// foreground prober ping-pongs one page through a second device on the
// same machine — the same shared-DMA contention shape as the tiering
// scenario. The gates are structural and deterministic (virtual time):
// every stream's checksum must match an independent RunDirect pass over
// the same bytes, the engine must never stall (the never-stall fallback
// covers slow fills), the buffer ring must be mapped O(ring) — not
// O(chunks) — fills must coalesce into fewer SubmitBatch flushes than
// fills, foreground p99 must hold within one log2 bucket of its
// uncontended baseline, and the flight recorder must have captured slow
// fills with complete stage vectors.
package main

import (
	"fmt"
	"os"

	"memif/internal/core"
	"memif/internal/hw"
	"memif/internal/machine"
	"memif/internal/obs"
	"memif/internal/obs/flight"
	"memif/internal/sim"
	"memif/internal/streamrt"
	"memif/internal/uapi"
	wload "memif/internal/workloads"
)

// StreamsResult is the streams section of the report (schema v8). All
// latencies are virtual (simulated) nanoseconds.
type StreamsResult struct {
	Streams        int   `json:"streams"`
	BytesPerStream int64 `json:"bytes_per_stream"`
	TotalBytes     int64 `json:"total_bytes"`
	RingBufs       int   `json:"ring_bufs"`
	BufBytes       int64 `json:"buf_bytes"`
	VirtNs         int64 `json:"virt_ns"`

	// BufMmaps counts mmap calls the engine made for its ring; the
	// validate() gate pins it to RingBufs (pinned, recycled buffers —
	// never a per-chunk carve/teardown).
	BufMmaps int64 `json:"buf_mmaps"`
	// Fills counts fill grants, FillBatches the SubmitBatch flushes
	// that carried them; Fills > FillBatches proves coalescing.
	Fills       int64 `json:"fills"`
	FillBatches int64 `json:"fill_batches"`

	FastChunks int64 `json:"fast_chunks"`
	SlowChunks int64 `json:"slow_chunks"`
	Stalls     int64 `json:"stalls"`

	// ChecksumsOK reports every stream's kernel checksum matched an
	// independent RunDirect pass over the same range.
	ChecksumsOK bool `json:"checksums_ok"`
	// ThroughputMBs is aggregate ingest throughput over the storm
	// window, in virtual MB/s.
	ThroughputMBs float64 `json:"throughput_mbs"`

	// Foreground probe latency on the sibling device, uncontended vs.
	// during the ingest storm; the gate allows one log2 bucket of drift.
	FgBaselineOps   int64 `json:"fg_baseline_ops"`
	FgStormOps      int64 `json:"fg_storm_ops"`
	FgP99BaselineNs int64 `json:"fg_p99_baseline_ns"`
	FgP99StormNs    int64 `json:"fg_p99_storm_ns"`

	// Flight-recorder forensics: slow fills must have been captured
	// with all seven stage stamps present and monotone.
	FlightBreaches        int64 `json:"flight_breaches"`
	FlightCaptured        int64 `json:"flight_captured"`
	FlightCompleteVectors bool  `json:"flight_complete_vectors"`
}

// runStreams builds the machine, runs the scenario to completion in
// virtual time, and distills the engine snapshot into the report row.
func runStreams(quick bool) *StreamsResult {
	const (
		pageBytes  = 4096
		baselineNS = 20_000_000
		numStreams = 4
	)
	perStream := int64(256) << 20 // 1 GB total across the four producers
	if quick {
		perStream = 32 << 20
	}

	m := machine.New(hw.KeyStoneII())
	as := m.NewAddressSpace(pageBytes)
	app := core.Open(m, as, core.DefaultOptions())
	dev := core.Open(m, as, core.DefaultOptions())

	eopts := streamrt.DefaultEngineOptions()
	// Aggressive thresholds so ordinary fill jitter breaches: the gate
	// is that the forensics pipeline captured complete vectors, not
	// that slow fills are rare.
	eopts.Flight = flight.Options{ThresholdFloorNs: 1, ThresholdMult: 1, Warmup: 8, RingDepth: 1024}

	var (
		bases      [numStreams]int64
		direct     [numStreams]uint64
		got        [numStreams]uint64
		fgBase     int64
		stormStart sim.Time
		stormEnd   sim.Time
		producers  int
		stormDone  bool
		baseHist   obs.Histogram
		stormHist  obs.Histogram
		res        = &StreamsResult{
			Streams:        numStreams,
			BytesPerStream: perStream,
			TotalBytes:     numStreams * perStream,
			RingBufs:       eopts.RingBufs,
			BufBytes:       eopts.BufBytes,
		}
	)
	kernels := [numStreams]wload.Kernel{wload.Triad, wload.Add, wload.PGain, wload.Copy}
	classes := [numStreams]uapi.Class{uapi.ClassBackground, uapi.ClassBackground, uapi.ClassScavenger, uapi.ClassScavenger}

	// fgOnce issues one paced foreground page move on the sibling
	// device and records its submission-to-completion latency.
	fgOnce := func(p *sim.Proc, dst hw.NodeID, h *obs.Histogram) bool {
		r := app.AllocRequest(p)
		if r == nil {
			return false
		}
		r.Op = uapi.OpMigrate
		r.SrcBase, r.Length, r.DstNode = fgBase, pageBytes, dst
		r.Class = uapi.ClassForeground
		if err := app.Submit(p, r); err != nil {
			app.FreeRequest(p, r)
			return false
		}
		for {
			if got := app.RetrieveCompleted(p); got != nil {
				ok := got.Status == uapi.StatusDone
				if ok {
					h.Observe(int64(got.Completed - got.Submitted))
				}
				app.FreeRequest(p, got)
				return ok
			}
			app.Poll(p, 0)
		}
	}

	m.Eng.Spawn("fg", func(p *sim.Proc) {
		defer app.Close()
		fgBase, _ = as.Mmap(p, pageBytes, hw.NodeSlow, "fg-probe")
		if err := as.Write(p, fgBase, []byte{1}); err != nil {
			panic(err)
		}
		dst := hw.NodeFast
		flip := func(ok bool) {
			if !ok {
				return
			}
			if dst == hw.NodeFast {
				dst = hw.NodeSlow
			} else {
				dst = hw.NodeFast
			}
		}
		start := p.Now()
		for p.Now() < start+baselineNS {
			flip(fgOnce(p, dst, &baseHist))
			p.SleepNS(50_000)
		}
		stormStart = p.Now()
		for !stormDone {
			flip(fgOnce(p, dst, &stormHist))
			p.SleepNS(50_000)
		}
	})

	m.Eng.Spawn("ingest", func(p *sim.Proc) {
		defer dev.Close()
		// Fill each stream's range with a distinct pattern and take the
		// ground-truth checksum with an independent direct pass before
		// the engine ever sees the bytes.
		cfg := streamrt.DefaultConfig()
		cfg.BufBytes = eopts.BufBytes
		for i := range bases {
			b, err := as.Mmap(p, perStream, hw.NodeSlow, fmt.Sprintf("stream-%d", i))
			if err != nil {
				panic(err)
			}
			bases[i] = b
			if _, err := wload.FillInput(p, as, b, perStream, uint64(i)+1); err != nil {
				panic(err)
			}
			dr, err := streamrt.RunDirect(p, as, kernels[i], b, perStream, cfg)
			if err != nil {
				panic(err)
			}
			direct[i] = dr.Checksum
		}

		// Wait out the prober's uncontended baseline window, then storm.
		for stormStart == 0 {
			p.SleepNS(500_000)
		}
		e, err := streamrt.OpenEngine(p, dev, eopts)
		if err != nil {
			panic(err)
		}
		for i := 0; i < numStreams; i++ {
			i := i
			s, err := e.OpenStream(p, streamrt.StreamSpec{
				Kernel:  kernels[i],
				Base:    bases[i],
				Length:  perStream,
				Class:   classes[i],
				Credits: 2,
				Name:    fmt.Sprintf("producer-%d", i),
			})
			if err != nil {
				panic(err)
			}
			producers++
			m.Eng.Spawn(fmt.Sprintf("producer-%d", i), func(cp *sim.Proc) {
				r, err := s.Run(cp)
				if err != nil {
					panic(err)
				}
				got[i] = r.Checksum
				producers--
			})
		}
		for producers > 0 {
			p.SleepNS(500_000)
		}
		stormEnd = p.Now()
		snap := e.Snapshot()
		fsnap := e.FlightSnapshot()
		e.Close(p)
		stormDone = true
		distillStreams(res, snap, fsnap)
	})

	m.Eng.Run()

	res.VirtNs = int64(stormEnd)
	if window := int64(stormEnd - stormStart); window > 0 {
		res.ThroughputMBs = float64(res.TotalBytes) / 1e6 / (float64(window) / 1e9)
	}
	res.ChecksumsOK = true
	for i := range direct {
		if direct[i] != got[i] {
			res.ChecksumsOK = false
		}
	}
	base, storm := baseHist.Snapshot(), stormHist.Snapshot()
	res.FgBaselineOps, res.FgStormOps = base.Count, storm.Count
	res.FgP99BaselineNs, res.FgP99StormNs = base.Quantile(0.99), storm.Quantile(0.99)
	return res
}

// distillStreams folds the quiescent engine and flight snapshots into
// the report row (taken just before Close, while per-stream rows are
// still registered).
func distillStreams(res *StreamsResult, snap streamrt.EngineSnapshot, fsnap flight.Snapshot) {
	res.BufMmaps = snap.BufMmaps
	res.Fills = snap.Fills
	res.FillBatches = snap.FillBatches
	res.FastChunks = snap.FastChunks
	res.SlowChunks = snap.SlowChunks
	res.Stalls = snap.Stalls
	res.FlightBreaches = fsnap.Breaches
	res.FlightCaptured = fsnap.Captured
	res.FlightCompleteVectors = len(fsnap.Outliers) > 0
	for _, o := range fsnap.Outliers {
		if o.Kind != flight.KindLatency {
			continue
		}
		last := int64(0)
		for _, ts := range o.TS {
			if ts <= 0 || ts < last {
				res.FlightCompleteVectors = false
				break
			}
			last = ts
		}
	}
}

// validateStreams enforces the schema-v8 streaming invariants: data
// integrity (checksums vs the direct pass), the never-stall design
// (zero stalls), the pinned ring (mmaps == ring size), batched refills
// (fills > batches), foreground isolation (one log2 bucket), and the
// flight forensics (captured breaches with complete stage vectors).
func validateStreams(rep Report) error {
	s := rep.Streams
	if s == nil {
		return fmt.Errorf("version %d report has no streams section", rep.Version)
	}
	if s.Streams < 4 {
		return fmt.Errorf("streams: %d producers, want >= 4", s.Streams)
	}
	if !s.ChecksumsOK {
		return fmt.Errorf("streams: checksum mismatch against the direct pass — data corruption")
	}
	if s.Stalls != 0 {
		return fmt.Errorf("streams: %d stalls — the never-stall fallback is broken", s.Stalls)
	}
	if s.BufMmaps != int64(s.RingBufs) {
		return fmt.Errorf("streams: %d buffer mmaps for a %d-buffer ring — buffers are not being recycled",
			s.BufMmaps, s.RingBufs)
	}
	if s.Fills <= s.FillBatches {
		return fmt.Errorf("streams: %d fills in %d batches — refills are not coalescing", s.Fills, s.FillBatches)
	}
	if s.FastChunks <= 0 {
		return fmt.Errorf("streams: no fast-path chunks — prefetch never engaged")
	}
	wantChunks := s.TotalBytes / s.BufBytes
	if s.FastChunks+s.SlowChunks != wantChunks {
		return fmt.Errorf("streams: %d+%d chunks consumed, want %d", s.FastChunks, s.SlowChunks, wantChunks)
	}
	if s.FgBaselineOps <= 0 || s.FgStormOps <= 0 {
		return fmt.Errorf("streams: foreground probe recorded %d baseline / %d storm ops, want both > 0",
			s.FgBaselineOps, s.FgStormOps)
	}
	if d := bucketDelta(s.FgP99StormNs, s.FgP99BaselineNs); d > 1 {
		return fmt.Errorf("streams: foreground p99 under ingest (%dns) drifted %d log2 buckets from baseline (%dns)",
			s.FgP99StormNs, d, s.FgP99BaselineNs)
	}
	if s.FlightBreaches <= 0 || s.FlightCaptured <= 0 {
		return fmt.Errorf("streams: flight recorder captured nothing (breaches %d, captured %d)",
			s.FlightBreaches, s.FlightCaptured)
	}
	if !s.FlightCompleteVectors {
		return fmt.Errorf("streams: a captured slow fill is missing stage stamps — forensics incomplete")
	}
	return nil
}

// reportStreams prints the human summary line mirroring the tiering one.
func reportStreams(s *StreamsResult) {
	fmt.Fprintf(os.Stderr,
		"membench: streams      %d x %dMB  %8.0f MB/s  %d fills/%d batches  %d fast %d slow  fg p99 %dns vs %dns  checksums %v\n",
		s.Streams, s.BytesPerStream>>20, s.ThroughputMBs, s.Fills, s.FillBatches,
		s.FastChunks, s.SlowChunks, s.FgP99StormNs, s.FgP99BaselineNs, s.ChecksumsOK)
}
