package swapd

import (
	"testing"

	"memif/internal/hw"
	"memif/internal/obs/flight"
	"memif/internal/obs/lifecycle"
	"memif/internal/sim"
)

// aggressiveFlight arms the daemon's recorder so ordinary test
// migrations breach: threshold = max(1, 1×EWMA) after a one-migration
// warmup means any strictly-slower-than-average move captures.
func aggressiveFlight() flight.Options {
	return flight.Options{ThresholdFloorNs: 1, ThresholdMult: 1, Warmup: 1}
}

// A small demotion trains the lane EWMA; the strictly larger demotion
// that follows breaches it, and the captured outlier carries the full
// virtual-time stage vector of the slow migration.
func TestFlightCapturesSlowMigrations(t *testing.T) {
	m, d := setup()
	opts := DefaultOptions()
	opts.Flight = aggressiveFlight()
	sd := New(d, opts)
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		defer sd.Stop()
		// Fill the 6 MB node: a cold 1 MB region, a warmer 2 MB region,
		// and 3 MB of unregistered ballast. Pressure demotion sheds the
		// small region first (colder), then the large one — whose
		// roughly doubled copy latency breaches the EWMA the small one
		// just seeded.
		small, _ := d.AS.Mmap(p, 1<<20, hw.NodeSlow, "small")
		migrateIn(t, d, p, small, 1<<20)
		large, _ := d.AS.Mmap(p, 2<<20, hw.NodeSlow, "large")
		migrateIn(t, d, p, large, 2<<20)
		if _, err := d.AS.Mmap(p, 3<<20, hw.NodeFast, "ballast"); err != nil {
			t.Fatal(err)
		}
		sd.Register(small, 1<<20)
		sd.Register(large, 2<<20)
		sd.Touch(large, p.Now()) // large is the hotter: small demotes first
		p.SleepNS(30_000_000)
	})
	m.Eng.Run()

	if sd.Stats().Demotions < 2 {
		t.Fatalf("demotions = %d, want both regions shed", sd.Stats().Demotions)
	}
	fs := sd.FlightSnapshot()
	if !fs.Enabled {
		t.Fatal("flight snapshot not enabled")
	}
	if fs.SLO.Enabled {
		t.Error("SLO tracker must stay off on the virtual clock")
	}
	if fs.Breaches == 0 {
		t.Fatal("the larger demotion did not breach the EWMA threshold")
	}
	if fs.Captured != fs.Breaches {
		t.Fatalf("captured %d != breaches %d (no watchdog, no aborts: every breach must capture)",
			fs.Captured, fs.Breaches)
	}
	for _, o := range fs.Outliers {
		if o.Kind != flight.KindLatency {
			t.Fatalf("unexpected non-latency record: %+v", o)
		}
		for st, ts := range o.TS {
			if ts == 0 {
				t.Errorf("outlier seq %d missing stage %s", o.Seq, lifecycle.Stage(st))
			}
		}
		if o.LatencyNs <= o.ThresholdNs {
			t.Errorf("outlier seq %d latency %d within threshold %d", o.Seq, o.LatencyNs, o.ThresholdNs)
		}
	}
	if ms := sd.Metrics(); ms.Flight.Breaches != fs.Breaches {
		t.Errorf("Metrics().Flight diverges from FlightSnapshot: %d vs %d",
			ms.Flight.Breaches, fs.Breaches)
	}
}

// Racing application writes abort transactional demotions; every abort
// lands in the flight ring as a txn_abort domain event.
func TestFlightRecordsTxnAbortEvents(t *testing.T) {
	m, d := setup()
	opts := DefaultOptions()
	opts.Flight = aggressiveFlight()
	sd := New(d, opts)
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		defer sd.Stop()
		const regionBytes = 3 << 20
		b, _ := d.AS.Mmap(p, regionBytes, hw.NodeSlow, "hot")
		migrateIn(t, d, p, b, regionBytes)
		if _, err := d.AS.Mmap(p, regionBytes, hw.NodeFast, "ballast"); err != nil {
			t.Fatal(err)
		}
		sd.Register(b, regionBytes)
		for i := 0; i < 40; i++ {
			p.SleepNS(200_000)
			if err := d.AS.Write(p, b, []byte{0xEE}); err != nil {
				t.Fatalf("write during demotion: %v", err)
			}
		}
	})
	m.Eng.Run()

	st := sd.Stats()
	if st.Aborts == 0 {
		t.Fatal("no demotion was aborted by the racing writes")
	}
	fs := sd.FlightSnapshot()
	if fs.Events != st.Aborts {
		t.Fatalf("flight events = %d, aborts = %d: every abort must land as a domain event",
			fs.Events, st.Aborts)
	}
	var events int64
	for _, o := range fs.Outliers {
		if o.Kind != flight.KindEvent {
			continue
		}
		events++
		if o.Reason != flight.ReasonTxnAbort {
			t.Errorf("event record reason = %s, want txn_abort", o.Reason)
		}
		if o.Bytes == 0 {
			t.Errorf("event record carries no byte count: %+v", o)
		}
	}
	if events == 0 {
		t.Error("no txn_abort records retained in the ring")
	}
}

// Flight.Disable opts the daemon out entirely: snapshots come back
// disarmed and the completion path pays nothing.
func TestFlightDisable(t *testing.T) {
	m, d := setup()
	opts := DefaultOptions()
	opts.Flight.Disable = true
	sd := New(d, opts)
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		defer sd.Stop()
		b, _ := d.AS.Mmap(p, 2<<20, hw.NodeSlow, "r")
		migrateIn(t, d, p, b, 2<<20)
		sd.Register(b, 2<<20)
		p.SleepNS(5_000_000)
	})
	m.Eng.Run()
	if fs := sd.FlightSnapshot(); fs.Enabled {
		t.Error("disabled daemon still reports an armed flight snapshot")
	}
}
