// Package swapd implements the automatic fast-memory tiering the
// paper's prototype lacks (Section 6.7: "the current memif cannot
// automatically swap out fast memory").
//
// The daemon is a two-way hot/cold tiering engine in the style of Nomad
// (non-exclusive memory tiering via transactional page migration). An
// access-scanning pass samples young/dirty bits over the registered
// regions — re-arming the young bit each pass, so a cleared bit at the
// next pass means the region was referenced — and folds the samples into
// a per-region heat EWMA. Heat feeds two queues: hot slow-tier regions
// are promoted into fast memory, and cold fast-tier regions are demoted
// out when usage crosses the high watermark or a hotter region needs the
// room.
//
// Every move is a *transactional* migration through the daemon's own
// memif device (uapi.ReqTxn): the application keeps reading and writing
// the page at full speed during the copy, and the commit is a per-page
// PTE CAS that fails if the page went dirty — the daemon simply retries
// later, so tiering can never corrupt, fault, or block the application.
// Promotions carry uapi.ReqKeepSrc, retaining the slow-tier frame as a
// shadow copy (non-exclusive tiering): demoting a page that stayed clean
// is then a bare PTE flip that moves zero bytes. Demotions ride the
// scavenger QoS class and promotions the background class, so tiering
// traffic yields the DMA channel to the application's foreground moves.
package swapd

import (
	"fmt"
	"sort"
	"sync"

	"memif/internal/core"
	"memif/internal/hw"
	"memif/internal/obs"
	"memif/internal/obs/flight"
	"memif/internal/obs/lifecycle"
	"memif/internal/sim"
	"memif/internal/uapi"
)

// Options tunes the daemon.
type Options struct {
	// HighWatermark is the fast-node usage fraction that triggers
	// pressure demotion; LowWatermark is the target to demote down to,
	// and the headroom ceiling promotions fill up to.
	HighWatermark, LowWatermark float64
	// PeriodNS is the poll interval of the daemon.
	PeriodNS int64
	// ScanPeriodNS is the access-bit scan cadence (defaults to PeriodNS).
	ScanPeriodNS int64
	// FastNode is the managed tier; demotions move regions to SlowNode.
	FastNode, SlowNode hw.NodeID

	// PromoteThreshold is the heat (EWMA of the referenced fraction of
	// sampled pages, 0..1) at which a slow-tier region becomes a
	// promotion candidate.
	PromoteThreshold float64
	// HeatDecay is the EWMA retention factor: heat = decay*heat +
	// (1-decay)*sample.
	HeatDecay float64
	// SamplePages bounds how many pages of a region one scan pass
	// samples (a rotating window; 0 = the whole region).
	SamplePages int
	// ScanBudget bounds how many regions one pass scans (round-robin
	// across passes; 0 = all registered regions).
	ScanBudget int
	// MaxInflight caps concurrently outstanding tiering migrations.
	MaxInflight int
	// ChainPages is the daemon device's DMA batch size; small batches
	// bound the head-of-line blocking a tiering transfer can impose on
	// the application's foreground traffic.
	ChainPages int
	// PromoteClass and DemoteClass are the QoS classes tiering transfers
	// ride (promotions default to background, demotions to scavenger).
	PromoteClass, DemoteClass uapi.Class

	// Flight configures the daemon's flight recorder. The zero value
	// arms it: slow migrations and slow promotions breach adaptive
	// per-class thresholds and capture full stage vectors, and txn
	// aborts land as domain events, all in virtual time. The SLO
	// tracker and the stall watchdog are forced off regardless — burn
	// windows and wall-clock tick cadences are meaningless under the
	// simulated clock. Set Flight.Disable to opt out entirely.
	Flight flight.Options
}

// DefaultOptions returns watermarks suited to the 6 MB MSMC node.
func DefaultOptions() Options {
	return Options{
		HighWatermark:    0.90,
		LowWatermark:     0.70,
		PeriodNS:         1_000_000, // 1 ms
		ScanPeriodNS:     2_000_000,
		FastNode:         hw.NodeFast,
		SlowNode:         hw.NodeSlow,
		PromoteThreshold: 0.5,
		HeatDecay:        0.5,
		SamplePages:      16,
		MaxInflight:      4,
		ChainPages:       8,
		PromoteClass:     uapi.ClassBackground,
		DemoteClass:      uapi.ClassScavenger,
	}
}

// region is one registered tiering candidate.
type region struct {
	base, length int64
	lastTouch    sim.Time
	heat         float64  // EWMA of the referenced fraction per scan
	hotSince     sim.Time // when heat last crossed PromoteThreshold
	scanOff      int      // rotating sample-window offset (pages)
	primePasses  int      // scan passes done; the first full rotation only arms
	migrating    bool     // a tiering request for this region is in flight
}

// Stats counts daemon activity.
type Stats struct {
	Promotions        int64 // completed promotions into fast memory
	Demotions         int64 // completed demotions out of fast memory
	ZeroCopyDemotions int64 // demotions that moved zero bytes (valid shadow)
	Aborts            int64 // migrations aborted by racing writes (txn-dirty)
	BytesPromoted     int64 // requested bytes of completed promotions
	BytesDemoted      int64 // requested bytes of completed demotions
	BytesMoved        int64 // bytes actually copied by DMA (excludes PTE flips)

	// Legacy eviction view (the seed daemon's counters): evictions are
	// demotions, failures are aborts.
	Evictions       int64
	FailedEvictions int64
	BytesEvicted    int64
}

// metrics is the daemon's obs instrument set: the Stats counters, a
// migration latency histogram (virtual ns, submission to completion), a
// per-migration byte histogram, the promotion-lag histogram (region
// turning hot → promotion committed), and the per-stage lifecycle span
// histograms derived from each request's stage stamps.
type metrics struct {
	promotions, demotions, zeroCopy, aborts obs.Counter
	bytesPromoted, bytesDemoted, bytesMoved obs.Counter
	latency, sizes, promoLag                obs.Histogram
	stages                                  lifecycle.SpanSet
}

// MetricsSnapshot is the daemon's observability view: counters plus the
// migration latency, size, and promotion-lag distributions.
type MetricsSnapshot struct {
	Promotions, Demotions, ZeroCopyDemotions, Aborts int64
	BytesPromoted, BytesDemoted, BytesMoved          int64

	// Legacy eviction view (demotion-side aliases).
	Evictions, FailedEvictions, BytesEvicted int64

	// Latency is the submission-to-completion histogram of successful
	// migrations (virtual ns); Sizes the per-migration byte histogram;
	// PromotionLag the region-hot-to-promotion-committed histogram.
	Latency, Sizes, PromotionLag obs.HistogramSnapshot
	// Stages attributes migration latency per pipeline stage (staging
	// wait, dispatch wait, copy, completion dwell), in virtual ns.
	Stages lifecycle.SpanSnapshot
	// Flight is the daemon's flight-recorder state: captured slow
	// migrations (full stage vectors), promotion-lag breaches on the
	// borrowed lane 3, and txn-abort events. All timestamps virtual.
	Flight flight.Snapshot
}

// Daemon is the tiering engine.
type Daemon struct {
	dev  *core.Device // the daemon's own memif device
	opts Options

	// mu guards regions, stop, outstanding, pendingDelta, and the
	// demotion log against Register/Unregister/Touch/Stop racing the
	// daemon process.
	mu          sync.Mutex
	regions     map[int64]*region
	stop        bool
	outstanding int
	// pendingDelta projects the fast-node byte delta of in-flight
	// migrations (+promotions, -demotions) so one pump pass neither
	// over-demotes nor over-promotes.
	pendingDelta int64
	demotionLog  []int64 // bases in demotion-submit order (replay assertions)
	scanCursor   int

	m  metrics
	fr *flight.Recorder // nil when Options.Flight.Disable
}

// New starts a daemon for the address space behind dev's machine. It
// opens its own memif device on the same address space so its moves do
// not interleave with the application's completion queue.
func New(app *core.Device, opts Options) *Daemon {
	if opts.HighWatermark <= 0 || opts.HighWatermark > 1 ||
		opts.LowWatermark <= 0 || opts.LowWatermark >= opts.HighWatermark {
		panic(fmt.Sprintf("swapd: bad watermarks %+v", opts))
	}
	if opts.ScanPeriodNS <= 0 {
		opts.ScanPeriodNS = opts.PeriodNS
	}
	if opts.HeatDecay <= 0 || opts.HeatDecay >= 1 {
		opts.HeatDecay = 0.5
	}
	if opts.PromoteThreshold <= 0 {
		opts.PromoteThreshold = 0.5
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 4
	}
	devOpts := core.DefaultOptions()
	if opts.ChainPages > 0 {
		devOpts.MaxChainPages = opts.ChainPages
	}
	d := &Daemon{
		dev:     core.Open(app.M, app.AS, devOpts),
		opts:    opts,
		regions: make(map[int64]*region),
	}
	if !opts.Flight.Disable {
		fo := opts.Flight
		// The daemon lives on the simulated clock: SLO burn windows
		// and the watchdog's wall-tick cadence don't apply. Outlier
		// capture and the adaptive thresholds work fine on virtual ns.
		fo.SLO.Disable = true
		fo.Watchdog.Disable = true
		if fo.Classes <= 0 || fo.Classes > flight.MaxClasses {
			// Lane 3 (one past the QoS classes) carries promotion lag.
			fo.Classes = flight.MaxClasses
		}
		d.fr = flight.New(fo)
	}
	app.M.Eng.Spawn("kswapd-fast", d.run)
	return d
}

// Register adds a tiering candidate covering [base, base+length).
func (d *Daemon) Register(base, length int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.regions[base] = &region{base: base, length: length}
}

// Unregister removes a candidate (e.g. before unmapping it).
func (d *Daemon) Unregister(base int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.regions, base)
}

// Touch records an explicit use hint for the region at base, at time
// now — the madvise-style contract of the seed daemon, still honored
// alongside the access-bit scan. A touch counts as a fully referenced
// scan sample.
func (d *Daemon) Touch(base int64, now sim.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.regions[base]
	if !ok {
		return
	}
	r.lastTouch = now
	was := r.heat
	r.heat = d.opts.HeatDecay*r.heat + (1 - d.opts.HeatDecay)
	if was < d.opts.PromoteThreshold && r.heat >= d.opts.PromoteThreshold {
		r.hotSince = now
	}
}

// Stop asks the daemon to shut down. The daemon process drains every
// in-flight migration before exiting and closing its device, so no
// request is ever leaked — Audit stays clean even when Stop races a
// migration storm.
func (d *Daemon) Stop() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stop = true
}

// Stats returns a snapshot of the daemon counters.
func (d *Daemon) Stats() Stats {
	return Stats{
		Promotions:        d.m.promotions.Load(),
		Demotions:         d.m.demotions.Load(),
		ZeroCopyDemotions: d.m.zeroCopy.Load(),
		Aborts:            d.m.aborts.Load(),
		BytesPromoted:     d.m.bytesPromoted.Load(),
		BytesDemoted:      d.m.bytesDemoted.Load(),
		BytesMoved:        d.m.bytesMoved.Load(),
		Evictions:         d.m.demotions.Load(),
		FailedEvictions:   d.m.aborts.Load(),
		BytesEvicted:      d.m.bytesDemoted.Load(),
	}
}

// Metrics returns the full observability snapshot, including the
// migration latency, size, and promotion-lag histograms.
func (d *Daemon) Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		Promotions:        d.m.promotions.Load(),
		Demotions:         d.m.demotions.Load(),
		ZeroCopyDemotions: d.m.zeroCopy.Load(),
		Aborts:            d.m.aborts.Load(),
		BytesPromoted:     d.m.bytesPromoted.Load(),
		BytesDemoted:      d.m.bytesDemoted.Load(),
		BytesMoved:        d.m.bytesMoved.Load(),
		Evictions:         d.m.demotions.Load(),
		FailedEvictions:   d.m.aborts.Load(),
		BytesEvicted:      d.m.bytesDemoted.Load(),
		Latency:           d.m.latency.Snapshot(),
		Sizes:             d.m.sizes.Snapshot(),
		PromotionLag:      d.m.promoLag.Snapshot(),
		Stages:            d.m.stages.Snapshot(),
		Flight:            d.fr.Snapshot(),
	}
}

// FlightSnapshot returns the daemon's flight-recorder state alone.
// Snapshot.Enabled is false when Options.Flight.Disable was set.
func (d *Daemon) FlightSnapshot() flight.Snapshot { return d.fr.Snapshot() }

// Outstanding reports how many tiering migrations are in flight.
func (d *Daemon) Outstanding() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.outstanding
}

// DemotionLog returns the region bases in demotion-submission order —
// the replay-stability assertion surface for the seeded scheduler.
func (d *Daemon) DemotionLog() []int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]int64, len(d.demotionLog))
	copy(out, d.demotionLog)
	return out
}

// Audit verifies the daemon device's request-conservation invariant.
// Call after the daemon has exited (post engine run): every request slot
// must be back on a queue, none user-held.
func (d *Daemon) Audit() error { return d.dev.Area.Audit(nil) }

// stopping reports whether Stop was called.
func (d *Daemon) stopping() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stop
}

// usage returns the fast node's used fraction.
func (d *Daemon) usage() float64 {
	node := d.dev.M.Mem.Node(d.opts.FastNode)
	return float64(d.dev.M.Mem.Used(d.opts.FastNode)) / float64(node.Capacity)
}

// tier reports which node the region currently resides on (the node of
// its first page's frame), or -1 if unmapped.
func (d *Daemon) tier(r *region) hw.NodeID {
	f := d.dev.AS.FrameAt(r.base)
	if f == nil {
		return -1
	}
	return f.Node
}

// cookie packs a region base and the migration direction into a request
// cookie; bases are page aligned, so the low bit is free.
func cookie(base int64, promote bool) uint64 {
	c := uint64(base)
	if promote {
		c |= 1
	}
	return c
}

// scan runs one access-bit sampling pass over (a budgeted, rotating
// subset of) the registered regions and folds the referenced fraction
// into each region's heat EWMA.
func (d *Daemon) scan(p *sim.Proc) {
	d.mu.Lock()
	regs := make([]*region, 0, len(d.regions))
	for _, r := range d.regions {
		regs = append(regs, r)
	}
	d.mu.Unlock()
	if len(regs) == 0 {
		return
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].base < regs[j].base })
	budget := d.opts.ScanBudget
	if budget <= 0 || budget > len(regs) {
		budget = len(regs)
	}
	as := d.dev.AS
	pb := as.PageBytes
	for i := 0; i < budget; i++ {
		r := regs[(d.scanCursor+i)%len(regs)]
		pages := int(r.length / pb)
		if pages == 0 {
			continue
		}
		n := d.opts.SamplePages
		if n <= 0 || n > pages {
			n = pages
		}
		d.mu.Lock()
		off := r.scanOff % pages
		r.scanOff = (off + n) % pages
		d.mu.Unlock()
		if off+n > pages {
			n = pages - off
		}
		ref, _, sampled := as.ScanAccessBits(p, as.VPN(r.base)+uint64(off), n)
		if sampled == 0 {
			continue
		}
		// A young bit can only be read as referenced once the scanner
		// armed it: the first full rotation over a region primes the
		// bits and contributes no heat (a fresh mmap or a migration
		// release leaves young clear without any access having happened).
		rotations := (pages + n - 1) / n
		d.mu.Lock()
		if r.primePasses < rotations {
			r.primePasses++
			d.mu.Unlock()
			continue
		}
		d.mu.Unlock()
		sample := float64(ref) / float64(sampled)
		d.mu.Lock()
		was := r.heat
		r.heat = d.opts.HeatDecay*r.heat + (1-d.opts.HeatDecay)*sample
		if sample > 0 {
			r.lastTouch = p.Now()
		}
		if was < d.opts.PromoteThreshold && r.heat >= d.opts.PromoteThreshold {
			r.hotSince = p.Now()
		}
		d.mu.Unlock()
	}
	d.scanCursor = (d.scanCursor + budget) % len(regs)
}

// plan snapshots, under the lock, the demotion candidates (fast-tier,
// coldest first; ties by last touch, then base — the deterministic-order
// fix) and promotion candidates (slow-tier, hot, hottest first; ties by
// how long they have been hot, then base).
func (d *Daemon) plan() (demote, promote []*region) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range d.regions {
		if r.migrating {
			continue
		}
		switch d.tier(r) {
		case d.opts.FastNode:
			demote = append(demote, r)
		case d.opts.SlowNode:
			if r.heat >= d.opts.PromoteThreshold {
				promote = append(promote, r)
			}
		}
	}
	sort.Slice(demote, func(i, j int) bool {
		a, b := demote[i], demote[j]
		if a.heat != b.heat {
			return a.heat < b.heat
		}
		if a.lastTouch != b.lastTouch {
			return a.lastTouch < b.lastTouch
		}
		return a.base < b.base
	})
	sort.Slice(promote, func(i, j int) bool {
		a, b := promote[i], promote[j]
		if a.heat != b.heat {
			return a.heat > b.heat
		}
		if a.hotSince != b.hotSince {
			return a.hotSince < b.hotSince
		}
		return a.base < b.base
	})
	return demote, promote
}

// submit issues one transactional tiering migration for r.
func (d *Daemon) submit(p *sim.Proc, r *region, promote bool) bool {
	req := d.dev.AllocRequest(p)
	if req == nil {
		return false
	}
	req.Op = uapi.OpMigrate
	req.SrcBase, req.Length = r.base, r.length
	req.Cookie = cookie(r.base, promote)
	req.Flags = uapi.ReqTxn
	if promote {
		req.DstNode = d.opts.FastNode
		req.Class = d.opts.PromoteClass
		// Non-exclusive tiering: keep the slow copy for free demotion.
		req.Flags |= uapi.ReqKeepSrc
	} else {
		req.DstNode = d.opts.SlowNode
		req.Class = d.opts.DemoteClass
	}
	if err := d.dev.Submit(p, req); err != nil {
		d.dev.FreeRequest(p, req)
		return false
	}
	d.mu.Lock()
	r.migrating = true
	d.outstanding++
	if promote {
		d.pendingDelta += r.length
	} else {
		d.pendingDelta -= r.length
		d.demotionLog = append(d.demotionLog, r.base)
	}
	d.mu.Unlock()
	return true
}

// pump issues tiering work for one period: pressure demotion down to the
// low watermark when usage crossed the high one, make-room demotion for
// hotter promotion candidates, then promotions while headroom lasts.
func (d *Daemon) pump(p *sim.Proc) {
	capacity := float64(d.dev.M.Mem.Node(d.opts.FastNode).Capacity)
	demote, promote := d.plan()

	projected := func() float64 {
		d.mu.Lock()
		delta := d.pendingDelta
		d.mu.Unlock()
		return d.usage() + float64(delta)/capacity
	}
	room := func() bool {
		d.mu.Lock()
		ok := d.outstanding < d.opts.MaxInflight
		d.mu.Unlock()
		return ok
	}

	// Pressure demotion: over the high watermark, shed coldest-first
	// down to the low one.
	di := 0
	if projected() >= d.opts.HighWatermark {
		for projected() > d.opts.LowWatermark && di < len(demote) && room() {
			d.submit(p, demote[di], false)
			di++
		}
	}

	// Promotion, with make-room demotion: a hot slow region may displace
	// a strictly colder fast region even below the high watermark.
	for _, hot := range promote {
		if !room() {
			break
		}
		need := float64(hot.length) / capacity
		for projected()+need > d.opts.HighWatermark && di < len(demote) && room() {
			cold := demote[di]
			if cold.heat >= hot.heat {
				break // nothing colder than the promotion candidate
			}
			d.submit(p, cold, false)
			di++
		}
		if projected()+need > d.opts.HighWatermark || !room() {
			continue
		}
		d.submit(p, hot, true)
	}
}

// handleCompletion books one finished tiering migration.
func (d *Daemon) handleCompletion(p *sim.Proc, got *uapi.MovReq) {
	promoted := got.Cookie&1 == 1
	base := int64(got.Cookie &^ 1)
	d.mu.Lock()
	r := d.regions[base]
	if r != nil {
		r.migrating = false
	}
	d.outstanding--
	if promoted {
		d.pendingDelta -= got.Length
	} else {
		d.pendingDelta += got.Length
	}
	var hotSince sim.Time
	if r != nil {
		hotSince = r.hotSince
	}
	inflight := int64(d.outstanding)
	d.mu.Unlock()

	if got.Status == uapi.StatusDone {
		var lag int64
		if promoted {
			d.m.promotions.Inc()
			d.m.bytesPromoted.Add(got.Length)
			if hotSince > 0 {
				lag = int64(got.Completed - hotSince)
				d.m.promoLag.Observe(lag)
			}
		} else {
			d.m.demotions.Inc()
			d.m.bytesDemoted.Add(got.Length)
			if got.MovedBytes == 0 {
				d.m.zeroCopy.Inc()
			}
		}
		d.m.bytesMoved.Add(got.MovedBytes)
		d.m.latency.Observe(int64(got.Completed - got.Submitted))
		d.m.sizes.Observe(got.Length)
		ts := lifecycle.Stamps(int64(got.Submitted), int64(got.Flushed),
			int64(got.Dispatched), int64(got.CopyStart), int64(got.Completed),
			int64(got.Completed), int64(got.Retrieved))
		d.m.stages.ObserveStamps(&ts)
		d.observeFlight(got, &ts, lag, inflight)
	} else {
		// A racing write aborted the commit (txn-dirty) or another mover
		// holds the claim (busy): the region is hot — bump its recency
		// so cold candidates go first on retry.
		d.m.aborts.Inc()
		d.fr.CaptureEvent(&flight.Outlier{
			Reason:  flight.ReasonTxnAbort,
			Nano:    int64(p.Now()),
			Slot:    -1,
			Class:   int32(got.Class),
			Bytes:   got.Length,
			Ambient: flight.Ambient{SubmissionDepth: inflight},
		})
		if r != nil {
			d.mu.Lock()
			r.lastTouch = p.Now()
			d.mu.Unlock()
		}
	}
	d.dev.FreeRequest(p, got)
}

// promotionLagLane is the flight-recorder class lane carrying the
// region-hot-to-promotion-committed latency, one past the QoS classes
// so migration latency and promotion lag train separate thresholds.
const promotionLagLane = 3

// observeFlight feeds one successful migration to the flight recorder:
// the submission-to-completion latency trains the per-class lane and a
// breach captures the full stage vector; a promotion additionally
// trains the promotion-lag lane, whose breaches carry
// ReasonPromotionLag. All timestamps virtual ns. No-op when disarmed.
func (d *Daemon) observeFlight(got *uapi.MovReq, ts *[lifecycle.NumStages]int64, lag, inflight int64) {
	if d.fr == nil {
		return
	}
	// The daemon's congestion picture is its in-flight migration count;
	// the queue-depth slots of Ambient don't apply to the sim device.
	amb := flight.Ambient{SubmissionDepth: inflight}
	lat := int64(got.Completed - got.Submitted)
	if thr, breach := d.fr.Observe(int(got.Class), 0, lat, true); breach {
		d.fr.Capture(&flight.Outlier{
			Nano:        int64(got.Completed),
			Slot:        -1,
			Class:       int32(got.Class),
			Bytes:       got.Length,
			LatencyNs:   lat,
			ThresholdNs: thr,
			TS:          *ts,
			Ambient:     amb,
		})
	}
	if lag <= 0 {
		return
	}
	if thr, breach := d.fr.Observe(promotionLagLane, 0, lag, true); breach {
		d.fr.Capture(&flight.Outlier{
			Reason:      flight.ReasonPromotionLag,
			Nano:        int64(got.Completed),
			Slot:        -1,
			Class:       promotionLagLane,
			Bytes:       got.Length,
			LatencyNs:   lag,
			ThresholdNs: thr,
			TS:          *ts,
			Ambient:     amb,
		})
	}
}

// drain retrieves finished migrations. With block set it waits until no
// migration remains outstanding — the shutdown path, so Stop can never
// leak an in-flight request.
func (d *Daemon) drain(p *sim.Proc, block bool) {
	for {
		got := d.dev.RetrieveCompleted(p)
		if got != nil {
			d.handleCompletion(p, got)
			continue
		}
		if !block || d.Outstanding() == 0 {
			return
		}
		d.dev.Poll(p, d.opts.PeriodNS)
	}
}

// run is the daemon process: scan heat on its cadence, pump tiering work
// each period, retrieve completions, and on Stop drain everything before
// closing the device.
func (d *Daemon) run(p *sim.Proc) {
	defer d.dev.Close()
	var lastScan sim.Time
	for {
		p.SleepNS(d.opts.PeriodNS)
		d.drain(p, false)
		if d.stopping() {
			break
		}
		if lastScan == 0 || int64(p.Now()-lastScan) >= d.opts.ScanPeriodNS {
			d.scan(p)
			lastScan = p.Now()
		}
		d.pump(p)
	}
	d.drain(p, true)
}
