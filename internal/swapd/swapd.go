// Package swapd implements the automatic fast-memory swap-out the
// paper's prototype lacks (Section 6.7: "the current memif cannot
// automatically swap out fast memory").
//
// A kswapd-style daemon watches the fast node's usage. When it rises
// above a high watermark the daemon picks the least recently used of the
// registered regions that are resident in fast memory and migrates them
// back to the slow node — through a memif device of its own, so the
// evictions are asynchronous, DMA-accelerated, and race-detected like any
// other move. Applications (or a runtime) register candidate regions and
// report use with Touch, the same contract madvise-style hints give a
// kernel.
//
// The daemon's device runs in proceed-and-recover mode (Section 5.2,
// "Alternative"): if the application writes to a region mid-eviction the
// trap aborts the DMA, restores the fast-memory mapping, and preserves
// the write — an eviction can never corrupt or fault the application.
// The daemon just notes the region is hot and retries later.
package swapd

import (
	"fmt"

	"memif/internal/core"
	"memif/internal/hw"
	"memif/internal/obs"
	"memif/internal/obs/lifecycle"
	"memif/internal/sim"
	"memif/internal/uapi"
)

// Options tunes the daemon.
type Options struct {
	// HighWatermark is the fast-node usage fraction that wakes the
	// evictor; LowWatermark is the target to evict down to.
	HighWatermark, LowWatermark float64
	// PeriodNS is the poll interval of the daemon.
	PeriodNS int64
	// FastNode is watched; evictions move regions to SlowNode.
	FastNode, SlowNode hw.NodeID
}

// DefaultOptions returns watermarks suited to the 6 MB MSMC node.
func DefaultOptions() Options {
	return Options{
		HighWatermark: 0.90,
		LowWatermark:  0.70,
		PeriodNS:      1_000_000, // 1 ms
		FastNode:      hw.NodeFast,
		SlowNode:      hw.NodeSlow,
	}
}

// region is one registered eviction candidate.
type region struct {
	base, length int64
	lastTouch    sim.Time
	evicting     bool
}

// Stats counts daemon activity.
type Stats struct {
	Evictions      int64 // completed evictions
	FailedEvictons int64 // evictions aborted by racing accesses
	BytesEvicted   int64
}

// metrics is the daemon's obs instrument set: the Stats counters, an
// eviction latency histogram (virtual ns, submission to completion), an
// evicted-bytes histogram, and the per-stage lifecycle span histograms
// derived from each eviction request's stage stamps.
type metrics struct {
	evictions, failed, bytes obs.Counter
	latency, sizes           obs.Histogram
	stages                   lifecycle.SpanSet
}

// MetricsSnapshot is the daemon's observability view: counters plus the
// eviction latency and size distributions.
type MetricsSnapshot struct {
	Evictions, FailedEvictions, BytesEvicted int64
	// Latency is the submission-to-completion histogram of successful
	// evictions (virtual ns); Sizes the per-eviction byte histogram.
	Latency, Sizes obs.HistogramSnapshot
	// Stages attributes eviction latency per pipeline stage (staging
	// wait, dispatch wait, copy, completion dwell), in virtual ns.
	Stages lifecycle.SpanSnapshot
}

// Daemon is the fast-memory evictor.
type Daemon struct {
	dev     *core.Device // the daemon's own memif device
	opts    Options
	regions map[int64]*region
	stopped bool
	m       metrics
}

// New starts a daemon for the address space behind dev's machine. It
// opens its own memif device on the same address space so its moves do
// not interleave with the application's completion queue.
func New(app *core.Device, opts Options) *Daemon {
	if opts.HighWatermark <= 0 || opts.HighWatermark > 1 ||
		opts.LowWatermark <= 0 || opts.LowWatermark >= opts.HighWatermark {
		panic(fmt.Sprintf("swapd: bad watermarks %+v", opts))
	}
	devOpts := core.DefaultOptions()
	devOpts.RaceMode = core.RaceRecover
	d := &Daemon{
		dev:     core.Open(app.M, app.AS, devOpts),
		opts:    opts,
		regions: make(map[int64]*region),
	}
	app.M.Eng.Spawn("kswapd-fast", d.run)
	return d
}

// Register adds an eviction candidate (typically right after migrating
// it into fast memory).
func (d *Daemon) Register(base, length int64) {
	d.regions[base] = &region{base: base, length: length}
}

// Unregister removes a candidate (e.g. before unmapping it).
func (d *Daemon) Unregister(base int64) { delete(d.regions, base) }

// Touch records a use of the region at base, at time now. More recently
// touched regions are evicted later.
func (d *Daemon) Touch(base int64, now sim.Time) {
	if r, ok := d.regions[base]; ok {
		r.lastTouch = now
	}
}

// Stop shuts the daemon (and its device) down.
func (d *Daemon) Stop() { d.stopped = true; d.dev.Close() }

// Stats returns a snapshot of the daemon counters.
func (d *Daemon) Stats() Stats {
	return Stats{
		Evictions:      d.m.evictions.Load(),
		FailedEvictons: d.m.failed.Load(),
		BytesEvicted:   d.m.bytes.Load(),
	}
}

// Metrics returns the full observability snapshot, including the
// eviction latency and size histograms.
func (d *Daemon) Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		Evictions:       d.m.evictions.Load(),
		FailedEvictions: d.m.failed.Load(),
		BytesEvicted:    d.m.bytes.Load(),
		Latency:         d.m.latency.Snapshot(),
		Sizes:           d.m.sizes.Snapshot(),
		Stages:          d.m.stages.Snapshot(),
	}
}

// usage returns the fast node's used fraction.
func (d *Daemon) usage() float64 {
	node := d.dev.M.Mem.Node(d.opts.FastNode)
	return float64(d.dev.M.Mem.Used(d.opts.FastNode)) / float64(node.Capacity)
}

// resident reports whether the region currently lives on the fast node.
func (d *Daemon) resident(r *region) bool {
	f := d.dev.AS.FrameAt(r.base)
	return f != nil && f.Node == d.opts.FastNode
}

// victim picks the least recently touched resident region not already
// being evicted.
func (d *Daemon) victim() *region {
	var best *region
	for _, r := range d.regions {
		if r.evicting || !d.resident(r) {
			continue
		}
		if best == nil || r.lastTouch < best.lastTouch {
			best = r
		}
	}
	return best
}

// handleCompletion books one finished eviction attempt.
func (d *Daemon) handleCompletion(p *sim.Proc, got *uapi.MovReq) {
	if v, ok := d.regions[int64(got.Cookie)]; ok {
		v.evicting = false
		if got.Status != uapi.StatusDone {
			// A racing access aborted the eviction: the region is
			// hot; bump its recency so it is retried last.
			v.lastTouch = p.Now()
		}
	}
	if got.Status == uapi.StatusDone {
		d.m.evictions.Inc()
		d.m.bytes.Add(got.Length)
		d.m.latency.Observe(int64(got.Completed - got.Submitted))
		d.m.sizes.Observe(got.Length)
		ts := lifecycle.Stamps(int64(got.Submitted), int64(got.Flushed),
			int64(got.Dispatched), int64(got.CopyStart), int64(got.Completed),
			int64(got.Completed), int64(got.Retrieved))
		d.m.stages.ObserveStamps(&ts)
	} else {
		d.m.failed.Inc()
	}
	d.dev.FreeRequest(p, got)
}

// run is the daemon process: poll usage, evict past the high watermark
// down to the low one. Eviction submissions are asynchronous; the loop
// projects the usage drop of in-flight evictions so it neither
// over-evicts nor stops early.
func (d *Daemon) run(p *sim.Proc) {
	capacity := float64(d.dev.M.Mem.Node(d.opts.FastNode).Capacity)
	for !d.stopped {
		p.SleepNS(d.opts.PeriodNS)
		if d.usage() < d.opts.HighWatermark {
			continue
		}
		outstanding := 0
		var pendingBytes int64
		projected := func() float64 {
			return d.usage() - float64(pendingBytes)/capacity
		}
		for projected() > d.opts.LowWatermark && !d.stopped {
			v := d.victim()
			if v == nil {
				break // nothing evictable right now
			}
			r := d.dev.AllocRequest(p)
			if r == nil {
				break
			}
			r.Op = uapi.OpMigrate
			r.SrcBase, r.Length, r.DstNode = v.base, v.length, d.opts.SlowNode
			r.Cookie = uint64(v.base)
			v.evicting = true
			if err := d.dev.Submit(p, r); err != nil {
				d.dev.FreeRequest(p, r)
				v.evicting = false
				break
			}
			outstanding++
			pendingBytes += v.length
		}
		// Drain every in-flight eviction before the next period. A
		// failed (raced) eviction reduces the projection, which the
		// next period will notice and retry.
		for outstanding > 0 && !d.stopped {
			got := d.dev.RetrieveCompleted(p)
			if got == nil {
				d.dev.Poll(p, d.opts.PeriodNS)
				continue
			}
			d.handleCompletion(p, got)
			outstanding--
		}
	}
}
