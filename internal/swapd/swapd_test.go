package swapd

import (
	"bytes"
	"math/rand"
	"testing"

	"memif/internal/core"
	"memif/internal/hw"
	"memif/internal/machine"
	"memif/internal/sim"
	"memif/internal/uapi"
)

func setup() (*machine.Machine, *core.Device) {
	m := machine.New(hw.KeyStoneII())
	as := m.NewAddressSpace(4096)
	return m, core.Open(m, as, core.DefaultOptions())
}

// migrateIn moves a region into fast memory through the app device.
func migrateIn(t *testing.T, d *core.Device, p *sim.Proc, base, length int64) {
	t.Helper()
	r := d.AllocRequest(p)
	r.Op = uapi.OpMigrate
	r.SrcBase, r.Length, r.DstNode = base, length, hw.NodeFast
	if err := d.Submit(p, r); err != nil {
		t.Fatal(err)
	}
	for {
		if got := d.RetrieveCompleted(p); got != nil {
			if got.Status != uapi.StatusDone {
				t.Fatalf("migrate in failed: %v", got)
			}
			d.FreeRequest(p, got)
			return
		}
		d.Poll(p, 0)
	}
}

func TestDemotesColdestWhenOverWatermark(t *testing.T) {
	m, d := setup()
	sd := New(d, DefaultOptions())
	const regionBytes = 2 << 20 // 2 MB each; three fill the 6 MB node
	var bases [3]int64
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		defer sd.Stop()
		for i := range bases {
			b, _ := d.AS.Mmap(p, regionBytes, hw.NodeSlow, "r")
			bases[i] = b
			d.AS.Write(p, b, bytes.Repeat([]byte{byte(i + 1)}, 4096))
			migrateIn(t, d, p, b, regionBytes)
			sd.Register(b, regionBytes)
			sd.Touch(b, p.Now())
		}
		// Fast node now 100% full (> high watermark). Region 0 is the
		// coldest (touched once; the others twice). Let the daemon run.
		sd.Touch(bases[1], p.Now())
		sd.Touch(bases[2], p.Now())
		p.SleepNS(20_000_000) // 20 ms: several daemon periods

		if f := d.AS.FrameAt(bases[0]); f == nil || f.Node != hw.NodeSlow {
			t.Errorf("coldest region not demoted (node %v)", f)
		}
		if f := d.AS.FrameAt(bases[2]); f == nil || f.Node != hw.NodeFast {
			t.Errorf("hottest region demoted (node %v)", f)
		}
		usage := float64(m.Mem.Used(hw.NodeFast)) / float64(m.Mem.Node(hw.NodeFast).Capacity)
		if usage > DefaultOptions().HighWatermark {
			t.Errorf("usage still %.2f after daemon ran", usage)
		}
		// Demoted data survives intact.
		var b [1]byte
		d.AS.Read(p, bases[0], b[:])
		if b[0] != 1 {
			t.Errorf("demoted region corrupted: %d", b[0])
		}
	})
	m.Eng.Run()
	st := sd.Stats()
	if st.Demotions == 0 {
		t.Error("daemon recorded no demotions")
	}
	// Legacy eviction aliases track the demotion side.
	if st.Evictions != st.Demotions || st.BytesEvicted != st.BytesDemoted ||
		st.FailedEvictions != st.Aborts {
		t.Errorf("legacy aliases diverge: %+v", st)
	}
	ms := sd.Metrics()
	if ms.Demotions != st.Demotions || ms.Evictions != st.Demotions {
		t.Errorf("Metrics/Stats demotions diverge: %d/%d", ms.Demotions, st.Demotions)
	}
	if ms.Latency.Count != ms.Demotions+ms.Promotions {
		t.Errorf("latency histogram has %d samples for %d migrations",
			ms.Latency.Count, ms.Demotions+ms.Promotions)
	}
	if ms.Latency.Count > 0 && ms.Latency.Mean() <= 0 {
		t.Errorf("migration latency mean = %v", ms.Latency.Mean())
	}
	if ms.Sizes.Sum != ms.BytesDemoted+ms.BytesPromoted {
		t.Errorf("size histogram sum = %d, booked bytes = %d",
			ms.Sizes.Sum, ms.BytesDemoted+ms.BytesPromoted)
	}
	if err := sd.Audit(); err != nil {
		t.Errorf("request accounting: %v", err)
	}
}

func TestIdleBelowWatermark(t *testing.T) {
	m, d := setup()
	sd := New(d, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		defer sd.Stop()
		// 2 MB of 6 MB used: well under the watermark.
		b, _ := d.AS.Mmap(p, 2<<20, hw.NodeSlow, "r")
		migrateIn(t, d, p, b, 2<<20)
		sd.Register(b, 2<<20)
		p.SleepNS(10_000_000)
		if f := d.AS.FrameAt(b); f == nil || f.Node != hw.NodeFast {
			t.Error("region demoted below watermark")
		}
	})
	m.Eng.Run()
	if sd.Stats().Demotions != 0 {
		t.Errorf("demotions = %d below watermark", sd.Stats().Demotions)
	}
}

// A write racing the demotion copy dirties the page; the transactional
// commit refuses it, the write is preserved, and the daemon books an
// abort and retries later. The writer itself never blocks or faults.
func TestRacingWriteAbortsDemotionAndIsPreserved(t *testing.T) {
	m, d := setup()
	sd := New(d, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		defer sd.Stop()
		const regionBytes = 3 << 20
		// Fill the node; register only the region under write, so every
		// demotion attempt targets it.
		b, _ := d.AS.Mmap(p, regionBytes, hw.NodeSlow, "hot")
		migrateIn(t, d, p, b, regionBytes)
		if _, err := d.AS.Mmap(p, regionBytes, hw.NodeFast, "ballast"); err != nil {
			t.Fatal(err)
		}
		sd.Register(b, regionBytes)
		// A 3 MB copy outlasts the 200 µs write cadence by a wide
		// margin, so a write always lands between baseline and commit.
		for i := 0; i < 40; i++ {
			p.SleepNS(200_000)
			if err := d.AS.Write(p, b, []byte{0xEE}); err != nil {
				t.Fatalf("write during demotion: %v", err)
			}
		}
		var buf [1]byte
		d.AS.Read(p, b, buf[:])
		if buf[0] != 0xEE {
			t.Errorf("racing write lost: %d", buf[0])
		}
		if f := d.AS.FrameAt(b); f == nil || f.Node != hw.NodeFast {
			t.Error("region left its original node despite aborts")
		}
	})
	m.Eng.Run()
	st := sd.Stats()
	t.Logf("demotions=%d aborts=%d", st.Demotions, st.Aborts)
	if st.Aborts == 0 {
		t.Error("no demotion was aborted by the racing writes")
	}
	if st.FailedEvictions != st.Aborts {
		t.Errorf("FailedEvictions = %d, Aborts = %d", st.FailedEvictions, st.Aborts)
	}
	if err := sd.Audit(); err != nil {
		t.Errorf("request accounting: %v", err)
	}
}

// The access-bit scan finds a hot slow-tier region with no explicit
// Touch hints and promotes it, booking the promotion lag.
func TestScanDrivenPromotion(t *testing.T) {
	m, d := setup()
	sd := New(d, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		defer sd.Stop()
		const regionBytes = 256 << 10
		b, _ := d.AS.Mmap(p, regionBytes, hw.NodeSlow, "hot")
		sd.Register(b, regionBytes)
		buf := make([]byte, regionBytes)
		for i := 0; i < 20; i++ {
			// Touch every page so each rotating sample window sees a
			// fully referenced region.
			if err := d.AS.Read(p, b, buf); err != nil {
				t.Fatal(err)
			}
			p.SleepNS(1_000_000)
		}
		if f := d.AS.FrameAt(b); f == nil || f.Node != hw.NodeFast {
			t.Errorf("hot region not promoted (frame %v)", f)
		}
		// The slow copy is retained as a shadow (non-exclusive tiering).
		if d.AS.Shadows() == 0 {
			t.Error("promotion retained no shadow copies")
		}
	})
	m.Eng.Run()
	st := sd.Stats()
	if st.Promotions == 0 {
		t.Fatal("daemon recorded no promotions")
	}
	ms := sd.Metrics()
	if ms.PromotionLag.Count == 0 || ms.PromotionLag.Mean() <= 0 {
		t.Errorf("promotion lag histogram: count=%d mean=%v",
			ms.PromotionLag.Count, ms.PromotionLag.Mean())
	}
}

// A promoted region that stays clean demotes by PTE flip alone: zero
// bytes move, and the zero-copy counter says so.
func TestCleanDemotionMovesZeroBytes(t *testing.T) {
	m, d := setup()
	sd := New(d, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		defer sd.Stop()
		const regionBytes = 1 << 20
		b, _ := d.AS.Mmap(p, regionBytes, hw.NodeSlow, "r")
		d.AS.Write(p, b, bytes.Repeat([]byte{0x5A}, 4096))
		sd.Register(b, regionBytes)
		sd.Touch(b, p.Now())
		sd.Touch(b, p.Now()) // heat 0.75: promotion candidate
		p.SleepNS(10_000_000)
		if f := d.AS.FrameAt(b); f == nil || f.Node != hw.NodeFast {
			t.Fatalf("region not promoted (frame %v)", f)
		}
		dmaBefore := m.DMA.Stats().BytesMoved
		// Crowd the fast node with unregistered ballast: pressure
		// demotion has exactly one candidate — our clean region.
		if _, err := d.AS.Mmap(p, 5<<20, hw.NodeFast, "ballast"); err != nil {
			t.Fatal(err)
		}
		p.SleepNS(10_000_000)
		if f := d.AS.FrameAt(b); f == nil || f.Node != hw.NodeSlow {
			t.Fatalf("region not demoted under pressure (frame %v)", f)
		}
		if moved := m.DMA.Stats().BytesMoved - dmaBefore; moved != 0 {
			t.Errorf("clean demotion moved %d bytes through DMA", moved)
		}
		// The shadow frames became the live mapping; none remain.
		if d.AS.Shadows() != 0 {
			t.Errorf("%d shadows left after zero-copy demotion", d.AS.Shadows())
		}
		var buf [1]byte
		d.AS.Read(p, b, buf[:])
		if buf[0] != 0x5A {
			t.Errorf("demoted data corrupted: %#x", buf[0])
		}
	})
	m.Eng.Run()
	st := sd.Stats()
	if st.ZeroCopyDemotions == 0 {
		t.Error("zero-copy demotion not counted")
	}
	if st.Demotions == 0 || st.Promotions == 0 {
		t.Errorf("promotions=%d demotions=%d", st.Promotions, st.Demotions)
	}
}

// Stop racing a migration storm: the daemon must retrieve and free every
// in-flight request before exiting — the seed daemon leaked them.
func TestStopUnderLoadDrainsInflight(t *testing.T) {
	m, d := setup()
	sd := New(d, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		const regionBytes = 3 << 20
		for i := 0; i < 2; i++ {
			b, _ := d.AS.Mmap(p, regionBytes, hw.NodeSlow, "r")
			migrateIn(t, d, p, b, regionBytes)
			sd.Register(b, regionBytes)
		}
		// The daemon's first period fires at 1 ms and submits demotions
		// whose 3 MB copies take far longer; stop while they fly.
		p.SleepNS(1_200_000)
		sd.Stop()
	})
	m.Eng.Run()
	if n := sd.Outstanding(); n != 0 {
		t.Errorf("daemon exited with %d migrations outstanding", n)
	}
	if err := sd.Audit(); err != nil {
		t.Errorf("leaked requests after stop under load: %v", err)
	}
	st := sd.Stats()
	if st.Demotions+st.Aborts == 0 {
		t.Error("no migration was in flight when Stop hit; scenario lost its teeth")
	}
}

// Demotion order is deterministic: lastTouch ties break by base address,
// so identical runs replay identically (the seed's map-iteration bug).
func TestDemotionOrderReplayStable(t *testing.T) {
	run := func() []int64 {
		m, d := setup()
		sd := New(d, DefaultOptions())
		m.Eng.Spawn("app", func(p *sim.Proc) {
			defer d.Close()
			defer sd.Stop()
			const regionBytes = 1 << 20
			for i := 0; i < 6; i++ {
				b, _ := d.AS.Mmap(p, regionBytes, hw.NodeSlow, "r")
				migrateIn(t, d, p, b, regionBytes)
				// Never touched: every region ties at heat 0, lastTouch 0.
				sd.Register(b, regionBytes)
			}
			p.SleepNS(20_000_000)
		})
		m.Eng.Run()
		return sd.DemotionLog()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no demotions submitted")
	}
	if len(a) != len(b) {
		t.Fatalf("replay diverged: %d vs %d demotions", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %#x vs %#x", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Errorf("tied regions not demoted in base order: %#x after %#x", a[i], a[i-1])
		}
	}
}

// Register/Unregister/Touch from application processes racing the
// daemon's scan/pump/completion path; run under -race in CI.
func TestConcurrentRegistrationChaos(t *testing.T) {
	m, d := setup()
	sd := New(d, DefaultOptions())
	const regionBytes = 1 << 20
	var bases [6]int64
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		for i := range bases {
			b, _ := d.AS.Mmap(p, regionBytes, hw.NodeSlow, "r")
			migrateIn(t, d, p, b, regionBytes)
			sd.Register(b, regionBytes)
			// Publish only once in place: the toucher writing mid
			// migrate-in would race the app device's own move.
			bases[i] = b
		}
		p.SleepNS(30_000_000)
		sd.Stop()
	})
	m.Eng.Spawn("toucher", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			p.SleepNS(100_000)
			b := bases[rng.Intn(len(bases))]
			if b == 0 {
				continue
			}
			sd.Touch(b, p.Now())
			if err := d.AS.Write(p, b, []byte{byte(i)}); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	})
	m.Eng.Spawn("churner", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 100; i++ {
			p.SleepNS(250_000)
			b := bases[rng.Intn(len(bases))]
			if b == 0 {
				continue
			}
			if rng.Intn(2) == 0 {
				sd.Unregister(b)
			} else {
				sd.Register(b, regionBytes)
			}
		}
	})
	m.Eng.Run()
	if n := sd.Outstanding(); n != 0 {
		t.Errorf("outstanding = %d after chaos run", n)
	}
	if err := sd.Audit(); err != nil {
		t.Errorf("request accounting after chaos: %v", err)
	}
}

func TestBadWatermarksPanic(t *testing.T) {
	m, d := setup()
	defer func() {
		_ = m
		if recover() == nil {
			t.Error("bad watermarks did not panic")
		}
	}()
	New(d, Options{HighWatermark: 0.5, LowWatermark: 0.9, PeriodNS: 1000})
}
