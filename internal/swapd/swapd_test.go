package swapd

import (
	"bytes"
	"testing"

	"memif/internal/core"
	"memif/internal/hw"
	"memif/internal/machine"
	"memif/internal/sim"
	"memif/internal/uapi"
)

func setup() (*machine.Machine, *core.Device) {
	m := machine.New(hw.KeyStoneII())
	as := m.NewAddressSpace(4096)
	return m, core.Open(m, as, core.DefaultOptions())
}

// migrateIn moves a region into fast memory through the app device.
func migrateIn(t *testing.T, d *core.Device, p *sim.Proc, base, length int64) {
	t.Helper()
	r := d.AllocRequest(p)
	r.Op = uapi.OpMigrate
	r.SrcBase, r.Length, r.DstNode = base, length, hw.NodeFast
	if err := d.Submit(p, r); err != nil {
		t.Fatal(err)
	}
	for {
		if got := d.RetrieveCompleted(p); got != nil {
			if got.Status != uapi.StatusDone {
				t.Fatalf("migrate in failed: %v", got)
			}
			d.FreeRequest(p, got)
			return
		}
		d.Poll(p, 0)
	}
}

func TestEvictsColdestWhenOverWatermark(t *testing.T) {
	m, d := setup()
	sd := New(d, DefaultOptions())
	const regionBytes = 2 << 20 // 2 MB each; three fill the 6 MB node
	var bases [3]int64
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		defer sd.Stop()
		for i := range bases {
			b, _ := d.AS.Mmap(p, regionBytes, hw.NodeSlow, "r")
			bases[i] = b
			d.AS.Write(p, b, bytes.Repeat([]byte{byte(i + 1)}, 4096))
			migrateIn(t, d, p, b, regionBytes)
			sd.Register(b, regionBytes)
			sd.Touch(b, p.Now())
		}
		// Fast node now 100% full (> high watermark). Region 0 is the
		// coldest (touched first). Let the daemon run.
		sd.Touch(bases[1], p.Now())
		sd.Touch(bases[2], p.Now())
		p.SleepNS(20_000_000) // 20 ms: several daemon periods

		if f := d.AS.FrameAt(bases[0]); f == nil || f.Node != hw.NodeSlow {
			t.Errorf("coldest region not evicted (node %v)", f)
		}
		if f := d.AS.FrameAt(bases[2]); f == nil || f.Node != hw.NodeFast {
			t.Errorf("hottest region evicted (node %v)", f)
		}
		usage := float64(m.Mem.Used(hw.NodeFast)) / float64(m.Mem.Node(hw.NodeFast).Capacity)
		if usage > DefaultOptions().HighWatermark {
			t.Errorf("usage still %.2f after daemon ran", usage)
		}
		// Evicted data survives intact.
		var b [1]byte
		d.AS.Read(p, bases[0], b[:])
		if b[0] != 1 {
			t.Errorf("evicted region corrupted: %d", b[0])
		}
	})
	m.Eng.Run()
	if sd.Stats().Evictions == 0 {
		t.Error("daemon recorded no evictions")
	}
	ms := sd.Metrics()
	if ms.Evictions != sd.Stats().Evictions {
		t.Errorf("Metrics.Evictions = %d, Stats.Evictions = %d", ms.Evictions, sd.Stats().Evictions)
	}
	if ms.Latency.Count != ms.Evictions {
		t.Errorf("latency histogram has %d samples for %d evictions", ms.Latency.Count, ms.Evictions)
	}
	if ms.Latency.Count > 0 && ms.Latency.Mean() <= 0 {
		t.Errorf("eviction latency mean = %v", ms.Latency.Mean())
	}
	if ms.Sizes.Sum != ms.BytesEvicted {
		t.Errorf("size histogram sum = %d, BytesEvicted = %d", ms.Sizes.Sum, ms.BytesEvicted)
	}
}

func TestIdleBelowWatermark(t *testing.T) {
	m, d := setup()
	sd := New(d, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		defer sd.Stop()
		// 2 MB of 6 MB used: well under the watermark.
		b, _ := d.AS.Mmap(p, 2<<20, hw.NodeSlow, "r")
		migrateIn(t, d, p, b, 2<<20)
		sd.Register(b, 2<<20)
		p.SleepNS(10_000_000)
		if f := d.AS.FrameAt(b); f == nil || f.Node != hw.NodeFast {
			t.Error("region evicted below watermark")
		}
	})
	m.Eng.Run()
	if sd.Stats().Evictions != 0 {
		t.Errorf("evictions = %d below watermark", sd.Stats().Evictions)
	}
}

func TestRacingWriteAbortsEvictionAndIsPreserved(t *testing.T) {
	m, d := setup()
	opts := DefaultOptions()
	sd := New(d, opts)
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		defer sd.Stop()
		const regionBytes = 3 << 20
		var bases [2]int64
		for i := range bases {
			b, _ := d.AS.Mmap(p, regionBytes, hw.NodeSlow, "r")
			bases[i] = b
			migrateIn(t, d, p, b, regionBytes)
			sd.Register(b, regionBytes)
		}
		// Node is full; the daemon will start evicting region 0 at its
		// next period (1 ms). Keep writing to it so every eviction
		// attempt aborts.
		for i := 0; i < 40; i++ {
			p.SleepNS(500_000)
			if err := d.AS.Write(p, bases[0], []byte{0xEE}); err != nil {
				t.Fatalf("write during eviction: %v", err)
			}
			sd.Touch(bases[0], p.Now())
		}
		var b [1]byte
		d.AS.Read(p, bases[0], b[:])
		if b[0] != 0xEE {
			t.Errorf("racing write lost: %d", b[0])
		}
	})
	m.Eng.Run()
	st := sd.Stats()
	t.Logf("evictions=%d failed=%d", st.Evictions, st.FailedEvictons)
	if st.FailedEvictons == 0 && st.Evictions == 0 {
		t.Error("daemon never attempted an eviction")
	}
}

func TestBadWatermarksPanic(t *testing.T) {
	m, d := setup()
	defer func() {
		_ = m
		if recover() == nil {
			t.Error("bad watermarks did not panic")
		}
	}()
	New(d, Options{HighWatermark: 0.5, LowWatermark: 0.9, PeriodNS: 1000})
}
