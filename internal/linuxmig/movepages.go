package linuxmig

import (
	"memif/internal/hw"
	"memif/internal/sim"
	"memif/internal/stats"
)

// PageStatus is the per-page result of MovePages, mirroring the status
// array move_pages(2) fills in.
type PageStatus int

// Per-page outcomes.
const (
	// StatusMoved: the page now resides on the requested node.
	StatusMoved PageStatus = iota
	// StatusAlreadyThere: the page was on the node already; skipped.
	StatusAlreadyThere
	// StatusBadAddress: the address is not mapped (EFAULT).
	StatusBadAddress
	// StatusNoMemory: the destination node could not supply a page
	// (ENOMEM); the page stays where it was.
	StatusNoMemory
)

func (s PageStatus) String() string {
	return [...]string{"moved", "already-there", "bad-address", "nomem"}[s]
}

// MovePages migrates an explicit list of pages in one synchronous
// syscall, the move_pages(2) flavor of the baseline: unlike MBind it
// takes scattered addresses rather than one region, reports a status per
// page, and keeps going past per-page failures. Addresses are rounded
// down to their page.
func (mg *Migrator) MovePages(p *sim.Proc, addrs []int64, dstNode hw.NodeID) []PageStatus {
	as := mg.AS
	cost := &mg.M.Plat.Cost
	out := make([]PageStatus, len(addrs))

	mg.busy(p, stats.PhaseInterface, cost.SyscallEnter+cost.MigrateSyscallBase)
	for i, addr := range addrs {
		addr &^= as.PageBytes - 1
		if as.FindVMA(addr) == nil {
			out[i] = StatusBadAddress
			continue
		}
		f := as.FrameAt(addr)
		if f == nil {
			out[i] = StatusBadAddress
			continue
		}
		if f.Node == dstNode {
			out[i] = StatusAlreadyThere
			continue
		}
		switch err := mg.migrateOne(p, addr, dstNode); {
		case err == nil:
			out[i] = StatusMoved
		default:
			// migrateOne only fails with ENOMEM here (addressability
			// was pre-checked); the page is untouched.
			out[i] = StatusNoMemory
		}
	}
	mg.busy(p, stats.PhaseInterface, cost.SyscallExit)
	return out
}
