package linuxmig

import (
	"testing"

	"memif/internal/hw"
	"memif/internal/sim"
)

func TestMovePagesScattered(t *testing.T) {
	m, mg := newRig()
	m.Eng.Spawn("app", func(p *sim.Proc) {
		base, _ := mg.AS.Mmap(p, 16*4096, hw.NodeSlow, "w")
		// Move pages 1, 5, 9 (with an unaligned address for 5).
		addrs := []int64{base + 1*4096, base + 5*4096 + 123, base + 9*4096}
		st := mg.MovePages(p, addrs, hw.NodeFast)
		for i, s := range st {
			if s != StatusMoved {
				t.Errorf("page %d: %v", i, s)
			}
		}
		// Moved pages on fast, neighbours untouched.
		for _, pg := range []int64{1, 5, 9} {
			if f := mg.AS.FrameAt(base + pg*4096); f.Node != hw.NodeFast {
				t.Errorf("page %d not moved", pg)
			}
		}
		for _, pg := range []int64{0, 2, 4, 6, 8, 10} {
			if f := mg.AS.FrameAt(base + pg*4096); f.Node != hw.NodeSlow {
				t.Errorf("page %d moved unexpectedly", pg)
			}
		}
	})
	m.Eng.Run()
}

func TestMovePagesPerPageStatuses(t *testing.T) {
	m, mg := newRig()
	m.Eng.Spawn("app", func(p *sim.Proc) {
		onFast, _ := mg.AS.Mmap(p, 4096, hw.NodeFast, "f")
		onSlow, _ := mg.AS.Mmap(p, 4096, hw.NodeSlow, "s")
		st := mg.MovePages(p, []int64{onFast, 0xdead0000, onSlow}, hw.NodeFast)
		want := []PageStatus{StatusAlreadyThere, StatusBadAddress, StatusMoved}
		for i := range want {
			if st[i] != want[i] {
				t.Errorf("page %d: %v, want %v", i, st[i], want[i])
			}
		}
	})
	m.Eng.Run()
}

func TestMovePagesContinuesPastENOMEM(t *testing.T) {
	m, mg := newRig()
	m.Eng.Spawn("app", func(p *sim.Proc) {
		// Fill the fast node except for one 4 KB page.
		filler, _ := mg.AS.Mmap(p, 6<<20-4096, hw.NodeFast, "filler")
		_ = filler
		base, _ := mg.AS.Mmap(p, 3*4096, hw.NodeSlow, "w")
		st := mg.MovePages(p, []int64{base, base + 4096, base + 2*4096}, hw.NodeFast)
		moved, nomem := 0, 0
		for _, s := range st {
			switch s {
			case StatusMoved:
				moved++
			case StatusNoMemory:
				nomem++
			}
		}
		if moved != 1 || nomem != 2 {
			t.Errorf("moved=%d nomem=%d, want 1/2 (statuses %v)", moved, nomem, st)
		}
	})
	m.Eng.Run()
}
