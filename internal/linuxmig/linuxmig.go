// Package linuxmig implements the baseline memif is evaluated against:
// page migration for NUMA as found in the Linux kernel, driven through a
// synchronous mbind()/migrate_pages()-style batch syscall (Section 2.2
// and the "Baseline Operations" column of Table 1).
//
// For every page the baseline performs, on the CPU and inside the
// syscall: a full vertical page-table walk, destination page allocation,
// installation of a migration PTE (with TLB flush) that blocks any
// concurrent accessor, a CPU byte copy, installation of the final PTE
// (with a second TLB flush), and freeing of the old page. Nothing is
// reused across pages and the caller learns about completion only when
// the syscall returns — which is exactly what memif's interface and
// mechanism overhaul attacks.
package linuxmig

import (
	"errors"
	"fmt"

	"memif/internal/hw"
	"memif/internal/machine"
	"memif/internal/pagetable"
	"memif/internal/phys"
	"memif/internal/sim"
	"memif/internal/stats"
	"memif/internal/vm"
)

// Errors returned by the migration syscalls.
var (
	ErrBadRegion = errors.New("linuxmig: bad region")
	ErrNoMemory  = errors.New("linuxmig: destination node out of memory")
)

// Migrator is the baseline migration service bound to one address space.
type Migrator struct {
	M  *machine.Machine
	AS *vm.AddressSpace

	// Meter accumulates the CPU time burnt inside migration syscalls
	// (all of it in the calling process's context — the baseline is
	// synchronous and CPU-bound).
	Meter *sim.Meter
	// Breakdown charges each per-page operation to its Table 1 phase.
	Breakdown *stats.Breakdown

	// Pages and Bytes count successfully migrated work.
	Pages int64
	Bytes int64
}

// New returns a baseline migrator for as.
func New(m *machine.Machine, as *vm.AddressSpace) *Migrator {
	return &Migrator{
		M:         m,
		AS:        as,
		Meter:     sim.NewMeter("linux-migrate"),
		Breakdown: stats.NewBreakdown(),
	}
}

func (mg *Migrator) busy(p *sim.Proc, phase string, ns int64) {
	if ns <= 0 {
		return
	}
	mg.Breakdown.Add(phase, ns)
	p.Busy(ns, mg.Meter)
}

// MBind migrates the pages of [base, base+length) to dstNode in one
// synchronous syscall, the way mbind(MPOL_MF_MOVE) / migrate_pages()
// does. It returns only when every page has been moved (or an error has
// been hit), so the caller observes the full latency.
func (mg *Migrator) MBind(p *sim.Proc, base, length int64, dstNode hw.NodeID) error {
	as := mg.AS
	cost := &mg.M.Plat.Cost
	if err := as.CheckRegion(base, length); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRegion, err)
	}
	pb := as.PageBytes
	n := length / pb

	// Syscall entry plus the fixed policy/VMA-walk/LRU-isolation work
	// mbind performs before touching any page.
	mg.busy(p, stats.PhaseInterface, cost.SyscallEnter+cost.MigrateSyscallBase)

	for i := int64(0); i < n; i++ {
		addr := base + i*pb
		if err := mg.migrateOne(p, addr, dstNode); err != nil {
			mg.busy(p, stats.PhaseInterface, cost.SyscallExit)
			return err
		}
	}
	mg.busy(p, stats.PhaseInterface, cost.SyscallExit)
	return nil
}

// migrateOne is the per-page baseline workflow of Table 1.
func (mg *Migrator) migrateOne(p *sim.Proc, addr int64, dstNode hw.NodeID) error {
	as := mg.AS
	cost := &mg.M.Plat.Cost
	pb := as.PageBytes

	// 1. Prep: full vertical lookup for this page.
	slot, wst := as.Table.Lookup(as.VPN(addr))
	mg.busy(p, stats.PhasePrep, int64(wst.Verticals)*cost.PageLookupVertical+cost.RmapBook)
	if slot == nil {
		return fmt.Errorf("%w: %#x unmapped", ErrBadRegion, addr)
	}
	old := slot.Load()
	if !old.Has(pagetable.FlagPresent) {
		return fmt.Errorf("%w: %#x not present", ErrBadRegion, addr)
	}
	oldFrame, ok := as.Mem.Lookup(old.Frame())
	if !ok {
		return fmt.Errorf("%w: dead frame at %#x", ErrBadRegion, addr)
	}
	if oldFrame.Node == dstNode {
		return nil // already there; Linux skips it
	}

	// 2. Remap: allocate on the destination, install the migration PTE
	// so concurrent accessors block, flush the TLB.
	newFrame, err := as.Mem.Alloc(dstNode, pb)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNoMemory, err)
	}
	migPTE := pagetable.Make(oldFrame.ID, pagetable.FlagPresent|pagetable.FlagMigration)
	slot.Store(migPTE)
	as.InvalidatePage(as.VPN(addr))
	mg.busy(p, stats.PhaseRemap, cost.PageAlloc+cost.PTEReplace+cost.TLBFlushPage)

	// 3. Copy: the CPU moves the bytes.
	phys.Copy(newFrame, oldFrame, pb)
	mg.busy(p, stats.PhaseCopy, cost.CopyNS(pb, pb))

	// 4. Release: install the final PTE, flush the TLB again, free the
	// old page, and unblock anyone who hit the migration PTE.
	final := pagetable.Make(newFrame.ID, pagetable.FlagPresent|pagetable.FlagWrite)
	if old.Has(pagetable.FlagDirty) {
		final = final.With(pagetable.FlagDirty)
	}
	slot.Store(final)
	as.InvalidatePage(as.VPN(addr))
	oldFrame.RefCount--
	newFrame.RefCount++
	if oldFrame.RefCount == 0 && !oldFrame.Pinned {
		as.Mem.Free(oldFrame)
	}
	as.ReleaseMigrationGate(slot)
	mg.busy(p, stats.PhaseRelease, cost.PTEReplace+cost.TLBFlushPage+cost.PageFree+cost.RmapBook)

	mg.Pages++
	mg.Bytes += pb
	return nil
}

// MigrateBatched issues nReqs region migrations grouping `batch` regions
// per syscall, the comparison mode of Figure 7 (batching amortizes the
// syscall but delays every notification to the batch's end). The
// completion time of request i is recorded via the done callback.
func (mg *Migrator) MigrateBatched(p *sim.Proc, regions [][2]int64, dstNode hw.NodeID, batch int, done func(i int, at sim.Time)) error {
	if batch < 1 {
		batch = 1
	}
	for start := 0; start < len(regions); start += batch {
		end := start + batch
		if end > len(regions) {
			end = len(regions)
		}
		cost := &mg.M.Plat.Cost
		// One syscall for the whole batch.
		mg.busy(p, stats.PhaseInterface, cost.SyscallEnter+cost.MigrateSyscallBase)
		for i := start; i < end; i++ {
			r := regions[i]
			pb := mg.AS.PageBytes
			for off := int64(0); off < r[1]; off += pb {
				if err := mg.migrateOne(p, r[0]+off, dstNode); err != nil {
					return err
				}
			}
		}
		mg.busy(p, stats.PhaseInterface, cost.SyscallExit)
		// The application learns about completions only now.
		for i := start; i < end; i++ {
			if done != nil {
				done(i, p.Now())
			}
		}
	}
	return nil
}
