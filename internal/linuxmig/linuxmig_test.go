package linuxmig

import (
	"errors"
	"testing"

	"memif/internal/hw"
	"memif/internal/machine"
	"memif/internal/sim"
	"memif/internal/stats"
)

func newRig() (*machine.Machine, *Migrator) {
	m := machine.New(hw.KeyStoneII())
	as := m.NewAddressSpace(4096)
	return m, New(m, as)
}

func TestMBindMovesDataAndPages(t *testing.T) {
	m, mg := newRig()
	m.Eng.Spawn("app", func(p *sim.Proc) {
		const n = 64 * 4096
		base, _ := mg.AS.Mmap(p, n, hw.NodeSlow, "w")
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(i * 3)
		}
		mg.AS.Write(p, base, buf)

		if err := mg.MBind(p, base, n, hw.NodeFast); err != nil {
			t.Fatalf("MBind: %v", err)
		}
		got := make([]byte, n)
		mg.AS.Read(p, base, got)
		for i := range got {
			if got[i] != byte(i*3) {
				t.Fatalf("byte %d corrupted", i)
			}
		}
		for i := int64(0); i < 64; i++ {
			if f := mg.AS.FrameAt(base + i*4096); f == nil || f.Node != hw.NodeFast {
				t.Fatalf("page %d not on fast node: %v", i, f)
			}
		}
		if mg.AS.Mem.Used(hw.NodeSlow) != 0 {
			t.Error("old pages not freed")
		}
	})
	m.Eng.Run()
	if mg.Pages != 64 || mg.Bytes != 64*4096 {
		t.Errorf("pages=%d bytes=%d", mg.Pages, mg.Bytes)
	}
}

func TestMBindIsSynchronousAndCPUBound(t *testing.T) {
	m, mg := newRig()
	var elapsed sim.Time
	m.Eng.Spawn("app", func(p *sim.Proc) {
		const n = 128 * 4096
		base, _ := mg.AS.Mmap(p, n, hw.NodeSlow, "w")
		mg.Meter.Reset()
		start := p.Now()
		mg.MBind(p, base, n, hw.NodeFast)
		elapsed = p.Now() - start
	})
	m.Eng.Run()
	// Synchronous: CPU busy time equals elapsed time (usage = 100%).
	if mg.Meter.Busy() != elapsed {
		t.Errorf("busy %v != elapsed %v; baseline must be 100%% CPU", mg.Meter.Busy(), elapsed)
	}
	// ~15 us per 4 KB page on KeyStone II (Section 2.2). Allow 20%.
	perPage := float64(elapsed) / 128 / 1000
	if perPage < 12 || perPage > 18 {
		t.Errorf("per-page cost = %.1f µs, want ~15 µs", perPage)
	}
}

func TestThroughputMatchesPaperSec22(t *testing.T) {
	// Section 2.2: migrating 1500 4KB pages with one mbind on the ARM
	// SoC shows ~0.30 GB/s.
	m, mg := newRig()
	var tput float64
	m.Eng.Spawn("app", func(p *sim.Proc) {
		const n = 1500 * 4096
		base, _ := mg.AS.Mmap(p, n, hw.NodeSlow, "w")
		start := p.Now()
		if err := mg.MBind(p, base, n, hw.NodeFast); err != nil {
			t.Fatal(err)
		}
		tput = stats.ThroughputGBs(n, p.Now()-start)
	})
	m.Eng.Run()
	if tput < 0.24 || tput > 0.36 {
		t.Errorf("ARM mbind throughput = %.2f GB/s, want ~0.30", tput)
	}
}

func TestXeonThroughputMatchesPaperSec22(t *testing.T) {
	if testing.Short() {
		t.Skip("million-page migration in long mode only")
	}
	// Section 2.2: 1500 pages -> ~0.66 GB/s; 1M pages -> ~1.41 GB/s on
	// the Xeon E5 box (both NUMA nodes are plain DDR3 there).
	run := func(pages int64) float64 {
		m := machine.New(hw.XeonE5())
		m.Mem.DisableData() // timing-only: skip gigabytes of host memcpy
		as := m.NewAddressSpace(4096)
		mg := New(m, as)
		var tput float64
		m.Eng.Spawn("app", func(p *sim.Proc) {
			n := pages * 4096
			base, err := as.Mmap(p, n, hw.NodeSlow, "w")
			if err != nil {
				t.Fatal(err)
			}
			start := p.Now()
			if err := mg.MBind(p, base, n, hw.NodeFast); err != nil {
				t.Fatal(err)
			}
			tput = stats.ThroughputGBs(n, p.Now()-start)
		})
		m.Eng.Run()
		return tput
	}
	if got := run(1500); got < 0.55 || got > 0.8 {
		t.Errorf("Xeon 1500-page throughput = %.2f GB/s, want ~0.66", got)
	}
	if got := run(1 << 20); got < 1.2 || got > 1.6 {
		t.Errorf("Xeon 1M-page throughput = %.2f GB/s, want ~1.41", got)
	}
}

func TestMBindValidation(t *testing.T) {
	m, mg := newRig()
	m.Eng.Spawn("app", func(p *sim.Proc) {
		base, _ := mg.AS.Mmap(p, 8*4096, hw.NodeSlow, "w")
		if err := mg.MBind(p, base+5, 4096, hw.NodeFast); !errors.Is(err, ErrBadRegion) {
			t.Errorf("unaligned: %v", err)
		}
		if err := mg.MBind(p, 0xbad000, 4096, hw.NodeFast); !errors.Is(err, ErrBadRegion) {
			t.Errorf("unmapped: %v", err)
		}
	})
	m.Eng.Run()
}

func TestMBindOutOfMemory(t *testing.T) {
	m, mg := newRig()
	m.Eng.Spawn("app", func(p *sim.Proc) {
		const n = 8 << 20 // > 6 MB fast node
		base, _ := mg.AS.Mmap(p, n, hw.NodeSlow, "big")
		if err := mg.MBind(p, base, n, hw.NodeFast); !errors.Is(err, ErrNoMemory) {
			t.Errorf("err = %v, want ErrNoMemory", err)
		}
		// Pages migrated before the failure stay migrated (Linux
		// semantics: partial success).
		if f := mg.AS.FrameAt(base); f == nil || f.Node != hw.NodeFast {
			t.Error("first page should have migrated before ENOMEM")
		}
	})
	m.Eng.Run()
}

func TestMBindSkipsPagesAlreadyOnNode(t *testing.T) {
	m, mg := newRig()
	m.Eng.Spawn("app", func(p *sim.Proc) {
		base, _ := mg.AS.Mmap(p, 4*4096, hw.NodeFast, "w")
		if err := mg.MBind(p, base, 4*4096, hw.NodeFast); err != nil {
			t.Fatal(err)
		}
		if mg.Pages != 0 {
			t.Errorf("migrated %d pages already on node", mg.Pages)
		}
	})
	m.Eng.Run()
}

func TestBatchedNotificationSemantics(t *testing.T) {
	// Figure 7's baseline: with batch=4, requests 0..3 all complete at
	// the same instant (the syscall return), likewise 4..7.
	m, mg := newRig()
	times := make([]sim.Time, 8)
	m.Eng.Spawn("app", func(p *sim.Proc) {
		var regions [][2]int64
		for i := 0; i < 8; i++ {
			base, _ := mg.AS.Mmap(p, 16*4096, hw.NodeSlow, "w")
			regions = append(regions, [2]int64{base, 16 * 4096})
		}
		err := mg.MigrateBatched(p, regions, hw.NodeFast, 4, func(i int, at sim.Time) {
			times[i] = at
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	m.Eng.Run()
	if times[0] != times[3] {
		t.Errorf("batch 1 not notified together: %v vs %v", times[0], times[3])
	}
	if times[4] != times[7] {
		t.Errorf("batch 2 not notified together: %v vs %v", times[4], times[7])
	}
	if times[4] <= times[0] {
		t.Error("second batch not after first")
	}
}

func TestMigrationPTEInstalledDuringCopy(t *testing.T) {
	// Verify the baseline actually installs blocking PTEs: a concurrent
	// accessor must stall until the page is released.
	m, mg := newRig()
	var base int64
	var touchDone sim.Time
	var mbindDone sim.Time
	m.Eng.Spawn("app", func(p *sim.Proc) {
		base, _ = mg.AS.Mmap(p, 4096, hw.NodeSlow, "w")
		m.Eng.Spawn("toucher", func(tp *sim.Proc) {
			// A single-page migration holds its blocking PTE roughly
			// between 9 µs (after remap) and 18 µs (release). Land in
			// that window.
			tp.SleepNS(11_000)
			if err := mg.AS.Touch(tp, base, false); err != nil {
				t.Errorf("touch: %v", err)
			}
			touchDone = tp.Now()
		})
		mg.MBind(p, base, 4096, hw.NodeFast)
		mbindDone = p.Now()
	})
	m.Eng.Run()
	if touchDone <= sim.Time(11_000) {
		t.Fatalf("toucher was never blocked (done at %v)", touchDone)
	}
	// It unblocks at release, which is within a syscall-exit of the
	// mbind return.
	if touchDone+sim.Time(5_000) < mbindDone {
		t.Errorf("toucher finished at %v, mbind at %v: blocking PTE missing", touchDone, mbindDone)
	}
}

func TestBreakdownDominatedByCPUWork(t *testing.T) {
	m, mg := newRig()
	m.Eng.Spawn("app", func(p *sim.Proc) {
		base, _ := mg.AS.Mmap(p, 256*4096, hw.NodeSlow, "w")
		mg.MBind(p, base, 256*4096, hw.NodeFast)
	})
	m.Eng.Run()
	b := mg.Breakdown
	for _, ph := range []string{stats.PhasePrep, stats.PhaseRemap, stats.PhaseCopy, stats.PhaseRelease, stats.PhaseInterface} {
		if b.Get(ph) <= 0 {
			t.Errorf("phase %s empty", ph)
		}
	}
	// Copy is ~4 of ~15 µs per page (Section 2.2): between 15% and 45%.
	frac := float64(b.Get(stats.PhaseCopy)) / float64(b.Total())
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("copy fraction = %.2f, want ~0.27", frac)
	}
}
