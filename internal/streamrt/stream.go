package streamrt

import (
	"fmt"

	"memif/internal/obs"
	"memif/internal/obs/lifecycle"
	"memif/internal/sim"
	"memif/internal/stats"
	"memif/internal/uapi"
	"memif/internal/workloads"
)

// MaxCredits caps a single stream's credit allowance. Credits bound
// ring-buffer occupancy, and no ring is anywhere near this deep.
const MaxCredits = 1 << 16

// StreamSpec describes one stream to Engine.OpenStream.
type StreamSpec struct {
	// Kernel is the compute kernel invoked on each chunk.
	Kernel workloads.Kernel
	// Base/Length delimit the input range on the slow node. Length
	// must be a positive multiple of the engine's BufBytes.
	Base, Length int64
	// Class is the QoS class stamped on the stream's fill requests
	// (uapi.ClassForeground/Background/Scavenger).
	Class uapi.Class
	// Credits is the stream's backpressure allowance: the maximum
	// number of ring buffers it may hold (fills in flight plus filled
	// buffers awaiting consumption). Zero defaults to 2.
	Credits int
	// Name labels the stream in metrics and /debug/outliers tenant
	// lanes. Empty defaults to "stream-<id>". Must be label-safe:
	// letters, digits, '.', '_', '-'.
	Name string
}

// labelSafe reports whether s can be embedded in a metric label and a
// flight tenant name without escaping.
func labelSafe(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Validate checks the spec against an engine buffer size. It is the
// single gate OpenStream applies (and the fuzz target's subject): a nil
// error guarantees Length is a positive multiple of bufBytes, Base is
// non-negative, Class is a known QoS class, Credits (after defaulting)
// is in [1, MaxCredits], and Name is label-safe.
func (sp StreamSpec) Validate(bufBytes int64) error {
	if bufBytes <= 0 {
		return fmt.Errorf("%w: engine buffer size %d", ErrBadStream, bufBytes)
	}
	if sp.Base < 0 {
		return fmt.Errorf("%w: negative base %d", ErrBadStream, sp.Base)
	}
	if sp.Length <= 0 || sp.Length%bufBytes != 0 {
		return fmt.Errorf("%w: length %d not a positive multiple of buffer size %d", ErrBadStream, sp.Length, bufBytes)
	}
	if sp.Base > (1<<62)-sp.Length {
		return fmt.Errorf("%w: range [%d, %d+%d) overflows", ErrBadStream, sp.Base, sp.Base, sp.Length)
	}
	if sp.Class > uapi.ClassScavenger {
		return fmt.Errorf("%w: unknown class %d", ErrBadStream, sp.Class)
	}
	if sp.Credits < 0 || sp.Credits > MaxCredits {
		return fmt.Errorf("%w: credits %d outside [0, %d]", ErrBadStream, sp.Credits, MaxCredits)
	}
	if !labelSafe(sp.Name) {
		return fmt.Errorf("%w: name %q not label-safe", ErrBadStream, sp.Name)
	}
	return nil
}

// readyFill is a completed fill awaiting zero-copy consumption.
type readyFill struct {
	buf   int   // ring buffer index
	chunk int64 // input chunk it holds (stats/debug)
}

// Stream is one open stream: a cursor over [Base, Base+Length) whose
// chunks arrive either zero-copy through the engine's ring (fast path)
// or straight from the slow node (never-stall fallback). Handles are
// not goroutine-safe — drive each stream from one sim proc — but any
// number of streams multiplex over one engine concurrently, and Stats
// may be read from any goroutine.
type Stream struct {
	eng  *Engine
	id   int
	name string
	spec StreamSpec

	chunks   int64 // spec.Length / eng BufBytes
	nextFill int64 // next chunk index not yet assigned (fill or fallback)
	consumed int64

	credits creditLedger
	ready   []readyFill // completed fills, consumption order
	scratch []byte
	acc     uint64

	failed error // sticky fill/kernel failure
	closed bool

	openedAt sim.Time
	doneAt   sim.Time

	// Counters are obs primitives so Stats/Snapshot can read them from
	// the scrape goroutine while the stream runs.
	fastChunks, slowChunks obs.Counter
	bytesPrefetched        obs.Counter
	fills, fillFailures    obs.Counter
	tailWaits, stalls      obs.Counter
	fillLatency            obs.Histogram
	stages                 lifecycle.SpanSet
	closedG, doneG         obs.Gauge
}

// ID returns the engine-assigned stream id.
func (s *Stream) ID() int { return s.id }

// Name returns the stream's metric label.
func (s *Stream) Name() string { return s.name }

// Done reports whether every chunk has been consumed.
func (s *Stream) Done() bool { return s.doneG.Current() != 0 }

// Err returns the stream's sticky failure, if any.
func (s *Stream) Err() error { return s.failed }

// Checksum returns the kernel's running reduction over the chunks
// consumed so far.
func (s *Stream) Checksum() uint64 { return s.acc }

// Stats snapshots the stream's counters. Safe from any goroutine; valid
// after Close.
func (s *Stream) Stats() StreamStats {
	return StreamStats{
		ID:              s.id,
		Name:            s.name,
		Kernel:          s.spec.Kernel.Name,
		Class:           int(s.spec.Class),
		Bytes:           s.spec.Length,
		Chunks:          s.chunks,
		Credits:         s.credits.total,
		CreditsInFlight: int(s.credits.inFlightG.Current()),
		CreditsGranted:  s.fills.Load(),
		CreditsReturned: s.fills.Load() - s.credits.inFlightG.Current(),
		FastChunks:      s.fastChunks.Load(),
		SlowChunks:      s.slowChunks.Load(),
		BytesPrefetched: s.bytesPrefetched.Load(),
		Fills:           s.fills.Load(),
		FillFailures:    s.fillFailures.Load(),
		TailWaits:       s.tailWaits.Load(),
		Stalls:          s.stalls.Load(),
		Closed:          s.closedG.Current() != 0,
		Done:            s.doneG.Current() != 0,
		FillLatency:     s.fillLatency.Snapshot(),
		Stages:          s.stages.Snapshot(),
	}
}

// Consume advances the stream by exactly one chunk: zero-copy from a
// filled ring buffer when one is ready, otherwise the never-stall
// fallback straight from the slow node, otherwise (all chunks assigned,
// fills still in flight) it waits for the tail. It returns done=true
// once every chunk has been consumed. A fill or kernel failure is
// sticky: every subsequent call returns it.
func (s *Stream) Consume(p *sim.Proc) (done bool, err error) {
	e := s.eng
	if s.closed {
		return false, ErrStreamClosed
	}
	for {
		e.drain(p)
		if s.failed != nil {
			return false, s.failed
		}
		if err := e.err; err != nil {
			return false, err
		}
		if s.consumed >= s.chunks {
			return true, nil
		}

		// Fast path: a fill completed — run the kernel zero-copy on the
		// pinned ring buffer, then recycle buffer and credit.
		if len(s.ready) > 0 {
			rf := s.ready[0]
			s.ready = s.ready[1:]
			acc, kerr := s.spec.Kernel.Consume(p, e.d.AS, e.bufs[rf.buf], e.opts.BufBytes, s.scratch, s.acc)
			e.releaseBuf(rf.buf)
			s.credits.put()
			if kerr != nil {
				s.fail(kerr)
				return false, kerr
			}
			s.acc = acc
			s.consumed++
			s.fastChunks.Inc()
			e.fastChunks.Inc()
			if m := e.opts.Metrics; m != nil {
				m.FastChunks.Inc()
			}
			e.refill(p)
			return s.finishChunk(p), e.err
		}

		// Never-stall fallback: no buffer ready but unassigned input
		// remains — consume the next unassigned chunk in place.
		if s.nextFill < s.chunks {
			addr := s.spec.Base + s.nextFill*e.opts.BufBytes
			s.nextFill++
			acc, kerr := s.spec.Kernel.Consume(p, e.d.AS, addr, e.opts.BufBytes, s.scratch, s.acc)
			if kerr != nil {
				s.fail(kerr)
				return false, kerr
			}
			s.acc = acc
			s.consumed++
			s.slowChunks.Inc()
			e.slowChunks.Inc()
			if m := e.opts.Metrics; m != nil {
				m.SlowChunks.Inc()
			}
			return s.finishChunk(p), nil
		}

		// Everything is assigned; only in-flight fills can finish the
		// stream. With none outstanding the stream is wedged — that is
		// a runtime bug, counted as a stall (gated to zero in membench).
		if s.credits.inFlight == 0 {
			s.stalls.Inc()
			e.stalls.Inc()
			err := fmt.Errorf("streamrt: stream %d (%s) stuck with no outstanding fills", s.id, s.name)
			s.fail(err)
			return false, err
		}
		// Tail wait: bounded poll so a completion drained on our behalf
		// by a sibling stream's proc (which appends to s.ready) is
		// picked up at the next quantum even though no new device
		// notification will arrive for it.
		s.tailWaits.Inc()
		e.d.Poll(p, tailPollQuantumNS)
	}
}

// finishChunk stamps completion state after a successful consume.
func (s *Stream) finishChunk(p *sim.Proc) bool {
	if s.consumed < s.chunks {
		return false
	}
	s.doneAt = p.Now()
	s.doneG.Set(1)
	return true
}

// fail latches the stream's sticky error.
func (s *Stream) fail(err error) {
	if s.failed == nil {
		s.failed = err
	}
}

// Run drives Consume until the stream completes, then closes the
// handle and reports the run — the handle-based equivalent of the
// original one-shot Run.
func (s *Stream) Run(p *sim.Proc) (Result, error) {
	for {
		done, err := s.Consume(p)
		if err != nil {
			s.Close(p)
			return Result{}, err
		}
		if done {
			break
		}
	}
	elapsed := s.doneAt - s.openedAt
	res := Result{
		Kernel:        s.spec.Kernel.Name,
		Bytes:         s.spec.Length,
		Elapsed:       elapsed,
		ThroughputMBs: stats.ThroughputMBs(s.spec.Length, elapsed),
		FastChunks:    s.fastChunks.Load(),
		SlowChunks:    s.slowChunks.Load(),
		Checksum:      s.acc,
	}
	s.Close(p)
	return res, nil
}

// Close releases the stream: ready buffers return to the ring at once,
// in-flight fills drain back as they complete (the engine frees them),
// and freed capacity is immediately re-offered to sibling streams.
// Idempotent; Stats/Checksum remain readable afterwards.
func (s *Stream) Close(p *sim.Proc) {
	if s.closed {
		return
	}
	s.closed = true
	s.closedG.Set(1)
	e := s.eng
	for _, rf := range s.ready {
		e.releaseBuf(rf.buf)
		s.credits.put()
	}
	s.ready = nil
	e.streamClosed(p, s)
}
