// Package streamrt is the mini runtime of the case study (Section 6.6):
// it treats the fast memory as an array of prefetch buffers and manages
// outstanding memif replications like asynchronous I/O requests.
//
// As soon as a run starts, the runtime fills all buffers by replicating
// data from the slow node asynchronously. Whenever a buffer is ready it
// invokes the workload's compute kernel on it; immediately after a buffer
// is consumed it requests a refill with fresh data. If all prefetched
// data is consumed while moves are still in flight, the kernel is invoked
// directly on the slow memory — the runtime never stalls the computation
// waiting for a transfer.
//
// The paper implements this in ~400 SLoC on top of the memif user API;
// the structure here is the same.
package streamrt

import (
	"errors"
	"fmt"

	"memif/internal/core"
	"memif/internal/hw"
	"memif/internal/obs"
	"memif/internal/obs/lifecycle"
	"memif/internal/sim"
	"memif/internal/stats"
	"memif/internal/uapi"
	"memif/internal/vm"
	"memif/internal/workloads"
)

// Config sizes the prefetch-buffer array.
type Config struct {
	// BufBytes is the size of one prefetch buffer (a multiple of the
	// page size).
	BufBytes int64
	// NumBufs is how many buffers are carved out of the fast node.
	NumBufs int
	// FastNode is where buffers live; SlowNode is where input streams
	// from.
	FastNode, SlowNode hw.NodeID
	// Metrics, when non-nil, accumulates runtime observability across
	// runs: fill latencies, prefetch bytes, fast/slow chunk counts.
	Metrics *Metrics
}

// Metrics is the runtime's obs instrument set. One Metrics may be
// shared by any number of runs (its primitives are lock-free).
type Metrics struct {
	// FillLatency is the submit-to-completion histogram of prefetch
	// fills (virtual ns).
	FillLatency obs.Histogram
	// FastChunks / SlowChunks count chunks consumed from prefetch
	// buffers vs. straight from the slow node.
	FastChunks, SlowChunks obs.Counter
	// BytesPrefetched totals the payload replicated into buffers.
	BytesPrefetched obs.Counter
	// Stages attributes fill latency per pipeline stage (staging wait,
	// dispatch wait, copy, completion dwell) from each fill request's
	// stage stamps, in virtual ns.
	Stages lifecycle.SpanSet
}

// MetricsSnapshot is a point-in-time copy of Metrics.
type MetricsSnapshot struct {
	FillLatency            obs.HistogramSnapshot
	FastChunks, SlowChunks int64
	BytesPrefetched        int64
	Stages                 lifecycle.SpanSnapshot
}

// Snapshot captures the metrics. Nil-safe (zero snapshot).
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		FillLatency:     m.FillLatency.Snapshot(),
		FastChunks:      m.FastChunks.Load(),
		SlowChunks:      m.SlowChunks.Load(),
		BytesPrefetched: m.BytesPrefetched.Load(),
		Stages:          m.Stages.Snapshot(),
	}
}

// DefaultConfig returns the configuration used for Table 4: eight 512 KB
// buffers, 4 MB of the 6 MB fast node.
func DefaultConfig() Config {
	return Config{
		BufBytes: 512 << 10,
		NumBufs:  8,
		FastNode: hw.NodeFast,
		SlowNode: hw.NodeSlow,
	}
}

// Result reports one streaming run.
type Result struct {
	Kernel        string
	Bytes         int64
	Elapsed       sim.Time
	ThroughputMBs float64
	// FastChunks were consumed out of prefetch buffers; SlowChunks fell
	// back to the slow node because no buffer was ready.
	FastChunks, SlowChunks int64
	// Checksum verifies the kernel saw exactly the input bytes.
	Checksum uint64
}

// ErrInput flags bad run parameters.
var ErrInput = errors.New("streamrt: bad input")

// RunDirect streams the kernel over [base, base+length) in place — the
// "Linux" rows of Table 4, where the data stays on the slow node.
func RunDirect(p *sim.Proc, as *vm.AddressSpace, k workloads.Kernel, base, length int64, cfg Config) (Result, error) {
	if length <= 0 || length%cfg.BufBytes != 0 {
		return Result{}, fmt.Errorf("%w: length %d not a multiple of buffer size %d", ErrInput, length, cfg.BufBytes)
	}
	scratch := make([]byte, cfg.BufBytes)
	var acc uint64
	start := p.Now()
	for off := int64(0); off < length; off += cfg.BufBytes {
		var err error
		acc, err = k.Consume(p, as, base+off, cfg.BufBytes, scratch, acc)
		if err != nil {
			return Result{}, err
		}
	}
	elapsed := p.Now() - start
	return Result{
		Kernel:        k.Name,
		Bytes:         length,
		Elapsed:       elapsed,
		ThroughputMBs: stats.ThroughputMBs(length, elapsed),
		SlowChunks:    length / cfg.BufBytes,
		Checksum:      acc,
	}, nil
}

// Run streams the kernel over [base, base+length) through the memif
// prefetch-buffer pipeline — the "Memif" rows of Table 4.
func Run(p *sim.Proc, d *core.Device, k workloads.Kernel, base, length int64, cfg Config) (Result, error) {
	as := d.AS
	if length <= 0 || length%cfg.BufBytes != 0 {
		return Result{}, fmt.Errorf("%w: length %d not a multiple of buffer size %d", ErrInput, length, cfg.BufBytes)
	}
	if cfg.NumBufs < 1 || cfg.BufBytes%as.PageBytes != 0 {
		return Result{}, fmt.Errorf("%w: config %+v", ErrInput, cfg)
	}
	chunks := length / cfg.BufBytes

	// Carve the prefetch buffers out of the fast node.
	bufs := make([]int64, cfg.NumBufs)
	for i := range bufs {
		b, err := as.Mmap(p, cfg.BufBytes, cfg.FastNode, fmt.Sprintf("prefetch-%d", i))
		if err != nil {
			return Result{}, fmt.Errorf("streamrt: carving buffer %d: %w", i, err)
		}
		bufs[i] = b
	}
	defer func() {
		for _, b := range bufs {
			_ = as.Munmap(p, b)
		}
	}()

	res := Result{Kernel: k.Name, Bytes: length}
	scratch := make([]byte, cfg.BufBytes)
	var acc uint64

	// nextFill is the next chunk not yet assigned anywhere; both
	// prefetches and slow-path fallback consumption claim chunks from
	// it, so no chunk is ever processed twice.
	nextFill := int64(0)
	consumed := int64(0)
	outstanding := 0

	fill := func(buf int) error {
		r := d.AllocRequest(p)
		if r == nil {
			return errors.New("streamrt: out of mov_req slots")
		}
		r.Op = uapi.OpReplicate
		r.SrcBase = base + nextFill*cfg.BufBytes
		r.DstBase = bufs[buf]
		r.Length = cfg.BufBytes
		r.Cookie = uint64(buf)
		nextFill++
		outstanding++
		return d.Submit(p, r)
	}

	start := p.Now()
	// Prime every buffer.
	for i := 0; i < cfg.NumBufs && nextFill < chunks; i++ {
		if err := fill(i); err != nil {
			return Result{}, err
		}
	}

	for consumed < chunks {
		if r := d.RetrieveCompleted(p); r != nil {
			buf := int(r.Cookie)
			failed := r.Status != uapi.StatusDone
			if cfg.Metrics != nil && !failed {
				cfg.Metrics.FillLatency.Observe(int64(r.Completed - r.Submitted))
				cfg.Metrics.BytesPrefetched.Add(r.Length)
				ts := lifecycle.Stamps(int64(r.Submitted), int64(r.Flushed),
					int64(r.Dispatched), int64(r.CopyStart), int64(r.Completed),
					int64(r.Completed), int64(r.Retrieved))
				cfg.Metrics.Stages.ObserveStamps(&ts)
			}
			d.FreeRequest(p, r)
			outstanding--
			if failed {
				return Result{}, fmt.Errorf("streamrt: fill failed: %v", r.Err)
			}
			var err error
			acc, err = k.Consume(p, as, bufs[buf], cfg.BufBytes, scratch, acc)
			if err != nil {
				return Result{}, err
			}
			consumed++
			res.FastChunks++
			if cfg.Metrics != nil {
				cfg.Metrics.FastChunks.Inc()
			}
			// More input remains unassigned: refill this buffer.
			if nextFill < chunks {
				if err := fill(buf); err != nil {
					return Result{}, err
				}
			}
			continue
		}
		// No buffer ready. If unassigned input remains, consume the
		// next unassigned chunk straight from the slow node rather than
		// idling (the paper's fallback).
		if nextFill < chunks {
			addr := base + nextFill*cfg.BufBytes
			nextFill++
			var err error
			acc, err = k.Consume(p, as, addr, cfg.BufBytes, scratch, acc)
			if err != nil {
				return Result{}, err
			}
			consumed++
			res.SlowChunks++
			if cfg.Metrics != nil {
				cfg.Metrics.SlowChunks.Inc()
			}
			continue
		}
		// Everything is assigned; block for the in-flight fills.
		if outstanding == 0 {
			return Result{}, errors.New("streamrt: stuck with no outstanding fills")
		}
		d.Poll(p, 0)
	}
	res.Elapsed = p.Now() - start
	res.ThroughputMBs = stats.ThroughputMBs(length, res.Elapsed)
	res.Checksum = acc
	return res, nil
}
