// Package streamrt is the streaming runtime grown out of the paper's
// Section 6.6 case study: it treats the fast memory as a ring of pinned
// prefetch buffers and manages outstanding memif replications like
// asynchronous I/O requests.
//
// The original one-shot sketch (one kernel, one run, buffers carved and
// torn down per call) survives as the deprecated Run/RunDirect
// wrappers. The current shape is a long-lived orchestrator: an Engine
// opened over a core.Device mmaps its buffer ring once and recycles it
// across any number of concurrent Stream handles, each paced by
// credit-based backpressure (OpenStream / Stream.Consume in engine.go
// and stream.go; the credit protocol in credits.go).
//
// The paper's invariants are kept: as soon as a stream opens, the
// engine fills buffers for it by replicating data from the slow node
// asynchronously; whenever a buffer is ready the workload's compute
// kernel runs zero-copy on the pinned buffer; a consumed buffer is
// immediately re-offered for refill. If a stream's prefetched data runs
// out while fills are still in flight, the kernel is invoked directly
// on the slow memory — the runtime never stalls the computation waiting
// for a transfer.
package streamrt

import (
	"fmt"

	"memif/internal/core"
	"memif/internal/hw"
	"memif/internal/obs/flight"
	"memif/internal/sim"
	"memif/internal/stats"
	"memif/internal/uapi"
	"memif/internal/vm"
	"memif/internal/workloads"
)

// Config sizes the prefetch-buffer array of the deprecated one-shot
// API. New code should build EngineOptions directly.
type Config struct {
	// BufBytes is the size of one prefetch buffer (a multiple of the
	// page size).
	BufBytes int64
	// NumBufs is how many buffers are carved out of the fast node.
	NumBufs int
	// FastNode is where buffers live; SlowNode is where input streams
	// from.
	FastNode, SlowNode hw.NodeID
	// Metrics, when non-nil, accumulates runtime observability across
	// runs: fill latencies, prefetch bytes, fast/slow chunk counts.
	Metrics *Metrics
}

// DefaultConfig returns the configuration used for Table 4: eight 512 KB
// buffers, 4 MB of the 6 MB fast node.
func DefaultConfig() Config {
	return Config{
		BufBytes: 512 << 10,
		NumBufs:  8,
		FastNode: hw.NodeFast,
		SlowNode: hw.NodeSlow,
	}
}

// Result reports one streaming run.
type Result struct {
	Kernel        string
	Bytes         int64
	Elapsed       sim.Time
	ThroughputMBs float64
	// FastChunks were consumed out of prefetch buffers; SlowChunks fell
	// back to the slow node because no buffer was ready.
	FastChunks, SlowChunks int64
	// Checksum verifies the kernel saw exactly the input bytes.
	Checksum uint64
}

// ErrInput flags bad run parameters.
//
// Deprecated: it is the same error as ErrBadStream, kept so existing
// errors.Is checks keep working.
var ErrInput = ErrBadStream

// RunDirect streams the kernel over [base, base+length) in place — the
// "Linux" rows of Table 4, where the data stays on the slow node.
func RunDirect(p *sim.Proc, as *vm.AddressSpace, k workloads.Kernel, base, length int64, cfg Config) (Result, error) {
	if length <= 0 || cfg.BufBytes <= 0 || length%cfg.BufBytes != 0 {
		return Result{}, fmt.Errorf("%w: length %d not a multiple of buffer size %d", ErrInput, length, cfg.BufBytes)
	}
	scratch := make([]byte, cfg.BufBytes)
	var acc uint64
	start := p.Now()
	for off := int64(0); off < length; off += cfg.BufBytes {
		var err error
		acc, err = k.Consume(p, as, base+off, cfg.BufBytes, scratch, acc)
		if err != nil {
			return Result{}, err
		}
	}
	elapsed := p.Now() - start
	return Result{
		Kernel:        k.Name,
		Bytes:         length,
		Elapsed:       elapsed,
		ThroughputMBs: stats.ThroughputMBs(length, elapsed),
		SlowChunks:    length / cfg.BufBytes,
		Checksum:      acc,
	}, nil
}

// Run streams the kernel over [base, base+length) through the memif
// prefetch-buffer pipeline — the "Memif" rows of Table 4.
//
// Deprecated: Run opens a single-stream Engine per call, recreating the
// one-shot behaviour (carve ring, stream, tear down). Long-lived code
// should hold an Engine and OpenStream instead, which keeps the ring
// pinned across runs and multiplexes streams.
func Run(p *sim.Proc, d *core.Device, k workloads.Kernel, base, length int64, cfg Config) (Result, error) {
	if cfg.NumBufs < 1 || cfg.BufBytes <= 0 || cfg.BufBytes%d.AS.PageBytes != 0 {
		return Result{}, fmt.Errorf("%w: config %+v", ErrInput, cfg)
	}
	spec := StreamSpec{
		Kernel:  k,
		Base:    base,
		Length:  length,
		Class:   uapi.ClassBackground,
		Credits: cfg.NumBufs,
		Name:    "oneshot",
	}
	if err := spec.Validate(cfg.BufBytes); err != nil {
		return Result{}, err
	}
	e, err := OpenEngine(p, d, EngineOptions{
		BufBytes:   cfg.BufBytes,
		RingBufs:   cfg.NumBufs,
		FastNode:   cfg.FastNode,
		SlowNode:   cfg.SlowNode,
		MaxStreams: 1,
		Metrics:    cfg.Metrics,
		Flight:     flight.Options{Disable: true},
	})
	if err != nil {
		return Result{}, err
	}
	defer e.Close(p)
	s, err := e.OpenStream(p, spec)
	if err != nil {
		return Result{}, err
	}
	return s.Run(p)
}
