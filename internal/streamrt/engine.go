package streamrt

import (
	"errors"
	"fmt"
	"sync"

	"memif/internal/core"
	"memif/internal/hw"
	"memif/internal/obs"
	"memif/internal/obs/flight"
	"memif/internal/obs/lifecycle"
	"memif/internal/sim"
	"memif/internal/uapi"
)

// Errors of the handle-based API (the facade re-exports them).
var (
	// ErrStreamClosed is returned by operations on a closed stream or
	// a closed engine.
	ErrStreamClosed = errors.New("streamrt: stream closed")
	// ErrBadStream flags a rejected StreamSpec or engine configuration.
	ErrBadStream = errors.New("streamrt: bad stream spec")
)

// tailPollQuantumNS bounds a tail wait: a stream waiting for its last
// in-flight fills wakes on the next device completion or after this
// many virtual ns, whichever is first — the re-check catches fills a
// sibling stream's proc drained and handed over while we slept.
const tailPollQuantumNS = 10_000

// EngineOptions configures OpenEngine.
type EngineOptions struct {
	// BufBytes is the size of one ring buffer (a multiple of the page
	// size); every stream chunk is one buffer.
	BufBytes int64
	// RingBufs is how many pinned buffers the engine carves out of the
	// fast node at open — the only mmaps it ever performs.
	RingBufs int
	// FastNode hosts the ring; SlowNode is where inputs nominally
	// live (documentation — the fallback reads wherever the stream's
	// Base is actually mapped).
	FastNode, SlowNode hw.NodeID
	// MaxStreams caps concurrently open streams. Default 64.
	MaxStreams int
	// Metrics, when non-nil, additionally accumulates engine-wide
	// totals into the legacy shared instrument set.
	Metrics *Metrics
	// Flight configures the always-on flight recorder. The engine
	// lives on the simulated clock, so SLO burn windows and the
	// watchdog are forced off (the swapd convention); outlier capture
	// and adaptive thresholds run on virtual ns, with one tenant lane
	// per stream.
	Flight flight.Options
}

// DefaultEngineOptions mirrors the Table 4 geometry: eight 512 KB
// buffers, 4 MB of the 6 MB fast node.
func DefaultEngineOptions() EngineOptions {
	return EngineOptions{
		BufBytes:   512 << 10,
		RingBufs:   8,
		FastNode:   hw.NodeFast,
		SlowNode:   hw.NodeSlow,
		MaxStreams: 64,
	}
}

// Engine is the long-lived stream orchestrator: one ring of pinned
// prefetch buffers over one memif device, multiplexed by any number of
// concurrent Stream handles. Buffers are mmap'd once at OpenEngine and
// recycled across streams until Close — never carved per run.
//
// Engine methods must be called from sim procs (any proc; streams
// commonly run on one proc each). Snapshot alone is goroutine-safe.
type Engine struct {
	d    *core.Device
	opts EngineOptions

	bufs     []int64 // ring buffer base addresses (len == RingBufs)
	bufChunk []int64 // chunk index a granted buffer is being filled with
	freeBufs []int   // free ring slots (LIFO)

	// Registry of live streams (open, or closed with fills draining).
	// mu guards it against concurrent Snapshot; sim procs serialize
	// among themselves.
	mu          sync.Mutex
	byID        map[int]*Stream
	order       []*Stream // round-robin grant order
	streamNames []string  // indexed by stream id, all streams ever opened
	nextID      int
	openCount   int
	rr          int

	outstanding int // fills submitted, completion not yet retrieved

	closed bool
	err    error // sticky engine-fatal error (submit failure)

	fr *flight.Recorder // nil when opts.Flight.Disable

	// Lock-free mirrors for Snapshot.
	bufMmaps                     obs.Counter
	fills, fillBatches           obs.Counter
	fastChunks, slowChunks       obs.Counter
	bytesPrefetched              obs.Counter
	stalls                       obs.Counter
	streamsOpened, streamsClosed obs.Counter
	freeBufsG, outstandingG      obs.Gauge
	openG                        obs.Gauge
}

// OpenEngine carves the buffer ring out of the fast node and returns
// the orchestrator. Close the engine (before closing the device) to
// drain in-flight fills and release the ring.
func OpenEngine(p *sim.Proc, d *core.Device, opts EngineOptions) (*Engine, error) {
	if opts.BufBytes <= 0 || opts.BufBytes%d.AS.PageBytes != 0 {
		return nil, fmt.Errorf("%w: BufBytes %d not a positive multiple of the page size", ErrBadStream, opts.BufBytes)
	}
	if opts.RingBufs < 1 {
		return nil, fmt.Errorf("%w: RingBufs %d", ErrBadStream, opts.RingBufs)
	}
	if opts.MaxStreams <= 0 {
		opts.MaxStreams = 64
	}
	e := &Engine{
		d:        d,
		opts:     opts,
		bufs:     make([]int64, opts.RingBufs),
		bufChunk: make([]int64, opts.RingBufs),
		freeBufs: make([]int, 0, opts.RingBufs),
		byID:     make(map[int]*Stream),
	}
	if !opts.Flight.Disable {
		fo := opts.Flight
		// Virtual clock: SLO burn windows and the watchdog's wall-tick
		// cadence don't apply (the swapd convention).
		fo.SLO.Disable = true
		fo.Watchdog.Disable = true
		e.fr = flight.New(fo)
	}
	for i := range e.bufs {
		b, err := d.AS.Mmap(p, opts.BufBytes, opts.FastNode, fmt.Sprintf("stream-ring-%d", i))
		if err != nil {
			for _, prev := range e.bufs[:i] {
				_ = d.AS.Munmap(p, prev)
			}
			return nil, fmt.Errorf("streamrt: carving ring buffer %d: %w", i, err)
		}
		e.bufs[i] = b
		e.bufMmaps.Inc()
		e.freeBufs = append(e.freeBufs, i)
	}
	e.freeBufsG.Set(int64(len(e.freeBufs)))
	return e, nil
}

// Device returns the engine's underlying device.
func (e *Engine) Device() *core.Device { return e.d }

// Options returns the engine configuration.
func (e *Engine) Options() EngineOptions { return e.opts }

// FlightSnapshot returns the engine's flight-recorder state alone.
// Nil-safe: zero snapshot when the recorder is disabled.
func (e *Engine) FlightSnapshot() flight.Snapshot { return e.fr.Snapshot() }

// OpenStream admits a stream and immediately offers it ring capacity
// (its first fills are granted and submitted as one batch before this
// returns). The handle must be driven from a sim proc; one proc per
// stream is the intended shape.
func (e *Engine) OpenStream(p *sim.Proc, spec StreamSpec) (*Stream, error) {
	if e.closed {
		return nil, ErrStreamClosed
	}
	if e.err != nil {
		return nil, e.err
	}
	if err := spec.Validate(e.opts.BufBytes); err != nil {
		return nil, err
	}
	if spec.Credits == 0 {
		spec.Credits = 2
	}
	if e.openCount >= e.opts.MaxStreams {
		return nil, fmt.Errorf("%w: engine at MaxStreams (%d)", ErrBadStream, e.opts.MaxStreams)
	}
	id := e.nextID
	e.nextID++
	name := spec.Name
	if name == "" {
		name = fmt.Sprintf("stream-%d", id)
	}
	s := &Stream{
		eng:      e,
		id:       id,
		name:     name,
		spec:     spec,
		chunks:   spec.Length / e.opts.BufBytes,
		credits:  newCreditLedger(spec.Credits),
		scratch:  make([]byte, e.opts.BufBytes),
		openedAt: p.Now(),
	}
	if e.fr != nil {
		e.fr.EnsureTenants(id + 1)
	}
	e.mu.Lock()
	e.byID[id] = s
	e.order = append(e.order, s)
	e.streamNames = append(e.streamNames, name)
	e.mu.Unlock()
	e.openCount++
	e.openG.Set(int64(e.openCount))
	e.streamsOpened.Inc()
	e.refill(p)
	return s, nil
}

// releaseBuf returns a ring slot to the free list.
func (e *Engine) releaseBuf(buf int) {
	e.freeBufs = append(e.freeBufs, buf)
	e.freeBufsG.Set(int64(len(e.freeBufs)))
}

// popBuf takes a ring slot off the free list (caller checked len > 0).
func (e *Engine) popBuf() int {
	buf := e.freeBufs[len(e.freeBufs)-1]
	e.freeBufs = e.freeBufs[:len(e.freeBufs)-1]
	e.freeBufsG.Set(int64(len(e.freeBufs)))
	return buf
}

// streamClosed handles a Close()d stream: retire it if nothing is in
// flight, and re-offer whatever capacity it released.
func (e *Engine) streamClosed(p *sim.Proc, s *Stream) {
	e.openCount--
	e.openG.Set(int64(e.openCount))
	if s.credits.inFlight == 0 {
		e.retire(s)
	}
	if !e.closed {
		e.refill(p)
	}
}

// retire removes a fully drained, closed stream from the registry.
func (e *Engine) retire(s *Stream) {
	e.mu.Lock()
	delete(e.byID, s.id)
	for i, x := range e.order {
		if x == s {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
	e.mu.Unlock()
	e.streamsClosed.Inc()
}

// cookie packs (stream id, ring slot) into a fill request's cookie.
func cookie(sid, buf int) uint64 { return uint64(sid)<<32 | uint64(uint32(buf)) }

// drain retrieves every pending completion and dispatches it to its
// stream. Every field of the request is captured before FreeRequest —
// the slot may be reallocated and overwritten by another proc the
// moment FreeRequest yields, so reading r afterwards is a
// use-after-free (the original one-shot runtime formatted r.Err after
// freeing; see TestFillFailureErrNotClobberedBySlotReuse).
func (e *Engine) drain(p *sim.Proc) {
	freed := false
	for {
		r := e.d.RetrieveCompleted(p)
		if r == nil {
			break
		}
		ck := r.Cookie
		ok := r.Status == uapi.StatusDone
		errCode := r.Err
		length := r.Length
		submitted, flushed := int64(r.Submitted), int64(r.Flushed)
		dispatched, copyStart := int64(r.Dispatched), int64(r.CopyStart)
		completed, retrieved := int64(r.Completed), int64(r.Retrieved)
		e.d.FreeRequest(p, r) // yields; r is dead past this point

		sid, buf := int(ck>>32), int(uint32(ck))
		e.outstanding--
		e.outstandingG.Set(int64(e.outstanding))
		s := e.byID[sid]

		if ok {
			lat := completed - submitted
			ts := lifecycle.Stamps(submitted, flushed, dispatched, copyStart,
				completed, completed, retrieved)
			if m := e.opts.Metrics; m != nil {
				m.FillLatency.Observe(lat)
				m.BytesPrefetched.Add(length)
				m.Stages.ObserveStamps(&ts)
			}
			if s != nil {
				s.fillLatency.Observe(lat)
				s.stages.ObserveStamps(&ts)
				s.bytesPrefetched.Add(length)
				e.bytesPrefetched.Add(length)
				e.observeFlight(s, lat, length, completed, &ts)
			}
		}

		switch {
		case s == nil:
			// Stream already retired (or unknown): recycle the slot.
			e.releaseBuf(buf)
			freed = true
		case !ok:
			s.fillFailures.Inc()
			s.fail(fmt.Errorf("streamrt: fill failed: %s", errCode))
			s.credits.put()
			e.releaseBuf(buf)
			freed = true
			if s.closed && s.credits.inFlight == 0 {
				e.retire(s)
			}
		case s.closed:
			// Completed after Close: hand the buffer straight back.
			s.credits.put()
			e.releaseBuf(buf)
			freed = true
			if s.credits.inFlight == 0 {
				e.retire(s)
			}
		default:
			s.ready = append(s.ready, readyFill{buf: buf, chunk: e.bufChunk[buf]})
		}
	}
	if freed && !e.closed {
		e.refill(p)
	}
}

// observeFlight trains the stream's (class, tenant) lane with one
// successful fill; a threshold breach captures the full seven-stage
// stamp vector so /debug/outliers can attribute the slow fill to
// staging wait, dispatch wait, copy time or completion dwell.
func (e *Engine) observeFlight(s *Stream, lat, length, completed int64, ts *[lifecycle.NumStages]int64) {
	if e.fr == nil {
		return
	}
	amb := flight.Ambient{SubmissionDepth: int64(e.outstanding)}
	if thr, breach := e.fr.Observe(int(s.spec.Class), s.id, lat, true); breach {
		e.fr.Capture(&flight.Outlier{
			Nano:        completed,
			Slot:        -1,
			Class:       int32(s.spec.Class),
			Tenant:      uint32(s.id),
			Bytes:       length,
			LatencyNs:   lat,
			ThresholdNs: thr,
			TS:          *ts,
			Ambient:     amb,
		})
	}
}

// refill is the engine-level fair grant pass: while free buffers
// remain, offer one fill per eligible stream per round (starting at a
// rotating cursor so no stream is structurally first), then submit the
// whole grant set as one SubmitBatch — one flush/kick per pass instead
// of per chunk. A stream is eligible while it is open, healthy, has
// credits available, and has unassigned input left.
func (e *Engine) refill(p *sim.Proc) {
	if e.closed || e.err != nil || len(e.freeBufs) == 0 || len(e.order) == 0 {
		return
	}
	// The batch is per-invocation: AllocRequest yields, so another proc
	// may enter refill concurrently, and a shared scratch slice would
	// let the two passes clobber each other's grants.
	batch := make([]*uapi.MovReq, 0, len(e.freeBufs))
	for progress := true; progress && len(e.freeBufs) > 0; {
		progress = false
		n := len(e.order)
		for i := 0; i < n && len(e.freeBufs) > 0; i++ {
			s := e.order[(e.rr+i)%n]
			if s.closed || s.failed != nil || s.credits.available() == 0 || s.nextFill >= s.chunks {
				continue
			}
			r := e.d.AllocRequest(p) // yields: re-validate below
			if r == nil {
				// Slot pressure from other device users; the next
				// refill retries.
				progress = false
				break
			}
			if e.closed || s.closed || s.failed != nil || s.credits.available() == 0 ||
				s.nextFill >= s.chunks || len(e.freeBufs) == 0 {
				e.d.FreeRequest(p, r)
				continue
			}
			buf := e.popBuf()
			chunk := s.nextFill
			s.nextFill++
			s.credits.take()
			e.bufChunk[buf] = chunk
			r.Op = uapi.OpReplicate
			r.SrcBase = s.spec.Base + chunk*e.opts.BufBytes
			r.DstBase = e.bufs[buf]
			r.Length = e.opts.BufBytes
			r.Class = s.spec.Class
			r.Cookie = cookie(s.id, buf)
			s.fills.Inc()
			e.fills.Inc()
			batch = append(batch, r)
			progress = true
		}
	}
	e.rr++
	if len(batch) == 0 {
		return
	}
	e.fillBatches.Inc()
	e.outstanding += len(batch)
	e.outstandingG.Set(int64(e.outstanding))
	if err := e.d.SubmitBatch(p, batch); err != nil && e.err == nil {
		e.err = fmt.Errorf("streamrt: submitting fill batch: %w", err)
	}
}

// Close shuts the engine down: closes every stream, drains in-flight
// fills back to the device, and releases the buffer ring. Call before
// closing the underlying device. Idempotent.
func (e *Engine) Close(p *sim.Proc) {
	if e.closed {
		return
	}
	e.closed = true
	e.mu.Lock()
	live := append([]*Stream(nil), e.order...)
	e.mu.Unlock()
	for _, s := range live {
		s.Close(p)
	}
	for e.outstanding > 0 {
		e.drain(p)
		if e.outstanding > 0 {
			e.d.Poll(p, tailPollQuantumNS)
		}
	}
	for _, b := range e.bufs {
		_ = e.d.AS.Munmap(p, b)
	}
	e.freeBufs = e.freeBufs[:0]
	e.freeBufsG.Set(0)
}

// Snapshot captures the engine state: ring occupancy, engine totals,
// per-stream stats and the flight view. Safe from any goroutine.
func (e *Engine) Snapshot() EngineSnapshot {
	es := EngineSnapshot{
		RingBufs:        e.opts.RingBufs,
		BufBytes:        e.opts.BufBytes,
		FreeBufs:        int(e.freeBufsG.Current()),
		BufMmaps:        e.bufMmaps.Load(),
		OpenStreams:     int(e.openG.Current()),
		StreamsOpened:   e.streamsOpened.Load(),
		StreamsClosed:   e.streamsClosed.Load(),
		Fills:           e.fills.Load(),
		FillBatches:     e.fillBatches.Load(),
		FastChunks:      e.fastChunks.Load(),
		SlowChunks:      e.slowChunks.Load(),
		BytesPrefetched: e.bytesPrefetched.Load(),
		Stalls:          e.stalls.Load(),
	}
	e.mu.Lock()
	for _, s := range e.order {
		es.Streams = append(es.Streams, s.Stats())
	}
	es.StreamNames = append([]string(nil), e.streamNames...)
	e.mu.Unlock()
	if e.fr != nil {
		es.Flight = e.fr.Snapshot()
	}
	return es
}
