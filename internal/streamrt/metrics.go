package streamrt

import (
	"memif/internal/obs"
	"memif/internal/obs/flight"
	"memif/internal/obs/lifecycle"
)

// Metrics is the runtime's shared obs instrument set. One Metrics may
// be attached to any number of runs or engines (its primitives are
// lock-free); it aggregates across streams without attribution.
//
// Per-stream attribution lives in StreamStats / EngineSnapshot; Metrics
// is kept for the original one-shot API and for dashboards that want
// engine-wide totals under the pre-redesign series names.
type Metrics struct {
	// FillLatency is the submit-to-completion histogram of prefetch
	// fills (virtual ns).
	FillLatency obs.Histogram
	// FastChunks / SlowChunks count chunks consumed from prefetch
	// buffers vs. straight from the slow node.
	FastChunks, SlowChunks obs.Counter
	// BytesPrefetched totals the payload replicated into buffers.
	BytesPrefetched obs.Counter
	// Stages attributes fill latency per pipeline stage (staging wait,
	// dispatch wait, copy, completion dwell) from each fill request's
	// stage stamps, in virtual ns.
	Stages lifecycle.SpanSet
}

// MetricsSnapshot is a point-in-time copy of Metrics.
type MetricsSnapshot struct {
	FillLatency            obs.HistogramSnapshot
	FastChunks, SlowChunks int64
	BytesPrefetched        int64
	Stages                 lifecycle.SpanSnapshot
}

// Snapshot captures the metrics. Nil-safe (zero snapshot).
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		FillLatency:     m.FillLatency.Snapshot(),
		FastChunks:      m.FastChunks.Load(),
		SlowChunks:      m.SlowChunks.Load(),
		BytesPrefetched: m.BytesPrefetched.Load(),
		Stages:          m.Stages.Snapshot(),
	}
}

// StreamStats is a point-in-time copy of one stream's counters, safe to
// take from any goroutine.
type StreamStats struct {
	// ID and Name identify the stream within its engine.
	ID   int
	Name string
	// Kernel is the compute kernel's name; Class the QoS class of the
	// stream's fill requests.
	Kernel string
	Class  int
	// Bytes is the stream's total input length; Chunks its chunk count.
	Bytes, Chunks int64
	// Credits is the configured backpressure allowance;
	// CreditsInFlight how many are currently spent on granted fills
	// (in flight or filled-awaiting-consume).
	Credits, CreditsInFlight int
	// CreditsGranted/CreditsReturned are cumulative, for conservation
	// checks: Granted - Returned == CreditsInFlight at all times.
	CreditsGranted, CreditsReturned int64
	// FastChunks were consumed zero-copy out of ring buffers;
	// SlowChunks took the never-stall fallback straight from the slow
	// node. FastChunks+SlowChunks == chunks consumed so far.
	FastChunks, SlowChunks int64
	// BytesPrefetched totals payload replicated into ring buffers for
	// this stream (successful fills only).
	BytesPrefetched int64
	// Fills counts fill grants submitted; FillFailures the fills that
	// completed with an error.
	Fills, FillFailures int64
	// TailWaits counts waits for in-flight fills after all chunks were
	// assigned — the benign end-of-stream drain. Stalls counts waits
	// with no fill in flight to wait for; the never-stall design keeps
	// this zero and membench gates on it structurally.
	TailWaits, Stalls int64
	// Closed reports the handle was closed (by Close or completion).
	Closed bool
	// Done reports every chunk was consumed.
	Done bool
	// FillLatency and Stages attribute this stream's fill pipeline.
	FillLatency obs.HistogramSnapshot
	Stages      lifecycle.SpanSnapshot
}

// EngineSnapshot is a point-in-time copy of a StreamEngine's state:
// ring occupancy, engine-wide totals, per-stream stats for every stream
// still registered (open, or closed with fills draining), and the
// flight-recorder view. Safe to take from any goroutine (scrape path).
type EngineSnapshot struct {
	// RingBufs / BufBytes echo the engine geometry; FreeBufs is the
	// current free-buffer count; BufMmaps counts mmap calls the engine
	// ever made for its ring — O(ring size), never O(chunks), which
	// membench gates on.
	RingBufs int
	BufBytes int64
	FreeBufs int
	BufMmaps int64
	// OpenStreams is the live stream count; StreamsOpened/StreamsClosed
	// are cumulative.
	OpenStreams                  int
	StreamsOpened, StreamsClosed int64
	// Fills counts fill grants; FillBatches the SubmitBatch flushes
	// that carried them (Fills > FillBatches once any batch coalesced).
	Fills, FillBatches int64
	// FastChunks/SlowChunks/BytesPrefetched/Stalls aggregate across all
	// streams ever opened (closed streams keep contributing).
	FastChunks, SlowChunks int64
	BytesPrefetched        int64
	Stalls                 int64
	// Streams holds per-stream stats for currently registered streams.
	Streams []StreamStats
	// StreamNames maps stream id → label for every stream ever opened
	// (flight tenant lanes outlive retired streams).
	StreamNames []string
	// Flight is the engine's flight-recorder snapshot (zero when the
	// recorder is disabled).
	Flight flight.Snapshot
}
