package streamrt

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"memif/internal/hw"
	"memif/internal/obs/flight"
	"memif/internal/obs/lifecycle"
	"memif/internal/sim"
	"memif/internal/uapi"
	"memif/internal/workloads"
)

// TestEngineMultiStreamChecksums is the tentpole's happy path: three
// streams multiplex over one engine concurrently (one proc each), every
// checksum matches the input, and the ring is mmap'd O(ring size) —
// never per chunk.
func TestEngineMultiStreamChecksums(t *testing.T) {
	m, d := setup()
	var e *Engine
	want := make([]uint64, 3)
	handles := make([]*Stream, 3)
	results := make([]Result, 3)
	m.Eng.Spawn("main", func(p *sim.Proc) {
		defer d.Close()
		opts := DefaultEngineOptions()
		opts.RingBufs = 6
		var err error
		e, err = OpenEngine(p, d, opts)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			i := i
			length := int64(24) * opts.BufBytes
			base, err := d.AS.Mmap(p, length, hw.NodeSlow, "input")
			if err != nil {
				t.Fatal(err)
			}
			want[i], _ = workloads.FillInput(p, d.AS, base, length, uint64(i+1))
			s, err := e.OpenStream(p, StreamSpec{
				Kernel: workloads.Triad, Base: base, Length: length,
				Class: uapi.ClassBackground, Credits: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			handles[i] = s
			wg.Add(1)
			m.Eng.Spawn(s.Name(), func(cp *sim.Proc) {
				defer wg.Done()
				results[i], err = s.Run(cp)
				if err != nil {
					t.Errorf("stream %d: %v", i, err)
				}
			})
		}
		settled := func(s *Stream) bool { return s.Done() || s.Err() != nil }
		for !(settled(handles[0]) && settled(handles[1]) && settled(handles[2])) {
			p.SleepNS(100_000)
		}
		e.Close(p)
	})
	m.Eng.Run()
	for i := range results {
		if results[i].Checksum != want[i] {
			t.Errorf("stream %d checksum = %#x, want %#x", i, results[i].Checksum, want[i])
		}
		if results[i].FastChunks == 0 {
			t.Errorf("stream %d never consumed a ring buffer", i)
		}
	}
	es := e.Snapshot()
	if es.BufMmaps != int64(es.RingBufs) {
		t.Errorf("BufMmaps = %d, want ring size %d (buffers must be recycled, not re-carved)", es.BufMmaps, es.RingBufs)
	}
	if es.Fills <= es.FillBatches {
		t.Errorf("fills %d ≤ batches %d: SubmitBatch never coalesced grants", es.Fills, es.FillBatches)
	}
	if es.Stalls != 0 {
		t.Errorf("engine recorded %d stalls", es.Stalls)
	}
	if es.StreamsOpened != 3 || es.StreamsClosed != 3 || es.OpenStreams != 0 {
		t.Errorf("stream lifecycle counts: %+v", es)
	}
	if used := d.AS.Mem.Used(hw.NodeFast); used != 0 {
		t.Errorf("fast node still holds %d bytes after engine close", used)
	}
}

// checkLedger asserts the credit invariants for one stream:
// 0 ≤ in-flight ≤ total, available+inFlight conserved, and granted −
// returned == in-flight.
func checkLedger(t *testing.T, s *Stream) {
	t.Helper()
	c := &s.credits
	if c.inFlight < 0 || c.inFlight > c.total {
		t.Fatalf("stream %d: in-flight credits %d outside [0, %d]", s.id, c.inFlight, c.total)
	}
	if c.available()+c.inFlight != c.total {
		t.Fatalf("stream %d: credits not conserved: avail %d + inflight %d != total %d",
			s.id, c.available(), c.inFlight, c.total)
	}
	if c.granted-c.returned != int64(c.inFlight) {
		t.Fatalf("stream %d: granted %d - returned %d != in-flight %d",
			s.id, c.granted, c.returned, c.inFlight)
	}
	// In-flight credits are exactly outstanding fills + ready buffers;
	// ready buffers are a subset, so ready can never exceed in-flight.
	if len(s.ready) > c.inFlight {
		t.Fatalf("stream %d: %d ready buffers > %d in-flight credits", s.id, len(s.ready), c.inFlight)
	}
}

// TestCreditInvariantsProperty drives three streams through a seeded
// random schedule of consume/close steps on one proc, checking the
// ledger invariants after every step — the credit protocol's property
// test across refill, consume, fallback and cancel.
func TestCreditInvariantsProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		m, d := setup()
		m.Eng.Spawn("prop", func(p *sim.Proc) {
			defer d.Close()
			rng := rand.New(rand.NewSource(seed))
			opts := DefaultEngineOptions()
			opts.BufBytes = 16 << 10
			opts.RingBufs = 5
			e, err := OpenEngine(p, d, opts)
			if err != nil {
				t.Fatal(err)
			}
			var streams []*Stream
			for i := 0; i < 3; i++ {
				length := int64(8+rng.Intn(24)) * opts.BufBytes
				base, err := d.AS.Mmap(p, length, hw.NodeSlow, "input")
				if err != nil {
					t.Fatal(err)
				}
				workloads.FillInput(p, d.AS, base, length, uint64(seed))
				s, err := e.OpenStream(p, StreamSpec{
					Kernel: workloads.Add, Base: base, Length: length,
					Credits: 1 + rng.Intn(3),
				})
				if err != nil {
					t.Fatal(err)
				}
				streams = append(streams, s)
			}
			live := append([]*Stream(nil), streams...)
			for steps := 0; len(live) > 0 && steps < 500; steps++ {
				i := rng.Intn(len(live))
				s := live[i]
				var done bool
				switch {
				case rng.Intn(10) == 0: // cancel mid-flight
					s.Close(p)
					done = true
				default:
					var err error
					done, err = s.Consume(p)
					if err != nil {
						t.Fatalf("seed %d: consume: %v", seed, err)
					}
				}
				for _, x := range streams {
					checkLedger(t, x)
				}
				if done {
					s.Close(p)
					live = append(live[:i], live[i+1:]...)
				}
			}
			e.Close(p)
			for _, s := range streams {
				checkLedger(t, s)
				if s.credits.inFlight != 0 {
					t.Errorf("seed %d: stream %d closed with %d credits in flight", seed, s.id, s.credits.inFlight)
				}
			}
		})
		m.Eng.Run()
	}
}

// TestCreditFairnessOneToTwo: two streams with a 1:2 credit split share
// the fill pipeline 1:2 — over a fixed contention window, fast-chunk
// counts land within ±10% of the credit ratio. The consumers are
// "patient": they only take the fast path (white-box check on ready),
// so the measurement isolates credit-paced fill bandwidth from the
// fallback path's extra slow-node claims.
func TestCreditFairnessOneToTwo(t *testing.T) {
	m, d := setup()
	m.Mem.DisableData()
	var a, b *Stream
	stopped := false
	m.Eng.Spawn("main", func(p *sim.Proc) {
		defer d.Close()
		opts := DefaultEngineOptions()
		opts.RingBufs = 6 // exactly the credit sum: always contended
		e, err := OpenEngine(p, d, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Far more input than the window can drain: contention never ends.
		length := int64(4096) * opts.BufBytes
		baseA, _ := d.AS.Mmap(p, length, hw.NodeSlow, "a")
		baseB, _ := d.AS.Mmap(p, length, hw.NodeSlow, "b")
		a, err = e.OpenStream(p, StreamSpec{Kernel: workloads.Copy, Base: baseA, Length: length, Credits: 2, Name: "one"})
		if err != nil {
			t.Fatal(err)
		}
		b, err = e.OpenStream(p, StreamSpec{Kernel: workloads.Copy, Base: baseB, Length: length, Credits: 4, Name: "two"})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []*Stream{a, b} {
			s := s
			m.Eng.Spawn(s.Name(), func(cp *sim.Proc) {
				for !stopped && !s.closed {
					e.drain(cp)
					if len(s.ready) > 0 {
						if _, err := s.Consume(cp); err != nil {
							t.Errorf("%s: %v", s.Name(), err)
							return
						}
						continue
					}
					e.d.Poll(cp, tailPollQuantumNS)
				}
			})
		}
		p.SleepNS(25_000_000) // 25 ms contention window
		stopped = true
		e.Close(p)
	})
	m.Eng.Run()
	fa, fb := a.Stats().FastChunks, b.Stats().FastChunks
	if fa == 0 || fb == 0 {
		t.Fatalf("degenerate fast-chunk counts: a=%d b=%d", fa, fb)
	}
	ratio := float64(fb) / float64(fa)
	t.Logf("fast chunks in window: credits2=%d credits4=%d (ratio %.2f)", fa, fb, ratio)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("fill share ratio = %.2f, want 2.0 ±10%%", ratio)
	}
	if as, bs := a.Stats(), b.Stats(); as.SlowChunks != 0 || bs.SlowChunks != 0 {
		t.Errorf("patient consumers took the fallback: %d/%d slow chunks", as.SlowChunks, bs.SlowChunks)
	}
}

// TestChaosCloseMidFlight closes one stream mid-flight while two
// siblings keep streaming, with a real-time goroutine hammering
// Snapshot throughout — the -race test for the scrape path.
func TestChaosCloseMidFlight(t *testing.T) {
	m, d := setup()
	var e *Engine
	var victim, s1, s2 *Stream
	want := make([]uint64, 3)
	var res1, res2 Result
	stop := make(chan struct{})
	var scraped sync.WaitGroup

	m.Eng.Spawn("main", func(p *sim.Proc) {
		defer d.Close()
		opts := DefaultEngineOptions()
		opts.RingBufs = 6
		var err error
		e, err = OpenEngine(p, d, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Start the scraper only once the engine exists.
		scraped.Add(1)
		go func() {
			defer scraped.Done()
			for {
				select {
				case <-stop:
					return
				default:
					es := e.Snapshot()
					if es.FreeBufs < 0 || es.FreeBufs > es.RingBufs {
						t.Errorf("scrape saw free bufs %d outside ring %d", es.FreeBufs, es.RingBufs)
						return
					}
				}
			}
		}()
		length := int64(32) * opts.BufBytes
		open := func(i int, name string) *Stream {
			base, err := d.AS.Mmap(p, length, hw.NodeSlow, name)
			if err != nil {
				t.Fatal(err)
			}
			want[i], _ = workloads.FillInput(p, d.AS, base, length, uint64(i+9))
			s, err := e.OpenStream(p, StreamSpec{
				Kernel: workloads.Add, Base: base, Length: length, Credits: 2, Name: name,
			})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		victim, s1, s2 = open(0, "victim"), open(1, "sib1"), open(2, "sib2")
		m.Eng.Spawn("victim", func(cp *sim.Proc) {
			for i := 0; i < 5; i++ {
				if _, err := victim.Consume(cp); err != nil {
					t.Errorf("victim: %v", err)
				}
			}
			victim.Close(cp) // mid-flight: fills still outstanding
			if _, err := victim.Consume(cp); !errors.Is(err, ErrStreamClosed) {
				t.Errorf("consume after close = %v, want ErrStreamClosed", err)
			}
		})
		m.Eng.Spawn("sib1", func(cp *sim.Proc) {
			var err error
			if res1, err = s1.Run(cp); err != nil {
				t.Errorf("sib1: %v", err)
			}
		})
		m.Eng.Spawn("sib2", func(cp *sim.Proc) {
			var err error
			if res2, err = s2.Run(cp); err != nil {
				t.Errorf("sib2: %v", err)
			}
		})
		for !((s1.Done() || s1.Err() != nil) && (s2.Done() || s2.Err() != nil)) {
			p.SleepNS(100_000)
		}
		e.Close(p)
	})
	m.Eng.Run()
	close(stop)
	scraped.Wait()
	if res1.Checksum != want[1] || res2.Checksum != want[2] {
		t.Errorf("sibling checksums: %#x/%#x want %#x/%#x", res1.Checksum, res2.Checksum, want[1], want[2])
	}
	vs := victim.Stats()
	if !vs.Closed || vs.CreditsInFlight != 0 {
		t.Errorf("victim not fully drained: %+v", vs)
	}
	if es := e.Snapshot(); es.Stalls != 0 || es.OpenStreams != 0 {
		t.Errorf("post-close snapshot: stalls=%d open=%d", es.Stalls, es.OpenStreams)
	}
	if used := d.AS.Mem.Used(hw.NodeFast); used != 0 {
		t.Errorf("fast node still holds %d bytes", used)
	}
}

// TestFillFailureErrNotClobberedBySlotReuse pins the use-after-free fix:
// the original one-shot runtime formatted r.Err after FreeRequest(r),
// and FreeRequest yields (it charges CPU), so another proc could
// reallocate the slot and overwrite Err before the error string was
// built. The engine captures Status/Err before freeing; with a recycler
// proc aggressively reusing freed slots, the surfaced error must still
// name the real failure code, not the recycler's overwrite.
func TestFillFailureErrNotClobberedBySlotReuse(t *testing.T) {
	m, d := setup()
	var runErr error
	recycle := true
	m.Eng.Spawn("recycler", func(p *sim.Proc) {
		for recycle {
			if r := d.AllocRequest(p); r != nil {
				r.Err = uapi.ErrNone // clobber: reads-after-free see "ok"
				d.FreeRequest(p, r)
			}
			p.SleepNS(50)
		}
	})
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		defer func() { recycle = false }()
		cfg := DefaultConfig()
		length := int64(4) * cfg.BufBytes
		base, _ := d.AS.Mmap(p, length, hw.NodeSlow, "input")
		// Input range extends past the mapping: the fill of the last
		// chunk fails with badreq.
		_, runErr = Run(p, d, workloads.Add, base+cfg.BufBytes, length, cfg)
	})
	m.Eng.Run()
	if runErr == nil {
		t.Fatal("fill of an unmapped chunk reported success")
	}
	if !strings.Contains(runErr.Error(), uapi.ErrBadRequest.String()) {
		t.Errorf("error %q lost the failure code %q (read after FreeRequest?)",
			runErr, uapi.ErrBadRequest.String())
	}
	if strings.Contains(runErr.Error(), uapi.ErrNone.String()) {
		t.Errorf("error %q carries the recycler's clobbered code", runErr)
	}
}

// TestOpenStreamValidationAndLifecycle covers the error taxonomy:
// rejected specs, MaxStreams, and operations on closed handles/engines.
func TestOpenStreamValidationAndLifecycle(t *testing.T) {
	m, d := setup()
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		opts := DefaultEngineOptions()
		opts.MaxStreams = 1
		if _, err := OpenEngine(p, d, EngineOptions{BufBytes: 100, RingBufs: 1}); !errors.Is(err, ErrBadStream) {
			t.Errorf("unaligned BufBytes: %v", err)
		}
		e, err := OpenEngine(p, d, opts)
		if err != nil {
			t.Fatal(err)
		}
		base, _ := d.AS.Mmap(p, 4*opts.BufBytes, hw.NodeSlow, "input")
		bad := []StreamSpec{
			{Kernel: workloads.Add, Base: base, Length: opts.BufBytes + 1},
			{Kernel: workloads.Add, Base: base, Length: -opts.BufBytes},
			{Kernel: workloads.Add, Base: -1, Length: opts.BufBytes},
			{Kernel: workloads.Add, Base: base, Length: opts.BufBytes, Class: 9},
			{Kernel: workloads.Add, Base: base, Length: opts.BufBytes, Credits: MaxCredits + 1},
			{Kernel: workloads.Add, Base: base, Length: opts.BufBytes, Name: "no spaces"},
		}
		for i, sp := range bad {
			if _, err := e.OpenStream(p, sp); !errors.Is(err, ErrBadStream) {
				t.Errorf("bad spec %d accepted (err=%v)", i, err)
			}
		}
		s, err := e.OpenStream(p, StreamSpec{Kernel: workloads.Add, Base: base, Length: opts.BufBytes})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.OpenStream(p, StreamSpec{Kernel: workloads.Add, Base: base, Length: opts.BufBytes}); !errors.Is(err, ErrBadStream) {
			t.Errorf("MaxStreams not enforced: %v", err)
		}
		s.Close(p)
		if _, err := s.Consume(p); !errors.Is(err, ErrStreamClosed) {
			t.Errorf("consume on closed stream: %v", err)
		}
		e.Close(p)
		e.Close(p) // idempotent
		if _, err := e.OpenStream(p, StreamSpec{Kernel: workloads.Add, Base: base, Length: opts.BufBytes}); !errors.Is(err, ErrStreamClosed) {
			t.Errorf("open on closed engine: %v", err)
		}
	})
	m.Eng.Run()
}

// TestFlightCapturesSlowFills: fills that breach the adaptive threshold
// land in the flight ring with the stream's tenant lane and a complete
// stage vector — the /debug/outliers food chain for slow fills.
func TestFlightCapturesSlowFills(t *testing.T) {
	m, d := setup()
	var e *Engine
	var sid int
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		opts := DefaultEngineOptions()
		opts.Flight = flight.Options{
			ThresholdFloorNs: 1,
			ThresholdMult:    1,
			Warmup:           1,
			RingDepth:        64,
		}
		var err error
		e, err = OpenEngine(p, d, opts)
		if err != nil {
			t.Fatal(err)
		}
		length := int64(32) * opts.BufBytes
		base, _ := d.AS.Mmap(p, length, hw.NodeSlow, "input")
		workloads.FillInput(p, d.AS, base, length, 5)
		s, err := e.OpenStream(p, StreamSpec{
			Kernel: workloads.PGain, Base: base, Length: length,
			Class: uapi.ClassBackground, Credits: 4, Name: "ingest",
		})
		if err != nil {
			t.Fatal(err)
		}
		sid = s.ID()
		if _, err := s.Run(p); err != nil {
			t.Fatal(err)
		}
		e.Close(p)
	})
	m.Eng.Run()
	fs := e.FlightSnapshot()
	if !fs.Enabled || fs.Breaches == 0 || len(fs.Outliers) == 0 {
		t.Fatalf("no breaches captured: breaches=%d outliers=%d", fs.Breaches, len(fs.Outliers))
	}
	for _, o := range fs.Outliers {
		if o.Kind != flight.KindLatency {
			continue
		}
		if int(o.Tenant) != sid {
			t.Errorf("outlier tenant = %d, want stream %d", o.Tenant, sid)
		}
		if o.Class != int32(uapi.ClassBackground) {
			t.Errorf("outlier class = %d", o.Class)
		}
		var last int64
		for st := 0; st < lifecycle.NumStages; st++ {
			if o.TS[st] == 0 {
				t.Fatalf("outlier seq %d: stage %d never stamped: %+v", o.Seq, st, o.TS)
			}
			if o.TS[st] < last {
				t.Fatalf("outlier seq %d: stage %d goes backwards: %+v", o.Seq, st, o.TS)
			}
			last = o.TS[st]
		}
	}
	names := e.Snapshot().StreamNames
	if len(names) != 1 || names[0] != "ingest" {
		t.Errorf("StreamNames = %v", names)
	}
}
