package streamrt

import (
	"fmt"

	"memif/internal/obs"
)

// creditLedger is one stream's backpressure account.
//
// The credit protocol: a stream is opened with a fixed number of
// credits (StreamSpec.Credits). Granting a fill — assigning a ring
// buffer to the stream and submitting a replication into it — takes one
// credit; the credit stays taken while the fill is in flight AND while
// the filled buffer sits ready awaiting consumption. Consuming the
// buffer (or abandoning it: fill failure, stream close) returns the
// credit. Credits therefore bound the number of ring buffers a stream
// can hold at once, so a slow consumer exerts backpressure on its own
// fills instead of monopolizing the shared ring, and the engine's
// round-robin grant pass divides leftover ring capacity by credit
// share.
//
// Invariants (checked in take/put, property-tested in credits_test):
//
//	0 <= inFlight <= total
//	available() == total - inFlight
//	granted - returned == inFlight   (conservation)
//
// The ints are only mutated from sim procs (cooperatively scheduled);
// the gauges mirror them for cross-goroutine scrapes.
type creditLedger struct {
	total    int
	inFlight int

	// granted/returned are cumulative, for conservation checks and the
	// per-stream snapshot.
	granted, returned int64

	// inFlightG mirrors inFlight for lock-free Snapshot reads.
	inFlightG obs.Gauge
}

func newCreditLedger(total int) creditLedger {
	return creditLedger{total: total}
}

// available reports how many more fills the stream may have granted.
func (c *creditLedger) available() int { return c.total - c.inFlight }

// take spends one credit for a granted fill.
func (c *creditLedger) take() {
	c.inFlight++
	c.granted++
	if c.inFlight > c.total {
		panic(fmt.Sprintf("streamrt: credit overdraft: in-flight %d > total %d", c.inFlight, c.total))
	}
	c.inFlightG.Set(int64(c.inFlight))
}

// put returns one credit on consume/failure/close.
func (c *creditLedger) put() {
	c.inFlight--
	c.returned++
	if c.inFlight < 0 {
		panic(fmt.Sprintf("streamrt: credit double-return: in-flight %d", c.inFlight))
	}
	c.inFlightG.Set(int64(c.inFlight))
}
