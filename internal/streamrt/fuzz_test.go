package streamrt

import (
	"errors"
	"testing"

	"memif/internal/uapi"
	"memif/internal/workloads"
)

// FuzzStreamSpecValidate hammers the single admission gate of
// OpenStream: Validate must never panic, and when it accepts a spec the
// documented invariants must actually hold — the engine builds fill
// addresses and flight lanes straight from these fields.
func FuzzStreamSpecValidate(f *testing.F) {
	f.Add(int64(0), int64(512<<10), uint8(0), 0, "", int64(512<<10))
	f.Add(int64(4096), int64(1<<20), uint8(1), 8, "ingest-a", int64(512<<10))
	f.Add(int64(-1), int64(512<<10), uint8(2), 1, "x", int64(512<<10))
	f.Add(int64(1<<40), int64(3)<<19, uint8(3), MaxCredits+1, "no spaces", int64(512<<10))
	f.Add(int64(0), int64(0), uint8(0), -5, "ütf8", int64(0))
	f.Add(int64(1)<<62-4096, int64(4096), uint8(0), 2, "wrap", int64(4096))
	f.Fuzz(func(t *testing.T, base, length int64, class uint8, credits int, name string, bufBytes int64) {
		sp := StreamSpec{
			Kernel:  workloads.Add,
			Base:    base,
			Length:  length,
			Class:   uapi.Class(class),
			Credits: credits,
			Name:    name,
		}
		err := sp.Validate(bufBytes)
		if err != nil {
			if !errors.Is(err, ErrBadStream) {
				t.Fatalf("rejection outside the error taxonomy: %v", err)
			}
			return
		}
		// Accepted: the invariants the engine relies on must hold.
		if bufBytes <= 0 {
			t.Fatalf("accepted with non-positive bufBytes %d", bufBytes)
		}
		if sp.Length <= 0 || sp.Length%bufBytes != 0 {
			t.Fatalf("accepted length %d not a positive multiple of %d", sp.Length, bufBytes)
		}
		if sp.Base < 0 || sp.Base > (1<<62)-sp.Length {
			t.Fatalf("accepted range [%d, +%d) out of bounds", sp.Base, sp.Length)
		}
		if sp.Class > uapi.ClassScavenger {
			t.Fatalf("accepted unknown class %d", sp.Class)
		}
		if sp.Credits < 0 || sp.Credits > MaxCredits {
			t.Fatalf("accepted credits %d", sp.Credits)
		}
		if !labelSafe(sp.Name) {
			t.Fatalf("accepted unsafe name %q", sp.Name)
		}
	})
}
