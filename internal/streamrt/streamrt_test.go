package streamrt

import (
	"testing"

	"memif/internal/core"
	"memif/internal/hw"
	"memif/internal/machine"
	"memif/internal/sim"
	"memif/internal/workloads"
)

func setup() (*machine.Machine, *core.Device) {
	m := machine.New(hw.KeyStoneII())
	as := m.NewAddressSpace(4096)
	d := core.Open(m, as, core.DefaultOptions())
	return m, d
}

func TestDirectRunChecksumAndThroughput(t *testing.T) {
	m, d := setup()
	var res Result
	var want uint64
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		cfg := DefaultConfig()
		length := int64(16) * cfg.BufBytes // 8 MB
		base, err := d.AS.Mmap(p, length, hw.NodeSlow, "input")
		if err != nil {
			t.Fatal(err)
		}
		want, _ = workloads.FillInput(p, d.AS, base, length, 42)
		res, err = RunDirect(p, d.AS, workloads.Triad, base, length, cfg)
		if err != nil {
			t.Fatal(err)
		}
	})
	m.Eng.Run()
	if res.Checksum != want {
		t.Errorf("checksum = %#x, want %#x", res.Checksum, want)
	}
	// Triad out of slow memory: ~2384 MB/s (Table 4 Linux row), ±10%.
	if res.ThroughputMBs < 2100 || res.ThroughputMBs > 2650 {
		t.Errorf("direct triad throughput = %.0f MB/s, want ~2384", res.ThroughputMBs)
	}
	if res.FastChunks != 0 {
		t.Errorf("direct run used %d fast chunks", res.FastChunks)
	}
}

func TestMemifRunBeatsDirect(t *testing.T) {
	for _, k := range workloads.All {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			m, d := setup()
			var direct, fast Result
			var want uint64
			m.Eng.Spawn("app", func(p *sim.Proc) {
				defer d.Close()
				cfg := DefaultConfig()
				length := int64(64) * cfg.BufBytes // 32 MB >> 6 MB fast node
				base, err := d.AS.Mmap(p, length, hw.NodeSlow, "input")
				if err != nil {
					t.Fatal(err)
				}
				want, _ = workloads.FillInput(p, d.AS, base, length, 7)
				direct, err = RunDirect(p, d.AS, k, base, length, cfg)
				if err != nil {
					t.Fatal(err)
				}
				fast, err = Run(p, d, k, base, length, cfg)
				if err != nil {
					t.Fatal(err)
				}
			})
			m.Eng.Run()
			if fast.Checksum != want || direct.Checksum != want {
				t.Errorf("checksums: direct=%#x memif=%#x want %#x", direct.Checksum, fast.Checksum, want)
			}
			gain := fast.ThroughputMBs/direct.ThroughputMBs - 1
			t.Logf("%s: direct %.0f MB/s, memif %.0f MB/s (%+.1f%%), fast=%d slow=%d",
				k.Name, direct.ThroughputMBs, fast.ThroughputMBs, gain*100, fast.FastChunks, fast.SlowChunks)
			// Table 4 reports +23.5% to +33.6%; demand a clear win.
			if gain < 0.10 {
				t.Errorf("memif gain = %+.1f%%, want a clear speedup", gain*100)
			}
			if fast.FastChunks == 0 {
				t.Error("memif run never consumed a prefetch buffer")
			}
		})
	}
}

func TestRunFreesBuffersAndSlots(t *testing.T) {
	m, d := setup()
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		cfg := DefaultConfig()
		length := int64(8) * cfg.BufBytes
		base, _ := d.AS.Mmap(p, length, hw.NodeSlow, "input")
		workloads.FillInput(p, d.AS, base, length, 1)
		if _, err := Run(p, d, workloads.Add, base, length, cfg); err != nil {
			t.Fatal(err)
		}
		if used := d.AS.Mem.Used(hw.NodeFast); used != 0 {
			t.Errorf("fast node still holds %d bytes after run", used)
		}
		// All request slots returned.
		n := 0
		for d.AllocRequest(p) != nil {
			n++
		}
		if n != d.Options().NumReqs {
			t.Errorf("free slots = %d, want %d", n, d.Options().NumReqs)
		}
	})
	m.Eng.Run()
}

func TestRunInputValidation(t *testing.T) {
	m, d := setup()
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		cfg := DefaultConfig()
		base, _ := d.AS.Mmap(p, cfg.BufBytes, hw.NodeSlow, "input")
		if _, err := Run(p, d, workloads.Add, base, cfg.BufBytes+5, cfg); err == nil {
			t.Error("unaligned length accepted")
		}
		if _, err := RunDirect(p, d.AS, workloads.Add, base, -1, cfg); err == nil {
			t.Error("negative length accepted")
		}
		bad := cfg
		bad.NumBufs = 0
		if _, err := Run(p, d, workloads.Add, base, cfg.BufBytes, bad); err == nil {
			t.Error("zero buffers accepted")
		}
	})
	m.Eng.Run()
}

func TestSmallInputFewerChunksThanBuffers(t *testing.T) {
	m, d := setup()
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		cfg := DefaultConfig()
		length := int64(2) * cfg.BufBytes // 2 chunks, 8 buffers
		base, _ := d.AS.Mmap(p, length, hw.NodeSlow, "input")
		want, _ := workloads.FillInput(p, d.AS, base, length, 3)
		res, err := Run(p, d, workloads.Triad, base, length, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Checksum != want {
			t.Errorf("checksum mismatch")
		}
		if res.FastChunks+res.SlowChunks != 2 {
			t.Errorf("chunks = %d+%d, want 2", res.FastChunks, res.SlowChunks)
		}
	})
	m.Eng.Run()
}

// Force the fallback path: a compute kernel so fast that the DMA fill
// pipeline cannot keep up, making the runtime consume most chunks
// straight from slow memory instead of stalling.
func TestFallbackUnderFillPressure(t *testing.T) {
	m, d := setup()
	m.Mem.DisableData()
	var res Result
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		cfg := DefaultConfig()
		length := int64(32) * cfg.BufBytes
		base, _ := d.AS.Mmap(p, length, hw.NodeSlow, "input")
		sprinter := workloads.Kernel{Name: "sprinter", ComputePerByteNS: 0.01}
		var err error
		res, err = Run(p, d, sprinter, base, length, cfg)
		if err != nil {
			t.Fatal(err)
		}
	})
	m.Eng.Run()
	if res.SlowChunks == 0 {
		t.Error("fill pipeline magically kept up with a 100 GB/s consumer")
	}
	if res.FastChunks+res.SlowChunks != 32 {
		t.Errorf("chunks = %d+%d, want 32", res.FastChunks, res.SlowChunks)
	}
	t.Logf("sprinter: %d fast, %d fallback chunks at %.0f MB/s", res.FastChunks, res.SlowChunks, res.ThroughputMBs)
}

// The never-stall fallback must be invisible to correctness: a run
// that consumes chunks straight from slow memory produces bit-identical
// results to a run that prefetched every chunk, and the metrics counter
// attributes exactly the fallback consumptions.
func TestFallbackChecksumMatchesPrefetched(t *testing.T) {
	m, d := setup()
	met := &Metrics{}
	var pressured, prefetched Result
	var want uint64
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		cfg := DefaultConfig()
		length := int64(8) * cfg.BufBytes
		base, err := d.AS.Mmap(p, length, hw.NodeSlow, "input")
		if err != nil {
			t.Fatal(err)
		}
		want, _ = workloads.FillInput(p, d.AS, base, length, 11)

		// Reference: as many buffers as chunks. Priming assigns every
		// chunk to a fill before the consume loop starts, so the
		// fallback branch is unreachable — all chunks arrive prefetched.
		prefetched, err = Run(p, d, workloads.Add, base, length, cfg)
		if err != nil {
			t.Fatal(err)
		}

		// Pressured: two buffers against a consumer fast enough that no
		// fill is complete when the loop first looks — the runtime must
		// take the slow path instead of stalling.
		cfg.NumBufs = 2
		cfg.Metrics = met
		// Same reducer as the reference kernel: the chunk sums commute,
		// so the two runs must agree even if the fallback consumes
		// chunks in a different order than the prefetch pipeline.
		sprinter := workloads.Kernel{Name: "sprinter", ComputePerByteNS: 0.01, Reduce: workloads.Add.Reduce}
		pressured, err = Run(p, d, sprinter, base, length, cfg)
		if err != nil {
			t.Fatal(err)
		}
	})
	m.Eng.Run()
	if prefetched.SlowChunks != 0 || prefetched.FastChunks != 8 {
		t.Fatalf("reference run not fully prefetched: fast=%d slow=%d",
			prefetched.FastChunks, prefetched.SlowChunks)
	}
	if pressured.SlowChunks == 0 {
		t.Fatal("pressured run never took the fallback path")
	}
	if s := met.Snapshot(); s.SlowChunks != pressured.SlowChunks {
		t.Errorf("SlowChunks counter = %d, result says %d fallback chunks",
			s.SlowChunks, pressured.SlowChunks)
	}
	if pressured.Checksum != want || prefetched.Checksum != want {
		t.Errorf("checksums: prefetched=%#x fallback=%#x want %#x",
			prefetched.Checksum, pressured.Checksum, want)
	}
	if pressured.FastChunks+pressured.SlowChunks != 8 {
		t.Errorf("pressured chunks = %d+%d, want 8", pressured.FastChunks, pressured.SlowChunks)
	}
}

// A fill failure (the prefetch buffer region was unmapped behind the
// runtime's back) surfaces as an error, not a hang.
func TestFillFailureSurfaces(t *testing.T) {
	m, d := setup()
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		cfg := DefaultConfig()
		length := int64(4) * cfg.BufBytes
		base, _ := d.AS.Mmap(p, length, hw.NodeSlow, "input")
		// Unmap the input mid-flight is hard to time; instead hand Run
		// an input range that extends past the mapping — the first fill
		// of the out-of-range chunk fails.
		_, err := Run(p, d, workloads.Add, base+cfg.BufBytes, length, cfg)
		if err == nil {
			t.Fatal("fill of an unmapped chunk reported success")
		}
	})
	m.Eng.Run()
}

func TestMetricsAccumulate(t *testing.T) {
	m, d := setup()
	met := &Metrics{}
	var res Result
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		cfg := DefaultConfig()
		cfg.Metrics = met
		length := int64(16) * cfg.BufBytes
		base, err := d.AS.Mmap(p, length, hw.NodeSlow, "input")
		if err != nil {
			t.Fatal(err)
		}
		workloads.FillInput(p, d.AS, base, length, 3)
		res, err = Run(p, d, workloads.Add, base, length, cfg)
		if err != nil {
			t.Fatal(err)
		}
	})
	m.Eng.Run()
	s := met.Snapshot()
	if s.FastChunks != res.FastChunks || s.SlowChunks != res.SlowChunks {
		t.Errorf("metrics chunks %d/%d, result %d/%d",
			s.FastChunks, s.SlowChunks, res.FastChunks, res.SlowChunks)
	}
	if s.FillLatency.Count == 0 || s.FillLatency.Mean() <= 0 {
		t.Errorf("fill latency histogram empty or degenerate: %v", s.FillLatency)
	}
	if s.BytesPrefetched == 0 {
		t.Error("no prefetched bytes recorded")
	}
	// Nil metrics must be a safe no-op.
	var nilm *Metrics
	if got := nilm.Snapshot(); got.FastChunks != 0 {
		t.Error("nil Metrics snapshot non-zero")
	}
}
