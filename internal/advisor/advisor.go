// Package advisor implements the *transparent* alternative memif's
// Section 2.1 argues against: a reactive placement daemon that monitors
// application memory accesses and migrates hot regions into fast memory
// on its own, with no application knowledge.
//
// Having it in the repository lets the paper's qualitative claims be
// measured head-to-head (bench.Guidance):
//
//   - the monitor reacts to *recent* accesses, so it promotes a hot
//     region only after the application has already paid slow-memory
//     prices for a while (the proactive-vs-reactive gap);
//   - continuous access monitoring itself costs the application
//     runtime — the paper cites >10% overhead [39] — modelled as a
//     per-access tax (vm.AddressSpace.MonitorTax) while the advisor is
//     attached.
//
// The advisor moves memory through its own memif device in
// proceed-and-recover mode, so a mis-predicted promotion can never hurt
// the application — it only wastes bandwidth.
package advisor

import (
	"sort"

	"memif/internal/core"
	"memif/internal/hw"
	"memif/internal/sim"
	"memif/internal/uapi"
	"memif/internal/vm"
)

// Options tunes the advisor.
type Options struct {
	// SamplePeriodNS is how often access counters are sampled.
	SamplePeriodNS int64
	// MonitorTax is the fractional slowdown access instrumentation
	// imposes on the application (Section 2.1: >10%).
	MonitorTax float64
	// FastBudgetBytes bounds how much fast memory the advisor manages.
	FastBudgetBytes int64
	// FastNode / SlowNode name the tiers.
	FastNode, SlowNode hw.NodeID
}

// DefaultOptions returns a 1 ms sampling reactive policy with the
// literature's ~12% monitoring overhead.
func DefaultOptions() Options {
	return Options{
		SamplePeriodNS:  1_000_000,
		MonitorTax:      0.12,
		FastBudgetBytes: 4 << 20,
		FastNode:        hw.NodeFast,
		SlowNode:        hw.NodeSlow,
	}
}

// region is one tracked placement unit.
type region struct {
	vma      *vm.VMA
	lastSeen int64   // TouchedBytes at the previous sample
	hotness  float64 // EWMA of per-sample touched bytes
}

// Stats counts advisor activity.
type Stats struct {
	Samples    int64
	Promotions int64
	Demotions  int64
	Failed     int64
}

// Advisor is the reactive placement daemon.
type Advisor struct {
	dev     *core.Device
	opts    Options
	regions []*region
	stopped bool
	stats   Stats
}

// New attaches an advisor to the application behind app: it instruments
// the address space (MonitorTax takes effect immediately) and starts the
// sampling daemon.
func New(app *core.Device, opts Options) *Advisor {
	devOpts := core.DefaultOptions()
	devOpts.RaceMode = core.RaceRecover
	a := &Advisor{
		dev:  core.Open(app.M, app.AS, devOpts),
		opts: opts,
	}
	app.AS.MonitorTax = opts.MonitorTax
	app.M.Eng.Spawn("advisor", a.run)
	return a
}

// Track registers the VMA at base as a placement unit.
func (a *Advisor) Track(base int64) {
	if v := a.dev.AS.FindVMA(base); v != nil {
		a.regions = append(a.regions, &region{vma: v, lastSeen: v.TouchedBytes})
	}
}

// Stop detaches the advisor: monitoring stops (the tax disappears) and
// the daemon exits.
func (a *Advisor) Stop() {
	a.stopped = true
	a.dev.AS.MonitorTax = 0
	a.dev.Close()
}

// Stats returns a snapshot of the counters.
func (a *Advisor) Stats() Stats { return a.stats }

// resident reports whether a region currently lives on the fast node.
func (a *Advisor) resident(r *region) bool {
	f := a.dev.AS.FrameAt(r.vma.Start)
	return f != nil && f.Node == a.opts.FastNode
}

// run is the daemon: sample, rank, promote the hottest that fit, demote
// what they displace.
func (a *Advisor) run(p *sim.Proc) {
	for !a.stopped {
		p.SleepNS(a.opts.SamplePeriodNS)
		if a.stopped {
			return
		}
		a.stats.Samples++
		for _, r := range a.regions {
			delta := r.vma.TouchedBytes - r.lastSeen
			r.lastSeen = r.vma.TouchedBytes
			r.hotness = 0.5*r.hotness + 0.5*float64(delta)
		}
		ranked := append([]*region(nil), a.regions...)
		sort.Slice(ranked, func(i, j int) bool { return ranked[i].hotness > ranked[j].hotness })

		// Desired fast set: hottest regions that fit the budget and are
		// actually warm.
		want := map[*region]bool{}
		var used int64
		for _, r := range ranked {
			if r.hotness <= 0 {
				break
			}
			if used+r.vma.Length > a.opts.FastBudgetBytes {
				continue
			}
			want[r] = true
			used += r.vma.Length
		}
		// Demote residents that fell out of the set, then promote.
		for _, r := range a.regions {
			if a.resident(r) && !want[r] {
				a.move(p, r, a.opts.SlowNode)
			}
		}
		for _, r := range ranked {
			if want[r] && !a.resident(r) {
				a.move(p, r, a.opts.FastNode)
			}
		}
	}
}

// move migrates one region and waits the completion out (the advisor is
// in no hurry; correctness of the app never depends on it).
func (a *Advisor) move(p *sim.Proc, r *region, node hw.NodeID) {
	req := a.dev.AllocRequest(p)
	if req == nil {
		return
	}
	req.Op = uapi.OpMigrate
	req.SrcBase, req.Length, req.DstNode = r.vma.Start, r.vma.Length, node
	if err := a.dev.Submit(p, req); err != nil {
		a.dev.FreeRequest(p, req)
		return
	}
	for {
		got := a.dev.RetrieveCompleted(p)
		if got == nil {
			if !a.dev.Poll(p, a.opts.SamplePeriodNS) && a.stopped {
				return
			}
			continue
		}
		if got.Status == uapi.StatusDone {
			if node == a.opts.FastNode {
				a.stats.Promotions++
			} else {
				a.stats.Demotions++
			}
		} else {
			a.stats.Failed++
		}
		a.dev.FreeRequest(p, got)
		return
	}
}
