package advisor

import (
	"testing"

	"memif/internal/core"
	"memif/internal/hw"
	"memif/internal/machine"
	"memif/internal/sim"
)

func setup() (*machine.Machine, *core.Device) {
	m := machine.New(hw.KeyStoneII())
	m.Mem.DisableData()
	as := m.NewAddressSpace(hw.Page4K)
	return m, core.Open(m, as, core.DefaultOptions())
}

func TestPromotesHotRegion(t *testing.T) {
	m, d := setup()
	adv := New(d, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		defer adv.Stop()
		hot, _ := d.AS.Mmap(p, 512<<10, hw.NodeSlow, "hot")
		cold, _ := d.AS.Mmap(p, 512<<10, hw.NodeSlow, "cold")
		adv.Track(hot)
		adv.Track(cold)
		scratch := make([]byte, 512<<10)
		for i := 0; i < 30; i++ {
			if err := d.AS.Read(p, hot, scratch); err != nil {
				t.Fatal(err)
			}
			p.SleepNS(300_000)
		}
		if f := d.AS.FrameAt(hot); f == nil || f.Node != hw.NodeFast {
			t.Errorf("hot region not promoted (node %v)", f)
		}
		if f := d.AS.FrameAt(cold); f == nil || f.Node != hw.NodeSlow {
			t.Errorf("untouched region promoted (node %v)", f)
		}
	})
	m.Eng.Run()
	if adv.Stats().Promotions == 0 {
		t.Error("no promotions recorded")
	}
}

func TestDemotesWhenHotnessShifts(t *testing.T) {
	m, d := setup()
	opts := DefaultOptions()
	opts.FastBudgetBytes = 512 << 10 // room for exactly one region
	adv := New(d, opts)
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		defer adv.Stop()
		a, _ := d.AS.Mmap(p, 512<<10, hw.NodeSlow, "a")
		b, _ := d.AS.Mmap(p, 512<<10, hw.NodeSlow, "b")
		adv.Track(a)
		adv.Track(b)
		scratch := make([]byte, 512<<10)
		hammer := func(base int64, rounds int) {
			for i := 0; i < rounds; i++ {
				d.AS.Read(p, base, scratch)
				p.SleepNS(300_000)
			}
		}
		hammer(a, 25)
		if f := d.AS.FrameAt(a); f == nil || f.Node != hw.NodeFast {
			t.Fatalf("phase 1: a not promoted")
		}
		hammer(b, 40) // hotness shifts: a cools, b heats
		p.SleepNS(10_000_000)
		if f := d.AS.FrameAt(b); f == nil || f.Node != hw.NodeFast {
			t.Errorf("phase 2: b not promoted")
		}
		if f := d.AS.FrameAt(a); f == nil || f.Node != hw.NodeSlow {
			t.Errorf("phase 2: a not demoted")
		}
	})
	m.Eng.Run()
	st := adv.Stats()
	if st.Promotions < 2 || st.Demotions < 1 {
		t.Errorf("stats = %+v, want >=2 promotions and >=1 demotion", st)
	}
}

func TestMonitorTaxAppliedAndRemoved(t *testing.T) {
	m, d := setup()
	adv := New(d, DefaultOptions())
	if d.AS.MonitorTax != DefaultOptions().MonitorTax {
		t.Errorf("tax = %v after attach", d.AS.MonitorTax)
	}
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		base, _ := d.AS.Mmap(p, 64<<10, hw.NodeSlow, "b")
		scratch := make([]byte, 64<<10)
		t0 := p.Now()
		d.AS.Read(p, base, scratch)
		taxed := p.Now() - t0
		adv.Stop()
		t0 = p.Now()
		d.AS.Read(p, base, scratch)
		untaxed := p.Now() - t0
		ratio := float64(taxed) / float64(untaxed)
		if ratio < 1.10 || ratio > 1.14 {
			t.Errorf("tax ratio = %.3f, want ~1.12", ratio)
		}
	})
	m.Eng.Run()
}

func TestTrackUnknownBaseIgnored(t *testing.T) {
	m, d := setup()
	adv := New(d, DefaultOptions())
	adv.Track(0xdead0000)
	if len(adv.regions) != 0 {
		t.Error("tracked a nonexistent VMA")
	}
	m.Eng.Spawn("app", func(p *sim.Proc) { d.Close(); adv.Stop() })
	m.Eng.Run()
}
