package dma

import (
	"math/rand"
	"testing"

	"memif/internal/hw"
	"memif/internal/sim"
)

// Randomized engine workout: interleave programming (reuse on/off, mixed
// sizes), starts (IRQ and polled), and aborts. Invariants afterwards: no
// descriptor slots leak, no frame stays pinned, every non-aborted
// transfer copied its bytes, and byte/transfer counters balance.
func TestEngineRandomWorkout(t *testing.T) {
	for _, seed := range []int64{2, 11, 404} {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			r := newRig()
			sizes := []int64{4096, 16384, 65536}

			type rec struct {
				tr      *Transfer
				segs    []Segment
				seed    byte
				aborted bool
			}
			var all []*rec
			r.eng.Spawn("drv", func(p *sim.Proc) {
				live := []*rec{}
				for op := 0; op < 120; op++ {
					switch rng.Intn(4) {
					case 0, 1: // program + start a transfer
						n := 1 + rng.Intn(8)
						size := sizes[rng.Intn(len(sizes))]
						segs := make([]Segment, n)
						seedB := byte(op + 1)
						for i := range segs {
							src, err := r.mem.Alloc(hw.NodeSlow, size)
							if err != nil {
								t.Fatal(err)
							}
							dst, err := r.mem.Alloc(hw.NodeSlow, size)
							if err != nil {
								t.Fatal(err)
							}
							for j := range src.Data {
								src.Data[j] = seedB
							}
							segs[i] = Segment{Src: src, Dst: dst, Bytes: size}
						}
						tr, err := r.dma.Program(p, rng.Intn(2) == 0, segs)
						if err != nil {
							t.Fatalf("program: %v", err)
						}
						rc := &rec{tr: tr, segs: segs, seed: seedB}
						r.dma.Start(tr, rng.Intn(2) == 0, nil)
						live = append(live, rc)
						all = append(all, rc)
					case 2: // abort something in flight
						if len(live) > 0 {
							i := rng.Intn(len(live))
							if live[i].tr.State() == StateQueued || live[i].tr.State() == StateActive {
								r.dma.Abort(live[i].tr)
								live[i].aborted = true
							}
						}
					case 3: // wait one out
						if len(live) > 0 {
							p.WaitEvent(live[0].tr.Done)
							live = live[1:]
						} else {
							p.SleepNS(int64(rng.Intn(10_000)))
						}
					}
				}
				for _, rc := range live {
					p.WaitEvent(rc.tr.Done)
				}
			})
			r.eng.Run()

			var wantBytes int64
			var wantTransfers int64
			for _, rc := range all {
				for _, s := range rc.segs {
					if s.Src.Pinned || s.Dst.Pinned {
						t.Fatalf("frame still pinned after drain")
					}
					copied := s.Dst.Data[0] == rc.seed
					if rc.tr.State() == StateDone && !copied {
						t.Fatalf("completed transfer did not copy")
					}
					if rc.tr.State() == StateAborted && copied {
						t.Fatalf("aborted transfer copied bytes")
					}
				}
				if rc.tr.State() == StateDone {
					wantTransfers++
					wantBytes += rc.tr.Bytes()
				}
			}
			st := r.dma.Stats()
			if st.Transfers != wantTransfers || st.BytesMoved != wantBytes {
				t.Errorf("stats = %+v, want %d transfers / %d bytes", st, wantTransfers, wantBytes)
			}
			// Remembered chains plus free slots must cover the array.
			used := 0
			for _, c := range r.dma.chains {
				used += c.length
			}
			if r.dma.FreeSlots()+used != r.plat.DMA.ParamSlots {
				t.Errorf("slot accounting off: %d free + %d chained != %d",
					r.dma.FreeSlots(), used, r.plat.DMA.ParamSlots)
			}
		})
	}
}
