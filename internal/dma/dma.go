// Package dma models an EDMA3-class DMA engine (TI's enhanced DMA, the
// engine on KeyStone II): an array of transfer descriptors ("PaRAM"
// entries) living in uncached I/O memory, scatter-gather transfers built
// by chaining descriptors, and completion delivery by interrupt or by
// polling.
//
// The two costs Section 5.3 identifies — computing the 12 descriptor
// parameters and writing them through uncached I/O memory — are modelled
// explicitly, as is the paper's optimization: the enhanced driver keeps
// knowledge of already-configured descriptor chains ("starting from
// descriptor 42 there is a chain of 32 descriptors, each configured for a
// 4 KB transfer") and reuses them, rewriting only the source and
// destination fields for a ~4x reduction in write cost.
package dma

import (
	"fmt"

	"memif/internal/hw"
	"memif/internal/phys"
	"memif/internal/sim"
)

// Desc is one transfer descriptor (PaRAM entry). Only the fields the
// memif driver manipulates are modelled; the remaining parameters are
// folded into the configuration costs.
type Desc struct {
	Src, Dst int64 // physical addresses
	Bytes    int64 // transfer size (ACNT*BCNT*CCNT collapsed)
	Link     int   // next descriptor slot; -1 terminates the chain

	configured bool  // slot holds a valid parameter set
	chainBytes int64 // size the slot was configured for (reuse key)
}

// Segment is one physically contiguous piece of a scatter-gather
// transfer. Without an IOMMU every segment must fit one physical page,
// so the driver dedicates one descriptor per page (Section 5.3).
type Segment struct {
	Src, Dst *phys.Frame
	Bytes    int64
}

// State of a Transfer.
type State int

// Transfer lifecycle states.
const (
	StateQueued State = iota
	StateActive
	StateDone
	StateAborted
)

func (s State) String() string {
	return [...]string{"queued", "active", "done", "aborted"}[s]
}

// Transfer is one scatter-gather transfer submitted to the engine.
type Transfer struct {
	segs    []Segment
	first   int // first descriptor slot of the chain
	nDesc   int
	ownsRun bool // non-reused run: slots are freed at completion
	bytes   int64
	src     hw.NodeID
	dst     hw.NodeID
	state   State
	irq     bool
	onIRQ   func()     // completion-interrupt handler (runs after IRQ latency)
	Done    *sim.Event // fires when the copy physically completes (or aborts)
	aborted bool

	// Class orders the transfer at the engine's single channel: lower
	// value is served first, FIFO within a class, never preempting the
	// active transfer. Set before Start; zero is the highest priority.
	Class uint8
}

// Bytes returns the total payload size.
func (t *Transfer) Bytes() int64 { return t.bytes }

// State returns the transfer's current state.
func (t *Transfer) State() State { return t.state }

// FirstSlot returns the first PaRAM slot of the transfer's chain.
func (t *Transfer) FirstSlot() int { return t.first }

// chain records driver knowledge about a configured descriptor run.
type chain struct {
	start, length int
	bytes         int64
	lastUse       int64
}

// Stats counts engine activity for the evaluation's cost breakdowns.
type Stats struct {
	Transfers        int64
	BytesMoved       int64
	DescWritesFull   int64
	DescWritesReused int64
	IRQs             int64
	Aborts           int64
	// PriorityBypasses counts queued transfers that a later, higher-class
	// submission jumped ahead of.
	PriorityBypasses int64
}

// Engine is the DMA engine plus its (enhanced) kernel driver state.
type Engine struct {
	eng  *sim.Engine
	plat *hw.Platform

	params []Desc
	inUse  []bool // slot is part of a remembered chain or in-flight run
	chains []*chain
	useSeq int64

	queue  []*Transfer // transfers waiting for the channel
	active *Transfer

	// Meter accumulates engine busy time (bus occupancy, not CPU).
	Meter *sim.Meter
	stats Stats
}

// New builds the engine for a platform.
func New(eng *sim.Engine, plat *hw.Platform) *Engine {
	n := plat.DMA.ParamSlots
	return &Engine{
		eng:    eng,
		plat:   plat,
		params: make([]Desc, n),
		inUse:  make([]bool, n),
		Meter:  sim.NewMeter("dma"),
	}
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// findChain locates a remembered chain of at least n descriptors of the
// given per-descriptor size, preferring the tightest fit.
func (e *Engine) findChain(n int, bytes int64) *chain {
	var best *chain
	for _, c := range e.chains {
		if c.bytes == bytes && c.length >= n {
			if best == nil || c.length < best.length {
				best = c
			}
		}
	}
	return best
}

// evictChain forgets the least recently used chain, releasing its slots.
func (e *Engine) evictChain() bool {
	if len(e.chains) == 0 {
		return false
	}
	oldest := 0
	for i, c := range e.chains {
		if c.lastUse < e.chains[oldest].lastUse {
			oldest = i
		}
	}
	c := e.chains[oldest]
	e.chains = append(e.chains[:oldest], e.chains[oldest+1:]...)
	e.markRun(c.start, c.length, false)
	return true
}

func (e *Engine) markRun(start, n int, used bool) {
	for i := 0; i < n; i++ {
		e.inUse[start+i] = used
	}
}

// allocRun finds a contiguous run of n free slots (first fit), evicting
// remembered chains as needed.
func (e *Engine) allocRun(n int) (int, error) {
	if n > len(e.params) {
		return -1, fmt.Errorf("dma: transfer needs %d descriptors, engine has %d", n, len(e.params))
	}
	for {
		run := 0
		for i := range e.inUse {
			if e.inUse[i] {
				run = 0
				continue
			}
			run++
			if run == n {
				start := i - n + 1
				e.markRun(start, n, true)
				return start, nil
			}
		}
		if !e.evictChain() {
			return -1, fmt.Errorf("dma: no contiguous run of %d descriptor slots available", n)
		}
	}
}

// Program assembles a scatter-gather transfer for segs. When reuse is
// true the enhanced driver reuses a remembered descriptor chain of the
// right shape if one exists (rewriting only src/dst) and remembers newly
// written chains for later; with reuse false (the baseline driver) full
// descriptors are computed and written every time and the slots are
// recycled at completion. The CPU cost of configuration is charged to p
// against meters.
//
// All segments of one transfer must share a size: the driver dedicates
// one descriptor per page and a request's pages have one size.
func (e *Engine) Program(p *sim.Proc, reuse bool, segs []Segment, meters ...*sim.Meter) (*Transfer, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("dma: empty transfer")
	}
	bytes := segs[0].Bytes
	var total int64
	for _, s := range segs {
		if s.Bytes != bytes {
			return nil, fmt.Errorf("dma: mixed segment sizes %d and %d", bytes, s.Bytes)
		}
		if s.Bytes <= 0 || s.Bytes > s.Src.Size || s.Bytes > s.Dst.Size {
			return nil, fmt.Errorf("dma: segment size %d exceeds frames", s.Bytes)
		}
		total += s.Bytes
	}
	cost := &e.plat.Cost
	cpu := cost.SGListInit

	n := len(segs)
	start := -1
	reusedChain := false
	ownsRun := false
	if reuse {
		if c := e.findChain(n, bytes); c != nil {
			e.useSeq++
			c.lastUse = e.useSeq
			start = c.start
			reusedChain = true
		}
	}
	if start < 0 {
		var err error
		start, err = e.allocRun(n)
		if err != nil {
			return nil, err
		}
		if reuse {
			e.useSeq++
			e.chains = append(e.chains, &chain{start: start, length: n, bytes: bytes, lastUse: e.useSeq})
		} else {
			ownsRun = true
		}
	}

	for i, s := range segs {
		d := &e.params[start+i]
		d.Src = s.Src.Addr
		d.Dst = s.Dst.Addr
		d.Bytes = s.Bytes
		if i < n-1 {
			d.Link = start + i + 1
		} else {
			d.Link = -1
		}
		if reusedChain && d.configured && d.chainBytes == bytes {
			cpu += cost.DescWriteReused
			e.stats.DescWritesReused++
		} else {
			cpu += cost.DescParamCalc + cost.DescWriteFull
			e.stats.DescWritesFull++
			d.configured = true
			d.chainBytes = bytes
		}
	}
	if p != nil {
		p.Busy(cpu, meters...)
	}

	t := &Transfer{
		segs:    segs,
		first:   start,
		nDesc:   n,
		ownsRun: ownsRun,
		bytes:   total,
		src:     segs[0].Src.Node,
		dst:     segs[0].Dst.Node,
		Done:    sim.NewEvent(e.eng),
	}
	for _, s := range segs {
		s.Src.Pinned = true
		s.Dst.Pinned = true
	}
	return t, nil
}

// Start triggers the transfer. If irq is true, onIRQ runs (in engine
// context) one interrupt latency after the copy completes; with irq false
// the caller is expected to poll t.Done (the kernel thread's polling mode
// for small transfers, Section 5.4). The channel serializes transfers;
// queued transfers are ordered by Class (lower first, FIFO within a
// class) and the active transfer is never preempted.
func (e *Engine) Start(t *Transfer, irq bool, onIRQ func()) {
	t.irq = irq
	t.onIRQ = onIRQ
	if e.active != nil {
		pos := len(e.queue)
		for i, q := range e.queue {
			if t.Class < q.Class {
				pos = i
				break
			}
		}
		if pos < len(e.queue) {
			e.stats.PriorityBypasses += int64(len(e.queue) - pos)
			e.queue = append(e.queue, nil)
			copy(e.queue[pos+1:], e.queue[pos:])
			e.queue[pos] = t
		} else {
			e.queue = append(e.queue, t)
		}
		return
	}
	e.begin(t)
}

func (e *Engine) begin(t *Transfer) {
	e.active = t
	t.state = StateActive
	dur := e.plat.DMATransferNS(t.bytes, t.src, t.dst)
	e.Meter.Add(dur)
	e.eng.AfterNS(dur, func() { e.complete(t) })
}

func (e *Engine) complete(t *Transfer) {
	if t.state == StateActive {
		if !t.aborted {
			for _, s := range t.segs {
				phys.Copy(s.Dst, s.Src, s.Bytes)
			}
			e.stats.Transfers++
			e.stats.BytesMoved += t.bytes
			t.state = StateDone
		} else {
			t.state = StateAborted
		}
	}
	t.releaseResources(e)
	// Advance the channel before delivering the interrupt: the engine
	// moves on to the next queued transfer immediately.
	e.active = nil
	if len(e.queue) > 0 {
		next := e.queue[0]
		e.queue = e.queue[1:]
		e.begin(next)
	}
	t.Done.Fire()
	if t.irq && !t.aborted && t.onIRQ != nil {
		e.stats.IRQs++
		e.eng.AfterNS(e.plat.DMA.IRQNS, t.onIRQ)
	}
}

func (t *Transfer) releaseResources(e *Engine) {
	for _, s := range t.segs {
		s.Src.Pinned = false
		s.Dst.Pinned = false
	}
	if t.ownsRun {
		e.markRun(t.first, t.nDesc, false)
		t.ownsRun = false
	}
}

// Abort drops a transfer: a queued transfer is removed, an active one
// completes without copying any bytes. Used by the proceed-and-recover
// fault handler ("drops the outstanding DMA transfer", Section 5.2).
func (e *Engine) Abort(t *Transfer) {
	switch t.state {
	case StateQueued:
		for i, q := range e.queue {
			if q == t {
				e.queue = append(e.queue[:i], e.queue[i+1:]...)
				break
			}
		}
		t.state = StateAborted
		t.releaseResources(e)
		t.Done.Fire()
		e.stats.Aborts++
	case StateActive:
		t.aborted = true
		e.stats.Aborts++
	case StateDone, StateAborted:
		// Nothing to do.
	}
}

// FreeSlots reports how many descriptor slots are currently unclaimed.
func (e *Engine) FreeSlots() int {
	n := 0
	for _, u := range e.inUse {
		if !u {
			n++
		}
	}
	return n
}

// Chains reports how many descriptor chains the enhanced driver currently
// remembers.
func (e *Engine) Chains() int { return len(e.chains) }

// Slot returns a copy of PaRAM entry i (test and diagnostic use).
func (e *Engine) Slot(i int) Desc { return e.params[i] }
