package dma

import (
	"testing"

	"memif/internal/hw"
	"memif/internal/phys"
	"memif/internal/sim"
)

type rig struct {
	eng  *sim.Engine
	plat *hw.Platform
	mem  *phys.Memory
	dma  *Engine
}

func newRig() *rig {
	eng := sim.NewEngine()
	plat := hw.KeyStoneII()
	return &rig{eng: eng, plat: plat, mem: phys.New(plat), dma: New(eng, plat)}
}

func (r *rig) segs(t *testing.T, n int, bytes int64) []Segment {
	t.Helper()
	dstNode := hw.NodeFast
	if int64(n)*bytes > 2<<20 {
		dstNode = hw.NodeSlow // keep large test transfers within capacity
	}
	out := make([]Segment, n)
	for i := range out {
		src, err := r.mem.Alloc(hw.NodeSlow, bytes)
		if err != nil {
			t.Fatal(err)
		}
		dst, err := r.mem.Alloc(r.mem.Node(dstNode).ID, bytes)
		if err != nil {
			t.Fatal(err)
		}
		for j := range src.Data {
			src.Data[j] = byte(i + j)
		}
		out[i] = Segment{Src: src, Dst: dst, Bytes: bytes}
	}
	return out
}

func TestTransferMovesBytes(t *testing.T) {
	r := newRig()
	r.eng.Spawn("drv", func(p *sim.Proc) {
		segs := r.segs(t, 4, 4096)
		tr, err := r.dma.Program(p, true, segs)
		if err != nil {
			t.Fatal(err)
		}
		r.dma.Start(tr, false, nil)
		p.WaitEvent(tr.Done)
		if tr.State() != StateDone {
			t.Fatalf("state = %v", tr.State())
		}
		for i, s := range segs {
			for j := range s.Dst.Data {
				if s.Dst.Data[j] != byte(i+j) {
					t.Fatalf("segment %d byte %d not copied", i, j)
				}
			}
		}
	})
	r.eng.Run()
	if st := r.dma.Stats(); st.Transfers != 1 || st.BytesMoved != 4*4096 {
		t.Errorf("stats = %+v", r.dma.Stats())
	}
}

func TestTransferTimeMatchesBandwidth(t *testing.T) {
	r := newRig()
	r.eng.Spawn("drv", func(p *sim.Proc) {
		segs := r.segs(t, 1, hw.Page2M)
		tr, _ := r.dma.Program(p, true, segs)
		cfgDone := p.Now()
		r.dma.Start(tr, false, nil)
		p.WaitEvent(tr.Done)
		got := int64(p.Now() - cfgDone)
		want := r.plat.DMATransferNS(hw.Page2M, hw.NodeSlow, hw.NodeFast)
		if got != want {
			t.Errorf("transfer time = %d ns, want %d ns", got, want)
		}
	})
	r.eng.Run()
}

func TestChainReuseCutsConfigCost(t *testing.T) {
	r := newRig()
	r.eng.Spawn("drv", func(p *sim.Proc) {
		cost := &r.plat.Cost
		segsA := r.segs(t, 16, 4096)
		t0 := p.Now()
		trA, _ := r.dma.Program(p, true, segsA)
		firstCost := int64(p.Now() - t0)
		wantFirst := cost.SGListInit + 16*(cost.DescParamCalc+cost.DescWriteFull)
		if firstCost != wantFirst {
			t.Errorf("first config cost = %d, want %d", firstCost, wantFirst)
		}
		r.dma.Start(trA, false, nil)
		p.WaitEvent(trA.Done)

		segsB := r.segs(t, 16, 4096)
		t1 := p.Now()
		trB, _ := r.dma.Program(p, true, segsB)
		reuseCost := int64(p.Now() - t1)
		wantReuse := cost.SGListInit + 16*cost.DescWriteReused
		if reuseCost != wantReuse {
			t.Errorf("reuse config cost = %d, want %d", reuseCost, wantReuse)
		}
		if trB.FirstSlot() != trA.FirstSlot() {
			t.Errorf("reuse picked slot %d, want %d", trB.FirstSlot(), trA.FirstSlot())
		}
		r.dma.Start(trB, false, nil)
		p.WaitEvent(trB.Done)
	})
	r.eng.Run()
	st := r.dma.Stats()
	if st.DescWritesFull != 16 || st.DescWritesReused != 16 {
		t.Errorf("desc writes = %+v", st)
	}
}

func TestPartialChainReuse(t *testing.T) {
	r := newRig()
	r.eng.Spawn("drv", func(p *sim.Proc) {
		// Configure a 32-descriptor chain, then a 16-descriptor transfer
		// of the same page size: it must reuse a prefix of the chain.
		trA, _ := r.dma.Program(p, true, r.segs(t, 32, 4096))
		r.dma.Start(trA, false, nil)
		p.WaitEvent(trA.Done)
		trB, _ := r.dma.Program(p, true, r.segs(t, 16, 4096))
		if trB.FirstSlot() != trA.FirstSlot() {
			t.Errorf("partial reuse start = %d, want %d", trB.FirstSlot(), trA.FirstSlot())
		}
		r.dma.Start(trB, false, nil)
		p.WaitEvent(trB.Done)
	})
	r.eng.Run()
	if got := r.dma.Stats().DescWritesReused; got != 16 {
		t.Errorf("reused writes = %d, want 16", got)
	}
}

func TestNoReuseAcrossPageSizes(t *testing.T) {
	r := newRig()
	r.eng.Spawn("drv", func(p *sim.Proc) {
		trA, _ := r.dma.Program(p, true, r.segs(t, 4, 4096))
		r.dma.Start(trA, false, nil)
		p.WaitEvent(trA.Done)
		trB, _ := r.dma.Program(p, true, r.segs(t, 4, 65536))
		r.dma.Start(trB, false, nil)
		p.WaitEvent(trB.Done)
	})
	r.eng.Run()
	st := r.dma.Stats()
	if st.DescWritesReused != 0 || st.DescWritesFull != 8 {
		t.Errorf("desc writes = %+v, want 8 full / 0 reused", st)
	}
}

func TestReuseFalseNeverReuses(t *testing.T) {
	r := newRig()
	r.eng.Spawn("drv", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			tr, _ := r.dma.Program(p, false, r.segs(t, 8, 4096))
			r.dma.Start(tr, false, nil)
			p.WaitEvent(tr.Done)
		}
		if r.dma.Chains() != 0 {
			t.Errorf("baseline driver remembered %d chains", r.dma.Chains())
		}
		if r.dma.FreeSlots() != r.plat.DMA.ParamSlots {
			t.Errorf("slots leaked: %d free", r.dma.FreeSlots())
		}
	})
	r.eng.Run()
	if got := r.dma.Stats().DescWritesFull; got != 24 {
		t.Errorf("full writes = %d, want 24", got)
	}
}

func TestChainEvictionWhenSlotsExhausted(t *testing.T) {
	r := newRig()
	r.eng.Spawn("drv", func(p *sim.Proc) {
		// Fill the PaRAM array with remembered chains of distinct sizes.
		sizes := []int64{4096, 8192, 16384, 32768}
		for _, s := range sizes {
			tr, err := r.dma.Program(p, true, r.segs(t, 128, s))
			if err != nil {
				t.Fatalf("size %d: %v", s, err)
			}
			r.dma.Start(tr, false, nil)
			p.WaitEvent(tr.Done)
		}
		if r.dma.FreeSlots() != 0 {
			t.Fatalf("expected full PaRAM, %d free", r.dma.FreeSlots())
		}
		// A new shape must evict the LRU chain (the 4096 one).
		tr, err := r.dma.Program(p, true, r.segs(t, 64, 2048))
		if err != nil {
			t.Fatalf("eviction path: %v", err)
		}
		r.dma.Start(tr, false, nil)
		p.WaitEvent(tr.Done)
		if r.dma.Chains() != 4 {
			t.Errorf("chains = %d, want 4", r.dma.Chains())
		}
	})
	r.eng.Run()
}

func TestOversizedTransferRejected(t *testing.T) {
	r := newRig()
	r.eng.Spawn("drv", func(p *sim.Proc) {
		segs := make([]Segment, r.plat.DMA.ParamSlots+1)
		src, _ := r.mem.Alloc(hw.NodeSlow, 64)
		dst, _ := r.mem.Alloc(hw.NodeFast, 64)
		for i := range segs {
			segs[i] = Segment{Src: src, Dst: dst, Bytes: 64}
		}
		if _, err := r.dma.Program(p, true, segs); err == nil {
			t.Error("oversized transfer accepted")
		}
	})
	r.eng.Run()
}

func TestChannelSerializesTransfers(t *testing.T) {
	r := newRig()
	var doneA, doneB sim.Time
	r.eng.Spawn("drv", func(p *sim.Proc) {
		trA, _ := r.dma.Program(p, true, r.segs(t, 1, hw.Page2M))
		trB, _ := r.dma.Program(p, true, r.segs(t, 1, hw.Page2M))
		r.dma.Start(trA, false, nil)
		r.dma.Start(trB, false, nil)
		p.WaitEvent(trA.Done)
		doneA = p.Now()
		p.WaitEvent(trB.Done)
		doneB = p.Now()
	})
	r.eng.Run()
	dur := sim.Time(r.plat.DMATransferNS(hw.Page2M, hw.NodeSlow, hw.NodeFast))
	if doneB-doneA < dur {
		t.Errorf("transfers overlapped: A done %v, B done %v, each needs %v", doneA, doneB, dur)
	}
}

func TestIRQDelivery(t *testing.T) {
	r := newRig()
	var irqAt, doneAt sim.Time
	r.eng.Spawn("drv", func(p *sim.Proc) {
		tr, _ := r.dma.Program(p, true, r.segs(t, 2, 4096))
		r.dma.Start(tr, true, func() { irqAt = r.eng.Now() })
		p.WaitEvent(tr.Done)
		doneAt = p.Now()
		p.SleepNS(100000) // let the IRQ land
	})
	r.eng.Run()
	want := doneAt + sim.Time(r.plat.DMA.IRQNS)
	if irqAt != want {
		t.Errorf("IRQ at %v, want %v", irqAt, want)
	}
	if r.dma.Stats().IRQs != 1 {
		t.Errorf("IRQs = %d, want 1", r.dma.Stats().IRQs)
	}
}

func TestAbortActiveSkipsCopy(t *testing.T) {
	r := newRig()
	r.eng.Spawn("drv", func(p *sim.Proc) {
		segs := r.segs(t, 1, hw.Page2M)
		tr, _ := r.dma.Program(p, true, segs)
		irqRan := false
		r.dma.Start(tr, true, func() { irqRan = true })
		p.SleepNS(1000) // mid-flight
		r.dma.Abort(tr)
		p.WaitEvent(tr.Done)
		if tr.State() != StateAborted {
			t.Errorf("state = %v, want aborted", tr.State())
		}
		for _, b := range segs[0].Dst.Data {
			if b != 0 {
				t.Fatal("aborted transfer copied bytes")
			}
		}
		p.SleepNS(100000)
		if irqRan {
			t.Error("aborted transfer delivered IRQ")
		}
	})
	r.eng.Run()
	if r.dma.Stats().Aborts != 1 {
		t.Errorf("Aborts = %d", r.dma.Stats().Aborts)
	}
}

func TestAbortQueuedRemoves(t *testing.T) {
	r := newRig()
	r.eng.Spawn("drv", func(p *sim.Proc) {
		trA, _ := r.dma.Program(p, true, r.segs(t, 1, hw.Page2M))
		segsB := r.segs(t, 1, hw.Page2M)
		trB, _ := r.dma.Program(p, true, segsB)
		r.dma.Start(trA, false, nil)
		r.dma.Start(trB, false, nil)
		r.dma.Abort(trB)
		if trB.State() != StateAborted {
			t.Errorf("queued abort state = %v", trB.State())
		}
		p.WaitEvent(trA.Done)
		p.WaitEvent(trB.Done) // already fired
		for _, b := range segsB[0].Dst.Data {
			if b != 0 {
				t.Fatal("aborted queued transfer copied bytes")
			}
		}
	})
	r.eng.Run()
	if r.dma.Stats().Transfers != 1 {
		t.Errorf("Transfers = %d, want 1", r.dma.Stats().Transfers)
	}
}

func TestPinningDuringTransfer(t *testing.T) {
	r := newRig()
	r.eng.Spawn("drv", func(p *sim.Proc) {
		segs := r.segs(t, 1, 4096)
		tr, _ := r.dma.Program(p, true, segs)
		if !segs[0].Src.Pinned || !segs[0].Dst.Pinned {
			t.Error("frames not pinned after Program")
		}
		r.dma.Start(tr, false, nil)
		p.WaitEvent(tr.Done)
		if segs[0].Src.Pinned || segs[0].Dst.Pinned {
			t.Error("frames still pinned after completion")
		}
	})
	r.eng.Run()
}

func TestProgramValidation(t *testing.T) {
	r := newRig()
	r.eng.Spawn("drv", func(p *sim.Proc) {
		if _, err := r.dma.Program(p, true, nil); err == nil {
			t.Error("empty transfer accepted")
		}
		src, _ := r.mem.Alloc(hw.NodeSlow, 4096)
		dst, _ := r.mem.Alloc(hw.NodeFast, 4096)
		mixed := []Segment{{src, dst, 4096}, {src, dst, 2048}}
		if _, err := r.dma.Program(p, true, mixed); err == nil {
			t.Error("mixed-size transfer accepted")
		}
		over := []Segment{{src, dst, 8192}}
		if _, err := r.dma.Program(p, true, over); err == nil {
			t.Error("overrun segment accepted")
		}
	})
	r.eng.Run()
}

func TestDescriptorChainLinks(t *testing.T) {
	r := newRig()
	r.eng.Spawn("drv", func(p *sim.Proc) {
		tr, _ := r.dma.Program(p, true, r.segs(t, 3, 4096))
		s := tr.FirstSlot()
		d0, d1, d2 := r.dma.Slot(s), r.dma.Slot(s+1), r.dma.Slot(s+2)
		if d0.Link != s+1 || d1.Link != s+2 || d2.Link != -1 {
			t.Errorf("links = %d,%d,%d", d0.Link, d1.Link, d2.Link)
		}
		r.dma.Start(tr, false, nil)
		p.WaitEvent(tr.Done)
	})
	r.eng.Run()
}

// A higher-class (lower value) transfer submitted while the channel is
// busy jumps ahead of queued lower-class work but never preempts the
// active transfer.
func TestClassPriorityOrdering(t *testing.T) {
	r := newRig()
	var order []uint8
	r.eng.Spawn("drv", func(p *sim.Proc) {
		mk := func(class uint8) *Transfer {
			tr, err := r.dma.Program(p, true, r.segs(t, 1, 4096))
			if err != nil {
				t.Fatal(err)
			}
			tr.Class = class
			return tr
		}
		active := mk(2)
		scav1, scav2 := mk(2), mk(2)
		fg := mk(0)
		bg := mk(1)
		done := func(tr *Transfer) {
			r.dma.Start(tr, false, nil)
		}
		done(active) // becomes active immediately
		done(scav1)
		done(scav2)
		done(fg) // should bypass both scavengers
		done(bg) // should slot between fg and the scavengers
		for _, tr := range []*Transfer{active, scav1, scav2, fg, bg} {
			tr := tr
			r.eng.Spawn("wait", func(wp *sim.Proc) {
				wp.WaitEvent(tr.Done)
				order = append(order, tr.Class)
			})
		}
	})
	r.eng.Run()
	want := []uint8{2, 0, 1, 2, 2}
	if len(order) != len(want) {
		t.Fatalf("completions = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order = %v, want %v", order, want)
		}
	}
	if r.dma.Stats().PriorityBypasses == 0 {
		t.Error("PriorityBypasses not counted")
	}
}
