package uapi_test

// Conservation and linearizability of the Area protocol under
// systematically explored interleavings: application threads allocate,
// stage, retrieve and free request slots while a kernel thread flushes
// and completes them, all scheduled deterministically by seed. After
// every run, (a) the recorded queue-operation history must linearize
// against the ownership model — each index in exactly one place at every
// linearization point — and (b) the quiescent Audit must account for
// every slot. Failures print the seed that replays them.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"memif/internal/check"
	"memif/internal/rbq"
	"memif/internal/uapi"
)

// areaClient is one history-recording actor on the shared area.
type areaClient struct {
	id   int
	hist *check.History
	a    *uapi.Area
	held []uint32
}

func (c *areaClient) queue(q check.AreaQueue) *rbq.Queue {
	switch q {
	case check.AQFree:
		return c.a.FreeList
	case check.AQStaging:
		return c.a.Staging
	case check.AQSubmission:
		return c.a.Submission
	case check.AQCompOK:
		return c.a.CompOK
	default:
		return c.a.CompFail
	}
}

// deq dequeues from q, recording the op; a successful dequeue moves the
// index into the client's held set.
func (c *areaClient) deq(q check.AreaQueue) (uint32, bool) {
	var idx uint32
	var ok bool
	c.hist.Record(c.id, check.AOp{Queue: q}, func() any {
		idx, _, ok = c.queue(q).Dequeue()
		return check.ARes{Idx: idx, Ok: ok}
	})
	if ok {
		if _, valid := c.a.Req(idx); !valid {
			panic(fmt.Sprintf("client %d: invalid index %d off %v", c.id, idx, q))
		}
		c.held = append(c.held, idx)
	}
	return idx, ok
}

// enq enqueues a held index onto q, recording the op; success removes it
// from the held set.
func (c *areaClient) enq(q check.AreaQueue, idx uint32) bool {
	pos := -1
	for i, h := range c.held {
		if h == idx {
			pos = i
		}
	}
	if pos < 0 {
		panic(fmt.Sprintf("client %d: enqueueing %d it does not hold", c.id, idx))
	}
	var ok bool
	c.hist.Record(c.id, check.AOp{Queue: q, Enq: true, Idx: idx}, func() any {
		_, ok = c.queue(q).Enqueue(idx)
		return check.ARes{Ok: ok}
	})
	if ok {
		c.held = append(c.held[:pos], c.held[pos+1:]...)
	}
	return ok
}

func runAreaSchedule(seed int64) error {
	const nReqs = 6
	a := uapi.NewArea(nReqs)
	s := check.NewSched(seed)
	rbq.SetSchedHook(s.YieldHook())
	defer rbq.SetSchedHook(nil)

	const nApps = 2
	hist := check.NewHistory(nApps + 1)
	clients := make([]*areaClient, nApps+1)
	for i := range clients {
		clients[i] = &areaClient{id: i, hist: hist, a: a}
	}

	// Deterministic per-thread scripts, derived from the seed.
	for app := 0; app < nApps; app++ {
		app := app
		c := clients[app]
		rng := rand.New(rand.NewSource(seed*1000 + int64(app)))
		s.Go(func(t *check.Thread) {
			for step := 0; step < 10; step++ {
				switch rng.Intn(3) {
				case 0: // allocate and stage a request
					if idx, ok := c.deq(check.AQFree); ok {
						c.enq(check.AQStaging, idx)
					}
				case 1: // retrieve a completion and free the slot
					if idx, ok := c.deq(check.AQCompOK); ok {
						c.enq(check.AQFree, idx)
					}
				case 2: // retrieve a failure and free the slot
					if idx, ok := c.deq(check.AQCompFail); ok {
						c.enq(check.AQFree, idx)
					}
				}
			}
		})
	}
	// The kernel thread: flush staging into submission, serve
	// submissions into the two completion queues.
	kc := clients[nApps]
	krng := rand.New(rand.NewSource(seed*1000 + 999))
	s.Go(func(t *check.Thread) {
		for step := 0; step < 14; step++ {
			if idx, ok := kc.deq(check.AQStaging); ok {
				kc.enq(check.AQSubmission, idx)
			}
			if idx, ok := kc.deq(check.AQSubmission); ok {
				if krng.Intn(4) == 0 {
					kc.enq(check.AQCompFail, idx)
				} else {
					kc.enq(check.AQCompOK, idx)
				}
			}
		}
	})

	if err := s.Run(); err != nil {
		return err
	}
	// (a) The combined queue-op history linearizes against the
	// ownership model.
	if r := check.CheckHistory(check.AreaModel(nReqs), hist); !r.Ok {
		return errors.New(r.Info)
	}
	// (b) Quiescent conservation: every index in exactly one place.
	var held []uint32
	for _, c := range clients {
		held = append(held, c.held...)
	}
	if err := a.Audit(held); err != nil {
		return err
	}
	return nil
}

func TestAreaConservationUnderSchedules(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 25
	}
	if err := check.Explore(seeds, 1, runAreaSchedule); err != nil {
		t.Fatal(err) // the error names the replay seed
	}
}

func TestAuditDetectsVanishedIndex(t *testing.T) {
	a := uapi.NewArea(4)
	if err := a.Audit(nil); err != nil {
		t.Fatalf("fresh area fails audit: %v", err)
	}
	r := a.AllocReq()
	if r == nil {
		t.Fatal("alloc failed")
	}
	// Not freed and not declared held: the index has vanished.
	if err := a.Audit(nil); err == nil {
		t.Fatal("audit missed a vanished index")
	}
	// Declared held: accounted for.
	if err := a.Audit([]uint32{r.Index()}); err != nil {
		t.Fatalf("audit rejects a held index: %v", err)
	}
	// Double-counted: held but also back on the free list.
	a.FreeReq(r)
	if err := a.Audit([]uint32{r.Index()}); err == nil {
		t.Fatal("audit missed a doubly-owned index")
	}
	if err := a.Audit(nil); err != nil {
		t.Fatalf("audit after free: %v", err)
	}
}
