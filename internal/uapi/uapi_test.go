package uapi

import (
	"testing"
	"testing/quick"

	"memif/internal/hw"
)

func TestAreaLifecycle(t *testing.T) {
	a := NewArea(8)
	if a.NumReqs() != 8 {
		t.Fatalf("NumReqs = %d", a.NumReqs())
	}
	var got []*MovReq
	for i := 0; i < 8; i++ {
		r := a.AllocReq()
		if r == nil {
			t.Fatalf("alloc %d failed", i)
		}
		got = append(got, r)
	}
	if a.AllocReq() != nil {
		t.Error("alloc beyond capacity succeeded")
	}
	for _, r := range got {
		a.FreeReq(r)
	}
	if a.AllocReq() == nil {
		t.Error("alloc after free-all failed")
	}
}

func TestAllocResetsFields(t *testing.T) {
	a := NewArea(1)
	r := a.AllocReq()
	r.Op = OpMigrate
	r.SrcBase, r.Length, r.DstNode = 0x1000, 4096, hw.NodeFast
	r.Status = StatusDone
	r.Err = ErrRace
	idx := r.Index()
	a.FreeReq(r)
	r2 := a.AllocReq()
	if r2.Index() != idx {
		t.Fatalf("slot not recycled: %d vs %d", r2.Index(), idx)
	}
	if r2.Op != OpReplicate || r2.SrcBase != 0 || r2.Err != ErrNone || r2.Status != StatusFree {
		t.Errorf("stale fields after realloc: %v", r2)
	}
}

func TestReqValidation(t *testing.T) {
	a := NewArea(4)
	if _, ok := a.Req(3); !ok {
		t.Error("valid index rejected")
	}
	if _, ok := a.Req(4); ok {
		t.Error("out-of-range index accepted")
	}
	if _, ok := a.Req(0xffffffff); ok {
		t.Error("hostile index accepted")
	}
}

func TestFreeActiveRequestPanics(t *testing.T) {
	a := NewArea(2)
	r := a.AllocReq()
	r.Status = StatusInFlight
	defer func() {
		if recover() == nil {
			t.Error("freeing in-flight request did not panic")
		}
	}()
	a.FreeReq(r)
}

func TestQueuesAreIsolated(t *testing.T) {
	a := NewArea(4)
	r := a.AllocReq()
	a.Staging.Enqueue(r.Index())
	if !a.Submission.Empty() || !a.CompOK.Empty() || !a.CompFail.Empty() {
		t.Error("enqueue on staging leaked into other queues")
	}
	idx, _, ok := a.Staging.Dequeue()
	if !ok || idx != r.Index() {
		t.Errorf("staging dequeue = %d,%v", idx, ok)
	}
}

func TestLatency(t *testing.T) {
	r := MovReq{Submitted: 100, Completed: 350}
	if r.Latency() != 250 {
		t.Errorf("Latency = %v, want 250", r.Latency())
	}
}

func TestStringersDontPanic(t *testing.T) {
	for _, o := range []Op{OpReplicate, OpMigrate} {
		_ = o.String()
	}
	for s := StatusFree; s <= StatusFailed; s++ {
		_ = s.String()
	}
	for e := ErrNone; e <= ErrTxnDirty; e++ {
		_ = e.String()
	}
	for c := ClassForeground; c <= ClassScavenger; c++ {
		_ = c.String()
	}
	r := MovReq{}
	_ = r.String()
}

func TestBadAreaSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewArea(0) did not panic")
		}
	}()
	NewArea(0)
}

// Property: any interleaving of alloc/free keeps the number of live
// requests consistent and never hands out the same slot twice.
func TestAllocFreeProperty(t *testing.T) {
	prop := func(ops []bool) bool {
		a := NewArea(16)
		live := map[uint32]*MovReq{}
		for _, alloc := range ops {
			if alloc {
				r := a.AllocReq()
				if len(live) == 16 {
					if r != nil {
						return false
					}
					continue
				}
				if r == nil {
					return false
				}
				if _, dup := live[r.Index()]; dup {
					return false
				}
				live[r.Index()] = r
			} else {
				for idx, r := range live {
					a.FreeReq(r)
					delete(live, idx)
					break
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
