// Package uapi defines the user/kernel shared interface area of one
// memif instance (Figure 3): the array of mov_req entries plus the
// lock-free queues that logically move requests between free list,
// staging, submission, and completion states.
//
// In the kernel prototype this area lives in pinned pages mmap'ed into
// the application; here it is a Go struct shared by "user" and "kernel"
// processes. The safety discipline is the paper's: the only cross-side
// references are indices into the mov_req array, validated before use.
package uapi

import (
	"fmt"

	"memif/internal/hw"
	"memif/internal/rbq"
	"memif/internal/sim"
)

// Op selects the move semantics of a request (Section 3).
type Op uint8

// The two move operations.
const (
	// OpReplicate copies bytes across two already-mapped virtual
	// regions (memcpy semantics): no virtual memory management, no race
	// handling.
	OpReplicate Op = iota
	// OpMigrate replaces the backing pages of a region with new pages
	// on the destination node and fills them with the old data, with
	// race detection.
	OpMigrate
)

func (o Op) String() string {
	if o == OpReplicate {
		return "replicate"
	}
	return "migrate"
}

// Status tracks a request's position in its life cycle.
type Status uint8

// Request life-cycle states.
const (
	StatusFree Status = iota
	StatusStaged
	StatusSubmitted
	StatusInFlight
	StatusDone
	StatusFailed
)

func (s Status) String() string {
	return [...]string{"free", "staged", "submitted", "in-flight", "done", "failed"}[s]
}

// ErrCode is the kernel-reported failure reason in a completed request.
type ErrCode uint8

// Failure reasons posted to the failed-completion queue.
const (
	ErrNone ErrCode = iota
	// ErrRace: a CPU access raced the migration DMA; with race
	// detection this is reported as a program error (the SEGFAULT of
	// Section 5.2).
	ErrRace
	// ErrAborted: the proceed-and-recover handler aborted the
	// migration and restored the original mapping.
	ErrAborted
	// ErrNoMemory: the destination node could not supply pages.
	ErrNoMemory
	// ErrBadRequest: the request's region failed validation.
	ErrBadRequest
	// ErrBusy: another move of an overlapping region is in flight
	// (EAGAIN semantics — resubmit later).
	ErrBusy
	// ErrTxnDirty: a transactional migration's commit CAS found the page
	// dirtied (or remapped) after the copy baseline; the original mapping
	// is intact and the caller may retry.
	ErrTxnDirty
)

func (e ErrCode) String() string {
	return [...]string{"ok", "race", "aborted", "nomem", "badreq", "busy", "txn-dirty"}[e]
}

// Class is the QoS class a request's DMA transfers ride in. Lower value
// means higher priority at the engine's single channel; FIFO within a
// class, no preemption of an active transfer.
type Class uint8

// The three request classes, mirroring the realtime engine's QoS tiers.
const (
	ClassForeground Class = iota
	ClassBackground
	ClassScavenger
)

func (c Class) String() string {
	return [...]string{"foreground", "background", "scavenger"}[c]
}

// ReqFlags modify how a request is executed.
type ReqFlags uint8

const (
	// ReqTxn makes an OpMigrate transactional: the page stays mapped and
	// writable during the copy, and the remap is a per-page commit CAS
	// that fails with ErrTxnDirty if the page was dirtied meanwhile.
	ReqTxn ReqFlags = 1 << iota
	// ReqKeepSrc retains the source frame of a committed transactional
	// migration as a shadow copy, enabling later zero-byte demotions
	// while the page stays clean (non-exclusive tiering).
	ReqKeepSrc
)

// MovReq mirrors the mov_req of Figure 3(b): a hardware-independent
// description of one move request. The application populates the request
// fields after AllocRequest; the kernel fills the result fields before
// posting the completion.
type MovReq struct {
	idx uint32 // self index in the area's array

	// Request fields (user-populated).
	Op      Op
	SrcBase int64     // virtual base of the source region
	DstBase int64     // virtual base of the destination region (replication)
	Length  int64     // bytes; a multiple of the page size
	DstNode hw.NodeID // destination memory node (migration)
	Cookie  uint64    // opaque user tag, returned in the notification
	Class   Class     // QoS class of the request's DMA transfers
	Flags   ReqFlags  // execution modifiers (ReqTxn, ReqKeepSrc)

	// Result fields (kernel-populated).
	Status    Status
	Err       ErrCode
	FailPage  int64 // page index at which a race/failure was detected
	Submitted sim.Time
	Completed sim.Time
	// MovedBytes counts bytes actually copied by DMA; a transactional
	// migration satisfied entirely by valid shadow copies reports 0.
	MovedBytes int64
	// ZeroCopyPages counts pages committed by PTE flip alone.
	ZeroCopyPages int64

	// Lifecycle stage stamps (virtual time, 0 = stage never reached),
	// the per-request raw material of the stage-latency attribution:
	// Flushed when the request moved staging → submission queue,
	// Dispatched when a kernel context dequeued it, CopyStart when
	// validation and PTE work finished and the first DMA batch was
	// about to be configured, Retrieved when the application collected
	// the completion.
	Flushed    sim.Time
	Dispatched sim.Time
	CopyStart  sim.Time
	Retrieved  sim.Time
}

// Index returns the request's slot index.
func (r *MovReq) Index() uint32 { return r.idx }

// Latency returns completion minus submission time.
func (r *MovReq) Latency() sim.Time { return r.Completed - r.Submitted }

func (r *MovReq) String() string {
	return fmt.Sprintf("mov_req#%d{%v src=%#x dst=%#x len=%d node=%d %v/%v}",
		r.idx, r.Op, r.SrcBase, r.DstBase, r.Length, r.DstNode, r.Status, r.Err)
}

// Area is the shared interface area of one memif instance.
type Area struct {
	reqs []MovReq
	slab *rbq.Slab

	// FreeList holds unallocated request slots.
	FreeList *rbq.Queue
	// Staging holds submitted requests not yet known to the kernel. It
	// is the red-blue queue: blue means the application must flush it,
	// red means the kernel worker will.
	Staging *rbq.Queue
	// Submission holds requests known to the kernel, waiting to be
	// served.
	Submission *rbq.Queue
	// CompOK and CompFail hold completed requests posted back to the
	// application (the paper implements the completion queue as two).
	CompOK   *rbq.Queue
	CompFail *rbq.Queue
}

// NewArea builds the shared area with nReqs request slots.
func NewArea(nReqs int) *Area {
	if nReqs < 1 {
		panic("uapi: need at least one request slot")
	}
	// Each request can sit in at most one queue; 5 queues consume a
	// dummy node each; small slack for in-flight node handoff.
	slab := rbq.NewSlab(nReqs + 5 + 8)
	a := &Area{
		reqs:       make([]MovReq, nReqs),
		slab:       slab,
		FreeList:   slab.NewQueue(rbq.Blue),
		Staging:    slab.NewQueue(rbq.Blue),
		Submission: slab.NewQueue(rbq.Blue),
		CompOK:     slab.NewQueue(rbq.Blue),
		CompFail:   slab.NewQueue(rbq.Blue),
	}
	for i := range a.reqs {
		a.reqs[i].idx = uint32(i)
		if _, ok := a.FreeList.Enqueue(uint32(i)); !ok {
			panic("uapi: slab sized too small for free list")
		}
	}
	return a
}

// NumReqs returns the number of request slots.
func (a *Area) NumReqs() int { return len(a.reqs) }

// Req validates an index coming off a queue and returns the request.
// This is the validation step Section 4.2 relies on for safety.
func (a *Area) Req(idx uint32) (*MovReq, bool) {
	if int(idx) >= len(a.reqs) {
		return nil, false
	}
	return &a.reqs[idx], true
}

// Audit verifies the area's conservation invariant on a quiescent
// snapshot: every request index is in exactly one of {free list,
// staging, submission, comp-ok, comp-fail, caller-held}. held lists the
// indices the caller believes the application currently owns (allocated
// or retrieved but not yet freed or re-enqueued). Call only while no
// queue operation is in flight — the walk is not atomic. This is the
// "no index may ever vanish" assertion shared by the uapi invariant
// tests and core's randomized workout.
func (a *Area) Audit(held []uint32) error {
	owner := make([]string, len(a.reqs))
	claim := func(idx uint32, who string) error {
		if int(idx) >= len(a.reqs) {
			return fmt.Errorf("uapi: audit: index %d out of range (seen in %s)", idx, who)
		}
		if owner[idx] != "" {
			return fmt.Errorf("uapi: audit: index %d in two places: %s and %s", idx, owner[idx], who)
		}
		owner[idx] = who
		return nil
	}
	for _, qi := range []struct {
		name string
		q    *rbq.Queue
	}{
		{"free", a.FreeList},
		{"staging", a.Staging},
		{"submission", a.Submission},
		{"comp-ok", a.CompOK},
		{"comp-fail", a.CompFail},
	} {
		for _, idx := range qi.q.Snapshot() {
			if err := claim(idx, qi.name); err != nil {
				return err
			}
		}
	}
	for _, idx := range held {
		if err := claim(idx, "user-held"); err != nil {
			return err
		}
	}
	for i, who := range owner {
		if who == "" {
			return fmt.Errorf("uapi: audit: index %d vanished: in no queue and not user-held", i)
		}
	}
	return nil
}

// AllocReq takes a request slot off the free list. Returns nil when all
// slots are in use.
func (a *Area) AllocReq() *MovReq {
	idx, _, ok := a.FreeList.Dequeue()
	if !ok {
		return nil
	}
	r := &a.reqs[idx]
	*r = MovReq{idx: r.idx, Status: StatusFree}
	return r
}

// FreeReq returns a slot to the free list. Freeing a request that is
// still queued or in flight is a caller bug.
func (a *Area) FreeReq(r *MovReq) {
	switch r.Status {
	case StatusStaged, StatusSubmitted, StatusInFlight:
		panic(fmt.Sprintf("uapi: freeing active %v", r))
	}
	r.Status = StatusFree
	if _, ok := a.FreeList.Enqueue(r.idx); !ok {
		panic("uapi: free list full on FreeReq")
	}
}
