package lifecycle

import (
	"encoding/json"
	"testing"
)

func TestSamplingRate(t *testing.T) {
	// shift 3: exactly every 8th Begin (the 1st, 9th, 17th, ...) is
	// sampled — the decision is a deterministic counter, not a PRNG.
	tr := New(4, 3, 0, 0)
	sampled := 0
	for i := 0; i < 64; i++ {
		if tr.Begin(0, 0, 100, int64(i+1)) {
			sampled++
			if i%8 != 0 {
				t.Errorf("request %d sampled, want only multiples of 8", i)
			}
		}
		tr.End(0, OutcomeOK, int64(i+1000))
	}
	if sampled != 8 {
		t.Errorf("sampled %d of 64 at shift 3, want 8", sampled)
	}
	s := tr.Snapshot()
	if s.Begun != 8 || s.Ended != 8 {
		t.Errorf("begun/ended = %d/%d, want 8/8", s.Begun, s.Ended)
	}
	if s.SampleShift != 3 || !s.Enabled {
		t.Errorf("snapshot shift/enabled = %d/%v", s.SampleShift, s.Enabled)
	}
}

func TestFullCaptureAndSpans(t *testing.T) {
	tr := New(2, 0, 8, 0)
	tr.Begin(1, 0, 4096, 100)
	tr.Transition(1, StageFlushed, 110)
	tr.Transition(1, StageDispatched, 130)
	tr.TransitionFirst(1, StageCopyStart, 160)
	tr.TransitionFirst(1, StageCopyStart, 170) // later racer must lose
	tr.Transition(1, StageCopyEnd, 200)
	tr.Transition(1, StageCompleted, 210)
	tr.ObserveQueueWait(0, 25, false)
	tr.ObserveQueueWait(0, 40, true)
	tr.End(1, OutcomeOK, 260)

	s := tr.Snapshot()
	if len(s.Captured) != 1 {
		t.Fatalf("captured %d lifecycles, want 1", len(s.Captured))
	}
	lc := s.Captured[0]
	wantTS := Stamps(100, 110, 130, 160, 200, 210, 260)
	if lc.TS != wantTS {
		t.Errorf("TS = %v, want %v", lc.TS, wantTS)
	}
	for span, want := range map[Span]int64{
		SpanStagingWait:     10,
		SpanDispatchWait:    20,
		SpanCopy:            40,
		SpanCompletionDwell: 50,
		SpanTotal:           160,
	} {
		h := s.Spans.Spans[span]
		if h.Count != 1 || h.Sum != want {
			t.Errorf("span %s: count=%d sum=%d, want 1/%d", span, h.Count, h.Sum, want)
		}
	}
	if h := s.Spans.Spans[SpanRingWait]; h.Count != 2 || h.Sum != 65 {
		t.Errorf("ring wait: count=%d sum=%d, want 2/65", h.Count, h.Sum)
	}
	if h := s.Spans.Spans[SpanStealDelay]; h.Count != 1 || h.Sum != 40 {
		t.Errorf("steal delay: count=%d sum=%d, want 1/40", h.Count, h.Sum)
	}
}

func TestMissingEndpointsSkipSpans(t *testing.T) {
	// An ErrNoSlots-style failure goes submit -> completed directly;
	// only spans with both endpoints may record.
	tr := New(1, 0, 0, 0)
	tr.Begin(0, 0, 0, 100)
	tr.Transition(0, StageCompleted, 150)
	tr.End(0, OutcomeFailed, 180)
	s := tr.Snapshot()
	for _, span := range []Span{SpanStagingWait, SpanDispatchWait, SpanCopy} {
		if c := s.Spans.Spans[span].Count; c != 0 {
			t.Errorf("span %s recorded %d samples with missing endpoints", span, c)
		}
	}
	if c := s.Spans.Spans[SpanCompletionDwell].Count; c != 1 {
		t.Errorf("completion dwell count = %d, want 1", c)
	}
	if c := s.Spans.Spans[SpanTotal].Count; c != 1 {
		t.Errorf("total count = %d, want 1", c)
	}
	if len(s.Captured) != 1 || s.Captured[0].Outcome != OutcomeFailed {
		t.Errorf("captured = %+v", s.Captured)
	}
}

func TestAbortAndSlotReuse(t *testing.T) {
	tr := New(1, 0, 4, 0)
	tr.Begin(0, 0, 0, 10)
	tr.Abort(0)
	if tr.Sampled(0) {
		t.Error("slot still sampled after Abort")
	}
	// Reuse the slot: stale stamps must not leak into the new lifecycle.
	tr.Begin(0, 0, 0, 50)
	tr.Transition(0, StageFlushed, 60)
	tr.End(0, OutcomeOK, 70)
	s := tr.Snapshot()
	if s.Aborted != 1 || s.Ended != 1 || s.Begun != 2 {
		t.Errorf("begun/ended/aborted = %d/%d/%d, want 2/1/1", s.Begun, s.Ended, s.Aborted)
	}
	if len(s.Captured) != 1 {
		t.Fatalf("captured %d, want 1 (aborted lifecycle must not capture)", len(s.Captured))
	}
	if ts := s.Captured[0].TS; ts[StageSubmit] != 50 || ts[StageDispatched] != 0 {
		t.Errorf("stale stamps leaked across reuse: %v", ts)
	}
}

func TestCaptureRingWrap(t *testing.T) {
	tr := New(1, 0, 4, 0)
	for i := int64(1); i <= 10; i++ {
		tr.Begin(0, 0, i, i*100)
		tr.End(0, OutcomeOK, i*100+50)
	}
	s := tr.Snapshot()
	if len(s.Captured) != 4 {
		t.Fatalf("captured %d, want ring depth 4", len(s.Captured))
	}
	for i, lc := range s.Captured {
		if i > 0 && lc.Seq <= s.Captured[i-1].Seq {
			t.Errorf("capture not in seq order: %v", s.Captured)
		}
		if lc.Seq < 7 {
			t.Errorf("old lifecycle %d survived a depth-4 ring", lc.Seq)
		}
	}
}

func TestPerClassSpans(t *testing.T) {
	tr := New(2, 0, 4, 3)
	run := func(slot, class int, base int64) {
		tr.Begin(slot, class, 64, base)
		tr.Transition(slot, StageFlushed, base+10)
		tr.ObserveQueueWait(class, 7, false)
		tr.End(slot, Outcome(0), base+100)
	}
	run(0, 0, 1000)
	run(1, 2, 2000)
	run(0, 2, 3000)
	s := tr.Snapshot()
	if len(s.ClassSpans) != 3 {
		t.Fatalf("ClassSpans len = %d, want 3", len(s.ClassSpans))
	}
	if c := s.ClassSpans[0].Spans[SpanTotal].Count; c != 1 {
		t.Errorf("class 0 total count = %d, want 1", c)
	}
	if c := s.ClassSpans[2].Spans[SpanTotal].Count; c != 2 {
		t.Errorf("class 2 total count = %d, want 2", c)
	}
	if c := s.ClassSpans[1].Spans[SpanTotal].Count; c != 0 {
		t.Errorf("class 1 total count = %d, want 0", c)
	}
	if c := s.ClassSpans[2].Spans[SpanRingWait].Count; c != 2 {
		t.Errorf("class 2 ring wait count = %d, want 2", c)
	}
	// The global spans see everything regardless of class.
	if c := s.Spans.Spans[SpanTotal].Count; c != 3 {
		t.Errorf("global total count = %d, want 3", c)
	}
	// Captured lifecycles carry their class.
	classes := map[int]int{}
	for _, lc := range s.Captured {
		classes[lc.Class]++
	}
	if classes[0] != 1 || classes[2] != 2 {
		t.Errorf("captured classes = %v, want {0:1, 2:2}", classes)
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	var ss SpanSet
	ss.Observe(SpanCopy, -5)
	s := ss.Snapshot()
	if h := s.Spans[SpanCopy]; h.Count != 1 || h.Sum != 0 {
		t.Errorf("negative duration: count=%d sum=%d, want 1/0", h.Count, h.Sum)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Begin(0, 0, 0, 1) || tr.Sampled(0) {
		t.Error("nil tracer claims sampling")
	}
	tr.Transition(0, StageFlushed, 1)
	tr.TransitionFirst(0, StageCopyStart, 1)
	tr.ObserveQueueWait(0, 1, true)
	tr.Abort(0)
	tr.End(0, OutcomeOK, 1)
	if s := tr.Snapshot(); s.Enabled || s.SampleShift != -1 {
		t.Errorf("nil snapshot = %+v", s)
	}
	if tr.SampleShift() != -1 {
		t.Error("nil SampleShift != -1")
	}
	var ss *SpanSet
	ss.Observe(SpanCopy, 1)
	ts := Stamps(1, 2, 3, 4, 5, 6, 7)
	ss.ObserveStamps(&ts)
	_ = ss.Snapshot()
	if New(0, 0, 0, 0) != nil || New(10, -1, 0, 0) != nil {
		t.Error("disabled configs must return nil")
	}
}

func TestChromeTraceJSON(t *testing.T) {
	tr := New(2, 0, 8, 0)
	for slot := 0; slot < 2; slot++ {
		base := int64(1000 * (slot + 1))
		tr.Begin(slot, 0, 4096, base)
		tr.Transition(slot, StageFlushed, base+10)
		tr.Transition(slot, StageDispatched, base+20)
		tr.Transition(slot, StageCopyStart, base+30)
		tr.Transition(slot, StageCopyEnd, base+90)
		tr.Transition(slot, StageCompleted, base+95)
		tr.End(slot, OutcomeOK, base+120)
	}
	blob, err := ChromeTraceGroupsJSON([]TraceGroup{
		{Process: "a", Lifecycles: tr.Snapshot().Captured},
		{Process: "b", Lifecycles: tr.Snapshot().Captured},
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	meta, spans := 0, 0
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		pids[ev.PID] = true
		switch ev.Phase {
		case "M":
			meta++
		case "X":
			spans++
			if ev.TS < 0 || ev.Dur < 0 {
				t.Errorf("negative ts/dur on %s: %f/%f", ev.Name, ev.TS, ev.Dur)
			}
			if ev.Args["outcome"] != "ok" {
				t.Errorf("outcome arg = %v", ev.Args["outcome"])
			}
		}
	}
	if meta != 2 {
		t.Errorf("metadata events = %d, want one per group", meta)
	}
	// 2 groups x 2 lifecycles x 4 stage-pair spans (total skipped).
	if spans != 16 {
		t.Errorf("span events = %d, want 16", spans)
	}
	if len(pids) != 2 {
		t.Errorf("pids = %v, want 2 distinct", pids)
	}
}
