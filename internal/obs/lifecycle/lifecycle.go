// Package lifecycle is the per-request lifecycle tracer: it timestamps
// every stage transition a request makes through an asynchronous move
// pipeline (submit → flushed → dispatched → copy start/end → completed →
// retrieved) and derives per-stage latency histograms from the stamps —
// the latency-budget attribution the paper's Section 6 builds its whole
// argument on, turned into an always-on instrument.
//
// # Hot-path cost model
//
// Records are preallocated per request slot and indexed by the slot
// number, so tracing allocates nothing after construction. Every
// transition on an active request is one atomic store of a nanosecond
// stamp; on an inactive request the instrumentation site pays one
// atomic load (the active check) and nothing else. The sampling
// decision itself is a slot-local counter increment and a mask test,
// taken once per request at Begin — no tracer-global contended write
// on the unsampled path. All of the expensive work — computing span
// durations, feeding histograms, pushing the capture ring — happens at
// End, which runs on the application's completion-retrieval path, never
// on the device's worker or controller goroutines (the interrupt path).
//
// # Sampling and capture
//
// A Tracer samples one request in 2^shift (shift 0 samples everything —
// the full-capture debug mode). Sampled lifecycles feed the per-span
// histograms and, once complete, are copied into a fixed-depth capture
// ring from which ChromeTraceJSON renders a Chrome trace_event timeline
// (chrome://tracing, Perfetto).
//
// The flight recorder's retroactive outlier capture deliberately does
// NOT ride on the Tracer: stamping every request through these records
// costs an atomic store per stage per request, which breaks the
// recorder's <2% overhead budget. The realtime device instead keeps its
// armed-mode stamps in plain per-Request fields ordered by the
// pipeline's own queue handoffs (see the device's lcEnd), while the
// Tracer stays the sampled, full-fidelity instrument.
//
// Subsystems whose request records carry their own stage timestamps
// (the simulated core device under swapd and streamrt) skip the Tracer
// and feed a SpanSet directly through ObserveStamps, producing the same
// per-stage histograms on virtual time.
//
// The package follows the obs ground rules: everything is lock-free,
// safe from any goroutine, and nil-safe, so instrumentation sites need
// no enabled-checks.
package lifecycle

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync/atomic"

	"memif/internal/obs"
)

// Stage is one timestamped point in a request's life.
type Stage uint8

// The stage model. A pipeline stamps the subset it has: the realtime
// device stamps all of them; a request failing off-protocol (e.g.
// ErrNoSlots at the flush) skips straight from StageSubmit to
// StageCompleted, and span derivation skips spans with a missing
// endpoint.
const (
	// StageSubmit: the request entered the staging queue.
	StageSubmit Stage = iota
	// StageFlushed: the flush moved it staging → submission queue.
	StageFlushed
	// StageDispatched: the worker dequeued it and began chunking.
	StageDispatched
	// StageCopyStart: the first chunk reached a transfer controller.
	StageCopyStart
	// StageCopyEnd: the last chunk finished copying.
	StageCopyEnd
	// StageCompleted: the completion was posted (Release + Notify).
	StageCompleted
	// StageRetrieved: the application collected the completion.
	StageRetrieved

	NumStages int = iota
)

// stageNames index by Stage.
var stageNames = [NumStages]string{
	"submit", "flushed", "dispatched", "copy_start", "copy_end", "completed", "retrieved",
}

func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// Span is one derived stage-latency: the time between two stages (or,
// for the chunk-level spans, a directly observed queue wait).
type Span uint8

// The attribution buckets of the Section 6 latency budget, pipeline
// edition.
const (
	// SpanStagingWait: submit → flushed; time spent on a staging shard
	// waiting for a flush.
	SpanStagingWait Span = iota
	// SpanDispatchWait: flushed → dispatched; time on the submission
	// queue waiting for the worker.
	SpanDispatchWait
	// SpanRingWait: push → pop of a chunk on a dispatch ring (chunk
	// level; observed once per sampled chunk).
	SpanRingWait
	// SpanStealDelay: ring wait of chunks that were stolen by a
	// non-owning controller — how long work sat before stealing saved it.
	SpanStealDelay
	// SpanCopy: copy start → copy end; the actual byte-moving window,
	// across every controller touching the request.
	SpanCopy
	// SpanCompletionDwell: completed → retrieved; time the finished
	// request sat on the completion queue.
	SpanCompletionDwell
	// SpanTotal: submit → retrieved.
	SpanTotal

	NumSpans int = iota
)

var spanNames = [NumSpans]string{
	"staging_wait", "dispatch_wait", "ring_wait", "steal_delay",
	"copy", "completion_dwell", "total",
}

func (s Span) String() string {
	if int(s) < NumSpans {
		return spanNames[s]
	}
	return fmt.Sprintf("span(%d)", uint8(s))
}

// SpanNames returns the metric-label names of every span, indexed by
// Span.
func SpanNames() [NumSpans]string { return spanNames }

// stageSpans lists the spans derived from stage pairs at End (the
// chunk-level SpanRingWait / SpanStealDelay are observed separately).
var stageSpans = [...]struct {
	span     Span
	from, to Stage
}{
	{SpanStagingWait, StageSubmit, StageFlushed},
	{SpanDispatchWait, StageFlushed, StageDispatched},
	{SpanCopy, StageCopyStart, StageCopyEnd},
	{SpanCompletionDwell, StageCompleted, StageRetrieved},
	{SpanTotal, StageSubmit, StageRetrieved},
}

// Outcome classifies a finished lifecycle.
type Outcome uint8

// Lifecycle outcomes.
const (
	OutcomeOK Outcome = iota
	OutcomeCanceled
	OutcomeExpired
	OutcomeFailed
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeCanceled:
		return "canceled"
	case OutcomeExpired:
		return "expired"
	default:
		return "failed"
	}
}

// SpanSet is a bundle of per-span latency histograms. Subsystems that
// carry stage timestamps on their own request records feed it directly;
// the Tracer embeds one for the records it manages.
type SpanSet struct {
	spans [NumSpans]obs.Histogram
}

// Observe records one duration (ns, wall or virtual) for a span.
// Nil-safe; negative durations are clamped to zero rather than dropped,
// so a torn clock can never hide a sample.
func (s *SpanSet) Observe(sp Span, d int64) {
	if s == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s.spans[sp].Observe(d)
}

// ObserveStamps derives and records every stage-pair span whose
// endpoints are both stamped (nonzero). The chunk-level spans are not
// derivable from stamps and are untouched.
func (s *SpanSet) ObserveStamps(ts *[NumStages]int64) {
	if s == nil {
		return
	}
	for _, d := range stageSpans {
		from, to := ts[d.from], ts[d.to]
		if from == 0 || to == 0 {
			continue
		}
		s.Observe(d.span, to-from)
	}
}

// Stamps assembles a stage-stamp array from the seven stage times of a
// request record (0 = stage never reached) — the bridge for subsystems
// whose requests carry their own timestamps, like the simulated core
// device's MovReq. Feed the result to ObserveStamps.
func Stamps(submit, flushed, dispatched, copyStart, copyEnd, completed, retrieved int64) [NumStages]int64 {
	var ts [NumStages]int64
	ts[StageSubmit] = submit
	ts[StageFlushed] = flushed
	ts[StageDispatched] = dispatched
	ts[StageCopyStart] = copyStart
	ts[StageCopyEnd] = copyEnd
	ts[StageCompleted] = completed
	ts[StageRetrieved] = retrieved
	return ts
}

// Snapshot captures every span histogram. Nil-safe (zero snapshot).
func (s *SpanSet) Snapshot() SpanSnapshot {
	var out SpanSnapshot
	if s == nil {
		return out
	}
	for i := range s.spans {
		out.Spans[i] = s.spans[i].Snapshot()
	}
	return out
}

// SpanSnapshot is a point-in-time copy of a SpanSet, indexed by Span.
type SpanSnapshot struct {
	Spans [NumSpans]obs.HistogramSnapshot
}

// Delta returns the per-span samples accumulated between prev and s —
// the steady-state window of a benchmark.
func (s SpanSnapshot) Delta(prev SpanSnapshot) SpanSnapshot {
	var out SpanSnapshot
	for i := range s.Spans {
		out.Spans[i] = s.Spans[i].Delta(prev.Spans[i])
	}
	return out
}

// Request-path flags recorded on a lifecycle — how the request was
// served, for outlier forensics ("slow because it was NOT inlined and
// its chunks sat un-stolen").
const (
	// FlagInline: the worker copied the request inline instead of
	// dispatching chunks to the controllers.
	FlagInline uint32 = 1 << 0
	// FlagStolen: at least one chunk was stolen by a non-owning
	// controller.
	FlagStolen uint32 = 1 << 1
)

// Lifecycle is one completed, captured request lifecycle: the slot it
// ran in, a global order stamp (0 when the lifecycle was unsampled),
// the payload size, the priority class (0 on pipelines without
// classes), the outcome, the path flags, and the raw stage timestamps
// (0 = stage never reached).
type Lifecycle struct {
	Seq     uint64
	Slot    int
	Class   int
	Bytes   int64
	Outcome Outcome
	Flags   uint32
	TS      [NumStages]int64
}

// record is the preallocated per-slot state. active gates stamping
// (sampled lifecycles only); sampled additionally gates the histogram
// and capture-ring work at End. count drives the sampling decision
// slot-locally, so an unsampled Begin never touches a cacheline shared
// across submitters.
type record struct {
	count   atomic.Uint64
	active  atomic.Uint32
	sampled atomic.Uint32
	flags   atomic.Uint32
	class   atomic.Uint32
	bytes   atomic.Int64
	seq     atomic.Uint64
	outcome atomic.Uint32
	ts      [NumStages]atomic.Int64
}

// captureSlot is one lock-free capture-ring entry. Like obs.Trace, the
// seq word is stored last so a fully published slot is identifiable;
// a slot mid-rewrite at snapshot time may carry mixed stamps — accepted
// for a diagnostic ring, and never a data race (every field is atomic).
type captureSlot struct {
	seq     atomic.Uint64
	slot    atomic.Int64
	class   atomic.Uint32
	bytes   atomic.Int64
	outcome atomic.Uint32
	flags   atomic.Uint32
	ts      [NumStages]atomic.Int64
}

// DefaultCaptureDepth is the capture-ring depth when the caller passes 0.
const DefaultCaptureDepth = 256

// Tracer owns the per-slot records of one device and the histograms
// derived from them. A nil *Tracer is valid and records nothing.
type Tracer struct {
	mask       uint64 // sample when (seq-1)&mask == 0
	shift      int
	recs       []record
	seq        atomic.Uint64
	begun      obs.Counter
	ended      obs.Counter
	aborted    obs.Counter
	spans      SpanSet
	classSpans []SpanSet // per-class attribution; empty without classes
	capture    []captureSlot
	capCur     atomic.Uint64
}

// New returns a tracer for slots request slots sampling one request in
// 2^sampleShift (shift 0 = every request, the full-capture mode), with
// a captureDepth-deep completed-lifecycle ring (0 = DefaultCaptureDepth).
// classes > 0 additionally attributes every span to the request's
// priority class (Begin's class argument), giving per-class stage
// latencies alongside the global ones. A negative sampleShift returns
// nil — tracing disabled; every method is nil-safe.
func New(slots, sampleShift, captureDepth, classes int) *Tracer {
	if sampleShift < 0 || slots <= 0 {
		return nil
	}
	if sampleShift > 62 {
		sampleShift = 62
	}
	if captureDepth <= 0 {
		captureDepth = DefaultCaptureDepth
	}
	if classes < 0 {
		classes = 0
	}
	return &Tracer{
		mask:       uint64(1)<<uint(sampleShift) - 1,
		shift:      sampleShift,
		recs:       make([]record, slots),
		classSpans: make([]SpanSet, classes),
		capture:    make([]captureSlot, captureDepth),
	}
}

// SampleShift reports the configured shift (-1 on a nil tracer).
func (t *Tracer) SampleShift() int {
	if t == nil {
		return -1
	}
	return t.shift
}

// Begin opens a lifecycle on slot, making the sampling decision and —
// when sampled — stamping StageSubmit with nano. class attributes the
// lifecycle's spans to a priority class (pass 0 on pipelines without
// classes). It reports whether the lifecycle is sampled. A previous
// lifecycle left un-ended on the slot (an aborted submission) is
// overwritten.
//
// The decision counts slot-locally — each slot samples its own 1st,
// 2^shift+1'th, ... request — so the unsampled path costs a counter
// bump and a mask test on the slot's own cacheline, never a contended
// RMW on tracer-global state. The global Seq order stamp is taken only
// for sampled lifecycles (1 in 2^shift), where its cost vanishes.
func (t *Tracer) Begin(slot, class int, bytes, nano int64) bool {
	if t == nil || slot >= len(t.recs) {
		return false
	}
	r := &t.recs[slot]
	c := r.count.Add(1)
	sampled := (c-1)&t.mask == 0
	if !sampled {
		if r.active.Load() != 0 {
			r.active.Store(0) // clear a lifecycle left open by a failed submit
		}
		return false
	}
	for i := 1; i < NumStages; i++ {
		r.ts[i].Store(0)
	}
	r.ts[StageSubmit].Store(nano)
	r.class.Store(uint32(class))
	r.bytes.Store(bytes)
	r.flags.Store(0)
	r.outcome.Store(uint32(OutcomeOK))
	// The global order stamp is taken only for sampled lifecycles
	// (1 in 2^shift), where its contended-RMW cost vanishes.
	r.seq.Store(t.seq.Add(1))
	r.sampled.Store(1)
	t.begun.Inc()
	r.active.Store(1)
	return true
}

// Active reports whether slot has an open lifecycle being stamped —
// the one-atomic-load check stamping sites use before reading a clock.
func (t *Tracer) Active(slot int) bool {
	return t != nil && slot < len(t.recs) && t.recs[slot].active.Load() != 0
}

// Sampled reports whether the lifecycle currently open on slot is
// sampled — the check sites feeding histograms (and other per-sample
// costs, like a chunk push timestamp) use. Implies Active.
func (t *Tracer) Sampled(slot int) bool {
	if t == nil || slot >= len(t.recs) {
		return false
	}
	r := &t.recs[slot]
	return r.active.Load() != 0 && r.sampled.Load() != 0
}

// StampPending reports whether slot's open lifecycle still lacks a
// stamp for stage — lets a caller that already paid a clock read for
// an earlier stamp skip re-reading for a stage stamped by a peer.
func (t *Tracer) StampPending(slot int, st Stage) bool {
	if t == nil || slot >= len(t.recs) {
		return false
	}
	r := &t.recs[slot]
	return r.active.Load() != 0 && r.ts[st].Load() == 0
}

// SetFlag ORs a Flag* bit into slot's open lifecycle. Go 1.22 has no
// atomic Or, so this is a CAS loop — uncontended in practice (the
// writers of distinct flags run on different goroutines but rarely on
// the same request at the same instant).
func (t *Tracer) SetFlag(slot int, flag uint32) {
	if t == nil || slot >= len(t.recs) {
		return
	}
	r := &t.recs[slot]
	if r.active.Load() == 0 {
		return
	}
	for {
		old := r.flags.Load()
		if old&flag == flag || r.flags.CompareAndSwap(old, old|flag) {
			return
		}
	}
}

// Transition stamps stage with nano on slot's open lifecycle: one
// atomic store. No-op when the lifecycle is inactive (one atomic load).
func (t *Tracer) Transition(slot int, st Stage, nano int64) {
	if !t.Active(slot) {
		return
	}
	t.recs[slot].ts[st].Store(nano)
}

// TransitionFirst stamps stage only if it has no stamp yet — for stages
// reached concurrently by several goroutines where the earliest wins
// (StageCopyStart across parallel chunk copies).
func (t *Tracer) TransitionFirst(slot int, st Stage, nano int64) {
	if !t.Active(slot) {
		return
	}
	t.recs[slot].ts[st].CompareAndSwap(0, nano)
}

// ObserveQueueWait records a chunk-level dispatch-ring wait for a
// request of the given class; stolen chunks are additionally attributed
// to SpanStealDelay.
func (t *Tracer) ObserveQueueWait(class int, d int64, stolen bool) {
	if t == nil {
		return
	}
	t.spans.Observe(SpanRingWait, d)
	if stolen {
		t.spans.Observe(SpanStealDelay, d)
	}
	if class >= 0 && class < len(t.classSpans) {
		t.classSpans[class].Observe(SpanRingWait, d)
		if stolen {
			t.classSpans[class].Observe(SpanStealDelay, d)
		}
	}
}

// Abort closes slot's open lifecycle without deriving anything — for
// submissions that failed back to the caller (the request never entered
// the pipeline).
func (t *Tracer) Abort(slot int) {
	if t == nil || slot >= len(t.recs) {
		return
	}
	r := &t.recs[slot]
	if r.active.Load() == 0 {
		return
	}
	sampled := r.sampled.Load() != 0
	r.active.Store(0)
	if sampled {
		t.aborted.Inc()
	}
}

// End closes slot's open lifecycle: stamps StageRetrieved with nano,
// derives every stage-pair span into the histograms, and pushes the
// completed lifecycle onto the capture ring. Runs on the application's
// retrieval goroutine, never the device's.
func (t *Tracer) End(slot int, outcome Outcome, nano int64) {
	t.EndInto(slot, outcome, nano, nil)
}

// EndInto is End with one extra attribution target: the derived spans
// are also observed into extra (when non-nil), so a caller can attribute
// the same lifecycle to a second dimension — the realtime device uses it
// for per-tenant stage latencies — without stamping or deriving twice.
//
// It returns the closed lifecycle (complete stamp vector, flags,
// outcome) and whether one was open, so the caller can feed the same
// sampled lifecycle to the flight recorder's breach check without
// re-deriving the stamps.
func (t *Tracer) EndInto(slot int, outcome Outcome, nano int64, extra *SpanSet) (Lifecycle, bool) {
	if t == nil || slot >= len(t.recs) {
		return Lifecycle{}, false
	}
	r := &t.recs[slot]
	if r.active.Load() == 0 {
		return Lifecycle{}, false
	}
	r.ts[StageRetrieved].Store(nano)
	r.outcome.Store(uint32(outcome))
	var ts [NumStages]int64
	for i := range ts {
		ts[i] = r.ts[i].Load()
	}
	class := int(r.class.Load())
	lc := Lifecycle{
		Seq:     r.seq.Load(),
		Slot:    slot,
		Class:   class,
		Bytes:   r.bytes.Load(),
		Outcome: outcome,
		Flags:   r.flags.Load(),
		TS:      ts,
	}
	if r.sampled.Load() != 0 {
		t.spans.ObserveStamps(&ts)
		if extra != nil {
			extra.ObserveStamps(&ts)
		}
		if class < len(t.classSpans) {
			t.classSpans[class].ObserveStamps(&ts)
		}
		t.pushCapture(lc)
		t.ended.Inc()
	}
	r.active.Store(0)
	return lc, true
}

func (t *Tracer) pushCapture(lc Lifecycle) {
	seq := t.capCur.Add(1)
	s := &t.capture[(seq-1)%uint64(len(t.capture))]
	s.slot.Store(int64(lc.Slot))
	s.class.Store(uint32(lc.Class))
	s.bytes.Store(lc.Bytes)
	s.outcome.Store(uint32(lc.Outcome))
	s.flags.Store(lc.Flags)
	for i := range lc.TS {
		s.ts[i].Store(lc.TS[i])
	}
	s.seq.Store(lc.Seq)
}

// Snapshot captures the tracer state: sampling counters, the per-span
// histograms and the retained completed lifecycles in Seq order.
// Nil-safe (zero snapshot, Enabled false).
func (t *Tracer) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{SampleShift: -1}
	}
	s := Snapshot{
		Enabled:     true,
		SampleShift: t.shift,
		Begun:       t.begun.Load(),
		Ended:       t.ended.Load(),
		Aborted:     t.aborted.Load(),
		Spans:       t.spans.Snapshot(),
	}
	if len(t.classSpans) > 0 {
		s.ClassSpans = make([]SpanSnapshot, len(t.classSpans))
		for i := range t.classSpans {
			s.ClassSpans[i] = t.classSpans[i].Snapshot()
		}
	}
	for i := range t.capture {
		cs := &t.capture[i]
		seq := cs.seq.Load()
		if seq == 0 {
			continue
		}
		lc := Lifecycle{
			Seq:     seq,
			Slot:    int(cs.slot.Load()),
			Class:   int(cs.class.Load()),
			Bytes:   cs.bytes.Load(),
			Outcome: Outcome(cs.outcome.Load()),
			Flags:   cs.flags.Load(),
		}
		for j := range lc.TS {
			lc.TS[j] = cs.ts[j].Load()
		}
		s.Captured = append(s.Captured, lc)
	}
	sort.Slice(s.Captured, func(i, j int) bool { return s.Captured[i].Seq < s.Captured[j].Seq })
	return s
}

// Spans captures only the global per-span histograms — the cheap
// accessor for periodic consumers (e.g. an adaptive-threshold retuner)
// that must not pay Snapshot's capture-ring scan. Nil-safe.
func (t *Tracer) Spans() SpanSnapshot {
	if t == nil {
		return SpanSnapshot{}
	}
	return t.spans.Snapshot()
}

// Snapshot is a point-in-time view of a Tracer.
type Snapshot struct {
	// Enabled is false on a disabled (nil) tracer; SampleShift is the
	// configured 1-in-2^k shift (-1 when disabled).
	Enabled     bool
	SampleShift int
	// Begun / Ended / Aborted count sampled lifecycles opened, completed
	// through retrieval, and abandoned by failed submissions.
	Begun, Ended, Aborted int64
	// Spans holds the per-stage latency histograms.
	Spans SpanSnapshot
	// ClassSpans holds the same histograms split by priority class,
	// indexed by class; empty when the tracer was built without classes.
	ClassSpans []SpanSnapshot
	// Captured holds the retained completed lifecycles, oldest first.
	Captured []Lifecycle
}

// chromeEvent is one trace_event entry in the JSON Object Format that
// chrome://tracing and Perfetto load. Timestamps and durations are
// microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// TraceGroup is one process row of a Chrome trace: a named subsystem
// and its captured lifecycles.
type TraceGroup struct {
	Process    string
	Lifecycles []Lifecycle
}

// ChromeTraceJSON renders captured lifecycles as Chrome trace_event
// JSON: one complete ("X") event per derivable span, one thread row per
// request slot, timestamps rebased to the earliest submit so the
// timeline starts near zero. The result loads directly into
// chrome://tracing or ui.perfetto.dev.
func ChromeTraceJSON(process string, lcs []Lifecycle) ([]byte, error) {
	return ChromeTraceGroupsJSON([]TraceGroup{{Process: process, Lifecycles: lcs}})
}

// ChromeTraceGroupsJSON renders several subsystems into one timeline,
// one Chrome "process" per group, sharing a common time base.
func ChromeTraceGroupsJSON(groups []TraceGroup) ([]byte, error) {
	var base int64
	for _, g := range groups {
		for _, lc := range g.Lifecycles {
			if t := lc.TS[StageSubmit]; t != 0 && (base == 0 || t < base) {
				base = t
			}
		}
	}
	us := func(ns int64) float64 { return float64(ns-base) / 1e3 }
	out := chromeTrace{DisplayTimeUnit: "ns"}
	for gi, g := range groups {
		pid := gi + 1
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Cat: "__metadata", Phase: "M", PID: pid,
			Args: map[string]any{"name": g.Process},
		})
		for _, lc := range g.Lifecycles {
			for _, d := range stageSpans {
				if d.span == SpanTotal {
					continue // the per-stage rows already tile the total
				}
				from, to := lc.TS[d.from], lc.TS[d.to]
				if from == 0 || to == 0 {
					continue
				}
				if to < from {
					to = from
				}
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: d.span.String(), Cat: "memif", Phase: "X",
					TS: us(from), Dur: float64(to-from) / 1e3,
					PID: pid, TID: lc.Slot,
					Args: map[string]any{
						"seq": lc.Seq, "bytes": lc.Bytes, "class": lc.Class,
						"outcome": lc.Outcome.String(),
					},
				})
			}
		}
	}
	return json.Marshal(out)
}
