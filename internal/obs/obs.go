// Package obs is the device-side observability layer: lock-free
// counters, high-watermark gauges, power-of-two latency/size histograms,
// and an optional fixed-depth ring-buffer event trace.
//
// Everything here is safe to update from any goroutine — including the
// realtime device's controller goroutines, which play the role of
// interrupt handlers and therefore must never block or take a lock — and
// cheap enough to leave enabled in production. Reads produce snapshots:
// plain structs with no atomics that can be compared, printed, and
// shipped off-box.
//
// The package deliberately knows nothing about what it measures. The
// realtime device, the swap daemon and the streaming runtime each define
// their own metric sets on these primitives and expose typed snapshot
// accessors (e.g. realtime.Device.Stats).
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing lock-free counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a lock-free level gauge tracking both the current value
// (the last sample, via Set/Current) and the high watermark (the
// largest sample ever, via Load). Used for queue depths: the watermark
// says how deep a queue has ever been, the current value what it holds
// right now.
type Gauge struct{ cur, max atomic.Int64 }

// Set records v as the current value, keeping the high watermark.
func (g *Gauge) Set(v int64) {
	g.cur.Store(v)
	g.Observe(v)
}

// Observe records a sample for the watermark only — the hot-path
// variant: below the current maximum it costs one atomic load and no
// store, so per-request call sites stay contention-free. Use Set where
// the current value matters (Current is only meaningful on gauges fed
// through Set).
func (g *Gauge) Observe(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Current returns the last value set.
func (g *Gauge) Current() int64 { return g.cur.Load() }

// Load returns the high watermark.
func (g *Gauge) Load() int64 { return g.max.Load() }

// NumBuckets is the number of histogram buckets: bucket i holds samples
// v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i (bucket 0 holds
// v <= 0). 48 buckets cover every latency in ns up to ~3 days and every
// transfer size up to 128 TB.
const NumBuckets = 48

// Histogram is a lock-free power-of-two histogram. The zero value is
// ready to use.
type Histogram struct {
	buckets    [NumBuckets]atomic.Int64
	count, sum atomic.Int64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot captures the histogram state. The capture is per-field atomic
// but not globally consistent under concurrent writes — counts may be
// off by the handful of samples in flight, which is fine for the
// diagnostic uses this package serves.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count, Sum int64
	Buckets    [NumBuckets]int64
}

// Delta returns the samples accumulated between prev and s — the
// steady-state window a benchmark measures after discarding warmup.
// prev must be an earlier snapshot of the same histogram; per-bucket
// counts are clamped at zero so a torn capture can never go negative.
func (s HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
	if d.Count < 0 {
		d.Count = 0
	}
	for i := range s.Buckets {
		if b := s.Buckets[i] - prev.Buckets[i]; b > 0 {
			d.Buckets[i] = b
		}
	}
	return d
}

// Mean returns the average sample (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1): the
// inclusive upper edge of the bucket the quantile falls in.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for i, b := range s.Buckets {
		seen += b
		if seen > rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// QuantileInterp returns the q-quantile with linear interpolation
// inside the bucket the quantile falls in, assuming samples spread
// uniformly across the bucket's [lower, upper] range. Unlike Quantile —
// which returns the bucket's upper bound and therefore always a power
// of two minus one — this gives a smooth estimate suitable for
// reporting p50/p99 in benchmark output.
func (s HistogramSnapshot) QuantileInterp(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, b := range s.Buckets {
		if b == 0 {
			continue
		}
		bf := float64(b)
		if seen+bf >= rank {
			lower := float64(0)
			if i > 0 {
				lower = float64(int64(1) << uint(i-1))
			}
			upper := float64(BucketUpper(i))
			frac := (rank - seen) / bf
			return lower + (upper-lower)*frac
		}
		seen += bf
	}
	return float64(s.Max())
}

// P999 returns the interpolated 99.9th percentile — the tail the
// flight recorder explains request by request.
func (s HistogramSnapshot) P999() float64 { return s.QuantileInterp(0.999) }

// Quantiles returns the interpolated estimate for each requested
// quantile in one pass per value, in the order given. Report code asks
// for its whole column set at once instead of scattering QuantileInterp
// calls.
func (s HistogramSnapshot) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = s.QuantileInterp(q)
	}
	return out
}

// Max returns the upper bound of the highest occupied bucket.
func (s HistogramSnapshot) Max() int64 {
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return BucketUpper(i)
		}
	}
	return 0
}

// String renders count, mean and the canonical quantiles.
func (s HistogramSnapshot) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.0f p50≤%d p90≤%d p99≤%d max≤%d",
		s.Count, s.Mean(), s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99), s.Max())
}

// Event is one trace entry: a kind code defined by the instrumented
// subsystem, a wall-clock (or virtual) timestamp, and two payload words
// whose meaning the kind defines (typically a request index and a size).
type Event struct {
	Seq  uint64
	Nano int64
	Kind uint32
	A, B uint64
}

// eventSlot is the lock-free storage for one ring slot. seq is stored
// last, so a slot whose seq matches the cursor-derived value has fully
// published fields (for same-slot rewrites the read is best-effort; see
// Snapshot).
type eventSlot struct {
	seq  atomic.Uint64
	nano atomic.Int64
	kind atomic.Uint32
	a, b atomic.Uint64
}

// Trace is a fixed-depth lock-free ring buffer of Events. A nil *Trace
// is valid and records nothing, so instrumentation sites need no
// enabled-checks.
type Trace struct {
	slots  []eventSlot
	cursor atomic.Uint64
}

// NewTrace returns a trace keeping the last depth events, or nil when
// depth <= 0 (tracing disabled).
func NewTrace(depth int) *Trace {
	if depth <= 0 {
		return nil
	}
	return &Trace{slots: make([]eventSlot, depth)}
}

// Record appends an event. Safe from any goroutine; wait-free except for
// the single atomic add. No-op on a nil trace.
func (t *Trace) Record(nano int64, kind uint32, a, b uint64) {
	if t == nil {
		return
	}
	seq := t.cursor.Add(1)
	s := &t.slots[(seq-1)%uint64(len(t.slots))]
	s.nano.Store(nano)
	s.kind.Store(kind)
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(seq)
}

// Snapshot returns the retained events in recording order. Under
// concurrent Record calls the snapshot is best-effort: a slot being
// rewritten at capture time may be dropped or carry mixed fields — an
// accepted property of a diagnostic ring, never a data race.
func (t *Trace) Snapshot() []Event {
	if t == nil {
		return nil
	}
	evs := make([]Event, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		seq := s.seq.Load()
		if seq == 0 {
			continue
		}
		evs = append(evs, Event{
			Seq:  seq,
			Nano: s.nano.Load(),
			Kind: s.kind.Load(),
			A:    s.a.Load(),
			B:    s.b.Load(),
		})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	return evs
}

// FormatEvents renders events one per line through the caller's
// kind-name function.
func FormatEvents(evs []Event, kindName func(uint32) string) string {
	var b strings.Builder
	for _, e := range evs {
		fmt.Fprintf(&b, "%6d %14dns %-10s a=%-6d b=%d\n",
			e.Seq, e.Nano, kindName(e.Kind), e.A, e.B)
	}
	return b.String()
}
