package flight

// SLO burn-rate windows. Each window keeps a small ring of cumulative
// good/total snapshots spaced window/windowEntries apart; once the
// ring has wrapped, its oldest entry is one full window old, and the
// burn over the window is the delta between now and that entry.
// Before the ring fills, the delta spans the available history — a
// freshly started device reports burn over "since start", converging
// to the true window as history accumulates.
//
// Memory is fixed: windowEntries snapshots per window, each carrying
// the per-class counters plus the first maxWindowTenants tenants.
// Tenants beyond the cap fall back to cumulative burn in the snapshot
// (TenantSLO.Windowed false) — with a thousand tenants the windowed
// history would dominate the recorder's footprint for series nobody
// alerts on individually.

const (
	// windowEntries is the per-window history ring size; burn
	// granularity is window/windowEntries.
	windowEntries = 64
	// maxWindowTenants caps per-tenant windowed history.
	maxWindowTenants = 32
)

type sloEntry struct {
	nano       int64
	classGood  [MaxClasses]int64
	classTotal [MaxClasses]int64
	tenGood    [maxWindowTenants]int64
	tenTotal   [maxWindowTenants]int64
}

type wring struct {
	windowNs int64
	interval int64 // windowNs / windowEntries
	last     int64 // nano of the newest entry
	n        int   // entries ever written; index n%windowEntries is next
	entries  [windowEntries]sloEntry
}

func newWring(windowNs int64) *wring {
	if windowNs <= 0 {
		windowNs = 1
	}
	iv := windowNs / windowEntries
	if iv <= 0 {
		iv = 1
	}
	return &wring{windowNs: windowNs, interval: iv}
}

// oldest returns the oldest retained entry, or nil before the first
// tick. Callers hold winMu.
func (w *wring) oldest() *sloEntry {
	if w.n == 0 {
		return nil
	}
	if w.n <= windowEntries {
		return &w.entries[0]
	}
	return &w.entries[w.n%windowEntries]
}

// ProbeState is what the owner's monitor loop feeds the watchdog each
// tick: cheap cumulative counters and live depths, no locks taken.
type ProbeState struct {
	// QueuedWork reports whether any staging or submission queue held
	// work at probe time.
	QueuedWork bool
	// DispatchProgress is a cumulative dispatch counter; the watchdog
	// compares ticks, so any monotone counter works.
	DispatchProgress int64
	// CompletionDepth and CompletionCap describe the fullest
	// completion ring.
	CompletionDepth, CompletionCap int64
	// RetrieveProgress is a cumulative retrieval counter.
	RetrieveProgress int64
}

// Watchdog turns a stream of ProbeStates into typed stall reports.
// It is single-threaded by contract — only the owner's monitor loop
// calls Tick — and latches each condition so a wedged device reports
// once per episode, not once per tick.
type Watchdog struct {
	opts WatchdogOptions

	lastDispatch int64
	lastRetrieve int64
	stallTicks   int
	backlogTicks int
	starveTicks  int
	stallLatch   bool
	backlogLatch bool
	starveLatch  bool
	fired        []Reason
}

// NewWatchdog builds a Watchdog, or nil when disabled.
func NewWatchdog(opts WatchdogOptions) *Watchdog {
	if opts.Disable {
		return nil
	}
	if opts.HighWaterFraction <= 0 || opts.HighWaterFraction > 1 {
		opts.HighWaterFraction = 0.75
	}
	if opts.StallTicks <= 0 {
		opts.StallTicks = 3
	}
	return &Watchdog{opts: opts, fired: make([]Reason, 0, 3)}
}

// Tick evaluates one probe and returns the reasons that newly fired
// this tick (the returned slice is reused across calls — consume it
// before the next Tick). Nil-safe.
func (w *Watchdog) Tick(p ProbeState) []Reason {
	if w == nil {
		return nil
	}
	w.fired = w.fired[:0]

	// Worker stall: queued work, zero dispatch progress.
	if p.QueuedWork && p.DispatchProgress == w.lastDispatch {
		w.stallTicks++
		if w.stallTicks >= w.opts.StallTicks && !w.stallLatch {
			w.stallLatch = true
			w.fired = append(w.fired, ReasonWorkerStall)
		}
	} else {
		w.stallTicks = 0
		w.stallLatch = false
	}
	w.lastDispatch = p.DispatchProgress

	// Completion backlog: a ring above high water.
	if p.CompletionCap > 0 &&
		float64(p.CompletionDepth) >= w.opts.HighWaterFraction*float64(p.CompletionCap) {
		w.backlogTicks++
		if w.backlogTicks >= w.opts.StallTicks && !w.backlogLatch {
			w.backlogLatch = true
			w.fired = append(w.fired, ReasonCompletionBacklog)
		}
	} else {
		w.backlogTicks = 0
		w.backlogLatch = false
	}

	// Poller starvation: completions waiting, nobody retrieving.
	if p.CompletionDepth > 0 && p.RetrieveProgress == w.lastRetrieve {
		w.starveTicks++
		if w.starveTicks >= w.opts.StallTicks && !w.starveLatch {
			w.starveLatch = true
			w.fired = append(w.fired, ReasonPollerStarvation)
		}
	} else {
		w.starveTicks = 0
		w.starveLatch = false
	}
	w.lastRetrieve = p.RetrieveProgress

	return w.fired
}
