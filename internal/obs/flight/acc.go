package flight

// Acc batches the recorder's lane and SLO accounting across one
// completion-retrieve batch. Recorder.Observe costs ~10 atomic RMWs per
// request (EWMA fold, lane count, four SLO counters); on the armed
// always-on path that alone would blow the recorder's overhead budget.
// Acc defers all of it to local arithmetic, folded into the shared
// counters once per batch by Flush — while the breach decision (and the
// breach counter) stays exact per request, so retroactive capture keeps
// its no-sampling-holes contract.
//
// The threshold and warmup state a batch compares against are frozen at
// the lane's first touch in the batch: a breach decision within a batch
// does not see latencies folded by the same batch. At retrieve-batch
// granularity (tens of requests, microseconds) the drift is far below
// the EWMA's own time constant.
//
// An Acc is a plain stack value: Init, Observe per retrieved request,
// Flush when the batch is done. Not safe for concurrent use — each
// retrieving goroutine owns its Acc. All methods are safe when Init was
// given a nil (disarmed) Recorder.
type Acc struct {
	rec   *Recorder
	n     int
	lanes [accBatchLanes]accLane
}

// accBatchLanes bounds the distinct (class, tenant) lanes one batch can
// accumulate locally; a batch touching more spills to the unbatched
// Observe path — correct, just unamortized. Retrieve batches are almost
// always single-tenant and one or two classes deep.
const accBatchLanes = 4

type accLane struct {
	tl     *tenantLanes
	class  int
	tenant int
	thr    int64 // threshold in force at first touch
	obj    int64 // SLO objective (0 = class has none)
	warmed bool
	cnt    int64 // OK observations (EWMA + lane count feed)
	latSum int64
	total  int64 // SLO totals (OK observations on lanes with an objective)
	good   int64
}

// Init points the accumulator at r (nil disarms every method) and
// resets it for a new batch.
func (a *Acc) Init(r *Recorder) {
	a.rec = r
	a.n = 0
}

// Observe is Recorder.Observe with the lane EWMA, lane count, and SLO
// counter updates deferred to Flush. It returns the threshold in force
// and whether latNs breached it; a breach bumps the recorder's breach
// counter immediately so the Captured == Breaches + Stalls + Events
// invariant holds at every instant.
func (a *Acc) Observe(class, tenant int, latNs int64, ok bool) (thresholdNs int64, breach bool) {
	r := a.rec
	if r == nil {
		return 0, false
	}
	if latNs < 0 {
		latNs = 0
	}
	if class < 0 || class >= r.opts.Classes {
		class = 0
	}
	var e *accLane
	for i := 0; i < a.n; i++ {
		if a.lanes[i].class == class && a.lanes[i].tenant == tenant {
			e = &a.lanes[i]
			break
		}
	}
	if e == nil {
		if a.n == len(a.lanes) {
			return r.Observe(class, tenant, latNs, ok) // spill
		}
		tab := *r.lanes.Load()
		ti := tenant
		if ti < 0 || ti >= len(tab) {
			ti = 0
		}
		e = &a.lanes[a.n]
		a.n++
		*e = accLane{tl: tab[ti], class: class, tenant: tenant}
		ln := &e.tl.lane[class]
		e.thr = ln.ewma.Load() * r.mult
		if e.thr < r.floor {
			e.thr = r.floor
		}
		e.warmed = ln.count.Load() >= r.warm
		if r.sloEnabled {
			e.obj = r.objectives[class]
		}
	}
	thresholdNs = e.thr
	if ok {
		e.cnt++
		e.latSum += latNs
		if e.obj > 0 {
			e.total++
			if latNs <= e.obj {
				e.good++
			}
		}
	}
	if e.warmed && latNs > thresholdNs {
		breach = true
		r.breaches.Add(1)
	}
	return thresholdNs, breach
}

// Flush folds the batch into the shared lanes and SLO counters and
// resets the accumulator. The EWMA is advanced one fold per OK
// observation using the batch mean — the same fixed point as per-sample
// folding when the batch is latency-homogeneous, and within one batch's
// variance of it otherwise.
func (a *Acc) Flush() {
	r := a.rec
	if r == nil || a.n == 0 {
		return
	}
	for i := 0; i < a.n; i++ {
		e := &a.lanes[i]
		if e.cnt > 0 {
			ln := &e.tl.lane[e.class]
			mean := e.latSum / e.cnt
			ewma := ln.ewma.Load()
			n0 := ln.count.Load()
			k := e.cnt
			if n0 == 0 {
				ewma = mean
				k--
			}
			for ; k > 0; k-- {
				ewma += (mean - ewma) >> r.shift
			}
			ln.ewma.Store(ewma)
			ln.count.Store(n0 + e.cnt)
			if e.total > 0 {
				r.classTotal[e.class].Add(e.total)
				e.tl.total.Add(e.total)
				if e.good > 0 {
					r.classGood[e.class].Add(e.good)
					e.tl.good.Add(e.good)
				}
			}
		}
		a.lanes[i] = accLane{}
	}
	a.n = 0
}
