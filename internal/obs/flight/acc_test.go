package flight

import "testing"

// Feeding homogeneous batches through an Acc must land on exactly the
// same lane state, breach decisions, and SLO counters as per-request
// Observe calls: the batch-mean fold is the same fixed point when every
// latency in the batch is equal.
func TestAccMatchesObserve(t *testing.T) {
	opts := Options{
		ThresholdFloorNs: 1, ThresholdMult: 4, EWMAShift: 3, Warmup: 4,
		SLO: SLOOptions{ClassObjectiveNs: [MaxClasses]int64{0: 10_000}},
	}
	direct := New(opts)
	batched := New(opts)

	// Batches of equal latencies, climbing so later ones breach.
	batches := [][]int64{
		{1_000, 1_000, 1_000, 1_000},
		{2_000, 2_000},
		{100_000}, // breach: far past 4x the trained EWMA
		{3_000, 3_000, 3_000},
	}
	// Per-observation thresholds legitimately differ inside a batch (the
	// accumulator freezes the lane's threshold at first touch; direct
	// Observe re-derives it every call), so the equivalence claim is on
	// the folded end state, not on intermediate readings.
	for _, lats := range batches {
		var acc Acc
		acc.Init(batched)
		for _, lat := range lats {
			direct.Observe(0, 0, lat, true)
			acc.Observe(0, 0, lat, true)
		}
		acc.Flush()
	}

	ds, bs := direct.Snapshot(), batched.Snapshot()
	if ds.Breaches != bs.Breaches || ds.Breaches == 0 {
		t.Fatalf("breaches: direct %d vs batched %d", ds.Breaches, bs.Breaches)
	}
	if len(ds.Thresholds) != 1 || len(bs.Thresholds) != 1 {
		t.Fatalf("lane counts: direct %d vs batched %d", len(ds.Thresholds), len(bs.Thresholds))
	}
	if ds.Thresholds[0] != bs.Thresholds[0] {
		t.Fatalf("lane state diverged:\n direct  %+v\n batched %+v",
			ds.Thresholds[0], bs.Thresholds[0])
	}
	dc, bc := ds.SLO.Classes[0], bs.SLO.Classes[0]
	if dc.Good != bc.Good || dc.Total != bc.Total || dc.Good == 0 {
		t.Fatalf("SLO diverged: direct %d/%d vs batched %d/%d",
			dc.Good, dc.Total, bc.Good, bc.Total)
	}
}

// A batch touching more distinct lanes than the accumulator holds must
// spill to the unbatched path without losing any accounting.
func TestAccSpillPastLaneCapacity(t *testing.T) {
	opts := Options{ThresholdFloorNs: 1, Warmup: 1, Classes: 2}
	r := New(opts)
	r.EnsureTenants(4)

	var acc Acc
	acc.Init(r)
	// 2 classes x 4 tenants = 8 lanes, double the accumulator's 4.
	for class := 0; class < 2; class++ {
		for tenant := 0; tenant < 4; tenant++ {
			acc.Observe(class, tenant, 5_000, true)
		}
	}
	acc.Flush()

	s := r.Snapshot()
	if len(s.Thresholds) != 8 {
		t.Fatalf("trained %d lanes, want 8: %+v", len(s.Thresholds), s.Thresholds)
	}
	for _, th := range s.Thresholds {
		if th.Count != 1 || th.EWMANs != 5_000 {
			t.Fatalf("lane (%d,%d): count %d ewma %d, want 1 / 5000",
				th.Class, th.Tenant, th.Count, th.EWMANs)
		}
	}
}

// The breach counter must advance at Observe time, not at Flush: the
// capture that follows a breach decision bumps Captured immediately, and
// Captured == Breaches + Stalls + Events has to hold at every instant.
func TestAccBreachCountsBeforeFlush(t *testing.T) {
	r := New(Options{ThresholdFloorNs: 1, Warmup: 1})
	r.Observe(0, 0, 1_000, true) // warm + train

	var acc Acc
	acc.Init(r)
	if _, breach := acc.Observe(0, 0, 1_000_000, true); !breach {
		t.Fatal("1000x latency not flagged through the accumulator")
	}
	if got := r.Snapshot().Breaches; got != 1 {
		t.Fatalf("breaches = %d before Flush, want 1", got)
	}
	acc.Flush()
	if got := r.Snapshot().Breaches; got != 1 {
		t.Fatalf("breaches = %d after Flush, want 1", got)
	}
}

// Every Acc method must be safe against a nil (disarmed) recorder and
// against reuse after Flush.
func TestAccNilAndReuse(t *testing.T) {
	var acc Acc
	acc.Init(nil)
	if thr, breach := acc.Observe(0, 0, 1e9, true); thr != 0 || breach {
		t.Fatalf("nil-recorder Observe = (%d, %v), want (0, false)", thr, breach)
	}
	acc.Flush()

	r := New(Options{ThresholdFloorNs: 1, Warmup: 1})
	acc.Init(r)
	for i := 0; i < 3; i++ {
		acc.Observe(0, 0, 2_000, true)
	}
	acc.Flush()
	acc.Init(r) // new batch on the same accumulator
	acc.Observe(0, 0, 2_000, true)
	acc.Flush()
	s := r.Snapshot()
	if len(s.Thresholds) != 1 || s.Thresholds[0].Count != 4 {
		t.Fatalf("reused accumulator lost observations: %+v", s.Thresholds)
	}
}
