// Package flight is the always-on flight recorder: retroactive
// tail-latency forensics for the realtime pipeline and the tiering
// daemon.
//
// The lifecycle tracer (PR 4) answers "where does a *typical* request
// spend its time" by sampling 1/128 of requests into span histograms.
// It cannot answer "why was *this* request slow" — at 1/128 the p99.9
// outlier is almost never sampled. The flight recorder closes that gap
// with three cooperating pieces:
//
//   - Retroactive outlier capture. Stage stamping is left on for every
//     request (one atomic store per transition); at retrieval the total
//     latency is compared against an adaptive per-(class,tenant)
//     threshold — an EWMA of recent completions, scaled by a
//     multiplier and clamped by a floor. A breaching request has its
//     full seven-stage stamp vector plus ambient device state copied
//     into a bounded lock-free ring. Sampling still feeds the
//     aggregate histograms; every outlier is explained.
//
//   - Stall watchdog. A monitor goroutine ticks a Watchdog with a
//     cheap progress probe; a worker making no dispatch progress while
//     queues are non-empty, a completion ring above high water for N
//     consecutive ticks, or a poller retrieving nothing while
//     completions wait each snapshot device state into the same ring
//     with a typed reason.
//
//   - SLO tracker. Per-class latency objectives with multi-window
//     burn-rate accounting (good/total deltas against per-window
//     history rings), per tenant as well as per class, exported as the
//     memif_realtime_slo_* series.
//
// Everything here is nil-safe: a nil *Recorder or *Watchdog turns
// every method into a no-op, so callers gate arming once at
// construction and never branch again.
package flight

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"memif/internal/obs/lifecycle"
)

// Kind says what put a record into the ring.
type Kind uint8

const (
	// KindLatency is a completed request whose total latency breached
	// the adaptive threshold; the stamp vector is complete.
	KindLatency Kind = iota
	// KindStall is a watchdog snapshot: no single request, but the
	// device was wedged in a recognizable way.
	KindStall
	// KindEvent is a domain event captured by a client (swapd txn
	// aborts, promotion-lag breaches).
	KindEvent
	numKinds
)

var kindNames = [numKinds]string{"latency", "stall", "event"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON renders the kind as its name so /debug/outliers stays
// readable without a decoder ring.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON accepts either the name or the raw number.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		for i, n := range kindNames {
			if n == s {
				*k = Kind(i)
				return nil
			}
		}
		return fmt.Errorf("flight: unknown kind %q", s)
	}
	var v uint8
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*k = Kind(v)
	return nil
}

// Reason types a stall or event record.
type Reason uint8

const (
	// ReasonNone marks plain latency outliers.
	ReasonNone Reason = iota
	// ReasonWorkerStall: queues non-empty, zero dispatch progress for
	// StallTicks consecutive watchdog ticks.
	ReasonWorkerStall
	// ReasonCompletionBacklog: a completion ring at or above the
	// high-water fraction of its capacity for StallTicks ticks.
	ReasonCompletionBacklog
	// ReasonPollerStarvation: completions waiting, zero retrieval
	// progress for StallTicks ticks.
	ReasonPollerStarvation
	// ReasonTxnAbort: a transactional migration aborted by racing
	// application writes (swapd).
	ReasonTxnAbort
	// ReasonPromotionLag: a promotion committed long after its region
	// turned hot (swapd).
	ReasonPromotionLag
	numReasons
)

var reasonNames = [numReasons]string{
	"none", "worker_stall", "completion_backlog", "poller_starvation",
	"txn_abort", "promotion_lag",
}

func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// MarshalJSON renders the reason as its name.
func (r Reason) MarshalJSON() ([]byte, error) { return json.Marshal(r.String()) }

// UnmarshalJSON accepts either the name or the raw number.
func (r *Reason) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		for i, n := range reasonNames {
			if n == s {
				*r = Reason(i)
				return nil
			}
		}
		return fmt.Errorf("flight: unknown reason %q", s)
	}
	var v uint8
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*r = Reason(v)
	return nil
}

// MaxClasses bounds the per-class lane and SLO arrays. The realtime
// device uses 3 QoS classes; swapd borrows lane 3 for promotion-lag
// tracking, so the recorder is sized one wider.
const MaxClasses = 4

// Ambient is the device state snapshotted alongside an outlier: the
// congestion picture at capture time, so a slow request can be read in
// context ("the ring was 7/8 full and scavengers held 40 slots").
type Ambient struct {
	StagingDepth    int64             `json:"staging_depth"`
	SubmissionDepth int64             `json:"submission_depth"`
	CompletionDepth int64             `json:"completion_depth"`
	RingDepth       int64             `json:"ring_depth"`
	ClassInFlight   [MaxClasses]int64 `json:"class_in_flight"`
}

// Outlier is one captured record: a breaching request's identity, its
// full stamp vector, the threshold it breached, and the ambient device
// state. Stall and event records reuse the shape with a typed reason
// and whatever identity fields apply.
type Outlier struct {
	// Seq is the capture ticket: a dense, monotonically increasing id
	// assigned at push. Snapshot returns records in Seq order.
	Seq    uint64 `json:"seq"`
	Kind   Kind   `json:"kind"`
	Reason Reason `json:"reason"`
	// Nano is the capture timestamp (device clock: wall ns for the
	// realtime device, virtual ns for swapd).
	Nano   int64  `json:"nano"`
	Slot   int32  `json:"slot"`
	Class  int32  `json:"class"`
	Tenant uint32 `json:"tenant"`
	Bytes  int64  `json:"bytes"`
	// Outcome is the lifecycle outcome code (lifecycle.Outcome).
	Outcome int32 `json:"outcome"`
	// Flags carries lifecycle.Flag* bits (inline-completed, stolen).
	Flags       uint32 `json:"flags"`
	LatencyNs   int64  `json:"latency_ns"`
	ThresholdNs int64  `json:"threshold_ns"`
	// TS is the seven-stage stamp vector (lifecycle stage order);
	// zero entries mean the stage was never reached.
	TS      [lifecycle.NumStages]int64 `json:"ts"`
	Ambient Ambient                    `json:"ambient"`
}

// Options configures a Recorder. The zero value means "armed with
// defaults"; set Disable to opt out entirely.
type Options struct {
	// Disable turns the recorder off; New returns nil and every
	// call site no-ops.
	Disable bool
	// RingDepth bounds the outlier ring (rounded up to a power of
	// two). Default 512.
	RingDepth int
	// ThresholdFloorNs clamps the adaptive threshold from below so a
	// fast lane doesn't flag microsecond jitter as outliers.
	// Default 50µs.
	ThresholdFloorNs int64
	// ThresholdMult scales the lane EWMA into the breach threshold:
	// threshold = max(floor, mult × ewma). Default 4.
	ThresholdMult int64
	// EWMAShift is the EWMA decay: ewma += (lat - ewma) >> shift.
	// Default 3 (α = 1/8).
	EWMAShift int
	// Warmup is the number of OK completions a (class,tenant) lane
	// must see before breaches arm; the first requests of a cold lane
	// train the EWMA instead of flooding the ring. Default 16.
	Warmup int64
	// Classes is how many class lanes are live (≤ MaxClasses);
	// out-of-range classes clamp to 0. Default MaxClasses.
	Classes int
	// SLO configures objective tracking; Watchdog the stall monitor
	// thresholds (the Watchdog itself is a separate object driven by
	// the owner's monitor loop).
	SLO      SLOOptions
	Watchdog WatchdogOptions
}

// SLOOptions configures burn-rate tracking.
type SLOOptions struct {
	// Disable turns SLO accounting off while leaving outlier capture
	// armed.
	Disable bool
	// ClassObjectiveNs is the latency objective per class; 0 leaves a
	// class untracked. If every entry is zero the defaults apply:
	// 2ms foreground, 20ms background, 100ms scavenger.
	ClassObjectiveNs [MaxClasses]int64
	// BudgetFraction is the error budget: burn rate 1.0 means the
	// bad-request fraction exactly consumes budget. Default 0.001
	// (99.9% objective).
	BudgetFraction float64
	// Windows are the burn-rate windows. Default 1s, 10s, 60s.
	Windows []time.Duration
}

// WatchdogOptions configures stall detection.
type WatchdogOptions struct {
	// Disable turns the watchdog off.
	Disable bool
	// HighWaterFraction is the completion-backlog trip point as a
	// fraction of ring capacity. Default 0.75.
	HighWaterFraction float64
	// StallTicks is how many consecutive bad ticks arm a report.
	// Default 3.
	StallTicks int
}

func (o Options) withDefaults() Options {
	if o.RingDepth <= 0 {
		o.RingDepth = 512
	}
	// Round up to a power of two so the ring index is a mask.
	d := 1
	for d < o.RingDepth {
		d <<= 1
	}
	o.RingDepth = d
	if o.ThresholdFloorNs <= 0 {
		o.ThresholdFloorNs = 50_000
	}
	if o.ThresholdMult <= 0 {
		o.ThresholdMult = 4
	}
	if o.EWMAShift <= 0 {
		o.EWMAShift = 3
	}
	if o.Warmup <= 0 {
		o.Warmup = 16
	}
	if o.Classes <= 0 || o.Classes > MaxClasses {
		o.Classes = MaxClasses
	}
	zero := true
	for _, v := range o.SLO.ClassObjectiveNs {
		if v != 0 {
			zero = false
		}
	}
	if zero {
		o.SLO.ClassObjectiveNs = [MaxClasses]int64{2e6, 20e6, 100e6, 0}
	}
	if o.SLO.BudgetFraction <= 0 {
		o.SLO.BudgetFraction = 0.001
	}
	if len(o.SLO.Windows) == 0 {
		o.SLO.Windows = []time.Duration{time.Second, 10 * time.Second, 60 * time.Second}
	}
	if o.Watchdog.HighWaterFraction <= 0 || o.Watchdog.HighWaterFraction > 1 {
		o.Watchdog.HighWaterFraction = 0.75
	}
	if o.Watchdog.StallTicks <= 0 {
		o.Watchdog.StallTicks = 3
	}
	return o
}

// lane is one (class,tenant) EWMA cell. Updates are racy-lossy by
// design: two concurrent completions may each fold into the same old
// value and one update wins — the EWMA converges regardless, and the
// hot path pays two atomic loads and two stores, no RMW contention.
type lane struct {
	ewma  atomic.Int64
	count atomic.Int64
}

// tenantLanes is one tenant's row: a lane per class plus the tenant's
// SLO good/total counters.
type tenantLanes struct {
	lane  [MaxClasses]lane
	good  atomic.Int64
	total atomic.Int64
}

// slotRec is one ring slot with every field atomic, seq stored last
// with release ordering. A reader that loads a matching seq sees the
// fields of that capture; a slot being overwritten concurrently can
// surface a torn record only across ring wrap, where the seq check
// filters it. No field is ever read non-atomically, so the race
// detector is satisfied without a lock on the capture path.
type slotRec struct {
	seq     atomic.Uint64
	nano    atomic.Int64
	bytes   atomic.Int64
	lat     atomic.Int64
	thr     atomic.Int64
	slot    atomic.Int32
	class   atomic.Int32
	outcome atomic.Int32
	tenant  atomic.Uint32
	flags   atomic.Uint32
	kind    atomic.Uint32
	reason  atomic.Uint32
	ts      [lifecycle.NumStages]atomic.Int64
	amb     [4 + MaxClasses]atomic.Int64
}

func (s *slotRec) store(seq uint64, o *Outlier) {
	s.seq.Store(0) // invalidate while the fields are in flux
	s.nano.Store(o.Nano)
	s.bytes.Store(o.Bytes)
	s.lat.Store(o.LatencyNs)
	s.thr.Store(o.ThresholdNs)
	s.slot.Store(o.Slot)
	s.class.Store(o.Class)
	s.outcome.Store(o.Outcome)
	s.tenant.Store(o.Tenant)
	s.flags.Store(o.Flags)
	s.kind.Store(uint32(o.Kind))
	s.reason.Store(uint32(o.Reason))
	for i := range s.ts {
		s.ts[i].Store(o.TS[i])
	}
	s.amb[0].Store(o.Ambient.StagingDepth)
	s.amb[1].Store(o.Ambient.SubmissionDepth)
	s.amb[2].Store(o.Ambient.CompletionDepth)
	s.amb[3].Store(o.Ambient.RingDepth)
	for i := 0; i < MaxClasses; i++ {
		s.amb[4+i].Store(o.Ambient.ClassInFlight[i])
	}
	s.seq.Store(seq)
}

func (s *slotRec) load() (Outlier, bool) {
	seq := s.seq.Load()
	if seq == 0 {
		return Outlier{}, false
	}
	o := Outlier{
		Seq:         seq,
		Kind:        Kind(s.kind.Load()),
		Reason:      Reason(s.reason.Load()),
		Nano:        s.nano.Load(),
		Slot:        s.slot.Load(),
		Class:       s.class.Load(),
		Tenant:      s.tenant.Load(),
		Bytes:       s.bytes.Load(),
		Outcome:     s.outcome.Load(),
		Flags:       s.flags.Load(),
		LatencyNs:   s.lat.Load(),
		ThresholdNs: s.thr.Load(),
	}
	for i := range o.TS {
		o.TS[i] = s.ts[i].Load()
	}
	o.Ambient = Ambient{
		StagingDepth:    s.amb[0].Load(),
		SubmissionDepth: s.amb[1].Load(),
		CompletionDepth: s.amb[2].Load(),
		RingDepth:       s.amb[3].Load(),
	}
	for i := 0; i < MaxClasses; i++ {
		o.Ambient.ClassInFlight[i] = s.amb[4+i].Load()
	}
	return o, true
}

// Recorder is the flight recorder: adaptive thresholds, the outlier
// ring, and SLO accounting. All methods are safe on a nil receiver.
type Recorder struct {
	opts  Options
	shift uint
	floor int64
	mult  int64
	warm  int64

	head atomic.Uint64 // capture ticket; ring index is (ticket-1)&mask
	ring []slotRec
	mask uint64

	breaches atomic.Int64 // Observe returned breach=true
	stalls   atomic.Int64 // CaptureStall calls
	events   atomic.Int64 // CaptureEvent calls
	captured atomic.Int64 // ring pushes (all kinds)

	// lanes is the COW tenant table: readers load once, EnsureTenants
	// grows under laneMu. Index 0 is the default tenant.
	laneMu sync.Mutex
	lanes  atomic.Pointer[[]*tenantLanes]

	sloEnabled bool
	objectives [MaxClasses]int64
	budget     float64
	classGood  [MaxClasses]atomic.Int64
	classTotal [MaxClasses]atomic.Int64

	winMu   sync.Mutex
	windows []*wring
}

// New builds a Recorder, or returns nil when opts.Disable is set — the
// nil recorder is the disabled recorder.
func New(opts Options) *Recorder {
	if opts.Disable {
		return nil
	}
	opts = opts.withDefaults()
	r := &Recorder{
		opts:  opts,
		shift: uint(opts.EWMAShift),
		floor: opts.ThresholdFloorNs,
		mult:  opts.ThresholdMult,
		warm:  opts.Warmup,
		ring:  make([]slotRec, opts.RingDepth),
		mask:  uint64(opts.RingDepth - 1),
	}
	tab := []*tenantLanes{new(tenantLanes)}
	r.lanes.Store(&tab)
	if !opts.SLO.Disable {
		r.sloEnabled = true
		r.objectives = opts.SLO.ClassObjectiveNs
		r.budget = opts.SLO.BudgetFraction
		for _, w := range opts.SLO.Windows {
			r.windows = append(r.windows, newWring(int64(w)))
		}
	}
	return r
}

// EnsureTenants grows the lane table to cover at least n tenants.
// Existing lanes keep their state; growth is copy-on-write so Observe
// never sees a table mid-append.
func (r *Recorder) EnsureTenants(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.laneMu.Lock()
	defer r.laneMu.Unlock()
	old := *r.lanes.Load()
	if len(old) >= n {
		return
	}
	tab := make([]*tenantLanes, n)
	copy(tab, old)
	for i := len(old); i < n; i++ {
		tab[i] = new(tenantLanes)
	}
	r.lanes.Store(&tab)
}

// Observe folds one completed request into the recorder: the lane
// EWMA (OK outcomes only — a canceled request's latency says nothing
// about the lane), SLO accounting, and the breach decision. It returns
// the threshold in force and whether the latency breached it; the
// caller captures on breach. Zero-allocation, lock-free.
func (r *Recorder) Observe(class, tenant int, latNs int64, ok bool) (thresholdNs int64, breach bool) {
	if r == nil {
		return 0, false
	}
	if latNs < 0 {
		latNs = 0
	}
	if class < 0 || class >= r.opts.Classes {
		class = 0
	}
	tab := *r.lanes.Load()
	if tenant < 0 || tenant >= len(tab) {
		tenant = 0
	}
	tl := tab[tenant]
	ln := &tl.lane[class]
	old := ln.ewma.Load()
	n := ln.count.Load()
	thresholdNs = old * r.mult
	if thresholdNs < r.floor {
		thresholdNs = r.floor
	}
	if ok {
		if n == 0 {
			ln.ewma.Store(latNs)
		} else {
			ln.ewma.Store(old + (latNs-old)>>r.shift)
		}
		ln.count.Store(n + 1)
		if r.sloEnabled {
			if obj := r.objectives[class]; obj > 0 {
				r.classTotal[class].Add(1)
				tl.total.Add(1)
				if latNs <= obj {
					r.classGood[class].Add(1)
					tl.good.Add(1)
				}
			}
		}
	}
	if n < r.warm {
		return thresholdNs, false
	}
	breach = latNs > thresholdNs
	if breach {
		r.breaches.Add(1)
	}
	return thresholdNs, breach
}

// Capture pushes o into the ring, assigning its Seq. The caller keeps
// ownership of o (pass a stack value); nothing is retained, nothing
// allocates.
func (r *Recorder) Capture(o *Outlier) {
	if r == nil {
		return
	}
	seq := r.head.Add(1)
	r.ring[(seq-1)&r.mask].store(seq, o)
	r.captured.Add(1)
}

// CaptureStall records a watchdog finding: no single request, just the
// typed reason and the ambient congestion picture.
func (r *Recorder) CaptureStall(reason Reason, nano int64, amb Ambient) {
	if r == nil {
		return
	}
	r.stalls.Add(1)
	o := Outlier{Kind: KindStall, Reason: reason, Nano: nano, Slot: -1, Class: -1, Ambient: amb}
	r.Capture(&o)
}

// CaptureEvent records a domain event (swapd txn abort, promotion
// lag); o.Kind is forced to KindEvent.
func (r *Recorder) CaptureEvent(o *Outlier) {
	if r == nil {
		return
	}
	r.events.Add(1)
	o.Kind = KindEvent
	r.Capture(o)
}

// Tick advances the SLO window rings; the owner's monitor loop calls
// it periodically with the device clock. Zero-allocation.
func (r *Recorder) Tick(nano int64) {
	if r == nil || !r.sloEnabled {
		return
	}
	r.winMu.Lock()
	for _, w := range r.windows {
		if w.n != 0 && nano-w.last < w.interval {
			continue
		}
		e := &w.entries[w.n%windowEntries]
		e.nano = nano
		for c := 0; c < MaxClasses; c++ {
			e.classGood[c] = r.classGood[c].Load()
			e.classTotal[c] = r.classTotal[c].Load()
		}
		tab := *r.lanes.Load()
		nt := len(tab)
		if nt > maxWindowTenants {
			nt = maxWindowTenants
		}
		for t := 0; t < nt; t++ {
			e.tenGood[t] = tab[t].good.Load()
			e.tenTotal[t] = tab[t].total.Load()
		}
		w.n++
		w.last = nano
	}
	r.winMu.Unlock()
}

// LaneThreshold is one active lane's adaptive state.
type LaneThreshold struct {
	Class       int   `json:"class"`
	Tenant      int   `json:"tenant"`
	EWMANs      int64 `json:"ewma_ns"`
	ThresholdNs int64 `json:"threshold_ns"`
	Count       int64 `json:"count"`
}

// WindowBurn is the burn rate over one window. Burn 1.0 means the
// bad-request fraction over the window exactly consumes the budget.
type WindowBurn struct {
	WindowNs int64   `json:"window_ns"`
	Burn     float64 `json:"burn"`
}

// ClassSLO is one class's objective state.
type ClassSLO struct {
	Class       int          `json:"class"`
	ObjectiveNs int64        `json:"objective_ns"`
	Good        int64        `json:"good"`
	Total       int64        `json:"total"`
	Burn        []WindowBurn `json:"burn"`
}

// TenantSLO is one tenant's objective state. Windowed reports whether
// per-window history was kept (the first maxWindowTenants tenants);
// beyond the cap Burn carries a single cumulative entry (WindowNs 0).
type TenantSLO struct {
	Tenant   int          `json:"tenant"`
	Good     int64        `json:"good"`
	Total    int64        `json:"total"`
	Windowed bool         `json:"windowed"`
	Burn     []WindowBurn `json:"burn"`
}

// SLOSnapshot is the burn-rate view.
type SLOSnapshot struct {
	Enabled        bool        `json:"enabled"`
	BudgetFraction float64     `json:"budget_fraction"`
	Classes        []ClassSLO  `json:"classes"`
	Tenants        []TenantSLO `json:"tenants"`
}

// Snapshot is a point-in-time copy of the recorder: counters, the ring
// contents in capture order, active lane thresholds, and SLO state.
type Snapshot struct {
	Enabled    bool            `json:"enabled"`
	RingDepth  int             `json:"ring_depth"`
	Breaches   int64           `json:"breaches"`
	Stalls     int64           `json:"stalls"`
	Events     int64           `json:"events"`
	Captured   int64           `json:"captured"`
	Outliers   []Outlier       `json:"outliers"`
	Thresholds []LaneThreshold `json:"thresholds"`
	SLO        SLOSnapshot     `json:"slo"`
}

// Snapshot copies the recorder state. Safe to call concurrently with
// captures; records overwritten mid-scan are skipped.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Enabled:   true,
		RingDepth: len(r.ring),
		Breaches:  r.breaches.Load(),
		Stalls:    r.stalls.Load(),
		Events:    r.events.Load(),
		Captured:  r.captured.Load(),
	}
	for i := range r.ring {
		if o, ok := r.ring[i].load(); ok {
			s.Outliers = append(s.Outliers, o)
		}
	}
	sort.Slice(s.Outliers, func(i, j int) bool { return s.Outliers[i].Seq < s.Outliers[j].Seq })
	tab := *r.lanes.Load()
	for t, tl := range tab {
		for c := 0; c < r.opts.Classes; c++ {
			ln := &tl.lane[c]
			cnt := ln.count.Load()
			if cnt == 0 {
				continue
			}
			ew := ln.ewma.Load()
			thr := ew * r.mult
			if thr < r.floor {
				thr = r.floor
			}
			s.Thresholds = append(s.Thresholds, LaneThreshold{
				Class: c, Tenant: t, EWMANs: ew, ThresholdNs: thr, Count: cnt,
			})
		}
	}
	s.SLO = r.sloSnapshot(tab)
	return s
}

func (r *Recorder) sloSnapshot(tab []*tenantLanes) SLOSnapshot {
	if !r.sloEnabled {
		return SLOSnapshot{}
	}
	s := SLOSnapshot{Enabled: true, BudgetFraction: r.budget}
	r.winMu.Lock()
	defer r.winMu.Unlock()
	for c := 0; c < r.opts.Classes; c++ {
		obj := r.objectives[c]
		if obj == 0 {
			continue
		}
		cs := ClassSLO{
			Class:       c,
			ObjectiveNs: obj,
			Good:        r.classGood[c].Load(),
			Total:       r.classTotal[c].Load(),
		}
		for _, w := range r.windows {
			baseG, baseT := int64(0), int64(0)
			if e := w.oldest(); e != nil {
				baseG, baseT = e.classGood[c], e.classTotal[c]
			}
			cs.Burn = append(cs.Burn, WindowBurn{
				WindowNs: w.windowNs,
				Burn:     r.burn(cs.Good-baseG, cs.Total-baseT),
			})
		}
		s.Classes = append(s.Classes, cs)
	}
	for t, tl := range tab {
		total := tl.total.Load()
		if total == 0 {
			continue
		}
		ts := TenantSLO{Tenant: t, Good: tl.good.Load(), Total: total, Windowed: t < maxWindowTenants}
		if ts.Windowed {
			for _, w := range r.windows {
				baseG, baseT := int64(0), int64(0)
				if e := w.oldest(); e != nil {
					baseG, baseT = e.tenGood[t], e.tenTotal[t]
				}
				ts.Burn = append(ts.Burn, WindowBurn{
					WindowNs: w.windowNs,
					Burn:     r.burn(ts.Good-baseG, ts.Total-baseT),
				})
			}
		} else {
			ts.Burn = append(ts.Burn, WindowBurn{WindowNs: 0, Burn: r.burn(ts.Good, ts.Total)})
		}
		s.Tenants = append(s.Tenants, ts)
	}
	return s
}

// burn converts a good/total delta into a burn rate.
func (r *Recorder) burn(good, total int64) float64 {
	if total <= 0 {
		return 0
	}
	return float64(total-good) / float64(total) / r.budget
}
