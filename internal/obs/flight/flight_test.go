package flight

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestDisabledRecorderIsNil(t *testing.T) {
	if New(Options{Disable: true}) != nil {
		t.Fatal("Disable should yield a nil recorder")
	}
	var r *Recorder
	// Every method must be a no-op on nil.
	r.EnsureTenants(8)
	if thr, breach := r.Observe(0, 0, 1e9, true); thr != 0 || breach {
		t.Fatalf("nil Observe = (%d, %v), want (0, false)", thr, breach)
	}
	r.Capture(&Outlier{})
	r.CaptureStall(ReasonWorkerStall, 1, Ambient{})
	r.CaptureEvent(&Outlier{})
	r.Tick(1)
	if s := r.Snapshot(); s.Enabled {
		t.Fatal("nil Snapshot should report disabled")
	}
	var w *Watchdog
	if got := w.Tick(ProbeState{}); got != nil {
		t.Fatalf("nil watchdog Tick = %v, want nil", got)
	}
	if NewWatchdog(WatchdogOptions{Disable: true}) != nil {
		t.Fatal("Disable should yield a nil watchdog")
	}
}

func TestThresholdAdaptation(t *testing.T) {
	r := New(Options{ThresholdFloorNs: 1, ThresholdMult: 4, EWMAShift: 3, Warmup: 4})
	// Warmup: no breach regardless of latency.
	for i := 0; i < 4; i++ {
		if _, breach := r.Observe(0, 0, 1_000, true); breach {
			t.Fatalf("breach during warmup at observation %d", i)
		}
	}
	// Lane trained at ~1µs; threshold ≈ 4µs.
	thr, breach := r.Observe(0, 0, 1_000, true)
	if breach {
		t.Fatal("nominal latency flagged as breach")
	}
	if thr < 3_000 || thr > 5_000 {
		t.Fatalf("threshold = %d, want ≈4000", thr)
	}
	// A 100µs request breaches.
	if _, breach := r.Observe(0, 0, 100_000, true); !breach {
		t.Fatal("100x latency not flagged")
	}
	if got := r.Snapshot().Breaches; got != 1 {
		t.Fatalf("breaches = %d, want 1", got)
	}
	// The breach itself raised the EWMA; the threshold must follow.
	thr2, _ := r.Observe(0, 0, 1_000, true)
	if thr2 <= thr {
		t.Fatalf("threshold did not adapt upward: %d -> %d", thr, thr2)
	}
}

func TestThresholdFloor(t *testing.T) {
	r := New(Options{ThresholdFloorNs: 50_000, Warmup: 1})
	r.Observe(0, 0, 100, true) // warm
	thr, breach := r.Observe(0, 0, 40_000, true)
	if thr != 50_000 {
		t.Fatalf("threshold = %d, want floor 50000", thr)
	}
	if breach {
		t.Fatal("latency under the floor flagged as breach")
	}
}

func TestNonOKOutcomesDoNotTrain(t *testing.T) {
	r := New(Options{ThresholdFloorNs: 1, Warmup: 1})
	for i := 0; i < 100; i++ {
		r.Observe(0, 0, 1_000_000, false) // canceled storm must not inflate the lane
	}
	snap := r.Snapshot()
	if len(snap.Thresholds) != 0 {
		t.Fatalf("failed completions trained a lane: %+v", snap.Thresholds)
	}
	for _, cs := range snap.SLO.Classes {
		if cs.Total != 0 {
			t.Fatalf("failed completions counted toward SLO: %+v", cs)
		}
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := New(Options{RingDepth: 4})
	for i := 1; i <= 10; i++ {
		r.Capture(&Outlier{Kind: KindLatency, LatencyNs: int64(i)})
	}
	s := r.Snapshot()
	if s.Captured != 10 {
		t.Fatalf("captured = %d, want 10", s.Captured)
	}
	if len(s.Outliers) != 4 {
		t.Fatalf("ring holds %d, want 4", len(s.Outliers))
	}
	for i, o := range s.Outliers {
		wantSeq := uint64(7 + i)
		if o.Seq != wantSeq || o.LatencyNs != int64(7+i) {
			t.Fatalf("outlier %d = seq %d lat %d, want seq %d", i, o.Seq, o.LatencyNs, wantSeq)
		}
	}
}

func TestCaptureRoundTrip(t *testing.T) {
	r := New(Options{})
	in := Outlier{
		Kind: KindLatency, Reason: ReasonNone, Nano: 123, Slot: 7, Class: 1,
		Tenant: 3, Bytes: 4096, Outcome: 2, Flags: 0x3,
		LatencyNs: 999_999, ThresholdNs: 200_000,
		TS:      [7]int64{1, 2, 3, 4, 5, 6, 7},
		Ambient: Ambient{StagingDepth: 1, SubmissionDepth: 2, CompletionDepth: 3, RingDepth: 4, ClassInFlight: [MaxClasses]int64{9, 8, 7, 6}},
	}
	r.Capture(&in)
	s := r.Snapshot()
	if len(s.Outliers) != 1 {
		t.Fatalf("got %d outliers, want 1", len(s.Outliers))
	}
	got := s.Outliers[0]
	in.Seq = got.Seq
	if got != in {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, in)
	}
}

func TestStallAndEventCounters(t *testing.T) {
	r := New(Options{})
	r.CaptureStall(ReasonWorkerStall, 5, Ambient{CompletionDepth: 9})
	r.CaptureEvent(&Outlier{Reason: ReasonTxnAbort, Bytes: 4096})
	s := r.Snapshot()
	if s.Stalls != 1 || s.Events != 1 || s.Captured != 2 || s.Breaches != 0 {
		t.Fatalf("counters = %+v", s)
	}
	if s.Outliers[0].Kind != KindStall || s.Outliers[0].Reason != ReasonWorkerStall {
		t.Fatalf("stall record = %+v", s.Outliers[0])
	}
	if s.Outliers[1].Kind != KindEvent || s.Outliers[1].Reason != ReasonTxnAbort {
		t.Fatalf("event record = %+v", s.Outliers[1])
	}
}

func TestEnsureTenantsAndClamp(t *testing.T) {
	r := New(Options{ThresholdFloorNs: 1, Warmup: 1})
	r.EnsureTenants(3)
	r.Observe(0, 2, 500, true)
	// Out-of-range tenant and class clamp to lane 0.
	r.Observe(99, 99, 700, true)
	s := r.Snapshot()
	var seen [2]bool
	for _, lt := range s.Thresholds {
		switch {
		case lt.Tenant == 2 && lt.Class == 0:
			seen[0] = true
		case lt.Tenant == 0 && lt.Class == 0:
			seen[1] = true
		default:
			t.Fatalf("unexpected lane %+v", lt)
		}
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("lanes = %+v", s.Thresholds)
	}
	// Shrinking is a no-op.
	r.EnsureTenants(1)
	if got := len(*r.lanes.Load()); got != 3 {
		t.Fatalf("table shrank to %d", got)
	}
}

func TestSLOBurn(t *testing.T) {
	r := New(Options{
		Warmup: 1,
		SLO: SLOOptions{
			ClassObjectiveNs: [MaxClasses]int64{1_000, 0, 0, 0},
			BudgetFraction:   0.001,
			Windows:          []time.Duration{time.Microsecond * windowEntries},
		},
	})
	nano := int64(0)
	r.Tick(nano)
	// 50 good, 50 bad on class 0.
	for i := 0; i < 50; i++ {
		r.Observe(0, 0, 500, true)
		r.Observe(0, 0, 5_000, true)
	}
	nano += 1_000
	r.Tick(nano)
	s := r.Snapshot()
	if len(s.SLO.Classes) != 1 {
		t.Fatalf("classes = %+v", s.SLO.Classes)
	}
	cs := s.SLO.Classes[0]
	if cs.Good != 50 || cs.Total != 100 {
		t.Fatalf("good/total = %d/%d, want 50/100", cs.Good, cs.Total)
	}
	// Bad fraction 0.5 against budget 0.001 → burn 500.
	if len(cs.Burn) != 1 || cs.Burn[0].Burn < 499 || cs.Burn[0].Burn > 501 {
		t.Fatalf("burn = %+v, want ≈500", cs.Burn)
	}
	// Tenant 0 mirrors the class totals here.
	if len(s.SLO.Tenants) != 1 || s.SLO.Tenants[0].Total != 100 || !s.SLO.Tenants[0].Windowed {
		t.Fatalf("tenants = %+v", s.SLO.Tenants)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	// After the window passes with only good completions, windowed
	// burn must drop to 0 while cumulative totals keep the history.
	win := time.Microsecond * windowEntries // 64µs window, 1µs interval
	r := New(Options{
		Warmup: 1,
		SLO: SLOOptions{
			ClassObjectiveNs: [MaxClasses]int64{1_000, 0, 0, 0},
			Windows:          []time.Duration{win},
		},
	})
	nano := int64(0)
	r.Tick(nano)
	for i := 0; i < 10; i++ {
		r.Observe(0, 0, 5_000, true) // all bad
	}
	// Tick the full window away with good-only traffic.
	for i := 0; i < 2*windowEntries; i++ {
		nano += 1_000
		r.Observe(0, 0, 100, true)
		r.Tick(nano)
	}
	cs := r.Snapshot().SLO.Classes[0]
	if cs.Burn[0].Burn != 0 {
		t.Fatalf("windowed burn = %v after bad burst aged out, want 0", cs.Burn[0].Burn)
	}
	if cs.Total != 10+2*windowEntries || cs.Good != 2*windowEntries {
		t.Fatalf("cumulative good/total = %d/%d", cs.Good, cs.Total)
	}
}

func TestWatchdogEpisodes(t *testing.T) {
	w := NewWatchdog(WatchdogOptions{StallTicks: 3, HighWaterFraction: 0.75})
	stalled := ProbeState{QueuedWork: true, DispatchProgress: 42}
	// Baseline tick: the watchdog learns the progress counters.
	w.Tick(ProbeState{DispatchProgress: 42})
	// Ticks 1..2: arming, nothing fires.
	for i := 0; i < 2; i++ {
		if got := w.Tick(stalled); len(got) != 0 {
			t.Fatalf("tick %d fired %v", i, got)
		}
	}
	// Tick 3: fires once.
	if got := w.Tick(stalled); len(got) != 1 || got[0] != ReasonWorkerStall {
		t.Fatalf("tick 3 = %v, want [worker_stall]", got)
	}
	// Still stalled: latched, no refire.
	if got := w.Tick(stalled); len(got) != 0 {
		t.Fatalf("latched tick fired %v", got)
	}
	// Progress resets the episode...
	if got := w.Tick(ProbeState{QueuedWork: true, DispatchProgress: 43}); len(got) != 0 {
		t.Fatalf("progress tick fired %v", got)
	}
	// ...and a new stall episode fires again after StallTicks.
	for i := 0; i < 2; i++ {
		w.Tick(ProbeState{QueuedWork: true, DispatchProgress: 43})
	}
	if got := w.Tick(ProbeState{QueuedWork: true, DispatchProgress: 43}); len(got) != 1 {
		t.Fatalf("second episode did not fire: %v", got)
	}
}

func TestWatchdogBacklogAndStarvation(t *testing.T) {
	w := NewWatchdog(WatchdogOptions{StallTicks: 2})
	// Completion ring at high water AND nothing retrieving. Tick 1 is
	// the starvation baseline (it learns RetrieveProgress) but already
	// counts for the backlog, which fires on tick 2; starvation arms
	// on tick 2 and fires on tick 3. Latches are independent.
	p := ProbeState{CompletionDepth: 96, CompletionCap: 128, RetrieveProgress: 7, DispatchProgress: 1}
	w.Tick(p)
	p.DispatchProgress++ // keep the worker "alive"
	if got := w.Tick(p); len(got) != 1 || got[0] != ReasonCompletionBacklog {
		t.Fatalf("tick 2 = %v, want [completion_backlog]", got)
	}
	p.DispatchProgress++
	if got := w.Tick(p); len(got) != 1 || got[0] != ReasonPollerStarvation {
		t.Fatalf("tick 3 = %v, want [poller_starvation]", got)
	}
	// Draining below high water clears the backlog latch; retrieval
	// progress clears starvation.
	p = ProbeState{CompletionDepth: 10, CompletionCap: 128, RetrieveProgress: 8, DispatchProgress: 3}
	if got := w.Tick(p); len(got) != 0 {
		t.Fatalf("drained tick fired %v", got)
	}
}

func TestConcurrentCaptureAndSnapshot(t *testing.T) {
	r := New(Options{RingDepth: 64, ThresholdFloorNs: 1, Warmup: 1})
	r.EnsureTenants(4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lat := int64(1_000 + i%7)
				if thr, breach := r.Observe(g%2, g, lat, true); breach {
					o := Outlier{Kind: KindLatency, Class: int32(g % 2), Tenant: uint32(g), LatencyNs: lat, ThresholdNs: thr}
					r.Capture(&o)
				}
				if i%64 == 0 {
					r.Capture(&Outlier{Kind: KindLatency, LatencyNs: lat})
				}
			}
		}(g)
	}
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		s := r.Snapshot()
		for i := 1; i < len(s.Outliers); i++ {
			if s.Outliers[i].Seq <= s.Outliers[i-1].Seq {
				t.Errorf("snapshot out of order at %d", i)
			}
		}
		r.Tick(time.Since(time.Time{}).Nanoseconds())
	}
	close(stop)
	wg.Wait()
}

func TestKindReasonJSON(t *testing.T) {
	o := Outlier{Kind: KindStall, Reason: ReasonCompletionBacklog}
	b, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var back Outlier
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != KindStall || back.Reason != ReasonCompletionBacklog {
		t.Fatalf("round trip = %+v", back)
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"latency"`), &k); err != nil || k != KindLatency {
		t.Fatalf("kind from name: %v %v", k, err)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &k); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestObserveAllocFree(t *testing.T) {
	r := New(Options{Warmup: 1})
	r.Observe(0, 0, 100, true)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Observe(0, 0, 1_000, true)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v/op", allocs)
	}
	o := Outlier{Kind: KindLatency}
	allocs = testing.AllocsPerRun(1000, func() {
		r.Capture(&o)
	})
	if allocs != 0 {
		t.Fatalf("Capture allocates %v/op", allocs)
	}
	nano := int64(0)
	allocs = testing.AllocsPerRun(1000, func() {
		nano += 10_000_000
		r.Tick(nano)
	})
	if allocs != 0 {
		t.Fatalf("Tick allocates %v/op", allocs)
	}
}
