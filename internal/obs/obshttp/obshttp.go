// Package obshttp is the export and serving layer over the obs /
// lifecycle instruments: it renders metric snapshots in the Prometheus
// text exposition format, renders captured request lifecycles as Chrome
// trace_event JSON, and serves both — plus the Go runtime profiles —
// from one http.Handler:
//
//	/metrics               Prometheus text format (scrapable)
//	/trace                 Chrome trace_event JSON (chrome://tracing, Perfetto)
//	/debug/outliers        flight-recorder snapshots as JSON (captured
//	                       outliers, stall reports, thresholds, SLO burn)
//	/debug/outliers/trace  the captured outliers as Chrome trace JSON
//	/debug/pprof/*         the standard Go profiles
//
// The package deliberately pulls, never pushes: collectors are closures
// that snapshot a subsystem when a scrape arrives, so an idle handler
// costs nothing and a scrape costs one snapshot per subsystem. The
// bundled converters (RealtimeMetrics, SwapdMetrics, StreamMetrics)
// map the realtime device, the swap daemon and the streaming runtime
// onto a stable metric namespace; ParseExposition validates rendered
// output so CI can assert the exposition stays well-formed without a
// Prometheus binary.
package obshttp

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"

	"memif/internal/obs"
	"memif/internal/obs/flight"
	"memif/internal/obs/lifecycle"
)

// MetricType classifies a Metric for the # TYPE header.
type MetricType int

// The exposition metric types used here.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Label is one name="value" pair on a metric.
type Label struct{ Name, Value string }

// Metric is one exposition sample family member: a counter or gauge
// carries Value; a histogram carries Hist (rendered as cumulative
// power-of-two le buckets plus _sum and _count).
type Metric struct {
	Name   string
	Help   string
	Type   MetricType
	Labels []Label
	Value  float64
	Hist   obs.HistogramSnapshot
}

// Collector produces a metric batch at scrape time.
type Collector func() []Metric

// TraceSource produces the captured lifecycles of one subsystem at
// /trace render time; Process names its row in the Chrome timeline.
type TraceSource struct {
	Process  string
	Snapshot func() []lifecycle.Lifecycle
}

// OutlierSource produces one subsystem's flight-recorder snapshot at
// /debug/outliers render time.
type OutlierSource struct {
	Source   string
	Snapshot func() flight.Snapshot
}

// Handler serves /metrics, /trace, /debug/outliers and /debug/pprof/*
// for a set of registered collectors and sources. The zero value is
// usable; registration is safe concurrently with serving.
type Handler struct {
	mu         sync.RWMutex
	collectors []Collector
	traces     []TraceSource
	outliers   []OutlierSource
}

// NewHandler returns an empty Handler.
func NewHandler() *Handler { return &Handler{} }

// Register adds a metric collector, called on every /metrics scrape.
func (h *Handler) Register(c Collector) {
	h.mu.Lock()
	h.collectors = append(h.collectors, c)
	h.mu.Unlock()
}

// RegisterTrace adds a lifecycle source, one Chrome process row per
// source, rendered on every /trace request.
func (h *Handler) RegisterTrace(process string, fn func() []lifecycle.Lifecycle) {
	h.mu.Lock()
	h.traces = append(h.traces, TraceSource{Process: process, Snapshot: fn})
	h.mu.Unlock()
}

// RegisterOutliers adds a flight-recorder source, one entry in the
// /debug/outliers document (and one Chrome process row in
// /debug/outliers/trace) per source.
func (h *Handler) RegisterOutliers(source string, fn func() flight.Snapshot) {
	h.mu.Lock()
	h.outliers = append(h.outliers, OutlierSource{Source: source, Snapshot: fn})
	h.mu.Unlock()
}

// Gather runs every collector and returns the combined batch.
func (h *Handler) Gather() []Metric {
	h.mu.RLock()
	cs := h.collectors
	h.mu.RUnlock()
	var out []Metric
	for _, c := range cs {
		out = append(out, c()...)
	}
	return out
}

// MetricsText renders the current scrape as exposition-format bytes —
// the body /metrics serves, also handy for tests and CLI validation.
func (h *Handler) MetricsText() []byte {
	var b strings.Builder
	WriteExposition(&b, h.Gather())
	return []byte(b.String())
}

// TraceJSON renders the current captured lifecycles of every source as
// one Chrome trace_event JSON document.
func (h *Handler) TraceJSON() ([]byte, error) {
	h.mu.RLock()
	srcs := h.traces
	h.mu.RUnlock()
	groups := make([]lifecycle.TraceGroup, 0, len(srcs))
	for _, s := range srcs {
		groups = append(groups, lifecycle.TraceGroup{Process: s.Process, Lifecycles: s.Snapshot()})
	}
	return lifecycle.ChromeTraceGroupsJSON(groups)
}

// OutlierReport is one source's entry in the /debug/outliers document.
type OutlierReport struct {
	Source string          `json:"source"`
	Flight flight.Snapshot `json:"flight"`
}

// OutlierReports snapshots every registered flight recorder.
func (h *Handler) OutlierReports() []OutlierReport {
	h.mu.RLock()
	srcs := h.outliers
	h.mu.RUnlock()
	out := make([]OutlierReport, 0, len(srcs))
	for _, s := range srcs {
		out = append(out, OutlierReport{Source: s.Source, Flight: s.Snapshot()})
	}
	return out
}

// OutliersJSON renders every registered flight recorder's snapshot as
// one JSON document — the /debug/outliers body.
func (h *Handler) OutliersJSON() ([]byte, error) {
	return json.MarshalIndent(h.OutlierReports(), "", "  ")
}

// OutliersTraceJSON renders the captured latency outliers of every
// flight source as Chrome trace_event JSON: each breaching request's
// stamp vector becomes a span row, so the tail can be eyeballed on the
// same timeline view as the sampled /trace export. Stall and event
// records carry no stamp vector and are skipped.
func (h *Handler) OutliersTraceJSON() ([]byte, error) {
	h.mu.RLock()
	srcs := h.outliers
	h.mu.RUnlock()
	groups := make([]lifecycle.TraceGroup, 0, len(srcs))
	for _, s := range srcs {
		groups = append(groups, lifecycle.TraceGroup{
			Process:    s.Source + " outliers",
			Lifecycles: outlierLifecycles(s.Snapshot()),
		})
	}
	return lifecycle.ChromeTraceGroupsJSON(groups)
}

// outlierLifecycles converts captured latency outliers back into the
// lifecycle shape the Chrome exporter renders.
func outlierLifecycles(s flight.Snapshot) []lifecycle.Lifecycle {
	var out []lifecycle.Lifecycle
	for _, o := range s.Outliers {
		if o.Kind != flight.KindLatency || o.TS[lifecycle.StageSubmit] == 0 {
			continue
		}
		out = append(out, lifecycle.Lifecycle{
			Seq:     o.Seq,
			Slot:    int(o.Slot),
			Class:   int(o.Class),
			Bytes:   o.Bytes,
			Outcome: lifecycle.Outcome(o.Outcome),
			Flags:   o.Flags,
			TS:      o.TS,
		})
	}
	return out
}

// ServeHTTP routes /metrics, /trace, /debug/outliers and /debug/pprof/*.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch p := r.URL.Path; {
	case p == "/metrics":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(h.MetricsText())
	case p == "/trace":
		body, err := h.TraceJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	case p == "/debug/outliers":
		body, err := h.OutliersJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	case p == "/debug/outliers/trace":
		body, err := h.OutliersTraceJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	case strings.HasPrefix(p, "/debug/pprof"):
		switch p {
		case "/debug/pprof/cmdline":
			pprof.Cmdline(w, r)
		case "/debug/pprof/profile":
			pprof.Profile(w, r)
		case "/debug/pprof/symbol":
			pprof.Symbol(w, r)
		case "/debug/pprof/trace":
			pprof.Trace(w, r)
		default:
			pprof.Index(w, r)
		}
	case p == "/" || p == "":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "memif observability endpoints:\n  /metrics\n  /trace\n  /debug/outliers\n  /debug/outliers/trace\n  /debug/pprof/\n")
	default:
		http.NotFound(w, r)
	}
}

// ---------------------------------------------------------------------
// Exposition rendering
// ---------------------------------------------------------------------

// WriteExposition renders metrics in the Prometheus text format
// (version 0.0.4). Metrics sharing a name are grouped under one
// # HELP / # TYPE header in first-appearance order; histograms expand
// into cumulative le buckets on the obs power-of-two boundaries, up to
// the highest occupied bucket, plus +Inf, _sum and _count.
func WriteExposition(w io.Writer, ms []Metric) {
	order := make([]string, 0, len(ms))
	groups := make(map[string][]Metric, len(ms))
	for _, m := range ms {
		if _, ok := groups[m.Name]; !ok {
			order = append(order, m.Name)
		}
		groups[m.Name] = append(groups[m.Name], m)
	}
	for _, name := range order {
		g := groups[name]
		help := ""
		for _, m := range g {
			if m.Help != "" {
				help = m.Help
				break
			}
		}
		if help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, g[0].Type)
		for _, m := range g {
			if m.Type == TypeHistogram {
				writeHistogram(w, m)
				continue
			}
			fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(m.Labels), formatValue(m.Value))
		}
	}
}

func writeHistogram(w io.Writer, m Metric) {
	hi := 0
	for i := obs.NumBuckets - 1; i >= 0; i-- {
		if m.Hist.Buckets[i] != 0 {
			hi = i
			break
		}
	}
	var cum int64
	for i := 0; i <= hi; i++ {
		cum += m.Hist.Buckets[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name,
			renderLabels(append(append([]Label(nil), m.Labels...),
				Label{"le", strconv.FormatInt(obs.BucketUpper(i), 10)})), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name,
		renderLabels(append(append([]Label(nil), m.Labels...), Label{"le", "+Inf"})), m.Hist.Count)
	fmt.Fprintf(w, "%s_sum%s %d\n", m.Name, renderLabels(m.Labels), m.Hist.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", m.Name, renderLabels(m.Labels), m.Hist.Count)
}

func renderLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ---------------------------------------------------------------------
// Exposition validation (for CI and tests — no Prometheus binary needed)
// ---------------------------------------------------------------------

type histSeries struct {
	lastLe   float64
	lastVal  float64
	seenInf  bool
	infVal   float64
	count    float64
	hasCount bool
}

// ParseExposition validates Prometheus text-format exposition: comment
// and sample syntax, declared types, le-labelled cumulative histogram
// buckets that are monotone and end at +Inf, and _count agreeing with
// the +Inf bucket. It returns the first violation, or nil when the
// input is well-formed and contains at least one sample.
func ParseExposition(data []byte) error {
	types := make(map[string]string)
	hists := make(map[string]*histSeries)
	samples := 0
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, types); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples++
		base, suffix := splitSeries(name, types)
		typ, declared := types[base]
		if !declared {
			return fmt.Errorf("line %d: sample %q has no # TYPE declaration", lineNo, name)
		}
		if typ == "histogram" {
			if err := checkHistogramSample(base, suffix, labels, value, hists); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
		} else if suffix != "" {
			return fmt.Errorf("line %d: %s sample %q uses histogram suffix", lineNo, typ, name)
		}
	}
	if samples == 0 {
		return fmt.Errorf("exposition contains no samples")
	}
	for key, h := range hists {
		if !h.seenInf {
			return fmt.Errorf("histogram series %s has no +Inf bucket", key)
		}
		if h.hasCount && h.count != h.infVal {
			return fmt.Errorf("histogram series %s: _count %g != +Inf bucket %g", key, h.count, h.infVal)
		}
	}
	return nil
}

func parseComment(line string, types map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	case "TYPE":
		if len(fields) < 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		typ := strings.TrimSpace(fields[3])
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if old, dup := types[fields[2]]; dup && old != typ {
			return fmt.Errorf("metric %s redeclared as %s (was %s)", fields[2], typ, old)
		}
		types[fields[2]] = typ
	}
	return nil
}

// splitSeries strips a histogram sample suffix when the base name is a
// declared histogram (so a counter legitimately named *_count is not
// misparsed).
func splitSeries(name string, types map[string]string) (base, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if b, ok := strings.CutSuffix(name, s); ok && types[b] == "histogram" {
			return b, s
		}
	}
	return name, ""
}

func checkHistogramSample(base, suffix string, labels []Label, value float64, hists map[string]*histSeries) error {
	rest := make([]Label, 0, len(labels))
	le := ""
	for _, l := range labels {
		if l.Name == "le" {
			le = l.Value
			continue
		}
		rest = append(rest, l)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].Name < rest[j].Name })
	key := base + renderLabels(rest)
	h := hists[key]
	if h == nil {
		h = &histSeries{lastLe: -1}
		hists[key] = h
	}
	switch suffix {
	case "_bucket":
		if le == "" {
			return fmt.Errorf("%s_bucket sample missing le label", base)
		}
		if le == "+Inf" {
			h.seenInf = true
			h.infVal = value
			if value < h.lastVal {
				return fmt.Errorf("series %s: +Inf bucket %g below previous bucket %g", key, value, h.lastVal)
			}
			return nil
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("series %s: bad le %q", key, le)
		}
		if bound <= h.lastLe {
			return fmt.Errorf("series %s: le %g not increasing (previous %g)", key, bound, h.lastLe)
		}
		if value < h.lastVal {
			return fmt.Errorf("series %s: cumulative bucket %g decreased (previous %g)", key, value, h.lastVal)
		}
		h.lastLe, h.lastVal = bound, value
	case "_count":
		h.count, h.hasCount = value, true
	case "_sum":
	default:
		return fmt.Errorf("histogram %s has bare sample (no _bucket/_sum/_count suffix)", base)
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func parseSample(line string) (name string, labels []Label, value float64, err error) {
	i := 0
	for i < len(line) && isNameChar(line[i], i > 0) {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("bad metric name in %q", line)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote, esc := false, false
		for j := 1; j < len(rest); j++ {
			c := rest[j]
			switch {
			case esc:
				esc = false
			case inQuote && c == '\\':
				esc = true
			case c == '"':
				inQuote = !inQuote
			case !inQuote && c == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err = parseLabels(rest[1:end])
		if err != nil {
			return "", nil, 0, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("expected value [timestamp] after %q", name)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

func parseLabels(s string) ([]Label, error) {
	var out []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label pair %q", s)
		}
		lname := s[:eq]
		if !validLabelName(lname) {
			return nil, fmt.Errorf("bad label name %q", lname)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s value not quoted", lname)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("dangling escape in label %s", lname)
				}
				i++
				switch s[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %s", s[i], lname)
				}
				continue
			}
			if c == '"' {
				closed = true
				s = s[i+1:]
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value for label %s", lname)
		}
		out = append(out, Label{lname, val.String()})
		s = strings.TrimPrefix(s, ",")
	}
	return out, nil
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func isNameChar(c byte, notFirst bool) bool {
	return c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
		(notFirst && c >= '0' && c <= '9')
}

// ---------------------------------------------------------------------
// Span histograms (shared by every subsystem converter)
// ---------------------------------------------------------------------

// SpanMetrics renders a lifecycle.SpanSnapshot as one histogram family:
// name{...labels, stage="staging_wait"|...} per span. Every span is
// emitted, occupied or not, so dashboards see a stable series set.
func SpanMetrics(name, help string, labels []Label, s lifecycle.SpanSnapshot) []Metric {
	names := lifecycle.SpanNames()
	out := make([]Metric, 0, len(names))
	for i, sn := range names {
		out = append(out, Metric{
			Name: name, Help: help, Type: TypeHistogram,
			Labels: append(append([]Label(nil), labels...), Label{"stage", sn}),
			Hist:   s.Spans[i],
		})
	}
	return out
}
