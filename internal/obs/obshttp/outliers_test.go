package obshttp

import (
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"memif/internal/obs/flight"
	"memif/internal/obs/lifecycle"
	"memif/internal/realtime"
)

// aggressiveFlight arms the recorder so an ordinary in-process burst
// reliably produces breaches: threshold = max(1ns, 1×EWMA) after a
// one-request warmup means roughly every above-average completion
// captures.
func aggressiveFlight() flight.Options {
	return flight.Options{
		ThresholdFloorNs: 1,
		ThresholdMult:    1,
		Warmup:           1,
		Watchdog:         flight.WatchdogOptions{Disable: true},
	}
}

// TestOutliersEndpoints drives a burst through a flight-armed device
// and checks the /debug/outliers JSON document, the Chrome-trace
// export, and the index listing.
func TestOutliersEndpoints(t *testing.T) {
	opts := realtime.DefaultOptions()
	opts.Flight = aggressiveFlight()
	d := realtime.Open(opts)
	defer d.Close()

	h := NewHandler()
	h.Register(RealtimeCollector("rt0", d))
	h.RegisterOutliers("realtime", d.FlightSnapshot)

	runRealtimeBurst(t, d, 400)

	srv := httptest.NewServer(h)
	defer srv.Close()

	var reports []OutlierReport
	if err := json.Unmarshal(httpGet(t, srv.URL+"/debug/outliers"), &reports); err != nil {
		t.Fatalf("/debug/outliers not valid JSON: %v", err)
	}
	if len(reports) != 1 || reports[0].Source != "realtime" {
		t.Fatalf("reports = %+v, want one source \"realtime\"", reports)
	}
	fs := reports[0].Flight
	if !fs.Enabled {
		t.Fatal("flight snapshot not enabled")
	}
	if fs.Breaches == 0 {
		t.Fatal("no breaches after 400-request burst at threshold floor 1ns")
	}
	if fs.Captured != fs.Breaches {
		t.Fatalf("captured %d != breaches %d (watchdog disabled: every breach must capture)", fs.Captured, fs.Breaches)
	}
	if len(fs.Outliers) == 0 {
		t.Fatal("no outlier records retained")
	}
	for _, o := range fs.Outliers {
		if o.Kind != flight.KindLatency {
			t.Fatalf("unexpected non-latency record: %+v", o)
		}
		for st, ts := range o.TS {
			if ts == 0 {
				t.Fatalf("outlier seq %d missing stage %s: %+v", o.Seq, lifecycle.Stage(st), o)
			}
		}
		if o.LatencyNs <= o.ThresholdNs {
			t.Fatalf("outlier seq %d latency %d within threshold %d", o.Seq, o.LatencyNs, o.ThresholdNs)
		}
	}
	if len(fs.Thresholds) == 0 {
		t.Fatal("no lane thresholds reported")
	}

	trace := httpGet(t, srv.URL+"/debug/outliers/trace")
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &doc); err != nil {
		t.Fatalf("/debug/outliers/trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("outlier trace has no events")
	}

	index := string(httpGet(t, srv.URL+"/"))
	if !strings.Contains(index, "/debug/outliers") {
		t.Fatalf("index does not list /debug/outliers:\n%s", index)
	}

	// The flight series ride the normal scrape.
	metrics := string(httpGet(t, srv.URL+"/metrics"))
	for _, want := range []string{
		"memif_realtime_flight_breaches_total",
		"memif_realtime_flight_captured_total",
		"memif_realtime_flight_threshold_ns",
		"memif_realtime_slo_objective_ns",
		"memif_realtime_slo_requests_total",
		"memif_realtime_slo_burn_rate",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("scrape missing %s", want)
		}
	}
	if err := ParseExposition([]byte(metrics)); err != nil {
		t.Fatalf("scrape with flight series invalid: %v", err)
	}
}

// TestScrapeWhileSubmittingOutliers hammers the outlier JSON, the
// outlier trace and /metrics concurrently with live submitters on a
// flight-armed device — every render must stay valid and race-free
// (run under -race) while captures land mid-scan.
func TestScrapeWhileSubmittingOutliers(t *testing.T) {
	opts := realtime.DefaultOptions()
	opts.Flight = aggressiveFlight()
	opts.Flight.Watchdog.Disable = false // watchdog on: stall records may interleave too
	d := realtime.Open(opts)
	defer d.Close()

	h := NewHandler()
	h.Register(RealtimeCollector("rt0", d))
	h.RegisterOutliers("realtime", d.FlightSnapshot)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := make([]byte, 4096)
			for {
				select {
				case <-stop:
					return
				default:
				}
				r := d.AllocRequest()
				if r == nil {
					for got := d.RetrieveCompleted(); got != nil; got = d.RetrieveCompleted() {
						d.FreeRequest(got)
					}
					// Hand the core to the worker: on GOMAXPROCS=1 a
					// hot alloc-retry spin starves the very pipeline it
					// is waiting on.
					runtime.Gosched()
					continue
				}
				r.Src, r.Dst = src, make([]byte, len(src))
				if err := d.Submit(r); err != nil {
					d.FreeRequest(r)
					continue
				}
				for got := d.RetrieveCompleted(); got != nil; got = d.RetrieveCompleted() {
					d.FreeRequest(got)
				}
			}
		}()
	}

	deadline := time.After(200 * time.Millisecond)
	scrapes := 0
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			var reports []OutlierReport
			if err := json.Unmarshal(mustJSON(t, h.OutliersJSON), &reports); err != nil {
				t.Fatalf("outliers render %d invalid mid-traffic: %v", scrapes, err)
			}
			mustJSON(t, h.OutliersTraceJSON)
			if err := ParseExposition(h.MetricsText()); err != nil {
				t.Fatalf("scrape %d invalid mid-traffic: %v", scrapes, err)
			}
			scrapes++
		}
	}
	close(stop)
	wg.Wait()
	if scrapes == 0 {
		t.Fatal("no scrapes completed")
	}
	if fs := d.FlightSnapshot(); fs.Breaches == 0 {
		t.Error("no breaches captured during the storm")
	}
	for got := d.RetrieveCompleted(); got != nil; got = d.RetrieveCompleted() {
		d.FreeRequest(got)
	}
}

func mustJSON(t *testing.T, render func() ([]byte, error)) []byte {
	t.Helper()
	body, err := render()
	if err != nil {
		t.Fatalf("render failed: %v", err)
	}
	return body
}
