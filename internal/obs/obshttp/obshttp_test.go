package obshttp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"memif/internal/obs"
	"memif/internal/obs/flight"
	"memif/internal/obs/lifecycle"
	"memif/internal/realtime"
	"memif/internal/streamrt"
	"memif/internal/swapd"
)

func sampleHistogram(vals ...int64) obs.HistogramSnapshot {
	var h obs.Histogram
	for _, v := range vals {
		h.Observe(v)
	}
	return h.Snapshot()
}

func TestExpositionRoundTrip(t *testing.T) {
	ms := []Metric{
		{Name: "memif_test_ops_total", Help: "Ops done.", Type: TypeCounter, Value: 42},
		{Name: "memif_test_depth", Help: "Live depth.", Type: TypeGauge,
			Labels: []Label{{"shard", "0"}}, Value: 3},
		{Name: "memif_test_depth", Type: TypeGauge,
			Labels: []Label{{"shard", "1"}}, Value: 7},
		{Name: "memif_test_latency_ns", Help: "Latency with \"quotes\" and \\slashes.",
			Type: TypeHistogram, Labels: []Label{{"stage", `a"b\c`}},
			Hist: sampleHistogram(1, 5, 5, 900, 70000)},
	}
	var b strings.Builder
	WriteExposition(&b, ms)
	text := b.String()

	if err := ParseExposition([]byte(text)); err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# TYPE memif_test_ops_total counter",
		"memif_test_ops_total 42",
		`memif_test_depth{shard="1"} 7`,
		"# TYPE memif_test_latency_ns histogram",
		`le="+Inf"`,
		"memif_test_latency_ns_count",
		"memif_test_latency_ns_sum",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Exactly one TYPE header per family even with several series.
	if n := strings.Count(text, "# TYPE memif_test_depth "); n != 1 {
		t.Errorf("TYPE header for memif_test_depth appears %d times", n)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no samples":     "# TYPE foo counter\n",
		"undeclared":     "foo_total 1\n",
		"bad name":       "# TYPE 9foo counter\n9foo 1\n",
		"bad value":      "# TYPE foo counter\nfoo pizza\n",
		"bad type":       "# TYPE foo banana\nfoo 1\n",
		"open labels":    "# TYPE foo counter\nfoo{a=\"b 1\n",
		"unquoted label": "# TYPE foo counter\nfoo{a=b} 1\n",
		"no inf bucket":  "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"shrinking cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"le not increasing": "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\n" +
			"h_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"count mismatch": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\n" +
			"h_sum 1\nh_count 9\n",
		"bare histogram sample": "# TYPE h histogram\nh 1\n",
	}
	for name, input := range cases {
		if err := ParseExposition([]byte(input)); err == nil {
			t.Errorf("%s: accepted malformed input:\n%s", name, input)
		}
	}
	ok := "# HELP foo Total foos.\n# TYPE foo counter\nfoo{a=\"x\\\"y\\\\z\\n\"} 1 1712345678\n" +
		"# TYPE bar gauge\nbar +Inf\n"
	if err := ParseExposition([]byte(ok)); err != nil {
		t.Errorf("rejected well-formed input: %v", err)
	}
}

// runRealtimeBurst pushes n requests through d and retrieves them all.
func runRealtimeBurst(t *testing.T, d *realtime.Device, n int) {
	t.Helper()
	src := bytes.Repeat([]byte{9}, 8192)
	for done := 0; done < n; {
		r := d.AllocRequest()
		if r == nil {
			t.Fatal("out of request slots")
		}
		r.Src, r.Dst = src, make([]byte, len(src))
		if err := d.Submit(r); err != nil {
			t.Fatal(err)
		}
		if !d.Poll(time.Second) {
			t.Fatal("Poll timed out")
		}
		for {
			got := d.RetrieveCompleted()
			if got == nil {
				break
			}
			d.FreeRequest(got)
			done++
		}
	}
}

func TestHandlerEndpointsLiveDevice(t *testing.T) {
	opts := realtime.DefaultOptions()
	opts.TraceFullCapture = true
	d := realtime.Open(opts)
	defer d.Close()
	runRealtimeBurst(t, d, 64)

	h := NewHandler()
	h.Register(RealtimeCollector("rt0", d))
	h.RegisterTrace("realtime", func() []lifecycle.Lifecycle {
		return d.Stats().Lifecycle.Captured
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	body := httpGet(t, srv.URL+"/metrics")
	if err := ParseExposition(body); err != nil {
		t.Fatalf("/metrics not valid exposition: %v\n%s", err, body)
	}
	for _, want := range []string{
		`memif_realtime_submitted_total{device="rt0"} 64`,
		`memif_realtime_stage_latency_ns_bucket{device="rt0",stage="staging_wait",le="+Inf"}`,
		`memif_realtime_stage_latency_ns_count{device="rt0",stage="completion_dwell"}`,
		`memif_realtime_trace_sample_shift{device="rt0"} 0`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Full capture: every stage-pair span must have samples.
	for _, stage := range []string{"staging_wait", "dispatch_wait", "copy", "completion_dwell", "total"} {
		prefix := fmt.Sprintf("memif_realtime_stage_latency_ns_count{device=\"rt0\",stage=%q} ", stage)
		line := findLine(string(body), prefix)
		if line == "" || strings.HasSuffix(line, " 0") {
			t.Errorf("span %s has no samples (line %q)", stage, line)
		}
	}

	trace := httpGet(t, srv.URL+"/trace")
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			Dur   float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &doc); err != nil {
		t.Fatalf("/trace not valid JSON: %v", err)
	}
	var spans int
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatalf("/trace has no complete events in %d events", len(doc.TraceEvents))
	}

	for _, path := range []string{"/", "/debug/pprof/", "/debug/pprof/goroutine?debug=1"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	if resp, err := http.Get(srv.URL + "/nope"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET /nope: status %d, want 404", resp.StatusCode)
		}
	}
}

// TestAllSubsystemConverters renders all three namespaces — realtime,
// swapd, streamrt — through one handler and validates the combined
// exposition, per-stage histograms included.
func TestAllSubsystemConverters(t *testing.T) {
	var spans lifecycle.SpanSet
	for i := int64(1); i <= 16; i++ {
		spans.Observe(lifecycle.SpanStagingWait, i*10)
		spans.Observe(lifecycle.SpanDispatchWait, i*20)
		spans.Observe(lifecycle.SpanCopy, i*100)
		spans.Observe(lifecycle.SpanCompletionDwell, i*5)
		spans.Observe(lifecycle.SpanTotal, i*200)
	}
	sw := swapd.MetricsSnapshot{
		Promotions: 7, Demotions: 16, ZeroCopyDemotions: 5, Aborts: 3,
		BytesPromoted: 7 << 20, BytesDemoted: 16 << 20, BytesMoved: 11 << 20,
		Evictions: 16, FailedEvictions: 3, BytesEvicted: 16 << 20,
		Latency:      sampleHistogram(100, 200, 400),
		Sizes:        sampleHistogram(1 << 20),
		PromotionLag: sampleHistogram(2_000_000),
		Stages:       spans.Snapshot(),
		Flight: flight.Snapshot{
			Enabled: true, RingDepth: 512, Breaches: 2, Events: 3, Captured: 5,
			Thresholds: []flight.LaneThreshold{
				{Class: 2, EWMANs: 1_500_000, ThresholdNs: 6_000_000, Count: 16},
				{Class: 3, EWMANs: 2_000_000, ThresholdNs: 8_000_000, Count: 7},
			},
		},
	}
	st := streamrt.MetricsSnapshot{
		FastChunks: 12, SlowChunks: 4, BytesPrefetched: 6 << 20,
		FillLatency: sampleHistogram(300, 600),
		Stages:      spans.Snapshot(),
	}

	h := NewHandler()
	h.Register(func() []Metric { return SwapdMetrics("swapd0", sw) })
	h.Register(func() []Metric { return StreamMetrics("", st) })
	text := h.MetricsText()
	if err := ParseExposition(text); err != nil {
		t.Fatalf("combined exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		`memif_swapd_promotions_total{device="swapd0"} 7`,
		`memif_swapd_demotions_total{device="swapd0"} 16`,
		`memif_swapd_zero_copy_demotions_total{device="swapd0"} 5`,
		`memif_swapd_txn_aborts_total{device="swapd0"} 3`,
		`memif_swapd_bytes_moved_total{device="swapd0"} 11534336`,
		`memif_swapd_promotion_lag_ns_count{device="swapd0"} 1`,
		`memif_swapd_evictions_total{device="swapd0"} 16`,
		`memif_swapd_stage_latency_ns_count{device="swapd0",stage="copy"} 16`,
		`memif_swapd_flight_breaches_total{device="swapd0"} 2`,
		`memif_swapd_flight_domain_events_total{device="swapd0"} 3`,
		`memif_swapd_flight_captured_total{device="swapd0"} 5`,
		`memif_swapd_flight_threshold_ns{device="swapd0",class="scavenger"} 6000000`,
		`memif_swapd_flight_threshold_ns{device="swapd0",class="promotion_lag"} 8000000`,
		"memif_stream_fast_chunks_total 12",
		`memif_stream_stage_latency_ns_count{stage="staging_wait"} 16`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestStreamEngineConverter renders a stream-engine snapshot — engine
// totals, two per-stream label sets, stage spans, and the flight
// recorder — and validates the exposition plus the headline series.
func TestStreamEngineConverter(t *testing.T) {
	var spans lifecycle.SpanSet
	for i := int64(1); i <= 8; i++ {
		spans.Observe(lifecycle.SpanCopy, i*100)
		spans.Observe(lifecycle.SpanTotal, i*150)
	}
	es := streamrt.EngineSnapshot{
		RingBufs: 8, BufBytes: 512 << 10, FreeBufs: 3, BufMmaps: 8,
		OpenStreams: 2, StreamsOpened: 5, StreamsClosed: 3,
		Fills: 40, FillBatches: 12,
		FastChunks: 36, SlowChunks: 4, BytesPrefetched: 36 << 19, Stalls: 0,
		Streams: []streamrt.StreamStats{
			{
				ID: 0, Name: "ingest-a", Kernel: "triad", Class: 1,
				Bytes: 20 << 19, Chunks: 20, Credits: 2, CreditsInFlight: 1,
				CreditsGranted: 21, CreditsReturned: 20,
				FastChunks: 18, SlowChunks: 2, BytesPrefetched: 18 << 19,
				Fills: 21, FillFailures: 1, TailWaits: 2,
				FillLatency: sampleHistogram(300, 600),
				Stages:      spans.Snapshot(),
			},
			{ID: 1, Name: "ingest-b", Kernel: "add", Credits: 4, Fills: 19, FastChunks: 18, SlowChunks: 2},
		},
		StreamNames: []string{"ingest-a", "ingest-b"},
		Flight: flight.Snapshot{
			Enabled: true, RingDepth: 256, Breaches: 3, Captured: 3,
			Thresholds: []flight.LaneThreshold{
				{Class: 1, EWMANs: 900_000, ThresholdNs: 2_700_000, Count: 21},
			},
		},
	}
	h := NewHandler()
	h.Register(func() []Metric { return StreamEngineMetrics("eng0", es) })
	text := h.MetricsText()
	if err := ParseExposition(text); err != nil {
		t.Fatalf("stream-engine exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		`memif_stream_engine_ring_buffers{device="eng0"} 8`,
		`memif_stream_engine_buf_mmaps_total{device="eng0"} 8`,
		`memif_stream_engine_open_streams{device="eng0"} 2`,
		`memif_stream_engine_fills_total{device="eng0"} 40`,
		`memif_stream_engine_fill_batches_total{device="eng0"} 12`,
		`memif_stream_engine_stalls_total{device="eng0"} 0`,
		`memif_stream_credits{device="eng0",stream="ingest-a"} 2`,
		`memif_stream_credits_in_flight{device="eng0",stream="ingest-a"} 1`,
		`memif_stream_credits_granted_total{device="eng0",stream="ingest-a"} 21`,
		`memif_stream_fast_chunks_total{device="eng0",stream="ingest-a"} 18`,
		`memif_stream_slow_chunks_total{device="eng0",stream="ingest-b"} 2`,
		`memif_stream_fill_failures_total{device="eng0",stream="ingest-a"} 1`,
		`memif_stream_fill_latency_ns_count{device="eng0",stream="ingest-a"} 2`,
		`memif_stream_stage_latency_ns_count{device="eng0",stream="ingest-a",stage="copy"} 8`,
		`memif_stream_flight_breaches_total{device="eng0"} 3`,
		`memif_stream_flight_threshold_ns{device="eng0",class="background"} 2700000`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestScrapeWhileSubmitting hammers /metrics rendering concurrently
// with live submitters — the scrape must stay valid and race-free
// (run under -race) while the device is at full throttle.
func TestScrapeWhileSubmitting(t *testing.T) {
	opts := realtime.DefaultOptions()
	d := realtime.Open(opts)
	defer d.Close()

	h := NewHandler()
	h.Register(RealtimeCollector("rt0", d))
	h.RegisterTrace("realtime", func() []lifecycle.Lifecycle {
		return d.Stats().Lifecycle.Captured
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := make([]byte, 4096)
			for {
				select {
				case <-stop:
					return
				default:
				}
				r := d.AllocRequest()
				if r == nil {
					for got := d.RetrieveCompleted(); got != nil; got = d.RetrieveCompleted() {
						d.FreeRequest(got)
					}
					continue
				}
				r.Src, r.Dst = src, make([]byte, len(src))
				if err := d.Submit(r); err != nil {
					d.FreeRequest(r)
					continue
				}
				for got := d.RetrieveCompleted(); got != nil; got = d.RetrieveCompleted() {
					d.FreeRequest(got)
				}
			}
		}()
	}

	deadline := time.After(200 * time.Millisecond)
	scrapes := 0
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			body := h.MetricsText()
			if err := ParseExposition(body); err != nil {
				t.Fatalf("scrape %d invalid mid-traffic: %v", scrapes, err)
			}
			if _, err := h.TraceJSON(); err != nil {
				t.Fatalf("trace render %d failed: %v", scrapes, err)
			}
			scrapes++
		}
	}
	close(stop)
	wg.Wait()
	if scrapes == 0 {
		t.Fatal("no scrapes completed")
	}
	// Drain whatever is left so Close finds a quiet device.
	for got := d.RetrieveCompleted(); got != nil; got = d.RetrieveCompleted() {
		d.FreeRequest(got)
	}
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return body
}

func findLine(text, prefix string) string {
	for _, ln := range strings.Split(text, "\n") {
		if strings.HasPrefix(ln, prefix) {
			return ln
		}
	}
	return ""
}
