package obshttp

import (
	"strings"
	"testing"
)

// FuzzParseExposition throws arbitrary bytes at the exposition
// validator. The validator runs in CI against scraped /metrics output,
// so it must be total: any input — torn lines, absurd label syntax,
// half a histogram — yields a nil or non-nil error, never a panic, and
// acceptance implies the input really carried at least one sample.
func FuzzParseExposition(f *testing.F) {
	f.Add([]byte("# HELP m total\n# TYPE m counter\nm 1\n"))
	f.Add([]byte("# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n"))
	f.Add([]byte("# TYPE g gauge\ng{tenant=\"a b\",class=\"fg\"} 42\n"))
	f.Add([]byte("m{label=\"unterminated 1\n"))
	f.Add([]byte("# TYPE h histogram\nh_bucket{le=\"5\"} 3\nh_bucket{le=\"1\"} 4\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		err := ParseExposition(data)
		if err != nil {
			return
		}
		// Accepted input must contain a non-comment, non-blank line — the
		// "at least one sample" contract.
		hasSample := false
		for _, line := range strings.Split(string(data), "\n") {
			trimmed := strings.TrimSpace(line)
			if trimmed != "" && !strings.HasPrefix(line, "#") {
				hasSample = true
			}
		}
		if !hasSample {
			t.Fatalf("ParseExposition accepted input with no samples: %q", data)
		}
	})
}
