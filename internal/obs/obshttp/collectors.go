package obshttp

import (
	"strconv"
	"time"

	"memif/internal/obs"
	"memif/internal/obs/flight"
	"memif/internal/realtime"
	"memif/internal/streamrt"
	"memif/internal/swapd"
)

// RealtimeMetrics maps a realtime.StatsSnapshot onto the
// memif_realtime_* namespace. A non-empty device value becomes a
// {device="..."} label on every series, so several devices can share a
// handler.
func RealtimeMetrics(device string, s realtime.StatsSnapshot) []Metric {
	lb := deviceLabel(device)
	ms := []Metric{
		counter("memif_realtime_submitted_total", "Requests accepted into the pipeline.", lb, s.Submitted),
		counter("memif_realtime_completed_total", "Requests reaching a terminal state (includes canceled/expired/failed).", lb, s.Completed),
		counter("memif_realtime_canceled_total", "Requests canceled before or during the copy.", lb, s.Canceled),
		counter("memif_realtime_expired_total", "Requests that missed their deadline.", lb, s.Expired),
		counter("memif_realtime_failed_total", "Requests failing for other reasons.", lb, s.Failed),
		counter("memif_realtime_kicks_total", "Kick-start syscall-equivalents issued.", lb, s.Kicks),
		counter("memif_realtime_worker_wakes_total", "Times the worker slept and was woken.", lb, s.WorkerWakes),
		counter("memif_realtime_busy_poll_spins_total", "Busy-poll worker spin passes with no work found.", lb, s.BusyPollSpins),
		counter("memif_realtime_busy_poll_parks_total", "Busy-poll idle budget exhaustions (worker fell back to park/wake).", lb, s.BusyPollParks),
		counter("memif_realtime_poller_spins_total", "Poll/PollContext micro-waits resolved by spinning (no sleep paid).", lb, s.PollerSpins),
		counter("memif_realtime_poller_parks_total", "Poll/PollContext blocking sleeps after the spin budget missed.", lb, s.PollerParks),
		counter("memif_realtime_batches_total", "SubmitBatch calls.", lb, s.Batches),
		counter("memif_realtime_chunks_total", "Controller work units executed.", lb, s.Chunks),
		counter("memif_realtime_bytes_moved_total", "Payload bytes actually copied.", lb, s.BytesMoved),
		counter("memif_realtime_steals_total", "Chunks popped from another controller's ring.", lb, s.Steals),
		counter("memif_realtime_dispatch_retries_total", "Worker backoffs with every dispatch ring full.", lb, s.DispatchRetries),
		counter("memif_realtime_enqueue_retries_total", "Transient slab-exhaustion retries in the flush path.", lb, s.EnqueueRetries),
		counter("memif_realtime_double_completes_total", "Completion paths finding the request already terminal (must stay 0).", lb, s.DoubleCompletes),
		counter("memif_realtime_shed_total", "Submissions rejected by the admission controller with ErrOverload.", lb, s.Shed),
		counter("memif_realtime_overload_completions_total", "Admission rejections surfaced as ErrOverload completions (batch members).", lb, s.Overloaded),
		counter("memif_realtime_inline_completed_total", "Requests copied inline by the worker (adaptive poll path).", lb, s.InlineCompleted),
		counter("memif_realtime_inline_retunes_total", "Adaptive inline-threshold recomputations.", lb, s.Retunes),
		counter("memif_realtime_aged_pops_total", "Dispatches serving a lower class out of strict-priority order.", lb, s.AgedPops),
		gauge("memif_realtime_inline_threshold_bytes", "Current adaptive inline-completion cutoff (0 = disabled).", lb, s.InlineThresholdBytes),
		gauge("memif_realtime_submission_depth", "Live submission-queue depth at scrape time.", lb, s.SubmissionDepth),
		gauge("memif_realtime_completion_depth", "Live completion-queue depth at scrape time.", lb, s.CompletionDepth),
		gauge("memif_realtime_submission_depth_high_water", "Deepest the submission queue has ever been.", lb, s.SubmissionHighWater),
		gauge("memif_realtime_completion_depth_high_water", "Deepest the completion queue has ever been.", lb, s.CompletionHighWater),
		hist("memif_realtime_request_latency_ns", "Submission-to-completion latency (ns).", lb, s.Latency),
		hist("memif_realtime_request_bytes", "Request payload size (bytes).", lb, s.Sizes),
	}
	for i, d := range s.StagingDepths {
		ms = append(ms, gauge("memif_realtime_staging_depth",
			"Live per-shard staging-queue depth at scrape time.",
			append(append([]Label(nil), lb...), Label{"shard", strconv.Itoa(i)}), d))
	}
	for i, d := range s.RingDepths {
		ms = append(ms, gauge("memif_realtime_ring_depth",
			"Live per-controller dispatch-ring occupancy at scrape time.",
			append(append([]Label(nil), lb...), Label{"controller", strconv.Itoa(i)}), d))
	}
	for i, d := range s.CompletionDepths {
		ms = append(ms, gauge("memif_realtime_completion_ring_depth",
			"Live per-ring completion occupancy at scrape time.",
			append(append([]Label(nil), lb...), Label{"ring", strconv.Itoa(i)}), d))
	}
	for c := range s.Classes {
		cs := s.Classes[c]
		clb := append(append([]Label(nil), lb...), Label{"class", realtime.ClassName(c)})
		ms = append(ms,
			counter("memif_realtime_class_submitted_total", "Accepted submissions by priority class.", clb, cs.Submitted),
			counter("memif_realtime_class_completed_total", "Terminal requests by priority class.", clb, cs.Completed),
			counter("memif_realtime_class_shed_total", "Admission rejections by priority class.", clb, cs.Shed),
			gauge("memif_realtime_class_in_flight", "Live accepted-but-not-terminal requests by priority class.", clb, cs.InFlight),
			gauge("memif_realtime_class_queue_depth", "Live per-class submission-queue depth at scrape time.", clb, cs.QueueDepth),
			hist("memif_realtime_class_request_latency_ns", "Submission-to-completion latency by priority class (ns).", clb, cs.Latency),
		)
	}
	for _, ts := range s.Tenants {
		tlb := append(append([]Label(nil), lb...), Label{"tenant", ts.Name})
		ms = append(ms,
			counter("memif_realtime_tenant_submitted_total", "Accepted submissions by tenant.", tlb, ts.Submitted),
			counter("memif_realtime_tenant_completed_total", "Terminal requests by tenant.", tlb, ts.Completed),
			counter("memif_realtime_tenant_shed_total", "Admission rejections charged to the tenant's quota.", tlb, ts.Shed),
			counter("memif_realtime_tenant_canceled_total", "ErrCanceled completions by tenant (Cancel and CancelAll).", tlb, ts.Canceled),
			gauge("memif_realtime_tenant_weight", "Configured DRR weight (requests per scheduling round).", tlb, ts.Weight),
			gauge("memif_realtime_tenant_slot_quota", "Configured in-flight cap (0 = default namespace, global admission).", tlb, ts.SlotQuota),
			gauge("memif_realtime_tenant_in_flight", "Live accepted-but-not-terminal requests by tenant.", tlb, ts.InFlight),
			gauge("memif_realtime_tenant_queue_depth", "Live flushed-but-not-dispatched requests by tenant.", tlb, ts.QueueDepth),
			hist("memif_realtime_tenant_request_latency_ns", "Submission-to-completion latency by tenant (ns).", tlb, ts.Latency),
		)
		if s.Lifecycle.Enabled {
			ms = append(ms, SpanMetrics("memif_realtime_tenant_stage_latency_ns",
				"Per-stage latency attribution of sampled requests by tenant (ns).", tlb, ts.Spans)...)
		}
	}
	if s.Lifecycle.Enabled {
		ms = append(ms,
			gauge("memif_realtime_trace_sample_shift", "Lifecycle sampling shift: 1 request in 2^shift is traced.", lb, int64(s.Lifecycle.SampleShift)),
			counter("memif_realtime_trace_begun_total", "Sampled lifecycles opened.", lb, s.Lifecycle.Begun),
			counter("memif_realtime_trace_ended_total", "Sampled lifecycles completed through retrieval.", lb, s.Lifecycle.Ended),
			counter("memif_realtime_trace_aborted_total", "Sampled lifecycles abandoned by failed submissions.", lb, s.Lifecycle.Aborted),
		)
		ms = append(ms, SpanMetrics("memif_realtime_stage_latency_ns",
			"Per-stage latency attribution of sampled requests (ns).", lb, s.Lifecycle.Spans)...)
		for c, sp := range s.Lifecycle.ClassSpans {
			clb := append(append([]Label(nil), lb...), Label{"class", realtime.ClassName(c)})
			ms = append(ms, SpanMetrics("memif_realtime_class_stage_latency_ns",
				"Per-stage latency attribution of sampled requests by priority class (ns).", clb, sp)...)
		}
	}
	if s.Flight.Enabled {
		tenantName := func(t int) string {
			if t >= 0 && t < len(s.Tenants) {
				return s.Tenants[t].Name
			}
			return strconv.Itoa(t)
		}
		ms = append(ms, flightMetrics("memif_realtime", lb, s.Flight, realtime.ClassName, tenantName)...)
	}
	return ms
}

// flightMetrics renders one subsystem's flight-recorder snapshot as the
// {prefix}_flight_* and {prefix}_slo_* series. className and tenantName
// map the recorder's numeric lanes onto the subsystem's label
// vocabulary.
func flightMetrics(prefix string, lb []Label, fs flight.Snapshot, className func(int) string, tenantName func(int) string) []Metric {
	if !fs.Enabled {
		return nil
	}
	ms := []Metric{
		counter(prefix+"_flight_breaches_total", "Completed requests whose latency breached the adaptive outlier threshold.", lb, fs.Breaches),
		counter(prefix+"_flight_stall_events_total", "Watchdog stall reports (worker stall, completion backlog, poller starvation).", lb, fs.Stalls),
		counter(prefix+"_flight_domain_events_total", "Domain events captured into the flight ring (txn aborts, promotion lag).", lb, fs.Events),
		counter(prefix+"_flight_captured_total", "Records pushed into the outlier ring, all kinds (full records at /debug/outliers).", lb, fs.Captured),
	}
	for _, lt := range fs.Thresholds {
		if lt.Tenant != 0 {
			continue // per-tenant lanes stay in /debug/outliers; /metrics keeps a bounded series set
		}
		clb := append(append([]Label(nil), lb...), Label{"class", className(lt.Class)})
		ms = append(ms,
			gauge(prefix+"_flight_threshold_ns", "Adaptive outlier threshold in force: max(floor, mult × EWMA) on the tenant-0 lane.", clb, lt.ThresholdNs),
			gauge(prefix+"_flight_latency_ewma_ns", "Lane latency EWMA behind the adaptive threshold (tenant-0 lane).", clb, lt.EWMANs),
		)
	}
	slo := fs.SLO
	if !slo.Enabled {
		return ms
	}
	for _, cs := range slo.Classes {
		clb := append(append([]Label(nil), lb...), Label{"class", className(cs.Class)})
		ms = append(ms,
			gauge(prefix+"_slo_objective_ns", "Per-class latency objective (ns).", clb, cs.ObjectiveNs),
			counter(prefix+"_slo_good_total", "OK completions within the class objective.", clb, cs.Good),
			counter(prefix+"_slo_requests_total", "OK completions measured against the class objective.", clb, cs.Total),
		)
		for _, b := range cs.Burn {
			wlb := append(append([]Label(nil), clb...), Label{"window", windowName(b.WindowNs)})
			ms = append(ms, gaugeF(prefix+"_slo_burn_rate",
				"Error-budget burn rate over the window (1.0 = bad-request fraction exactly consumes the budget).", wlb, b.Burn))
		}
	}
	for _, ts := range slo.Tenants {
		tlb := append(append([]Label(nil), lb...), Label{"tenant", tenantName(ts.Tenant)})
		ms = append(ms,
			counter(prefix+"_slo_tenant_good_total", "OK completions within the tenant's class objectives.", tlb, ts.Good),
			counter(prefix+"_slo_tenant_requests_total", "OK completions measured for the tenant.", tlb, ts.Total),
		)
		for _, b := range ts.Burn {
			wlb := append(append([]Label(nil), tlb...), Label{"window", windowName(b.WindowNs)})
			ms = append(ms, gaugeF(prefix+"_slo_tenant_burn_rate",
				"Per-tenant error-budget burn rate over the window (window=\"total\" = cumulative, beyond the windowed-tenant cap).", wlb, b.Burn))
		}
	}
	return ms
}

// windowName renders a burn window for the window label; 0 is the
// cumulative fallback for tenants beyond the windowed-history cap.
func windowName(ns int64) string {
	if ns <= 0 {
		return "total"
	}
	return time.Duration(ns).String()
}

// RealtimeCollector wraps a live device's Stats method as a Collector.
func RealtimeCollector(device string, d *realtime.Device) Collector {
	return func() []Metric { return RealtimeMetrics(device, d.Stats()) }
}

// SwapdMetrics maps a swapd.MetricsSnapshot onto the memif_swapd_*
// namespace. Stage latencies are in virtual (simulated) nanoseconds.
func SwapdMetrics(device string, s swapd.MetricsSnapshot) []Metric {
	lb := deviceLabel(device)
	ms := []Metric{
		counter("memif_swapd_promotions_total", "Completed promotions into fast memory.", lb, s.Promotions),
		counter("memif_swapd_demotions_total", "Completed demotions out of fast memory.", lb, s.Demotions),
		counter("memif_swapd_zero_copy_demotions_total", "Demotions committed as pure PTE flips (valid slow-tier shadow, zero bytes moved).", lb, s.ZeroCopyDemotions),
		counter("memif_swapd_txn_aborts_total", "Transactional migrations aborted by racing application writes.", lb, s.Aborts),
		counter("memif_swapd_bytes_promoted_total", "Requested bytes of completed promotions.", lb, s.BytesPromoted),
		counter("memif_swapd_bytes_demoted_total", "Requested bytes of completed demotions.", lb, s.BytesDemoted),
		counter("memif_swapd_bytes_moved_total", "Bytes actually copied by DMA (excludes zero-copy PTE flips).", lb, s.BytesMoved),
		hist("memif_swapd_promotion_lag_ns", "Region-turned-hot to promotion-committed lag (virtual ns).", lb, s.PromotionLag),
		// Legacy eviction view (demotion-side aliases), kept for
		// dashboards written against the seed daemon.
		counter("memif_swapd_evictions_total", "Completed fast-memory evictions.", lb, s.Evictions),
		counter("memif_swapd_failed_evictions_total", "Evictions aborted by racing application accesses.", lb, s.FailedEvictions),
		counter("memif_swapd_bytes_evicted_total", "Bytes migrated back to the slow node.", lb, s.BytesEvicted),
		hist("memif_swapd_eviction_latency_ns", "Submission-to-completion latency of successful migrations (virtual ns).", lb, s.Latency),
		hist("memif_swapd_eviction_bytes", "Per-migration payload size (bytes).", lb, s.Sizes),
	}
	ms = append(ms, SpanMetrics("memif_swapd_stage_latency_ns",
		"Per-stage latency attribution of evictions (virtual ns).", lb, s.Stages)...)
	if s.Flight.Enabled {
		ms = append(ms, flightMetrics("memif_swapd", lb, s.Flight, swapdLane, strconv.Itoa)...)
	}
	return ms
}

// swapdLane names the swap daemon's flight-recorder class lanes: the
// QoS classes its migrations ride, plus the borrowed promotion-lag
// lane one past them.
func swapdLane(c int) string {
	if c == 3 {
		return "promotion_lag"
	}
	return realtime.ClassName(c)
}

// SwapdCollector wraps a live daemon's Metrics method as a Collector.
func SwapdCollector(device string, d *swapd.Daemon) Collector {
	return func() []Metric { return SwapdMetrics(device, d.Metrics()) }
}

// StreamMetrics maps a streamrt.MetricsSnapshot onto the memif_stream_*
// namespace. Stage latencies are in virtual (simulated) nanoseconds.
func StreamMetrics(device string, s streamrt.MetricsSnapshot) []Metric {
	lb := deviceLabel(device)
	ms := []Metric{
		counter("memif_stream_fast_chunks_total", "Chunks consumed out of prefetch buffers.", lb, s.FastChunks),
		counter("memif_stream_slow_chunks_total", "Chunks consumed straight from the slow node.", lb, s.SlowChunks),
		counter("memif_stream_bytes_prefetched_total", "Payload replicated into prefetch buffers.", lb, s.BytesPrefetched),
		hist("memif_stream_fill_latency_ns", "Submit-to-completion latency of prefetch fills (virtual ns).", lb, s.FillLatency),
	}
	return append(ms, SpanMetrics("memif_stream_stage_latency_ns",
		"Per-stage latency attribution of prefetch fills (virtual ns).", lb, s.Stages)...)
}

// StreamCollector wraps a live Metrics set's Snapshot method as a
// Collector.
func StreamCollector(device string, m *streamrt.Metrics) Collector {
	return func() []Metric { return StreamMetrics(device, m.Snapshot()) }
}

// StreamEngineMetrics maps a streamrt.EngineSnapshot onto the
// memif_stream_engine_* (ring/engine totals) and per-stream
// memif_stream_* {stream="..."} namespaces. Latencies are in virtual
// (simulated) nanoseconds.
func StreamEngineMetrics(device string, s streamrt.EngineSnapshot) []Metric {
	lb := deviceLabel(device)
	ms := []Metric{
		gauge("memif_stream_engine_ring_buffers", "Pinned prefetch buffers in the engine's recycled ring.", lb, int64(s.RingBufs)),
		gauge("memif_stream_engine_buf_bytes", "Size of each ring buffer (bytes).", lb, s.BufBytes),
		gauge("memif_stream_engine_free_buffers", "Ring buffers currently unclaimed by any fill.", lb, int64(s.FreeBufs)),
		counter("memif_stream_engine_buf_mmaps_total", "mmap calls ever made for the ring — O(ring size), never O(chunks).", lb, s.BufMmaps),
		gauge("memif_stream_engine_open_streams", "Streams currently open on the engine.", lb, int64(s.OpenStreams)),
		counter("memif_stream_engine_streams_opened_total", "Streams ever opened on the engine.", lb, s.StreamsOpened),
		counter("memif_stream_engine_streams_closed_total", "Streams closed (explicitly or by completion).", lb, s.StreamsClosed),
		counter("memif_stream_engine_fills_total", "Prefetch fill grants submitted across all streams.", lb, s.Fills),
		counter("memif_stream_engine_fill_batches_total", "SubmitBatch flushes that carried the fills (fills > batches once coalescing works).", lb, s.FillBatches),
		counter("memif_stream_engine_fast_chunks_total", "Chunks consumed zero-copy from ring buffers, all streams.", lb, s.FastChunks),
		counter("memif_stream_engine_slow_chunks_total", "Chunks consumed via the never-stall fallback, all streams.", lb, s.SlowChunks),
		counter("memif_stream_engine_bytes_prefetched_total", "Payload replicated into ring buffers, all streams.", lb, s.BytesPrefetched),
		counter("memif_stream_engine_stalls_total", "Consume waits with no fill in flight (must stay 0).", lb, s.Stalls),
	}
	for i := range s.Streams {
		st := &s.Streams[i]
		slb := append(append([]Label(nil), lb...), Label{"stream", st.Name})
		ms = append(ms,
			gauge("memif_stream_credits", "Configured credit allowance (backpressure bound on granted fills).", slb, int64(st.Credits)),
			gauge("memif_stream_credits_in_flight", "Credits currently spent on granted fills (in flight or awaiting consume).", slb, int64(st.CreditsInFlight)),
			counter("memif_stream_credits_granted_total", "Cumulative credit grants (granted - returned = in flight).", slb, st.CreditsGranted),
			counter("memif_stream_credits_returned_total", "Cumulative credit returns on consume/failure/close.", slb, st.CreditsReturned),
			counter("memif_stream_fast_chunks_total", "Chunks consumed zero-copy out of ring buffers.", slb, st.FastChunks),
			counter("memif_stream_slow_chunks_total", "Chunks consumed straight from the slow node.", slb, st.SlowChunks),
			counter("memif_stream_bytes_prefetched_total", "Payload replicated into ring buffers for this stream.", slb, st.BytesPrefetched),
			counter("memif_stream_fills_total", "Fill grants submitted for this stream.", slb, st.Fills),
			counter("memif_stream_fill_failures_total", "Fills completing with an error.", slb, st.FillFailures),
			counter("memif_stream_tail_waits_total", "Benign end-of-stream waits for in-flight fills.", slb, st.TailWaits),
			counter("memif_stream_stalls_total", "Waits with no fill in flight (must stay 0).", slb, st.Stalls),
			hist("memif_stream_fill_latency_ns", "Submit-to-completion latency of prefetch fills (virtual ns).", slb, st.FillLatency),
		)
		ms = append(ms, SpanMetrics("memif_stream_stage_latency_ns",
			"Per-stage latency attribution of prefetch fills (virtual ns).", slb, st.Stages)...)
	}
	if s.Flight.Enabled {
		streamName := func(t int) string {
			if t >= 0 && t < len(s.StreamNames) {
				return s.StreamNames[t]
			}
			return strconv.Itoa(t)
		}
		ms = append(ms, flightMetrics("memif_stream", lb, s.Flight, realtime.ClassName, streamName)...)
	}
	return ms
}

// StreamEngineCollector wraps a live engine's Snapshot method as a
// Collector.
func StreamEngineCollector(device string, e *streamrt.Engine) Collector {
	return func() []Metric { return StreamEngineMetrics(device, e.Snapshot()) }
}

func deviceLabel(device string) []Label {
	if device == "" {
		return nil
	}
	return []Label{{"device", device}}
}

func counter(name, help string, lb []Label, v int64) Metric {
	return Metric{Name: name, Help: help, Type: TypeCounter, Labels: lb, Value: float64(v)}
}

func gauge(name, help string, lb []Label, v int64) Metric {
	return Metric{Name: name, Help: help, Type: TypeGauge, Labels: lb, Value: float64(v)}
}

func gaugeF(name, help string, lb []Label, v float64) Metric {
	return Metric{Name: name, Help: help, Type: TypeGauge, Labels: lb, Value: v}
}

func hist(name, help string, lb []Label, h obs.HistogramSnapshot) Metric {
	return Metric{Name: name, Help: help, Type: TypeHistogram, Labels: lb, Hist: h}
}
