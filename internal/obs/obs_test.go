package obs

import (
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Observe(int64(i*1000 + j))
			}
		}(i)
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Load())
	}
	if g.Load() != 7999 {
		t.Errorf("gauge high watermark = %d, want 7999", g.Load())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 1000, 1 << 40} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Buckets[0] != 1 { // v=0
		t.Errorf("bucket 0 = %d", s.Buckets[0])
	}
	if s.Buckets[1] != 1 { // v=1
		t.Errorf("bucket 1 = %d", s.Buckets[1])
	}
	if s.Buckets[2] != 2 { // v=2,3
		t.Errorf("bucket 2 = %d", s.Buckets[2])
	}
	if s.Buckets[3] != 1 { // v=4
		t.Errorf("bucket 3 = %d", s.Buckets[3])
	}
	if s.Buckets[10] != 1 { // v=1000: 2^9 <= 1000 < 2^10
		t.Errorf("bucket 10 = %d", s.Buckets[10])
	}
	if s.Buckets[41] != 1 { // v=2^40
		t.Errorf("bucket 41 = %d", s.Buckets[41])
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got < 500 || got > 1023 {
		t.Errorf("p50 bound = %d, want within [500, 1023]", got)
	}
	if got := s.Max(); got < 1000 {
		t.Errorf("max bound = %d, want >= 1000", got)
	}
	if m := s.Mean(); m < 500 || m > 501 {
		t.Errorf("mean = %v, want 500.5", m)
	}
	if s.String() == "n=0" {
		t.Error("String() reported empty")
	}
}

func TestHistogramDelta(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	warm := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.Observe(1 << 20)
	}
	d := h.Snapshot().Delta(warm)
	if d.Count != 50 {
		t.Errorf("delta count = %d, want 50", d.Count)
	}
	if d.Sum != 50<<20 {
		t.Errorf("delta sum = %d, want %d", d.Sum, 50<<20)
	}
	if d.Buckets[bucketOf(10)] != 0 {
		t.Errorf("warmup bucket leaked into delta: %d", d.Buckets[bucketOf(10)])
	}
	if d.Buckets[bucketOf(1<<20)] != 50 {
		t.Errorf("delta bucket = %d, want 50", d.Buckets[bucketOf(1<<20)])
	}
	if got := d.Quantile(0.5); got < 1<<20 {
		t.Errorf("delta p50 bound = %d, want >= %d", got, 1<<20)
	}
	// Delta against a later snapshot clamps rather than going negative.
	if z := warm.Delta(h.Snapshot()); z.Count != 0 {
		t.Errorf("reversed delta count = %d, want 0", z.Count)
	}
}

func TestQuantileEmptyAndEdges(t *testing.T) {
	var h Histogram
	if h.Snapshot().Quantile(0.99) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	h.Observe(5)
	s := h.Snapshot()
	if s.Quantile(0) != s.Quantile(1) {
		t.Error("single-sample quantiles disagree")
	}
}

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	tr.Record(1, 2, 3, 4) // must not panic
	if got := tr.Snapshot(); got != nil {
		t.Errorf("nil trace snapshot = %v", got)
	}
	if NewTrace(0) != nil {
		t.Error("NewTrace(0) should be nil")
	}
}

func TestTraceOrderAndWrap(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Record(int64(i), uint32(i), uint64(i), 0)
	}
	evs := tr.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, e := range evs {
		want := uint64(7 + i) // seqs 7..10 survive the wrap
		if e.Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, want)
		}
		if e.Nano != int64(e.Seq-1) || uint64(e.Kind) != e.Seq-1 {
			t.Errorf("event %d fields inconsistent: %+v", i, e)
		}
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(int64(i), uint32(g), uint64(i), uint64(g))
			}
		}(g)
	}
	wg.Wait()
	evs := tr.Snapshot()
	if len(evs) != 64 {
		t.Fatalf("snapshot len = %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot not seq-ordered at %d", i)
		}
	}
}

func TestFormatEvents(t *testing.T) {
	tr := NewTrace(2)
	tr.Record(10, 1, 42, 4096)
	out := FormatEvents(tr.Snapshot(), func(k uint32) string { return "submit" })
	if out == "" {
		t.Error("empty render")
	}
}

func TestGaugeCurrentAndWatermark(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Set(50)
	g.Set(3)
	if cur := g.Current(); cur != 3 {
		t.Errorf("Current() = %d, want 3 (last set)", cur)
	}
	if hw := g.Load(); hw != 50 {
		t.Errorf("Load() = %d, want watermark 50", hw)
	}
	g.Set(-1)
	if cur := g.Current(); cur != -1 {
		t.Errorf("Current() = %d, want -1", cur)
	}
	if hw := g.Load(); hw != 50 {
		t.Errorf("Load() = %d after lower Set, want 50", hw)
	}
}

func TestQuantileInterp(t *testing.T) {
	var h Histogram
	// 100 samples spread across bucket [64,127] (bits.Len == 7).
	for i := 0; i < 100; i++ {
		h.Observe(64 + int64(i)%64)
	}
	s := h.Snapshot()
	p50 := s.QuantileInterp(0.50)
	if p50 < 64 || p50 > 127 {
		t.Errorf("p50 = %f, want inside [64,127]", p50)
	}
	// Interpolation must land mid-bucket, not at the upper bound the
	// plain Quantile reports.
	if p50 == float64(s.Quantile(0.50)) {
		t.Errorf("p50 interp %f equals bucket upper bound %d", p50, s.Quantile(0.50))
	}
	if got := s.QuantileInterp(0); got < 64 || got >= 65 {
		t.Errorf("q=0 -> %f, want bucket lower edge 64", got)
	}
	if got := s.QuantileInterp(1); got != 127 {
		t.Errorf("q=1 -> %f, want bucket upper edge 127", got)
	}
	// Monotone in q.
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := s.QuantileInterp(q)
		if v < prev {
			t.Fatalf("QuantileInterp not monotone: q=%.2f -> %f < %f", q, v, prev)
		}
		prev = v
	}
	// Empty histogram and out-of-range q are safe.
	var empty HistogramSnapshot
	if empty.QuantileInterp(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	if v := s.QuantileInterp(2); v != 127 {
		t.Errorf("q>1 clamps to max bucket edge, got %f", v)
	}
}
