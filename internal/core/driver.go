package core

import (
	"fmt"
	"memif/internal/dma"
	"memif/internal/hw"
	"memif/internal/pagetable"
	"memif/internal/phys"
	"memif/internal/sim"
	"memif/internal/stats"
	"memif/internal/uapi"
	"memif/internal/vm"
)

// slotKeyImpl is the PTE slot type used as the recover-map key.
type slotKeyImpl = pagetable.Slot

// execCtx identifies which of the three execution paths (Section 5.4) is
// running driver code.
type execCtx int

const (
	ctxSyscall execCtx = iota // application process inside ioctl(MOV_ONE)
	ctxKthread                // the memif kernel worker thread
	ctxIRQ                    // DMA completion interrupt handler
)

// mappedPTE is one PTE referencing a migrating page. With the reverse
// map, a page shared between processes has several; the driver updates
// them all (the shared-page support Section 6.7 leaves as future work).
type mappedPTE struct {
	as        *vm.AddressSpace
	slot      *pagetable.Slot
	vpn       uint64        // page number in its own address space
	old       pagetable.PTE // mapping before the migration began
	installed pagetable.PTE // what Remap installed (semi-final/special/migration)
}

// pageMove tracks one page of an in-flight migration.
type pageMove struct {
	addr     int64
	maps     []mappedPTE
	oldFrame *phys.Frame
	newFrame *phys.Frame

	// Transactional-migration page states.
	zeroCopy bool // newFrame is a still-valid shadow copy: commit is a PTE flip
	noop     bool // page already resides on the destination node
}

// inflight is one request being served: its pages, its DMA batches, and
// completion state.
type inflight struct {
	req       *uapi.MovReq
	pages     []pageMove // migrations only
	batches   [][]dma.Segment
	nextBatch int
	transfer  *dma.Transfer
	aborted   bool // recover-mode fault handler took over
	released  bool
	txn       bool // transactional migration (ReqTxn)
	keepSrc   bool // retain committed source frames as shadow copies

	// Migration claim to drop once the move ends (success or abort).
	claimVPN uint64
	claimN   int
}

// dropClaim releases the in-flight migration claim exactly once.
func (inf *inflight) dropClaim(as *vm.AddressSpace) {
	if inf.claimN > 0 {
		as.MigRelease(inf.claimVPN, inf.claimN)
		inf.claimN = 0
	}
}

// busy charges CPU time to a phase, a meter and the clock at once.
func (d *Device) busy(p *sim.Proc, m *sim.Meter, phase string, ns int64) {
	if ns <= 0 {
		return
	}
	d.Breakdown.Add(phase, ns)
	p.Busy(ns, m)
}

// serveNext dequeues and serves one request from the submission queue.
// found reports whether a request was dequeued; started whether it
// resulted in a DMA transfer (and hence a completion that will drive
// further progress). A found-but-not-started request completed inline —
// either it failed validation (failure queue) or it was a zero-copy
// transactional commit with no bytes to move.
func (d *Device) serveNext(p *sim.Proc, m *sim.Meter, ctx execCtx) (found, started bool) {
	d.busy(p, m, stats.PhaseInterface, d.M.Plat.Cost.QueueOp)
	idx, _, ok := d.Area.Submission.Dequeue()
	if !ok {
		return false, false
	}
	if d.lastArrival != 0 {
		gap := int64(p.Now() - d.lastArrival)
		d.gapEWMA = (3*d.gapEWMA + gap) / 4
	}
	d.lastArrival = p.Now()
	req, valid := d.Area.Req(idx)
	if !valid {
		return true, false // hostile index: drop it, stay safe
	}
	return true, d.serveReq(p, m, ctx, req)
}

// serveReq performs operations 1–3 of Table 1 for one request and starts
// its DMA. Completion (operations 4–5) happens on the interrupt path or,
// for small requests served by the kernel thread, in polling mode. It
// reports whether a transfer was started (false: the request failed
// validation and its failure notification has already been posted).
func (d *Device) serveReq(p *sim.Proc, m *sim.Meter, ctx execCtx, req *uapi.MovReq) bool {
	req.Status = uapi.StatusInFlight
	req.Dispatched = p.Now()
	inf, errc := d.prepare(p, m, req)
	if errc != uapi.ErrNone {
		d.complete(p, m, req, errc)
		return false
	}
	// Dispatched → CopyStart brackets the page lookup and PTE work of
	// prepare; CopyStart → Completed the DMA configuration and copy.
	req.CopyStart = p.Now()
	if req.Op == uapi.OpMigrate {
		d.stats.Migrations++
		if inf.txn {
			d.stats.TxnMigrations++
		}
	} else {
		d.stats.Replications++
	}

	// A transactional migration satisfied entirely by valid shadow
	// copies (and pages already in place) has no bytes to move: commit
	// it here, with no DMA and hence no completion interrupt. Returning
	// false tells the syscall path to wake the worker itself.
	if inf.txn && len(inf.batches) == 0 {
		d.finish(p, m, inf)
		return false
	}

	// Decide the completion mode (Section 5.4): the kernel thread polls
	// small transfers with the interrupt off; everything else, and
	// everything started from the syscall path, completes by interrupt.
	poll := ctx == ctxKthread && req.Length < d.opts.PollThresholdBytes
	if !poll {
		d.startBatch(p, m, inf, true)
		return true
	}
	for {
		if !d.startBatch(p, m, inf, false) {
			return true // failed mid-flight; already completed
		}
		p.WaitEvent(inf.transfer.Done)
		d.busy(p, m, stats.PhaseInterface, d.M.Plat.Cost.PollCheck)
		if inf.aborted {
			return true // recover handler already completed the request
		}
		if inf.nextBatch >= len(inf.batches) {
			d.finish(p, m, inf)
			return true
		}
	}
}

// prepare validates the request and performs Prep (gang page lookup) and,
// for migrations, Remap. It returns the inflight state or a failure code.
func (d *Device) prepare(p *sim.Proc, m *sim.Meter, req *uapi.MovReq) (*inflight, uapi.ErrCode) {
	as := d.AS
	pb := as.PageBytes
	if req.Length <= 0 || req.Length%pb != 0 {
		return nil, uapi.ErrBadRequest
	}
	if as.CheckRegion(req.SrcBase, req.Length) != nil {
		return nil, uapi.ErrBadRequest
	}
	n := int(req.Length / pb)

	switch req.Op {
	case uapi.OpReplicate:
		if as.CheckRegion(req.DstBase, req.Length) != nil {
			return nil, uapi.ErrBadRequest
		}
		src, ok := d.lookupRegion(p, m, req.SrcBase, n)
		if !ok {
			return nil, uapi.ErrBadRequest
		}
		dst, ok := d.lookupRegion(p, m, req.DstBase, n)
		if !ok {
			return nil, uapi.ErrBadRequest
		}
		segs := make([]dma.Segment, n)
		for i := 0; i < n; i++ {
			sf, okS := as.Mem.Lookup(src[i].Load().Frame())
			df, okD := as.Mem.Lookup(dst[i].Load().Frame())
			if !okS || !okD {
				return nil, uapi.ErrBadRequest
			}
			segs[i] = dma.Segment{Src: sf, Dst: df, Bytes: pb}
		}
		return &inflight{req: req, batches: d.splitBatches(segs)}, uapi.ErrNone

	case uapi.OpMigrate:
		if !d.hasNode(req.DstNode) {
			return nil, uapi.ErrBadRequest
		}
		// Take the per-page migration claim (the page-lock role): a
		// concurrent move of any overlapping page — from this device
		// or another on the same address space — bounces with EAGAIN.
		vpn := as.VPN(req.SrcBase)
		if !as.MigClaim(vpn, n) {
			return nil, uapi.ErrBusy
		}
		slots, ok := d.lookupRegion(p, m, req.SrcBase, n)
		if !ok {
			as.MigRelease(vpn, n)
			return nil, uapi.ErrBadRequest
		}
		if req.Flags&uapi.ReqTxn != 0 {
			inf := &inflight{
				req: req, claimVPN: vpn, claimN: n,
				txn: true, keepSrc: req.Flags&uapi.ReqKeepSrc != 0,
			}
			if errc := d.prepareTxn(p, m, inf, slots, req); errc != uapi.ErrNone {
				as.MigRelease(vpn, n)
				return nil, errc
			}
			return inf, uapi.ErrNone
		}
		inf := &inflight{req: req, claimVPN: vpn, claimN: n}
		if errc := d.remap(p, m, inf, slots, req); errc != uapi.ErrNone {
			as.MigRelease(vpn, n)
			return nil, errc
		}
		segs := make([]dma.Segment, n)
		for i, pg := range inf.pages {
			segs[i] = dma.Segment{Src: pg.oldFrame, Dst: pg.newFrame, Bytes: pb}
		}
		inf.batches = d.splitBatches(segs)
		return inf, uapi.ErrNone
	default:
		return nil, uapi.ErrBadRequest
	}
}

func (d *Device) hasNode(id hw.NodeID) bool {
	for _, n := range d.M.Plat.Nodes {
		if n.ID == id {
			return true
		}
	}
	return false
}

// lookupRegion performs the Prep operation: locate the PTE slots of all
// pages in the region, with gang lookup (Section 5.1) or, when disabled
// for ablation, a full vertical walk per page.
func (d *Device) lookupRegion(p *sim.Proc, m *sim.Meter, base int64, n int) ([]*pagetable.Slot, bool) {
	as := d.AS
	cost := &d.M.Plat.Cost
	vpn := as.VPN(base)
	var slots []*pagetable.Slot
	var wst pagetable.WalkStats
	if d.opts.GangLookup {
		slots, wst = as.Table.GangLookup(vpn, n)
	} else {
		slots = make([]*pagetable.Slot, n)
		for i := 0; i < n; i++ {
			s, st := as.Table.Lookup(vpn + uint64(i))
			slots[i] = s
			wst.Add(st)
		}
	}
	d.busy(p, m, stats.PhasePrep,
		int64(wst.Verticals)*cost.PageLookupVertical+int64(wst.Horizontals)*cost.PageLookupHorizontal)
	for _, s := range slots {
		if s == nil || !s.Load().Has(pagetable.FlagPresent) {
			return nil, false
		}
	}
	return slots, true
}

// mappingsOf collects every PTE referencing the frame through the
// machine's reverse map; without one, the requester's own slot is the
// only mapping.
func (d *Device) mappingsOf(f *phys.Frame, slot *pagetable.Slot, addr int64) []mappedPTE {
	if d.AS.Rmap != nil {
		if ms := d.AS.Rmap.Lookup(f.ID); len(ms) > 0 {
			out := make([]mappedPTE, len(ms))
			for i, mm := range ms {
				out[i] = mappedPTE{as: mm.AS, slot: mm.Slot, vpn: mm.AS.VPN(mm.Addr), old: mm.Slot.Load()}
			}
			return out
		}
	}
	return []mappedPTE{{as: d.AS, slot: slot, vpn: d.AS.VPN(addr), old: slot.Load()}}
}

// remap performs operation 2 for a migration: allocate destination pages
// and install the race-policy PTE in every mapping of every page.
func (d *Device) remap(p *sim.Proc, m *sim.Meter, inf *inflight, slots []*pagetable.Slot, req *uapi.MovReq) uapi.ErrCode {
	as := d.AS
	cost := &d.M.Plat.Cost
	pb := as.PageBytes
	perMapping := cost.PTEReplace + cost.TLBFlushPage + cost.RmapBook
	var remapNS int64

	for i, slot := range slots {
		old := slot.Load()
		oldFrame, ok := as.Mem.Lookup(old.Frame())
		if !ok {
			d.rollbackRemap(p, m, inf)
			return uapi.ErrBadRequest
		}
		newFrame, err := as.Mem.Alloc(req.DstNode, pb)
		if err != nil {
			d.rollbackRemap(p, m, inf)
			return uapi.ErrNoMemory
		}
		addr := req.SrcBase + int64(i)*pb
		pg := pageMove{
			addr:     addr,
			maps:     d.mappingsOf(oldFrame, slot, addr),
			oldFrame: oldFrame,
			newFrame: newFrame,
		}
		var installed pagetable.PTE
		switch d.opts.RaceMode {
		case RaceDetect:
			// Semi-final PTE: identical to the final one except the
			// young bit is set. The page is remapped to the new frame
			// immediately; a reference before Release clears young
			// and the release CAS reports the race.
			installed = pagetable.Make(newFrame.ID,
				pagetable.FlagPresent|pagetable.FlagWrite|pagetable.FlagYoung)
			oldFrame.RefCount -= len(pg.maps)
			newFrame.RefCount += len(pg.maps)
			if as.Rmap != nil {
				as.Rmap.Move(oldFrame, newFrame)
			}
		case RaceRecover:
			// Keep the old frame mapped read-only; writes trap into
			// the recovery fault handler.
			installed = pagetable.Make(oldFrame.ID,
				pagetable.FlagPresent|pagetable.FlagRecover)
		case RacePrevent:
			// Baseline-style migration PTE: accessors block until
			// Release.
			installed = pagetable.Make(oldFrame.ID,
				pagetable.FlagPresent|pagetable.FlagMigration)
		}
		for j := range pg.maps {
			pg.maps[j].installed = installed
			pg.maps[j].slot.Store(installed)
			pg.maps[j].as.InvalidatePage(pg.maps[j].vpn)
			if d.opts.RaceMode == RaceRecover {
				d.recoverMap[pg.maps[j].slot] = inf
			}
		}
		remapNS += cost.PageAlloc + int64(len(pg.maps))*perMapping
		inf.pages = append(inf.pages, pg)
	}
	d.busy(p, m, stats.PhaseRemap, remapNS)
	return uapi.ErrNone
}

// prepareTxn performs the Nomad-style prepare for a transactional
// migration: no PTE is touched except to clear the dirty bit as the copy
// baseline, so the application keeps reading and writing the page at full
// speed during the copy. Per page it decides one of three outcomes —
// noop (already on the destination node), zero-copy (a still-valid
// shadow copy sits on the destination: commit will be a bare PTE flip),
// or copy (allocate a destination frame and DMA the bytes). Validation,
// not the race policy, rejects shared pages: the single commit CAS can
// only retire one mapping.
func (d *Device) prepareTxn(p *sim.Proc, m *sim.Meter, inf *inflight, slots []*pagetable.Slot, req *uapi.MovReq) uapi.ErrCode {
	as := d.AS
	cost := &d.M.Plat.Cost
	pb := as.PageBytes
	var ns int64
	var segs []dma.Segment

	for i, slot := range slots {
		old := slot.Load()
		oldFrame, ok := as.Mem.Lookup(old.Frame())
		if !ok {
			d.rollbackTxnPrep(p, m, inf)
			return uapi.ErrBadRequest
		}
		if oldFrame.RefCount > 1 {
			d.rollbackTxnPrep(p, m, inf)
			return uapi.ErrBadRequest
		}
		if as.Rmap != nil && len(as.Rmap.Lookup(oldFrame.ID)) > 1 {
			d.rollbackTxnPrep(p, m, inf)
			return uapi.ErrBadRequest
		}
		addr := req.SrcBase + int64(i)*pb
		vpn := as.VPN(addr)
		pg := pageMove{
			addr:     addr,
			maps:     []mappedPTE{{as: as, slot: slot, vpn: vpn, old: old}},
			oldFrame: oldFrame,
		}
		if oldFrame.Node == req.DstNode {
			pg.noop = true
			inf.pages = append(inf.pages, pg)
			continue
		}
		// Shadow validity is judged against the pre-baseline PTE: a
		// dirty bit set now means the page changed since the shadow was
		// taken, regardless of what the scan below clears.
		if sh, of := as.ShadowAt(vpn); sh != nil {
			if of != old.Frame() || old.Has(pagetable.FlagDirty) {
				as.DropShadow(vpn)
				ns += cost.PageFree
			} else if sh.Node == req.DstNode {
				pg.zeroCopy = true
				pg.newFrame = sh
			}
		}
		// Clear dirty as the copy baseline; a write from here on marks
		// the page dirty again and the commit CAS will refuse it.
		if old.Has(pagetable.FlagDirty) {
			for {
				cur := slot.Load()
				clean := cur.Without(pagetable.FlagDirty)
				if slot.CompareAndSwap(cur, clean) {
					break
				}
			}
			ns += cost.PTECas
		}
		if !pg.zeroCopy {
			newFrame, err := as.Mem.Alloc(req.DstNode, pb)
			if err != nil {
				d.rollbackTxnPrep(p, m, inf)
				return uapi.ErrNoMemory
			}
			pg.newFrame = newFrame
			ns += cost.PageAlloc
			segs = append(segs, dma.Segment{Src: oldFrame, Dst: newFrame, Bytes: pb})
		}
		inf.pages = append(inf.pages, pg)
	}
	d.busy(p, m, stats.PhaseRemap, ns)
	if len(segs) > 0 {
		inf.batches = d.splitBatches(segs)
	}
	return uapi.ErrNone
}

// rollbackTxnPrep frees destination frames allocated by a partially
// prepared transactional migration. Nothing else changed: the pages were
// never remapped.
func (d *Device) rollbackTxnPrep(p *sim.Proc, m *sim.Meter, inf *inflight) {
	cost := &d.M.Plat.Cost
	var ns int64
	for _, pg := range inf.pages {
		if pg.newFrame != nil && !pg.zeroCopy && !pg.noop {
			d.AS.Mem.Free(pg.newFrame)
			ns += cost.PageFree
		}
	}
	d.busy(p, m, stats.PhaseRemap, ns)
	inf.pages = nil
}

// rollbackRemap undoes partially completed remaps after a mid-request
// allocation failure.
func (d *Device) rollbackRemap(p *sim.Proc, m *sim.Meter, inf *inflight) {
	cost := &d.M.Plat.Cost
	var ns int64
	for _, pg := range inf.pages {
		for _, mp := range pg.maps {
			mp.slot.Store(mp.old)
			mp.as.InvalidatePage(mp.vpn)
			ns += cost.PTEReplace + cost.TLBFlushPage
			switch d.opts.RaceMode {
			case RaceRecover:
				delete(d.recoverMap, mp.slot)
			case RacePrevent:
				mp.as.ReleaseMigrationGate(mp.slot)
			}
		}
		if d.opts.RaceMode == RaceDetect {
			pg.oldFrame.RefCount += len(pg.maps)
			pg.newFrame.RefCount -= len(pg.maps)
			if d.AS.Rmap != nil {
				d.AS.Rmap.Move(pg.newFrame, pg.oldFrame)
			}
		}
		ns += cost.PageFree
		if pg.newFrame.RefCount == 0 {
			d.AS.Mem.Free(pg.newFrame)
		}
	}
	d.busy(p, m, stats.PhaseRemap, ns)
	inf.pages = nil
}

// splitBatches cuts a segment list into DMA transfers of at most
// MaxChainPages descriptors each.
func (d *Device) splitBatches(segs []dma.Segment) [][]dma.Segment {
	var out [][]dma.Segment
	for len(segs) > 0 {
		n := d.opts.MaxChainPages
		if n > len(segs) {
			n = len(segs)
		}
		out = append(out, segs[:n])
		segs = segs[n:]
	}
	return out
}

// startBatch performs operation 3 (DMA configuration) for the next batch
// and triggers it. With irq true the completion is delivered to the
// interrupt path. It reports whether the transfer was started; on false
// the request has already been completed as failed.
func (d *Device) startBatch(p *sim.Proc, m *sim.Meter, inf *inflight, irq bool) bool {
	batch := inf.batches[inf.nextBatch]
	inf.nextBatch++
	t0 := p.Now()
	tr, err := d.M.DMA.Program(p, d.opts.DescReuse, batch, m)
	d.Breakdown.Add(stats.PhaseDMACfg, int64(p.Now()-t0))
	if err != nil {
		// Descriptor exhaustion — should not happen with MaxChainPages
		// capped at the PaRAM size; fail the request.
		inf.released = true
		inf.dropClaim(d.AS)
		d.complete(p, m, inf.req, uapi.ErrBadRequest)
		return false
	}
	tr.Class = uint8(inf.req.Class)
	inf.transfer = tr
	var bytes int64
	for _, s := range batch {
		bytes += s.Bytes
	}
	d.Breakdown.Add(stats.PhaseCopy,
		d.M.Plat.DMATransferNS(bytes, batch[0].Src.Node, batch[0].Dst.Node))
	var onIRQ func()
	if irq {
		onIRQ = func() { d.irqComplete(inf) }
	}
	d.M.DMA.Start(tr, irq, onIRQ)
	return true
}

// finish performs operations 4 (Release) and 5 (Notify) after all of a
// request's data has been moved.
func (d *Device) finish(p *sim.Proc, m *sim.Meter, inf *inflight) {
	if inf.released || inf.aborted {
		return
	}
	inf.released = true
	if inf.txn {
		d.finishTxn(p, m, inf)
		return
	}
	req := inf.req
	cost := &d.M.Plat.Cost
	as := d.AS

	errc := uapi.ErrNone
	if req.Op == uapi.OpMigrate {
		var releaseNS int64
		for i, pg := range inf.pages {
			for _, mp := range pg.maps {
				switch d.opts.RaceMode {
				case RaceDetect:
					// One CAS clears the young bit; failure means a
					// reference (or modification) raced the DMA.
					final := mp.installed.Without(pagetable.FlagYoung)
					releaseNS += cost.PTECas
					if !mp.slot.CompareAndSwap(mp.installed, final) {
						if errc == uapi.ErrNone {
							req.FailPage = int64(i)
						}
						errc = uapi.ErrRace
						d.stats.RacesDetected++
					}
					// No TLB flush: the semi-final PTE never entered
					// the TLB unreferenced, and on a race the
					// application is getting a SEGFAULT anyway.
				case RaceRecover:
					final := pagetable.Make(pg.newFrame.ID,
						pagetable.FlagPresent|pagetable.FlagWrite)
					mp.slot.Store(final)
					mp.as.InvalidatePage(mp.vpn) // the read-only special PTE was usable
					releaseNS += cost.PTEReplace + cost.TLBFlushPage
					pg.oldFrame.RefCount--
					pg.newFrame.RefCount++
					delete(d.recoverMap, mp.slot)
				case RacePrevent:
					final := pagetable.Make(pg.newFrame.ID,
						pagetable.FlagPresent|pagetable.FlagWrite)
					mp.slot.Store(final)
					mp.as.InvalidatePage(mp.vpn)
					releaseNS += cost.PTEReplace + cost.TLBFlushPage
					pg.oldFrame.RefCount--
					pg.newFrame.RefCount++
					mp.as.ReleaseMigrationGate(mp.slot)
				}
			}
			if d.opts.RaceMode != RaceDetect && as.Rmap != nil {
				// Detect mode rebinds the rmap at Remap time; the
				// other policies keep the old frame mapped until now.
				as.Rmap.Move(pg.oldFrame, pg.newFrame)
			}
			releaseNS += cost.PageFree
			if pg.oldFrame.RefCount == 0 && !pg.oldFrame.Pinned && !pg.oldFrame.FileBacked {
				as.Mem.Free(pg.oldFrame)
			}
		}
		d.busy(p, m, stats.PhaseRelease, releaseNS)
		inf.dropClaim(as)
	}
	d.complete(p, m, req, errc)
}

// finishTxn commits a transactional migration: one CAS per page from the
// clean baseline PTE to the final mapping of the destination frame. A
// dirty bit (or a changed frame) at any page aborts the whole request —
// already-committed pages are rolled back, freshly allocated frames are
// freed, and the original mappings remain untouched, so the caller can
// simply retry. No yield occurs between the first CAS and the last
// rollback store, so the commit is atomic in virtual time; the CPU cost
// is charged as one aggregate afterwards.
func (d *Device) finishTxn(p *sim.Proc, m *sim.Meter, inf *inflight) {
	req := inf.req
	cost := &d.M.Plat.Cost
	as := d.AS
	pb := as.PageBytes
	var ns int64

	committed := make([]pagetable.PTE, len(inf.pages))
	abortAt := -1
	for i := range inf.pages {
		pg := &inf.pages[i]
		if pg.noop {
			continue
		}
		mp := &pg.maps[0]
		cur := mp.slot.Load()
		ns += cost.PTECas
		// The young bit is installed set ("armed"): at the commit
		// instant the page is known unreferenced, so an access-bit
		// scanner reading this PTE must not see a phantom reference.
		final := pagetable.Make(pg.newFrame.ID,
			pagetable.FlagPresent|pagetable.FlagWrite|pagetable.FlagYoung)
		if cur.Frame() != pg.oldFrame.ID || cur.Has(pagetable.FlagDirty) ||
			!mp.slot.CompareAndSwap(cur, final) {
			abortAt = i
			req.FailPage = int64(i)
			break
		}
		committed[i] = cur
	}

	if abortAt >= 0 {
		for j := 0; j < abortAt; j++ {
			pg := &inf.pages[j]
			if pg.noop {
				continue
			}
			mp := &pg.maps[0]
			mp.slot.Store(committed[j])
			mp.as.InvalidatePage(mp.vpn)
			ns += cost.PTEReplace + cost.TLBFlushPage
		}
		// Free only the frames this request allocated; zero-copy frames
		// stay owned by the shadow registry (revalidated on retry).
		for i := range inf.pages {
			pg := &inf.pages[i]
			if pg.newFrame != nil && !pg.zeroCopy && !pg.noop {
				as.Mem.Free(pg.newFrame)
				ns += cost.PageFree
			}
		}
		d.stats.TxnAborts++
		d.busy(p, m, stats.PhaseRelease, ns)
		inf.dropClaim(as)
		d.complete(p, m, req, uapi.ErrTxnDirty)
		return
	}

	var moved, zeroPages int64
	for i := range inf.pages {
		pg := &inf.pages[i]
		if pg.noop {
			continue
		}
		mp := &pg.maps[0]
		mp.as.InvalidatePage(mp.vpn)
		ns += cost.TLBFlushPage
		pg.oldFrame.RefCount--
		pg.newFrame.RefCount++
		if as.Rmap != nil {
			as.Rmap.Move(pg.oldFrame, pg.newFrame)
		}
		if pg.zeroCopy {
			// The shadow frame is now the live mapping: release it from
			// the registry without freeing it.
			as.TakeShadow(mp.vpn)
			zeroPages++
			d.stats.ZeroCopyPages++
		} else {
			moved += pb
		}
		if inf.keepSrc && pg.oldFrame.RefCount == 0 &&
			!pg.oldFrame.Pinned && !pg.oldFrame.FileBacked {
			// Non-exclusive tiering: the source frame stays valid until
			// the page is next dirtied, making the reverse move free.
			as.SetShadow(mp.vpn, pg.oldFrame, pg.newFrame.ID)
			ns += cost.RmapBook
		} else {
			as.DropShadow(mp.vpn)
			ns += cost.PageFree
			if pg.oldFrame.RefCount == 0 && !pg.oldFrame.Pinned && !pg.oldFrame.FileBacked {
				as.Mem.Free(pg.oldFrame)
			}
		}
	}
	req.MovedBytes = moved
	req.ZeroCopyPages = zeroPages
	d.stats.TxnCommits++
	d.busy(p, m, stats.PhaseRelease, ns)
	inf.dropClaim(as)
	d.complete(p, m, req, uapi.ErrNone)
}

// complete posts the notification (operation 5).
func (d *Device) complete(p *sim.Proc, m *sim.Meter, req *uapi.MovReq, errc uapi.ErrCode) {
	// A request must complete exactly once; a second completion means
	// two driver paths raced (the bug class the recover-handler claim
	// protocol exists to prevent). Fail loudly, like a kernel BUG_ON.
	switch req.Status {
	case uapi.StatusDone, uapi.StatusFailed, uapi.StatusFree:
		panic(fmt.Sprintf("memif: double completion of %v (errc %v)", req, errc))
	}
	req.Err = errc
	req.Completed = p.Now()
	d.busy(p, m, stats.PhaseNotify, d.M.Plat.Cost.NotifyEnqueue)
	if errc == uapi.ErrNone {
		req.Status = uapi.StatusDone
		d.stats.Completed++
		if req.Flags&uapi.ReqTxn != 0 {
			d.stats.BytesMoved += req.MovedBytes
		} else {
			d.stats.BytesMoved += req.Length
		}
		d.Area.CompOK.Enqueue(req.Index())
	} else {
		req.Status = uapi.StatusFailed
		d.stats.Failed++
		d.Area.CompFail.Enqueue(req.Index())
	}
	d.notifySig.Broadcast()
}

// handleRecoverFault is the custom page fault handler of the
// proceed-and-recover policy: on a write to a migrating page it aborts
// the DMA, restores the original mappings of the whole request, and posts
// an aborted completion. Runs in the faulting application's context.
func (d *Device) handleRecoverFault(p *sim.Proc, addr int64, slot *pagetable.Slot, write bool) bool {
	inf, ok := d.recoverMap[slot]
	if !ok {
		return false
	}
	// Claim the in-flight migration *before* spending any time: the
	// release path may be racing us off the transfer's completion. If
	// it already claimed (released), the final PTEs are in place — let
	// the access retry and proceed normally. Claiming first means the
	// release path backs off instead.
	if inf.released || inf.aborted {
		return false
	}
	inf.aborted = true
	cost := &d.M.Plat.Cost
	d.busy(p, d.UserMeter, stats.PhaseInterface, cost.IRQEntry) // trap cost
	if inf.transfer != nil {
		d.M.DMA.Abort(inf.transfer)
	}
	var ns int64
	for _, pg := range inf.pages {
		for _, mp := range pg.maps {
			mp.slot.Store(mp.old)
			mp.as.InvalidatePage(mp.vpn)
			ns += cost.PTEReplace + cost.TLBFlushPage
			delete(d.recoverMap, mp.slot)
		}
	}
	ns += int64(len(inf.pages)) * cost.PageFree
	d.busy(p, d.UserMeter, stats.PhaseRelease, ns)
	inf.dropClaim(d.AS)
	d.stats.Recovered++
	d.complete(p, d.UserMeter, inf.req, uapi.ErrAborted)
	// An aborted transfer raises no completion interrupt, so the usual
	// IRQ -> worker handoff is broken; wake the worker from the trap
	// before returning to the faulting access.
	d.busy(p, d.UserMeter, stats.PhaseInterface, cost.KthreadWake)
	d.workSignal.Signal()
	// The new frames may still be pinned by the (aborted) transfer;
	// reclaim them once the engine lets go.
	tr := inf.transfer
	d.M.Eng.Spawn("memif-reclaim", func(cp *sim.Proc) {
		if tr != nil {
			cp.WaitEvent(tr.Done)
		}
		for _, pg := range inf.pages {
			if pg.newFrame.RefCount == 0 && !pg.newFrame.Pinned {
				d.AS.Mem.Free(pg.newFrame)
			}
		}
	})
	return true
}
