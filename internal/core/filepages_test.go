package core

import (
	"bytes"
	"testing"

	"memif/internal/hw"
	"memif/internal/machine"
	"memif/internal/sim"
	"memif/internal/uapi"
	"memif/internal/vm"
)

// Migrating file-backed pages (a Section 6.7 limitation of the paper's
// prototype): the reverse map rebinds the page-cache entry together with
// every PTE, so the file, the existing mappings, and future mappings all
// agree on the new frames.
func TestMigrateFileBackedPages(t *testing.T) {
	m := machine.New(hw.KeyStoneII())
	asA := m.NewAddressSpace(4096)
	asB := m.NewAddressSpace(4096)
	d := Open(m, asA, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		const n = 8 * 4096
		f := vm.NewFile(m.Mem, m.Rmap, "dataset.bin", n, 4096)
		ma, err := asA.MmapFile(p, f, 0, n)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := asB.MmapFile(p, f, 0, n)
		if err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{0xD7}, n)
		asA.Write(p, ma, data)

		r := d.AllocRequest(p)
		r.Op = uapi.OpMigrate
		r.SrcBase, r.Length, r.DstNode = ma, n, hw.NodeFast
		got := submitAndWait(t, d, p, r)
		if got.Status != uapi.StatusDone {
			t.Fatalf("migration of file pages failed: %v", got)
		}

		// The cache, both mappings, and the data all moved together.
		for i := int64(0); i < 8; i++ {
			fa, fb := asA.FrameAt(ma+i*4096), asB.FrameAt(mb+i*4096)
			fc := f.FrameAt(i * 4096)
			if fa != fb || fa != fc {
				t.Fatalf("page %d: mappings/cache diverged (%v %v %v)", i, fa, fb, fc)
			}
			if fa.Node != hw.NodeFast {
				t.Fatalf("page %d still on node %d", i, fa.Node)
			}
			if !fa.FileBacked {
				t.Fatalf("page %d lost its page-cache ownership", i)
			}
		}
		buf := make([]byte, n)
		asB.Read(p, mb, buf)
		if !bytes.Equal(buf, data) {
			t.Error("peer mapping lost the file data")
		}
		// Old frames freed (they left the cache at rebind time).
		if used := m.Mem.Used(hw.NodeSlow); used != 0 {
			t.Errorf("slow node still holds %d bytes", used)
		}
		// A mapping created *after* the migration hits the fast frames.
		asC := m.NewAddressSpace(4096)
		mc, err := asC.MmapFile(p, f, 0, n)
		if err != nil {
			t.Fatal(err)
		}
		if fc := asC.FrameAt(mc); fc == nil || fc.Node != hw.NodeFast {
			t.Errorf("fresh mapping got %v, want the migrated fast frame", fc)
		}
	})
	m.Eng.Run()
}

// Unmapped-but-cached file pages cannot be migrated through memif (there
// is no virtual region to name them by), but dropping and re-mapping
// them keeps working after prior migrations.
func TestFilePagesAfterMunmapStillCoherent(t *testing.T) {
	m := machine.New(hw.KeyStoneII())
	as := m.NewAddressSpace(4096)
	d := Open(m, as, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		const n = 4 * 4096
		f := vm.NewFile(m.Mem, m.Rmap, "d", n, 4096)
		ma, _ := as.MmapFile(p, f, 0, n)
		as.Write(p, ma, []byte{0x31})
		r := d.AllocRequest(p)
		r.Op = uapi.OpMigrate
		r.SrcBase, r.Length, r.DstNode = ma, n, hw.NodeFast
		if got := submitAndWait(t, d, p, r); got.Status != uapi.StatusDone {
			t.Fatalf("migrate: %v", got)
		}
		as.Munmap(p, ma)
		if f.CachedPages() != 4 {
			t.Fatalf("cache lost pages: %d", f.CachedPages())
		}
		mb, _ := as.MmapFile(p, f, 0, n)
		var b [1]byte
		as.Read(p, mb, b[:])
		if b[0] != 0x31 {
			t.Errorf("data lost: %#x", b[0])
		}
	})
	m.Eng.Run()
}
