package core

import (
	"bytes"
	"testing"

	"memif/internal/hw"
	"memif/internal/machine"
	"memif/internal/sim"
	"memif/internal/uapi"
)

// Shared-page migration: the reverse map lets the driver move a page
// mapped by two processes, updating both PTEs (the future-work item of
// Section 6.7).

func TestMigrateSharedPagesUpdatesAllMappings(t *testing.T) {
	m := machine.New(hw.KeyStoneII())
	asA := m.NewAddressSpace(4096)
	asB := m.NewAddressSpace(4096)
	d := Open(m, asA, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		const n = 8 * 4096
		base, _ := asA.Mmap(p, n, hw.NodeSlow, "w")
		data := bytes.Repeat([]byte{0x42}, n)
		asA.Write(p, base, data)
		shared, err := asB.ShareFrom(p, asA, base, n)
		if err != nil {
			t.Fatal(err)
		}

		r := d.AllocRequest(p)
		r.Op = uapi.OpMigrate
		r.SrcBase, r.Length, r.DstNode = base, n, hw.NodeFast
		got := submitAndWait(t, d, p, r)
		if got.Status != uapi.StatusDone {
			t.Fatalf("completion = %v", got)
		}

		// Both processes now map the fast-node frames.
		for i := int64(0); i < 8; i++ {
			fa := asA.FrameAt(base + i*4096)
			fb := asB.FrameAt(shared + i*4096)
			if fa != fb {
				t.Fatalf("page %d: mappings diverged after migration", i)
			}
			if fa.Node != hw.NodeFast {
				t.Fatalf("page %d still on node %d", i, fa.Node)
			}
			if fa.RefCount != 2 {
				t.Fatalf("page %d refcount = %d, want 2", i, fa.RefCount)
			}
		}
		// Data visible through the peer's mapping; old frames freed.
		buf := make([]byte, n)
		asB.Read(p, shared, buf)
		if !bytes.Equal(buf, data) {
			t.Error("peer mapping lost the data")
		}
		if used := m.Mem.Used(hw.NodeSlow); used != 0 {
			t.Errorf("slow node still holds %d bytes", used)
		}
	})
	m.Eng.Run()
}

func TestSharedPageRaceFromPeerDetected(t *testing.T) {
	m := machine.New(hw.KeyStoneII())
	asA := m.NewAddressSpace(4096)
	asB := m.NewAddressSpace(4096)
	d := Open(m, asA, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		const n = 32 * 4096
		base, _ := asA.Mmap(p, n, hw.NodeSlow, "w")
		shared, _ := asB.ShareFrom(p, asA, base, n)

		r := d.AllocRequest(p)
		r.Op = uapi.OpMigrate
		r.SrcBase, r.Length, r.DstNode = base, n, hw.NodeFast
		if err := d.Submit(p, r); err != nil {
			t.Fatal(err)
		}
		// The *other* process touches the page mid-migration: its
		// semi-final PTE loses the young bit and the release CAS
		// reports the race just the same.
		if err := asB.Touch(p, shared+3*4096, true); err != nil {
			t.Fatal(err)
		}
		d.Poll(p, 0)
		got := d.RetrieveCompleted(p)
		if got == nil || got.Err != uapi.ErrRace {
			t.Fatalf("completion = %v, want race", got)
		}
	})
	m.Eng.Run()
	if d.Stats().RacesDetected == 0 {
		t.Error("race not recorded")
	}
}

func TestSharedMigrationChargesPerMapping(t *testing.T) {
	// Migrating a doubly-mapped region must cost more remap work than a
	// singly-mapped one (one PTE update + TLB flush per mapping).
	run := func(share bool) sim.Time {
		m := machine.New(hw.KeyStoneII())
		asA := m.NewAddressSpace(4096)
		d := Open(m, asA, DefaultOptions())
		var busy sim.Time
		m.Eng.Spawn("app", func(p *sim.Proc) {
			defer d.Close()
			const n = 16 * 4096
			base, _ := asA.Mmap(p, n, hw.NodeSlow, "w")
			if share {
				asB := m.NewAddressSpace(4096)
				if _, err := asB.ShareFrom(p, asA, base, n); err != nil {
					t.Fatal(err)
				}
			}
			r := d.AllocRequest(p)
			r.Op = uapi.OpMigrate
			r.SrcBase, r.Length, r.DstNode = base, n, hw.NodeFast
			submitAndWait(t, d, p, r)
			busy = sim.MeterGroup{d.UserMeter, d.KernMeter}.Busy()
		})
		m.Eng.Run()
		return busy
	}
	single, shared := run(false), run(true)
	if shared <= single {
		t.Errorf("shared-migration CPU %v <= single %v", shared, single)
	}
}
