package core

import (
	"testing"

	"memif/internal/hw"
	"memif/internal/machine"
	"memif/internal/pagetable"
	"memif/internal/sim"
	"memif/internal/uapi"
)

func newRig(t *testing.T, opts Options) (*machine.Machine, *Device) {
	t.Helper()
	m := machine.New(hw.KeyStoneII())
	as := m.NewAddressSpace(4096)
	d := Open(m, as, opts)
	return m, d
}

// fill writes a recognizable pattern into [base, base+n).
func fill(t *testing.T, d *Device, p *sim.Proc, base int64, n int64, seed byte) {
	t.Helper()
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = seed + byte(i)
	}
	if err := d.AS.Write(p, base, buf); err != nil {
		t.Fatalf("fill: %v", err)
	}
}

func check(t *testing.T, d *Device, p *sim.Proc, base int64, n int64, seed byte) {
	t.Helper()
	buf := make([]byte, n)
	if err := d.AS.Read(p, base, buf); err != nil {
		t.Fatalf("check read: %v", err)
	}
	for i := range buf {
		if buf[i] != seed+byte(i) {
			t.Fatalf("byte %d = %d, want %d", i, buf[i], seed+byte(i))
		}
	}
}

// submitAndWait submits one request and polls until its notification
// arrives, returning the completed request.
func submitAndWait(t *testing.T, d *Device, p *sim.Proc, r *uapi.MovReq) *uapi.MovReq {
	t.Helper()
	if err := d.Submit(p, r); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for {
		if !d.Poll(p, 0) {
			t.Fatal("Poll returned without notification")
		}
		got := d.RetrieveCompleted(p)
		if got != nil {
			return got
		}
	}
}

func TestReplicationMovesData(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		const n = 16 * 4096
		src, _ := d.AS.Mmap(p, n, hw.NodeSlow, "src")
		dst, _ := d.AS.Mmap(p, n, hw.NodeFast, "dst")
		fill(t, d, p, src, n, 7)

		r := d.AllocRequest(p)
		if r == nil {
			t.Fatal("AllocRequest returned nil")
		}
		r.Op = uapi.OpReplicate
		r.SrcBase, r.DstBase, r.Length = src, dst, n
		got := submitAndWait(t, d, p, r)
		if got != r || got.Status != uapi.StatusDone || got.Err != uapi.ErrNone {
			t.Fatalf("completion = %v", got)
		}
		check(t, d, p, dst, n, 7)
		// Replication must not touch the address space.
		if d.AS.TLBFlushes != 0 {
			t.Errorf("replication flushed TLB %d times", d.AS.TLBFlushes)
		}
		d.FreeRequest(p, r)
	})
	m.Eng.Run()
	st := d.Stats()
	if st.Completed != 1 || st.Replications != 1 || st.BytesMoved != 16*4096 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMigrationMovesPagesToFastNode(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		const n = 32 * 4096
		base, _ := d.AS.Mmap(p, n, hw.NodeSlow, "work")
		fill(t, d, p, base, n, 3)
		slowUsed := d.AS.Mem.Used(hw.NodeSlow)

		r := d.AllocRequest(p)
		r.Op = uapi.OpMigrate
		r.SrcBase, r.Length, r.DstNode = base, n, hw.NodeFast
		got := submitAndWait(t, d, p, r)
		if got.Status != uapi.StatusDone {
			t.Fatalf("completion = %v", got)
		}
		// Data is intact and now served from the fast node.
		check(t, d, p, base, n, 3)
		for i := int64(0); i < 32; i++ {
			f := d.AS.FrameAt(base + i*4096)
			if f == nil || f.Node != hw.NodeFast {
				t.Fatalf("page %d on %v, want fast node", i, f)
			}
		}
		// Old frames freed.
		if used := d.AS.Mem.Used(hw.NodeSlow); used != slowUsed-n {
			t.Errorf("slow node used = %d, want %d", used, slowUsed-n)
		}
		// Final PTEs carry no young/migration bits.
		slot, _ := d.AS.Table.Lookup(d.AS.VPN(base))
		pte := slot.Load()
		if pte.Has(pagetable.FlagYoung) || pte.Has(pagetable.FlagMigration) || pte.Has(pagetable.FlagRecover) {
			t.Errorf("final PTE = %v", pte)
		}
		if !pte.Has(pagetable.FlagWrite) {
			t.Errorf("final PTE not writable: %v", pte)
		}
	})
	m.Eng.Run()
	if st := d.Stats(); st.Migrations != 1 || st.RacesDetected != 0 {
		t.Errorf("stats = %+v", d.Stats())
	}
}

func TestSingleSyscallForRequestBurst(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	const reqs = 8
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		base, _ := d.AS.Mmap(p, reqs*16*4096, hw.NodeSlow, "w")
		// Submit a burst without waiting: only the first submission
		// should issue the kick-start ioctl; the kernel worker serves
		// the rest (Section 6.4: one syscall for the whole course).
		var rs []*uapi.MovReq
		for i := 0; i < reqs; i++ {
			r := d.AllocRequest(p)
			r.Op = uapi.OpMigrate
			r.SrcBase = base + int64(i)*16*4096
			r.Length = 16 * 4096
			r.DstNode = hw.NodeFast
			if err := d.Submit(p, r); err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			rs = append(rs, r)
		}
		done := 0
		for done < reqs {
			d.Poll(p, 0)
			for d.RetrieveCompleted(p) != nil {
				done++
			}
		}
		for i, r := range rs {
			if r.Status != uapi.StatusDone {
				t.Errorf("request %d: %v", i, r)
			}
		}
		// Completions arrive in submission order with increasing times.
		for i := 1; i < reqs; i++ {
			if rs[i].Completed < rs[i-1].Completed {
				t.Errorf("request %d completed before %d", i, i-1)
			}
		}
	})
	m.Eng.Run()
	st := d.Stats()
	if st.Syscalls != 1 {
		t.Errorf("Syscalls = %d, want 1", st.Syscalls)
	}
	if st.Completed != reqs {
		t.Errorf("Completed = %d, want %d", st.Completed, reqs)
	}
}

func TestRaceDetectionReportsFailure(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		const n = 64 * 4096
		base, _ := d.AS.Mmap(p, n, hw.NodeSlow, "w")
		fill(t, d, p, base, n, 1)
		r := d.AllocRequest(p)
		r.Op = uapi.OpMigrate
		r.SrcBase, r.Length, r.DstNode = base, n, hw.NodeFast
		if err := d.Submit(p, r); err != nil {
			t.Fatal(err)
		}
		if err := d.AS.Touch(p, base+10*4096, true); err != nil {
			t.Fatalf("touch: %v", err)
		}
		d.Poll(p, 0)
		got := d.RetrieveCompleted(p)
		if got == nil || got.Status != uapi.StatusFailed || got.Err != uapi.ErrRace {
			t.Fatalf("completion = %v, want race failure", got)
		}
		if got.FailPage != 10 {
			t.Errorf("FailPage = %d, want 10", got.FailPage)
		}
	})
	m.Eng.Run()
	if d.Stats().RacesDetected == 0 {
		t.Error("no race recorded")
	}
}

func TestRecoverModeAbortsAndRestores(t *testing.T) {
	opts := DefaultOptions()
	opts.RaceMode = RaceRecover
	m, d := newRig(t, opts)
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		const n = 64 * 4096
		base, _ := d.AS.Mmap(p, n, hw.NodeSlow, "w")
		fill(t, d, p, base, n, 9)
		r := d.AllocRequest(p)
		r.Op = uapi.OpMigrate
		r.SrcBase, r.Length, r.DstNode = base, n, hw.NodeFast
		if err := d.Submit(p, r); err != nil {
			t.Fatal(err)
		}
		// A write mid-migration traps, aborts, and must be preserved.
		if err := d.AS.Write(p, base+5*4096, []byte{0xEE}); err != nil {
			t.Fatalf("write during migration: %v", err)
		}
		d.Poll(p, 0)
		got := d.RetrieveCompleted(p)
		if got == nil || got.Err != uapi.ErrAborted {
			t.Fatalf("completion = %v, want aborted", got)
		}
		// Mapping restored on the slow node, data intact, write kept.
		f := d.AS.FrameAt(base + 5*4096)
		if f == nil || f.Node != hw.NodeSlow {
			t.Errorf("page after abort on %v, want slow node", f)
		}
		var b [1]byte
		if err := d.AS.Read(p, base+5*4096, b[:]); err != nil || b[0] != 0xEE {
			t.Errorf("preserved write = %#x, %v", b[0], err)
		}
		check(t, d, p, base, 4096, 9) // untouched page 0 still readable
		p.SleepNS(10_000_000)         // let the reclaim process run
		if used := d.AS.Mem.Used(hw.NodeFast); used != 0 {
			t.Errorf("fast node leaked %d bytes after abort", used)
		}
	})
	m.Eng.Run()
	if d.Stats().Recovered != 1 {
		t.Errorf("Recovered = %d, want 1", d.Stats().Recovered)
	}
}

func TestRecoverModeReadsDuringMigrationSeeOldData(t *testing.T) {
	opts := DefaultOptions()
	opts.RaceMode = RaceRecover
	m, d := newRig(t, opts)
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		const n = 64 * 4096
		base, _ := d.AS.Mmap(p, n, hw.NodeSlow, "w")
		fill(t, d, p, base, n, 5)
		r := d.AllocRequest(p)
		r.Op = uapi.OpMigrate
		r.SrcBase, r.Length, r.DstNode = base, n, hw.NodeFast
		d.Submit(p, r)
		// Read (no write) during migration: sees old data, no abort.
		var b [8]byte
		if err := d.AS.Read(p, base, b[:]); err != nil {
			t.Fatalf("read during migration: %v", err)
		}
		if b[0] != 5 {
			t.Errorf("read stale byte %d, want 5", b[0])
		}
		d.Poll(p, 0)
		got := d.RetrieveCompleted(p)
		if got == nil || got.Status != uapi.StatusDone {
			t.Fatalf("completion = %v, want success (reads are safe)", got)
		}
		check(t, d, p, base, n, 5)
	})
	m.Eng.Run()
}

func TestPreventModeBlocksAccessor(t *testing.T) {
	opts := DefaultOptions()
	opts.RaceMode = RacePrevent
	m, d := newRig(t, opts)
	var touchTime, submitTime sim.Time
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		const n = 64 * 4096
		base, _ := d.AS.Mmap(p, n, hw.NodeSlow, "w")
		fill(t, d, p, base, n, 2)
		r := d.AllocRequest(p)
		r.Op = uapi.OpMigrate
		r.SrcBase, r.Length, r.DstNode = base, n, hw.NodeFast
		submitTime = p.Now()
		d.Submit(p, r)
		// Touching a migrating page blocks at least for the whole DMA
		// transfer (release runs only after the copy lands).
		if err := d.AS.Touch(p, base, false); err != nil {
			t.Fatalf("touch: %v", err)
		}
		touchTime = p.Now()
		minBlock := sim.Time(m.Plat.DMATransferNS(n, hw.NodeSlow, hw.NodeFast))
		if touchTime-submitTime < minBlock {
			t.Errorf("accessor unblocked after %v, want at least %v", touchTime-submitTime, minBlock)
		}
		check(t, d, p, base, n, 2)
		d.Poll(p, 0)
		if got := d.RetrieveCompleted(p); got == nil || got.Status != uapi.StatusDone {
			t.Fatalf("completion = %v", got)
		}
	})
	m.Eng.Run()
	if touchTime <= submitTime {
		t.Error("test did not exercise blocking")
	}
}

func TestValidationFailures(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		base, _ := d.AS.Mmap(p, 8*4096, hw.NodeSlow, "w")
		cases := []struct {
			name string
			mut  func(r *uapi.MovReq)
		}{
			{"unmapped src", func(r *uapi.MovReq) { r.SrcBase = 0x10 << 20 }},
			{"unaligned length", func(r *uapi.MovReq) { r.Length = 100 }},
			{"zero length", func(r *uapi.MovReq) { r.Length = 0 }},
			{"overrun", func(r *uapi.MovReq) { r.Length = 64 * 4096 }},
			{"bad node", func(r *uapi.MovReq) { r.DstNode = hw.NodeID(9) }},
		}
		for _, tc := range cases {
			r := d.AllocRequest(p)
			r.Op = uapi.OpMigrate
			r.SrcBase, r.Length, r.DstNode = base, 8*4096, hw.NodeFast
			tc.mut(r)
			got := submitAndWait(t, d, p, r)
			if got.Status != uapi.StatusFailed || got.Err != uapi.ErrBadRequest {
				t.Errorf("%s: completion = %v, want badreq", tc.name, got)
			}
			d.FreeRequest(p, got)
		}
		// Replication with an unmapped destination also fails.
		r := d.AllocRequest(p)
		r.Op = uapi.OpReplicate
		r.SrcBase, r.DstBase, r.Length = base, 0x20<<20, 8*4096
		if got := submitAndWait(t, d, p, r); got.Err != uapi.ErrBadRequest {
			t.Errorf("bad dst: %v", got)
		}
	})
	m.Eng.Run()
}

func TestMigrationOutOfFastMemoryRollsBack(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		// 8 MB region cannot fit the 6 MB fast node.
		const n = 8 << 20
		base, _ := d.AS.Mmap(p, n, hw.NodeSlow, "big")
		fill(t, d, p, base, 4096, 4)
		r := d.AllocRequest(p)
		r.Op = uapi.OpMigrate
		r.SrcBase, r.Length, r.DstNode = base, n, hw.NodeFast
		got := submitAndWait(t, d, p, r)
		if got.Status != uapi.StatusFailed || got.Err != uapi.ErrNoMemory {
			t.Fatalf("completion = %v, want nomem", got)
		}
		// Original mapping intact and usable.
		check(t, d, p, base, 4096, 4)
		if f := d.AS.FrameAt(base); f == nil || f.Node != hw.NodeSlow {
			t.Errorf("page after rollback on %v", f)
		}
		if used := d.AS.Mem.Used(hw.NodeFast); used != 0 {
			t.Errorf("fast node leaked %d bytes", used)
		}
	})
	m.Eng.Run()
}

func TestLargeRequestSplitsIntoBatches(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxChainPages = 16
	m, d := newRig(t, opts)
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		const pages = 50 // 4 batches: 16+16+16+2
		base, _ := d.AS.Mmap(p, pages*4096, hw.NodeSlow, "w")
		fill(t, d, p, base, pages*4096, 6)
		r := d.AllocRequest(p)
		r.Op = uapi.OpMigrate
		r.SrcBase, r.Length, r.DstNode = base, pages*4096, hw.NodeFast
		got := submitAndWait(t, d, p, r)
		if got.Status != uapi.StatusDone {
			t.Fatalf("completion = %v", got)
		}
		check(t, d, p, base, pages*4096, 6)
	})
	m.Eng.Run()
	if tr := m.DMA.Stats().Transfers; tr != 4 {
		t.Errorf("DMA transfers = %d, want 4", tr)
	}
}

func TestPollThresholdControlsIRQUsage(t *testing.T) {
	opts := DefaultOptions()
	opts.WorkerIdleGraceNS = 0 // deterministic wake-by-IRQ flow
	m, d := newRig(t, opts)
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		// 4 small (16-page = 64 KB < 512 KB) requests: the first is
		// kick-started via syscall and completes by IRQ; the kernel
		// thread serves the remaining three in polling mode.
		base, _ := d.AS.Mmap(p, 4*16*4096, hw.NodeSlow, "w")
		for i := 0; i < 4; i++ {
			r := d.AllocRequest(p)
			r.Op = uapi.OpMigrate
			r.SrcBase, r.Length, r.DstNode = base+int64(i)*16*4096, 16*4096, hw.NodeFast
			d.Submit(p, r)
		}
		for done := 0; done < 4; {
			d.Poll(p, 0)
			for d.RetrieveCompleted(p) != nil {
				done++
			}
		}
	})
	m.Eng.Run()
	if irqs := m.DMA.Stats().IRQs; irqs != 1 {
		t.Errorf("IRQs = %d, want 1 (only the kick-started request)", irqs)
	}
}

func TestPollTimeout(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		start := p.Now()
		if d.Poll(p, 5000) {
			t.Error("Poll reported a notification on idle device")
		}
		if p.Now()-start != sim.Time(5000) {
			t.Errorf("Poll blocked %v, want 5µs", p.Now()-start)
		}
	})
	m.Eng.Run()
}

func TestAllocRequestExhaustion(t *testing.T) {
	opts := DefaultOptions()
	opts.NumReqs = 4
	m, d := newRig(t, opts)
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		var rs []*uapi.MovReq
		for i := 0; i < 4; i++ {
			r := d.AllocRequest(p)
			if r == nil {
				t.Fatalf("alloc %d failed", i)
			}
			rs = append(rs, r)
		}
		if r := d.AllocRequest(p); r != nil {
			t.Error("alloc beyond NumReqs succeeded")
		}
		d.FreeRequest(p, rs[0])
		if r := d.AllocRequest(p); r == nil {
			t.Error("alloc after free failed")
		}
	})
	m.Eng.Run()
}

func TestBreakdownPhasesPopulated(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		base, _ := d.AS.Mmap(p, 16*4096, hw.NodeSlow, "w")
		r := d.AllocRequest(p)
		r.Op = uapi.OpMigrate
		r.SrcBase, r.Length, r.DstNode = base, 16*4096, hw.NodeFast
		submitAndWait(t, d, p, r)
	})
	m.Eng.Run()
	b := d.Breakdown
	for _, phase := range []string{"prep", "remap", "dmacfg", "copy", "release", "notify", "interface"} {
		if b.Get(phase) <= 0 {
			t.Errorf("phase %s empty: %v", phase, b)
		}
	}
	// The user-side CPU must be far below the kernel-side for the async
	// interface: only alloc/submit/poll/retrieve plus one syscall.
	if d.UserMeter.Busy() >= d.KernMeter.Busy()+d.Breakdown.Get("copy") {
		t.Logf("user=%v kern=%v", d.UserMeter.Busy(), d.KernMeter.Busy())
	}
}

func TestCloseStopsWorker(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		base, _ := d.AS.Mmap(p, 4096, hw.NodeSlow, "w")
		r := d.AllocRequest(p)
		r.Op = uapi.OpMigrate
		r.SrcBase, r.Length, r.DstNode = base, 4096, hw.NodeFast
		submitAndWait(t, d, p, r)
		d.Close()
	})
	m.Eng.Run()
	if m.Eng.Parked() != 0 {
		t.Errorf("worker still parked after Close: %d procs", m.Eng.Parked())
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		r := d.AllocRequest(p)
		d.Close()
		if err := d.Submit(p, r); err != ErrClosed {
			t.Errorf("Submit after close = %v, want ErrClosed", err)
		}
	})
	m.Eng.Run()
}

func TestCookieRoundTrip(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		base, _ := d.AS.Mmap(p, 4096, hw.NodeSlow, "w")
		r := d.AllocRequest(p)
		r.Op = uapi.OpMigrate
		r.SrcBase, r.Length, r.DstNode = base, 4096, hw.NodeFast
		r.Cookie = 0xfeedface
		got := submitAndWait(t, d, p, r)
		if got.Cookie != 0xfeedface {
			t.Errorf("cookie = %#x", got.Cookie)
		}
	})
	m.Eng.Run()
}
