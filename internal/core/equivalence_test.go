package core

import (
	"bytes"
	"math/rand"
	"testing"

	"memif/internal/hw"
	"memif/internal/linuxmig"
	"memif/internal/machine"
	"memif/internal/sim"
	"memif/internal/uapi"
)

// Functional equivalence: for any race-free sequence of migrations, memif
// and the Linux baseline must land in the same final state — same data,
// same node placement, same residual usage. The paper's claim is that
// memif changes the cost of migration, never its meaning.
func TestMemifEquivalentToLinuxBaseline(t *testing.T) {
	for _, seed := range []int64{3, 17, 99} {
		rng := rand.New(rand.NewSource(seed))
		const (
			numRegions  = 6
			regionPages = 8
			regionBytes = regionPages * 4096
			moves       = 40
		)
		// Script a shared random move plan.
		type mv struct {
			region int
			node   hw.NodeID
		}
		plan := make([]mv, moves)
		for i := range plan {
			plan[i] = mv{rng.Intn(numRegions), hw.NodeID(rng.Intn(2))}
		}
		seeds := make([]uint64, numRegions)
		for i := range seeds {
			seeds[i] = rng.Uint64()
		}

		type state struct {
			data  [][]byte
			nodes []hw.NodeID
		}
		run := func(useMemif bool) state {
			m := machine.New(hw.KeyStoneII())
			as := m.NewAddressSpace(4096)
			var st state
			m.Eng.Spawn("app", func(p *sim.Proc) {
				regions := make([]int64, numRegions)
				for i := range regions {
					b, _ := as.Mmap(p, regionBytes, hw.NodeSlow, "r")
					regions[i] = b
					buf := make([]byte, regionBytes)
					x := seeds[i]
					for j := range buf {
						x = x*6364136223846793005 + 1442695040888963407
						buf[j] = byte(x >> 56)
					}
					as.Write(p, b, buf)
				}
				if useMemif {
					d := Open(m, as, DefaultOptions())
					defer d.Close()
					for _, mvp := range plan {
						f := as.FrameAt(regions[mvp.region])
						if f.Node == mvp.node {
							continue // baseline skips too
						}
						r := d.AllocRequest(p)
						r.Op = uapi.OpMigrate
						r.SrcBase, r.Length, r.DstNode = regions[mvp.region], regionBytes, mvp.node
						if err := d.Submit(p, r); err != nil {
							t.Fatal(err)
						}
						// Race-free by construction: wait each out.
						for {
							if got := d.RetrieveCompleted(p); got != nil {
								if got.Status != uapi.StatusDone {
									t.Fatalf("move failed: %v", got)
								}
								d.FreeRequest(p, got)
								break
							}
							d.Poll(p, 0)
						}
					}
				} else {
					mg := linuxmig.New(m, as)
					for _, mvp := range plan {
						if err := mg.MBind(p, regions[mvp.region], regionBytes, mvp.node); err != nil {
							t.Fatal(err)
						}
					}
				}
				for i, b := range regions {
					buf := make([]byte, regionBytes)
					as.Read(p, b, buf)
					st.data = append(st.data, buf)
					st.nodes = append(st.nodes, as.FrameAt(b).Node)
					_ = i
				}
			})
			m.Eng.Run()
			return st
		}

		linux, mem := run(false), run(true)
		for i := range linux.data {
			if !bytes.Equal(linux.data[i], mem.data[i]) {
				t.Fatalf("seed %d region %d: data diverged", seed, i)
			}
			if linux.nodes[i] != mem.nodes[i] {
				t.Fatalf("seed %d region %d: placement diverged (%d vs %d)",
					seed, i, linux.nodes[i], mem.nodes[i])
			}
		}
	}
}
