package core

import (
	"memif/internal/rbq"
	"memif/internal/sim"
	"memif/internal/stats"
	"memif/internal/uapi"
)

// worker is the memif kernel thread (Section 5.4). Once woken — by the
// completion interrupt of a kick-started request — it flushes the staging
// queue, serves every queued request, and only recolors the staging queue
// blue (handing flush duty back to the application) when everything is
// drained.
//
// As a schedulable kernel context it can sleep, which is what permits the
// polling completion mode for small transfers; and it runs on a core of
// its own, shielding the application from the driver's CPU work.
func (d *Device) worker(p *sim.Proc) {
	for {
		d.drainStaging(p)
		if found, _ := d.serveNext(p, d.KernMeter, ctxKthread); found {
			continue
		}
		// Queues look empty. Linger in polling mode for the idle grace
		// before going to sleep: a steady request stream (e.g. the
		// streaming runtime's refills) keeps being served without a
		// single further syscall.
		if d.linger(p) {
			continue
		}
		// Still idle. Try to hand flushing back to the application;
		// failure means the staging queue refilled under us, so keep
		// draining.
		if _, ok := d.Area.Staging.SetColor(rbq.Blue); !ok {
			continue
		}
		if d.closed {
			return
		}
		p.WaitCond(d.workSignal)
		d.stats.WorkerWakes++
		if d.closed && d.Area.Staging.Empty() && d.Area.Submission.Empty() {
			return
		}
	}
}

// linger polls the queues for the idle grace, checking every few
// microseconds, and reports whether work arrived. The grace adapts to
// the observed request inter-arrival gap (NAPI-style): a steady stream
// slower than the base grace still keeps the worker alive, up to 20x the
// configured grace.
func (d *Device) linger(p *sim.Proc) bool {
	grace := d.opts.WorkerIdleGraceNS
	if grace <= 0 || d.closed {
		return false
	}
	if adaptive := 4 * d.gapEWMA; d.opts.AdaptiveLinger && adaptive > grace {
		if max := 20 * grace; adaptive > max {
			adaptive = max
		}
		grace = adaptive
	}
	const pollEvery = 20_000 // 20 µs
	deadline := p.Now() + sim.Time(grace)
	for p.Now() < deadline {
		step := int64(deadline - p.Now())
		if step > pollEvery {
			step = pollEvery
		}
		p.WaitCondTimeout(d.workSignal, step)
		d.busy(p, d.KernMeter, stats.PhaseInterface, d.M.Plat.Cost.PollCheck)
		if !d.Area.Staging.Empty() || !d.Area.Submission.Empty() {
			return true
		}
		if d.closed {
			return false
		}
	}
	return false
}

// drainStaging moves everything from the staging queue to the submission
// queue (the kernel-side flush).
func (d *Device) drainStaging(p *sim.Proc) {
	for {
		idx, _, ok := d.Area.Staging.Dequeue()
		if !ok {
			return
		}
		d.busy(p, d.KernMeter, stats.PhaseInterface, 2*d.M.Plat.Cost.QueueOp)
		req, valid := d.Area.Req(idx)
		if !valid {
			continue
		}
		req.Status = uapi.StatusSubmitted
		req.Flushed = p.Now()
		d.Area.Submission.Enqueue(idx)
	}
}

// irqComplete is the interrupt path: it runs when a DMA completion
// interrupt fires for a batch of inf. Multi-batch requests continue with
// the next batch from interrupt context; on the final batch the handler
// performs Release and Notify immediately — possible only because
// lightweight race detection needs no sleeping locks (Section 5.2) — and
// wakes the kernel thread to serve whatever else queued up meanwhile.
func (d *Device) irqComplete(inf *inflight) {
	d.M.Eng.Spawn("memif-irq", func(p *sim.Proc) {
		cost := &d.M.Plat.Cost
		d.busy(p, d.KernMeter, stats.PhaseInterface, cost.IRQEntry)
		if inf.aborted {
			// The recover handler took the request over mid-flight; no
			// further interrupt will come, so hand the queue to the
			// worker before leaving.
			d.busy(p, d.KernMeter, stats.PhaseInterface, cost.KthreadWake)
			d.workSignal.Signal()
			return
		}
		if inf.nextBatch < len(inf.batches) {
			if d.startBatch(p, d.KernMeter, inf, true) {
				return
			}
			// Mid-flight failure: no further interrupt will come, so
			// fall through and wake the worker for the queued rest.
		} else {
			d.finish(p, d.KernMeter, inf)
		}
		// Wake the kernel thread: it takes charge of all queued
		// requests from here with no userspace involvement.
		d.busy(p, d.KernMeter, stats.PhaseInterface, cost.KthreadWake)
		d.workSignal.Signal()
	})
}
