package core

import (
	"testing"

	"memif/internal/hw"
	"memif/internal/sim"
	"memif/internal/uapi"
)

// SubmitBatch stages the whole scatter/gather set, then flushes and
// kicks once: data lands correctly and the batch costs exactly one
// syscall, like the Section 6.4 burst.
func TestSubmitBatchSingleKick(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	const reqs = 8
	const n = int64(16 * 4096)
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		src, _ := d.AS.Mmap(p, reqs*n, hw.NodeSlow, "src")
		dst, _ := d.AS.Mmap(p, reqs*n, hw.NodeFast, "dst")
		for i := int64(0); i < reqs; i++ {
			fill(t, d, p, src+i*n, n, byte(10+i))
		}
		var rs []*uapi.MovReq
		for i := int64(0); i < reqs; i++ {
			r := d.AllocRequest(p)
			r.Op = uapi.OpReplicate
			r.SrcBase, r.DstBase, r.Length = src+i*n, dst+i*n, n
			rs = append(rs, r)
		}
		if err := d.SubmitBatch(p, rs); err != nil {
			t.Fatalf("SubmitBatch: %v", err)
		}
		done := 0
		for done < reqs {
			d.Poll(p, 0)
			for d.RetrieveCompleted(p) != nil {
				done++
			}
		}
		for i, r := range rs {
			if r.Status != uapi.StatusDone {
				t.Errorf("request %d: %v", i, r)
			}
			check(t, d, p, dst+int64(i)*n, n, byte(10+i))
			d.FreeRequest(p, r)
		}
	})
	m.Eng.Run()
	if st := d.Stats(); st.Syscalls != 1 {
		t.Errorf("Syscalls = %d, want 1 for the whole batch", st.Syscalls)
	}
}

// An empty batch is a no-op, and a request in a non-submittable state
// stops the batch there: the staged prefix still completes, the bad
// request's error is surfaced, and later requests are left untouched.
func TestSubmitBatchEmptyAndBadState(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	const n = int64(4096)
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		if err := d.SubmitBatch(p, nil); err != nil {
			t.Fatalf("empty batch: %v", err)
		}
		src, _ := d.AS.Mmap(p, 3*n, hw.NodeSlow, "src")
		dst, _ := d.AS.Mmap(p, 3*n, hw.NodeFast, "dst")
		good := d.AllocRequest(p)
		good.Op = uapi.OpReplicate
		good.SrcBase, good.DstBase, good.Length = src, dst, n
		bad := d.AllocRequest(p)
		bad.Op = uapi.OpReplicate
		bad.SrcBase, bad.DstBase, bad.Length = src+n, dst+n, n
		bad.Status = uapi.StatusSubmitted // already in flight: not submittable
		tail := d.AllocRequest(p)
		tail.Op = uapi.OpReplicate
		tail.SrcBase, tail.DstBase, tail.Length = src+2*n, dst+2*n, n

		err := d.SubmitBatch(p, []*uapi.MovReq{good, bad, tail})
		if err == nil {
			t.Fatal("bad-state request accepted")
		}
		if tail.Status != uapi.StatusFree {
			t.Errorf("request past the failure was staged: %v", tail)
		}
		// The staged prefix must still be served.
		for good.Status != uapi.StatusDone {
			d.Poll(p, 0)
			d.RetrieveCompleted(p)
		}
	})
	m.Eng.Run()
}
