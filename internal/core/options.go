// Package core implements the memif driver and its user library
// (Sections 3–5): an asynchronous, DMA-accelerated OS service for
// replicating and migrating virtual memory regions across heterogeneous
// memory nodes.
//
// One Device corresponds to one opened memif instance: a shared interface
// area (staging/submission/completion queues and the mov_req array, all
// lock-free — package uapi), a kernel worker thread, and the three
// execution paths of Section 5.4 (syscall, interrupt, kernel thread).
package core

// RaceMode selects how migration handles CPU/DMA races (Section 5.2).
type RaceMode int

// Race-handling policies.
const (
	// RaceDetect is the paper's design: install a semi-final PTE with
	// the young bit set, release with a single CAS, and report a
	// cleared bit as a program error (SEGFAULT → failed completion).
	RaceDetect RaceMode = iota
	// RaceRecover is the "proceed and recover" alternative: pages stay
	// mapped read-only to the old frame during migration; a write traps
	// into a custom fault handler that aborts the DMA, restores the
	// mapping, and posts an aborted completion.
	RaceRecover
	// RacePrevent is the baseline discipline (migration PTEs that block
	// accessors), kept for the ablation benchmarks.
	RacePrevent
)

func (m RaceMode) String() string {
	return [...]string{"detect", "recover", "prevent"}[m]
}

// Options configures a memif Device. The zero value is not useful; start
// from DefaultOptions.
type Options struct {
	// NumReqs is the number of mov_req slots in the shared area.
	NumReqs int
	// PollThresholdBytes: requests strictly smaller run in the kernel
	// thread's polling mode (DMA interrupt off, Section 5.4); larger
	// ones complete through the interrupt path. The prototype uses
	// 512 KB.
	PollThresholdBytes int64
	// RaceMode selects the migration race policy.
	RaceMode RaceMode
	// GangLookup enables the Section 5.1 page lookup (ablation knob).
	GangLookup bool
	// DescReuse enables descriptor-chain reuse (Section 5.3 knob).
	DescReuse bool
	// MaxChainPages caps the pages per DMA transfer; larger requests
	// are moved in consecutive sub-transfers (the 512-entry PaRAM array
	// bounds chain length).
	MaxChainPages int
	// WorkerIdleGraceNS is how long the kernel worker lingers in
	// polling mode after draining all queues before recoloring the
	// staging queue blue and sleeping. Like a NAPI network driver
	// (which Section 5.4 cites as the inspiration for the worker's
	// interrupt/polling switching), lingering absorbs steady request
	// streams without bouncing each one through a kick-start syscall.
	// Zero disables lingering.
	WorkerIdleGraceNS int64
	// AdaptiveLinger stretches the grace toward 4x the observed request
	// inter-arrival gap (capped at 20x the base grace), so steady but
	// slow request streams keep the worker alive. Disable for the
	// fixed-grace behaviour (ablation knob).
	AdaptiveLinger bool
}

// DefaultOptions returns the prototype's configuration.
func DefaultOptions() Options {
	return Options{
		NumReqs:            256,
		PollThresholdBytes: 512 << 10,
		RaceMode:           RaceDetect,
		GangLookup:         true,
		DescReuse:          true,
		MaxChainPages:      256,
		WorkerIdleGraceNS:  200_000,
		AdaptiveLinger:     true,
	}
}

// Stats counts device activity.
type Stats struct {
	Submitted      int64
	Completed      int64
	Failed         int64
	Syscalls       int64 // MOV_ONE ioctls issued by the library
	WorkerWakes    int64
	RacesDetected  int64
	Recovered      int64
	BytesRequested int64
	BytesMoved     int64
	Replications   int64
	Migrations     int64

	// Transactional migration activity (ReqTxn requests).
	TxnMigrations int64 // transactional migrations served
	TxnCommits    int64 // committed atomically with all pages clean
	TxnAborts     int64 // aborted by the commit CAS (page went dirty)
	ZeroCopyPages int64 // pages committed by PTE flip alone (valid shadow)
}
