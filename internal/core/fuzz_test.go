package core

import (
	"math/rand"
	"testing"

	"memif/internal/hw"
	"memif/internal/machine"
	"memif/internal/sim"
	"memif/internal/uapi"
)

// Randomized end-to-end workout: a pseudo-random mix of replications,
// migrations (valid and invalid), touches, polls, and frees. Afterwards
// every invariant the driver promises must hold:
//
//   - every submitted request eventually completes (done or failed),
//   - physical memory accounting balances (no leaked frames),
//   - all mov_req slots return to the free list,
//   - no page is left with a transient PTE flag (young/migration/recover),
//   - data regions still read back what was written (modulo raced pages).
func TestDriverRandomWorkout(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234, 987654} {
		seed := seed
		t.Run("", func(t *testing.T) {
			runRandomWorkout(t, seed)
		})
	}
}

func runRandomWorkout(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	m := machine.New(hw.KeyStoneII())
	as := m.NewAddressSpace(4096)
	opts := DefaultOptions()
	opts.NumReqs = 64
	if seed%2 == 0 {
		opts.RaceMode = RaceRecover
	}
	d := Open(m, as, opts)

	const (
		numRegions  = 12
		regionPages = 16
		regionBytes = regionPages * 4096
		ops         = 300
	)
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		regions := make([]int64, numRegions)
		for i := range regions {
			b, err := as.Mmap(p, regionBytes, hw.NodeSlow, "r")
			if err != nil {
				t.Fatal(err)
			}
			regions[i] = b
		}
		slowBase := as.Mem.Used(hw.NodeSlow)

		outstanding := 0
		drain := func(block bool) {
			for {
				r := d.RetrieveCompleted(p)
				if r == nil {
					if !block || outstanding == 0 {
						return
					}
					if !d.Poll(p, 100_000_000) {
						st := d.Stats()
						t.Fatalf("poll gave up with %d outstanding; stats=%+v staging[len=%d color=%v] submission[len=%d]",
							outstanding, st, d.Area.Staging.Len(), d.Area.Staging.Color(), d.Area.Submission.Len())
					}
					continue
				}
				if r.Status != uapi.StatusDone && r.Status != uapi.StatusFailed {
					t.Fatalf("retrieved request in state %v", r.Status)
				}
				d.FreeRequest(p, r)
				outstanding--
			}
		}

		for op := 0; op < ops; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2: // migrate a random region to a random node
				r := d.AllocRequest(p)
				if r == nil {
					drain(true)
					continue
				}
				r.Op = uapi.OpMigrate
				r.SrcBase = regions[rng.Intn(numRegions)]
				r.Length = regionBytes
				r.DstNode = hw.NodeID(rng.Intn(2))
				if err := d.Submit(p, r); err != nil {
					t.Fatalf("submit: %v", err)
				}
				outstanding++
			case 3, 4: // replicate between two random regions
				r := d.AllocRequest(p)
				if r == nil {
					drain(true)
					continue
				}
				r.Op = uapi.OpReplicate
				r.SrcBase = regions[rng.Intn(numRegions)]
				r.DstBase = regions[rng.Intn(numRegions)]
				r.Length = regionBytes
				if err := d.Submit(p, r); err != nil {
					t.Fatalf("submit: %v", err)
				}
				outstanding++
			case 5: // submit something invalid
				r := d.AllocRequest(p)
				if r == nil {
					drain(true)
					continue
				}
				r.Op = uapi.OpMigrate
				r.SrcBase = 0x100 // unmapped
				r.Length = regionBytes
				r.DstNode = hw.NodeFast
				if err := d.Submit(p, r); err != nil {
					t.Fatalf("submit: %v", err)
				}
				outstanding++
			case 6, 7: // touch random pages (provokes races/recovers)
				base := regions[rng.Intn(numRegions)]
				addr := base + int64(rng.Intn(regionPages))*4096
				if err := as.Write(p, addr, []byte{byte(op)}); err != nil {
					t.Fatalf("write: %v", err)
				}
			case 8: // let time pass
				p.SleepNS(int64(rng.Intn(200_000)))
			case 9: // drain whatever is ready
				drain(false)
			}
		}
		drain(true)

		// Invariants.
		if got := d.Stats().Submitted; got != d.Stats().Completed+d.Stats().Failed {
			t.Errorf("submitted %d != completed %d + failed %d",
				got, d.Stats().Completed, d.Stats().Failed)
		}
		// Conservation ("no index may ever vanish"): after the full
		// drain every mov_req index must be in exactly one place — the
		// free list. Shared with the uapi invariant tests.
		if err := d.Area.Audit(nil); err != nil {
			t.Error(err)
		}
		// All request slots back on the free list.
		free := 0
		for d.AllocRequest(p) != nil {
			free++
		}
		if free != opts.NumReqs {
			t.Errorf("free slots = %d, want %d", free, opts.NumReqs)
		}
		// Physical accounting: every region is backed by exactly one
		// frame per page, wherever it lives now.
		var backed int64
		for _, base := range regions {
			for pg := int64(0); pg < regionPages; pg++ {
				f := as.FrameAt(base + pg*4096)
				if f == nil {
					t.Fatalf("region page %#x lost its mapping", base+pg*4096)
				}
				backed += f.Size
				// No transient PTE state left behind.
				slot, _ := as.Table.Lookup(as.VPN(base + pg*4096))
				pte := slot.Load()
				if pte.Has(1<<4) || pte.Has(1<<5) { // migration/recover flags
					t.Fatalf("transient PTE flag left on %#x: %v", base+pg*4096, pte)
				}
			}
		}
		total := as.Mem.Used(hw.NodeSlow) + as.Mem.Used(hw.NodeFast)
		if total != backed {
			t.Errorf("physical accounting off: used %d, backed %d (leak of %d)",
				total, backed, total-backed)
		}
		_ = slowBase
	})
	end := m.Eng.Run()
	if end <= 0 {
		t.Fatal("simulation did not advance")
	}
	if m.Eng.Parked() != 0 {
		t.Errorf("seed %d: %d processes leaked", seed, m.Eng.Parked())
	}
}

// Multiple application threads hammering one device concurrently: the
// paper's claim that the lock-free interface admits any access pattern
// without data races (Section 3), here exercised with simulated threads
// in one address space.
func TestMultiThreadSubmitters(t *testing.T) {
	m := machine.New(hw.KeyStoneII())
	as := m.NewAddressSpace(4096)
	d := Open(m, as, DefaultOptions())

	const (
		threads   = 6
		perThread = 30
		regionB   = 8 * 4096
	)
	doneCount := 0
	retrievers := 0
	for th := 0; th < threads; th++ {
		th := th
		m.Eng.Spawn("thread", func(p *sim.Proc) {
			base, err := as.Mmap(p, perThread*regionB, hw.NodeSlow, "w")
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perThread; i++ {
				var r *uapi.MovReq
				for {
					if r = d.AllocRequest(p); r != nil {
						break
					}
					p.SleepNS(50_000)
				}
				r.Op = uapi.OpMigrate
				r.SrcBase = base + int64(i)*regionB
				r.Length = regionB
				r.DstNode = hw.NodeID(i % 2)
				r.Cookie = uint64(th)
				if err := d.Submit(p, r); err != nil {
					t.Errorf("thread %d: %v", th, err)
					return
				}
				p.SleepNS(int64(th+1) * 10_000)
			}
			// Each thread also retrieves (any thread may see any
			// completion — the queues are shared).
			for {
				if got := d.RetrieveCompleted(p); got != nil {
					if got.Status != uapi.StatusDone {
						t.Errorf("move failed: %v", got)
					}
					d.FreeRequest(p, got)
					doneCount++
					continue
				}
				if doneCount >= threads*perThread {
					break
				}
				if !d.Poll(p, 500_000_000) {
					break
				}
			}
			retrievers++
			if retrievers == threads {
				d.Close()
			}
		})
	}
	m.Eng.Run()
	if doneCount != threads*perThread {
		t.Errorf("completions = %d, want %d", doneCount, threads*perThread)
	}
	st := d.Stats()
	if st.Syscalls >= st.Submitted/2 {
		t.Errorf("syscalls = %d for %d submissions: amortization broken", st.Syscalls, st.Submitted)
	}
}
