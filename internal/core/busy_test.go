package core

import (
	"testing"

	"memif/internal/hw"
	"memif/internal/sim"
	"memif/internal/uapi"
)

// Overlapping in-flight migrations must bounce with EAGAIN semantics
// (the migration-claim stand-in for the kernel's page lock), not corrupt
// each other.
func TestOverlappingMigrationsGetBusy(t *testing.T) {
	// Two devices on one address space (the app + swap-daemon shape):
	// device B tries to move a region while device A's migration of it
	// is still in flight. B must bounce with EAGAIN, and the region must
	// come out of the dance intact.
	m, dA := newRig(t, DefaultOptions())
	dB := Open(m, dA.AS, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer dA.Close()
		defer dB.Close()
		const n = 256 * 4096 // 1 MB: the DMA alone flies for ~190 µs
		base, _ := dA.AS.Mmap(p, n, hw.NodeSlow, "w")
		fill(t, dA, p, base, 4096, 5)

		r1 := dA.AllocRequest(p)
		r1.Op = uapi.OpMigrate
		r1.SrcBase, r1.Length, r1.DstNode = base, n, hw.NodeFast
		if err := dA.Submit(p, r1); err != nil {
			t.Fatal(err)
		}
		// Submit returns once r1's DMA is started; its claim is held.
		r2 := dB.AllocRequest(p)
		r2.Op = uapi.OpMigrate
		r2.SrcBase, r2.Length, r2.DstNode = base+n/2, n/2, hw.NodeSlow
		if err := dB.Submit(p, r2); err != nil {
			t.Fatal(err)
		}
		dB.Poll(p, 0)
		got2 := dB.RetrieveCompleted(p)
		if got2 == nil || got2.Err != uapi.ErrBusy {
			t.Fatalf("overlapping move = %v, want busy", got2)
		}
		dA.Poll(p, 0)
		got1 := dA.RetrieveCompleted(p)
		if got1 == nil || got1.Status != uapi.StatusDone {
			t.Fatalf("original move = %v", got1)
		}
		// Claim released: the same move now succeeds.
		r2b := dB.AllocRequest(p)
		r2b.Op = uapi.OpMigrate
		r2b.SrcBase, r2b.Length, r2b.DstNode = base+n/2, n/2, hw.NodeSlow
		got := submitAndWait(t, dB, p, r2b)
		if got.Status != uapi.StatusDone {
			t.Fatalf("resubmit after busy: %v", got)
		}
		check(t, dA, p, base, 4096, 5)
	})
	m.Eng.Run()
	if dB.Stats().Failed != 1 {
		t.Errorf("dB failures = %d, want 1", dB.Stats().Failed)
	}
}

// Regression: a request that fails validation on the kick-start syscall
// path starts no DMA, so no interrupt would ever wake the worker — the
// rest of the burst must not be stranded behind the red staging queue.
func TestFailedFirstRequestDoesNotStrandBurst(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		base, _ := d.AS.Mmap(p, 8*16*4096, hw.NodeSlow, "w")

		// First request of the burst is invalid: it is the one the
		// kick-start ioctl serves, and it fails without starting a DMA.
		bad := d.AllocRequest(p)
		bad.Op = uapi.OpMigrate
		bad.SrcBase, bad.Length, bad.DstNode = 0xbad000, 16*4096, hw.NodeFast
		if err := d.Submit(p, bad); err != nil {
			t.Fatal(err)
		}
		// Seven valid requests follow while staging is red.
		for i := 0; i < 7; i++ {
			r := d.AllocRequest(p)
			r.Op = uapi.OpMigrate
			r.SrcBase = base + int64(i)*16*4096
			r.Length, r.DstNode = 16*4096, hw.NodeFast
			if err := d.Submit(p, r); err != nil {
				t.Fatal(err)
			}
		}
		okN, failN := 0, 0
		for done := 0; done < 8; {
			if !d.Poll(p, 50_000_000) {
				t.Fatalf("stranded: only %d of 8 completed", done)
			}
			for {
				r := d.RetrieveCompleted(p)
				if r == nil {
					break
				}
				if r.Status == uapi.StatusDone {
					okN++
				} else {
					failN++
				}
				done++
			}
		}
		if okN != 7 || failN != 1 {
			t.Errorf("ok=%d fail=%d, want 7/1", okN, failN)
		}
	})
	m.Eng.Run()
}

// Same shape via the worker path: failures inside the kernel thread must
// not stall the stream either.
func TestBusyBurstInterleavedWithValid(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		const rn = 64 * 4096
		busyRegion, _ := d.AS.Mmap(p, rn, hw.NodeSlow, "hot")
		work, _ := d.AS.Mmap(p, 8*rn, hw.NodeSlow, "w")

		// Long-running migration holds the claim on busyRegion.
		hold := d.AllocRequest(p)
		hold.Op = uapi.OpMigrate
		hold.SrcBase, hold.Length, hold.DstNode = busyRegion, rn, hw.NodeFast
		d.Submit(p, hold)

		// Burst: alternating duplicate (busy) and valid migrations.
		total := 0
		for i := 0; i < 4; i++ {
			dup := d.AllocRequest(p)
			dup.Op = uapi.OpMigrate
			dup.SrcBase, dup.Length, dup.DstNode = busyRegion, rn, hw.NodeSlow
			d.Submit(p, dup)
			total++
			ok := d.AllocRequest(p)
			ok.Op = uapi.OpMigrate
			ok.SrcBase, ok.Length, ok.DstNode = work+int64(i)*rn, rn, hw.NodeFast
			d.Submit(p, ok)
			total++
		}
		for done := 0; done < total+1; {
			if !d.Poll(p, 100_000_000) {
				t.Fatalf("stalled at %d of %d", done, total+1)
			}
			for d.RetrieveCompleted(p) != nil {
				done++
			}
		}
	})
	m.Eng.Run()
	st := d.Stats()
	if st.Completed < 5 {
		t.Errorf("completed = %d, want >=5", st.Completed)
	}
}

// Closing the device with requests still queued must not strand them:
// the worker drains everything before exiting, and the application can
// still retrieve the notifications.
func TestCloseDrainsOutstanding(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		base, _ := d.AS.Mmap(p, 4*64*4096, hw.NodeSlow, "w")
		for i := 0; i < 4; i++ {
			r := d.AllocRequest(p)
			r.Op = uapi.OpMigrate
			r.SrcBase = base + int64(i)*64*4096
			r.Length, r.DstNode = 64*4096, hw.NodeFast
			if err := d.Submit(p, r); err != nil {
				t.Fatal(err)
			}
		}
		d.Close()
		// Poll() refuses to sleep on a closed device (like polling a
		// closed fd), so wait by sleeping: the worker still drains all
		// queued work before exiting.
		done, waited := 0, 0
		for done < 4 {
			if r := d.RetrieveCompleted(p); r != nil {
				if r.Status != uapi.StatusDone {
					t.Errorf("post-close completion: %v", r)
				}
				done++
				continue
			}
			if waited++; waited > 1000 {
				t.Fatalf("stranded after Close: %d of 4", done)
			}
			p.SleepNS(1_000_000)
		}
	})
	m.Eng.Run()
	if m.Eng.Parked() != 0 {
		t.Errorf("%d processes leaked after close", m.Eng.Parked())
	}
}
