package core

import (
	"fmt"
	"testing"

	"memif/internal/hw"
	"memif/internal/machine"
	"memif/internal/sim"
	"memif/internal/uapi"
)

// The driver is page-size agnostic: migration and replication work
// unchanged on 64 KB and 2 MB address spaces (the medium/large page
// configurations of Section 6.2), with per-page work scaling by count,
// not bytes.
func TestDriverAcrossPageSizes(t *testing.T) {
	for _, pb := range []int64{hw.Page4K, hw.Page64K, hw.Page2M} {
		pb := pb
		t.Run(fmt.Sprintf("page=%dKB", pb>>10), func(t *testing.T) {
			plat := hw.KeyStoneII()
			// 2 MB pages need a fast node that can hold a few frames.
			for i := range plat.Nodes {
				if plat.Nodes[i].ID == hw.NodeFast {
					plat.Nodes[i].Capacity = 64 << 20
				}
			}
			m := machine.New(plat)
			as := m.NewAddressSpace(pb)
			d := Open(m, as, DefaultOptions())
			m.Eng.Spawn("app", func(p *sim.Proc) {
				defer d.Close()
				n := 2 * pb
				base, err := as.Mmap(p, n, hw.NodeSlow, "w")
				if err != nil {
					t.Fatal(err)
				}
				fill(t, d, p, base, 4096, 9)
				r := d.AllocRequest(p)
				r.Op = uapi.OpMigrate
				r.SrcBase, r.Length, r.DstNode = base, n, hw.NodeFast
				got := submitAndWait(t, d, p, r)
				if got.Status != uapi.StatusDone {
					t.Fatalf("migrate at %d-byte pages: %v", pb, got)
				}
				f := as.FrameAt(base)
				if f == nil || f.Node != hw.NodeFast || f.Size != pb {
					t.Fatalf("frame after migrate = %v", f)
				}
				check(t, d, p, base, 4096, 9)

				// Replication too.
				dst, _ := as.Mmap(p, n, hw.NodeSlow, "dst")
				r2 := d.AllocRequest(p)
				r2.Op = uapi.OpReplicate
				r2.SrcBase, r2.DstBase, r2.Length = base, dst, n
				if got := submitAndWait(t, d, p, r2); got.Status != uapi.StatusDone {
					t.Fatalf("replicate at %d-byte pages: %v", pb, got)
				}
				check(t, d, p, dst, 4096, 9)
			})
			m.Eng.Run()
		})
	}
}

// Per-page driver work is constant across page sizes: migrating two 2 MB
// pages must cost (nearly) the same CPU as migrating two 4 KB pages,
// even though 512x the bytes move (the asynchrony claim of Figure 6).
func TestPerPageCPUIndependentOfPageSize(t *testing.T) {
	cpu := func(pb int64) sim.Time {
		plat := hw.KeyStoneII()
		for i := range plat.Nodes {
			plat.Nodes[i].Capacity = 256 << 20
		}
		m := machine.New(plat)
		m.Mem.DisableData()
		as := m.NewAddressSpace(pb)
		d := Open(m, as, DefaultOptions())
		var busy sim.Time
		m.Eng.Spawn("app", func(p *sim.Proc) {
			defer d.Close()
			base, _ := as.Mmap(p, 2*pb, hw.NodeSlow, "w")
			r := d.AllocRequest(p)
			r.Op = uapi.OpMigrate
			r.SrcBase, r.Length, r.DstNode = base, 2*pb, hw.NodeFast
			submitAndWait(t, d, p, r)
			busy = sim.MeterGroup{d.UserMeter, d.KernMeter}.Busy()
		})
		m.Eng.Run()
		return busy
	}
	small, large := cpu(hw.Page4K), cpu(hw.Page2M)
	ratio := float64(large) / float64(small)
	t.Logf("CPU for 2 pages: 4KB %v, 2MB %v (%.2fx)", small, large, ratio)
	if ratio > 1.5 {
		t.Errorf("per-page CPU grew %.1fx with page size; copy leaked onto the CPU", ratio)
	}
}
