package core

import (
	"testing"

	"memif/internal/hw"
	"memif/internal/sim"
	"memif/internal/uapi"
)

// txnMigrate builds a transactional migration request for [base, base+n).
func txnMigrate(t *testing.T, d *Device, p *sim.Proc, base, n int64, node hw.NodeID, flags uapi.ReqFlags) *uapi.MovReq {
	t.Helper()
	r := d.AllocRequest(p)
	if r == nil {
		t.Fatal("AllocRequest returned nil")
	}
	r.Op = uapi.OpMigrate
	r.SrcBase, r.Length, r.DstNode = base, n, node
	r.Flags = uapi.ReqTxn | flags
	return r
}

func TestTxnMigrationCommitsCleanPages(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		const n = 8 * 4096
		base, _ := d.AS.Mmap(p, n, hw.NodeSlow, "buf")
		fill(t, d, p, base, n, 3)

		r := txnMigrate(t, d, p, base, n, hw.NodeFast, 0)
		got := submitAndWait(t, d, p, r)
		if got.Status != uapi.StatusDone || got.Err != uapi.ErrNone {
			t.Fatalf("completion = %v", got)
		}
		if got.MovedBytes != n || got.ZeroCopyPages != 0 {
			t.Errorf("MovedBytes = %d, ZeroCopyPages = %d", got.MovedBytes, got.ZeroCopyPages)
		}
		for i := int64(0); i < n/4096; i++ {
			f := d.AS.FrameAt(base + i*4096)
			if f == nil || f.Node != hw.NodeFast {
				t.Fatalf("page %d not on fast node after commit", i)
			}
		}
		check(t, d, p, base, n, 3)
		st := d.Stats()
		if st.TxnMigrations != 1 || st.TxnCommits != 1 || st.TxnAborts != 0 {
			t.Errorf("txn stats = %+v", st)
		}
		// Without ReqKeepSrc the source frames are freed, not retained.
		if d.AS.Shadows() != 0 {
			t.Errorf("Shadows = %d without keep-src", d.AS.Shadows())
		}
		if d.AS.Mem.Used(hw.NodeSlow) != 0 {
			t.Errorf("slow node still holds %d bytes", d.AS.Mem.Used(hw.NodeSlow))
		}
		d.FreeRequest(p, got)
	})
	m.Eng.Run()
}

// A keep-src promotion retains the slow copy; while the page stays clean
// the reverse (demotion) commit is a PTE flip that moves zero bytes.
func TestTxnKeepSrcEnablesZeroCopyDemotion(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		const n = 4 * 4096
		base, _ := d.AS.Mmap(p, n, hw.NodeSlow, "buf")
		fill(t, d, p, base, n, 9)

		up := txnMigrate(t, d, p, base, n, hw.NodeFast, uapi.ReqKeepSrc)
		got := submitAndWait(t, d, p, up)
		if got.Err != uapi.ErrNone || got.MovedBytes != n {
			t.Fatalf("promotion = %v (moved %d)", got, got.MovedBytes)
		}
		if d.AS.Shadows() != n/4096 {
			t.Fatalf("Shadows = %d, want %d", d.AS.Shadows(), n/4096)
		}
		// The slow copies are retained: slow usage unchanged.
		if d.AS.Mem.Used(hw.NodeSlow) != n {
			t.Errorf("slow usage = %d, want %d", d.AS.Mem.Used(hw.NodeSlow), n)
		}
		d.FreeRequest(p, got)

		// Read-only access keeps the pages clean.
		check(t, d, p, base, n, 9)

		down := txnMigrate(t, d, p, base, n, hw.NodeSlow, 0)
		before := d.M.DMA.Stats().BytesMoved
		got = submitAndWait(t, d, p, down)
		if got.Err != uapi.ErrNone {
			t.Fatalf("demotion = %v", got)
		}
		if got.MovedBytes != 0 || got.ZeroCopyPages != n/4096 {
			t.Errorf("demotion moved %d bytes, %d zero-copy pages", got.MovedBytes, got.ZeroCopyPages)
		}
		if d.M.DMA.Stats().BytesMoved != before {
			t.Error("zero-copy demotion went through the DMA engine")
		}
		for i := int64(0); i < n/4096; i++ {
			f := d.AS.FrameAt(base + i*4096)
			if f == nil || f.Node != hw.NodeSlow {
				t.Fatalf("page %d not back on slow node", i)
			}
		}
		check(t, d, p, base, n, 9)
		if st := d.Stats(); st.ZeroCopyPages != int64(n/4096) {
			t.Errorf("stats.ZeroCopyPages = %d", st.ZeroCopyPages)
		}
		if d.AS.Mem.Used(hw.NodeFast) != 0 {
			t.Errorf("fast node still holds %d bytes", d.AS.Mem.Used(hw.NodeFast))
		}
		d.FreeRequest(p, got)
	})
	m.Eng.Run()
}

// A write to a page after the shadow was taken invalidates it: the next
// demotion must copy the bytes instead of flipping the PTE.
func TestDirtyPageInvalidatesShadow(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		const n = 4096
		base, _ := d.AS.Mmap(p, n, hw.NodeSlow, "buf")
		fill(t, d, p, base, n, 1)

		got := submitAndWait(t, d, p, txnMigrate(t, d, p, base, n, hw.NodeFast, uapi.ReqKeepSrc))
		if got.Err != uapi.ErrNone {
			t.Fatalf("promotion = %v", got)
		}
		d.FreeRequest(p, got)

		fill(t, d, p, base, n, 2) // dirty the fast copy

		got = submitAndWait(t, d, p, txnMigrate(t, d, p, base, n, hw.NodeSlow, 0))
		if got.Err != uapi.ErrNone {
			t.Fatalf("demotion = %v", got)
		}
		if got.MovedBytes != n || got.ZeroCopyPages != 0 {
			t.Errorf("stale shadow was used: moved %d, zero-copy %d", got.MovedBytes, got.ZeroCopyPages)
		}
		check(t, d, p, base, n, 2)
		d.FreeRequest(p, got)
	})
	m.Eng.Run()
}

// The heart of the transaction: a write racing the copy leaves the dirty
// bit set, the commit CAS refuses it, and the original mapping — with the
// new data — is untouched. The writer never blocks and never faults.
func TestTxnAbortOnDirtyDuringCopy(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	done := false
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		const n = 64 * 4096 // big enough that the copy takes a while
		base, _ := d.AS.Mmap(p, n, hw.NodeFast, "buf")
		fill(t, d, p, base, n, 5)

		r := txnMigrate(t, d, p, base, n, hw.NodeSlow, 0)
		if err := d.Submit(p, r); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		// Keep writing the first page while the migration is in flight;
		// with the page never unmapped this must not block or fault.
		var got *uapi.MovReq
		for got == nil {
			if err := d.AS.Write(p, base, []byte{0xAA}); err != nil {
				t.Fatalf("write during txn copy: %v", err)
			}
			p.Sleep(20_000)
			got = d.RetrieveCompleted(p)
		}
		if got.Status != uapi.StatusFailed || got.Err != uapi.ErrTxnDirty {
			t.Fatalf("completion = %v, want txn-dirty abort", got)
		}
		f := d.AS.FrameAt(base)
		if f == nil || f.Node != hw.NodeFast {
			t.Error("aborted page not on its original node")
		}
		var b [1]byte
		if err := d.AS.Read(p, base, b[:]); err != nil || b[0] != 0xAA {
			t.Errorf("racing write lost: %v %#x", err, b[0])
		}
		if st := d.Stats(); st.TxnAborts == 0 {
			t.Error("TxnAborts not counted")
		}
		// Abort must leak nothing on the destination node.
		if used := d.AS.Mem.Used(hw.NodeSlow); used != 0 {
			t.Errorf("slow node holds %d bytes after abort", used)
		}
		d.FreeRequest(p, got)

		// A retry with the writer quiet commits.
		got = submitAndWait(t, d, p, txnMigrate(t, d, p, base, n, hw.NodeSlow, 0))
		if got.Err != uapi.ErrNone {
			t.Fatalf("retry = %v", got)
		}
		d.FreeRequest(p, got)
		done = true
	})
	m.Eng.Run()
	if !done {
		t.Fatal("scenario did not finish")
	}
}

func TestTxnRejectsSharedPages(t *testing.T) {
	m, d := newRig(t, DefaultOptions())
	m.Eng.Spawn("app", func(p *sim.Proc) {
		defer d.Close()
		const n = 4096
		base, _ := d.AS.Mmap(p, n, hw.NodeSlow, "shared")
		other := m.NewAddressSpace(4096)
		if _, err := other.ShareFrom(p, d.AS, base, n); err != nil {
			t.Fatalf("ShareFrom: %v", err)
		}
		got := submitAndWait(t, d, p, txnMigrate(t, d, p, base, n, hw.NodeFast, 0))
		if got.Err != uapi.ErrBadRequest {
			t.Fatalf("shared-page txn = %v, want badreq", got)
		}
		d.FreeRequest(p, got)
	})
	m.Eng.Run()
}
