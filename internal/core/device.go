package core

import (
	"errors"
	"fmt"

	"memif/internal/machine"
	"memif/internal/rbq"
	"memif/internal/sim"
	"memif/internal/stats"
	"memif/internal/uapi"
	"memif/internal/vm"
)

// Errors returned by the user-library entry points.
var (
	ErrClosed    = errors.New("memif: device closed")
	ErrNoSlots   = errors.New("memif: no free mov_req slots")
	ErrQueueFull = errors.New("memif: interface queues full")
	ErrBadState  = errors.New("memif: request not in a submittable state")
)

// Device is one opened memif instance: the equivalent of the device file
// plus the mmap'ed shared area plus the in-kernel per-instance state.
type Device struct {
	M    *machine.Machine
	AS   *vm.AddressSpace
	Area *uapi.Area
	opts Options

	// UserMeter accumulates CPU time spent in application context on
	// interface work: library calls and the MOV_ONE syscall path.
	UserMeter *sim.Meter
	// KernMeter accumulates CPU time of the kernel contexts: the worker
	// thread and interrupt handlers.
	KernMeter *sim.Meter
	// Breakdown charges every driver operation to its Table 1 phase.
	Breakdown *stats.Breakdown

	workSignal *sim.Cond // wakes the kernel worker
	notifySig  *sim.Cond // wakes poll()ers on any completion

	// Arrival tracking for the worker's adaptive linger: an EWMA of the
	// gap between served requests, so steady-but-slow streams (e.g. a
	// compute-bound consumer refilling prefetch buffers) keep the
	// worker alive instead of paying a kick-start syscall per request.
	lastArrival sim.Time
	gapEWMA     int64

	// recoverMap resolves a faulting PTE slot back to its in-flight
	// migration (RaceRecover mode).
	recoverMap map[*slotKey]*inflight

	closed bool
	stats  Stats
}

// slotKey aliases the PTE slot pointer type for map keys without
// importing pagetable here (kept in driver.go).
type slotKey = slotKeyImpl

// Open creates a memif instance for the process owning as and starts its
// kernel worker thread. It is the MemifOpen of the user API.
func Open(m *machine.Machine, as *vm.AddressSpace, opts Options) *Device {
	if opts.NumReqs <= 0 {
		panic("core: Options.NumReqs must be positive (start from DefaultOptions)")
	}
	if opts.MaxChainPages <= 0 {
		opts.MaxChainPages = 256
	}
	if opts.MaxChainPages > m.Plat.DMA.ParamSlots {
		opts.MaxChainPages = m.Plat.DMA.ParamSlots
	}
	d := &Device{
		M:          m,
		AS:         as,
		Area:       uapi.NewArea(opts.NumReqs),
		opts:       opts,
		UserMeter:  sim.NewMeter("memif-user"),
		KernMeter:  sim.NewMeter("memif-kernel"),
		Breakdown:  stats.NewBreakdown(),
		workSignal: sim.NewCond(m.Eng),
		notifySig:  sim.NewCond(m.Eng),
		recoverMap: make(map[*slotKey]*inflight),
	}
	if opts.RaceMode == RaceRecover {
		as.SetFaultHandler(d.handleRecoverFault)
	}
	m.Eng.Spawn("memif-worker", d.worker)
	return d
}

// Close shuts the device down. Outstanding requests are still completed
// by the kernel contexts; the worker exits once idle.
func (d *Device) Close() { d.closed = true; d.workSignal.Broadcast() }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats { return d.stats }

// Options returns the device configuration.
func (d *Device) Options() Options { return d.opts }

// chargeUser spends app-context CPU on interface machinery.
func (d *Device) chargeUser(p *sim.Proc, ns int64) {
	d.Breakdown.Add(stats.PhaseInterface, ns)
	p.Busy(ns, d.UserMeter)
}

// AllocRequest takes a mov_req slot off the shared free list
// (AllocRequest of the user API). Returns nil when all slots are in use.
func (d *Device) AllocRequest(p *sim.Proc) *uapi.MovReq {
	d.chargeUser(p, d.M.Plat.Cost.QueueOp)
	return d.Area.AllocReq()
}

// FreeRequest returns a completed (or never-submitted) slot to the free
// list.
func (d *Device) FreeRequest(p *sim.Proc, r *uapi.MovReq) {
	d.chargeUser(p, d.M.Plat.Cost.QueueOp)
	d.Area.FreeReq(r)
}

// stage validates r and deposits it in the staging queue, returning the
// queue color the enqueue observed. Blue means the caller is responsible
// for flushing the staging queue.
func (d *Device) stage(p *sim.Proc, r *uapi.MovReq) (rbq.Color, error) {
	if d.closed {
		return rbq.Red, ErrClosed
	}
	switch r.Status {
	case uapi.StatusFree, uapi.StatusDone, uapi.StatusFailed:
	default:
		return rbq.Red, fmt.Errorf("%w: %v", ErrBadState, r)
	}
	r.Status = uapi.StatusStaged
	r.Err = uapi.ErrNone
	r.Submitted = p.Now()
	d.stats.Submitted++
	d.stats.BytesRequested += r.Length

	d.chargeUser(p, d.M.Plat.Cost.QueueOp)
	color, ok := d.Area.Staging.Enqueue(r.Index())
	if !ok {
		return rbq.Red, ErrQueueFull
	}
	return color, nil
}

// flushStagingAndKick drains the staging queue into the submission
// queue, recolors it red, and — if this thread won the recoloring —
// issues the MOV_ONE kick-start syscall (operations 2–3 of the Section
// 4.4 submit protocol).
func (d *Device) flushStagingAndKick(p *sim.Proc) error {
flush:
	for {
		idx, _, ok := d.Area.Staging.Dequeue()
		if !ok {
			break
		}
		d.chargeUser(p, 2*d.M.Plat.Cost.QueueOp)
		req, valid := d.Area.Req(idx)
		if !valid {
			continue // corrupted index: drop, never trust userspace
		}
		req.Status = uapi.StatusSubmitted
		req.Flushed = p.Now()
		if _, ok := d.Area.Submission.Enqueue(idx); !ok {
			return ErrQueueFull
		}
	}
	old, ok := d.Area.Staging.SetColor(rbq.Red)
	if !ok {
		goto flush // another thread slipped new requests in
	}
	if old == rbq.Red {
		// Someone else already took responsibility for the kick.
		return nil
	}
	d.ioctlMovOne(p)
	return nil
}

// Submit implements SubmitRequest (Section 4.4): deposit the request in
// the staging queue; if the enqueue observed blue, flush the staging
// queue into the submission queue, recolor it red, and — if this thread
// won the recoloring — issue the MOV_ONE kick-start syscall. Non-blocking
// aside from the bounded syscall work.
func (d *Device) Submit(p *sim.Proc, r *uapi.MovReq) error {
	color, err := d.stage(p, r)
	if err != nil {
		return err
	}
	if color == rbq.Red {
		// An active kernel worker will pick it up; done.
		return nil
	}
	return d.flushStagingAndKick(p)
}

// SubmitBatch submits a scatter/gather batch: every request is staged
// first, then the staging queue is flushed, recolored and kicked once
// for the whole batch — one syscall-equivalent per batch instead of per
// request, the same amortization the realtime device's SubmitBatch
// performs. A staging failure part-way leaves the already-staged prefix
// live (an active worker or the final flush still serves it) and
// returns the error for the rest; requests past the failure are
// untouched and remain submittable.
func (d *Device) SubmitBatch(p *sim.Proc, reqs []*uapi.MovReq) error {
	sawBlue := false
	var staged int
	var stageErr error
	for _, r := range reqs {
		color, err := d.stage(p, r)
		if err != nil {
			stageErr = err
			break
		}
		staged++
		if color == rbq.Blue {
			sawBlue = true
		}
	}
	if sawBlue && staged > 0 {
		if err := d.flushStagingAndKick(p); err != nil {
			return err
		}
	}
	return stageErr
}

// ioctlMovOne is the single syscall of the interface: enter the kernel,
// serve one queued request (operations 1–3 of Table 1), start its DMA,
// and return to userspace. Normally the transfer's completion interrupt
// hands control to the kernel worker; if no transfer started (the request
// failed validation, e.g. EAGAIN on a migration claim), the syscall wakes
// the worker directly so queued requests are never stranded behind a red
// staging queue.
func (d *Device) ioctlMovOne(p *sim.Proc) {
	cost := &d.M.Plat.Cost
	d.stats.Syscalls++
	d.chargeUser(p, cost.SyscallEnter)
	_, started := d.serveNext(p, d.UserMeter, ctxSyscall)
	if !started {
		d.chargeUser(p, cost.KthreadWake)
		d.workSignal.Signal()
	}
	d.chargeUser(p, cost.SyscallExit)
}

// RetrieveCompleted pops one completion notification, successful moves
// first, then failures. Returns nil when none is pending (never blocks).
func (d *Device) RetrieveCompleted(p *sim.Proc) *uapi.MovReq {
	d.chargeUser(p, d.M.Plat.Cost.QueueOp)
	idx, _, ok := d.Area.CompOK.Dequeue()
	if !ok {
		idx, _, ok = d.Area.CompFail.Dequeue()
	}
	if !ok {
		return nil
	}
	r, valid := d.Area.Req(idx)
	if !valid {
		return nil
	}
	r.Retrieved = p.Now()
	return r
}

// Poll blocks the calling process until a completion notification is
// pending, like poll(2) on the memif device file. A non-positive timeout
// means wait forever. It reports whether a notification is available.
func (d *Device) Poll(p *sim.Proc, timeoutNS int64) bool {
	deadline := sim.Infinity
	if timeoutNS > 0 {
		deadline = p.Now() + sim.Time(timeoutNS)
	}
	for d.Area.CompOK.Empty() && d.Area.CompFail.Empty() {
		if d.closed {
			return false
		}
		if deadline == sim.Infinity {
			p.WaitCond(d.notifySig)
			continue
		}
		remain := int64(deadline - p.Now())
		if remain <= 0 || !p.WaitCondTimeout(d.notifySig, remain) {
			return !d.Area.CompOK.Empty() || !d.Area.CompFail.Empty()
		}
	}
	return true
}

// Pending reports requests submitted but not yet retrieved as
// notifications (approximate, for tests and examples).
func (d *Device) Pending() int64 {
	return d.stats.Submitted - d.stats.Completed - d.stats.Failed
}
