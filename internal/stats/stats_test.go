package stats

import (
	"strings"
	"testing"

	"memif/internal/sim"
)

func TestBreakdownAccumulates(t *testing.T) {
	b := NewBreakdown()
	b.Add(PhasePrep, 100)
	b.Add(PhasePrep, 50)
	b.Add(PhaseCopy, 1000)
	if b.Get(PhasePrep) != 150 {
		t.Errorf("prep = %v", b.Get(PhasePrep))
	}
	if b.Total() != 1150 {
		t.Errorf("total = %v", b.Total())
	}
	b.Reset()
	if b.Total() != 0 {
		t.Errorf("total after reset = %v", b.Total())
	}
}

func TestBreakdownScaleAndClone(t *testing.T) {
	b := NewBreakdown()
	b.Add(PhaseRemap, 1000)
	c := b.Clone()
	b.Scale(10)
	if b.Get(PhaseRemap) != 100 {
		t.Errorf("scaled = %v", b.Get(PhaseRemap))
	}
	if c.Get(PhaseRemap) != 1000 {
		t.Errorf("clone mutated: %v", c.Get(PhaseRemap))
	}
	b.Scale(0) // no-op, no panic
	if b.Get(PhaseRemap) != 100 {
		t.Error("Scale(0) changed values")
	}
}

func TestBreakdownString(t *testing.T) {
	b := NewBreakdown()
	b.Add(PhaseCopy, 4000)
	b.Add("custom-phase", 1500)
	s := b.String()
	if !strings.Contains(s, "copy=4.0µs") || !strings.Contains(s, "custom-phase=1.5µs") {
		t.Errorf("String() = %q", s)
	}
}

func TestLatencySeries(t *testing.T) {
	var l LatencySeries
	for _, v := range []sim.Time{300, 100, 200} {
		l.Add(v)
	}
	if l.Max() != 300 {
		t.Errorf("Max = %v", l.Max())
	}
	if l.Mean() != 200 {
		t.Errorf("Mean = %v", l.Mean())
	}
	var empty LatencySeries
	if empty.Max() != 0 || empty.Mean() != 0 {
		t.Error("empty series should report zeros")
	}
}

func TestThroughputConversions(t *testing.T) {
	// 1 GB in 1 second.
	if got := ThroughputGBs(1e9, sim.Time(1e9)); got < 0.999 || got > 1.001 {
		t.Errorf("GBs = %v", got)
	}
	if got := ThroughputMBs(1e6, sim.Time(1e9)); got < 0.999 || got > 1.001 {
		t.Errorf("MBs = %v", got)
	}
	if ThroughputGBs(100, 0) != 0 {
		t.Error("zero elapsed should yield 0")
	}
	if ThroughputMBs(100, -5) != 0 {
		t.Error("negative elapsed should yield 0")
	}
}
