// Package stats provides the measurement plumbing for the evaluation:
// per-phase time breakdowns (Figure 6), latency series (Figure 7), and
// throughput computations (Figure 8, Table 4).
package stats

import (
	"fmt"
	"sort"
	"strings"

	"memif/internal/sim"
)

// Phase names matching the driver operations of Table 1. "Copy" is the
// data movement itself (CPU memcpy in the baseline, DMA transfer in
// memif); "Interface" covers syscall crossings and queue operations.
const (
	PhasePrep      = "prep"      // 1: page lookup
	PhaseRemap     = "remap"     // 2: page alloc + PTE replace + TLB flush
	PhaseDMACfg    = "dmacfg"    // 3: scatter-gather assembly + descriptor writes
	PhaseCopy      = "copy"      // byte movement
	PhaseRelease   = "release"   // 4: final PTE / CAS + page free
	PhaseNotify    = "notify"    // 5: completion delivery
	PhaseInterface = "interface" // syscall + queue machinery
)

// AllPhases lists the phases in breakdown display order.
var AllPhases = []string{
	PhaseInterface, PhasePrep, PhaseRemap, PhaseDMACfg, PhaseCopy, PhaseRelease, PhaseNotify,
}

// Breakdown accumulates time per phase.
type Breakdown struct {
	buckets map[string]int64
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{buckets: make(map[string]int64)}
}

// Add charges ns to the named phase.
func (b *Breakdown) Add(phase string, ns int64) {
	b.buckets[phase] += ns
}

// Get returns the accumulated time of a phase.
func (b *Breakdown) Get(phase string) sim.Time { return sim.Time(b.buckets[phase]) }

// Total sums all phases.
func (b *Breakdown) Total() sim.Time {
	var t int64
	for _, v := range b.buckets {
		t += v
	}
	return sim.Time(t)
}

// Reset clears the breakdown.
func (b *Breakdown) Reset() {
	for k := range b.buckets {
		delete(b.buckets, k)
	}
}

// Scale divides every bucket by n (e.g. to report per-request averages).
func (b *Breakdown) Scale(n int64) {
	if n <= 0 {
		return
	}
	for k := range b.buckets {
		b.buckets[k] /= n
	}
}

// Clone returns a copy.
func (b *Breakdown) Clone() *Breakdown {
	c := NewBreakdown()
	for k, v := range b.buckets {
		c.buckets[k] = v
	}
	return c
}

func (b *Breakdown) String() string {
	var parts []string
	for _, p := range AllPhases {
		if v, ok := b.buckets[p]; ok && v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%.1fµs", p, float64(v)/1e3))
		}
	}
	var extra []string
	for k := range b.buckets {
		known := false
		for _, p := range AllPhases {
			if k == p {
				known = true
				break
			}
		}
		if !known {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		parts = append(parts, fmt.Sprintf("%s=%.1fµs", k, float64(b.buckets[k])/1e3))
	}
	return strings.Join(parts, " ")
}

// LatencySeries records per-request completion latencies (Figure 7).
type LatencySeries struct {
	Name    string
	Samples []sim.Time
}

// Add appends a sample.
func (l *LatencySeries) Add(t sim.Time) { l.Samples = append(l.Samples, t) }

// Max returns the largest sample (0 when empty).
func (l *LatencySeries) Max() sim.Time {
	var m sim.Time
	for _, s := range l.Samples {
		if s > m {
			m = s
		}
	}
	return m
}

// Mean returns the average sample.
func (l *LatencySeries) Mean() sim.Time {
	if len(l.Samples) == 0 {
		return 0
	}
	var sum sim.Time
	for _, s := range l.Samples {
		sum += s
	}
	return sum / sim.Time(len(l.Samples))
}

// ThroughputGBs converts bytes moved over a virtual interval into GB/s.
func ThroughputGBs(bytes int64, elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / elapsed.Seconds() / 1e9
}

// ThroughputMBs converts bytes moved over a virtual interval into MB/s.
func ThroughputMBs(bytes int64, elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / elapsed.Seconds() / 1e6
}
