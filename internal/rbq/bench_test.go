package rbq

// Contention benchmarks for the red-blue queue, motivating the realtime
// device's sharded staging: a single Michael–Scott queue serializes all
// producers on one tail CAS, so splitting submitters across independent
// queues on a shared slab should scale enqueue throughput with the
// shard count (until the slab's free stack becomes the shared point).

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkMultiQueueContention measures enqueue+dequeue pairs with all
// producer goroutines hammering one queue versus spreading across 4 or
// 16 queues built on one shared slab — the shape of the realtime
// device's staging shards.
func BenchmarkMultiQueueContention(b *testing.B) {
	for _, queues := range []int{1, 4, 16} {
		queues := queues
		b.Run(fmt.Sprintf("queues=%d", queues), func(b *testing.B) {
			s := NewSlabForQueues(1<<14, queues, 8*queues)
			qs := make([]*Queue, queues)
			for i := range qs {
				qs[i] = s.NewQueue(Blue)
			}
			var tok atomic.Uint32
			b.RunParallel(func(pb *testing.PB) {
				q := qs[tok.Add(1)%uint32(queues)]
				for pb.Next() {
					if _, ok := q.Enqueue(7); ok {
						q.Dequeue()
					}
				}
			})
		})
	}
}

// BenchmarkSharedSlabAllocRelease isolates the slab free stack — the
// one structure the shards still share — so shard-scaling regressions
// can be attributed to the right CAS loop.
func BenchmarkSharedSlabAllocRelease(b *testing.B) {
	s := NewSlab(1 << 14)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if n, ok := s.AllocNode(); ok {
				s.ReleaseNode(n)
			}
		}
	})
}
