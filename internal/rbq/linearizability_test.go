package rbq_test

// Linearizability property tests: the real red-blue queue and the
// slab's Treiber free stack driven through internal/check's seeded
// deterministic scheduler, their histories validated against the
// sequential specs. Every failure reports the seed that deterministically
// replays it.

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"memif/internal/check"
	"memif/internal/rbq"
)

// execQOp runs one queue operation and returns its QRes output.
func execQOp(q *rbq.Queue, op check.QOp) any {
	switch op.Kind {
	case check.QEnqueue:
		c, ok := q.Enqueue(op.V)
		return check.QRes{C: c, Ok: ok}
	case check.QDequeue:
		v, c, ok := q.Dequeue()
		return check.QRes{V: v, C: c, Ok: ok}
	default:
		old, ok := q.SetColor(op.C)
		return check.QRes{C: old, Ok: ok}
	}
}

// runQueueSchedule executes pre-generated per-thread op scripts under
// one seed and checks the recorded history.
func runQueueSchedule(seed int64, scripts [][]check.QOp) error {
	slab := rbq.NewSlab(64)
	q := slab.NewQueue(rbq.Blue)
	s := check.NewSched(seed)
	rbq.SetSchedHook(s.YieldHook())
	defer rbq.SetSchedHook(nil)
	hist := check.NewHistory(len(scripts))
	for i := range scripts {
		i := i
		s.Go(func(t *check.Thread) {
			for _, op := range scripts[i] {
				op := op
				hist.Record(i, op, func() any { return execQOp(q, op) })
			}
		})
	}
	if err := s.Run(); err != nil {
		return err
	}
	if r := check.CheckHistory(check.QueueModel(rbq.Blue), hist); !r.Ok {
		return errors.New(r.Info)
	}
	return nil
}

// randomScripts derives deterministic per-thread op mixes from the seed.
func randomScripts(seed int64, nThreads, opsPer int) [][]check.QOp {
	rng := rand.New(rand.NewSource(seed * 7919))
	scripts := make([][]check.QOp, nThreads)
	var next uint32
	for i := range scripts {
		for j := 0; j < opsPer; j++ {
			switch rng.Intn(5) {
			case 0, 1:
				next++
				scripts[i] = append(scripts[i], check.QOp{Kind: check.QEnqueue, V: next})
			case 2, 3:
				scripts[i] = append(scripts[i], check.QOp{Kind: check.QDequeue})
			default:
				scripts[i] = append(scripts[i], check.QOp{Kind: check.QSetColor, C: rbq.Color(rng.Intn(2))})
			}
		}
	}
	return scripts
}

func TestLinearizableMixedOps(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 30
	}
	err := check.Explore(seeds, 1, func(seed int64) error {
		return runQueueSchedule(seed, randomScripts(seed, 3, 6))
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecolorWhileEnqueue targets the protocol's central entanglement:
// SetColor's CAS on the dummy's nil link racing an enqueuer that has
// already read the old color off that same link but not yet published
// its node. Exactly one of the two CASes may win; a schedule where an
// element enters the queue under a color the recolorer believes it
// replaced would break the Section 4.4 flush protocol.
func TestRecolorWhileEnqueue(t *testing.T) {
	scripts := [][]check.QOp{
		// An enqueuer hammering the empty<->non-empty boundary.
		{
			{Kind: check.QEnqueue, V: 1},
			{Kind: check.QDequeue},
			{Kind: check.QEnqueue, V: 2},
			{Kind: check.QDequeue},
		},
		// A recolorer flipping red<->blue the whole time.
		{
			{Kind: check.QSetColor, C: rbq.Red},
			{Kind: check.QSetColor, C: rbq.Blue},
			{Kind: check.QSetColor, C: rbq.Red},
			{Kind: check.QSetColor, C: rbq.Blue},
		},
		// A second enqueuer, so recolor also races a non-empty publish.
		{
			{Kind: check.QEnqueue, V: 3},
			{Kind: check.QDequeue},
			{Kind: check.QDequeue},
		},
	}
	seeds := 250
	if testing.Short() {
		seeds = 50
	}
	err := check.Explore(seeds, 1000, func(seed int64) error {
		return runQueueSchedule(seed, scripts)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestABATagWraparound forces every tag word to the top of its 32-bit
// range and then drives concurrent operations across the wraparound:
// recycled-node CASes must still be defeated by the tag discipline when
// the tags themselves overflow to zero mid-run.
func TestABATagWraparound(t *testing.T) {
	seeds := 100
	if testing.Short() {
		seeds = 20
	}
	err := check.Explore(seeds, 5000, func(seed int64) error {
		slab := rbq.NewSlab(32)
		q := slab.NewQueue(rbq.Blue)
		// A handful of bumps away from 2^32: every successful alloc or
		// free bumps the free-head tag, so the run crosses zero almost
		// immediately.
		const startTag = ^uint32(0) - 3
		slab.ForceTagsForTest(startTag)
		q.ForceTagsForTest(startTag)

		s := check.NewSched(seed)
		rbq.SetSchedHook(s.YieldHook())
		defer rbq.SetSchedHook(nil)
		hist := check.NewHistory(2)
		scripts := randomScripts(seed, 2, 8)
		// A fixed enqueue/dequeue prefix per thread guarantees at least
		// four node allocations, enough to carry the tags past zero on
		// every seed.
		for i := range scripts {
			prefix := []check.QOp{
				{Kind: check.QEnqueue, V: uint32(900 + i)},
				{Kind: check.QDequeue},
				{Kind: check.QEnqueue, V: uint32(910 + i)},
				{Kind: check.QDequeue},
			}
			scripts[i] = append(prefix, scripts[i]...)
		}
		for i := range scripts {
			i := i
			s.Go(func(t *check.Thread) {
				for _, op := range scripts[i] {
					op := op
					hist.Record(i, op, func() any { return execQOp(q, op) })
				}
			})
		}
		if err := s.Run(); err != nil {
			return err
		}
		if r := check.CheckHistory(check.QueueModel(rbq.Blue), hist); !r.Ok {
			return errors.New(r.Info)
		}
		// The run must actually have crossed the wraparound, or the test
		// proves nothing.
		if tag := slab.TagOfFreeHeadForTest(); tag > startTag {
			return errors.New("free-head tag never wrapped")
		}
		// Node accounting survived: every node is on the free stack, in
		// the queue, or the dummy.
		if got, want := slab.FreeNodes()+q.Len()+1, slab.Capacity(); got != want {
			return errors.New("node accounting broken after wraparound")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFreeStackLinearizable records AllocNode/ReleaseNode histories and
// checks them against the sequential LIFO spec (including its
// double-free detection).
func TestFreeStackLinearizable(t *testing.T) {
	seeds := 100
	if testing.Short() {
		seeds = 20
	}
	const cap = 8
	err := check.Explore(seeds, 9000, func(seed int64) error {
		slab := rbq.NewSlab(cap)
		// NewSlab chains 1..cap with 1 on top.
		initial := make([]uint32, cap)
		for i := 0; i < cap; i++ {
			initial[i] = uint32(cap - i)
		}
		s := check.NewSched(seed)
		rbq.SetSchedHook(s.YieldHook())
		defer rbq.SetSchedHook(nil)
		hist := check.NewHistory(3)
		for i := 0; i < 3; i++ {
			i := i
			s.Go(func(t *check.Thread) {
				var held []uint32
				for j := 0; j < 6; j++ {
					if len(held) > 0 && j%2 == 1 {
						idx := held[len(held)-1]
						held = held[:len(held)-1]
						hist.Record(i, check.SOp{Push: true, Idx: idx}, func() any {
							slab.ReleaseNode(idx)
							return nil
						})
						continue
					}
					hist.Record(i, check.SOp{}, func() any {
						idx, ok := slab.AllocNode()
						if ok {
							held = append(held, idx)
						}
						return check.SRes{Idx: idx, Ok: ok}
					})
				}
				for _, idx := range held {
					idx := idx
					hist.Record(i, check.SOp{Push: true, Idx: idx}, func() any {
						slab.ReleaseNode(idx)
						return nil
					})
				}
			})
		}
		if err := s.Run(); err != nil {
			return err
		}
		if r := check.CheckHistory(check.StackModel(initial), hist); !r.Ok {
			return errors.New(r.Info)
		}
		if slab.FreeNodes() != cap {
			return errors.New("nodes leaked from the free stack")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSizeNeverNegativeDeterministic pins the Size regression under the
// deterministic scheduler, which can park a dequeuer exactly between its
// head CAS and its size decrement — the window where the raw counter
// lags. Size() must still never report a negative depth.
func TestSizeNeverNegativeDeterministic(t *testing.T) {
	err := check.Explore(100, 42, func(seed int64) error {
		slab := rbq.NewSlab(32)
		q := slab.NewQueue(rbq.Blue)
		s := check.NewSched(seed)
		rbq.SetSchedHook(s.YieldHook())
		defer rbq.SetSchedHook(nil)
		var bad atomic.Bool
		for p := 0; p < 2; p++ {
			s.Go(func(t *check.Thread) {
				for i := 0; i < 8; i++ {
					q.Enqueue(uint32(i + 1))
					if q.Size() < 0 {
						bad.Store(true)
					}
					q.Dequeue()
					if q.Size() < 0 {
						bad.Store(true)
					}
				}
			})
		}
		s.Go(func(t *check.Thread) { // dedicated sampler
			for i := 0; i < 32; i++ {
				if q.Size() < 0 {
					bad.Store(true)
				}
				t.Yield()
			}
		})
		if err := s.Run(); err != nil {
			return err
		}
		if bad.Load() {
			return errors.New("Size() went negative")
		}
		if q.Size() != q.Len() {
			return errors.New("quiescent Size() != Len()")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSizeNeverNegativeStress is the same regression under real
// preemption: producers and consumers hammer the queue while samplers
// continuously read Size.
func TestSizeNeverNegativeStress(t *testing.T) {
	slab := rbq.NewSlab(256)
	q := slab.NewQueue(rbq.Blue)
	const (
		producers = 4
		consumers = 4
		perProd   = 2000
	)
	var wg sync.WaitGroup
	var negative atomic.Bool
	stop := make(chan struct{})
	for sm := 0; sm < 2; sm++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if q.Size() < 0 {
					negative.Store(true)
				}
			}
		}()
	}
	var produced, consumed atomic.Int64
	var cwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		cwg.Add(1)
		go func(p int) {
			defer cwg.Done()
			for i := 0; i < perProd; i++ {
				for {
					if _, ok := q.Enqueue(uint32(p*perProd + i)); ok {
						produced.Add(1)
						break
					}
				}
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for consumed.Load() < producers*perProd {
				if _, _, ok := q.Dequeue(); ok {
					consumed.Add(1)
				}
			}
		}()
	}
	cwg.Wait()
	close(stop)
	wg.Wait()
	if negative.Load() {
		t.Fatal("Size() reported a negative depth under concurrency")
	}
	if q.Size() != 0 || q.Len() != 0 {
		t.Fatalf("drained queue reports Size=%d Len=%d", q.Size(), q.Len())
	}
}
