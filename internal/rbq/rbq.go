// Package rbq implements the paper's red-blue lock-free queue
// (Section 4.3): a Michael–Scott-style lock-free FIFO that additionally
// maintains a queue-wide property — the "color" — as part of every atomic
// queue operation.
//
// A vanilla lock-free queue guarantees only the atomicity of each
// enqueue/dequeue. memif also needs a queue-wide flag that records who is
// responsible for flushing the staging queue (blue: the application;
// red: the kernel), and the flag must be read/updated atomically *with*
// the queue operation, or a lock would be needed to protect the pair.
// The red-blue queue encodes the color in every link word: enqueue reads
// the color off the old tail's nil link and propagates it into the new
// tail's nil link within the same CAS-published update; set_color swaps a
// recolored nil link into an empty queue's dummy with one CAS.
//
// Layout notes. Elements are uint32 values (in memif: indices into the
// mov_req array, validated by the driver before use — Section 4.2's
// safety argument). Queue nodes live in a fixed Slab shared by all queues
// of one interface instance and are recycled through an internal Treiber
// stack; every link word carries an ABA tag that increases on every
// write. Keeping nodes separate from the payload slots lets a dequeued
// mov_req be reused immediately (the Michael–Scott dummy node otherwise
// pins the most recently dequeued slot).
//
// The structure is safe for any number of concurrent producers and
// consumers from any context, with no locks anywhere — the property
// Section 4.2 requires so interrupt handlers can post completions and a
// misbehaving application can never wedge the kernel.
package rbq

import (
	"fmt"
	"sync/atomic"
)

// schedHook, when installed, is invoked at every linearization-relevant
// step of the lock-free algorithms (loop heads, immediately before each
// CAS, and in the windows between a publishing CAS and its follow-up
// writes). The verification harness (internal/check) routes it into a
// seeded deterministic scheduler so interleavings are explored
// systematically; in production it is nil and each call site costs one
// atomic load and an untaken branch.
var schedHook atomic.Pointer[func()]

// SetSchedHook installs (or, with nil, clears) the scheduling hook.
// Install before starting the threads under test and clear after they
// join; the hook must be safe to call from any goroutine the harness
// manages.
func SetSchedHook(h func()) {
	if h == nil {
		schedHook.Store(nil)
		return
	}
	schedHook.Store(&h)
}

// schedPoint is a potential preemption point for the harness.
func schedPoint() {
	if p := schedHook.Load(); p != nil {
		(*p)()
	}
}

// Color is the queue-wide property carried by the links. memif uses two
// values, but any 8-bit property works (Section 4.3: "not limited to a
// binary color value").
type Color uint8

// The two colors of the memif staging-queue protocol.
const (
	Blue Color = 0 // the application must flush the queue
	Red  Color = 1 // the kernel worker will flush the queue
)

func (c Color) String() string {
	switch c {
	case Blue:
		return "blue"
	case Red:
		return "red"
	default:
		return fmt.Sprintf("color(%d)", uint8(c))
	}
}

// Link word packing: | tag:32 | color:8 | idx:24 |.
// Head/tail words use the same packing with color unused.
const (
	idxBits   = 24
	idxMask   = (1 << idxBits) - 1
	colorBits = 8
	colorMask = (1 << colorBits) - 1
)

// MaxNodes is the largest slab capacity (index 0 is the nil sentinel).
const MaxNodes = idxMask

func pack(idx uint32, c Color, tag uint32) uint64 {
	return uint64(idx)&idxMask | uint64(c)<<idxBits | uint64(tag)<<32
}

func unpackIdx(w uint64) uint32  { return uint32(w & idxMask) }
func unpackColor(w uint64) Color { return Color(w >> idxBits & colorMask) }
func unpackTag(w uint64) uint32  { return uint32(w >> 32) }

// bump returns w's tag + 1, for the every-write-increments-the-tag
// discipline that defeats ABA across node recycling.
func bump(w uint64) uint32 { return unpackTag(w) + 1 }

// node is one queue node: a next link (with color and tag) and the
// payload value. The next field doubles as the free-stack link while the
// node is unallocated.
type node struct {
	next  atomic.Uint64
	value atomic.Uint32
}

// Slab is a fixed pool of queue nodes shared by any number of queues.
// One memif instance allocates a single slab inside the user/kernel
// shared pages and builds its staging, submission, completion and free
// queues on it.
type Slab struct {
	nodes    []node
	freeHead atomic.Uint64 // packed {idx, tag} Treiber stack head
}

// NewSlab returns a slab with room for capacity live elements plus the
// per-queue dummies the caller will create. Each queue consumes one node
// permanently (its dummy) and each enqueued element one node while
// queued.
func NewSlab(capacity int) *Slab {
	if capacity < 1 || capacity > MaxNodes-1 {
		panic(fmt.Sprintf("rbq: slab capacity %d out of range", capacity))
	}
	s := &Slab{nodes: make([]node, capacity+1)} // index 0 is nil
	// Chain 1..capacity into the free stack.
	for i := 1; i <= capacity; i++ {
		nextIdx := uint32(i + 1)
		if i == capacity {
			nextIdx = 0
		}
		s.nodes[i].next.Store(pack(nextIdx, 0, 1))
	}
	s.freeHead.Store(pack(1, 0, 1))
	return s
}

// Capacity returns the number of allocatable nodes.
func (s *Slab) Capacity() int { return len(s.nodes) - 1 }

// NewSlabForQueues sizes a slab for a device that builds numQueues
// queues over at most live simultaneously queued elements. Each queue
// permanently consumes one node as its dummy, and slack spare nodes
// absorb the transient over-allocation windows where a dequeuing
// consumer has not yet recycled the old dummy while a producer is
// already allocating. Sharded devices (many staging queues on one slab)
// should scale slack with the queue count, since every queue can be in
// such a window at once.
func NewSlabForQueues(live, numQueues, slack int) *Slab {
	if numQueues < 1 {
		numQueues = 1
	}
	if slack < 0 {
		slack = 0
	}
	return NewSlab(live + numQueues + slack)
}

// allocNode pops a node off the free stack. ok is false when the slab is
// exhausted.
func (s *Slab) allocNode() (uint32, bool) {
	for {
		schedPoint()
		head := s.freeHead.Load()
		idx := unpackIdx(head)
		if idx == 0 {
			return 0, false
		}
		next := s.nodes[idx].next.Load()
		schedPoint()
		if s.freeHead.CompareAndSwap(head, pack(unpackIdx(next), 0, bump(head))) {
			return idx, true
		}
	}
}

// AllocNode exposes the slab's internal Treiber free stack to the
// verification harness (internal/check records alloc/release histories
// and checks them against a sequential LIFO spec). Production callers
// go through Queue, which allocates internally.
func (s *Slab) AllocNode() (uint32, bool) { return s.allocNode() }

// ReleaseNode is AllocNode's inverse, for the verification harness.
// Releasing a node that is linked into a queue corrupts the slab.
func (s *Slab) ReleaseNode(idx uint32) { s.freeNode(idx) }

// freeNode pushes a node back on the free stack.
func (s *Slab) freeNode(idx uint32) {
	n := &s.nodes[idx]
	for {
		schedPoint()
		head := s.freeHead.Load()
		old := n.next.Load()
		n.next.Store(pack(unpackIdx(head), 0, bump(old)))
		schedPoint()
		if s.freeHead.CompareAndSwap(head, pack(idx, 0, bump(head))) {
			return
		}
	}
}

// FreeNodes counts the nodes currently on the free stack. Quiescent use
// only (tests, diagnostics).
func (s *Slab) FreeNodes() int {
	n := 0
	idx := unpackIdx(s.freeHead.Load())
	for idx != 0 {
		n++
		idx = unpackIdx(s.nodes[idx].next.Load())
	}
	return n
}

// Queue is a red-blue lock-free FIFO on a slab. Create with Slab.NewQueue.
//
// head, tail, and size each sit on their own cache line: dequeuers CAS
// head, enqueuers CAS tail, and both sides RMW size, so co-locating any
// two would bounce one line between the producer and consumer
// populations on every operation (classic false sharing on the
// Michael–Scott hot words).
type Queue struct {
	slab *Slab
	_    [64]byte
	head atomic.Uint64 // packed {idx, _, tag}: the dummy node
	_    [64]byte
	tail atomic.Uint64
	_    [64]byte
	size atomic.Int64 // maintained by Enqueue/Dequeue; see Size
	_    [64]byte
}

// NewQueue creates an empty queue with the given initial color,
// permanently consuming one slab node as its dummy.
func (s *Slab) NewQueue(initial Color) *Queue {
	d, ok := s.allocNode()
	if !ok {
		panic("rbq: slab exhausted creating queue dummy")
	}
	old := s.nodes[d].next.Load()
	s.nodes[d].next.Store(pack(0, initial, bump(old)))
	q := &Queue{slab: s}
	q.head.Store(pack(d, 0, 1))
	q.tail.Store(pack(d, 0, 1))
	return q
}

// Enqueue appends v and returns the queue color observed atomically with
// the append (the color the value was enqueued under). ok is false only
// if the slab is out of nodes — a sizing bug in the caller.
func (q *Queue) Enqueue(v uint32) (Color, bool) {
	s := q.slab
	n, ok := s.allocNode()
	if !ok {
		return 0, false
	}
	s.nodes[n].value.Store(v)
	for {
		schedPoint()
		tail := q.tail.Load()
		tn := &s.nodes[unpackIdx(tail)]
		next := tn.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if unpackIdx(next) != 0 {
			// Tail is lagging: help it forward and retry.
			q.tail.CompareAndSwap(tail, pack(unpackIdx(next), 0, bump(tail)))
			continue
		}
		c := unpackColor(next)
		// Propagate the color into the new tail's nil link before
		// publication (the node is still private).
		old := s.nodes[n].next.Load()
		s.nodes[n].next.Store(pack(0, c, bump(old)))
		schedPoint()
		if tn.next.CompareAndSwap(next, pack(n, c, bump(next))) {
			schedPoint()
			q.tail.CompareAndSwap(tail, pack(n, 0, bump(tail)))
			schedPoint()
			q.size.Add(1)
			return c, true
		}
	}
}

// Dequeue removes and returns the oldest value, along with the color
// observed on the dequeued element's link. ok is false when the queue is
// empty (the returned Color is then the current queue color).
func (q *Queue) Dequeue() (v uint32, c Color, ok bool) {
	s := q.slab
	for {
		schedPoint()
		head := q.head.Load()
		tail := q.tail.Load()
		hn := &s.nodes[unpackIdx(head)]
		next := hn.next.Load()
		if head != q.head.Load() {
			continue
		}
		if unpackIdx(next) == 0 {
			return 0, unpackColor(next), false
		}
		if unpackIdx(head) == unpackIdx(tail) {
			// Tail lagging behind a completed enqueue: help it.
			q.tail.CompareAndSwap(tail, pack(unpackIdx(next), 0, bump(tail)))
			continue
		}
		nn := &s.nodes[unpackIdx(next)]
		val := nn.value.Load()
		col := unpackColor(nn.next.Load())
		schedPoint()
		if q.head.CompareAndSwap(head, pack(unpackIdx(next), 0, bump(head))) {
			schedPoint()
			q.size.Add(-1)
			s.freeNode(unpackIdx(head))
			return val, col, true
		}
	}
}

// SetColor recolors the queue. As the protocol requires (Section 4.3),
// it succeeds only on an empty queue; ok is false and the queue is
// unchanged if the queue holds elements. On success the previous color is
// returned.
func (q *Queue) SetColor(newColor Color) (old Color, ok bool) {
	s := q.slab
	for {
		schedPoint()
		head := q.head.Load()
		hn := &s.nodes[unpackIdx(head)]
		next := hn.next.Load()
		if head != q.head.Load() {
			continue
		}
		if unpackIdx(next) != 0 {
			return 0, false // not empty
		}
		c := unpackColor(next)
		if c == newColor {
			return c, true
		}
		schedPoint()
		if hn.next.CompareAndSwap(next, pack(0, newColor, bump(next))) {
			return c, true
		}
	}
}

// Color returns the queue's current color: the color on the tail's nil
// link (equivalently, on an empty queue, the dummy's nil link). The
// value is a racy snapshot; the atomically-coupled reads are the ones
// Enqueue/Dequeue/SetColor return.
func (q *Queue) Color() Color {
	s := q.slab
	for {
		tail := q.tail.Load()
		next := s.nodes[unpackIdx(tail)].next.Load()
		if unpackIdx(next) == 0 {
			return unpackColor(next)
		}
		// Tail lagging; follow the link.
		q.tail.CompareAndSwap(tail, pack(unpackIdx(next), 0, bump(tail)))
	}
}

// Empty reports whether the queue currently has no elements (racy
// snapshot).
func (q *Queue) Empty() bool {
	head := q.head.Load()
	return unpackIdx(q.slab.nodes[unpackIdx(head)].next.Load()) == 0
}

// Size returns the element count from an atomically maintained counter,
// safe to read from any goroutine with no data race (unlike Len's
// pointer walk). The counter is updated after the queue CAS publishes,
// so a reader can transiently observe a count off by the operations in
// flight (including a small negative value, clamped to 0 here) — exactly
// the fidelity queue-depth watermarks need, at zero per-op cost.
func (q *Queue) Size() int {
	n := q.size.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}

// Len walks the queue and counts elements. Quiescent use only — under
// concurrent mutation the walk may miscount.
func (q *Queue) Len() int {
	s := q.slab
	n := 0
	idx := unpackIdx(s.nodes[unpackIdx(q.head.Load())].next.Load())
	for idx != 0 && n <= s.Capacity() {
		n++
		idx = unpackIdx(s.nodes[idx].next.Load())
	}
	return n
}

// Snapshot walks the queue and returns its values in FIFO order.
// Quiescent use only (tests, audits) — under concurrent mutation the
// walk may duplicate or miss elements.
func (q *Queue) Snapshot() []uint32 {
	s := q.slab
	var out []uint32
	idx := unpackIdx(s.nodes[unpackIdx(q.head.Load())].next.Load())
	for idx != 0 && len(out) <= s.Capacity() {
		out = append(out, s.nodes[idx].value.Load())
		idx = unpackIdx(s.nodes[idx].next.Load())
	}
	return out
}

// Drain repeatedly dequeues into fn until the queue is empty. Returns the
// number of elements drained. Concurrent enqueues may keep it going; the
// caller's protocol (the red-blue color) bounds that.
func (q *Queue) Drain(fn func(v uint32)) int {
	n := 0
	for {
		v, _, ok := q.Dequeue()
		if !ok {
			return n
		}
		fn(v)
		n++
	}
}
