package rbq

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPacking(t *testing.T) {
	prop := func(idx uint32, c uint8, tag uint32) bool {
		idx &= idxMask
		w := pack(idx, Color(c), tag)
		return unpackIdx(w) == idx && unpackColor(w) == Color(c) && unpackTag(w) == tag
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFIFOOrder(t *testing.T) {
	s := NewSlab(64)
	q := s.NewQueue(Blue)
	for i := uint32(1); i <= 10; i++ {
		if _, ok := q.Enqueue(i); !ok {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if q.Len() != 10 {
		t.Errorf("Len = %d, want 10", q.Len())
	}
	for i := uint32(1); i <= 10; i++ {
		v, _, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue = %d,%v; want %d,true", v, ok, i)
		}
	}
	if _, _, ok := q.Dequeue(); ok {
		t.Error("dequeue on empty queue succeeded")
	}
	if !q.Empty() {
		t.Error("Empty() = false on drained queue")
	}
}

func TestColorPropagation(t *testing.T) {
	s := NewSlab(64)
	q := s.NewQueue(Blue)
	if c := q.Color(); c != Blue {
		t.Fatalf("initial color = %v", c)
	}
	// Every enqueue observes the color and propagates it.
	for i := 0; i < 5; i++ {
		c, _ := q.Enqueue(uint32(i + 1))
		if c != Blue {
			t.Errorf("enqueue %d saw %v, want blue", i, c)
		}
	}
	if c := q.Color(); c != Blue {
		t.Errorf("color after enqueues = %v", c)
	}
	// Dequeues observe the element-link color.
	for i := 0; i < 5; i++ {
		_, c, _ := q.Dequeue()
		if c != Blue {
			t.Errorf("dequeue %d saw %v", i, c)
		}
	}
	// Recolor the (now empty) queue; subsequent ops see red.
	if old, ok := q.SetColor(Red); !ok || old != Blue {
		t.Fatalf("SetColor = %v,%v", old, ok)
	}
	if c, _ := q.Enqueue(42); c != Red {
		t.Errorf("enqueue after recolor saw %v, want red", c)
	}
	if c := q.Color(); c != Red {
		t.Errorf("Color() = %v, want red", c)
	}
}

func TestSetColorFailsOnNonEmpty(t *testing.T) {
	s := NewSlab(64)
	q := s.NewQueue(Blue)
	q.Enqueue(1)
	if _, ok := q.SetColor(Red); ok {
		t.Error("SetColor succeeded on non-empty queue")
	}
	if c := q.Color(); c != Blue {
		t.Errorf("failed SetColor changed color to %v", c)
	}
	q.Dequeue()
	if _, ok := q.SetColor(Red); !ok {
		t.Error("SetColor failed on empty queue")
	}
}

func TestSetColorIdempotent(t *testing.T) {
	s := NewSlab(8)
	q := s.NewQueue(Red)
	old, ok := q.SetColor(Red)
	if !ok || old != Red {
		t.Errorf("SetColor(same) = %v,%v", old, ok)
	}
}

func TestEmptyDequeueReturnsCurrentColor(t *testing.T) {
	s := NewSlab(8)
	q := s.NewQueue(Red)
	if _, c, ok := q.Dequeue(); ok || c != Red {
		t.Errorf("empty dequeue = color %v, ok %v", c, ok)
	}
}

func TestSlabExhaustion(t *testing.T) {
	s := NewSlab(4)
	q := s.NewQueue(Blue) // dummy eats one node
	var n int
	for i := uint32(1); ; i++ {
		if _, ok := q.Enqueue(i); !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Errorf("enqueued %d before exhaustion, want 3", n)
	}
	// Dequeue frees a node; enqueue works again.
	q.Dequeue()
	if _, ok := q.Enqueue(99); !ok {
		t.Error("enqueue after dequeue failed")
	}
}

func TestNodeAccountingQuiescent(t *testing.T) {
	s := NewSlab(32)
	q := s.NewQueue(Blue)
	base := s.FreeNodes()
	for i := uint32(1); i <= 10; i++ {
		q.Enqueue(i)
	}
	if got := s.FreeNodes(); got != base-10 {
		t.Errorf("free nodes = %d, want %d", got, base-10)
	}
	q.Drain(func(uint32) {})
	if got := s.FreeNodes(); got != base {
		t.Errorf("free nodes after drain = %d, want %d", got, base)
	}
}

func TestMultipleQueuesShareSlab(t *testing.T) {
	s := NewSlab(64)
	a := s.NewQueue(Blue)
	b := s.NewQueue(Red)
	a.Enqueue(1)
	b.Enqueue(2)
	if v, _, _ := a.Dequeue(); v != 1 {
		t.Error("queue a corrupted")
	}
	if v, _, _ := b.Dequeue(); v != 2 {
		t.Error("queue b corrupted")
	}
	if a.Color() != Blue || b.Color() != Red {
		t.Error("queues share color state")
	}
}

func TestBadSlabCapacityPanics(t *testing.T) {
	for _, c := range []int{0, -1, MaxNodes} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSlab(%d) did not panic", c)
				}
			}()
			NewSlab(c)
		}()
	}
}

func TestDrainCount(t *testing.T) {
	s := NewSlab(16)
	q := s.NewQueue(Blue)
	for i := uint32(1); i <= 7; i++ {
		q.Enqueue(i)
	}
	var sum uint32
	if n := q.Drain(func(v uint32) { sum += v }); n != 7 {
		t.Errorf("Drain = %d, want 7", n)
	}
	if sum != 28 {
		t.Errorf("sum = %d, want 28", sum)
	}
}

// --- Concurrency stress (run with -race) ---

// Multiset preservation: everything enqueued by concurrent producers is
// dequeued exactly once by concurrent consumers.
func TestConcurrentMultiset(t *testing.T) {
	const producers, perProducer, consumers = 8, 2000, 8
	s := NewSlab(producers*perProducer + 8)
	q := s.NewQueue(Blue)

	seen := make([]atomic.Int32, producers*perProducer+1)
	var wg sync.WaitGroup
	var done atomic.Bool

	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, _, ok := q.Dequeue()
				if ok {
					seen[v].Add(1)
					continue
				}
				if done.Load() {
					// Final sweep after producers finish.
					for {
						v, _, ok := q.Dequeue()
						if !ok {
							return
						}
						seen[v].Add(1)
					}
				}
			}
		}()
	}
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProducer; i++ {
				v := uint32(p*perProducer + i + 1)
				if _, ok := q.Enqueue(v); !ok {
					t.Errorf("enqueue %d failed (slab exhausted)", v)
					return
				}
			}
		}(p)
	}
	pwg.Wait()
	done.Store(true)
	wg.Wait()

	for v := 1; v <= producers*perProducer; v++ {
		if n := seen[v].Load(); n != 1 {
			t.Fatalf("value %d dequeued %d times", v, n)
		}
	}
}

// Per-producer FIFO: values from one producer come out in order.
func TestConcurrentPerProducerOrder(t *testing.T) {
	const producers, perProducer = 4, 3000
	s := NewSlab(producers*perProducer + 8)
	q := s.NewQueue(Blue)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				// Encode producer in high bits, sequence in low.
				q.Enqueue(uint32(p)<<16 | uint32(i))
			}
		}(p)
	}
	wg.Wait()
	last := make([]int, producers)
	for i := range last {
		last[i] = -1
	}
	for {
		v, _, ok := q.Dequeue()
		if !ok {
			break
		}
		p, seq := int(v>>16), int(v&0xffff)
		if seq <= last[p] {
			t.Fatalf("producer %d: seq %d after %d", p, seq, last[p])
		}
		last[p] = seq
	}
	for p, l := range last {
		if l != perProducer-1 {
			t.Errorf("producer %d: last seq %d, want %d", p, l, perProducer-1)
		}
	}
}

// The SubmitRequest protocol (Section 4.4): concurrent submitters enqueue
// into a blue staging queue; whoever's enqueue observed blue flushes and
// recolors red; exactly the threads that turn the color from blue to red
// "issue the ioctl". The invariant: every submitted value ends up flushed
// to the submission queue, and while the queue is red nobody double-
// flushes concurrently with the would-be kernel.
func TestSubmitProtocol(t *testing.T) {
	const threads, perThread = 8, 1000
	s := NewSlab(2*threads*perThread + 16)
	staging := s.NewQueue(Blue)
	submission := s.NewQueue(Blue)

	var ioctls atomic.Int32
	var flushed atomic.Int32
	var wg sync.WaitGroup
	submit := func(v uint32) {
		c, ok := staging.Enqueue(v)
		if !ok {
			t.Error("staging enqueue failed")
			return
		}
		if c != Blue {
			return // red: the "kernel" (some other flusher) owns it
		}
	flush:
		for {
			v, _, ok := staging.Dequeue()
			if !ok {
				break
			}
			submission.Enqueue(v)
			flushed.Add(1)
		}
		old, ok := staging.SetColor(Red)
		if !ok {
			goto flush // queue refilled under us
		}
		if old == Red {
			return // someone else already took responsibility
		}
		ioctls.Add(1)
		// Simulate the kernel: drain whatever accumulated while red,
		// then recolor blue. (In memif the kernel thread does this.)
		for {
			v, _, ok := staging.Dequeue()
			if ok {
				submission.Enqueue(v)
				flushed.Add(1)
				continue
			}
			if _, ok := staging.SetColor(Blue); ok {
				return
			}
		}
	}
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				submit(uint32(th*perThread + i + 1))
			}
		}(th)
	}
	wg.Wait()

	if got := int(flushed.Load()); got != threads*perThread {
		t.Errorf("flushed %d values, want %d", got, threads*perThread)
	}
	if submission.Len() != threads*perThread {
		t.Errorf("submission holds %d, want %d", submission.Len(), threads*perThread)
	}
	if n := int(ioctls.Load()); n < 1 || n > threads*perThread {
		t.Errorf("ioctls = %d out of plausible range", n)
	}
	seen := make(map[uint32]bool)
	submission.Drain(func(v uint32) {
		if seen[v] {
			t.Errorf("value %d flushed twice", v)
		}
		seen[v] = true
	})
	if staging.Len() != 0 {
		t.Errorf("staging not drained: %d left", staging.Len())
	}
}

// Concurrent SetColor vs Enqueue: a successful SetColor must never be
// observed alongside an element enqueued under the old color remaining
// unflushed. We test the weaker structural invariant the algorithm
// guarantees: SetColor only ever succeeds when the queue is empty at the
// linearization point, so after a successful recolor an immediately
// following dequeue by the same thread can only return elements enqueued
// *after* (which observed the new color).
func TestSetColorLinearization(t *testing.T) {
	const iters = 2000
	s := NewSlab(64)
	q := s.NewQueue(Blue)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // churn
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if c, ok := q.Enqueue(1); ok {
				// Whoever enqueues under blue must drain (protocol).
				if c == Blue {
					q.Drain(func(uint32) {})
				}
			}
			q.Dequeue()
		}
	}()
	for i := 0; i < iters; i++ {
		if old, ok := q.SetColor(Red); ok {
			_ = old
			// Queue was empty at the recolor instant. Put it back.
			for {
				if _, ok := q.SetColor(Blue); ok {
					break
				}
				q.Drain(func(uint32) {})
			}
		}
	}
	close(stop)
	wg.Wait()
}

// Property: random sequential op mix keeps queue contents consistent
// with a model deque.
func TestQuickSequentialModel(t *testing.T) {
	prop := func(ops []uint8) bool {
		s := NewSlab(256)
		q := s.NewQueue(Blue)
		var model []uint32
		color := Blue
		next := uint32(1)
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // enqueue
				c, ok := q.Enqueue(next)
				if !ok || c != color {
					return false
				}
				model = append(model, next)
				next++
			case 2: // dequeue
				v, _, ok := q.Dequeue()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != model[0] {
						return false
					}
					model = model[1:]
				}
			case 3: // recolor
				want := Color(op % 2)
				old, ok := q.SetColor(want)
				if len(model) == 0 {
					if !ok || old != color {
						return false
					}
					color = want
				} else if ok {
					return false
				}
			}
		}
		return q.Len() == len(model)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSizeTracksElements(t *testing.T) {
	s := NewSlab(32)
	q := s.NewQueue(Blue)
	if q.Size() != 0 {
		t.Fatalf("empty Size = %d", q.Size())
	}
	for i := uint32(0); i < 10; i++ {
		q.Enqueue(i)
	}
	if q.Size() != 10 {
		t.Errorf("Size after 10 enqueues = %d", q.Size())
	}
	for i := 0; i < 4; i++ {
		q.Dequeue()
	}
	if q.Size() != 6 {
		t.Errorf("Size after 4 dequeues = %d", q.Size())
	}
	if q.Size() != q.Len() {
		t.Errorf("Size = %d, Len = %d", q.Size(), q.Len())
	}
}

func TestSizeConcurrentNoRace(t *testing.T) {
	s := NewSlab(1024)
	q := s.NewQueue(Blue)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// A watermark reader races producers/consumers; run under -race.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if q.Size() < 0 {
					t.Error("Size went negative past the clamp")
					return
				}
			}
		}
	}()
	var pwg sync.WaitGroup
	for g := 0; g < 4; g++ {
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for i := uint32(0); i < 500; i++ {
				q.Enqueue(i)
				q.Dequeue()
			}
		}()
	}
	pwg.Wait()
	close(stop)
	wg.Wait()
	if q.Size() != q.Len() {
		t.Errorf("quiescent Size = %d, Len = %d", q.Size(), q.Len())
	}
}
