package rbq

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Section 4.3 closes by noting the design "maintains a queue-wide
// property (not limited to a binary color value) as part of the atomic
// queue operations". Exercise an 8-valued property: a round-robin token
// advanced only on an empty queue, with concurrent producers observing
// a consistent value on every enqueue.
func TestMultiValuedProperty(t *testing.T) {
	s := NewSlab(128)
	q := s.NewQueue(Color(0))
	for want := Color(0); want < 8; want++ {
		if c := q.Color(); c != want {
			t.Fatalf("color = %v, want %d", c, want)
		}
		// Ops under this color observe it.
		if c, _ := q.Enqueue(uint32(want)); c != want {
			t.Fatalf("enqueue saw %v under %d", c, want)
		}
		if _, ok := q.SetColor(want + 1); ok {
			t.Fatal("recolored a non-empty queue")
		}
		if v, c, _ := q.Dequeue(); v != uint32(want) || c != want {
			t.Fatalf("dequeue = %d,%v", v, c)
		}
		if old, ok := q.SetColor(want + 1); !ok || old != want {
			t.Fatalf("SetColor -> %v,%v", old, ok)
		}
	}
}

// Single-owner property torture: one thread is the only recolorer,
// cycling the property 0,1,2,... whenever the queue happens to be empty;
// many other threads enqueue and dequeue concurrently. Two invariants
// prove the property is maintained atomically with the queue operations:
// the owner's every successful SetColor returns exactly the value it set
// last (nobody can corrupt it), and every color observed by an enqueue
// is one the owner had already set (never a torn or future value).
func TestSingleOwnerPropertyCycle(t *testing.T) {
	const states = 7
	s := NewSlab(1 << 12)
	q := s.NewQueue(0)

	var maxSet atomic.Uint32
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 5; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c, ok := q.Enqueue(1)
				if !ok {
					continue
				}
				if uint32(c) > maxSet.Load() {
					t.Errorf("enqueue observed color %d before the owner set it (max %d)", c, maxSet.Load())
					return
				}
				q.Dequeue()
			}
		}()
	}
	last := Color(0)
	for i := 0; i < 5000; i++ {
		next := Color((int(last) + 1) % states)
		// Announce before publishing, so a concurrent observer of the
		// new color never races the bookkeeping.
		if uint32(next) > maxSet.Load() {
			maxSet.Store(uint32(next))
		}
		if next == 0 {
			maxSet.Store(states) // wrapped: all states now legal
		}
		old, ok := q.SetColor(next)
		if !ok {
			continue // queue non-empty right now
		}
		if old != last {
			t.Fatalf("owner set %d last but SetColor returned %d", last, old)
		}
		last = next
	}
	close(stop)
	wg.Wait()
}
