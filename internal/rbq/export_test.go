package rbq

// Test-only access to the packed words, so the linearizability tests can
// drive the 32-bit ABA tags through wraparound (a state a natural run
// would need 2^32 writes per word to reach). Quiescent use only.

// ForceTagsForTest rewrites the tag of every node link and of the
// free-stack head to tag, preserving indices and colors.
func (s *Slab) ForceTagsForTest(tag uint32) {
	for i := range s.nodes {
		w := s.nodes[i].next.Load()
		s.nodes[i].next.Store(pack(unpackIdx(w), unpackColor(w), tag))
	}
	h := s.freeHead.Load()
	s.freeHead.Store(pack(unpackIdx(h), 0, tag))
}

// ForceTagsForTest rewrites the queue's head and tail word tags.
func (q *Queue) ForceTagsForTest(tag uint32) {
	h := q.head.Load()
	q.head.Store(pack(unpackIdx(h), 0, tag))
	t := q.tail.Load()
	q.tail.Store(pack(unpackIdx(t), 0, tag))
}

// TagOfFreeHeadForTest returns the free-stack head's current tag, so the
// wraparound test can assert the tags actually crossed zero.
func (s *Slab) TagOfFreeHeadForTest() uint32 { return unpackTag(s.freeHead.Load()) }
