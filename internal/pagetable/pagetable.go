// Package pagetable implements a 4-level radix page table with atomically
// updatable PTEs, plus the gang page lookup of Section 5.1: one vertical
// descent from the root for the first page of a region, then horizontal
// walks across adjacent PTEs for the rest.
//
// PTEs are real 64-bit words updated with compare-and-swap, so the
// paper's lightweight race detection (Section 5.2) — install a semi-final
// PTE with the young bit set, later CAS in the final PTE and fail if any
// reference cleared the bit — runs on the actual mechanism rather than a
// stand-in.
package pagetable

import (
	"fmt"
	"sync/atomic"

	"memif/internal/phys"
)

// PTE is a packed page table entry: flag bits in the low byte, the frame
// ID above them.
type PTE uint64

// PTE flag bits.
const (
	FlagPresent   PTE = 1 << 0 // entry maps a frame
	FlagWrite     PTE = 1 << 1 // writable
	FlagYoung     PTE = 1 << 2 // semi-final marker (Section 5.2)
	FlagDirty     PTE = 1 << 3 // written since mapping
	FlagMigration PTE = 1 << 4 // baseline migration PTE: accessors block
	FlagRecover   PTE = 1 << 5 // proceed-and-recover trap PTE (Section 5.2 alt.)

	flagMask   PTE = (1 << 8) - 1
	frameShift     = 8
)

// Make packs a frame ID and flags into a PTE.
func Make(f phys.FrameID, flags PTE) PTE {
	return PTE(f)<<frameShift | (flags & flagMask)
}

// Frame extracts the frame ID.
func (p PTE) Frame() phys.FrameID { return phys.FrameID(p >> frameShift) }

// Flags extracts the flag bits.
func (p PTE) Flags() PTE { return p & flagMask }

// Has reports whether all given flag bits are set.
func (p PTE) Has(f PTE) bool { return p&f == f }

// With returns p with the given flags set.
func (p PTE) With(f PTE) PTE { return p | (f & flagMask) }

// Without returns p with the given flags cleared.
func (p PTE) Without(f PTE) PTE { return p &^ (f & flagMask) }

func (p PTE) String() string {
	s := fmt.Sprintf("pte(frame%d", p.Frame())
	for _, fl := range []struct {
		bit  PTE
		name string
	}{
		{FlagPresent, "P"}, {FlagWrite, "W"}, {FlagYoung, "Y"},
		{FlagDirty, "D"}, {FlagMigration, "M"}, {FlagRecover, "R"},
	} {
		if p.Has(fl.bit) {
			s += "," + fl.name
		}
	}
	return s + ")"
}

// Slot is one PTE slot in a leaf table. All updates go through atomic
// operations, mirroring how the kernel and hardware race on real PTEs.
type Slot struct {
	v atomic.Uint64
}

// Load returns the current PTE.
func (s *Slot) Load() PTE { return PTE(s.v.Load()) }

// Store writes the PTE unconditionally.
func (s *Slot) Store(p PTE) { s.v.Store(uint64(p)) }

// CompareAndSwap installs want if the slot still holds old. This is the
// single instruction the memif Release step rides on.
func (s *Slot) CompareAndSwap(old, want PTE) bool {
	return s.v.CompareAndSwap(uint64(old), uint64(want))
}

// Radix geometry: 9 bits per level, 4 levels, covering 36 bits of virtual
// page numbers (48-bit addresses at 4 KB pages).
const (
	levelBits  = 9
	levelSize  = 1 << levelBits
	levelMask  = levelSize - 1
	numLevels  = 4
	maxVPNBits = levelBits * numLevels
)

// MaxVPN is the highest representable virtual page number.
const MaxVPN = (uint64(1) << maxVPNBits) - 1

type inner struct {
	children [levelSize]*node
}

type node struct {
	inner *inner // non-nil on levels 0..2
	leaf  []Slot // non-nil on level 3
}

// WalkStats counts the page-table work done by a lookup, so callers can
// charge the corresponding virtual-time costs (vertical descents are ~10x
// the price of a horizontal step on the A15).
type WalkStats struct {
	Verticals   int // full root-to-leaf descents
	Horizontals int // adjacent-PTE steps within a leaf
}

// Add accumulates other into s.
func (s *WalkStats) Add(other WalkStats) {
	s.Verticals += other.Verticals
	s.Horizontals += other.Horizontals
}

// Table is a 4-level page table indexed by virtual page number.
type Table struct {
	root   *inner
	leaves int // allocated leaf tables
}

// New returns an empty table.
func New() *Table { return &Table{root: &inner{}} }

// Leaves reports the number of leaf tables allocated (memory footprint
// diagnostics).
func (t *Table) Leaves() int { return t.leaves }

func index(vpn uint64, level int) int {
	shift := uint(levelBits * (numLevels - 1 - level))
	return int(vpn>>shift) & levelMask
}

// leafFor descends to the leaf table covering vpn, optionally creating
// intermediate levels.
func (t *Table) leafFor(vpn uint64, create bool) []Slot {
	if vpn > MaxVPN {
		panic(fmt.Sprintf("pagetable: vpn %#x out of range", vpn))
	}
	cur := t.root
	for level := 0; level < numLevels-1; level++ {
		idx := index(vpn, level)
		child := cur.children[idx]
		if child == nil {
			if !create {
				return nil
			}
			child = &node{}
			if level == numLevels-2 {
				child.leaf = make([]Slot, levelSize)
				t.leaves++
			} else {
				child.inner = &inner{}
			}
			cur.children[idx] = child
		}
		if child.leaf != nil {
			return child.leaf
		}
		cur = child.inner
	}
	return nil
}

// Ensure returns the slot for vpn, creating table levels as needed, and
// counts one vertical descent.
func (t *Table) Ensure(vpn uint64) (*Slot, WalkStats) {
	leaf := t.leafFor(vpn, true)
	return &leaf[vpn&levelMask], WalkStats{Verticals: 1}
}

// Lookup returns the slot for vpn if the covering leaf exists, counting
// one vertical descent. The slot may still hold a non-present PTE.
func (t *Table) Lookup(vpn uint64) (*Slot, WalkStats) {
	leaf := t.leafFor(vpn, false)
	if leaf == nil {
		return nil, WalkStats{Verticals: 1}
	}
	return &leaf[vpn&levelMask], WalkStats{Verticals: 1}
}

// GangLookup resolves n consecutive VPNs starting at vpn with the
// Section 5.1 optimization: descend vertically once, then walk adjacent
// PTEs horizontally, re-descending only when the walk crosses a leaf-table
// boundary. Missing leaves yield nil slots (holes) and still cost the
// descent that discovered them.
func (t *Table) GangLookup(vpn uint64, n int) ([]*Slot, WalkStats) {
	slots := make([]*Slot, n)
	var st WalkStats
	var leaf []Slot
	for i := 0; i < n; i++ {
		v := vpn + uint64(i)
		if leaf == nil || v&levelMask == 0 && i > 0 || i == 0 {
			// First page, or crossed into a new leaf table.
			leaf = t.leafFor(v, false)
			st.Verticals++
		} else {
			st.Horizontals++
		}
		if leaf != nil {
			slots[i] = &leaf[v&levelMask]
		}
	}
	return slots, st
}
