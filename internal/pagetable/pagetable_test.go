package pagetable

import (
	"testing"
	"testing/quick"

	"memif/internal/phys"
)

func TestPTEPacking(t *testing.T) {
	p := Make(phys.FrameID(12345), FlagPresent|FlagWrite|FlagYoung)
	if p.Frame() != 12345 {
		t.Errorf("Frame = %d, want 12345", p.Frame())
	}
	if !p.Has(FlagPresent) || !p.Has(FlagWrite) || !p.Has(FlagYoung) {
		t.Errorf("flags lost: %v", p)
	}
	if p.Has(FlagDirty) || p.Has(FlagMigration) {
		t.Errorf("phantom flags: %v", p)
	}
	q := p.Without(FlagYoung)
	if q.Has(FlagYoung) || q.Frame() != 12345 {
		t.Errorf("Without broke PTE: %v", q)
	}
	r := q.With(FlagDirty)
	if !r.Has(FlagDirty) || r.Frame() != 12345 {
		t.Errorf("With broke PTE: %v", r)
	}
}

func TestPTEPackingRoundTrip(t *testing.T) {
	prop := func(frame uint32, flags uint8) bool {
		f := phys.FrameID(frame)
		fl := PTE(flags) & flagMask
		p := Make(f, fl)
		return p.Frame() == f && p.Flags() == fl
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSlotCAS(t *testing.T) {
	var s Slot
	old := Make(1, FlagPresent|FlagYoung)
	s.Store(old)
	final := old.Without(FlagYoung)
	if !s.CompareAndSwap(old, final) {
		t.Fatal("CAS on unchanged slot failed")
	}
	if s.Load() != final {
		t.Errorf("slot = %v, want %v", s.Load(), final)
	}
	// A second CAS with the stale value must fail: this is exactly how
	// memif detects a racing access (Section 5.2).
	if s.CompareAndSwap(old, final) {
		t.Error("CAS with stale old value succeeded")
	}
}

func TestEnsureAndLookup(t *testing.T) {
	tbl := New()
	if slot, _ := tbl.Lookup(42); slot != nil {
		t.Error("Lookup on empty table returned a slot")
	}
	slot, st := tbl.Ensure(42)
	if slot == nil || st.Verticals != 1 {
		t.Fatalf("Ensure: slot=%v stats=%+v", slot, st)
	}
	slot.Store(Make(7, FlagPresent))
	got, _ := tbl.Lookup(42)
	if got != slot {
		t.Error("Lookup returned a different slot than Ensure")
	}
	if got.Load().Frame() != 7 {
		t.Errorf("frame = %d, want 7", got.Load().Frame())
	}
}

func TestDistinctVPNsDistinctSlots(t *testing.T) {
	tbl := New()
	a, _ := tbl.Ensure(100)
	b, _ := tbl.Ensure(101)
	c, _ := tbl.Ensure(100 + levelSize) // next leaf
	if a == b || a == c || b == c {
		t.Error("distinct VPNs share slots")
	}
	if tbl.Leaves() != 2 {
		t.Errorf("Leaves = %d, want 2", tbl.Leaves())
	}
}

func TestMaxVPNBoundary(t *testing.T) {
	tbl := New()
	slot, _ := tbl.Ensure(MaxVPN)
	if slot == nil {
		t.Fatal("Ensure(MaxVPN) failed")
	}
	slot.Store(Make(3, FlagPresent))
	got, _ := tbl.Lookup(MaxVPN)
	if got.Load().Frame() != 3 {
		t.Error("MaxVPN slot lost its PTE")
	}
	defer func() {
		if recover() == nil {
			t.Error("Ensure(MaxVPN+1) did not panic")
		}
	}()
	tbl.Ensure(MaxVPN + 1)
}

func TestGangLookupWithinOneLeaf(t *testing.T) {
	tbl := New()
	const base, n = 1024, 16
	for i := uint64(0); i < n; i++ {
		s, _ := tbl.Ensure(base + i)
		s.Store(Make(phys.FrameID(i+1), FlagPresent))
	}
	slots, st := tbl.GangLookup(base, n)
	if len(slots) != n {
		t.Fatalf("len = %d, want %d", len(slots), n)
	}
	for i, s := range slots {
		if s == nil || s.Load().Frame() != phys.FrameID(i+1) {
			t.Fatalf("slot %d wrong: %v", i, s)
		}
	}
	if st.Verticals != 1 || st.Horizontals != n-1 {
		t.Errorf("stats = %+v, want 1 vertical, %d horizontal", st, n-1)
	}
}

func TestGangLookupCrossesLeafBoundary(t *testing.T) {
	tbl := New()
	// Start 4 pages before a 512-entry leaf boundary, span 8 pages.
	base := uint64(levelSize - 4)
	for i := uint64(0); i < 8; i++ {
		s, _ := tbl.Ensure(base + i)
		s.Store(Make(phys.FrameID(i+1), FlagPresent))
	}
	slots, st := tbl.GangLookup(base, 8)
	for i, s := range slots {
		if s == nil || s.Load().Frame() != phys.FrameID(i+1) {
			t.Fatalf("slot %d wrong", i)
		}
	}
	if st.Verticals != 2 || st.Horizontals != 6 {
		t.Errorf("stats = %+v, want 2 verticals, 6 horizontals", st)
	}
}

func TestGangLookupHole(t *testing.T) {
	tbl := New()
	s, _ := tbl.Ensure(10)
	s.Store(Make(1, FlagPresent))
	// VPN range 10..12 where only 10 exists at leaf level: same leaf, so
	// 11 and 12 get live slots holding zero PTEs (non-present).
	slots, _ := tbl.GangLookup(10, 3)
	if slots[0] == nil || slots[1] == nil {
		t.Fatal("slots in an existing leaf must be non-nil")
	}
	if slots[1].Load().Has(FlagPresent) {
		t.Error("unmapped slot reads as present")
	}
	// A range in a fully absent leaf yields nil slots.
	slots, _ = tbl.GangLookup(1<<20, 2)
	if slots[0] != nil || slots[1] != nil {
		t.Error("absent leaf produced slots")
	}
}

// Property: gang lookup returns exactly the same slots as per-page
// Lookup, for arbitrary small ranges.
func TestGangLookupMatchesPerPage(t *testing.T) {
	prop := func(start uint16, n uint8) bool {
		tbl := New()
		base := uint64(start)
		count := int(n%64) + 1
		for i := 0; i < count; i++ {
			s, _ := tbl.Ensure(base + uint64(i))
			s.Store(Make(phys.FrameID(i+1), FlagPresent))
		}
		gang, _ := tbl.GangLookup(base, count)
		for i := 0; i < count; i++ {
			single, _ := tbl.Lookup(base + uint64(i))
			if gang[i] != single {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: gang lookup over an existing region always does fewer
// page-table steps than per-page vertical walks would (the Section 5.1
// claim), and the vertical count equals the number of leaf tables touched.
func TestGangLookupCheaperThanVertical(t *testing.T) {
	prop := func(start uint16, n uint8) bool {
		tbl := New()
		base := uint64(start)
		count := int(n%200) + 2
		for i := 0; i < count; i++ {
			tbl.Ensure(base + uint64(i))
		}
		_, st := tbl.GangLookup(base, count)
		leaves := int((base+uint64(count-1))>>levelBits-base>>levelBits) + 1
		return st.Verticals == leaves && st.Verticals+st.Horizontals == count
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
