package workloads

import (
	"testing"

	"memif/internal/hw"
	"memif/internal/phys"
	"memif/internal/sim"
	"memif/internal/vm"
)

func setup() (*sim.Engine, *vm.AddressSpace) {
	eng := sim.NewEngine()
	plat := hw.KeyStoneII()
	return eng, vm.New(eng, plat, phys.New(plat), 4096)
}

func TestKernelCalibrationMatchesTable4(t *testing.T) {
	// Consuming from the slow node must land near the Linux column of
	// Table 4: pgain 1440, triad 2384, add 2390 MB/s. Our access model
	// adds per-page latency, so allow a 10% band below the paper.
	slowNS := func(k Kernel) float64 { // ns per byte from slow node
		perPage := 110.0 + 4096.0/6.2e9*1e9
		return k.ComputePerByteNS + perPage/4096.0
	}
	cases := []struct {
		k     Kernel
		paper float64
	}{{PGain, 1440.1}, {Triad, 2384.1}, {Add, 2390.1}}
	for _, c := range cases {
		mbs := 1e3 / slowNS(c.k)
		if mbs < c.paper*0.90 || mbs > c.paper*1.05 {
			t.Errorf("%s: modelled slow-node throughput %.0f MB/s vs paper %.0f", c.k.Name, mbs, c.paper)
		}
	}
}

func TestConsumeChargesComputeAndMemory(t *testing.T) {
	eng, as := setup()
	eng.Spawn("p", func(p *sim.Proc) {
		base, _ := as.Mmap(p, 64<<10, hw.NodeSlow, "in")
		scratch := make([]byte, 64<<10)
		start := p.Now()
		if _, err := Triad.Consume(p, as, base, 64<<10, scratch, 0); err != nil {
			t.Fatal(err)
		}
		elapsed := float64(p.Now() - start)
		// compute + memory for 64 KB from the slow node.
		compute := 0.2581 * 65536
		memory := 16 * (110 + 4096/6.2e9*1e9)
		want := compute + memory
		if elapsed < want*0.95 || elapsed > want*1.05 {
			t.Errorf("consume took %.0f ns, want ~%.0f", elapsed, want)
		}
	})
	eng.Run()
}

func TestConsumeChecksumMatchesFill(t *testing.T) {
	eng, as := setup()
	eng.Spawn("p", func(p *sim.Proc) {
		const n = 128 << 10
		base, _ := as.Mmap(p, n, hw.NodeSlow, "in")
		want, err := FillInput(p, as, base, n, 99)
		if err != nil {
			t.Fatal(err)
		}
		scratch := make([]byte, n)
		got, err := Add.Consume(p, as, base, n, scratch, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("checksum = %#x, want %#x", got, want)
		}
	})
	eng.Run()
}

func TestConsumeUnmappedFails(t *testing.T) {
	eng, as := setup()
	eng.Spawn("p", func(p *sim.Proc) {
		scratch := make([]byte, 4096)
		if _, err := Triad.Consume(p, as, 0xdead000, 4096, scratch, 0); err == nil {
			t.Error("consume of unmapped region succeeded")
		}
	})
	eng.Run()
}

func TestSum64TailBytes(t *testing.T) {
	// 9 bytes: one 8-byte word plus a tail byte.
	chunk := []byte{1, 0, 0, 0, 0, 0, 0, 0, 5}
	if got := sum64(10, chunk); got != 10+1+5 {
		t.Errorf("sum64 = %d, want 16", got)
	}
}

func TestFillInputDeterministic(t *testing.T) {
	eng, as := setup()
	eng.Spawn("p", func(p *sim.Proc) {
		a, _ := as.Mmap(p, 32<<10, hw.NodeSlow, "a")
		b, _ := as.Mmap(p, 32<<10, hw.NodeSlow, "b")
		ca, _ := FillInput(p, as, a, 32<<10, 7)
		cb, _ := FillInput(p, as, b, 32<<10, 7)
		if ca != cb {
			t.Error("same seed produced different checksums")
		}
		cc, _ := FillInput(p, as, b, 32<<10, 8)
		if cc == ca {
			t.Error("different seeds produced identical checksums")
		}
	})
	eng.Run()
}
