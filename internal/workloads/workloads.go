// Package workloads provides the streaming compute kernels of the
// case study (Section 6.6): the STREAM benchmark's add and triad kernels
// and a StreamCluster-pgain-like kernel from PARSEC.
//
// A kernel is modelled by its compute intensity: the CPU nanoseconds it
// spends per byte streamed, on top of the memory access time the backing
// node charges. The intensities are calibrated so that running each
// kernel entirely out of the slow DDR3 node reproduces the "Linux" row
// of Table 4 (1440 / 2384 / 2390 MB/s); the memif row then emerges from
// the runtime's prefetch behaviour rather than from calibration.
package workloads

import (
	"encoding/binary"

	"memif/internal/sim"
	"memif/internal/vm"
)

// Kernel is one streaming compute kernel.
type Kernel struct {
	// Name as reported in Table 4.
	Name string
	// ComputePerByteNS is CPU time per byte consumed, excluding memory
	// access time.
	ComputePerByteNS float64
	// Reduce folds a consumed chunk into a running checksum, letting
	// examples and tests verify that the bytes streamed through the
	// fast buffers are the right ones. May be nil.
	Reduce func(acc uint64, chunk []byte) uint64
}

// sum64 folds 8-byte words of the chunk into the accumulator.
func sum64(acc uint64, chunk []byte) uint64 {
	for len(chunk) >= 8 {
		acc += binary.LittleEndian.Uint64(chunk)
		chunk = chunk[8:]
	}
	for _, b := range chunk {
		acc += uint64(b)
	}
	return acc
}

// The three kernels of Table 4, plus the remaining two STREAM kernels
// (the paper ports add and triad; copy and scale complete the suite).
var (
	// Triad is STREAM's a[i] = b[i] + q*c[i].
	Triad = Kernel{Name: "STREAM.triad", ComputePerByteNS: 0.2581, Reduce: sum64}
	// Add is STREAM's a[i] = b[i] + c[i].
	Add = Kernel{Name: "STREAM.add", ComputePerByteNS: 0.2570, Reduce: sum64}
	// Copy is STREAM's a[i] = b[i]: almost no compute, pure bandwidth.
	Copy = Kernel{Name: "STREAM.copy", ComputePerByteNS: 0.1550, Reduce: sum64}
	// Scale is STREAM's a[i] = q*b[i].
	Scale = Kernel{Name: "STREAM.scale", ComputePerByteNS: 0.1710, Reduce: sum64}
	// PGain is the pgain phase of PARSEC's StreamCluster: for every
	// point, evaluate the cost change of opening a new median. Higher
	// compute per byte than STREAM.
	PGain = Kernel{Name: "StreamCluster.pgain", ComputePerByteNS: 0.5330, Reduce: sum64}
)

// All lists the Table 4 kernels in the paper's column order.
var All = []Kernel{PGain, Triad, Add}

// STREAMSuite lists the full STREAM kernel set.
var STREAMSuite = []Kernel{Copy, Scale, Add, Triad}

// Consume processes n bytes at addr: it reads them through the address
// space (charging the backing node's bandwidth) and spends the kernel's
// compute time. The scratch buffer must be at least n bytes; it returns
// the updated checksum accumulator.
func (k Kernel) Consume(p *sim.Proc, as *vm.AddressSpace, addr, n int64, scratch []byte, acc uint64, meters ...*sim.Meter) (uint64, error) {
	if err := as.Read(p, addr, scratch[:n], meters...); err != nil {
		return acc, err
	}
	p.Busy(int64(float64(n)*k.ComputePerByteNS), meters...)
	if k.Reduce != nil {
		acc = k.Reduce(acc, scratch[:n])
	}
	return acc, nil
}

// FillInput writes a deterministic pattern into [base, base+n) and
// returns the checksum the kernels' Reduce would produce over it, for
// end-to-end verification.
func FillInput(p *sim.Proc, as *vm.AddressSpace, base, n int64, seed uint64) (uint64, error) {
	buf := make([]byte, n)
	x := seed*6364136223846793005 + 1442695040888963407
	for i := int64(0); i+8 <= n; i += 8 {
		x = x*6364136223846793005 + 1442695040888963407
		binary.LittleEndian.PutUint64(buf[i:], x)
	}
	if err := as.Write(p, base, buf); err != nil {
		return 0, err
	}
	return sum64(0, buf), nil
}
