package vm

import (
	"errors"
	"fmt"

	"memif/internal/pagetable"
	"memif/internal/phys"
	"memif/internal/sim"
)

// Mapping is one (address space, slot) pair referencing a frame — a
// reverse-map entry.
type Mapping struct {
	AS   *AddressSpace
	Slot *pagetable.Slot
	Addr int64
}

// Rmap is the machine-wide reverse map: frame -> every PTE mapping it.
// The paper's prototype calls its support for pages shared among
// processes "primitive" (Section 6.7); with a real reverse map the memif
// driver can migrate shared pages by updating all mappings, the way
// try_to_migrate walks the rmap in Linux.
//
// Address spaces created without an Rmap (nil) skip the bookkeeping and
// behave as single-mapping processes.
type Rmap struct {
	byFrame map[phys.FrameID][]Mapping
	// cacheRefs tracks which file page-cache entry (if any) owns a
	// frame, so migration can rebind the cache alongside the PTEs.
	cacheRefs map[phys.FrameID]cacheRef
}

type cacheRef struct {
	file *File
	idx  int64
}

// NewRmap returns an empty reverse map.
func NewRmap() *Rmap {
	return &Rmap{
		byFrame:   make(map[phys.FrameID][]Mapping),
		cacheRefs: make(map[phys.FrameID]cacheRef),
	}
}

// AddCacheRef records that file's page idx caches frame f.
func (r *Rmap) AddCacheRef(f phys.FrameID, file *File, idx int64) {
	r.cacheRefs[f] = cacheRef{file: file, idx: idx}
}

// DropCacheRef forgets a cache reference (page evicted from the cache).
func (r *Rmap) DropCacheRef(f phys.FrameID) {
	delete(r.cacheRefs, f)
}

// Add records a mapping.
func (r *Rmap) Add(f phys.FrameID, m Mapping) {
	r.byFrame[f] = append(r.byFrame[f], m)
}

// Remove drops the mapping with the given slot.
func (r *Rmap) Remove(f phys.FrameID, slot *pagetable.Slot) {
	ms := r.byFrame[f]
	for i, m := range ms {
		if m.Slot == slot {
			ms[i] = ms[len(ms)-1]
			ms = ms[:len(ms)-1]
			break
		}
	}
	if len(ms) == 0 {
		delete(r.byFrame, f)
	} else {
		r.byFrame[f] = ms
	}
}

// Lookup returns all mappings of a frame (shared result; do not mutate).
func (r *Rmap) Lookup(f phys.FrameID) []Mapping {
	return r.byFrame[f]
}

// Move rebinds every reference to old — PTE mappings and, for
// file-backed pages, the page-cache entry — to the new frame (after a
// migration replaced the backing frame).
func (r *Rmap) Move(old, new *phys.Frame) {
	if ms, ok := r.byFrame[old.ID]; ok {
		delete(r.byFrame, old.ID)
		r.byFrame[new.ID] = append(r.byFrame[new.ID], ms...)
	}
	if cr, ok := r.cacheRefs[old.ID]; ok {
		delete(r.cacheRefs, old.ID)
		r.cacheRefs[new.ID] = cr
		cr.file.rebind(cr.idx, old, new)
	}
}

// rmapAdd/rmapRemove are the address-space hooks (no-ops without a map).
func (as *AddressSpace) rmapAdd(f phys.FrameID, slot *pagetable.Slot, addr int64) {
	if as.Rmap != nil {
		as.Rmap.Add(f, Mapping{AS: as, Slot: slot, Addr: addr})
	}
}

func (as *AddressSpace) rmapRemove(f phys.FrameID, slot *pagetable.Slot) {
	if as.Rmap != nil {
		as.Rmap.Remove(f, slot)
	}
}

// ShareFrom maps the frames backing [srcBase, srcBase+length) of src into
// this address space (a shared anonymous mapping between two processes,
// like mmap(MAP_SHARED) + fork). Both spaces must use the same page size
// and share the same Rmap for migration of the shared pages to stay
// coherent. Returns the base address in the new space.
func (as *AddressSpace) ShareFrom(p *sim.Proc, src *AddressSpace, srcBase, length int64) (int64, error) {
	if as.PageBytes != src.PageBytes {
		return 0, fmt.Errorf("vm: page size mismatch %d vs %d", as.PageBytes, src.PageBytes)
	}
	if as.Rmap == nil || as.Rmap != src.Rmap {
		return 0, errors.New("vm: shared mappings require a common Rmap")
	}
	if err := src.CheckRegion(srcBase, length); err != nil {
		return 0, err
	}
	base := as.nextAddr
	pages := length / as.PageBytes
	cost := &as.Plat.Cost
	for i := int64(0); i < pages; i++ {
		f := src.FrameAt(srcBase + i*as.PageBytes)
		if f == nil {
			return 0, fmt.Errorf("%w: %#x", ErrBadAddress, srcBase+i*as.PageBytes)
		}
		addr := base + i*as.PageBytes
		slot, _ := as.Table.Ensure(as.VPN(addr))
		slot.Store(pagetable.Make(f.ID, pagetable.FlagPresent|pagetable.FlagWrite))
		f.RefCount++
		as.rmapAdd(f.ID, slot, addr)
	}
	charge(p, pages*cost.PTEReplace)
	as.vmas = append(as.vmas, &VMA{Start: base, Length: length, Node: src.FindVMA(srcBase).Node, Name: "shared"})
	as.nextAddr = base + length + as.PageBytes
	return base, nil
}
