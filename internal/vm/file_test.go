package vm

import (
	"bytes"
	"testing"

	"memif/internal/hw"
	"memif/internal/sim"
)

func TestFileMappingSharesCache(t *testing.T) {
	eng, a, b := setupShared()
	f := NewFile(a.Mem, a.Rmap, "data.bin", 8*4096, 4096)
	eng.Spawn("p", func(p *sim.Proc) {
		ma, err := a.MmapFile(p, f, 0, 8*4096)
		if err != nil {
			t.Fatal(err)
		}
		a.Write(p, ma, bytes.Repeat([]byte{0x5C}, 4096))

		mb, err := b.MmapFile(p, f, 0, 4*4096)
		if err != nil {
			t.Fatal(err)
		}
		// Same cache frames: b reads a's write.
		var buf [1]byte
		b.Read(p, mb, buf[:])
		if buf[0] != 0x5C {
			t.Errorf("file mapping read %#x, want 0x5C", buf[0])
		}
		if a.FrameAt(ma) != b.FrameAt(mb) {
			t.Error("mappings of the same file page use different frames")
		}
		if a.FrameAt(ma) != f.FrameAt(0) {
			t.Error("mapping bypasses the page cache")
		}
		if f.CachedPages() != 8 {
			t.Errorf("cached pages = %d, want 8", f.CachedPages())
		}
		if got := a.FrameAt(ma).RefCount; got != 2 {
			t.Errorf("shared page refcount = %d, want 2", got)
		}
	})
	eng.Run()
}

func TestFileCacheSurvivesUnmap(t *testing.T) {
	eng, a, _ := setupShared()
	f := NewFile(a.Mem, a.Rmap, "d", 2*4096, 4096)
	eng.Spawn("p", func(p *sim.Proc) {
		ma, _ := a.MmapFile(p, f, 0, 2*4096)
		a.Write(p, ma, []byte{9})
		if err := a.Munmap(p, ma); err != nil {
			t.Fatal(err)
		}
		// Pages are unmapped but stay cached with their data.
		if f.CachedPages() != 2 {
			t.Errorf("cache dropped on unmap: %d pages", f.CachedPages())
		}
		mb, _ := a.MmapFile(p, f, 0, 2*4096)
		var buf [1]byte
		a.Read(p, mb, buf[:])
		if buf[0] != 9 {
			t.Error("cached data lost across unmap/remap")
		}
		a.Munmap(p, mb)
		f.Drop()
		if f.CachedPages() != 0 {
			t.Errorf("Drop left %d pages", f.CachedPages())
		}
		if a.Mem.Used(hw.NodeSlow) != 0 {
			t.Errorf("leaked %d bytes", a.Mem.Used(hw.NodeSlow))
		}
	})
	eng.Run()
}

func TestFileDropKeepsMappedPages(t *testing.T) {
	eng, a, _ := setupShared()
	f := NewFile(a.Mem, a.Rmap, "d", 4096, 4096)
	eng.Spawn("p", func(p *sim.Proc) {
		ma, _ := a.MmapFile(p, f, 0, 4096)
		f.Drop() // page is mapped: must survive
		if f.CachedPages() != 1 {
			t.Error("Drop evicted a mapped page")
		}
		if err := a.Touch(p, ma, false); err != nil {
			t.Errorf("mapped page broken after Drop: %v", err)
		}
	})
	eng.Run()
}

func TestMmapFileValidation(t *testing.T) {
	eng, a, _ := setupShared()
	f := NewFile(a.Mem, a.Rmap, "d", 4*4096, 4096)
	eng.Spawn("p", func(p *sim.Proc) {
		if _, err := a.MmapFile(p, f, 0, 5*4096); err == nil {
			t.Error("overrun mapping accepted")
		}
		if _, err := a.MmapFile(p, f, 100, 4096); err == nil {
			t.Error("unaligned offset accepted")
		}
		noRmap := New(eng, a.Plat, a.Mem, 4096)
		if _, err := noRmap.MmapFile(p, f, 0, 4096); err == nil {
			t.Error("mapping without shared rmap accepted")
		}
	})
	eng.Run()
}
