package vm

import (
	"testing"

	"memif/internal/hw"
	"memif/internal/phys"
	"memif/internal/sim"
	"memif/internal/tlb"
)

// With a modelled TLB attached, access paths charge the refill walk on
// misses and nothing extra on hits; PTE replacement invalidates the
// cached translation (the indirect flush cost of Section 5.2).
func TestTLBChargesWalkOnMiss(t *testing.T) {
	eng := sim.NewEngine()
	plat := hw.KeyStoneII()
	as := New(eng, plat, phys.New(plat), 4096)
	as.TLB = tlb.NewCortexA15()
	walk := sim.Time(plat.Cost.TLBMissWalk)
	lat := sim.Time(plat.Node(hw.NodeSlow).LatencyNS)

	eng.Spawn("p", func(p *sim.Proc) {
		base, _ := as.Mmap(p, 4096, hw.NodeSlow, "b")
		t0 := p.Now()
		as.Touch(p, base, false) // cold: miss
		cold := p.Now() - t0
		t0 = p.Now()
		as.Touch(p, base, false) // warm: hit
		warm := p.Now() - t0
		if cold != lat+walk {
			t.Errorf("cold touch = %v, want %v", cold, lat+walk)
		}
		if warm != lat {
			t.Errorf("warm touch = %v, want %v", warm, lat)
		}
		// Replacing the PTE invalidates the translation.
		as.InvalidatePage(as.VPN(base))
		t0 = p.Now()
		as.Touch(p, base, false)
		if got := p.Now() - t0; got != lat+walk {
			t.Errorf("post-flush touch = %v, want %v", got, lat+walk)
		}
	})
	eng.Run()
	st := as.TLB.Stats()
	if st.Misses != 2 || st.Hits != 1 || st.Invalidations != 1 {
		t.Errorf("TLB stats = %+v", st)
	}
}

func TestNoTLBNoExtraCost(t *testing.T) {
	eng := sim.NewEngine()
	plat := hw.KeyStoneII()
	as := New(eng, plat, phys.New(plat), 4096) // TLB nil
	lat := sim.Time(plat.Node(hw.NodeSlow).LatencyNS)
	eng.Spawn("p", func(p *sim.Proc) {
		base, _ := as.Mmap(p, 4096, hw.NodeSlow, "b")
		t0 := p.Now()
		as.Touch(p, base, false)
		if got := p.Now() - t0; got != lat {
			t.Errorf("touch = %v, want bare latency %v", got, lat)
		}
	})
	eng.Run()
}
