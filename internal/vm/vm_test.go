package vm

import (
	"bytes"
	"errors"
	"testing"

	"memif/internal/hw"
	"memif/internal/pagetable"
	"memif/internal/phys"
	"memif/internal/sim"
)

func setup(pageBytes int64) (*sim.Engine, *AddressSpace) {
	eng := sim.NewEngine()
	plat := hw.KeyStoneII()
	mem := phys.New(plat)
	return eng, New(eng, plat, mem, pageBytes)
}

func TestMmapPopulatesAndMunmapFrees(t *testing.T) {
	eng, as := setup(4096)
	eng.Spawn("p", func(p *sim.Proc) {
		base, err := as.Mmap(p, 16*4096, hw.NodeSlow, "buf")
		if err != nil {
			t.Fatalf("Mmap: %v", err)
		}
		if as.Mem.Used(hw.NodeSlow) != 16*4096 {
			t.Errorf("used = %d", as.Mem.Used(hw.NodeSlow))
		}
		for i := int64(0); i < 16; i++ {
			if as.FrameAt(base+i*4096) == nil {
				t.Fatalf("page %d not populated", i)
			}
		}
		if err := as.Munmap(p, base); err != nil {
			t.Fatalf("Munmap: %v", err)
		}
		if as.Mem.Used(hw.NodeSlow) != 0 {
			t.Errorf("used after munmap = %d", as.Mem.Used(hw.NodeSlow))
		}
		if as.FrameAt(base) != nil {
			t.Error("FrameAt alive after munmap")
		}
	})
	eng.Run()
}

func TestMmapChargesPopulationCost(t *testing.T) {
	eng, as := setup(4096)
	cost := &as.Plat.Cost
	eng.Spawn("p", func(p *sim.Proc) {
		start := p.Now()
		if _, err := as.Mmap(p, 8*4096, hw.NodeSlow, "b"); err != nil {
			t.Fatal(err)
		}
		want := sim.Time(8 * (cost.PageAlloc + cost.PTEReplace))
		if got := p.Now() - start; got != want {
			t.Errorf("mmap cost = %v, want %v", got, want)
		}
	})
	eng.Run()
}

func TestMmapRoundsUpAndRejectsBadLength(t *testing.T) {
	_, as := setup(4096)
	base, err := as.Mmap(nil, 5000, hw.NodeSlow, "b")
	if err != nil {
		t.Fatal(err)
	}
	if v := as.FindVMA(base); v.Length != 8192 {
		t.Errorf("length = %d, want 8192", v.Length)
	}
	if _, err := as.Mmap(nil, 0, hw.NodeSlow, "z"); err == nil {
		t.Error("zero-length mmap succeeded")
	}
	if _, err := as.Mmap(nil, -4096, hw.NodeSlow, "n"); err == nil {
		t.Error("negative mmap succeeded")
	}
}

func TestMmapFailureRollsBack(t *testing.T) {
	_, as := setup(4096)
	// Fast node: 6 MB. Ask for 8 MB — must fail and free everything.
	if _, err := as.Mmap(nil, 8<<20, hw.NodeFast, "big"); !errors.Is(err, phys.ErrNoMemory) {
		t.Fatalf("err = %v, want ErrNoMemory", err)
	}
	if as.Mem.Used(hw.NodeFast) != 0 {
		t.Errorf("leaked %d bytes on rollback", as.Mem.Used(hw.NodeFast))
	}
}

func TestReadWriteRoundTripAcrossPages(t *testing.T) {
	eng, as := setup(4096)
	eng.Spawn("p", func(p *sim.Proc) {
		base, _ := as.Mmap(p, 4*4096, hw.NodeSlow, "b")
		data := make([]byte, 3*4096+100) // unaligned, spans pages
		for i := range data {
			data[i] = byte(i * 13)
		}
		if err := as.Write(p, base+50, data); err != nil {
			t.Fatalf("Write: %v", err)
		}
		got := make([]byte, len(data))
		if err := as.Read(p, base+50, got); err != nil {
			t.Fatalf("Read: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Error("round trip corrupted data")
		}
	})
	eng.Run()
}

func TestAccessUnmappedFails(t *testing.T) {
	eng, as := setup(4096)
	eng.Spawn("p", func(p *sim.Proc) {
		if err := as.Touch(p, 0xdead000, false); !errors.Is(err, ErrBadAddress) {
			t.Errorf("Touch unmapped: %v", err)
		}
		buf := make([]byte, 10)
		if err := as.Read(p, 0xdead000, buf); !errors.Is(err, ErrBadAddress) {
			t.Errorf("Read unmapped: %v", err)
		}
	})
	eng.Run()
}

// Two procs mmap'ing concurrently must get disjoint ranges: Mmap
// charges allocation cost (which yields) between reading nextAddr and
// registering the VMA, so the reservation has to happen before the
// first yield or both callers read the same base and the address space
// hands out overlapping VMAs (seen as phantom badreq fills when a
// request's range resolved to the wrong, smaller VMA).
func TestConcurrentMmapNoOverlap(t *testing.T) {
	eng, as := setup(4096)
	type region struct{ base, length int64 }
	var got []region
	for i := 0; i < 4; i++ {
		i := i
		eng.Spawn("mapper", func(p *sim.Proc) {
			length := int64(4+i) * 4096
			for j := 0; j < 8; j++ {
				base, err := as.Mmap(p, length, hw.NodeSlow, "r")
				if err != nil {
					t.Errorf("Mmap: %v", err)
					return
				}
				got = append(got, region{base, length})
				p.SleepNS(10)
			}
		})
	}
	eng.Run()
	for i, a := range got {
		for _, b := range got[i+1:] {
			if a.base < b.base+b.length && b.base < a.base+a.length {
				t.Fatalf("overlapping mmaps: [%#x,+%#x) and [%#x,+%#x)", a.base, a.length, b.base, b.length)
			}
		}
	}
}

func TestCheckRegion(t *testing.T) {
	_, as := setup(4096)
	base, _ := as.Mmap(nil, 8*4096, hw.NodeSlow, "b")
	if err := as.CheckRegion(base, 8*4096); err != nil {
		t.Errorf("full region: %v", err)
	}
	if err := as.CheckRegion(base+4096, 4096); err != nil {
		t.Errorf("inner page: %v", err)
	}
	if err := as.CheckRegion(base+100, 4096); err == nil {
		t.Error("unaligned start accepted")
	}
	if err := as.CheckRegion(base, 100); err == nil {
		t.Error("unaligned length accepted")
	}
	if err := as.CheckRegion(base, 9*4096); err == nil {
		t.Error("overrun accepted")
	}
	if err := as.CheckRegion(0x1000, 4096); err == nil {
		t.Error("unmapped region accepted")
	}
}

func TestTouchClearsYoungAndSetsDirty(t *testing.T) {
	eng, as := setup(4096)
	eng.Spawn("p", func(p *sim.Proc) {
		base, _ := as.Mmap(p, 4096, hw.NodeSlow, "b")
		slot, _ := as.Table.Lookup(as.VPN(base))
		// Install a semi-final PTE the way memif's Remap does.
		semi := slot.Load().With(pagetable.FlagYoung)
		slot.Store(semi)

		if err := as.Touch(p, base, true); err != nil {
			t.Fatal(err)
		}
		pte := slot.Load()
		if pte.Has(pagetable.FlagYoung) {
			t.Error("reference did not clear young bit")
		}
		if !pte.Has(pagetable.FlagDirty) {
			t.Error("write did not set dirty bit")
		}
		if as.RaceTouches != 1 {
			t.Errorf("RaceTouches = %d, want 1", as.RaceTouches)
		}
		// The driver's release CAS must now fail — the race is detected.
		if slot.CompareAndSwap(semi.Without(pagetable.FlagYoung), semi) {
			// (constructing the final from semi) — i.e. CAS(semi, final)
			t.Error("unexpected CAS success")
		}
	})
	eng.Run()
}

func TestMigrationPTEBlocksAccessor(t *testing.T) {
	eng, as := setup(4096)
	var touchedAt sim.Time
	eng.Spawn("app", func(p *sim.Proc) {
		base, _ := as.Mmap(p, 4096, hw.NodeSlow, "b")
		slot, _ := as.Table.Lookup(as.VPN(base))
		orig := slot.Load()
		slot.Store(orig.With(pagetable.FlagMigration))
		start := p.Now()

		eng.Spawn("migrator", func(m *sim.Proc) {
			m.SleepUntil(start + 5000)
			slot.Store(orig) // migration done
			as.ReleaseMigrationGate(slot)
		})
		if err := as.Touch(p, base, false); err != nil {
			t.Fatal(err)
		}
		touchedAt = p.Now()
		if touchedAt < start+5000 {
			t.Errorf("accessor not blocked: touched at %v", touchedAt)
		}
	})
	eng.Run()
	if eng.Parked() != 0 {
		t.Errorf("leaked parked procs: %d", eng.Parked())
	}
}

func TestRecoverPTETrapsToHandler(t *testing.T) {
	eng, as := setup(4096)
	handled := 0
	eng.Spawn("p", func(p *sim.Proc) {
		base, _ := as.Mmap(p, 4096, hw.NodeSlow, "b")
		slot, _ := as.Table.Lookup(as.VPN(base))
		orig := slot.Load()
		slot.Store(orig.With(pagetable.FlagRecover))
		as.SetFaultHandler(func(fp *sim.Proc, addr int64, s *pagetable.Slot, write bool) bool {
			handled++
			s.Store(orig) // restore the old mapping
			return true
		})
		// Reads do not trap.
		if err := as.Touch(p, base, false); err != nil {
			t.Fatalf("read touch: %v", err)
		}
		if handled != 0 {
			t.Error("read access trapped")
		}
		slot.Store(orig.With(pagetable.FlagRecover))
		if err := as.Write(p, base, []byte{1, 2, 3}); err != nil {
			t.Fatalf("write: %v", err)
		}
		if handled != 1 {
			t.Errorf("handled = %d, want 1", handled)
		}
	})
	eng.Run()
}

func TestRecoverWithoutHandlerFails(t *testing.T) {
	eng, as := setup(4096)
	eng.Spawn("p", func(p *sim.Proc) {
		base, _ := as.Mmap(p, 4096, hw.NodeSlow, "b")
		slot, _ := as.Table.Lookup(as.VPN(base))
		slot.Store(slot.Load().With(pagetable.FlagRecover))
		if err := as.Touch(p, base, true); err == nil {
			t.Error("write on recover PTE without handler succeeded")
		}
	})
	eng.Run()
}

func TestLargePageAddressSpace(t *testing.T) {
	eng, as := setup(hw.Page2M)
	eng.Spawn("p", func(p *sim.Proc) {
		base, err := as.Mmap(p, 2*hw.Page2M, hw.NodeSlow, "huge")
		if err != nil {
			t.Fatal(err)
		}
		f := as.FrameAt(base)
		if f == nil || f.Size != hw.Page2M {
			t.Errorf("frame = %v, want 2MB frame", f)
		}
		if as.VPN(base+hw.Page2M) != as.VPN(base)+1 {
			t.Error("VPN arithmetic wrong for 2MB pages")
		}
	})
	eng.Run()
}

func TestBadPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two page size did not panic")
		}
	}()
	setup(3000)
}

func TestFlushTLBAccounting(t *testing.T) {
	eng, as := setup(4096)
	eng.Spawn("p", func(p *sim.Proc) {
		start := p.Now()
		as.FlushTLBPage(p)
		as.FlushTLBPage(p)
		if as.TLBFlushes != 2 {
			t.Errorf("TLBFlushes = %d, want 2", as.TLBFlushes)
		}
		want := sim.Time(2 * as.Plat.Cost.TLBFlushPage)
		if got := p.Now() - start; got != want {
			t.Errorf("cost = %v, want %v", got, want)
		}
	})
	eng.Run()
}

func TestMunmapUnknownBase(t *testing.T) {
	_, as := setup(4096)
	if err := as.Munmap(nil, 0x1234000); !errors.Is(err, ErrNoVMA) {
		t.Errorf("err = %v, want ErrNoVMA", err)
	}
}
