package vm

import (
	"testing"

	"memif/internal/hw"
	"memif/internal/pagetable"
	"memif/internal/sim"
)

func TestShadowRegistryLifecycle(t *testing.T) {
	eng, as := setup(4096)
	eng.Spawn("p", func(p *sim.Proc) {
		base, err := as.Mmap(p, 4096, hw.NodeFast, "buf")
		if err != nil {
			t.Fatal(err)
		}
		vpn := as.VPN(base)
		cur := as.FrameAt(base)

		sh, err2 := as.Mem.Alloc(hw.NodeSlow, 4096)
		if err2 != nil {
			t.Fatal(err2)
		}
		as.SetShadow(vpn, sh, cur.ID)
		if as.Shadows() != 1 {
			t.Fatalf("Shadows = %d", as.Shadows())
		}
		if f, of := as.ShadowAt(vpn); f != sh || of != cur.ID {
			t.Errorf("ShadowAt = %v/%d", f, of)
		}

		// TakeShadow hands the frame back without freeing it.
		got := as.TakeShadow(vpn)
		if got != sh || as.Shadows() != 0 {
			t.Fatalf("TakeShadow = %v, shadows = %d", got, as.Shadows())
		}
		if _, ok := as.Mem.Lookup(sh.ID); !ok {
			t.Error("TakeShadow freed the frame")
		}

		// DropShadow frees an unreferenced frame.
		as.SetShadow(vpn, sh, cur.ID)
		used := as.Mem.Used(hw.NodeSlow)
		as.DropShadow(vpn)
		if as.Mem.Used(hw.NodeSlow) != used-4096 {
			t.Error("DropShadow did not free the frame")
		}
		if f, _ := as.ShadowAt(vpn); f != nil {
			t.Error("shadow survived DropShadow")
		}
	})
	eng.Run()
}

func TestMunmapDropsShadows(t *testing.T) {
	eng, as := setup(4096)
	eng.Spawn("p", func(p *sim.Proc) {
		base, err := as.Mmap(p, 4096, hw.NodeFast, "buf")
		if err != nil {
			t.Fatal(err)
		}
		sh, _ := as.Mem.Alloc(hw.NodeSlow, 4096)
		as.SetShadow(as.VPN(base), sh, as.FrameAt(base).ID)
		if err := as.Munmap(p, base); err != nil {
			t.Fatal(err)
		}
		if as.Shadows() != 0 {
			t.Error("shadow leaked across munmap")
		}
		if as.Mem.Used(hw.NodeSlow) != 0 {
			t.Errorf("slow-node bytes leaked: %d", as.Mem.Used(hw.NodeSlow))
		}
	})
	eng.Run()
}

// The scanner reports pages whose young bit was cleared by an access
// since the last pass, re-arms young, and leaves claimed pages alone.
func TestScanAccessBits(t *testing.T) {
	eng, as := setup(4096)
	eng.Spawn("p", func(p *sim.Proc) {
		const pages = 8
		base, err := as.Mmap(p, pages*4096, hw.NodeSlow, "buf")
		if err != nil {
			t.Fatal(err)
		}
		vpn := as.VPN(base)

		// First pass arms young everywhere; nothing was sampled as
		// referenced state is meaningless until armed, but the call
		// reports all pages as referenced (young absent after mmap).
		ref, _, sampled := as.ScanAccessBits(p, vpn, pages)
		if sampled != pages || ref != pages {
			t.Fatalf("first pass ref=%d sampled=%d", ref, sampled)
		}

		// No accesses: second pass sees young still set → no references.
		ref, _, _ = as.ScanAccessBits(p, vpn, pages)
		if ref != 0 {
			t.Fatalf("idle pass ref=%d", ref)
		}

		// Touch pages 0..2 (one write) and rescan.
		for i := int64(0); i < 3; i++ {
			if err := as.Touch(p, base+i*4096, i == 0); err != nil {
				t.Fatal(err)
			}
		}
		ref, dirty, _ := as.ScanAccessBits(p, vpn, pages)
		if ref != 3 {
			t.Errorf("ref = %d, want 3", ref)
		}
		if dirty != 1 {
			t.Errorf("dirty = %d, want 1", dirty)
		}

		// A claimed page is skipped entirely — its young bit must not be
		// touched while a migration owns it.
		if !as.MigClaim(vpn, 1) {
			t.Fatal("claim failed")
		}
		slot, _ := as.Table.Lookup(vpn)
		before := slot.Load()
		_, _, sampled = as.ScanAccessBits(p, vpn, pages)
		if sampled != pages-1 {
			t.Errorf("sampled = %d with one page claimed", sampled)
		}
		if slot.Load() != before {
			t.Error("scanner modified a claimed page's PTE")
		}
		as.MigRelease(vpn, 1)

		// Migration PTEs are skipped too.
		slot.Store(before.With(pagetable.FlagMigration))
		_, _, sampled = as.ScanAccessBits(p, vpn, pages)
		if sampled != pages-1 {
			t.Errorf("sampled = %d with one migration PTE", sampled)
		}
		slot.Store(before)
	})
	eng.Run()
}
