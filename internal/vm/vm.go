// Package vm models per-process virtual memory: VMAs, anonymous mmap,
// and the access paths whose interaction with migration defines the
// paper's race semantics.
//
// Accesses honor three PTE disciplines:
//
//   - Baseline race *prevention*: touching a page whose PTE carries
//     FlagMigration blocks the accessor until the migration completes,
//     exactly like Linux's migration PTEs (Section 5.2, Figure 4a).
//   - memif race *detection*: touching a page clears the young bit; the
//     driver's later release CAS observes the clear and reports the race
//     (Figure 4b). The clearing happens here, on the access path.
//   - Proceed-and-recover: a write to a page whose PTE carries
//     FlagRecover traps into a registered fault handler, which aborts the
//     in-flight migration and restores the old mapping (Section 5.2,
//     "Alternative").
package vm

import (
	"errors"
	"fmt"

	"memif/internal/hw"
	"memif/internal/pagetable"
	"memif/internal/phys"
	"memif/internal/sim"
	"memif/internal/tlb"
)

// Errors reported by the access and mapping paths.
var (
	ErrBadAddress = errors.New("vm: access to unmapped address")
	ErrNoVMA      = errors.New("vm: address not covered by a VMA")
)

// VMA is one contiguous virtual memory area.
type VMA struct {
	Start  int64
	Length int64
	Node   hw.NodeID // node backing pages were allocated on at mmap time
	Name   string

	// TouchedBytes accumulates how much of the VMA has been read or
	// written (access-pattern accounting for reactive placement, the
	// transparent approach of Section 2.1).
	TouchedBytes int64
}

// End returns the first address past the VMA.
func (v *VMA) End() int64 { return v.Start + v.Length }

func (v *VMA) String() string {
	return fmt.Sprintf("vma[%#x-%#x %s @node%d]", v.Start, v.End(), v.Name, v.Node)
}

// FaultHandler handles a trap taken on an access. It returns true if the
// fault was resolved and the access should be retried. The memif driver
// registers one to implement proceed-and-recover.
type FaultHandler func(p *sim.Proc, addr int64, slot *pagetable.Slot, write bool) bool

// AddressSpace is one process's virtual memory. PageBytes is fixed per
// address space; the 64 KB and 2 MB page experiments build separate
// spaces (the paper emulates large pages the same way, Section 6.2).
type AddressSpace struct {
	Eng       *sim.Engine
	Plat      *hw.Platform
	Mem       *phys.Memory
	PageBytes int64
	Table     *pagetable.Table

	// Rmap, when non-nil, is the machine-wide reverse map this space
	// participates in; required for shared mappings (see ShareFrom).
	Rmap *Rmap

	// TLB, when non-nil, models this context's translation cache:
	// access paths charge a hardware walk on each miss, and PTE
	// replacements invalidate the cached translation — the indirect
	// flush cost of Section 5.2. Nil (the default) keeps the direct
	// flush-cost-only model the calibration uses.
	TLB *tlb.TLB

	vmas     []*VMA
	nextAddr int64

	// TLBFlushes counts explicit per-page TLB flushes charged against
	// this address space (indirect refill cost is part of the flush
	// price in the cost model).
	TLBFlushes int64

	migWaiters map[*pagetable.Slot]*sim.Event
	migClaims  map[uint64]bool
	shadows    map[uint64]shadowCopy
	fault      FaultHandler

	// MonitorTax models the runtime overhead of transparent access
	// monitoring (Section 2.1 cites >10%): every access is slowed by
	// this fraction while a reactive advisor instruments the process.
	MonitorTax float64

	// RaceTouches counts accesses that cleared a young bit (useful for
	// asserting race-detection behaviour in tests).
	RaceTouches int64
}

// New returns an empty address space with the given page size.
func New(eng *sim.Engine, plat *hw.Platform, mem *phys.Memory, pageBytes int64) *AddressSpace {
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic(fmt.Sprintf("vm: page size %d not a positive power of two", pageBytes))
	}
	return &AddressSpace{
		Eng:        eng,
		Plat:       plat,
		Mem:        mem,
		PageBytes:  pageBytes,
		Table:      pagetable.New(),
		nextAddr:   1 << 32,
		migWaiters: make(map[*pagetable.Slot]*sim.Event),
		migClaims:  make(map[uint64]bool),
		shadows:    make(map[uint64]shadowCopy),
	}
}

// SetFaultHandler installs the trap handler used by FlagRecover PTEs.
func (as *AddressSpace) SetFaultHandler(h FaultHandler) { as.fault = h }

// VPN converts a virtual address to this space's page number.
func (as *AddressSpace) VPN(addr int64) uint64 { return uint64(addr) / uint64(as.PageBytes) }

// charge spends CPU time if running inside a simulated process.
func charge(p *sim.Proc, ns int64, meters ...*sim.Meter) {
	if p != nil && ns > 0 {
		p.Busy(ns, meters...)
	}
}

// Mmap maps length bytes of anonymous memory backed by node, eagerly
// populated (the paper's workloads pre-fault their buffers). If p is
// non-nil the population cost (page alloc + PTE install per page) is
// charged to it. Returns the base address.
func (as *AddressSpace) Mmap(p *sim.Proc, length int64, node hw.NodeID, name string) (int64, error) {
	if length <= 0 {
		return 0, fmt.Errorf("vm: mmap length %d", length)
	}
	length = (length + as.PageBytes - 1) &^ (as.PageBytes - 1)
	// Reserve the address range before anything that can yield: frame
	// allocation and cost charging both suspend the proc, and a
	// concurrent Mmap reading the same nextAddr would hand out
	// overlapping VMAs. A failed mmap leaves a hole, which is harmless.
	base := as.nextAddr
	as.nextAddr = base + length + as.PageBytes // guard page
	pages := length / as.PageBytes
	cost := &as.Plat.Cost

	var frames []*phys.Frame
	for i := int64(0); i < pages; i++ {
		f, err := as.Mem.Alloc(node, as.PageBytes)
		if err != nil {
			for _, g := range frames {
				g.RefCount = 0
				as.Mem.Free(g)
			}
			return 0, err
		}
		f.RefCount = 1
		frames = append(frames, f)
	}
	for i, f := range frames {
		addr := base + int64(i)*as.PageBytes
		slot, _ := as.Table.Ensure(as.VPN(addr))
		slot.Store(pagetable.Make(f.ID, pagetable.FlagPresent|pagetable.FlagWrite))
		as.rmapAdd(f.ID, slot, addr)
	}
	charge(p, pages*(cost.PageAlloc+cost.PTEReplace))
	vma := &VMA{Start: base, Length: length, Node: node, Name: name}
	as.vmas = append(as.vmas, vma)
	return base, nil
}

// Munmap unmaps the VMA starting at base, freeing its backing frames.
func (as *AddressSpace) Munmap(p *sim.Proc, base int64) error {
	idx := -1
	for i, v := range as.vmas {
		if v.Start == base {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("%w: munmap(%#x)", ErrNoVMA, base)
	}
	v := as.vmas[idx]
	cost := &as.Plat.Cost
	pages := v.Length / as.PageBytes
	for i := int64(0); i < pages; i++ {
		vpn := as.VPN(v.Start + i*as.PageBytes)
		slot, _ := as.Table.Lookup(vpn)
		if slot == nil {
			continue
		}
		pte := slot.Load()
		if !pte.Has(pagetable.FlagPresent) {
			continue
		}
		slot.Store(0)
		if f, ok := as.Mem.Lookup(pte.Frame()); ok {
			as.rmapRemove(f.ID, slot)
			f.RefCount--
			// File-backed frames stay in the page cache even with no
			// mappings left (drop the cache to reclaim them).
			if f.RefCount == 0 && !f.Pinned && !f.FileBacked {
				as.Mem.Free(f)
			}
		}
		as.DropShadow(vpn)
	}
	charge(p, pages*(cost.PageFree+cost.PTEReplace))
	as.vmas = append(as.vmas[:idx], as.vmas[idx+1:]...)
	return nil
}

// FindVMA returns the VMA covering addr, if any.
func (as *AddressSpace) FindVMA(addr int64) *VMA {
	for _, v := range as.vmas {
		if addr >= v.Start && addr < v.End() {
			return v
		}
	}
	return nil
}

// CheckRegion validates that [addr, addr+length) is page-aligned and
// fully covered by one VMA — the validation the memif driver performs on
// user-supplied request fields before trusting them (Section 4.2).
func (as *AddressSpace) CheckRegion(addr, length int64) error {
	if addr%as.PageBytes != 0 || length <= 0 || length%as.PageBytes != 0 {
		return fmt.Errorf("vm: region %#x+%d not page aligned", addr, length)
	}
	v := as.FindVMA(addr)
	if v == nil || addr+length > v.End() {
		return fmt.Errorf("%w: region %#x+%d", ErrNoVMA, addr, length)
	}
	return nil
}

// FrameAt resolves the frame currently backing addr (nil if unmapped).
func (as *AddressSpace) FrameAt(addr int64) *phys.Frame {
	slot, _ := as.Table.Lookup(as.VPN(addr))
	if slot == nil {
		return nil
	}
	pte := slot.Load()
	if !pte.Has(pagetable.FlagPresent) {
		return nil
	}
	f, _ := as.Mem.Lookup(pte.Frame())
	return f
}

// MigrationGate returns (creating if needed) the completion event that
// accessors blocked on slot's migration PTE wait for. Used by the
// baseline's race prevention.
func (as *AddressSpace) MigrationGate(slot *pagetable.Slot) *sim.Event {
	ev, ok := as.migWaiters[slot]
	if !ok {
		ev = sim.NewEvent(as.Eng)
		as.migWaiters[slot] = ev
	}
	return ev
}

// ReleaseMigrationGate fires the gate for slot, unblocking accessors.
func (as *AddressSpace) ReleaseMigrationGate(slot *pagetable.Slot) {
	if ev, ok := as.migWaiters[slot]; ok {
		delete(as.migWaiters, slot)
		ev.Fire()
	}
}

// touchSlot applies reference semantics to one resolved slot and returns
// the frame to access. It blocks on migration PTEs, traps to the fault
// handler on recover PTEs, and clears the young bit (the reference that
// memif's release CAS detects).
func (as *AddressSpace) touchSlot(p *sim.Proc, addr int64, write bool) (*phys.Frame, error) {
	for attempt := 0; ; attempt++ {
		if attempt > 64 {
			return nil, fmt.Errorf("vm: livelock touching %#x", addr)
		}
		slot, _ := as.Table.Lookup(as.VPN(addr))
		if slot == nil {
			return nil, fmt.Errorf("%w: %#x", ErrBadAddress, addr)
		}
		pte := slot.Load()
		if !pte.Has(pagetable.FlagPresent) {
			return nil, fmt.Errorf("%w: %#x", ErrBadAddress, addr)
		}
		if pte.Has(pagetable.FlagMigration) {
			// Race prevention: block until the migration releases us.
			if p == nil {
				return nil, fmt.Errorf("vm: blocking access to migrating page %#x outside a process", addr)
			}
			gate := as.MigrationGate(slot)
			p.WaitEvent(gate)
			continue
		}
		if pte.Has(pagetable.FlagRecover) && write {
			if as.fault == nil {
				return nil, fmt.Errorf("vm: write fault on %#x with no handler", addr)
			}
			if !as.fault(p, addr, slot, write) {
				return nil, fmt.Errorf("vm: fault handler refused %#x", addr)
			}
			continue
		}
		// Reference: clear young, set dirty on write. CAS so a racing
		// driver release observes exactly one of the orders.
		newPTE := pte.Without(pagetable.FlagYoung)
		if write {
			newPTE = newPTE.With(pagetable.FlagDirty)
		}
		if newPTE != pte {
			if !slot.CompareAndSwap(pte, newPTE) {
				continue
			}
			if pte.Has(pagetable.FlagYoung) {
				as.RaceTouches++
			}
		}
		f, ok := as.Mem.Lookup(pte.Frame())
		if !ok {
			return nil, fmt.Errorf("vm: PTE at %#x references dead frame %d", addr, pte.Frame())
		}
		return f, nil
	}
}

// Touch references one page (a load if write is false, a store
// otherwise) without transferring data. Charges the node's access latency.
func (as *AddressSpace) Touch(p *sim.Proc, addr int64, write bool) error {
	f, err := as.touchSlot(p, addr, write)
	if err != nil {
		return err
	}
	charge(p, as.tlbTouch(addr)+as.Mem.Node(f.Node).LatencyNS)
	return nil
}

// accessTime prices moving n bytes to/from node at streaming bandwidth.
func (as *AddressSpace) accessTime(node hw.NodeID, n int64) int64 {
	bw := as.Mem.Node(node).Bandwidth
	return as.Mem.Node(node).LatencyNS + int64(float64(n)/bw*1e9)
}

// Read copies len(buf) bytes from virtual memory into buf, charging
// virtual time at the backing node's bandwidth. Meters receive the busy
// time.
func (as *AddressSpace) Read(p *sim.Proc, addr int64, buf []byte, meters ...*sim.Meter) error {
	return as.access(p, addr, buf, false, meters...)
}

// Write copies data into virtual memory.
func (as *AddressSpace) Write(p *sim.Proc, addr int64, data []byte, meters ...*sim.Meter) error {
	return as.access(p, addr, data, true, meters...)
}

func (as *AddressSpace) access(p *sim.Proc, addr int64, buf []byte, write bool, meters ...*sim.Meter) error {
	if v := as.FindVMA(addr); v != nil {
		v.TouchedBytes += int64(len(buf))
	}
	off := int64(0)
	for off < int64(len(buf)) {
		pageOff := (addr + off) % as.PageBytes
		n := as.PageBytes - pageOff
		if rem := int64(len(buf)) - off; n > rem {
			n = rem
		}
		f, err := as.touchSlot(p, addr+off, write)
		if err != nil {
			return err
		}
		if walk := as.tlbTouch(addr + off); walk > 0 && p != nil {
			p.Busy(walk, meters...)
		}
		if f.Data != nil { // dataless mode carries timing only
			if write {
				copy(f.Data[pageOff:pageOff+n], buf[off:off+n])
			} else {
				copy(buf[off:off+n], f.Data[pageOff:pageOff+n])
			}
		}
		if p != nil {
			t := as.accessTime(f.Node, n)
			if as.MonitorTax > 0 {
				t += int64(float64(t) * as.MonitorTax)
			}
			p.Busy(t, meters...)
		}
		off += n
	}
	return nil
}

// InvalidatePage accounts one per-page TLB shootdown: the direct flush
// cost is charged by the caller's cost table; here the cached
// translation is dropped so the owner pays the refill walk on its next
// access (the indirect cost).
func (as *AddressSpace) InvalidatePage(vpn uint64) {
	as.TLBFlushes++
	if as.TLB != nil {
		as.TLB.Invalidate(vpn)
	}
}

// tlbTouch consults the modelled TLB (if any) for the page containing
// addr and returns the extra walk time to charge.
func (as *AddressSpace) tlbTouch(addr int64) int64 {
	if as.TLB == nil {
		return 0
	}
	if as.TLB.Lookup(as.VPN(addr)) {
		return 0
	}
	return as.Plat.Cost.TLBMissWalk
}

// MigClaim marks n pages starting at vpn as having an in-flight
// migration, the role the page lock plays for migrate_pages in Linux. It
// fails (claiming nothing) if any page is already claimed, so two movers
// — say, an application promotion and a swap daemon eviction — can never
// migrate the same page concurrently.
func (as *AddressSpace) MigClaim(vpn uint64, n int) bool {
	for i := 0; i < n; i++ {
		if as.migClaims[vpn+uint64(i)] {
			return false
		}
	}
	for i := 0; i < n; i++ {
		as.migClaims[vpn+uint64(i)] = true
	}
	return true
}

// MigRelease drops the claim on n pages starting at vpn.
func (as *AddressSpace) MigRelease(vpn uint64, n int) {
	for i := 0; i < n; i++ {
		delete(as.migClaims, vpn+uint64(i))
	}
}

// FlushTLBPage accounts one per-page TLB flush and charges its cost.
func (as *AddressSpace) FlushTLBPage(p *sim.Proc, meters ...*sim.Meter) {
	as.TLBFlushes++
	charge(p, as.Plat.Cost.TLBFlushPage, meters...)
}

// shadowCopy records a retained frame holding a still-valid copy of a
// page's contents, taken when the page last migrated away from it. The
// copy is valid only while the page's PTE still maps frame `of` and the
// page has stayed clean; the transactional prepare path checks both.
type shadowCopy struct {
	frame *phys.Frame  // the retained (slow-tier) copy
	of    phys.FrameID // the frame the page mapped when the copy was taken
}

// SetShadow retains frame as vpn's shadow copy, valid while the page
// keeps mapping `of` and stays clean. Any previous shadow is dropped.
func (as *AddressSpace) SetShadow(vpn uint64, frame *phys.Frame, of phys.FrameID) {
	as.DropShadow(vpn)
	as.shadows[vpn] = shadowCopy{frame: frame, of: of}
}

// ShadowAt returns vpn's shadow frame and the frame ID the copy was
// taken against, or (nil, 0) if none is registered.
func (as *AddressSpace) ShadowAt(vpn uint64) (*phys.Frame, phys.FrameID) {
	sc, ok := as.shadows[vpn]
	if !ok {
		return nil, 0
	}
	return sc.frame, sc.of
}

// TakeShadow removes and returns vpn's shadow frame without freeing it —
// the zero-copy commit path re-installs the frame into the PTE.
func (as *AddressSpace) TakeShadow(vpn uint64) *phys.Frame {
	sc, ok := as.shadows[vpn]
	if !ok {
		return nil
	}
	delete(as.shadows, vpn)
	return sc.frame
}

// DropShadow discards vpn's shadow copy, freeing the frame if nothing
// else holds it.
func (as *AddressSpace) DropShadow(vpn uint64) {
	sc, ok := as.shadows[vpn]
	if !ok {
		return
	}
	delete(as.shadows, vpn)
	f := sc.frame
	if f.RefCount == 0 && !f.Pinned && !f.FileBacked {
		as.Mem.Free(f)
	}
}

// Shadows reports how many shadow copies are currently retained.
func (as *AddressSpace) Shadows() int { return len(as.shadows) }

// ScanAccessBits samples reference and dirty state over n pages starting
// at vpn, Nomad-style: a page whose FlagYoung is *absent* was referenced
// since the previous pass (accesses clear young — the race-detection
// discipline of touchSlot), and the scan re-arms young so the next pass
// sees fresh information. Pages with an active migration claim or a
// migration/recover PTE are skipped — rewriting their young bit could
// reconstruct the driver's installed PTE and mask a real race. Returns
// how many pages were referenced, dirty, and actually sampled. Walk and
// PTE-update costs are charged to p.
func (as *AddressSpace) ScanAccessBits(p *sim.Proc, vpn uint64, n int, meters ...*sim.Meter) (referenced, dirty, sampled int) {
	cost := &as.Plat.Cost
	var casCost int64
	for i := 0; i < n; i++ {
		v := vpn + uint64(i)
		if as.migClaims[v] {
			continue
		}
		slot, _ := as.Table.Lookup(v)
		if slot == nil {
			continue
		}
		pte := slot.Load()
		if !pte.Has(pagetable.FlagPresent) ||
			pte.Has(pagetable.FlagMigration) || pte.Has(pagetable.FlagRecover) {
			continue
		}
		sampled++
		if !pte.Has(pagetable.FlagYoung) {
			referenced++
		}
		if pte.Has(pagetable.FlagDirty) {
			dirty++
		}
		if armed := pte.With(pagetable.FlagYoung); armed != pte {
			if slot.CompareAndSwap(pte, armed) {
				casCost += cost.PTECas
			}
		}
	}
	walk := cost.PageLookupVertical
	if n > 1 {
		walk += int64(n-1) * cost.PageLookupHorizontal
	}
	charge(p, walk+casCost, meters...)
	return referenced, dirty, sampled
}
