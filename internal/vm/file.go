package vm

import (
	"fmt"

	"memif/internal/hw"
	"memif/internal/pagetable"
	"memif/internal/phys"
	"memif/internal/sim"
)

// File models an in-memory (tmpfs-like) file whose pages live in a
// machine-wide page cache. The paper's prototype "can only move
// anonymous pages but not pages backed by files" (Section 6.7); with the
// page cache participating in the reverse map, migration rebinds the
// cache entry alongside every PTE, so file-backed pages move like any
// other.
//
// Pages are materialized in the cache on first mapping and stay cached
// (like the kernel's page cache) until Drop. There is no backing store
// to write back to — the cache *is* the file's contents.
type File struct {
	mem       *phys.Memory
	rmap      *Rmap
	name      string
	size      int64
	pageBytes int64
	cache     map[int64]phys.FrameID // page index -> cached frame
}

// NewFile creates an empty file of the given size whose pages will be
// cached on node when first touched.
func NewFile(mem *phys.Memory, rmap *Rmap, name string, size, pageBytes int64) *File {
	if size <= 0 || size%pageBytes != 0 {
		panic(fmt.Sprintf("vm: file size %d not page aligned", size))
	}
	return &File{
		mem:       mem,
		rmap:      rmap,
		name:      name,
		size:      size,
		pageBytes: pageBytes,
		cache:     make(map[int64]phys.FrameID),
	}
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Size returns the file's length in bytes.
func (f *File) Size() int64 { return f.size }

// CachedPages reports how many pages are currently in the cache.
func (f *File) CachedPages() int { return len(f.cache) }

// frameFor returns (materializing if needed) the cache frame for page
// idx, allocated on node.
func (f *File) frameFor(idx int64, node hw.NodeID) (*phys.Frame, error) {
	if id, ok := f.cache[idx]; ok {
		if fr, live := f.mem.Lookup(id); live {
			return fr, nil
		}
		delete(f.cache, idx) // stale entry (dropped elsewhere)
	}
	fr, err := f.mem.Alloc(node, f.pageBytes)
	if err != nil {
		return nil, err
	}
	fr.FileBacked = true
	f.cache[idx] = fr.ID
	if f.rmap != nil {
		f.rmap.AddCacheRef(fr.ID, f, idx)
	}
	return fr, nil
}

// FrameAt returns the cached frame for the page containing off, if any.
func (f *File) FrameAt(off int64) *phys.Frame {
	id, ok := f.cache[off/f.pageBytes]
	if !ok {
		return nil
	}
	fr, _ := f.mem.Lookup(id)
	return fr
}

// Drop evicts the page cache: every unmapped, unpinned page is freed.
// Mapped pages stay (like the kernel refusing to reclaim mapped cache).
func (f *File) Drop() {
	for idx, id := range f.cache {
		fr, ok := f.mem.Lookup(id)
		if !ok {
			delete(f.cache, idx)
			continue
		}
		if fr.RefCount == 0 && !fr.Pinned {
			if f.rmap != nil {
				f.rmap.DropCacheRef(fr.ID)
			}
			fr.FileBacked = false
			f.mem.Free(fr)
			delete(f.cache, idx)
		}
	}
}

// rebind moves the cache entry for page idx to a new frame (called by
// the reverse map when a migration replaces the backing frame).
func (f *File) rebind(idx int64, from, to *phys.Frame) {
	if f.cache[idx] == from.ID {
		f.cache[idx] = to.ID
		from.FileBacked = false
		to.FileBacked = true
	}
}

// MmapFile maps [offset, offset+length) of file into the address space
// (a MAP_SHARED file mapping): the PTEs reference the page-cache frames,
// so every process mapping the file sees the same bytes, and migration
// keeps cache and mappings coherent through the reverse map.
func (as *AddressSpace) MmapFile(p *sim.Proc, file *File, offset, length int64) (int64, error) {
	if as.Rmap == nil || as.Rmap != file.rmap {
		return 0, fmt.Errorf("vm: file mappings require the file and space to share an Rmap")
	}
	if file.pageBytes != as.PageBytes {
		return 0, fmt.Errorf("vm: file page size %d != space page size %d", file.pageBytes, as.PageBytes)
	}
	if offset < 0 || length <= 0 || offset%as.PageBytes != 0 ||
		length%as.PageBytes != 0 || offset+length > file.size {
		return 0, fmt.Errorf("vm: bad file mapping [%d,+%d) of %d", offset, length, file.size)
	}
	base := as.nextAddr
	pages := length / as.PageBytes
	cost := &as.Plat.Cost
	for i := int64(0); i < pages; i++ {
		fr, err := file.frameFor(offset/as.PageBytes+i, hw.NodeSlow)
		if err != nil {
			return 0, err
		}
		addr := base + i*as.PageBytes
		slot, _ := as.Table.Ensure(as.VPN(addr))
		slot.Store(pagetable.Make(fr.ID, pagetable.FlagPresent|pagetable.FlagWrite))
		fr.RefCount++
		as.rmapAdd(fr.ID, slot, addr)
	}
	charge(p, pages*(cost.PageAlloc/2+cost.PTEReplace)) // cache hit or fill
	as.vmas = append(as.vmas, &VMA{Start: base, Length: length, Node: hw.NodeSlow, Name: "file:" + file.name})
	as.nextAddr = base + length + as.PageBytes
	return base, nil
}
