package vm

import (
	"bytes"
	"testing"

	"memif/internal/hw"
	"memif/internal/pagetable"
	"memif/internal/phys"
	"memif/internal/sim"
)

func setupShared() (*sim.Engine, *AddressSpace, *AddressSpace) {
	eng := sim.NewEngine()
	plat := hw.KeyStoneII()
	mem := phys.New(plat)
	rmap := NewRmap()
	a := New(eng, plat, mem, 4096)
	b := New(eng, plat, mem, 4096)
	a.Rmap, b.Rmap = rmap, rmap
	return eng, a, b
}

func TestRmapTracksMmap(t *testing.T) {
	eng, a, _ := setupShared()
	eng.Spawn("p", func(p *sim.Proc) {
		base, _ := a.Mmap(p, 2*4096, hw.NodeSlow, "w")
		f := a.FrameAt(base)
		ms := a.Rmap.Lookup(f.ID)
		if len(ms) != 1 || ms[0].AS != a || ms[0].Addr != base {
			t.Errorf("rmap = %+v", ms)
		}
		a.Munmap(p, base)
		if len(a.Rmap.Lookup(f.ID)) != 0 {
			t.Error("rmap entry survived munmap")
		}
	})
	eng.Run()
}

func TestShareFromMapsSameFrames(t *testing.T) {
	eng, a, b := setupShared()
	eng.Spawn("p", func(p *sim.Proc) {
		const n = 4 * 4096
		base, _ := a.Mmap(p, n, hw.NodeSlow, "w")
		data := bytes.Repeat([]byte{0xAB}, n)
		a.Write(p, base, data)

		shared, err := b.ShareFrom(p, a, base, n)
		if err != nil {
			t.Fatalf("ShareFrom: %v", err)
		}
		// Same frames, visible data, refcount 2.
		for i := int64(0); i < 4; i++ {
			fa, fb := a.FrameAt(base+i*4096), b.FrameAt(shared+i*4096)
			if fa != fb {
				t.Fatalf("page %d maps different frames", i)
			}
			if fa.RefCount != 2 {
				t.Fatalf("page %d refcount = %d", i, fa.RefCount)
			}
			if len(a.Rmap.Lookup(fa.ID)) != 2 {
				t.Fatalf("page %d rmap entries = %d", i, len(a.Rmap.Lookup(fa.ID)))
			}
		}
		got := make([]byte, n)
		b.Read(p, shared, got)
		if !bytes.Equal(got, data) {
			t.Error("shared mapping reads different data")
		}
		// A write through b is visible through a.
		b.Write(p, shared, []byte{0x11})
		var one [1]byte
		a.Read(p, base, one[:])
		if one[0] != 0x11 {
			t.Error("write through shared mapping not visible")
		}
	})
	eng.Run()
}

func TestShareFromValidation(t *testing.T) {
	eng, a, b := setupShared()
	eng.Spawn("p", func(p *sim.Proc) {
		base, _ := a.Mmap(p, 4096, hw.NodeSlow, "w")
		if _, err := b.ShareFrom(p, a, 0xbad000, 4096); err == nil {
			t.Error("sharing unmapped region succeeded")
		}
		// Page size mismatch.
		c := New(eng, a.Plat, a.Mem, 65536)
		c.Rmap = a.Rmap
		if _, err := c.ShareFrom(p, a, base, 4096); err == nil {
			t.Error("page-size mismatch accepted")
		}
		// Missing common rmap.
		d := New(eng, a.Plat, a.Mem, 4096)
		if _, err := d.ShareFrom(p, a, base, 4096); err == nil {
			t.Error("sharing without a common rmap accepted")
		}
	})
	eng.Run()
}

func TestMunmapSharedKeepsFrameAlive(t *testing.T) {
	eng, a, b := setupShared()
	eng.Spawn("p", func(p *sim.Proc) {
		base, _ := a.Mmap(p, 4096, hw.NodeSlow, "w")
		a.Write(p, base, []byte{9})
		shared, _ := b.ShareFrom(p, a, base, 4096)
		f := a.FrameAt(base)

		if err := a.Munmap(p, base); err != nil {
			t.Fatal(err)
		}
		if f.RefCount != 1 {
			t.Errorf("refcount after first munmap = %d", f.RefCount)
		}
		var buf [1]byte
		if err := b.Read(p, shared, buf[:]); err != nil || buf[0] != 9 {
			t.Errorf("survivor mapping broken: %v %d", err, buf[0])
		}
		if err := b.Munmap(p, shared); err != nil {
			t.Fatal(err)
		}
		if a.Mem.Used(hw.NodeSlow) != 0 {
			t.Error("frame leaked after last munmap")
		}
	})
	eng.Run()
}

func TestRmapMove(t *testing.T) {
	r := NewRmap()
	var s1, s2 pagetable.Slot
	fa := &phys.Frame{ID: 1}
	fb := &phys.Frame{ID: 7}
	r.Add(1, Mapping{Slot: &s1})
	r.Add(1, Mapping{Slot: &s2})
	r.Move(fa, fb)
	if len(r.Lookup(1)) != 0 {
		t.Error("old frame still has mappings")
	}
	if len(r.Lookup(7)) != 2 {
		t.Errorf("new frame has %d mappings, want 2", len(r.Lookup(7)))
	}
	r.Remove(7, &s1)
	if len(r.Lookup(7)) != 1 {
		t.Error("remove failed")
	}
	r.Remove(7, &s2)
	if len(r.Lookup(7)) != 0 {
		t.Error("final remove failed")
	}
	// Removing from an unknown frame is a no-op.
	r.Remove(42, &s1)
}
