package hw

import (
	"testing"
	"testing/quick"
)

func TestKeyStoneIIMatchesTable2(t *testing.T) {
	p := KeyStoneII()
	if p.Cores != 4 {
		t.Errorf("cores = %d, want 4", p.Cores)
	}
	fast, slow := p.Node(NodeFast), p.Node(NodeSlow)
	if fast.Capacity != 6<<20 {
		t.Errorf("fast capacity = %d, want 6 MB", fast.Capacity)
	}
	if fast.Bandwidth != 24.0e9 {
		t.Errorf("fast bandwidth = %g, want 24 GB/s", fast.Bandwidth)
	}
	if slow.Capacity != 8<<30 {
		t.Errorf("slow capacity = %d, want 8 GB", slow.Capacity)
	}
	if slow.Bandwidth != 6.2e9 {
		t.Errorf("slow bandwidth = %g, want 6.2 GB/s", slow.Bandwidth)
	}
	if p.DMA.Controllers != 6 || p.DMA.ParamSlots != 512 {
		t.Errorf("DMA = %+v, want 6 TCs / 512 slots", p.DMA)
	}
}

func TestCostModelCalibration(t *testing.T) {
	c := KeyStoneII().Cost
	// Section 2.2: ~15 µs per 4 KB page, of which ~4 µs is copy.
	perPage := c.PageLookupVertical + c.RmapBook + // prep
		c.PageAlloc + c.PTEReplace + c.TLBFlushPage + // remap
		c.CopyNS(Page4K, Page4K) + // copy
		c.PTEReplace + c.TLBFlushPage + c.PageFree + c.RmapBook // release
	if perPage < 13_000 || perPage > 16_000 {
		t.Errorf("baseline per-page cost = %d ns, want ~15 µs", perPage)
	}
	copyNS := c.CopyNS(Page4K, Page4K)
	if copyNS < 3_000 || copyNS > 5_000 {
		t.Errorf("4KB copy = %d ns, want ~4 µs", copyNS)
	}
	// Section 5.3: full descriptor config 4-5 µs; reuse cuts the write
	// cost by ~4x.
	if c.DescWriteFull < 4_000 || c.DescWriteFull > 5_000 {
		t.Errorf("DescWriteFull = %d, want 4-5 µs", c.DescWriteFull)
	}
	ratio := float64(c.DescWriteFull) / float64(c.DescWriteReused)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("desc write reuse ratio = %.1f, want ~4x", ratio)
	}
}

func TestCopyNS(t *testing.T) {
	c := KeyStoneII().Cost
	if c.CopyNS(0, Page4K) != 0 {
		t.Error("zero-byte copy has nonzero cost")
	}
	if c.CopyNS(-5, Page4K) != 0 {
		t.Error("negative copy has nonzero cost")
	}
	// Two pages cost two bases plus bandwidth time.
	one := c.CopyNS(Page4K, Page4K)
	two := c.CopyNS(2*Page4K, Page4K)
	if two != 2*one {
		t.Errorf("2-page copy = %d, want %d", two, 2*one)
	}
}

func TestDMATransferClippedByNodes(t *testing.T) {
	p := KeyStoneII()
	// slow->fast is bounded by the DMA engine (5.5 < 6.2 < 24).
	ns := p.DMATransferNS(1<<20, NodeSlow, NodeFast)
	want := p.DMA.StartupNS + int64(float64(1<<20)/p.DMA.Bandwidth*1e9)
	if ns != want {
		t.Errorf("slow->fast transfer = %d, want %d", ns, want)
	}
	// A node slower than the engine clips the rate.
	p.Nodes[0].Bandwidth = 1e9
	ns = p.DMATransferNS(1<<20, NodeSlow, NodeFast)
	want = p.DMA.StartupNS + int64(float64(1<<20)/1e9*1e9)
	if ns != want {
		t.Errorf("clipped transfer = %d, want %d", ns, want)
	}
	if p.DMATransferNS(0, NodeSlow, NodeFast) != p.DMA.StartupNS {
		t.Error("zero-byte transfer should cost just the startup")
	}
}

func TestDMATransferMonotonic(t *testing.T) {
	p := KeyStoneII()
	prop := func(a, b uint32) bool {
		x, y := int64(a%(1<<26)), int64(b%(1<<26))
		if x > y {
			x, y = y, x
		}
		return p.DMATransferNS(x, NodeSlow, NodeFast) <= p.DMATransferNS(y, NodeSlow, NodeFast)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeLookupPanicsOnUnknown(t *testing.T) {
	p := KeyStoneII()
	defer func() {
		if recover() == nil {
			t.Error("Node(99) did not panic")
		}
	}()
	p.Node(NodeID(99))
}

func TestXeonHasNoDMA(t *testing.T) {
	p := XeonE5()
	if p.DMA.ParamSlots != 0 {
		t.Errorf("Xeon exposes %d DMA slots, want 0", p.DMA.ParamSlots)
	}
	if p.Cores != 16 {
		t.Errorf("Xeon cores = %d, want 2x8", p.Cores)
	}
}
