// Package hw models the hardware platform: heterogeneous memory nodes,
// CPU cores, the DMA engine's envelope parameters, and the cost model that
// assigns virtual-time prices to kernel operations.
//
// The default platform is the TI KeyStone II system-on-chip the paper
// prototypes on (Table 2): four Cortex-A15 cores, a 6 MB on-chip MSMC SRAM
// node measured at 24.0 GB/s, an 8 GB DDR3 node measured at 6.2 GB/s, and
// the EDMA3 engine with 512 transfer descriptors. A second preset models
// the 2x8-core Xeon E5-4650 NUMA machine used in Section 2.2.
//
// All costs live in one CostModel struct so experiments (and ablations)
// can perturb a single knob without touching mechanism code.
package hw

import "fmt"

// NodeID identifies a memory node (pseudo NUMA node). The paper abstracts
// each heterogeneous memory as one node.
type NodeID int

const (
	// NodeSlow is the large, slow node (DDR3 on KeyStone II).
	NodeSlow NodeID = 0
	// NodeFast is the small, fast node (on-chip MSMC SRAM).
	NodeFast NodeID = 1
)

// MemNode describes one memory node.
type MemNode struct {
	ID        NodeID
	Name      string
	Capacity  int64   // bytes
	Bandwidth float64 // sustained bytes/sec for CPU streaming
	LatencyNS int64   // load-to-use latency, ns
}

func (n MemNode) String() string {
	return fmt.Sprintf("node%d(%s, %d MB, %.1f GB/s)", n.ID, n.Name, n.Capacity>>20, n.Bandwidth/1e9)
}

// DMAParams describes the DMA engine envelope (the mechanism lives in
// package dma).
type DMAParams struct {
	Controllers int     // transfer controllers (EDMA3: 6)
	ParamSlots  int     // transfer descriptor entries (EDMA3: 512)
	Bandwidth   float64 // effective memory-to-memory bytes/sec
	StartupNS   int64   // trigger-to-first-byte latency per transfer
	IRQNS       int64   // completion-interrupt delivery latency
}

// CostModel prices kernel operations in nanoseconds of CPU time. The
// values are calibrated against the measurements reported in the paper:
// ~15 us to migrate one 4 KB page on the A15 of which ~4 us is byte copy
// (Section 2.2), 4-5 us to configure one DMA descriptor in uncached I/O
// memory with a 4x reduction when reusing a chain (Section 5.3), and
// "up to a couple of us" for a PTE replace + TLB flush (Section 5.2).
type CostModel struct {
	SyscallEnter int64 // user->kernel crossing
	SyscallExit  int64 // kernel->user crossing

	// Page lookup (Section 5.1).
	PageLookupVertical   int64 // full descent from page-table root to PTE
	PageLookupHorizontal int64 // step to an adjacent PTE during gang lookup

	// Virtual memory manipulation.
	PTEReplace   int64 // write a PTE
	PTECas       int64 // compare-and-swap a PTE (race detection release)
	TLBFlushPage int64 // flush one page from the TLB (direct cost)
	PageAlloc    int64 // allocate one physical page on a node
	PageFree     int64 // free one physical page
	RmapBook     int64 // reverse-map/bookkeeping per page (isolate LRU etc.)

	// DMA engine configuration (Section 5.3).
	DescParamCalc   int64 // compute the 12 transfer parameters
	DescWriteFull   int64 // write a whole descriptor to uncached I/O memory
	DescWriteReused int64 // rewrite only src+dst of a reused descriptor
	SGListInit      int64 // per-request scatter-gather list assembly

	// Asynchronous interface machinery (Sections 4, 5.4).
	QueueOp       int64 // one lock-free queue operation
	NotifyEnqueue int64 // post one completion notification
	IRQEntry      int64 // interrupt entry/exit overhead
	KthreadWake   int64 // wake the kernel worker thread
	PollCheck     int64 // kernel thread checking DMA status in polling mode

	// TLBMissWalk is the hardware page-walk time on a TLB miss,
	// charged on access paths when an address space models its TLB
	// (the *indirect* flush cost of Section 5.2).
	TLBMissWalk int64

	// Byte copy by CPU (the baseline's "copying bytes" cost).
	CPUCopyBandwidth float64 // bytes/sec of kernel memcpy
	CPUCopyPageBase  int64   // fixed per-page startup (cache effects)

	// Baseline-only batching overhead: fixed cost per migration syscall
	// (VMA walk, policy checks, LRU isolation setup).
	MigrateSyscallBase int64
}

// CopyNS returns the CPU time to memcpy n bytes organized as pages of
// pageBytes each.
func (c *CostModel) CopyNS(n int64, pageBytes int64) int64 {
	if n <= 0 {
		return 0
	}
	pages := (n + pageBytes - 1) / pageBytes
	return pages*c.CPUCopyPageBase + int64(float64(n)/c.CPUCopyBandwidth*1e9)
}

// Platform bundles the machine description.
type Platform struct {
	Name  string
	Cores int
	Nodes []MemNode
	DMA   DMAParams
	Cost  CostModel
}

// Node returns the description of node id.
func (pl *Platform) Node(id NodeID) MemNode {
	for _, n := range pl.Nodes {
		if n.ID == id {
			return n
		}
	}
	panic(fmt.Sprintf("hw: unknown node %d", id))
}

// DMATransferNS returns the virtual time for the DMA engine to move n
// bytes from src to dst: the engine's effective bandwidth clipped by both
// endpoints' node bandwidths, plus the per-transfer startup.
func (pl *Platform) DMATransferNS(n int64, src, dst NodeID) int64 {
	if n <= 0 {
		return pl.DMA.StartupNS
	}
	bw := pl.DMA.Bandwidth
	if b := pl.Node(src).Bandwidth; b < bw {
		bw = b
	}
	if b := pl.Node(dst).Bandwidth; b < bw {
		bw = b
	}
	return pl.DMA.StartupNS + int64(float64(n)/bw*1e9)
}

// KeyStoneII returns the paper's test platform (Table 2), with the cost
// model calibrated to the per-operation measurements reported in
// Sections 2.2, 5.2 and 5.3.
func KeyStoneII() *Platform {
	return &Platform{
		Name:  "TI KeyStone II (4x Cortex-A15 @ 1.2 GHz)",
		Cores: 4,
		Nodes: []MemNode{
			{ID: NodeSlow, Name: "DDR3-1600", Capacity: 8 << 30, Bandwidth: 6.2e9, LatencyNS: 110},
			{ID: NodeFast, Name: "MSMC-SRAM", Capacity: 6 << 20, Bandwidth: 24.0e9, LatencyNS: 25},
		},
		DMA: DMAParams{
			Controllers: 6,
			ParamSlots:  512,
			Bandwidth:   5.5e9, // effective m2m, below the DDR3 read limit
			StartupNS:   900,
			IRQNS:       600,
		},
		Cost: CostModel{
			SyscallEnter: 350,
			SyscallExit:  300,

			PageLookupVertical:   1200,
			PageLookupHorizontal: 150,

			PTEReplace:   900,
			PTECas:       300,
			TLBFlushPage: 1500,
			PageAlloc:    1800,
			PageFree:     1000,
			RmapBook:     700,

			DescParamCalc:   700,
			DescWriteFull:   4400, // 4-5 us measured (Section 5.3)
			DescWriteReused: 1100, // "reducing the second overhead by 4x"
			SGListInit:      1000,

			QueueOp:       120,
			NotifyEnqueue: 250,
			IRQEntry:      1500,
			KthreadWake:   2000,
			PollCheck:     250,

			TLBMissWalk: 300,

			CPUCopyBandwidth: 2.0e9,
			CPUCopyPageBase:  2000, // 4 KB copy ~ 4 us total (Section 2.2)

			MigrateSyscallBase: 2500,
		},
	}
}

// XeonE5 returns the 2x8-core Xeon E5-4650 NUMA machine of Section 2.2,
// calibrated so that migrating 1500 4 KB pages in one mbind() runs at
// ~0.66 GB/s and migrating one million pages at ~1.41 GB/s (the large
// fixed per-syscall cost amortizes only at extreme batch sizes).
func XeonE5() *Platform {
	return &Platform{
		Name:  "2x Xeon E5-4650 NUMA",
		Cores: 16,
		Nodes: []MemNode{
			{ID: NodeSlow, Name: "DDR3-node0", Capacity: 64 << 30, Bandwidth: 38e9, LatencyNS: 95},
			{ID: NodeFast, Name: "DDR3-node1", Capacity: 64 << 30, Bandwidth: 38e9, LatencyNS: 95},
		},
		DMA: DMAParams{ // no usable m2m DMA engine is exposed on this box
			Controllers: 0,
			ParamSlots:  0,
			Bandwidth:   0,
			StartupNS:   0,
			IRQNS:       0,
		},
		Cost: CostModel{
			SyscallEnter: 120,
			SyscallExit:  100,

			PageLookupVertical:   300,
			PageLookupHorizontal: 60,

			PTEReplace:   150,
			PTECas:       80,
			TLBFlushPage: 400,
			PageAlloc:    350,
			PageFree:     250,
			RmapBook:     150,

			DescParamCalc:   0,
			DescWriteFull:   0,
			DescWriteReused: 0,
			SGListInit:      0,

			QueueOp:       60,
			NotifyEnqueue: 120,
			IRQEntry:      700,
			KthreadWake:   900,
			PollCheck:     120,

			TLBMissWalk: 110,

			CPUCopyBandwidth: 10e9,
			CPUCopyPageBase:  150,

			MigrateSyscallBase: 4_900_000, // ~4.9 ms per mbind (policy+VMA work)
		},
	}
}

// PageSize constants used throughout the evaluation.
const (
	Page4K  int64 = 4 << 10
	Page64K int64 = 64 << 10
	Page2M  int64 = 2 << 20
)
