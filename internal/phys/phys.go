// Package phys models physical memory: frames with real backing bytes,
// page descriptors, and a per-node allocator over the platform's
// heterogeneous memory nodes (the pseudo-NUMA abstraction of Section 1).
//
// Frames carry actual data so that replication and migration can be
// verified byte-for-byte; backing storage is materialized lazily, letting
// a simulated 8 GB DDR3 node exist without 8 GB of host memory.
package phys

import (
	"errors"
	"fmt"

	"memif/internal/hw"
)

// ErrNoMemory is returned when a node cannot satisfy an allocation. The
// fast node on KeyStone II holds only 6 MB, so callers must expect this.
var ErrNoMemory = errors.New("phys: out of memory on node")

// FrameID identifies a frame within one Memory instance. IDs are dense
// and never reused, so a stale reference is detectable.
type FrameID uint32

// NoFrame is the zero FrameID, never assigned to a real frame.
const NoFrame FrameID = 0

// Frame is a physical page frame plus its page descriptor state.
type Frame struct {
	ID   FrameID
	Node hw.NodeID
	Addr int64 // physical address, used for DMA descriptors
	Size int64 // bytes
	Data []byte

	// Page-descriptor state.
	RefCount   int  // mappings referencing the frame
	Pinned     bool // pinned for an in-flight DMA transfer
	FileBacked bool // owned by a file's page cache (vm.File)
	freed      bool
}

func (f *Frame) String() string {
	return fmt.Sprintf("frame%d@node%d[%#x,+%d]", f.ID, f.Node, f.Addr, f.Size)
}

// nodeState tracks one memory node's allocation state. Addresses are
// assigned bump-pointer style and recycled through per-size free lists
// (frames of one request share a size, so recycling is exact).
type nodeState struct {
	desc     hw.MemNode
	nextAddr int64
	used     int64
	free     map[int64][]*Frame
}

// Stats are allocation counters for one node.
type Stats struct {
	Allocs, Frees, Failures int64
	Used, Capacity          int64
}

// Memory is the machine's physical memory: all nodes plus the frame
// registry.
type Memory struct {
	nodes    map[hw.NodeID]*nodeState
	frames   map[FrameID]*Frame
	nextID   FrameID
	stats    map[hw.NodeID]*Stats
	dataless bool
}

// DisableData switches the memory into dataless mode: frames carry no
// backing bytes and Copy becomes a no-op. Timing-only experiments over
// very large regions (e.g. the million-page mbind of Section 2.2) use
// this to avoid materializing gigabytes on the host. Accessing frame
// data through vm in this mode is a caller bug.
func (m *Memory) DisableData() { m.dataless = true }

// New builds the physical memory of a platform. Node physical address
// bases mimic KeyStone II, where the SRAM sits below the DDR banks (the
// boot-allocator hazard discussed in Section 6.1).
func New(plat *hw.Platform) *Memory {
	m := &Memory{
		nodes:  make(map[hw.NodeID]*nodeState),
		frames: make(map[FrameID]*Frame),
		stats:  make(map[hw.NodeID]*Stats),
	}
	base := int64(0x0C00_0000) // SRAM-like low base
	for _, n := range plat.Nodes {
		st := &nodeState{desc: n, nextAddr: base, free: make(map[int64][]*Frame)}
		m.nodes[n.ID] = st
		m.stats[n.ID] = &Stats{Capacity: n.Capacity}
		base += n.Capacity
		if rem := base % (1 << 30); rem != 0 { // align next node's base
			base += (1 << 30) - rem
		}
		base += 1 << 30 // guard gap between nodes
	}
	return m
}

// Node returns the descriptor of node id.
func (m *Memory) Node(id hw.NodeID) hw.MemNode {
	st, ok := m.nodes[id]
	if !ok {
		panic(fmt.Sprintf("phys: unknown node %d", id))
	}
	return st.desc
}

// NodeStats returns a snapshot of node id's allocation counters.
func (m *Memory) NodeStats(id hw.NodeID) Stats {
	s := *m.stats[id]
	s.Used = m.nodes[id].used
	return s
}

// Alloc allocates one frame of size bytes on the given node. The frame's
// data is zeroed (as anonymous pages are).
func (m *Memory) Alloc(node hw.NodeID, size int64) (*Frame, error) {
	if size <= 0 {
		return nil, fmt.Errorf("phys: invalid frame size %d", size)
	}
	st, ok := m.nodes[node]
	if !ok {
		return nil, fmt.Errorf("phys: unknown node %d", node)
	}
	stats := m.stats[node]
	if fl := st.free[size]; len(fl) > 0 {
		f := fl[len(fl)-1]
		st.free[size] = fl[:len(fl)-1]
		f.freed = false
		f.RefCount = 0
		f.Pinned = false
		f.FileBacked = false
		for i := range f.Data {
			f.Data[i] = 0
		}
		st.used += size
		stats.Allocs++
		return f, nil
	}
	if st.used+size > st.desc.Capacity {
		stats.Failures++
		return nil, fmt.Errorf("%w %d (%s): need %d, used %d of %d",
			ErrNoMemory, node, st.desc.Name, size, st.used, st.desc.Capacity)
	}
	m.nextID++
	f := &Frame{
		ID:   m.nextID,
		Node: node,
		Addr: st.nextAddr,
		Size: size,
	}
	if !m.dataless {
		f.Data = make([]byte, size)
	}
	st.nextAddr += size
	st.used += size
	m.frames[f.ID] = f
	stats.Allocs++
	return f, nil
}

// Free returns a frame to its node. Freeing a mapped, pinned, or already
// freed frame is a bug in the caller and panics, the way the kernel would
// BUG_ON it.
func (m *Memory) Free(f *Frame) {
	if f.freed {
		panic(fmt.Sprintf("phys: double free of %v", f))
	}
	if f.RefCount != 0 {
		panic(fmt.Sprintf("phys: freeing mapped %v (refcount %d)", f, f.RefCount))
	}
	if f.Pinned {
		panic(fmt.Sprintf("phys: freeing pinned %v", f))
	}
	if f.FileBacked {
		panic(fmt.Sprintf("phys: freeing page-cache-owned %v", f))
	}
	st := m.nodes[f.Node]
	f.freed = true
	st.used -= f.Size
	st.free[f.Size] = append(st.free[f.Size], f)
	m.stats[f.Node].Frees++
}

// Lookup resolves a FrameID, validating it the way the memif driver
// validates request indices before use (Section 4.2).
func (m *Memory) Lookup(id FrameID) (*Frame, bool) {
	f, ok := m.frames[id]
	if !ok || f.freed {
		return nil, false
	}
	return f, true
}

// Copy moves n bytes of real data between frames (the simulator's stand-in
// for what the CPU memcpy or the DMA engine does physically). Virtual-time
// cost is charged by the caller. In dataless mode it is a no-op.
func Copy(dst, src *Frame, n int64) {
	if n > src.Size || n > dst.Size {
		panic(fmt.Sprintf("phys: copy %d bytes exceeds frames %v -> %v", n, src, dst))
	}
	if dst.Data == nil || src.Data == nil {
		return
	}
	copy(dst.Data[:n], src.Data[:n])
}

// Used reports bytes currently allocated on node id.
func (m *Memory) Used(id hw.NodeID) int64 { return m.nodes[id].used }

// Avail reports bytes currently free on node id.
func (m *Memory) Avail(id hw.NodeID) int64 {
	st := m.nodes[id]
	return st.desc.Capacity - st.used
}
