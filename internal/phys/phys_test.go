package phys

import (
	"errors"
	"testing"
	"testing/quick"

	"memif/internal/hw"
)

func newMem() *Memory { return New(hw.KeyStoneII()) }

func TestAllocBasics(t *testing.T) {
	m := newMem()
	f, err := m.Alloc(hw.NodeFast, 4096)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if f.Node != hw.NodeFast || f.Size != 4096 || len(f.Data) != 4096 {
		t.Errorf("frame = %+v", f)
	}
	if m.Used(hw.NodeFast) != 4096 {
		t.Errorf("Used = %d, want 4096", m.Used(hw.NodeFast))
	}
	m.Free(f)
	if m.Used(hw.NodeFast) != 0 {
		t.Errorf("Used after free = %d, want 0", m.Used(hw.NodeFast))
	}
}

func TestAllocZeroesRecycledFrame(t *testing.T) {
	m := newMem()
	f, _ := m.Alloc(hw.NodeFast, 4096)
	f.Data[100] = 0xAB
	m.Free(f)
	g, _ := m.Alloc(hw.NodeFast, 4096)
	if g != f {
		t.Fatalf("expected frame recycling, got new frame %v", g)
	}
	if g.Data[100] != 0 {
		t.Error("recycled frame not zeroed")
	}
}

func TestAllocExhaustsFastNode(t *testing.T) {
	m := newMem()
	// Fast node is 6 MB; 2 MB frames fit 3 times.
	var frames []*Frame
	for i := 0; i < 3; i++ {
		f, err := m.Alloc(hw.NodeFast, hw.Page2M)
		if err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
		frames = append(frames, f)
	}
	if _, err := m.Alloc(hw.NodeFast, hw.Page2M); !errors.Is(err, ErrNoMemory) {
		t.Errorf("4th 2MB alloc: err = %v, want ErrNoMemory", err)
	}
	st := m.NodeStats(hw.NodeFast)
	if st.Failures != 1 || st.Allocs != 3 {
		t.Errorf("stats = %+v", st)
	}
	for _, f := range frames {
		m.Free(f)
	}
	if _, err := m.Alloc(hw.NodeFast, hw.Page2M); err != nil {
		t.Errorf("alloc after frees: %v", err)
	}
}

func TestNodeAddressRangesDisjoint(t *testing.T) {
	m := newMem()
	a, _ := m.Alloc(hw.NodeSlow, 4096)
	b, _ := m.Alloc(hw.NodeFast, 4096)
	if a.Addr == b.Addr {
		t.Error("frames on different nodes share a physical address")
	}
	// SRAM-style low base: slow node (declared first) gets the low base.
	if a.Addr >= b.Addr {
		t.Errorf("expected node0 base (%#x) below node1 base (%#x)", a.Addr, b.Addr)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	m := newMem()
	f, _ := m.Alloc(hw.NodeFast, 4096)
	m.Free(f)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	m.Free(f)
}

func TestFreeMappedPanics(t *testing.T) {
	m := newMem()
	f, _ := m.Alloc(hw.NodeFast, 4096)
	f.RefCount = 1
	defer func() {
		if recover() == nil {
			t.Error("freeing mapped frame did not panic")
		}
	}()
	m.Free(f)
}

func TestFreePinnedPanics(t *testing.T) {
	m := newMem()
	f, _ := m.Alloc(hw.NodeFast, 4096)
	f.Pinned = true
	defer func() {
		if recover() == nil {
			t.Error("freeing pinned frame did not panic")
		}
	}()
	m.Free(f)
}

func TestLookupValidation(t *testing.T) {
	m := newMem()
	f, _ := m.Alloc(hw.NodeFast, 4096)
	if got, ok := m.Lookup(f.ID); !ok || got != f {
		t.Error("Lookup of live frame failed")
	}
	m.Free(f)
	if _, ok := m.Lookup(f.ID); ok {
		t.Error("Lookup of freed frame succeeded")
	}
	if _, ok := m.Lookup(FrameID(9999)); ok {
		t.Error("Lookup of bogus ID succeeded")
	}
	if _, ok := m.Lookup(NoFrame); ok {
		t.Error("Lookup of NoFrame succeeded")
	}
}

func TestCopyMovesBytes(t *testing.T) {
	m := newMem()
	src, _ := m.Alloc(hw.NodeSlow, 4096)
	dst, _ := m.Alloc(hw.NodeFast, 4096)
	for i := range src.Data {
		src.Data[i] = byte(i * 7)
	}
	Copy(dst, src, 4096)
	for i := range dst.Data {
		if dst.Data[i] != byte(i*7) {
			t.Fatalf("byte %d = %d, want %d", i, dst.Data[i], byte(i*7))
		}
	}
}

func TestCopyOverrunPanics(t *testing.T) {
	m := newMem()
	src, _ := m.Alloc(hw.NodeSlow, 4096)
	dst, _ := m.Alloc(hw.NodeFast, 2048)
	defer func() {
		if recover() == nil {
			t.Error("oversized copy did not panic")
		}
	}()
	Copy(dst, src, 4096)
}

func TestInvalidAllocs(t *testing.T) {
	m := newMem()
	if _, err := m.Alloc(hw.NodeFast, 0); err == nil {
		t.Error("zero-size alloc succeeded")
	}
	if _, err := m.Alloc(hw.NodeFast, -4096); err == nil {
		t.Error("negative-size alloc succeeded")
	}
	if _, err := m.Alloc(hw.NodeID(42), 4096); err == nil {
		t.Error("alloc on unknown node succeeded")
	}
}

// Property: used bytes always equals the sum of live frame sizes, and
// addresses of live frames never overlap.
func TestAllocFreeAccounting(t *testing.T) {
	prop := func(ops []uint8) bool {
		m := newMem()
		var live []*Frame
		var want int64
		for _, op := range ops {
			if op%3 != 0 && len(live) > 0 { // free
				i := int(op) % len(live)
				f := live[i]
				live = append(live[:i], live[i+1:]...)
				want -= f.Size
				m.Free(f)
				continue
			}
			size := int64(4096) * (1 + int64(op%4))
			f, err := m.Alloc(hw.NodeFast, size)
			if err != nil {
				continue // node full: fine
			}
			live = append(live, f)
			want += size
		}
		if m.Used(hw.NodeFast) != want {
			return false
		}
		// Overlap check.
		for i, a := range live {
			for _, b := range live[i+1:] {
				if a.Addr < b.Addr+b.Size && b.Addr < a.Addr+a.Size {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
