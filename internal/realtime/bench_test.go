package realtime

import (
	"fmt"
	"testing"
	"time"
)

// benchCopy measures end-to-end submit→retrieve throughput of size-byte
// copies with depth requests in flight.
func benchCopy(b *testing.B, size, depth int, opts Options) {
	b.Helper()
	d := Open(opts)
	defer d.Close()
	src := make([]byte, size)
	dsts := make([][]byte, depth)
	for i := range dsts {
		dsts[i] = make([]byte, size)
	}
	b.SetBytes(int64(size))
	b.ResetTimer()
	inflight := 0
	for i := 0; i < b.N; i++ {
		for inflight >= depth {
			if r := d.RetrieveCompleted(); r != nil {
				d.FreeRequest(r)
				inflight--
				continue
			}
			d.Poll(time.Second)
		}
		r := d.AllocRequest()
		if r == nil {
			b.Fatal("out of request slots")
		}
		r.Src, r.Dst = src, dsts[i%depth]
		if err := d.Submit(r); err != nil {
			b.Fatal(err)
		}
		inflight++
	}
	for inflight > 0 {
		if r := d.RetrieveCompleted(); r != nil {
			d.FreeRequest(r)
			inflight--
			continue
		}
		d.Poll(time.Second)
	}
}

// Benchmark4MBCopy compares the unchunked single-controller baseline
// against chunked multi-controller transfers for 4 MB requests — the
// acceptance benchmark for the chunking tentpole. On a multi-core host
// the chunked/4-controller variant should beat the baseline by well
// over 1.5×; on a single-core runner the copies serialize and the
// variants converge.
func Benchmark4MBCopy(b *testing.B) {
	const size = 4 << 20
	cases := []struct {
		name string
		opts Options
	}{
		{"unchunked-1ctl", Options{NumReqs: 64, Controllers: 1, ChunkBytes: -1}},
		{"unchunked-4ctl", Options{NumReqs: 64, Controllers: 4, ChunkBytes: -1}},
		{"chunked-4ctl", Options{NumReqs: 64, Controllers: 4, ChunkBytes: 256 << 10}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) { benchCopy(b, size, 1, c.opts) })
	}
}

// BenchmarkPipelined64KB measures small-copy throughput with a deep
// pipeline, where chunking never triggers and the cost is pure
// interface protocol.
func BenchmarkPipelined64KB(b *testing.B) {
	for _, ctl := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("ctl-%d", ctl), func(b *testing.B) {
			benchCopy(b, 64<<10, 16, Options{NumReqs: 64, Controllers: ctl})
		})
	}
}
