package realtime

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// benchCopy measures end-to-end submit→retrieve throughput of size-byte
// copies with depth requests in flight.
func benchCopy(b *testing.B, size, depth int, opts Options) {
	b.Helper()
	d := Open(opts)
	defer d.Close()
	src := make([]byte, size)
	dsts := make([][]byte, depth)
	for i := range dsts {
		dsts[i] = make([]byte, size)
	}
	b.SetBytes(int64(size))
	b.ResetTimer()
	inflight := 0
	for i := 0; i < b.N; i++ {
		for inflight >= depth {
			if r := d.RetrieveCompleted(); r != nil {
				d.FreeRequest(r)
				inflight--
				continue
			}
			d.Poll(time.Second)
		}
		r := d.AllocRequest()
		if r == nil {
			b.Fatal("out of request slots")
		}
		r.Src, r.Dst = src, dsts[i%depth]
		if err := d.Submit(r); err != nil {
			b.Fatal(err)
		}
		inflight++
	}
	for inflight > 0 {
		if r := d.RetrieveCompleted(); r != nil {
			d.FreeRequest(r)
			inflight--
			continue
		}
		d.Poll(time.Second)
	}
}

// Benchmark4MBCopy compares the unchunked single-controller baseline
// against chunked multi-controller transfers for 4 MB requests — the
// acceptance benchmark for the chunking tentpole. On a multi-core host
// the chunked/4-controller variant should beat the baseline by well
// over 1.5×; on a single-core runner the copies serialize and the
// variants converge.
func Benchmark4MBCopy(b *testing.B) {
	const size = 4 << 20
	cases := []struct {
		name string
		opts Options
	}{
		{"unchunked-1ctl", Options{NumReqs: 64, Controllers: 1, ChunkBytes: -1}},
		{"unchunked-4ctl", Options{NumReqs: 64, Controllers: 4, ChunkBytes: -1}},
		{"chunked-4ctl", Options{NumReqs: 64, Controllers: 4, ChunkBytes: 256 << 10}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) { benchCopy(b, size, 1, c.opts) })
	}
}

// BenchmarkPipelined64KB measures small-copy throughput with a deep
// pipeline, where chunking never triggers and the cost is pure
// interface protocol.
func BenchmarkPipelined64KB(b *testing.B) {
	for _, ctl := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("ctl-%d", ctl), func(b *testing.B) {
			benchCopy(b, 64<<10, 16, Options{NumReqs: 64, Controllers: ctl})
		})
	}
}

// benchConcurrentSubmit drives the device with `submitters` goroutines
// issuing size-byte requests in batches of `batch`. Each submitter is a
// closed loop: it keeps a bounded window of requests in flight and reaps
// completions through the batch retrieval path to pace itself, so the
// scheduler is never oversubscribed with spinning pollers. Destination
// buffers are owned per slot (a slot is exclusive from Alloc to Free),
// so any number of requests can be in flight without write races, and
// it does not matter which submitter reaps which completion. Reports
// kicks-per-op so the amortization claims are visible in the output.
func benchConcurrentSubmit(b *testing.B, submitters, size, batch int, opts Options) {
	b.Helper()
	d := Open(opts)
	src := make([]byte, size)
	dsts := make([][]byte, opts.NumReqs)
	for i := range dsts {
		dsts[i] = make([]byte, size)
	}
	window := 4 * batch
	if window < 16 {
		window = 16
	}
	b.SetBytes(int64(size))
	b.ResetTimer()
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		n := b.N / submitters
		if s < b.N%submitters {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			buf := make([]*Request, window)
			pending := make([]*Request, 0, batch)
			// Approximate: reaping may collect a neighbor's completions,
			// but the sum over submitters is exact, so the global
			// in-flight count stays bounded by submitters*window.
			inflight := 0
			reap := func(block bool) {
				for {
					k := d.RetrieveCompletedBatch(buf)
					for i := 0; i < k; i++ {
						d.FreeRequest(buf[i])
					}
					inflight -= k
					if k > 0 || !block {
						return
					}
					d.Poll(10 * time.Millisecond)
				}
			}
			for i := 0; i < n; i++ {
				var r *Request
				for r == nil {
					if r = d.AllocRequest(); r == nil {
						reap(true)
					}
				}
				r.Src, r.Dst = src, dsts[r.idx]
				pending = append(pending, r)
				if len(pending) == batch || i == n-1 {
					if err := d.SubmitBatch(pending); err != nil {
						b.Error(err)
						return
					}
					inflight += len(pending)
					pending = pending[:0]
				}
				for inflight >= window {
					reap(true)
				}
			}
		}(n)
	}
	wg.Wait()
	deadline := time.Now().Add(30 * time.Second)
	buf := make([]*Request, 64)
	for d.Completed() < int64(b.N) {
		if time.Now().After(deadline) {
			b.Fatalf("pipeline stalled: %d of %d complete", d.Completed(), b.N)
		}
		d.Poll(time.Millisecond)
		for k := d.RetrieveCompletedBatch(buf); k > 0; k = d.RetrieveCompletedBatch(buf) {
			for i := 0; i < k; i++ {
				d.FreeRequest(buf[i])
			}
		}
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(d.Kicks())/float64(b.N), "kicks/op")
	}
	d.Close()
}

// BenchmarkStagingShards is the tentpole ablation: submitter goroutines
// × staging shards, 4 KB unbatched requests, so the contended CAS on
// the staging tail is the variable under test.
func BenchmarkStagingShards(b *testing.B) {
	for _, shards := range []int{1, 4} {
		for _, subs := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("shards=%d/submitters=%d", shards, subs), func(b *testing.B) {
				benchConcurrentSubmit(b, subs, 4<<10, 1,
					Options{NumReqs: 512, Controllers: 4, StagingShards: shards})
			})
		}
	}
}

// BenchmarkSmallRequest8Submitters is the acceptance benchmark for the
// sharded pipeline: 8 submitters of 4 KB requests against (a) the
// pre-shard seed configuration — one staging queue, shared unbuffered
// copy channel, unbatched — and (b) the sharded ring pipeline, unbatched
// and batched. The sharded+batched variant is the one held to ≥2× the
// baseline's ops/s, with kicks/op ≤ 1/batch.
func BenchmarkSmallRequest8Submitters(b *testing.B) {
	const size = 4 << 10
	b.Run("baseline-preshard", func(b *testing.B) {
		benchConcurrentSubmit(b, 8, size, 1,
			Options{NumReqs: 512, Controllers: 4, StagingShards: 1, LegacyCopyQueue: true})
	})
	b.Run("sharded", func(b *testing.B) {
		benchConcurrentSubmit(b, 8, size, 1,
			Options{NumReqs: 512, Controllers: 4, StagingShards: 4})
	})
	b.Run("sharded-batched16", func(b *testing.B) {
		benchConcurrentSubmit(b, 8, size, 16,
			Options{NumReqs: 512, Controllers: 4, StagingShards: 4})
	})
	b.Run("sharded-busypoll", func(b *testing.B) {
		benchConcurrentSubmit(b, 8, size, 1,
			Options{NumReqs: 512, Controllers: 4, StagingShards: 4, BusyPoll: true})
	})
}

// BenchmarkSmallRequestAllocs is the zero-allocation gate (run by the
// CI alloc-gate job with -benchmem): one single-chunk 4 KB
// Submit→Retrieve cycle per op, busy-poll on so no channel machinery
// runs, retrieval by spin (Poll lazily allocates its reusable timer, a
// per-device one-time cost that is not part of the hot path under
// test). Must report 0 allocs/op; every steady-state allocation on
// this path is a regression.
func BenchmarkSmallRequestAllocs(b *testing.B) {
	d := Open(Options{
		NumReqs:       16,
		StagingShards: 1,
		BusyPoll:      true,
		BusyPollIdle:  time.Hour,
	})
	defer d.Close()
	src := make([]byte, 4<<10)
	dst := make([]byte, 4<<10)

	// Warm-up outside the measured window: first-use pool fills (poller
	// tokens, shard tokens) and the one blue→red transition.
	for i := 0; i < 64; i++ {
		r := d.AllocRequest()
		r.Src, r.Dst = src, dst
		if err := d.Submit(r); err != nil {
			b.Fatal(err)
		}
		for {
			if got := d.RetrieveCompleted(); got != nil {
				d.FreeRequest(got)
				break
			}
			runtime.Gosched()
		}
	}

	b.SetBytes(4 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := d.AllocRequest()
		if r == nil {
			b.Fatal("out of request slots")
		}
		r.Src, r.Dst = src, dst
		if err := d.Submit(r); err != nil {
			b.Fatal(err)
		}
		for {
			if got := d.RetrieveCompleted(); got != nil {
				d.FreeRequest(got)
				break
			}
			runtime.Gosched()
		}
	}
}

// BenchmarkWorkStealing ablates the dispatch path — per-controller
// rings with stealing against the old shared unbuffered channel — on
// chunked 4 MB transfers, where the channel's one-at-a-time handoff
// throttles the worker hardest.
func BenchmarkWorkStealing(b *testing.B) {
	const size = 4 << 20
	cases := []struct {
		name string
		opts Options
	}{
		{"shared-chan", Options{NumReqs: 64, Controllers: 4, ChunkBytes: 256 << 10, LegacyCopyQueue: true}},
		{"rings-stealing", Options{NumReqs: 64, Controllers: 4, ChunkBytes: 256 << 10}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) { benchCopy(b, size, 4, c.opts) })
	}
}
