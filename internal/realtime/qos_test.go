package realtime

// Unit coverage for the QoS layer: option resolution, the admission
// controller's occupancy thresholds and typed overload error, the
// strict-priority-with-aging dispatch order, the adaptive inline
// threshold retuner, and the context-based poll/drain entry points.

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"memif/internal/rbq"
)

func TestResolveQoSDefaults(t *testing.T) {
	q := resolveQoS(QoSOptions{})
	if q.ClassShares != DefaultClassShares() {
		t.Errorf("zero shares resolved to %v, want defaults %v", q.ClassShares, DefaultClassShares())
	}
	if q.AgingCredit != DefaultAgingCredit {
		t.Errorf("AgingCredit = %d, want %d", q.AgingCredit, DefaultAgingCredit)
	}
	if q.InlineThreshold != DefaultInlineThreshold {
		t.Errorf("InlineThreshold = %d, want %d", q.InlineThreshold, DefaultInlineThreshold)
	}
	if q.RetuneEvery != DefaultRetuneEvery {
		t.Errorf("RetuneEvery = %d, want %d", q.RetuneEvery, DefaultRetuneEvery)
	}

	q = resolveQoS(QoSOptions{
		ClassShares:     [NumClasses]float64{2.5, -1, 0.25},
		InlineThreshold: -1,
	})
	if q.ClassShares[ClassForeground] != 1 {
		t.Errorf("share > 1 clamped to %v, want 1", q.ClassShares[ClassForeground])
	}
	if q.ClassShares[ClassBackground] != DefaultClassShares()[ClassBackground] {
		t.Errorf("negative share resolved to %v, want default", q.ClassShares[ClassBackground])
	}
	if q.ClassShares[ClassScavenger] != 0.25 {
		t.Errorf("explicit share rewritten to %v", q.ClassShares[ClassScavenger])
	}
	if q.InlineThreshold != 0 {
		t.Errorf("negative InlineThreshold resolved to %d, want 0 (disabled)", q.InlineThreshold)
	}
}

func TestClassNames(t *testing.T) {
	for i := 0; i < NumClasses; i++ {
		if ClassName(i) != Class(i).String() {
			t.Errorf("ClassName(%d)=%q != Class.String %q", i, ClassName(i), Class(i).String())
		}
	}
	if Class(9).String() == ClassName(0) {
		t.Error("out-of-range class collided with a real name")
	}
}

// TestAdmitShedsAtClassThreshold drives the admission check directly by
// inflating the in-flight count (submitted-completed): with 8 slots the
// scavenger limit is 4 and the background limit 6, while foreground is
// never shed by admission at all.
func TestAdmitShedsAtClassThreshold(t *testing.T) {
	d := Open(Options{NumReqs: 8, Controllers: 1})
	defer d.Close()

	admit := func(c Class) error { return d.admit(&Request{Class: c}) }
	inFlight := func(n int64) {
		for d.m.submitted.Load()-d.m.completed.Load() < n {
			d.m.submitted.Inc()
		}
	}

	for _, c := range []Class{ClassForeground, ClassBackground, ClassScavenger} {
		if err := admit(c); err != nil {
			t.Fatalf("idle admit(%v): %v", c, err)
		}
	}

	inFlight(4) // scavenger threshold: 0.5 * 8
	if err := admit(ClassScavenger); !errors.Is(err, ErrOverload) {
		t.Errorf("scavenger at 4/8 in flight: err=%v, want ErrOverload", err)
	}
	if err := admit(ClassBackground); err != nil {
		t.Errorf("background at 4/8 in flight: %v, want admitted", err)
	}

	inFlight(6) // background threshold: int(0.85 * 8)
	if err := admit(ClassBackground); !errors.Is(err, ErrOverload) {
		t.Errorf("background at 6/8 in flight: err=%v, want ErrOverload", err)
	}

	inFlight(8) // full slab: foreground admission still never sheds
	if err := admit(ClassForeground); err != nil {
		t.Errorf("foreground at 8/8 in flight: %v, want admitted", err)
	}

	err := admit(ClassScavenger)
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("shed error is %T, want *OverloadError", err)
	}
	if oe.Class != ClassScavenger {
		t.Errorf("OverloadError.Class = %v, want scavenger", oe.Class)
	}
	if oe.RetryAfter < minRetryAfter {
		t.Errorf("RetryAfter = %v, below the %v floor", oe.RetryAfter, minRetryAfter)
	}

	if got := d.m.shed.Load(); got == 0 {
		t.Error("shed counter did not move")
	}
	if got := d.m.classShed[ClassScavenger].Load(); got < 2 {
		t.Errorf("scavenger classShed = %d, want >= 2", got)
	}
	if got := d.m.classShed[ClassForeground].Load(); got != 0 {
		t.Errorf("foreground classShed = %d, want 0", got)
	}
}

func TestAdmitRejectsUnknownClass(t *testing.T) {
	d := Open(Options{NumReqs: 8, Controllers: 1})
	defer d.Close()
	if err := d.admit(&Request{Class: Class(7)}); !errors.Is(err, ErrBadClass) {
		t.Errorf("admit(class 7) = %v, want ErrBadClass", err)
	}
}

// TestRetryAfterTracksLatencyEWMA: the overload hint follows the
// completion-latency EWMA, floored at minRetryAfter.
func TestRetryAfterTracksLatencyEWMA(t *testing.T) {
	d := Open(Options{NumReqs: 8, Controllers: 1})
	defer d.Close()

	if ra := d.overloadError(ClassScavenger, "").RetryAfter; ra != minRetryAfter {
		t.Errorf("cold retry-after = %v, want floor %v", ra, minRetryAfter)
	}
	for i := 0; i < 64; i++ {
		d.observeLatEWMA(int64(8 * time.Millisecond))
	}
	ra := d.overloadError(ClassScavenger, "").RetryAfter
	if ra < time.Millisecond || ra > 8*time.Millisecond {
		t.Errorf("warm retry-after = %v, want near the 8ms EWMA", ra)
	}
}

// popDevice builds the minimal Device popSubmission needs: the
// per-class queues, the aging credits, and the resolved QoS options.
func popDevice(credit int) *Device {
	d := &Device{qos: resolveQoS(QoSOptions{AgingCredit: credit})}
	slab := rbq.NewSlabForQueues(32, NumClasses, NumClasses+4)
	for c := range d.submission {
		d.submission[c] = slab.NewQueue(rbq.Blue)
	}
	d.reqs = make([]*Request, 32)
	for i := range d.reqs {
		d.reqs[i] = &Request{idx: uint32(i)}
	}
	tab := []*tenantState{newDefaultTenant()}
	d.tenants.Store(&tab)
	d.sched = newTenantSched(d.submission[:],
		func(idx uint32) uint32 { return d.reqs[idx].tenant.Load() },
		d.tenantWeight, int64(d.qos.AgingCredit))
	return d
}

// TestPopSubmissionStrictPriority: with a single class loaded, pops come
// in FIFO order; with all classes loaded, higher classes drain first.
func TestPopSubmissionStrictPriority(t *testing.T) {
	d := popDevice(1 << 20) // credit high enough that aging never fires
	d.submission[ClassScavenger].Enqueue(20)
	d.submission[ClassBackground].Enqueue(10)
	d.submission[ClassForeground].Enqueue(0)
	d.submission[ClassForeground].Enqueue(1)

	want := []uint32{0, 1, 10, 20}
	for i, w := range want {
		idx, ok := d.popSubmission()
		if !ok || idx != w {
			t.Fatalf("pop %d = (%d, %v), want (%d, true)", i, idx, ok, w)
		}
	}
	if _, ok := d.popSubmission(); ok {
		t.Error("pop on empty queues reported work")
	}
	if d.m.agedPops.Load() != 0 {
		t.Errorf("agedPops = %d on a pure strict-priority run", d.m.agedPops.Load())
	}
}

// TestPopSubmissionAging: a lower class passed over AgingCredit times
// while non-empty is served one pop out of order, so a saturating
// foreground stream cannot starve it forever.
func TestPopSubmissionAging(t *testing.T) {
	d := popDevice(2)
	for i := uint32(0); i < 4; i++ {
		d.submission[ClassForeground].Enqueue(i)
	}
	d.submission[ClassBackground].Enqueue(10)
	d.submission[ClassBackground].Enqueue(11)

	// Pops 1-2 serve foreground and accrue background credit; pop 3 is
	// the aged background pop; strict priority resumes for pops 4-5
	// (re-accruing credit), and pop 6 serves the last background request
	// as a second aged pop.
	want := []uint32{0, 1, 10, 2, 3, 11}
	for i, w := range want {
		idx, ok := d.popSubmission()
		if !ok || idx != w {
			t.Fatalf("pop %d = (%d, %v), want (%d, true)", i, idx, ok, w)
		}
	}
	if got := d.m.agedPops.Load(); got != 2 {
		t.Errorf("agedPops = %d, want 2", got)
	}
	if d.sched.credits[ClassBackground] != 0 {
		t.Errorf("background credit = %d after its queue drained, want 0", d.sched.credits[ClassBackground])
	}
}

// TestInlineRetuneMovesThreshold: with lifecycle full capture on and a
// tiny retune cadence, a stream of ring-path requests gives the retuner
// the span signal it needs; the threshold must move off its floor and
// stay inside [minInlineThreshold, chunkBytes].
func TestInlineRetuneMovesThreshold(t *testing.T) {
	opts := Options{
		NumReqs:          16,
		Controllers:      1,
		ChunkBytes:       64 << 10,
		TraceFullCapture: true,
		QoS: QoSOptions{
			InlineThreshold: minInlineThreshold, // start at the floor
			RetuneEvery:     8,
		},
	}
	d := Open(opts)
	defer d.Close()

	src := make([]byte, 48<<10) // single chunk, well above the floor: ring path
	dst := make([]byte, len(src))
	for i := 0; i < 64; i++ {
		r := d.AllocRequest()
		if r == nil {
			t.Fatal("alloc failed")
		}
		r.Src, r.Dst = src, dst
		if err := d.Submit(r); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		for d.RetrieveCompleted() == nil {
			d.Poll(10 * time.Millisecond)
		}
		d.FreeRequest(r)
	}

	st := d.Stats()
	if st.Retunes == 0 {
		t.Fatal("no retunes after 64 dispatches at RetuneEvery=8")
	}
	th := st.InlineThresholdBytes
	if th < minInlineThreshold || th > int64(opts.ChunkBytes) {
		t.Errorf("threshold %d outside [%d, %d]", th, minInlineThreshold, opts.ChunkBytes)
	}
	if th == minInlineThreshold {
		t.Errorf("threshold never moved off the %d floor despite ring-wait signal", minInlineThreshold)
	}
}

// TestInlineRetuneDisabled: DisableRetune freezes the threshold exactly
// where it started.
func TestInlineRetuneDisabled(t *testing.T) {
	const fixed = 2 << 10
	d := Open(Options{
		NumReqs:          16,
		Controllers:      1,
		TraceFullCapture: true,
		QoS:              QoSOptions{InlineThreshold: fixed, DisableRetune: true, RetuneEvery: 4},
	})
	defer d.Close()

	src := make([]byte, 16<<10)
	dst := make([]byte, len(src))
	for i := 0; i < 32; i++ {
		r := d.AllocRequest()
		r.Src, r.Dst = src, dst
		if err := d.Submit(r); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		for d.RetrieveCompleted() == nil {
			d.Poll(10 * time.Millisecond)
		}
		d.FreeRequest(r)
	}
	st := d.Stats()
	if st.Retunes != 0 {
		t.Errorf("Retunes = %d with DisableRetune, want 0", st.Retunes)
	}
	if st.InlineThresholdBytes != fixed {
		t.Errorf("threshold drifted to %d, want frozen at %d", st.InlineThresholdBytes, fixed)
	}
}

// TestInlineCompletionCountsAndCopies: a request at or under the
// threshold is copied by the worker itself and counted as inline; one
// above it takes the ring path.
func TestInlineCompletionCountsAndCopies(t *testing.T) {
	d := Open(Options{
		NumReqs:     8,
		Controllers: 1,
		QoS:         QoSOptions{InlineThreshold: 4 << 10, DisableRetune: true},
	})
	defer d.Close()

	run := func(n int) *Request {
		r := d.AllocRequest()
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(i)
		}
		r.Src, r.Dst = src, make([]byte, n)
		if err := d.Submit(r); err != nil {
			t.Fatalf("submit: %v", err)
		}
		for d.RetrieveCompleted() == nil {
			d.Poll(10 * time.Millisecond)
		}
		return r
	}

	small := run(4 << 10)
	if got := d.Stats().InlineCompleted; got != 1 {
		t.Errorf("InlineCompleted after small request = %d, want 1", got)
	}
	if small.Err != nil || !bytes.Equal(small.Src, small.Dst) {
		t.Errorf("inline completion corrupt: err=%v", small.Err)
	}
	d.FreeRequest(small)

	large := run(8 << 10)
	if got := d.Stats().InlineCompleted; got != 1 {
		t.Errorf("InlineCompleted after large request = %d, want still 1", got)
	}
	if large.Err != nil {
		t.Errorf("ring-path completion: %v", large.Err)
	}
	d.FreeRequest(large)
}

// TestPollContextCanceled: an already-canceled context returns
// immediately, reporting whether a completion is ready (it is not).
func TestPollContextCanceled(t *testing.T) {
	d := Open(Options{NumReqs: 8, Controllers: 1})
	defer d.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if d.PollContext(ctx) {
		t.Error("PollContext on an idle device reported a completion")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("canceled PollContext blocked for %v", elapsed)
	}
}

// TestCloseDrainContextStalled: with a controller frozen mid-copy and a
// canceled context, CloseDrainContext reports the pipeline did not
// drain — but still closes the device once the stall lifts.
func TestCloseDrainContextStalled(t *testing.T) {
	stalled := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	d := Open(Options{
		NumReqs:     8,
		Controllers: 1,
		QoS:         QoSOptions{InlineThreshold: -1}, // keep the copy off the worker
		Chaos: &ChaosHooks{
			BeforeChunkCopy: func(idx uint32, off, end int) {
				once.Do(func() { close(stalled) })
				<-release
			},
		},
	})

	r := d.AllocRequest()
	r.Src, r.Dst = make([]byte, 1<<10), make([]byte, 1<<10)
	if err := d.Submit(r); err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-stalled

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	if d.CloseDrainContext(ctx) {
		t.Error("CloseDrainContext reported drained with a stalled request in flight")
	}
	if err := d.Submit(r); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: %v, want ErrClosed", err)
	}
}

// TestCloseDrainContextIdle: an idle device drains immediately.
func TestCloseDrainContextIdle(t *testing.T) {
	d := Open(Options{NumReqs: 8, Controllers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if !d.CloseDrainContext(ctx) {
		t.Error("idle device did not drain")
	}
}
