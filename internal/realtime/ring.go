package realtime

import "sync/atomic"

// DefaultRingDepth is the default per-controller chunk ring capacity:
// deep enough that a burst of small requests never stalls the worker,
// shallow enough that work stealing — not queueing — levels imbalance.
const DefaultRingDepth = 64

// chunkRing is a bounded lock-free MPMC ring (Vyukov's bounded queue)
// holding one transfer controller's pending chunks. The worker is the
// only producer in practice, but consumption is genuinely multi-consumer:
// the owning controller pops from it and idle controllers steal from it,
// so the full MPMC sequence protocol is kept.
//
// Each slot carries a sequence word. A slot is writable when
// seq == enqueue position, readable when seq == dequeue position + 1;
// the atomic sequence store after each access publishes the plainly
// written chunk payload to the next party (release/acquire pairing),
// which is what keeps the plain `c` field race-free.
type chunkRing struct {
	mask  uint64
	slots []ringSlot
	// enq and deq sit on separate cache lines so the producer's CAS
	// traffic does not invalidate every consumer's line and vice versa.
	_   [64]byte
	enq atomic.Uint64
	_   [64]byte
	deq atomic.Uint64
}

type ringSlot struct {
	seq atomic.Uint64
	c   chunk
}

// newChunkRing returns a ring with capacity rounded up to a power of
// two, minimum 2.
func newChunkRing(depth int) *chunkRing {
	cap := 2
	for cap < depth {
		cap <<= 1
	}
	r := &chunkRing{mask: uint64(cap - 1), slots: make([]ringSlot, cap)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// tryPush appends c; false when the ring is full (the caller picks
// another ring or backs off — it must not spin here, full is a state,
// not a transient).
func (r *chunkRing) tryPush(c chunk) bool {
	for {
		pos := r.enq.Load()
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				s.c = c
				s.seq.Store(pos + 1)
				return true
			}
		case seq < pos:
			return false // full: the slot has not been consumed yet
		}
		// seq > pos: lost a race with another producer; reload and retry.
	}
}

// tryPop removes the oldest chunk; false when the ring is empty.
func (r *chunkRing) tryPop() (chunk, bool) {
	for {
		pos := r.deq.Load()
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos+1:
			if r.deq.CompareAndSwap(pos, pos+1) {
				c := s.c
				s.seq.Store(pos + r.mask + 1)
				return c, true
			}
		case seq < pos+1:
			return chunk{}, false // empty: the slot has not been produced yet
		}
		// seq > pos+1: lost a race with another consumer; retry.
	}
}

// compRing is a bounded lock-free MPMC ring (the same Vyukov sequence
// protocol as chunkRing) holding completed request indices. The device
// keeps min(GOMAXPROCS, Controllers) of them and routes each completion
// to ring idx % N, so finishers on different controllers publish to
// different rings and concurrent pollers never serialize on one
// Michael–Scott head the way the old single completion queue forced
// them to. Producers are the finishers (controllers + the worker's
// inline path); consumers are RetrieveCompleted/RetrieveCompletedBatch
// callers, any number of them.
//
// Each ring is sized for every slot index mapped to it (ceil(NumReqs/N)
// rounded up to a power of two): a slot has at most one outstanding
// completion — the next submission of that slot requires AllocRequest,
// which requires the previous completion to have been retrieved — so a
// correctly sized ring can never refuse a push.
type compRing struct {
	mask  uint64
	slots []compSlot
	// enq and deq sit on separate cache lines so finisher CAS traffic
	// does not invalidate every poller's line and vice versa.
	_   [64]byte
	enq atomic.Uint64
	_   [64]byte
	deq atomic.Uint64
}

type compSlot struct {
	seq atomic.Uint64
	idx uint32
}

// newCompRing returns a completion ring with capacity rounded up to a
// power of two, minimum 2.
func newCompRing(depth int) *compRing {
	cap := 2
	for cap < depth {
		cap <<= 1
	}
	r := &compRing{mask: uint64(cap - 1), slots: make([]compSlot, cap)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// tryPush appends idx; false when the ring is full (impossible on a
// correctly sized device ring — see the type comment — but the caller
// still backs off rather than trusting that).
func (r *compRing) tryPush(idx uint32) bool {
	for {
		pos := r.enq.Load()
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				s.idx = idx
				s.seq.Store(pos + 1)
				return true
			}
		case seq < pos:
			return false // full: the slot has not been consumed yet
		}
		// seq > pos: lost a race with another producer; reload and retry.
	}
}

// tryPop removes the oldest completion; false when the ring is empty.
func (r *compRing) tryPop() (uint32, bool) {
	for {
		pos := r.deq.Load()
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos+1:
			if r.deq.CompareAndSwap(pos, pos+1) {
				idx := s.idx
				s.seq.Store(pos + r.mask + 1)
				return idx, true
			}
		case seq < pos+1:
			return 0, false // empty: the slot has not been produced yet
		}
		// seq > pos+1: lost a race with another consumer; retry.
	}
}

// size reports the current occupancy (racy snapshot, clamped to
// [0, cap] so a torn read can never look absurd).
func (r *compRing) size() int64 {
	e, d := r.enq.Load(), r.deq.Load()
	if e <= d {
		return 0
	}
	n := int64(e - d)
	if max := int64(len(r.slots)); n > max {
		n = max
	}
	return n
}

// empty reports whether the ring currently holds no completions (racy
// snapshot — the atomically coupled answer is tryPop's).
func (r *compRing) empty() bool {
	pos := r.deq.Load()
	return r.slots[pos&r.mask].seq.Load() < pos+1
}

// snapshot walks the occupied slots in FIFO order. Quiescent use only
// (AuditSlots, tests) — under concurrent mutation the walk may
// duplicate or miss indices.
func (r *compRing) snapshot() []uint32 {
	var out []uint32
	for pos := r.deq.Load(); pos < r.enq.Load(); pos++ {
		s := &r.slots[pos&r.mask]
		if s.seq.Load() == pos+1 {
			out = append(out, s.idx)
		}
	}
	return out
}

// size reports the current occupancy (racy snapshot for the live-depth
// stats; clamped to [0, cap] so a torn read can never look absurd).
func (r *chunkRing) size() int64 {
	e, d := r.enq.Load(), r.deq.Load()
	if e <= d {
		return 0
	}
	n := int64(e - d)
	if max := int64(len(r.slots)); n > max {
		n = max
	}
	return n
}

// empty reports whether the ring currently holds no chunks (racy
// snapshot, used only on the shutdown drain path and in tests).
func (r *chunkRing) empty() bool {
	pos := r.deq.Load()
	return r.slots[pos&r.mask].seq.Load() < pos+1
}
