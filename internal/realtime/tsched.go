package realtime

// Tenant-aware submission scheduling: weighted deficit round robin
// between tenants inside each priority class, strict priority with the
// PR 5 aging credit preserved across classes.
//
// The lock-free submit path is untouched — submitters still enqueue on
// the per-class red-blue submission queues. The single-consumer worker
// drains those queues into worker-local per-(class, tenant) FIFO
// buckets and serves the buckets with classic DRR: on each visit a
// tenant's deficit is topped up by its weight (the quantum, in
// requests), one request costs one deficit unit, and a bucket that
// empties is deactivated with its deficit reset — no banking while
// idle. A tenant with weight w therefore gets w consecutive pops per
// round while backlogged, and the long-run service ratio between
// backlogged tenants converges to their weight ratio.
//
// Everything here runs on the worker goroutine only (the same
// single-consumer discipline the aging credits already relied on), so
// the buckets need no synchronization. When the scheduler reports empty
// the buckets are empty too — the worker can only go to sleep, recolor,
// or exit through that path, which keeps the AuditSlots accounting
// exact: a parked device holds no indices in scheduler buckets.
//
// The type is deliberately self-contained (queues plus two lookup
// closures) so the linearizability suite can drive the exact production
// discipline through rbq sched-hook yield points against the
// internal/check sequential models.

import "memif/internal/rbq"

// tenantSched arbitrates the per-class submission queues across tenants.
//
// False-sharing audit note (PR 8): everything below — credits, drrClass
// maps/slices, drrBucket deficits — is touched by exactly one goroutine,
// the dispatch worker. Single-writer-single-reader state needs no
// cache-line padding; the lines live dirty in the worker's L1 and no
// other core ever requests them. Only the shared rbq queues it drains
// carry cross-core traffic, and those are padded in rbq.Queue itself.
type tenantSched struct {
	queues   []*rbq.Queue              // per-class submission queues (shared, lock-free)
	tenantOf func(idx uint32) uint32   // slot index -> owning tenant id
	weightOf func(tenant uint32) int64 // tenant id -> DRR quantum (requests/round)
	aging    int64                     // pops a lower class may be passed over
	credits  []int64                   // per-class aging credits
	classes  []drrClass                // per-class worker-local DRR state
}

// drrClass is one priority class's DRR round: the set of tenants with
// buffered work, in round-robin visit order, plus a cursor.
type drrClass struct {
	buckets map[uint32]*drrBucket
	active  []uint32 // tenant ids with queued work, visit order
	cur     int      // index into active of the tenant being served
	queued  int      // total requests buffered across buckets
}

// drrBucket is one tenant's FIFO inside one class.
type drrBucket struct {
	fifo    []uint32
	head    int
	deficit int64
}

func newTenantSched(queues []*rbq.Queue, tenantOf func(uint32) uint32, weightOf func(uint32) int64, aging int64) *tenantSched {
	s := &tenantSched{
		queues:   queues,
		tenantOf: tenantOf,
		weightOf: weightOf,
		aging:    aging,
		credits:  make([]int64, len(queues)),
		classes:  make([]drrClass, len(queues)),
	}
	for c := range s.classes {
		s.classes[c].buckets = make(map[uint32]*drrBucket)
	}
	return s
}

// drain moves everything currently on the shared submission queues into
// the worker-local buckets. Dequeue observing empty is a linearization
// point, so any enqueue that completed before the caller's pop began is
// guaranteed to be included.
func (s *tenantSched) drain() {
	for c := range s.queues {
		for {
			idx, _, ok := s.queues[c].Dequeue()
			if !ok {
				break
			}
			s.classes[c].push(s.tenantOf(idx), idx)
		}
	}
}

// pop returns the next request index under the full discipline: an aged
// lower class is served first (one pop, credit reset), then classes in
// strict priority order, DRR between tenants within the chosen class.
// aged reports an out-of-order pop; tenant is the owner of the returned
// index.
func (s *tenantSched) pop() (idx, tenant uint32, aged, ok bool) {
	s.drain()
	// Serve an aged class first: it has been passed over aging times
	// while non-empty, so it gets one pop out of strict-priority order.
	for c := 1; c < len(s.classes); c++ {
		if s.credits[c] < s.aging {
			continue
		}
		if idx, tenant, ok := s.classes[c].pop(s.weightOf); ok {
			s.credits[c] = 0
			return idx, tenant, true, true
		}
		s.credits[c] = 0 // went empty while aging: nothing owed
	}
	for c := range s.classes {
		idx, tenant, ok := s.classes[c].pop(s.weightOf)
		if !ok {
			continue
		}
		// Every lower non-empty class just lost a turn; remember it.
		for l := c + 1; l < len(s.classes); l++ {
			if s.classes[l].queued > 0 {
				s.credits[l]++
			}
		}
		return idx, tenant, false, true
	}
	return 0, 0, false, false
}

// queuedTotal reports how many requests sit in the worker-local buckets
// (zero whenever pop has returned !ok and nothing was enqueued since).
func (s *tenantSched) queuedTotal() int {
	n := 0
	for c := range s.classes {
		n += s.classes[c].queued
	}
	return n
}

// push buffers idx on tenant's FIFO, activating the tenant at the tail
// of the round when its bucket was empty.
func (c *drrClass) push(tenant, idx uint32) {
	b := c.buckets[tenant]
	if b == nil {
		b = &drrBucket{}
		c.buckets[tenant] = b
	}
	if b.head == len(b.fifo) {
		b.fifo = b.fifo[:0]
		b.head = 0
		c.active = append(c.active, tenant)
	}
	b.fifo = append(b.fifo, idx)
	c.queued++
}

// pop serves one request from the tenant under the cursor. The deficit
// is topped up by the tenant's weight when exhausted (the DRR quantum
// grant, once per visit), decremented one unit per request; the cursor
// advances when the quantum is spent, and a bucket that empties is
// deactivated with its deficit reset.
func (c *drrClass) pop(weightOf func(uint32) int64) (idx, tenant uint32, ok bool) {
	if c.queued == 0 {
		return 0, 0, false
	}
	if c.cur >= len(c.active) {
		c.cur = 0
	}
	tenant = c.active[c.cur]
	b := c.buckets[tenant]
	if b.deficit <= 0 {
		w := weightOf(tenant)
		if w < 1 {
			w = 1
		}
		b.deficit += w
	}
	idx = b.fifo[b.head]
	b.head++
	b.deficit--
	c.queued--
	if b.head == len(b.fifo) {
		// Emptied: deactivate and forget the unspent deficit (idle
		// tenants don't bank service).
		b.deficit = 0
		b.fifo = b.fifo[:0]
		b.head = 0
		c.active = append(c.active[:c.cur], c.active[c.cur+1:]...)
	} else if b.deficit <= 0 {
		c.cur++
	}
	return idx, tenant, true
}
