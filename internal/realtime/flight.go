package realtime

import (
	"time"

	"memif/internal/obs/flight"
)

// Flight-recorder plumbing for the realtime device: the monitor
// goroutine that drives SLO window ticks and the stall watchdog, and
// the ambient-state assembler the outlier capture paths share. The
// recorder itself lives in internal/obs/flight; everything here is the
// device-specific probe.

// flightTickInterval is the monitor cadence: fast enough that a 1s SLO
// window keeps fine-grained burn history and a wedged worker is
// reported within ~30ms (3 ticks at the default StallTicks), slow
// enough that an idle device's monitor load is unmeasurable.
const flightTickInterval = 10 * time.Millisecond

// monitor is the flight recorder's heartbeat goroutine: every tick it
// advances the SLO burn-rate windows and feeds the watchdog a progress
// probe; findings are captured into the outlier ring as typed stall
// records. Exits when frStop closes (Close waits for it).
func (d *Device) monitor() {
	defer d.frWg.Done()
	ticker := time.NewTicker(flightTickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-d.frStop:
			return
		case <-ticker.C:
		}
		nano := time.Now().UnixNano()
		d.fr.Tick(nano)
		if d.frWatch == nil {
			continue
		}
		depth, cap := d.fullestCompletionRing()
		p := flight.ProbeState{
			QueuedWork:       d.queuedWork(),
			DispatchProgress: d.m.dispatched.Load(),
			CompletionDepth:  depth,
			CompletionCap:    cap,
			RetrieveProgress: d.m.retrieved.Load(),
		}
		for _, reason := range d.frWatch.Tick(p) {
			d.fr.CaptureStall(reason, nano, d.ambient())
		}
	}
}

// FlightSnapshot returns the flight recorder's state alone — captured
// outliers, stall reports, lane thresholds and SLO burn rates — without
// the full Stats assembly. Snapshot.Enabled is false when the recorder
// is disarmed.
func (d *Device) FlightSnapshot() flight.Snapshot { return d.fr.Snapshot() }

// queuedWork reports whether any staging shard or submission queue held
// work at probe time (racy snapshot — the watchdog needs consecutive
// bad ticks anyway).
func (d *Device) queuedWork() bool {
	for _, sh := range d.staging {
		if !sh.Empty() {
			return true
		}
	}
	for _, q := range d.submission {
		if !q.Empty() {
			return true
		}
	}
	return false
}

// fullestCompletionRing returns the deepest completion ring's occupancy
// and the per-ring capacity — the backlog probe watches the worst ring,
// since slot→ring mapping is static and one starved poller wedges one
// ring, not the average.
func (d *Device) fullestCompletionRing() (depth, cap int64) {
	for _, cr := range d.compRings {
		if s := cr.size(); s > depth {
			depth = s
		}
	}
	return depth, d.compCap / int64(len(d.compRings))
}

// ambient assembles the congestion picture stored alongside an outlier:
// live queue depths and per-class in-flight counts, all racy snapshots
// of already-atomic state.
func (d *Device) ambient() flight.Ambient {
	amb := flight.Ambient{
		SubmissionDepth: d.submissionDepth(),
		CompletionDepth: d.completionDepth(),
	}
	var staging int64
	for _, sh := range d.staging {
		staging += int64(sh.Size())
	}
	amb.StagingDepth = staging
	if d.rings != nil {
		var rd int64
		for _, cr := range d.rings {
			rd += cr.size()
		}
		amb.RingDepth = rd
	}
	for c := 0; c < NumClasses; c++ {
		amb.ClassInFlight[c] = d.classInFlight[c].n.Load()
	}
	return amb
}
