package realtime

// Linearizability of the production submission scheduler: concurrent
// submitters enqueue on the shared red-blue class queues while the
// worker pops through tenantSched, with every rbq operation yielding to
// the deterministic scheduler. Each history must linearize against the
// sequential models in internal/check — SubmissionModel for the
// single-tenant priority+aging discipline, DRRSubmissionModel for the
// weighted multi-tenant refinement. This is the same treatment the
// red-blue queue itself gets in internal/rbq.

import (
	"fmt"
	"testing"

	"memif/internal/check"
	"memif/internal/rbq"
)

// tsValue encodes ownership in the value itself so the tenant lookup
// needs no shared mutable state: value v belongs to tenant v/100.
func tsTenantOf(v uint32) uint32 { return v / 100 }

// runTenantSchedDRR drives the real scheduler under one seed: three
// tenants across two classes, tenant 1 at weight 2, and checks the
// history against the DRR model.
func runTenantSchedDRR(seed int64) error {
	weightOf := func(ten uint32) int64 {
		if ten == 1 {
			return 2
		}
		return 1
	}
	const numClasses = 2
	slab := rbq.NewSlab(512)
	queues := make([]*rbq.Queue, numClasses)
	for i := range queues {
		queues[i] = slab.NewQueue(rbq.Blue)
	}
	sched := newTenantSched(queues, tsTenantOf, weightOf, 3)

	hist := check.NewHistory(4)
	s := check.NewSched(seed)
	rbq.SetSchedHook(s.YieldHook())
	defer rbq.SetSchedHook(nil)

	push := func(t *check.Thread, client, class int, vals ...uint32) {
		for _, v := range vals {
			v := v
			hist.Record(client, check.TOp{Push: true, Class: class, Tenant: tsTenantOf(v), V: v}, func() any {
				_, ok := queues[class].Enqueue(v)
				return check.TRes{Ok: ok}
			})
			t.Yield()
		}
	}
	s.Go(func(t *check.Thread) { push(t, 0, 0, 100, 101, 102) }) // tenant 1, foreground
	s.Go(func(t *check.Thread) { push(t, 1, 0, 200, 201) })      // tenant 2, foreground
	s.Go(func(t *check.Thread) { push(t, 2, 1, 300, 301) })      // tenant 3, background
	s.Go(func(t *check.Thread) {                                 // the worker
		for i := 0; i < 10; i++ {
			hist.Record(3, check.TOp{}, func() any {
				idx, ten, aged, ok := sched.pop()
				return check.TRes{V: idx, Tenant: ten, Aged: aged, Ok: ok}
			})
			t.Yield()
		}
	})
	if err := s.Run(); err != nil {
		return err
	}
	m := check.DRRSubmissionModel(numClasses, 3, weightOf)
	if r := check.CheckHistory(m, hist); !r.Ok {
		return fmt.Errorf("not linearizable: %s", r.Info)
	}
	return nil
}

// runTenantSchedSingle drives the scheduler in its degenerate
// single-tenant configuration — every value owned by tenant 0 — and
// checks against the plain priority+aging model, pinning that the DRR
// layer preserves the PR 5 discipline exactly.
func runTenantSchedSingle(seed int64) error {
	const numClasses = 3
	slab := rbq.NewSlab(512)
	queues := make([]*rbq.Queue, numClasses)
	for i := range queues {
		queues[i] = slab.NewQueue(rbq.Blue)
	}
	sched := newTenantSched(queues, func(uint32) uint32 { return 0 }, func(uint32) int64 { return 1 }, 2)

	hist := check.NewHistory(4)
	s := check.NewSched(seed)
	rbq.SetSchedHook(s.YieldHook())
	defer rbq.SetSchedHook(nil)

	for class := 0; class < numClasses; class++ {
		class := class
		s.Go(func(t *check.Thread) {
			for i := 0; i < 3; i++ {
				v := uint32(10*(class+1) + i)
				hist.Record(class, check.TOp{Push: true, Class: class, V: v}, func() any {
					_, ok := queues[class].Enqueue(v)
					return check.TRes{Ok: ok}
				})
				t.Yield()
			}
		})
	}
	s.Go(func(t *check.Thread) {
		for i := 0; i < 12; i++ {
			hist.Record(3, check.TOp{}, func() any {
				idx, ten, aged, ok := sched.pop()
				return check.TRes{V: idx, Tenant: ten, Aged: aged, Ok: ok}
			})
			t.Yield()
		}
	})
	if err := s.Run(); err != nil {
		return err
	}
	if r := check.CheckHistory(check.SubmissionModel(numClasses, 2), hist); !r.Ok {
		return fmt.Errorf("not linearizable: %s", r.Info)
	}
	return nil
}

func TestTenantSchedLinearizableDRR(t *testing.T) {
	if err := check.Explore(48, 1, runTenantSchedDRR); err != nil {
		t.Fatalf("production DRR scheduler produced a non-linearizable history: %v", err)
	}
}

func TestTenantSchedLinearizableSingleTenant(t *testing.T) {
	if err := check.Explore(48, 1, runTenantSchedSingle); err != nil {
		t.Fatalf("production scheduler violated the priority+aging spec: %v", err)
	}
}
