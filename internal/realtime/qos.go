package realtime

// QoS: priority classes, admission control, and the adaptive
// poll-vs-notify completion heuristic.
//
// The paper's three execution paths (Section 5) already encode a
// policy — poll small transfers, take the interrupt for large ones —
// but leave "what happens under overload" open. This file closes that
// gap for the realtime device:
//
//   - every request carries a Class (Foreground, Background, Scavenger);
//   - an admission controller sheds low-priority work with ErrOverload
//     (plus a retry-after hint) before it can occupy enough of the slab
//     to starve higher classes — occupancy thresholds play the role of
//     kswapd watermarks, per class;
//   - the worker pops the per-class submission queues in strict priority
//     order, with an aging credit so a saturating high class cannot
//     starve lower ones forever;
//   - completion is adaptive: a single-chunk request at or below the
//     inline threshold is copied by the worker itself (the "syscall
//     path polls" case — no ring push, no controller wakeup), while
//     larger transfers park on the ring/notify path. The threshold
//     self-tunes from the lifecycle tracer's span histograms so it
//     lands where the inline copy costs about as much as the dispatch
//     overhead it saves.

import (
	"errors"
	"fmt"
	"time"

	"memif/internal/obs/lifecycle"
)

// Class is a request's priority class. Admission, dispatch order and
// shedding all key off it; the zero value is ClassForeground, so
// existing callers are foreground by default.
type Class uint8

// The priority classes, highest first.
const (
	// ClassForeground is latency-sensitive application work: never shed
	// by admission (it can always use every slot), dispatched first.
	ClassForeground Class = iota
	// ClassBackground is throughput work (e.g. planned migrations):
	// admitted while total occupancy is moderate, aged into the dispatch
	// order under foreground pressure.
	ClassBackground
	// ClassScavenger is best-effort work (e.g. speculative prefetch,
	// cold-page eviction): first to be shed when the pipeline fills.
	ClassScavenger
)

// NumClasses is the number of priority classes.
const NumClasses = 3

var classNames = [NumClasses]string{"foreground", "background", "scavenger"}

func (c Class) String() string {
	if int(c) < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ClassName returns the metric-label name of class i ("foreground",
// "background", "scavenger").
func ClassName(i int) string {
	if i >= 0 && i < NumClasses {
		return classNames[i]
	}
	return fmt.Sprintf("class(%d)", i)
}

// QoS errors.
var (
	// ErrOverload is the admission controller's rejection: the pipeline
	// is too full to take work at this request's class right now. Match
	// with errors.Is; the concrete error is an *OverloadError carrying a
	// retry-after hint.
	ErrOverload = errors.New("realtime: overloaded: admission shed request")
	// ErrBadClass rejects a request whose Class is not one of the
	// defined classes.
	ErrBadClass = errors.New("realtime: unknown priority class")
)

// OverloadError is the concrete admission rejection: which class was
// shed, which tenant's occupancy bound it (empty when the global
// controller shed an untenanted request), and a hint for how long the
// caller should back off before retrying (an EWMA of recent request
// completion latency — roughly one pipeline drain).
// errors.Is(err, ErrOverload) matches it.
type OverloadError struct {
	Class      Class
	Tenant     string
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	if e.Tenant != "" {
		return fmt.Sprintf("realtime: overloaded: tenant %q %s shed, retry after %v", e.Tenant, e.Class, e.RetryAfter)
	}
	return fmt.Sprintf("realtime: overloaded: %s shed, retry after %v", e.Class, e.RetryAfter)
}

// Unwrap makes errors.Is(e, ErrOverload) true.
func (e *OverloadError) Unwrap() error { return ErrOverload }

// QoSOptions tunes admission, dispatch priority, and adaptive
// completion. The zero value means "all defaults"; construct Options
// via DefaultOptions (or memif.DefaultRealtimeOptions) and override
// fields.
type QoSOptions struct {
	// ClassShares[c] caps total pipeline occupancy (in-flight requests
	// as a fraction of NumReqs) above which submissions at class c are
	// shed with ErrOverload. A share >= 1 means the class is never shed
	// (it may still see ErrNoSlots when the slab itself runs out).
	// Zero fields take DefaultClassShares; values are clamped to (0, 1].
	ClassShares [NumClasses]float64
	// AgingCredit is the number of times a lower class may be passed
	// over by strict-priority dispatch before it is served one request
	// out of order (starvation avoidance). 0 means DefaultAgingCredit.
	AgingCredit int
	// InlineThreshold is the initial adaptive-completion threshold in
	// bytes: a single-chunk request at or below it is copied inline by
	// the worker instead of being dispatched to the controller rings.
	// 0 means DefaultInlineThreshold; negative disables inline
	// completion (every request takes the ring/notify path — the
	// "always-notify" ablation).
	InlineThreshold int
	// DisableRetune freezes InlineThreshold at its initial value
	// instead of self-tuning it from the lifecycle span histograms.
	DisableRetune bool
	// RetuneEvery is the number of dispatches between threshold
	// retunes. 0 means DefaultRetuneEvery.
	RetuneEvery int
}

// QoS defaults.
const (
	// DefaultAgingCredit: a saturated higher class yields one pop to an
	// aged lower class every 16 pops — enough to bound starvation while
	// keeping priority inversion under ~6%.
	DefaultAgingCredit = 16
	// DefaultInlineThreshold is the initial poll-inline cutoff. 32 KB
	// copies in a few microseconds on anything modern — the same order
	// as a ring push plus a controller wakeup — and the retuner moves it
	// from there.
	DefaultInlineThreshold = 32 << 10
	// DefaultRetuneEvery: retune the inline threshold every 512
	// dispatches; each retune reads two histogram snapshots, so the
	// amortized cost is noise.
	DefaultRetuneEvery = 512
	// minRetryAfter floors the overload retry-after hint.
	minRetryAfter = 50 * time.Microsecond
	// minInlineThreshold / maxInlineThreshold bound the retuner so a
	// degenerate histogram can never turn inline completion off (or
	// swallow chunk-sized copies into the worker).
	minInlineThreshold = 1 << 10
)

// DefaultClassShares returns the default occupancy thresholds:
// foreground may fill the slab, background is shed past 85% occupancy,
// scavenger past 50%.
func DefaultClassShares() [NumClasses]float64 {
	return [NumClasses]float64{1.0, 0.85, 0.5}
}

// resolveQoS fills q's zero fields with defaults and clamps the rest.
func resolveQoS(q QoSOptions) QoSOptions {
	def := DefaultClassShares()
	for c := range q.ClassShares {
		if q.ClassShares[c] == 0 {
			q.ClassShares[c] = def[c]
		}
		if q.ClassShares[c] < 0 {
			q.ClassShares[c] = def[c]
		}
		if q.ClassShares[c] > 1 {
			q.ClassShares[c] = 1
		}
	}
	if q.AgingCredit <= 0 {
		q.AgingCredit = DefaultAgingCredit
	}
	if q.InlineThreshold == 0 {
		q.InlineThreshold = DefaultInlineThreshold
	} else if q.InlineThreshold < 0 {
		q.InlineThreshold = 0 // disabled
	}
	if q.RetuneEvery <= 0 {
		q.RetuneEvery = DefaultRetuneEvery
	}
	return q
}

// admit is the admission controller: it accepts or sheds r based on an
// occupancy threshold. A tenanted request is measured against its own
// tenant's quota — never the global occupancy — so one tenant's
// overload sheds only that tenant's requests; the untenanted default
// namespace keeps the global PR 5 thresholds, where foreground (any
// class with share 1) is never shed and the slab's capacity is its only
// limit. Called with the submitter gate held, before the request is
// staged, so a shed request never consumes a queue node.
func (d *Device) admit(r *Request) error {
	c := r.Class
	if int(c) >= NumClasses {
		return fmt.Errorf("%w: %d", ErrBadClass, uint8(c))
	}
	ts := d.tenantOf(r)
	if ts.quota > 0 {
		if ts.inFlight.Load() < ts.classLimit[c] {
			return nil
		}
		d.m.shed.Inc()
		d.m.classShed[c].Inc()
		ts.shed.Inc()
		return d.overloadError(c, ts.name)
	}
	limit := d.classLimit[c]
	if limit >= int64(len(d.reqs)) {
		return nil // full-share class: admission can't bind tighter than the slab
	}
	if d.m.submitted.Load()-d.m.completed.Load() < limit {
		return nil
	}
	d.m.shed.Inc()
	d.m.classShed[c].Inc()
	ts.shed.Inc()
	return d.overloadError(c, "")
}

// overloadError builds the rejection with a retry-after hint: the
// latency EWMA approximates how long the pipeline takes to drain one
// request, i.e. when a token is likely to free up.
func (d *Device) overloadError(c Class, tenant string) *OverloadError {
	ra := time.Duration(d.latEWMA.Load())
	if ra < minRetryAfter {
		ra = minRetryAfter
	}
	return &OverloadError{Class: c, Tenant: tenant, RetryAfter: ra}
}

// observeLatEWMA folds one completed-request latency into the
// retry-after estimator. Plain load/store RMW: concurrent finishers can
// lose updates, which is fine for a hint.
func (d *Device) observeLatEWMA(latNs int64) {
	old := d.latEWMA.Load()
	d.latEWMA.Store(old + (latNs-old)/8)
}

// popSubmission takes the next request off the per-class submission
// queues through the tenant scheduler: strict priority with the aging
// credit across classes, weighted deficit round robin between tenants
// within the chosen class (see tsched.go). Worker-only.
func (d *Device) popSubmission() (uint32, bool) {
	idx, tenant, aged, ok := d.sched.pop()
	if !ok {
		return 0, false
	}
	if aged {
		d.m.agedPops.Inc()
	}
	d.tenant(tenant).queued.Add(-1)
	return idx, true
}

// maybeRetune re-derives the inline threshold from the lifecycle span
// histograms every RetuneEvery dispatches. Worker-only.
func (d *Device) maybeRetune() {
	if d.qos.DisableRetune || d.lc == nil || d.inline.Load() == 0 {
		return
	}
	d.dispatchSeq++
	if d.dispatchSeq%uint64(d.qos.RetuneEvery) != 0 {
		return
	}
	d.retune()
}

// retune implements the paper's Section 5 heuristic as a feedback loop:
// poll (copy inline) when the transfer takes no longer than the
// overhead of taking the asynchronous path. The dispatch overhead is
// estimated as the mean ring wait of sampled chunks; copy bandwidth as
// mean request bytes over mean copy span. The new threshold — bytes
// copyable within the overhead window — is blended 50/50 with the
// current one so a noisy window cannot slam it around, and clamped to
// [minInlineThreshold, maxInline].
func (d *Device) retune() {
	spans := d.lc.Spans()
	ring := spans.Spans[lifecycle.SpanRingWait]
	cp := spans.Spans[lifecycle.SpanCopy]
	if ring.Count == 0 || cp.Count == 0 {
		return // not enough signal yet (or everything already inline)
	}
	meanBytes := d.m.sizes.Snapshot().Mean()
	meanCopyNs := cp.Mean()
	if meanBytes <= 0 || meanCopyNs <= 0 {
		return
	}
	bytesPerNs := meanBytes / meanCopyNs
	target := int64(bytesPerNs * ring.Mean())
	cur := d.inline.Load()
	next := (cur + target) / 2
	if next < minInlineThreshold {
		next = minInlineThreshold
	}
	if max := d.maxInline(); next > max {
		next = max
	}
	if next != cur {
		d.inline.Store(next)
	}
	d.m.retunes.Inc()
}

// maxInline caps the adaptive threshold: never inline more than one
// chunk's worth of bytes (the chunking threshold is where the engine
// decided parallel controllers pay off), and never more than
// DefaultChunkBytes when chunking is disabled.
func (d *Device) maxInline() int64 {
	if d.chunkBytes > 0 {
		return int64(d.chunkBytes)
	}
	return DefaultChunkBytes
}
