package realtime

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"memif/internal/obs/flight"
	"memif/internal/obs/lifecycle"
)

// The retroactive-capture acceptance check, end to end on a live device:
// with the lifecycle tracer completely off (negative sample shift) the
// flight recorder must still catch every breaching request and
// synthesize a complete, monotone seven-stage stamp vector for it from
// the armed Request-field stamps — no sampling holes, and captured ==
// breaches exactly when the watchdog contributes no stall records.
func TestFlightRetroactiveCaptureNoSamplingHoles(t *testing.T) {
	var delayCopies atomic.Bool
	d := Open(Options{
		NumReqs: 32, Controllers: 2, StagingShards: 2,
		ChunkBytes:       16 << 10,
		TraceSampleShift: -1, // tracer off: every breach takes the synthesized path
		Flight: flight.Options{
			Warmup:   4,
			Watchdog: flight.WatchdogOptions{Disable: true},
		},
		Chaos: &ChaosHooks{
			BeforeChunkCopy: func(idx uint32, off, end int) {
				if delayCopies.Load() {
					time.Sleep(2 * time.Millisecond)
				}
			},
		},
	})
	defer d.Close()

	src := make([]byte, 64<<10)
	dst := make([]byte, 64<<10)
	do := func() {
		var r *Request
		for r == nil {
			r = d.AllocRequest()
			if r == nil {
				runtime.Gosched()
			}
		}
		r.Src, r.Dst = src, dst
		if err := d.Submit(r); err != nil {
			t.Fatalf("submit: %v", err)
		}
		for {
			if got := d.RetrieveCompleted(); got != nil {
				if got.Err != nil {
					t.Fatalf("completion error: %v", got.Err)
				}
				d.FreeRequest(got)
				return
			}
			d.Poll(10 * time.Millisecond)
		}
	}

	for i := 0; i < 8; i++ {
		do() // warm the foreground lane past the warmup gate
	}
	delayCopies.Store(true)
	for i := 0; i < 4; i++ {
		do() // 4 chunks x 2ms each: far past any plausible threshold
	}
	delayCopies.Store(false)

	fs := d.FlightSnapshot()
	if fs.Breaches < 1 {
		t.Fatal("no breaches: the 8ms+ stragglers went undetected")
	}
	if fs.Captured != fs.Breaches {
		t.Fatalf("captured %d != breaches %d (watchdog off: must match exactly)",
			fs.Captured, fs.Breaches)
	}
	var latency int64
	for _, o := range fs.Outliers {
		if o.Kind != flight.KindLatency {
			t.Fatalf("unexpected non-latency record: %+v", o)
		}
		latency++
		if o.Class != 0 || o.Tenant != 0 || o.Bytes != 64<<10 {
			t.Fatalf("record identity wrong: %+v", o)
		}
		if o.Outcome != int32(lifecycle.OutcomeOK) {
			t.Fatalf("outcome = %d, want OK: %+v", o.Outcome, o)
		}
		if o.ThresholdNs <= 0 || o.LatencyNs <= o.ThresholdNs {
			t.Fatalf("latency %d not past threshold %d", o.LatencyNs, o.ThresholdNs)
		}
		for st := 0; st < lifecycle.NumStages; st++ {
			if o.TS[st] <= 0 {
				t.Fatalf("stage %d missing from synthesized vector: %+v", st, o.TS)
			}
			if st > 0 && o.TS[st] < o.TS[st-1] {
				t.Fatalf("stage %d not monotone: %+v", st, o.TS)
			}
		}
		if got := o.TS[lifecycle.StageRetrieved] - o.TS[lifecycle.StageSubmit]; got != o.LatencyNs {
			t.Fatalf("vector spans %dns but LatencyNs = %d", got, o.LatencyNs)
		}
	}
	if latency != fs.Breaches {
		t.Fatalf("ring retains %d latency records, want all %d breaches", latency, fs.Breaches)
	}
	// The multi-window SLO tracker must have seen the whole run even
	// with the tracer off.
	var total int64
	for _, cs := range fs.SLO.Classes {
		total += cs.Total
	}
	if total < 12 {
		t.Fatalf("SLO tracked %d requests, want >= 12", total)
	}
}

// A request shed before staging (admission, slot exhaustion) carries no
// pipeline latency; the armed breach check must skip it rather than
// capture an epoch-sized "breach" with an empty stamp vector. Covered
// here by the membench overload gate too, but this pins the unit.
func TestFlightSkipsUnstagedRequests(t *testing.T) {
	d := Open(Options{
		NumReqs: 8, Controllers: 1, StagingShards: 1,
		TraceSampleShift: -1,
		Flight: flight.Options{
			Warmup:   1,
			Watchdog: flight.WatchdogOptions{Disable: true},
		},
	})
	defer d.Close()

	src := make([]byte, 4<<10)
	// Warm the scavenger lane so a bogus epoch-sized latency on a shed
	// scavenger request would breach it.
	for i := 0; i < 4; i++ {
		r := d.AllocRequest()
		r.Src, r.Dst = src, make([]byte, 4<<10)
		r.Class = ClassScavenger
		if err := d.Submit(r); err != nil {
			t.Fatalf("submit: %v", err)
		}
		for {
			if got := d.RetrieveCompleted(); got != nil {
				d.FreeRequest(got)
				break
			}
			d.Poll(10 * time.Millisecond)
		}
	}
	before := d.FlightSnapshot().Breaches

	// A slab-sized scavenger batch overruns the class's admission share:
	// the surplus is shed with ErrOverload, submitted stamp zero.
	reqs := make([]*Request, 0, 8)
	for {
		r := d.AllocRequest()
		if r == nil {
			break
		}
		r.Src, r.Dst = src, make([]byte, 4<<10)
		r.Class = ClassScavenger
		reqs = append(reqs, r)
	}
	if err := d.SubmitBatch(reqs); err != nil {
		t.Fatalf("batch: %v", err)
	}
	shed := 0
	for done := 0; done < len(reqs); {
		got := d.RetrieveCompleted()
		if got == nil {
			d.Poll(10 * time.Millisecond)
			continue
		}
		if got.Err != nil {
			shed++
		}
		d.FreeRequest(got)
		done++
	}
	fs := d.FlightSnapshot()
	for _, o := range fs.Outliers {
		if o.Seq <= uint64(before) {
			continue
		}
		if o.LatencyNs > int64(time.Hour) {
			t.Fatalf("epoch-sized breach captured for a shed request: %+v", o)
		}
	}
	t.Logf("shed %d of %d, breaches %d -> %d", shed, len(reqs), before, fs.Breaches)
}
