// Package realtime runs the memif interface protocol under real
// concurrency: actual goroutines, actual memory copies, wall-clock time.
//
// Where package core executes the full system (page tables, DMA engine,
// cost model) on the simulated KeyStone II, this package is the
// user/kernel *interface* alone — the paper's central contribution —
// deployed as a host-side asynchronous copy service:
//
//   - application goroutines submit requests through the same staging /
//     submission / completion queues, built on the same red-blue
//     lock-free queue (package rbq);
//   - the SubmitRequest flush protocol (Section 4.4) decides with one
//     atomically-observed color whether the caller must kick the worker;
//   - a worker goroutine plays the kernel thread: woken by the "syscall"
//     (a channel send), it drains the queues, dispatches copies to a pool
//     of transfer goroutines (the DMA engine's transfer controllers), and
//     recolors the staging queue blue before sleeping;
//   - completion notifications are posted from the transfer goroutines —
//     the interrupt path — without the application holding any lock, and
//     Poll blocks exactly like poll(2) on the device file.
//
// Running this under `go test -race` validates the protocol's lock
// freedom claims with real preemption, which the deterministic simulator
// cannot.
package realtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"memif/internal/rbq"
)

// Errors returned by the device.
var (
	ErrClosed   = errors.New("realtime: device closed")
	ErrNoSlots  = errors.New("realtime: no free request slots")
	ErrBadSizes = errors.New("realtime: src and dst lengths differ")
)

// Options configures a Device.
type Options struct {
	// NumReqs is the number of request slots (default 256).
	NumReqs int
	// Controllers is the number of concurrent copy goroutines — the
	// transfer controllers of the DMA engine (default 2).
	Controllers int
}

// DefaultOptions mirrors the EDMA3-ish defaults.
func DefaultOptions() Options { return Options{NumReqs: 256, Controllers: 2} }

// Request is the realtime mov_req: a copy between two caller-owned byte
// slices. Populate Src, Dst and (optionally) Cookie before Submit; after
// the completion is retrieved, Err reports the outcome and Latency the
// submission-to-completion wall time.
type Request struct {
	idx uint32

	Src, Dst []byte
	Cookie   uint64

	Err       error
	submitted int64 // UnixNano
	completed int64
}

// Latency returns the wall-clock submission-to-completion time.
func (r *Request) Latency() time.Duration {
	return time.Duration(r.completed - r.submitted)
}

// Device is one realtime memif instance.
type Device struct {
	opts Options
	reqs []*Request

	freeList   *rbq.Queue
	staging    *rbq.Queue // red-blue
	submission *rbq.Queue
	completion *rbq.Queue

	kick   chan struct{} // the MOV_ONE "syscall": wake the worker
	notify chan struct{} // completion edge for Poll
	copyQ  chan uint32   // worker -> transfer controllers
	closed atomic.Bool
	wg     sync.WaitGroup
	stats  Stats
}

// Stats counts device activity (fields read with Stats() after Close or
// via atomics internally).
type Stats struct {
	Submitted  atomic.Int64
	Completed  atomic.Int64
	Kicks      atomic.Int64 // syscall-equivalents issued
	BytesMoved atomic.Int64
}

// Open creates a device and starts its worker and transfer controllers.
func Open(opts Options) *Device {
	if opts.NumReqs <= 0 {
		opts.NumReqs = 256
	}
	if opts.Controllers <= 0 {
		opts.Controllers = 2
	}
	slab := rbq.NewSlab(opts.NumReqs + 4 + 8)
	d := &Device{
		opts:       opts,
		reqs:       make([]*Request, opts.NumReqs),
		freeList:   slab.NewQueue(rbq.Blue),
		staging:    slab.NewQueue(rbq.Blue),
		submission: slab.NewQueue(rbq.Blue),
		completion: slab.NewQueue(rbq.Blue),
		kick:       make(chan struct{}, 1),
		notify:     make(chan struct{}, 1),
		copyQ:      make(chan uint32),
	}
	for i := range d.reqs {
		d.reqs[i] = &Request{idx: uint32(i)}
		if _, ok := d.freeList.Enqueue(uint32(i)); !ok {
			panic("realtime: slab sized too small")
		}
	}
	d.wg.Add(1 + opts.Controllers)
	go d.worker()
	for c := 0; c < opts.Controllers; c++ {
		go d.controller()
	}
	return d
}

// Close shuts the device down and waits for the kernel-side goroutines.
// Outstanding requests are completed first; a Submit racing Close may be
// dropped without completion (the device-file-release semantics).
func (d *Device) Close() {
	if d.closed.Swap(true) {
		return
	}
	select {
	case d.kick <- struct{}{}:
	default:
	}
	d.wg.Wait()
	close(d.notify) // unblock any sleeping Poll
}

// req validates an index off a queue.
func (d *Device) req(idx uint32) (*Request, bool) {
	if int(idx) >= len(d.reqs) {
		return nil, false
	}
	return d.reqs[idx], true
}

// AllocRequest takes a request slot off the free list; nil when
// exhausted.
func (d *Device) AllocRequest() *Request {
	idx, _, ok := d.freeList.Dequeue()
	if !ok {
		return nil
	}
	r := d.reqs[idx]
	r.Src, r.Dst, r.Cookie, r.Err = nil, nil, 0, nil
	return r
}

// FreeRequest returns a slot to the free list.
func (d *Device) FreeRequest(r *Request) {
	d.freeList.Enqueue(r.idx)
}

// Submit queues an asynchronous copy of r.Src into r.Dst, implementing
// the Section 4.4 protocol. It never blocks beyond the bounded flush.
func (d *Device) Submit(r *Request) error {
	if d.closed.Load() {
		return ErrClosed
	}
	if len(r.Src) != len(r.Dst) {
		return fmt.Errorf("%w: %d vs %d", ErrBadSizes, len(r.Src), len(r.Dst))
	}
	atomic.StoreInt64(&r.submitted, time.Now().UnixNano())
	d.stats.Submitted.Add(1)
	color, ok := d.staging.Enqueue(r.idx)
	if !ok {
		return ErrNoSlots
	}
	if color == rbq.Red {
		return nil // active worker will pick it up
	}
flush:
	for {
		idx, _, ok := d.staging.Dequeue()
		if !ok {
			break
		}
		d.submission.Enqueue(idx)
	}
	old, ok := d.staging.SetColor(rbq.Red)
	if !ok {
		goto flush
	}
	if old == rbq.Red {
		return nil
	}
	// The kick-start "syscall".
	d.stats.Kicks.Add(1)
	select {
	case d.kick <- struct{}{}:
	default: // worker already has a pending kick
	}
	return nil
}

// worker is the kernel thread: drain staging, dispatch submissions to
// the controllers, recolor blue and sleep when idle.
func (d *Device) worker() {
	defer func() {
		close(d.copyQ)
		d.wg.Done()
	}()
	for {
		for {
			idx, _, ok := d.staging.Dequeue()
			if !ok {
				break
			}
			d.submission.Enqueue(idx)
		}
		if idx, _, ok := d.submission.Dequeue(); ok {
			d.copyQ <- idx // may block: natural backpressure
			continue
		}
		if _, ok := d.staging.SetColor(rbq.Blue); !ok {
			continue // staging refilled under us
		}
		if d.closed.Load() {
			// Drain anything that slipped in before the close.
			if !d.staging.Empty() || !d.submission.Empty() {
				d.staging.SetColor(rbq.Red)
				continue
			}
			return
		}
		<-d.kick
	}
}

// controller is one transfer controller: it performs the copy and the
// completion path (the interrupt handler's Release+Notify).
func (d *Device) controller() {
	defer d.wg.Done()
	for idx := range d.copyQ {
		r, ok := d.req(idx)
		if !ok {
			continue
		}
		copy(r.Dst, r.Src)
		atomic.StoreInt64(&r.completed, time.Now().UnixNano())
		d.stats.BytesMoved.Add(int64(len(r.Src)))
		d.stats.Completed.Add(1)
		d.completion.Enqueue(idx)
		select {
		case d.notify <- struct{}{}:
		default:
		}
	}
}

// RetrieveCompleted pops one completion notification without blocking;
// nil when none is pending.
func (d *Device) RetrieveCompleted() *Request {
	idx, _, ok := d.completion.Dequeue()
	if !ok {
		return nil
	}
	r, valid := d.req(idx)
	if !valid {
		return nil
	}
	return r
}

// Poll blocks until a completion notification is pending or the timeout
// expires (timeout <= 0 waits forever). It reports whether a
// notification is available.
func (d *Device) Poll(timeout time.Duration) bool {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for d.completion.Empty() {
		if d.closed.Load() {
			return !d.completion.Empty()
		}
		if timeout <= 0 {
			<-d.notify
			continue
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return !d.completion.Empty()
		}
		select {
		case <-d.notify:
		case <-time.After(remain):
			return !d.completion.Empty()
		}
	}
	return true
}

// Kicks reports how many kick-start syscall-equivalents were issued.
func (d *Device) Kicks() int64 { return d.stats.Kicks.Load() }

// Completed reports how many requests have completed.
func (d *Device) Completed() int64 { return d.stats.Completed.Load() }

// BytesMoved reports the total payload moved.
func (d *Device) BytesMoved() int64 { return d.stats.BytesMoved.Load() }
