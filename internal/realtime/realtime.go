// Package realtime runs the memif interface protocol under real
// concurrency: actual goroutines, actual memory copies, wall-clock time.
//
// Where package core executes the full system (page tables, DMA engine,
// cost model) on the simulated KeyStone II, this package is the
// user/kernel *interface* alone — the paper's central contribution —
// deployed as a host-side asynchronous copy service:
//
//   - application goroutines submit requests through the same staging /
//     submission / completion queues, built on the same red-blue
//     lock-free queue (package rbq);
//   - the SubmitRequest flush protocol (Section 4.4) decides with one
//     atomically-observed color whether the caller must kick the worker;
//   - a worker goroutine plays the kernel thread: woken by the "syscall"
//     (a channel send) — or spinning in its place under Options.BusyPoll —
//     it drains the queues, splits large requests into chunks, and
//     dispatches them to a pool of transfer goroutines (the DMA engine's
//     transfer controllers), recoloring the staging queues blue before
//     sleeping;
//   - completions are posted from the transfer goroutines — the
//     interrupt path — without the application holding any lock, onto
//     min(GOMAXPROCS, Controllers) bounded MPMC completion rings (ring
//     idx % N), so concurrent finishers and concurrent pollers never
//     serialize on one queue head; a single buffered notify edge backs
//     the (rare) parked pollers, and Poll blocks exactly like poll(2)
//     on the device file — after a bounded spin-before-sleep micro-wait
//     (when a completer can run concurrently; see spinWait) so a
//     completion landing within ~1 µs costs no timer or channel round
//     trip.
//
// # Busy-poll worker mode
//
// Options.BusyPoll is the io_uring SQPOLL analogue: instead of
// recoloring the shards blue and parking on the kick channel the moment
// the pipeline runs dry, the worker keeps spinning (yielding the
// processor each pass) for Options.BusyPollIdle. While it spins the
// shards stay red, so the Section 4.4 protocol itself erases the
// submit-side kick: a submitter observes red, stages its request and
// returns — no flush, no channel send, no syscall-equivalent at all.
// Only when the idle budget is exhausted does the worker fall back to
// the default recolor-blue → refill-check → park sequence, which keeps
// the park token lossless and the first post-idle submitter's single
// kick semantics exactly as in park/wake mode.
//
// # Sharded staging
//
// One staging queue makes every submitter CAS the same Michael–Scott
// tail. The device therefore keeps Options.StagingShards independent
// red-blue staging queues on the shared slab, each carrying its own
// color, and pins each submitting goroutine to a shard with a cheap
// pooled token (sync.Pool is per-P, so repeat submitters from the same
// context reuse the same shard and concurrent submitters spread out).
// The Section 4.4 protocol runs per shard unchanged: a submitter that
// observes blue flushes *its* shard and kicks once; the worker drains
// shards round-robin and recolors each blue independently before
// sleeping — so the single-kick amortization argument holds shard-wise,
// and a burst over S shards costs at most S kicks rather than one per
// request.
//
// # Batched submission
//
// SubmitBatch stages a whole slice of requests and runs the flush
// protocol and the kick once for the batch — Figure 7's batching
// amortization without giving up per-request completions.
// RetrieveCompletedBatch symmetrically drains many completions in one
// call so high-rate pollers don't pay one Poll wakeup per request.
//
// # Chunked parallel transfers, rings and stealing
//
// A request larger than Options.ChunkBytes is split into per-controller
// chunks, mirroring how the EDMA3 engine spreads one scatter-gather
// program across its transfer controllers. Chunks are distributed
// round-robin over per-controller bounded lock-free rings; an idle
// controller steals from its neighbors' rings, so a large request's
// chunks flow to whichever controllers have cycles instead of queuing
// behind a busy one, and the worker only waits when every ring is full
// (whole-engine backpressure, not head-of-line blocking). A per-request
// atomic remaining-chunk counter makes the completion path (Release +
// Notify) fire exactly once, from whichever controller finishes last.
//
// # Cancellation, deadlines, shutdown
//
// Cancel flips a pending request to canceled with one CAS; controllers
// observe the state before touching bytes, so a canceled or
// deadline-expired request completes with ErrCanceled / ErrDeadline
// instead of copying (its Dst contents are undefined if some chunks had
// already moved). CloseDrain bounds shutdown: it rejects new
// submissions, waits for the pipeline to drain, then closes.
//
// # Observability
//
// Every edge (submit, kick, wake, dispatch, chunk, complete, cancel) is
// counted — and optionally traced into a ring buffer — through the
// lock-free primitives of package obs; Stats returns a consistent-enough
// snapshot at any time, including under full load.
//
// Running this under `go test -race` validates the protocol's lock
// freedom claims with real preemption, which the deterministic simulator
// cannot.
//
// # Verification
//
// Beyond stress, the device carries a fault-injection layer
// (Options.Chaos, test-only hooks on the staging enqueue, the flush,
// dispatch, the chunk copy, and the completion path) that the chaos
// suite uses to force slab exhaustion, stalled controllers, and
// cancel/close storms deterministically; AuditSlots asserts the "no
// index may ever vanish" invariant after each storm, and the
// DoubleCompletes counter proves completion fired exactly once. The
// underlying queues are separately checked for linearizability by
// internal/check.
package realtime

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"memif/internal/obs"
	"memif/internal/obs/flight"
	"memif/internal/obs/lifecycle"
	"memif/internal/rbq"
)

// Errors returned by the device.
var (
	ErrClosed   = errors.New("realtime: device closed")
	ErrNoSlots  = errors.New("realtime: no free request slots")
	ErrBadSizes = errors.New("realtime: src and dst lengths differ")
	ErrCanceled = errors.New("realtime: request canceled")
	ErrDeadline = errors.New("realtime: request deadline exceeded")
)

// DefaultChunkBytes is the default split threshold and chunk size for
// large requests: big enough that per-chunk dispatch overhead is noise,
// small enough that a 1 MB request spreads across four controllers.
const DefaultChunkBytes = 256 << 10

// ChaosHooks are test-only fault-injection points threaded through the
// device's paths (installed via Options.Chaos; nil in production, where
// each site costs one pointer check). They let the verification suite
// force the failure windows that real load only samples: slab
// exhaustion at the flush, stalled transfer controllers, and
// cancel/close storms landing inside the submission protocol. Hooks run
// on the device's own goroutines — a hook that blocks stalls exactly
// the path it is installed on.
type ChaosHooks struct {
	// StagingEnqueue, when it returns true, forces this request's
	// staging enqueue in Submit/SubmitBatch to report slab exhaustion.
	StagingEnqueue func(idx uint32) bool
	// FlushEnqueue, when it returns true, forces one staging→submission
	// enqueue attempt to fail as if the slab were exhausted; returning
	// true persistently exhausts the flush retry budget and drives the
	// request down the ErrNoSlots completion path.
	FlushEnqueue func(idx uint32) bool
	// BeforeDispatch runs in the worker just before a submission is
	// chunked; blocking here holds an accepted request undispatched.
	BeforeDispatch func(idx uint32)
	// BeforeChunkCopy runs in a transfer controller before a chunk's
	// bytes move; blocking here models a stalled controller.
	BeforeChunkCopy func(idx uint32, off, end int)
	// OnFinish runs after a request's terminal outcome is resolved,
	// just before its completion is posted.
	OnFinish func(idx uint32, err error)
}

// Options configures a Device.
type Options struct {
	// NumReqs is the number of request slots (default 256).
	NumReqs int
	// Controllers is the number of concurrent copy goroutines — the
	// transfer controllers of the DMA engine. Default
	// min(4, GOMAXPROCS), mirroring the EDMA3's four TCs.
	Controllers int
	// ChunkBytes splits requests larger than this into that many-byte
	// chunks dispatched to the controllers independently. 0 means
	// DefaultChunkBytes; negative disables chunking (one chunk per
	// request, the pre-chunking behavior).
	ChunkBytes int
	// StagingShards is the number of independent red-blue staging
	// queues submitters are spread across. 0 means min(4, GOMAXPROCS);
	// 1 reproduces the single-staging-queue behavior of the original
	// protocol (and of the paper's single shared area).
	StagingShards int
	// RingDepth is the per-controller chunk ring capacity, rounded up
	// to a power of two. 0 means DefaultRingDepth. Ignored when
	// LegacyCopyQueue is set.
	RingDepth int
	// LegacyCopyQueue routes chunks through a single shared unbuffered
	// channel — the pre-ring dispatch path, kept for the work-stealing
	// ablation benchmarks. Production devices should leave this false.
	LegacyCopyQueue bool
	// TraceDepth enables the ring-buffer event trace with that many
	// slots; 0 disables tracing (the default — counters and histograms
	// are always on).
	TraceDepth int
	// TraceSampleShift tunes the per-request lifecycle tracer: one
	// request in 2^shift gets every stage transition timestamped and
	// attributed to the per-stage latency histograms. 0 means
	// DefaultTraceSampleShift; negative disables lifecycle tracing
	// entirely (every instrumentation site then costs one nil check).
	TraceSampleShift int
	// TraceFullCapture samples every request regardless of
	// TraceSampleShift — the debug mode for reconstructing a complete
	// timeline. Its overhead is measured in EXPERIMENTS.md; leave it off
	// in production and benchmarks.
	TraceFullCapture bool
	// TraceCaptureDepth is the completed-lifecycle capture ring depth
	// behind Stats().Lifecycle.Captured and the Chrome trace export
	// (0 = lifecycle.DefaultCaptureDepth).
	TraceCaptureDepth int
	// QoS tunes priority classes, admission control and adaptive
	// completion; the zero value applies the defaults (see QoSOptions).
	QoS QoSOptions
	// BusyPoll spins the dispatch worker instead of parking it the
	// moment the pipeline runs dry (the io_uring SQPOLL analogue).
	// While the worker spins the staging shards stay red, so the
	// submit fast path degenerates to stage-and-return: no flush, no
	// kick-channel send. Costs up to one core while enabled; see
	// BusyPollIdle for the bound.
	BusyPoll bool
	// BusyPollIdle is how long a busy-polling worker keeps spinning
	// with no work before falling back to the default recolor-and-park
	// path (it re-enters the spin on the next kick). 0 means
	// DefaultBusyPollIdle. Ignored unless BusyPoll is set.
	BusyPollIdle time.Duration
	// CompletionRings is the number of MPMC completion rings
	// completions are spread across (ring = slot index % N). 0 means
	// min(GOMAXPROCS, Controllers), clamped to [1, NumReqs].
	CompletionRings int
	// Flight configures the always-on flight recorder: retroactive
	// outlier capture (every request's stage stamps kept, breaching
	// requests snapshotted into a bounded ring), the stall watchdog,
	// and per-class/per-tenant SLO burn rates. The zero value arms it
	// with defaults; set Flight.Disable to fall back to pure
	// 1-in-2^TraceSampleShift lifecycle sampling. The recorder is
	// independent of the tracer: armed stage stamps live in plain
	// Request fields and a breach synthesizes its vector from them, so
	// capture has no sampling holes even with the tracer off.
	Flight flight.Options
	// Chaos installs test-only fault-injection hooks. Leave nil outside
	// the verification suite.
	Chaos *ChaosHooks
}

// DefaultBusyPollIdle is the default spin budget of a busy-polling
// worker: long enough that request gaps at realistic rates (tens of
// thousands per second) never let the worker park, short enough that an
// idle device stops burning a core within a millisecond.
const DefaultBusyPollIdle = time.Millisecond

// DefaultTraceSampleShift is the default lifecycle sampling rate: one
// request in 2^7 = 128, cheap enough to leave on under full load (the
// overhead guard in the bench suite holds it under 3% on the 8-submitter
// small-request benchmark) while still collecting thousands of samples
// per second at realistic rates.
const DefaultTraceSampleShift = 7

// DefaultOptions mirrors the EDMA3-ish defaults.
func DefaultOptions() Options {
	return Options{NumReqs: 256, Controllers: defaultControllers(), ChunkBytes: DefaultChunkBytes}
}

func defaultControllers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// defaultStagingShards matches the controller default: enough shards
// that GOMAXPROCS submitters rarely share a tail, without inflating the
// worst-case kicks-per-burst (one per shard) beyond the controller
// count.
func defaultStagingShards() int { return defaultControllers() }

// Request lifecycle states, held in the low stateBits of Request.state.
// The remaining bits carry the owning tenant id while the request is in
// a non-terminal claimed state (pending/canceled/expired), so a cancel
// is a single CAS that atomically checks both "still pending" and
// "still mine" — the mechanism behind Tenant.CancelAll's isolation
// guarantee. stIdle and stDone are stored unpacked (tenant 0 pattern):
// an idle or completed slot is not claimable by state word alone.
const (
	stIdle     uint32 = iota // allocated, not submitted
	stPending                // submitted, not yet terminal
	stCanceled               // Cancel won the race against completion
	stExpired                // deadline observed before dispatch
	stDone                   // completion posted

	stateBits = 3
	stateMask = 1<<stateBits - 1
)

// packState builds the state word for tenant's claim on a request.
func packState(tenant, st uint32) uint32 { return tenant<<stateBits | st }

// Request is the realtime mov_req: a copy between two caller-owned byte
// slices. Populate Src, Dst and (optionally) Cookie and Deadline before
// Submit; after the completion is retrieved, Err reports the outcome and
// Latency the submission-to-completion wall time.
type Request struct {
	idx uint32

	Src, Dst []byte
	Cookie   uint64
	// Class is the request's priority class: admission, dispatch order
	// and shedding key off it. The zero value is ClassForeground, so
	// callers that never set it behave exactly as before classes
	// existed. Set before Submit.
	Class Class
	// Deadline, when nonzero, expires the request: if the worker
	// reaches it after the deadline it completes with ErrDeadline
	// without copying.
	Deadline time.Time

	// Err is the request outcome, valid once the completion has been
	// retrieved: nil, ErrCanceled, ErrDeadline or ErrNoSlots.
	Err error

	// tenant is the owning tenant id, stamped by the Submit wrappers
	// (0 = the device's default namespace) and reset at AllocRequest.
	// Atomic so a concurrent Cancel may read it race-free.
	tenant     atomic.Uint32
	state      atomic.Uint32
	chunksLeft atomic.Int32
	submitted  atomic.Int64 // UnixNano
	completed  atomic.Int64

	// Flight-recorder stage stamps, written only with the recorder
	// armed (d.frArmed) and read solely on the retrieval path when a
	// breach synthesizes its stamp vector (lcEnd). flushedNs and
	// dispatchedNs each have one writer per lifecycle whose write is
	// ordered before the reader by the pipeline's queue handoffs, so
	// they are plain fields — no atomic store on the per-request hot
	// path. copyStartNs is contended by parallel chunk controllers
	// (first fresh stamp wins) and stays atomic. None are cleared on
	// slot reuse: a stale value is older than the new submitted stamp,
	// and every reader discards stamps below it.
	flushedNs    int64
	dispatchedNs int64
	copyStartNs  atomic.Int64
}

// word packs st with the request's tenant claim.
func (r *Request) word(st uint32) uint32 { return packState(r.tenant.Load(), st) }

// Index returns the request's slot index in [0, Options.NumReqs). A
// slot is exclusive from AllocRequest to FreeRequest, so the index is a
// stable identity for per-slot caller state (e.g. a preallocated
// destination buffer that can never be written by two in-flight
// requests at once).
func (r *Request) Index() int { return int(r.idx) }

// Latency returns the wall-clock submission-to-completion time. ok is
// false — and the duration 0 — until the request has actually
// completed, so a racing reader can never observe a garbage negative
// duration.
func (r *Request) Latency() (time.Duration, bool) {
	c := r.completed.Load()
	s := r.submitted.Load()
	if s == 0 || c == 0 {
		return 0, false
	}
	return time.Duration(c - s), true
}

// chunk is one unit of controller work: a byte range of one request.
// nano carries the ring-push timestamp when the request's lifecycle is
// sampled (0 otherwise), so the consumer can attribute the dispatch-ring
// wait — and steal delay — without any per-chunk allocation.
type chunk struct {
	idx      uint32
	off, end int
	nano     int64
}

// Trace event kinds recorded when Options.TraceDepth > 0. Payload words
// A/B per kind: request index and size/chunk-count/error code.
const (
	EvSubmit uint32 = iota
	EvKick
	EvWake
	EvDispatch
	EvChunk
	EvComplete
	EvCancel
)

// EventName renders a trace kind for display.
func EventName(k uint32) string {
	switch k {
	case EvSubmit:
		return "submit"
	case EvKick:
		return "kick"
	case EvWake:
		return "wake"
	case EvDispatch:
		return "dispatch"
	case EvChunk:
		return "chunk"
	case EvComplete:
		return "complete"
	case EvCancel:
		return "cancel"
	default:
		return fmt.Sprintf("ev(%d)", k)
	}
}

// metrics is the device's obs instrument set.
//
// False-sharing audit (PR 8): the hot counters are grouped by writer
// population — submitters, the worker, the finishers (controllers plus
// the worker's inline path), and pollers — with a cache-line pad
// between groups, so one population's RMW traffic doesn't invalidate
// another's line. Within a group the writers genuinely share the
// counter (true sharing, the price of a global count); the per-chunk
// counters that used to true-share here (chunks, bytesMoved, steals)
// moved to per-controller ctrCounters blocks instead.
type metrics struct {
	// Submitter-side: bumped on Submit/SubmitBatch/admit.
	submitted, kicks obs.Counter
	batches, shed    obs.Counter
	_                [64]byte
	// Finisher-side: bumped in finish, from whichever controller (or
	// the worker, inline) retires the request.
	completed, canceled obs.Counter
	expired, failed     obs.Counter
	overloaded          obs.Counter
	doubleCompletes     obs.Counter
	_                   [64]byte
	// Worker-side: bumped only on the dispatch goroutine.
	wakes, inlineCompleted       obs.Counter
	agedPops, retunes            obs.Counter
	dispatchRetries              obs.Counter
	busyPollSpins, busyPollParks obs.Counter
	dispatched                   obs.Counter
	_                            [64]byte
	// Poller-side: bumped in Poll/PollContext's micro-wait and on the
	// retrieval paths (the watchdog's progress probe).
	pollerSpins, pollerParks obs.Counter
	retrieved                obs.Counter
	_                        [64]byte
	// Cold or mixed-writer instruments.
	enqueueRetries obs.Counter
	classSubmitted [NumClasses]obs.Counter
	classCompleted [NumClasses]obs.Counter
	classShed      [NumClasses]obs.Counter
	classLatency   [NumClasses]obs.Histogram
	submissionHW   obs.Gauge
	sizes          obs.Histogram
	_              [64]byte
	completionHW   obs.Gauge
	latency        obs.Histogram
	trace          *obs.Trace
}

// ctrCounters is one transfer controller's private counter block,
// padded to a cache line. The old shared chunks/bytesMoved/steals
// counters were the hottest true sharing in the engine — every
// controller RMW'd the same three adjacent words once per chunk — so
// each controller (plus one extra slot for the worker's inline-copy
// path) now counts privately and Stats sums the blocks.
type ctrCounters struct {
	chunks, bytesMoved, steals atomic.Int64
	_                          [40]byte
}

// paddedCount is an atomic counter on its own cache line, for arrays
// of per-class/per-shard counters whose neighbors are written by
// different goroutine populations.
type paddedCount struct {
	n atomic.Int64
	_ [56]byte
}

// StatsSnapshot is a point-in-time view of the device counters,
// histograms, queue watermarks and (when enabled) the event trace.
// Safe to take from any goroutine at any time.
type StatsSnapshot struct {
	// Request outcomes. Completed counts every terminal request,
	// including the Canceled / Expired / Failed subsets.
	Submitted, Completed      int64
	Canceled, Expired, Failed int64
	// Kicks counts the kick-start syscall-equivalents; WorkerWakes the
	// times the worker actually slept and was woken (amortization means
	// Kicks can stay near 1 for a burst). Batches counts SubmitBatch
	// calls — each costs at most one kick regardless of its length.
	Kicks, WorkerWakes, Batches int64
	// BusyPollSpins counts idle passes of a busy-polling worker (each
	// is one full shard-drain + submission-pop that found nothing,
	// followed by a yield); BusyPollParks counts the times the spin
	// budget ran out and the worker fell back to the park path. Both
	// stay 0 with BusyPoll off.
	BusyPollSpins, BusyPollParks int64
	// PollerSpins counts Poll/PollContext calls whose bounded
	// spin-before-sleep micro-wait observed a completion without
	// parking; PollerParks counts blocking waits on the notify edge.
	PollerSpins, PollerParks int64
	// Chunks counts controller work units; BytesMoved the payload
	// actually copied (canceled chunks don't count).
	Chunks, BytesMoved int64
	// Steals counts chunks a controller popped from another
	// controller's ring; DispatchRetries counts worker backoffs with
	// every ring full.
	Steals, DispatchRetries int64
	// EnqueueRetries counts transient slab-exhaustion retries in the
	// flush path.
	EnqueueRetries int64
	// DoubleCompletes counts completion paths that found the request
	// already terminal. The protocol guarantees completion fires exactly
	// once, so any nonzero value is a bug; the chaos suite asserts it
	// stays zero.
	DoubleCompletes int64
	// Shed counts submissions the admission controller rejected with
	// ErrOverload (single submits returned the error; batch members
	// surfaced it through their completion). Overloaded is the subset
	// that surfaced as completions. Both exclude ErrNoSlots, which
	// remains a Failed outcome.
	Shed, Overloaded int64
	// InlineCompleted counts requests copied inline by the worker (the
	// adaptive poll path); InlineThresholdBytes is the current
	// self-tuned cutoff (0 = inline completion disabled); Retunes counts
	// threshold recomputations.
	InlineCompleted, InlineThresholdBytes, Retunes int64
	// AgedPops counts dispatches that served a lower class out of
	// strict-priority order via the aging credit.
	AgedPops int64
	// Classes breaks submissions down by priority class.
	Classes [NumClasses]ClassStats
	// Tenants breaks submissions down by tenant namespace, default
	// tenant (id 0) first, then OpenTenant order.
	Tenants []TenantStats
	// Queue-depth high watermarks, from rbq's atomic Size.
	SubmissionHighWater, CompletionHighWater int64
	// Live queue depths sampled at Stats time (the watermark fields
	// above carry the maxima): per-shard staging, submission,
	// completion, and per-controller dispatch-ring occupancy. Nil ring
	// depths mean the legacy shared-channel dispatch path.
	// CompletionDepth sums the per-ring occupancies in
	// CompletionDepths (one entry per completion ring).
	StagingDepths                    []int64
	SubmissionDepth, CompletionDepth int64
	CompletionDepths                 []int64
	RingDepths                       []int64
	// Latency is the submission-to-completion histogram (ns); Sizes the
	// request payload histogram (bytes).
	Latency, Sizes obs.HistogramSnapshot
	// Lifecycle is the per-request lifecycle tracer snapshot: per-stage
	// latency histograms (staging wait, dispatch wait, ring wait, steal
	// delay, copy, completion dwell) and the captured complete
	// lifecycles. Enabled is false when Options.TraceSampleShift < 0.
	Lifecycle lifecycle.Snapshot
	// Flight is the flight-recorder snapshot: captured outliers and
	// stall reports, adaptive per-lane thresholds, and SLO burn rates.
	// Flight.Enabled is false when Options.Flight.Disable is set (or
	// lifecycle tracing is off entirely).
	Flight flight.Snapshot
	// Trace holds the retained ring-buffer events (nil unless
	// Options.TraceDepth > 0). Render with obs.FormatEvents(…, EventName).
	Trace []obs.Event
}

// ClassStats is one priority class's slice of the device counters.
type ClassStats struct {
	// Submitted counts accepted submissions at this class; Completed
	// the terminal ones; Shed the admission rejections (never accepted,
	// except batch members, which also complete with ErrOverload).
	Submitted, Completed, Shed int64
	// InFlight is the live accepted-but-not-terminal count.
	InFlight int64
	// QueueDepth is the class's submission-queue depth at Stats time.
	QueueDepth int64
	// Latency is the submission-to-completion histogram (ns) of this
	// class alone.
	Latency obs.HistogramSnapshot
}

// submitterToken pins a submitting goroutine to one staging shard.
// Tokens live in a sync.Pool, whose per-P caches make the pin cheap and
// naturally aligned with the scheduler: a goroutine that keeps
// submitting from the same P keeps hitting the same shard, and
// goroutines on different Ps land on different shards.
type submitterToken struct{ shard uint32 }

// Device is one realtime memif instance.
type Device struct {
	opts       Options
	chunkBytes int // resolved: 0 disables chunking
	qos        QoSOptions
	reqs       []*Request
	slab       *rbq.Slab

	freeList   *rbq.Queue
	staging    []*rbq.Queue           // per-shard red-blue staging queues
	submission [NumClasses]*rbq.Queue // per-class, popped in priority order
	compRings  []*compRing            // per-core completion rings (ring = idx % N)

	classLimit [NumClasses]int64 // admission occupancy thresholds (slots)
	// classInFlight is written by submitters (accept) and finishers
	// (finish) at once; each class sits on its own line so foreground
	// accounting traffic doesn't drag the scavenger counter's line
	// around (and vice versa).
	classInFlight [NumClasses]paddedCount
	inline        atomic.Int64 // adaptive inline-completion threshold (bytes; 0 = off)
	_             [56]byte     // inline is read per dispatch; keep finisher writes below off its line
	latEWMA       atomic.Int64 // completion-latency EWMA (ns), the retry-after hint
	_             [56]byte
	dispatchSeq   uint64 // worker-only, drives retune cadence
	nextRing      int    // worker-only round-robin cursor over rings
	_             [48]byte

	tenants  atomic.Pointer[[]*tenantState] // COW tenant table; [0] = default namespace
	tenantMu sync.Mutex                     // serializes OpenTenant appends
	sched    *tenantSched                   // worker-only tenant-aware scheduler (owns aging credits)

	tokens   sync.Pool     // *submitterToken: shard affinity for submitters
	tokenSeq atomic.Uint32 // round-robin shard assignment for new tokens

	pollTokens sync.Pool     // *pollerToken: preferred completion ring per poller
	pollSeq    atomic.Uint32 // round-robin ring assignment for new poller tokens

	kick   chan struct{} // the MOV_ONE "syscall": wake the worker
	notify chan struct{} // completion edge for parked Polls
	done   chan struct{} // closed at Close: unblocks sleeping Polls

	rings []*chunkRing  // per-controller chunk rings (nil in legacy mode)
	work  chan struct{} // work-available edge for parked controllers
	copyQ chan chunk    // legacy shared dispatch channel (ablation only)

	// ctr holds the per-controller counter blocks; ctr[Controllers] is
	// the worker's slot for the inline-completion path. See ctrCounters.
	ctr []ctrCounters

	busyPollIdle time.Duration // resolved Options.BusyPollIdle
	pollSpin     bool          // poller micro-wait enabled; see spinWait

	closing atomic.Bool // CloseDrain: reject new submissions
	closed  atomic.Bool
	_       [56]byte     // closing/closed are read per submit; active's RMW traffic stays off their line
	active  atomic.Int64 // Submit calls in flight; Close waits them out
	_       [56]byte
	wg      sync.WaitGroup
	m       metrics
	lc      *lifecycle.Tracer // nil when lifecycle tracing is disabled
	chaos   *ChaosHooks

	// Flight recorder (nil fields when Options.Flight.Disable). fr and
	// frWatch are the recorder and its watchdog; the monitor goroutine
	// (flight.go) drives both and exits when frStop closes.
	fr      *flight.Recorder
	frWatch *flight.Watchdog
	frStop  chan struct{}
	frWg    sync.WaitGroup
	// frArmed mirrors fr != nil as a plain bool the per-request paths
	// branch on: with the recorder armed, every request carries the
	// cheap plain-field stage stamps lcEnd synthesizes breach vectors
	// from (see Request.flushedNs).
	frArmed bool
	compCap int64 // summed completion-ring capacity (watchdog high water)
}

// pollerToken pins a polling goroutine to a preferred completion ring —
// the local-first bias: each retrieval scans all rings round-robin but
// starts at its own, so concurrent pollers drain different rings
// instead of racing CAS-for-CAS on ring 0.
type pollerToken struct{ ring uint32 }

// Open creates a device and starts its worker and transfer controllers.
func Open(opts Options) *Device {
	if opts.NumReqs <= 0 {
		opts.NumReqs = 256
	}
	if opts.Controllers <= 0 {
		opts.Controllers = defaultControllers()
	}
	if opts.StagingShards <= 0 {
		opts.StagingShards = defaultStagingShards()
	}
	if opts.RingDepth <= 0 {
		opts.RingDepth = DefaultRingDepth
	}
	chunkBytes := opts.ChunkBytes
	if chunkBytes == 0 {
		chunkBytes = DefaultChunkBytes
	} else if chunkBytes < 0 {
		chunkBytes = 0 // disabled
	}
	if opts.BusyPollIdle <= 0 {
		opts.BusyPollIdle = DefaultBusyPollIdle
	}
	nCompRings := opts.CompletionRings
	if nCompRings <= 0 {
		nCompRings = runtime.GOMAXPROCS(0)
		if nCompRings > opts.Controllers {
			nCompRings = opts.Controllers
		}
	}
	if nCompRings < 1 {
		nCompRings = 1
	}
	if nCompRings > opts.NumReqs {
		nCompRings = opts.NumReqs
	}
	opts.CompletionRings = nCompRings
	qos := resolveQoS(opts.QoS)
	// free + one submission queue per class + one dummy per staging
	// shard (completions live on the MPMC rings, not the slab); slack
	// scales with the queue count since every queue can sit in a
	// transient dummy-recycling window at once.
	shards := opts.StagingShards
	numQueues := 1 + NumClasses + shards
	slab := rbq.NewSlabForQueues(opts.NumReqs, numQueues, 5+numQueues)
	d := &Device{
		opts:         opts,
		chunkBytes:   chunkBytes,
		qos:          qos,
		reqs:         make([]*Request, opts.NumReqs),
		slab:         slab,
		freeList:     slab.NewQueue(rbq.Blue),
		staging:      make([]*rbq.Queue, shards),
		compRings:    make([]*compRing, nCompRings),
		ctr:          make([]ctrCounters, opts.Controllers+1),
		busyPollIdle: opts.BusyPollIdle,
		pollSpin:     opts.BusyPoll || runtime.GOMAXPROCS(0) > 1,
		kick:         make(chan struct{}, 1),
		notify:       make(chan struct{}, 1),
		done:         make(chan struct{}),
		chaos:        opts.Chaos,
	}
	// Size each ring for every slot mapped to it, so a push can never
	// find it full (a slot has at most one outstanding completion).
	perRing := (opts.NumReqs + nCompRings - 1) / nCompRings
	for i := range d.compRings {
		d.compRings[i] = newCompRing(perRing)
	}
	d.compCap = int64(perRing) * int64(nCompRings)
	for c := range d.submission {
		d.submission[c] = slab.NewQueue(rbq.Blue)
	}
	for c, share := range qos.ClassShares {
		limit := int64(share * float64(opts.NumReqs))
		if share >= 1 || limit > int64(opts.NumReqs) {
			limit = int64(opts.NumReqs)
		}
		if limit < 1 {
			limit = 1
		}
		d.classLimit[c] = limit
	}
	d.inline.Store(int64(qos.InlineThreshold))
	tab := []*tenantState{newDefaultTenant()}
	d.tenants.Store(&tab)
	d.sched = newTenantSched(d.submission[:],
		func(idx uint32) uint32 { return d.reqs[idx].tenant.Load() },
		d.tenantWeight, int64(qos.AgingCredit))
	for i := range d.staging {
		d.staging[i] = slab.NewQueue(rbq.Blue)
	}
	d.tokens.New = func() any {
		return &submitterToken{shard: d.tokenSeq.Add(1) % uint32(shards)}
	}
	d.pollTokens.New = func() any {
		return &pollerToken{ring: d.pollSeq.Add(1) % uint32(nCompRings)}
	}
	if opts.LegacyCopyQueue {
		d.copyQ = make(chan chunk)
	} else {
		d.rings = make([]*chunkRing, opts.Controllers)
		for i := range d.rings {
			d.rings[i] = newChunkRing(opts.RingDepth)
		}
		d.work = make(chan struct{}, opts.Controllers)
	}
	d.m.trace = obs.NewTrace(opts.TraceDepth)
	lcShift := opts.TraceSampleShift
	if opts.TraceFullCapture {
		lcShift = 0
	} else if lcShift == 0 {
		lcShift = DefaultTraceSampleShift
	}
	d.lc = lifecycle.New(opts.NumReqs, lcShift, opts.TraceCaptureDepth, NumClasses)
	if !opts.Flight.Disable {
		fo := opts.Flight
		if fo.Classes <= 0 || fo.Classes > flight.MaxClasses {
			fo.Classes = NumClasses
		}
		d.fr = flight.New(fo)
	}
	if d.fr != nil {
		// Retroactive capture needs stage stamps for every request, not
		// 1/128 — but not through the tracer's atomic records, whose
		// per-stage stores cost more than the recorder's whole overhead
		// budget. Armed stamps live in plain Request fields instead
		// (amortized clock, one writer per handoff stage); the tracer
		// stays the sampled full-fidelity instrument.
		d.frArmed = true
		d.frWatch = flight.NewWatchdog(opts.Flight.Watchdog)
		d.frStop = make(chan struct{})
		d.frWg.Add(1)
		go d.monitor()
	}
	for i := range d.reqs {
		d.reqs[i] = &Request{idx: uint32(i)}
		if _, ok := d.freeList.Enqueue(uint32(i)); !ok {
			panic("realtime: slab sized too small")
		}
	}
	d.wg.Add(1 + opts.Controllers)
	go d.worker()
	for c := 0; c < opts.Controllers; c++ {
		go d.controller(c)
	}
	return d
}

// backoff is the bounded spin-then-sleep discipline shared by every
// wait loop that must not burn a core unboundedly: yield for a while,
// then start sleeping.
func backoff(attempt int) {
	if attempt%256 == 255 {
		time.Sleep(10 * time.Microsecond)
	} else {
		runtime.Gosched()
	}
}

// Close shuts the device down and waits for the kernel-side goroutines.
// Requests already accepted are completed first (the worker drains the
// queues before exiting); a Submit racing Close may still be rejected
// with ErrClosed. Use CloseDrain for a bounded-wait shutdown that
// closes the submission window first.
func (d *Device) Close() {
	d.closing.Store(true)
	// Wait out Submit calls already past the closing check (the
	// submitter gate incremented active before that check, so with
	// sequentially consistent atomics no Submit can slip in unseen).
	// Without this, a staging enqueue could land after the worker's
	// final drain and strand the request forever — the lost-index bug
	// the chaos close-race test pins. Spin-then-sleep: a preempted
	// submitter can hold the gate for a scheduling quantum, and a
	// pure-Gosched wait would burn this core for all of it.
	for attempt := 0; d.active.Load() != 0; attempt++ {
		backoff(attempt)
	}
	if d.closed.Swap(true) {
		return
	}
	if d.frStop != nil {
		close(d.frStop)
		d.frWg.Wait()
	}
	select {
	case d.kick <- struct{}{}:
	default:
	}
	d.wg.Wait()
	close(d.done) // unblock any sleeping Poll
}

// CloseDrain rejects new submissions, waits up to timeout for every
// outstanding request to reach its completion queue, then closes the
// device. It reports whether the pipeline drained fully within the
// timeout; on false the close still proceeds (with Close's semantics).
// Thin wrapper over CloseDrainContext.
func (d *Device) CloseDrain(timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return d.CloseDrainContext(ctx)
}

// CloseDrainContext rejects new submissions, waits until every
// outstanding request has reached its completion queue or ctx is done,
// then closes the device. It reports whether the pipeline drained fully;
// on false the close still proceeds (with Close's semantics).
func (d *Device) CloseDrainContext(ctx context.Context) bool {
	d.closing.Store(true)
	drained := true
	for d.m.completed.Load() < d.m.submitted.Load() {
		if d.closed.Load() {
			break
		}
		if ctx.Err() != nil {
			drained = false
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	d.Close()
	return drained
}

// req validates an index off a queue.
func (d *Device) req(idx uint32) (*Request, bool) {
	if int(idx) >= len(d.reqs) {
		return nil, false
	}
	return d.reqs[idx], true
}

// AllocRequest takes a request slot off the free list; nil when
// exhausted.
func (d *Device) AllocRequest() *Request {
	idx, _, ok := d.freeList.Dequeue()
	if !ok {
		return nil
	}
	r := d.reqs[idx]
	r.Src, r.Dst, r.Cookie, r.Err = nil, nil, 0, nil
	r.Class = ClassForeground
	r.Deadline = time.Time{}
	r.tenant.Store(0)
	r.state.Store(stIdle)
	r.submitted.Store(0)
	r.completed.Store(0)
	return r
}

// FreeRequest returns a slot to the free list.
func (d *Device) FreeRequest(r *Request) {
	d.mustEnqueue(d.freeList, r.idx)
}

// trace records an event when tracing is enabled.
func (d *Device) trace(kind uint32, a, b uint64) {
	if d.m.trace != nil {
		d.m.trace.Record(time.Now().UnixNano(), kind, a, b)
	}
}

// lcStamp timestamps one lifecycle stage for idx. The inactive fast
// path is a single atomic load — the clock is only read for the one
// request in 2^TraceSampleShift actually being traced.
func (d *Device) lcStamp(idx uint32, st lifecycle.Stage) {
	if d.lc.Active(int(idx)) {
		d.lc.Transition(int(idx), st, time.Now().UnixNano())
	}
}

// lcOutcome classifies a retrieved request's error for the tracer and
// the outlier record.
func lcOutcome(err error) lifecycle.Outcome {
	switch {
	case err == nil:
		return lifecycle.OutcomeOK
	case errors.Is(err, ErrCanceled):
		return lifecycle.OutcomeCanceled
	case errors.Is(err, ErrDeadline):
		return lifecycle.OutcomeExpired
	default:
		return lifecycle.OutcomeFailed
	}
}

// lcEnd closes r's lifecycle on the retrieval path and — with the
// flight recorder armed — runs the breach check through the caller's
// batch accumulator: the completed latency trains the lane EWMA and SLO
// counters (folded once per batch by acc.Flush), and a breach copies a
// full seven-stage stamp vector plus the ambient congestion picture
// into the outlier ring. No sampling holes: every retrieved request
// takes the breach check.
//
// Sampled lifecycles (1 in 2^shift) close through the tracer with a
// fresh clock read and capture their genuine stamp vector. Every other
// request pays only plain loads: its vector is synthesized on breach
// from the armed stamps (Request.flushedNs et al.) with nano — the
// caller's batch-amortized retrieve timestamp (0 = read here) — as the
// retrieved stage. Stamps below the submitted stamp are a previous
// occupant's and are discarded; the worker's pass-amortized clock makes
// intra-pipeline stamps at most a few microseconds stale, invisible at
// the millisecond scale that defines a breach. A missing copy-start
// stamp means the worker copied inline at dispatch, so the dispatch
// stamp is the exact copy-start time and the record is flagged inline.
func (d *Device) lcEnd(r *Request, nano int64, acc *flight.Acc) {
	if d.lc.Active(int(r.idx)) {
		out := lcOutcome(r.Err)
		// The tenant span set rides the same stamp derivation:
		// per-tenant stage attribution at zero extra clock reads.
		lc, ok := d.lc.EndInto(int(r.idx), out, time.Now().UnixNano(), &d.tenantOf(r).spans)
		if !ok || d.fr == nil {
			return
		}
		lat := lc.TS[lifecycle.StageRetrieved] - lc.TS[lifecycle.StageSubmit]
		tenant := int(r.tenant.Load())
		thr, breach := acc.Observe(lc.Class, tenant, lat, out == lifecycle.OutcomeOK)
		if !breach {
			return
		}
		o := flight.Outlier{
			Kind:        flight.KindLatency,
			Nano:        lc.TS[lifecycle.StageRetrieved],
			Slot:        int32(lc.Slot),
			Class:       int32(lc.Class),
			Tenant:      uint32(tenant),
			Bytes:       lc.Bytes,
			Outcome:     int32(lc.Outcome),
			Flags:       lc.Flags,
			LatencyNs:   lat,
			ThresholdNs: thr,
			TS:          lc.TS,
			Ambient:     d.ambient(),
		}
		d.fr.Capture(&o)
		return
	}
	if d.fr == nil {
		return
	}
	if nano == 0 {
		nano = time.Now().UnixNano()
	}
	sub := r.submitted.Load()
	if sub == 0 {
		// Shed before staging (admission or slot exhaustion): there is
		// no pipeline latency to attribute, and nano-sub would read as
		// an epoch-sized breach with an empty stamp vector.
		return
	}
	lat := nano - sub
	tenant := int(r.tenant.Load())
	thr, breach := acc.Observe(int(r.Class), tenant, lat, r.Err == nil)
	if !breach {
		return
	}
	// Synthesize the stamp vector (breaches only — the hot path never
	// runs this). Clamps keep it monotone: amortized clocks can lag a
	// fresher upstream stamp by microseconds, and stale stamps from the
	// slot's previous life fall below the submitted stamp.
	comp := r.completed.Load()
	disp := r.dispatchedNs
	if disp < sub {
		disp = sub
	}
	var flags uint32
	cs := r.copyStartNs.Load()
	if cs < sub {
		cs = disp
		flags |= lifecycle.FlagInline
	} else if cs < disp {
		cs = disp
	}
	if comp < cs {
		comp = cs
	}
	fl := r.flushedNs
	if fl < sub {
		fl = sub
	} else if fl > disp {
		fl = disp
	}
	if nano < comp {
		nano = comp
	}
	o := flight.Outlier{
		Kind:        flight.KindLatency,
		Nano:        nano,
		Slot:        int32(r.idx),
		Class:       int32(r.Class),
		Tenant:      uint32(tenant),
		Bytes:       int64(len(r.Src)),
		Outcome:     int32(lcOutcome(r.Err)),
		Flags:       flags,
		LatencyNs:   lat,
		ThresholdNs: thr,
		TS: [lifecycle.NumStages]int64{
			lifecycle.StageSubmit:     sub,
			lifecycle.StageFlushed:    fl,
			lifecycle.StageDispatched: disp,
			lifecycle.StageCopyStart:  cs,
			lifecycle.StageCopyEnd:    comp,
			lifecycle.StageCompleted:  comp,
			lifecycle.StageRetrieved:  nano,
		},
		Ambient: d.ambient(),
	}
	d.fr.Capture(&o)
}

// wake posts the (single-token) completion edge for parked Polls.
func (d *Device) wake() {
	select {
	case d.notify <- struct{}{}:
	default:
	}
}

// pushCompletion posts one completed request index onto its completion
// ring. The rings are sized so the push cannot fail (one outstanding
// completion per slot, every slot's ring fits all of its slots); the
// backoff loop is defense in depth, not a code path.
func (d *Device) pushCompletion(idx uint32) {
	cr := d.compRings[int(idx)%len(d.compRings)]
	for attempt := 0; !cr.tryPush(idx); attempt++ {
		backoff(attempt)
	}
}

// popCompletion scans the completion rings round-robin from start and
// pops the first pending completion it finds.
func (d *Device) popCompletion(start int) (uint32, bool) {
	n := len(d.compRings)
	for i := 0; i < n; i++ {
		if idx, ok := d.compRings[(start+i)%n].tryPop(); ok {
			return idx, true
		}
	}
	return 0, false
}

// pollerRing picks the calling goroutine's preferred starting ring for
// the local-first drain bias. sync.Pool's per-P caches keep a repeat
// poller on the same ring and spread concurrent pollers out, exactly
// like the submitter shard tokens.
func (d *Device) pollerRing() int {
	if len(d.compRings) == 1 {
		return 0
	}
	t := d.pollTokens.Get().(*pollerToken)
	ring := int(t.ring)
	d.pollTokens.Put(t)
	return ring
}

// completionEmpty reports whether every completion ring is empty (racy
// snapshot, same contract the old single queue's Empty had).
func (d *Device) completionEmpty() bool {
	for _, cr := range d.compRings {
		if !cr.empty() {
			return false
		}
	}
	return true
}

// completionDepth sums the per-ring occupancies.
func (d *Device) completionDepth() int64 {
	var n int64
	for _, cr := range d.compRings {
		n += cr.size()
	}
	return n
}

// flushRetries bounds the transient-slab-exhaustion retry loop in the
// staging→submission flush. Exhaustion there is always transient — every
// request index occupies at most one queue node, and the slab carries
// slack beyond NumReqs — so a handful of yields is enough unless the
// slab is being starved externally.
const flushRetries = 64

// enqueueSubmission moves one request index onto its class's submission
// queue, retrying briefly across transient slab exhaustion. false means
// the retry budget ran out and the caller must fail the request rather
// than drop it. nano stamps StageFlushed when nonzero — flush loops
// read the clock once per pass instead of once per request.
func (d *Device) enqueueSubmission(idx uint32, nano int64) bool {
	class := ClassForeground
	var ts *tenantState
	if r, valid := d.req(idx); valid {
		class = r.Class
		ts = d.tenantOf(r)
		if nano != 0 {
			// Armed flight stamp, drain-pass amortized. Plain field:
			// written before the enqueue publishes idx, so the
			// retrieval-side reader is ordered behind it.
			r.flushedNs = nano
		}
	}
	q := d.submission[class]
	for attempt := 0; ; attempt++ {
		forced := d.chaos != nil && d.chaos.FlushEnqueue != nil && d.chaos.FlushEnqueue(idx)
		if !forced {
			if _, ok := q.Enqueue(idx); ok {
				if ts != nil {
					ts.queued.Add(1) // popSubmission decrements at dispatch
				}
				d.m.submissionHW.Observe(d.submissionDepth())
				d.lcStamp(idx, lifecycle.StageFlushed)
				return true
			}
		}
		if attempt >= flushRetries {
			return false
		}
		d.m.enqueueRetries.Inc()
		runtime.Gosched()
	}
}

// submissionDepth sums the per-class submission queue depths.
func (d *Device) submissionDepth() int64 {
	var n int64
	for _, q := range d.submission {
		n += int64(q.Size())
	}
	return n
}

// mustEnqueue retries until the enqueue succeeds. Used on the
// completion and free paths, where losing the index would leak the slot
// forever; progress is guaranteed because the consumer of those queues
// frees a node per dequeue.
func (d *Device) mustEnqueue(q *rbq.Queue, idx uint32) {
	for attempt := 0; ; attempt++ {
		if _, ok := q.Enqueue(idx); ok {
			return
		}
		d.m.enqueueRetries.Inc()
		backoff(attempt)
	}
}

// finish completes r exactly once: it resolves the terminal state,
// stamps the completion time, posts the completion (Release) and wakes
// a poller (Notify). forced supplies the outcome for requests failing
// off-protocol (the slab-exhaustion path) — but a cancel or deadline
// that already claimed the request wins over it, because Cancel's
// contract ("will complete with ErrCanceled") must hold no matter which
// path posts the completion.
func (d *Device) finish(r *Request, forced error) { d.finishAt(r, forced, 0) }

// finishAt is finish with a caller-supplied completion timestamp (0 =
// read the clock here): the copy path's last chunk already read the
// clock for its CopyEnd stamp and hands the same value down.
func (d *Device) finishAt(r *Request, forced error, now int64) {
	old := r.state.Swap(stDone) & stateMask
	if old == stDone {
		// Completion already fired. This must never happen; count it
		// (the chaos suite asserts zero) and bail out rather than
		// posting the index to the completion queue twice.
		d.m.doubleCompletes.Inc()
		return
	}
	err := forced
	switch old {
	case stCanceled:
		err = ErrCanceled
	case stExpired:
		err = ErrDeadline
	}
	r.Err = err
	if now == 0 {
		now = time.Now().UnixNano()
	}
	r.completed.Store(now)
	if d.lc.Active(int(r.idx)) {
		d.lc.Transition(int(r.idx), lifecycle.StageCompleted, now)
	}
	ts := d.tenantOf(r)
	if s := r.submitted.Load(); s > 0 {
		lat := now - s
		d.m.latency.Observe(lat)
		d.m.classLatency[r.Class].Observe(lat)
		ts.latency.Observe(lat)
		d.observeLatEWMA(lat)
	}
	switch {
	case err == nil:
	case errors.Is(err, ErrCanceled):
		d.m.canceled.Inc()
		ts.canceled.Inc()
	case errors.Is(err, ErrDeadline):
		d.m.expired.Inc()
	case errors.Is(err, ErrOverload):
		d.m.overloaded.Inc()
	default:
		d.m.failed.Inc()
	}
	d.m.completed.Inc()
	d.m.classCompleted[r.Class].Inc()
	d.classInFlight[r.Class].n.Add(-1)
	ts.completed.Inc()
	ts.inFlight.Add(-1)
	if d.chaos != nil && d.chaos.OnFinish != nil {
		d.chaos.OnFinish(r.idx, err)
	}
	d.trace(EvComplete, uint64(r.idx), uint64(len(r.Src)))
	d.pushCompletion(r.idx)
	d.m.completionHW.Observe(d.completionDepth())
	d.wake()
}

// shard picks the submitting goroutine's staging queue.
func (d *Device) shard() *rbq.Queue {
	if len(d.staging) == 1 {
		return d.staging[0]
	}
	t := d.tokens.Get().(*submitterToken)
	sh := d.staging[t.shard]
	d.tokens.Put(t)
	return sh
}

// stage marks r pending and enqueues it on sh, returning the color
// observed atomically with the enqueue. ok is false on slab exhaustion
// (or a forced chaos failure), with r left stPending for the caller to
// resolve.
func (d *Device) stage(sh *rbq.Queue, r *Request) (rbq.Color, bool) {
	now := time.Now().UnixNano()
	r.submitted.Store(now)
	d.lc.Begin(int(r.idx), int(r.Class), int64(len(r.Src)), now)
	r.state.Store(r.word(stPending))
	if d.chaos != nil && d.chaos.StagingEnqueue != nil && d.chaos.StagingEnqueue(r.idx) {
		return 0, false // forced slab exhaustion
	}
	color, ok := sh.Enqueue(r.idx)
	if !ok {
		return 0, false
	}
	d.accept(r)
	d.m.sizes.Observe(int64(len(r.Src)))
	d.trace(EvSubmit, uint64(r.idx), uint64(len(r.Src)))
	return color, true
}

// accept does the accepted-submission accounting: the global, per-class
// and per-tenant submitted counters plus the class and tenant in-flight
// tokens, which finish releases. Every path that will eventually reach
// finish must come through here exactly once.
func (d *Device) accept(r *Request) {
	d.m.submitted.Inc()
	d.m.classSubmitted[r.Class].Inc()
	d.classInFlight[r.Class].n.Add(1)
	ts := d.tenantOf(r)
	ts.submitted.Inc()
	ts.inFlight.Add(1)
}

// unstage resolves a failed staging enqueue: return r to idle, unless a
// concurrent Cancel claimed the request inside the submission window
// and promised the caller an ErrCanceled completion — then honor it
// rather than silently un-submitting (the cancel-vs-failed-submit race
// the chaos suite pins). Reports whether a completion was posted.
func (d *Device) unstage(r *Request) bool {
	if !r.state.CompareAndSwap(r.word(stPending), stIdle) {
		d.accept(r)
		d.finish(r, nil)
		return true
	}
	// The request never entered the pipeline: the caller gets the error
	// back and keeps the slot, so its traced lifecycle ends here.
	d.lc.Abort(int(r.idx))
	return false
}

// flushShard runs the blue-side of the Section 4.4 protocol on one
// shard: drain it into the submission queue, recolor it red, and kick
// the worker if nobody else already has. traceIdx labels the kick event.
func (d *Device) flushShard(sh *rbq.Queue, traceIdx uint32) {
	// One clock read covers every armed flight stamp in this drain;
	// the tracer's per-request lazy read still fires solely for sampled
	// requests.
	var flushNano int64
	if d.frArmed {
		flushNano = time.Now().UnixNano()
	}
flush:
	for {
		idx, _, ok := sh.Dequeue()
		if !ok {
			break
		}
		if !d.enqueueSubmission(idx, flushNano) {
			// The slot must not vanish: complete it with an error so
			// the owner gets it back through the normal path.
			if fr, valid := d.req(idx); valid {
				d.finish(fr, ErrNoSlots)
			}
		}
	}
	old, ok := sh.SetColor(rbq.Red)
	if !ok {
		goto flush
	}
	if old == rbq.Red {
		return
	}
	// The kick-start "syscall".
	d.m.kicks.Inc()
	d.trace(EvKick, uint64(traceIdx), 0)
	select {
	case d.kick <- struct{}{}:
	default: // worker already has a pending kick
	}
}

// Submit queues an asynchronous copy of r.Src into r.Dst, implementing
// the Section 4.4 protocol on the submitter's staging shard. It never
// blocks beyond the bounded flush. The request is submitted under the
// device's default tenant namespace; use Tenant.Submit for tenant
// quotas, weights and attribution.
func (d *Device) Submit(r *Request) error {
	r.tenant.Store(0)
	return d.submit(r)
}

// submit is the tenant-agnostic Submit body: r.tenant is already
// stamped by the caller-facing wrapper.
func (d *Device) submit(r *Request) error {
	// Submitter gate: the increment precedes the closing check, so
	// Close's active-wait cannot complete while this call is between
	// the check and its staging enqueue.
	d.active.Add(1)
	defer d.active.Add(-1)
	if d.closing.Load() || d.closed.Load() {
		return ErrClosed
	}
	if len(r.Src) != len(r.Dst) {
		return fmt.Errorf("%w: %d vs %d", ErrBadSizes, len(r.Src), len(r.Dst))
	}
	if err := d.admit(r); err != nil {
		return err
	}
	sh := d.shard()
	color, ok := d.stage(sh, r)
	if !ok {
		if d.unstage(r) {
			return nil
		}
		return ErrNoSlots
	}
	if color == rbq.Blue {
		d.flushShard(sh, r.idx)
	}
	return nil
}

// Cancel attempts to cancel a submitted request. It reports whether the
// cancel won: true means the request will complete with ErrCanceled and
// no further bytes will be copied (chunks already moved leave Dst
// partially written). false means the request had already completed —
// or was never pending — and its result stands.
func (d *Device) Cancel(r *Request) bool {
	// One tenant load builds both sides of the CAS: the claim can only
	// succeed against the pending word of that same owner, so the
	// written canceled word always carries a consistent tenant id.
	ten := r.tenant.Load()
	if r.state.CompareAndSwap(packState(ten, stPending), packState(ten, stCanceled)) {
		d.trace(EvCancel, uint64(r.idx), 0)
		return true
	}
	return false
}

// busyPollRecheckEvery is how many idle spin passes a busy-polling
// worker makes between clock reads: the idle budget is enforced with
// ~1/64 the time.Now cost of checking every pass.
const busyPollRecheckEvery = 64

// worker is the kernel thread: drain the staging shards, chunk and
// dispatch submissions to the controllers, then — in busy-poll mode —
// keep spinning through the idle budget, or recolor the shards blue
// and sleep.
// workerClockEvery bounds how many armed flight stamps reuse one
// worker/controller clock read: staleness stays under ~16 op-times
// (microseconds) while the per-request clock cost drops to ~1/16 of a
// time.Now (which at ~60ns would alone consume the recorder's whole
// overhead budget).
const workerClockEvery = 16

func (d *Device) worker() {
	defer func() {
		if d.rings != nil {
			close(d.work) // controllers drain their rings and exit
		} else {
			close(d.copyQ)
		}
		d.wg.Done()
	}()
	busy := d.opts.BusyPoll
	var idleSince time.Time // zero while working (or before the first budget clock read)
	idleSpins := 0
	// wNano is the worker's amortized clock for armed flight stamps:
	// refreshed once per drain pass and at least every
	// workerClockEvery dispatches, never per request. The stamps it
	// feeds only ever surface in breach records, where millisecond
	// latencies dwarf the microseconds of pass-level staleness; the
	// sampled 1/2^shift lifecycles read fresh clocks as always.
	var wNano int64
	sinceClock := 0
	for {
		// Drain every shard round-robin: one element per shard per
		// pass, so no shard starves behind a full neighbor. Armed
		// Flushed stamps share the worker's amortized clock — under
		// load a pass often moves a single element before the next
		// dispatch, so a per-pass read would degenerate to per-request.
		for {
			moved := false
			var drainNano int64
			for _, sh := range d.staging {
				idx, _, ok := sh.Dequeue()
				if !ok {
					continue
				}
				moved = true
				if d.frArmed {
					if sinceClock >= workerClockEvery || wNano == 0 {
						wNano, sinceClock = time.Now().UnixNano(), 0
					}
					sinceClock++
					drainNano = wNano
				}
				if !d.enqueueSubmission(idx, drainNano) {
					if r, valid := d.req(idx); valid {
						d.finish(r, ErrNoSlots)
					}
				}
			}
			if !moved {
				break
			}
		}
		if idx, ok := d.popSubmission(); ok {
			idleSpins, idleSince = 0, time.Time{}
			if d.frArmed {
				if sinceClock >= workerClockEvery || wNano == 0 {
					wNano, sinceClock = time.Now().UnixNano(), 0
				}
				sinceClock++
			}
			d.dispatch(idx, wNano)
			continue
		}
		// Busy-poll spin phase: the pipeline is dry but the idle budget
		// is not. The shards stay red, so submitters keep hitting the
		// stage-and-return fast path (no flush, no kick) and the drain
		// loop above picks their work up on the next pass. Yield each
		// pass — on a loaded box the spinning worker must not starve
		// the very submitters it is polling for — and read the clock
		// only every busyPollRecheckEvery passes.
		if busy && !d.closed.Load() {
			exhausted := false
			d.m.busyPollSpins.Inc()
			idleSpins++
			if idleSpins >= busyPollRecheckEvery {
				idleSpins = 0
				now := time.Now()
				if idleSince.IsZero() {
					idleSince = now
				} else if now.Sub(idleSince) >= d.busyPollIdle {
					idleSince = time.Time{}
					exhausted = true
				}
			}
			if !exhausted {
				runtime.Gosched()
				continue
			}
			// Budget spent: fall through to the default recolor-and-park
			// sequence, whose refill check keeps the park token lossless
			// exactly as in park/wake mode.
			d.m.busyPollParks.Inc()
		}
		// Before sleeping, recolor each shard blue independently; a
		// shard that refilled under us refuses the recolor and sends
		// the worker around again. This is the Section 4.4 invariant
		// per shard: after the worker sleeps, every shard is blue, so
		// the first submitter to any shard kicks exactly once.
		refilled := false
		for _, sh := range d.staging {
			if _, ok := sh.SetColor(rbq.Blue); !ok {
				refilled = true
			}
		}
		if refilled {
			continue
		}
		if d.closed.Load() {
			// Drain anything that slipped in before the close.
			pending := false
			for _, q := range d.submission {
				if !q.Empty() {
					pending = true
				}
			}
			for _, sh := range d.staging {
				if !sh.Empty() {
					pending = true
				}
			}
			if pending {
				for _, sh := range d.staging {
					sh.SetColor(rbq.Red)
				}
				continue
			}
			return
		}
		<-d.kick
		d.m.wakes.Inc()
		idleSpins, idleSince = 0, time.Time{}
		d.trace(EvWake, 0, 0)
	}
}

// dispatch splits one request into chunks and feeds the controllers —
// or, when the request is small enough for the adaptive inline
// threshold, copies it right here on the worker (the poll path: no ring
// push, no controller wakeup, no notify hop for the copy itself).
func (d *Device) dispatch(idx uint32, wNano int64) {
	r, ok := d.req(idx)
	if !ok {
		return
	}
	d.maybeRetune()
	d.m.dispatched.Inc()
	if d.chaos != nil && d.chaos.BeforeDispatch != nil {
		d.chaos.BeforeDispatch(idx)
	}
	if d.frArmed {
		// Armed flight stamp from the worker's amortized clock; plain
		// field, written before any handoff publishes idx onward. The
		// inline path below copies right here, so on breach a missing
		// copy-start stamp resolves to exactly this value.
		r.dispatchedNs = wNano
	}
	// Sampled lifecycles get a fresh clock read: it serves the dispatch
	// stamp, the inline path's CopyStart pre-stamp, and every chunk's
	// push stamp below; the gap between them is a few branches.
	var dispatchNano int64
	if d.lc.Active(int(idx)) {
		dispatchNano = time.Now().UnixNano()
		d.lc.Transition(int(idx), lifecycle.StageDispatched, dispatchNano)
	}
	// Observe cancellation and deadline before any byte moves.
	if !r.Deadline.IsZero() && time.Now().After(r.Deadline) {
		r.state.CompareAndSwap(r.word(stPending), r.word(stExpired))
	}
	if st := r.state.Load() & stateMask; st == stCanceled || st == stExpired {
		d.finish(r, nil)
		return
	}
	n := len(r.Src)
	nChunks := 1
	if d.chunkBytes > 0 && n > d.chunkBytes {
		nChunks = (n + d.chunkBytes - 1) / d.chunkBytes
	}
	r.chunksLeft.Store(int32(nChunks))
	d.trace(EvDispatch, uint64(idx), uint64(nChunks))
	// Adaptive completion, the paper's Section 5 poll/interrupt split:
	// a single-chunk request at or below the inline threshold is copied
	// by the worker itself. runChunk keeps every invariant (cancel
	// check, chunk countdown, exactly-once finish); only the transport
	// changes. Ring mode only — the legacy channel path stays pure for
	// the ablation benchmarks.
	if nChunks == 1 && d.rings != nil {
		if th := d.inline.Load(); th > 0 && int64(n) <= th {
			d.m.inlineCompleted.Inc()
			if dispatchNano != 0 {
				// The copy starts right here on the worker: reuse the
				// sampled dispatch clock read for the CopyStart stamp
				// (runChunk's StampPending guard skips its own) and flag
				// the lifecycle so a slow inline request is legible as
				// one. The armed path stores nothing — a breach record
				// infers inline from the missing copy-start stamp.
				d.lc.SetFlag(int(idx), lifecycle.FlagInline)
				d.lc.TransitionFirst(int(idx), lifecycle.StageCopyStart, dispatchNano)
			}
			d.runChunk(chunk{idx: idx, off: 0, end: n}, len(d.ctr)-1, 0)
			return
		}
	}
	// One ring-push stamp serves every chunk of a sampled request: the
	// pushes below are a tight loop, and the per-chunk ring wait is
	// measured against it on the consumer side (zero = unsampled —
	// deliberately 1/2^shift even with the flight recorder armed, so
	// controllers don't pay a clock read plus a histogram push per
	// chunk for every request; the armed path needs stage stamps, not
	// ring-wait spans).
	var pushNano int64
	if d.rings != nil && d.lc.Sampled(int(idx)) {
		pushNano = dispatchNano
	}
	for i := 0; i < nChunks; i++ {
		c := chunk{idx: idx, off: 0, end: n, nano: pushNano}
		if nChunks > 1 {
			c.off = i * d.chunkBytes
			c.end = c.off + d.chunkBytes
			if c.end > n {
				c.end = n
			}
		}
		if d.rings == nil {
			// Legacy path: the unbuffered handoff blocks the worker
			// whenever every controller is mid-copy — even if only one
			// of them is actually busy.
			d.copyQ <- c
			continue
		}
		d.pushChunk(c)
	}
}

// pushChunk places one chunk on a controller ring, round-robin from the
// ring after the last one used, skipping full rings. Only when every
// ring is full does the worker back off — backpressure when the whole
// copy engine is saturated, never because one controller is slow (its
// backlog is steal-able by the others).
func (d *Device) pushChunk(c chunk) {
	n := len(d.rings)
	for attempt := 0; ; attempt++ {
		for i := 0; i < n; i++ {
			ri := (d.nextRing + i) % n
			if d.rings[ri].tryPush(c) {
				d.nextRing = (ri + 1) % n
				select {
				case d.work <- struct{}{}:
				default: // enough wake tokens buffered to rouse everyone
				}
				return
			}
		}
		d.m.dispatchRetries.Inc()
		backoff(attempt)
	}
}

// controller is transfer controller id: it pops chunks from its own
// ring, steals from its neighbors' rings when its own runs dry, and
// whichever controller retires a request's last chunk runs the
// completion path (the interrupt handler's Release+Notify).
func (d *Device) controller(id int) {
	defer d.wg.Done()
	if d.rings == nil {
		for c := range d.copyQ {
			// Legacy ablation path: per-chunk channel handoffs dwarf a
			// clock read, so the armed copy-start stamp is simply fresh.
			var csNano int64
			if d.frArmed {
				csNano = time.Now().UnixNano()
			}
			d.runChunk(c, id, csNano)
		}
		return
	}
	own := d.rings[id]
	n := len(d.rings)
	spins := 0
	// csNano is this controller's amortized clock for armed copy-start
	// stamps, refreshed every workerClockEvery chunks (see wNano in the
	// worker for the staleness argument).
	var csNano int64
	sinceClock := 0
	for {
		c, ok := own.tryPop()
		stolen := false
		if !ok {
			for i := 1; i < n && !ok; i++ {
				if c, ok = d.rings[(id+i)%n].tryPop(); ok {
					d.ctr[id].steals.Add(1)
					stolen = true
				}
			}
		}
		if ok {
			spins = 0
			if stolen {
				d.lc.SetFlag(int(c.idx), lifecycle.FlagStolen)
			}
			if c.nano != 0 {
				class := 0
				if r, valid := d.req(c.idx); valid {
					class = int(r.Class)
				}
				d.lc.ObserveQueueWait(class, time.Now().UnixNano()-c.nano, stolen)
			}
			if d.frArmed {
				if sinceClock >= workerClockEvery || csNano == 0 {
					csNano, sinceClock = time.Now().UnixNano(), 0
				}
				sinceClock++
				d.runChunk(c, id, csNano)
				continue
			}
			d.runChunk(c, id, 0)
			continue
		}
		// Nothing anywhere: spin briefly (work often lands within a
		// few scheduler quanta under load), then park on the work edge.
		// The check-empty-then-park order plus the buffered channel
		// makes the park lossless: a chunk pushed after our scan left
		// its wake token in the buffer for us.
		if spins < 8 {
			spins++
			runtime.Gosched()
			continue
		}
		spins = 0
		if _, open := <-d.work; !open {
			// Shutdown: the worker dispatched its last chunk before
			// closing the channel. Sweep every ring dry, then leave.
			for {
				c, ok := own.tryPop()
				for i := 1; i < n && !ok; i++ {
					c, ok = d.rings[(id+i)%n].tryPop()
				}
				if !ok {
					return
				}
				d.runChunk(c, id, csNano)
			}
		}
	}
}

// runChunk copies one chunk (unless its request is already terminal)
// and fires the completion when it was the request's last chunk. slot
// selects the caller's private counter block: the controller id, or the
// worker's extra slot on the inline path. csNano is the caller's
// amortized clock for the armed flight copy-start stamp (0 on the
// inline path, whose breach records resolve copy-start to the dispatch
// stamp — the exact moment the worker's copy began).
func (d *Device) runChunk(c chunk, slot int, csNano int64) {
	r, ok := d.req(c.idx)
	if !ok {
		return
	}
	if d.chaos != nil && d.chaos.BeforeChunkCopy != nil {
		d.chaos.BeforeChunkCopy(c.idx, c.off, c.end)
	}
	if csNano != 0 {
		// Armed copy-start: the first fresh stamp wins; a value below
		// the submitted stamp is a leftover from the slot's previous
		// life and loses to this chunk's stamp. A failed CAS means a
		// parallel chunk of the same request won the race.
		if cs := r.copyStartNs.Load(); cs < r.submitted.Load() {
			r.copyStartNs.CompareAndSwap(cs, csNano)
		}
	}
	// The sampled copy window opens at the first chunk to reach any
	// controller (first stamp wins) and closes when the finisher
	// retires the last one — a canceled request still gets the stamps,
	// bounding the time its chunks occupied controllers. StampPending
	// folds the active check and the already-stamped check into one
	// load, so the inline path's pre-stamp and every chunk after the
	// first skip the clock.
	if d.lc.StampPending(int(c.idx), lifecycle.StageCopyStart) {
		d.lc.TransitionFirst(int(c.idx), lifecycle.StageCopyStart, time.Now().UnixNano())
	}
	// A cancel or deadline that won after dispatch stops the
	// copying; the chunk countdown still runs so the completion
	// fires exactly once.
	if r.state.Load()&stateMask == stPending {
		copy(r.Dst[c.off:c.end], r.Src[c.off:c.end])
		d.ctr[slot].bytesMoved.Add(int64(c.end - c.off))
	}
	d.ctr[slot].chunks.Add(1)
	d.trace(EvChunk, uint64(c.idx), uint64(c.end-c.off))
	if r.chunksLeft.Add(-1) == 0 {
		// One clock read serves the CopyEnd stamp and the completion
		// timestamp in finishAt.
		if d.lc.Active(int(c.idx)) {
			now := time.Now().UnixNano()
			d.lc.Transition(int(c.idx), lifecycle.StageCopyEnd, now)
			d.finishAt(r, nil, now)
			return
		}
		d.finish(r, nil)
	}
}

// RetrieveCompleted pops one completion notification without blocking;
// nil when none is pending. The scan starts at the caller's preferred
// ring (local-first bias) and wraps round-robin across the rest.
func (d *Device) RetrieveCompleted() *Request {
	idx, ok := d.popCompletion(d.pollerRing())
	if !ok {
		return nil
	}
	r, valid := d.req(idx)
	if !valid {
		return nil
	}
	d.m.retrieved.Inc()
	// Single-completion retrieve: the accumulator holds one request's
	// worth of lane accounting, flushed immediately (same cost shape as
	// the unbatched recorder path). lcEnd reads its own clock lazily.
	var acc flight.Acc
	acc.Init(d.fr)
	d.lcEnd(r, 0, &acc)
	acc.Flush()
	if !d.completionEmpty() {
		d.wake() // keep concurrent pollers from sleeping past pending completions
	}
	return r
}

// ready reports whether a completion is pending, re-arming the notify
// token when it is so concurrent pollers can't be starved by the single
// buffered edge.
func (d *Device) ready() bool {
	if d.completionEmpty() {
		return false
	}
	d.wake()
	return true
}

// pollSpinBudget bounds the spin-before-sleep micro-wait in
// Poll/PollContext: enough yields that a completion landing within a
// few microseconds is caught without a timer or channel round trip,
// few enough (and all below backoff's sleep threshold) that a poller
// headed for a real wait gets there quickly.
const pollSpinBudget = 128

// spinWait is the poll-side micro-wait: spin through the shared
// backoff discipline watching for a completion, true when one arrived
// within the budget.
//
// Spinning only pays when a completer can make progress while this
// poller burns cycles: a busy-poll worker never sleeps, and on
// GOMAXPROCS > 1 the worker/controllers run on other Ps. On a
// single-P park/wake device the yields are pure overhead — each
// backoff pass is a real context switch that delays the controllers
// the poller is waiting on (measured: ~3× overload throughput loss at
// GOMAXPROCS=1) — so there the poller goes straight to its timed
// sleep, which is itself the yield that lets copies proceed.
func (d *Device) spinWait() bool {
	if !d.completionEmpty() {
		return true
	}
	if !d.pollSpin {
		return false
	}
	for attempt := 0; attempt < pollSpinBudget; attempt++ {
		if d.closed.Load() {
			return !d.completionEmpty()
		}
		backoff(attempt)
		if !d.completionEmpty() {
			d.m.pollerSpins.Inc()
			return true
		}
	}
	return false
}

// Poll blocks until a completion notification is pending or the timeout
// expires (timeout <= 0 waits forever). It reports whether a
// notification is available. Any number of goroutines may Poll the same
// device: a retired wakeup is re-armed whenever completions remain, so
// no poller sleeps past a retrievable completion. A bounded micro-wait
// runs before any blocking, so a completion landing within ~1 µs costs
// no timer or notify round trip.
func (d *Device) Poll(timeout time.Duration) bool {
	if d.spinWait() {
		d.wake()
		return true
	}
	if timeout <= 0 {
		for d.completionEmpty() {
			if d.closed.Load() {
				return d.ready()
			}
			d.m.pollerParks.Inc()
			select {
			case <-d.notify:
			case <-d.done:
				return d.ready()
			}
		}
		d.wake()
		return true
	}
	// The deadline is computed lazily — a Poll that finds a completion
	// pending (the common case on a loaded device) costs no clock read
	// at all. One timer then serves every retry of the loop: each Reset
	// below runs only after the timer was stopped and its channel
	// drained, the precondition Timer.Reset documents. (The
	// per-iteration NewTimer this replaces allocated on every spurious
	// wakeup — measurable garbage on a device with thousands of Polls
	// per second.)
	var deadline time.Time
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for d.completionEmpty() {
		if d.closed.Load() {
			return d.ready()
		}
		if deadline.IsZero() {
			deadline = time.Now().Add(timeout)
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return d.ready()
		}
		if timer == nil {
			timer = time.NewTimer(remain)
		} else {
			timer.Reset(remain)
		}
		d.m.pollerParks.Inc()
		select {
		case <-d.notify:
			if !timer.Stop() {
				<-timer.C
			}
		case <-d.done:
			return d.ready()
		case <-timer.C:
			return d.ready()
		}
	}
	d.wake()
	return true
}

// PollContext blocks until a completion notification is pending or ctx
// is done, whichever comes first, and reports whether a notification is
// available — poll(2) with a context instead of a hand-rolled timeout
// loop. Like Poll, any number of goroutines may PollContext the same
// device concurrently.
func (d *Device) PollContext(ctx context.Context) bool {
	if d.spinWait() {
		d.wake()
		return true
	}
	for d.completionEmpty() {
		if d.closed.Load() || ctx.Err() != nil {
			return d.ready()
		}
		d.m.pollerParks.Inc()
		select {
		case <-d.notify:
		case <-d.done:
			return d.ready()
		case <-ctx.Done():
			return d.ready()
		}
	}
	d.wake()
	return true
}

// Stats returns a snapshot of the device's counters, histograms, queue
// watermarks and trace. Safe from any goroutine at any time.
func (d *Device) Stats() StatsSnapshot {
	staging := make([]int64, len(d.staging))
	for i, sh := range d.staging {
		staging[i] = int64(sh.Size())
	}
	var ringDepths []int64
	if d.rings != nil {
		ringDepths = make([]int64, len(d.rings))
		for i, r := range d.rings {
			ringDepths[i] = r.size()
		}
	}
	var classes [NumClasses]ClassStats
	for c := range classes {
		classes[c] = ClassStats{
			Submitted:  d.m.classSubmitted[c].Load(),
			Completed:  d.m.classCompleted[c].Load(),
			Shed:       d.m.classShed[c].Load(),
			InFlight:   d.classInFlight[c].n.Load(),
			QueueDepth: int64(d.submission[c].Size()),
			Latency:    d.m.classLatency[c].Snapshot(),
		}
	}
	tab := *d.tenants.Load()
	tenants := make([]TenantStats, len(tab))
	for i, ts := range tab {
		tenants[i] = ts.snapshot()
	}
	var chunks, bytesMoved, steals int64
	for i := range d.ctr {
		chunks += d.ctr[i].chunks.Load()
		bytesMoved += d.ctr[i].bytesMoved.Load()
		steals += d.ctr[i].steals.Load()
	}
	compDepths := make([]int64, len(d.compRings))
	var compDepth int64
	for i, cr := range d.compRings {
		compDepths[i] = cr.size()
		compDepth += compDepths[i]
	}
	return StatsSnapshot{
		StagingDepths:        staging,
		SubmissionDepth:      d.submissionDepth(),
		CompletionDepth:      compDepth,
		CompletionDepths:     compDepths,
		RingDepths:           ringDepths,
		Lifecycle:            d.lc.Snapshot(),
		Flight:               d.fr.Snapshot(),
		Submitted:            d.m.submitted.Load(),
		Completed:            d.m.completed.Load(),
		Canceled:             d.m.canceled.Load(),
		Expired:              d.m.expired.Load(),
		Failed:               d.m.failed.Load(),
		Kicks:                d.m.kicks.Load(),
		WorkerWakes:          d.m.wakes.Load(),
		BusyPollSpins:        d.m.busyPollSpins.Load(),
		BusyPollParks:        d.m.busyPollParks.Load(),
		PollerSpins:          d.m.pollerSpins.Load(),
		PollerParks:          d.m.pollerParks.Load(),
		Batches:              d.m.batches.Load(),
		Chunks:               chunks,
		BytesMoved:           bytesMoved,
		Steals:               steals,
		DispatchRetries:      d.m.dispatchRetries.Load(),
		EnqueueRetries:       d.m.enqueueRetries.Load(),
		DoubleCompletes:      d.m.doubleCompletes.Load(),
		Shed:                 d.m.shed.Load(),
		Overloaded:           d.m.overloaded.Load(),
		InlineCompleted:      d.m.inlineCompleted.Load(),
		InlineThresholdBytes: d.inline.Load(),
		Retunes:              d.m.retunes.Load(),
		AgedPops:             d.m.agedPops.Load(),
		Classes:              classes,
		Tenants:              tenants,
		SubmissionHighWater:  d.m.submissionHW.Load(),
		CompletionHighWater:  d.m.completionHW.Load(),
		Latency:              d.m.latency.Snapshot(),
		Sizes:                d.m.sizes.Snapshot(),
		Trace:                d.m.trace.Snapshot(),
	}
}

// AuditSlots verifies, on a quiescent device (no Submit/Retrieve in
// flight, pipeline drained), that every request slot is in exactly one
// of {free list, a staging shard, submission, completion, caller-held}.
// held lists slot indices of requests the caller has allocated or
// retrieved and not yet freed. This is the realtime side of the "no
// index may ever vanish" invariant; the chaos suite runs it after every
// storm.
func (d *Device) AuditSlots(held []uint32) error {
	owner := make([]string, len(d.reqs))
	claim := func(idx uint32, who string) error {
		if int(idx) >= len(d.reqs) {
			return fmt.Errorf("realtime: audit: index %d out of range (seen in %s)", idx, who)
		}
		if owner[idx] != "" {
			return fmt.Errorf("realtime: audit: index %d in two places: %s and %s", idx, owner[idx], who)
		}
		owner[idx] = who
		return nil
	}
	queues := []struct {
		name string
		q    *rbq.Queue
	}{
		{"free", d.freeList},
	}
	for c, q := range d.submission {
		queues = append(queues, struct {
			name string
			q    *rbq.Queue
		}{fmt.Sprintf("submission[%s]", ClassName(c)), q})
	}
	for i, sh := range d.staging {
		queues = append(queues, struct {
			name string
			q    *rbq.Queue
		}{fmt.Sprintf("staging[%d]", i), sh})
	}
	for _, qi := range queues {
		for _, idx := range qi.q.Snapshot() {
			if err := claim(idx, qi.name); err != nil {
				return err
			}
		}
	}
	for i, cr := range d.compRings {
		for _, idx := range cr.snapshot() {
			if err := claim(idx, fmt.Sprintf("completion[%d]", i)); err != nil {
				return err
			}
		}
	}
	for _, idx := range held {
		if err := claim(idx, "user-held"); err != nil {
			return err
		}
	}
	for i, who := range owner {
		if who == "" {
			return fmt.Errorf("realtime: audit: index %d vanished: in no queue and not user-held", i)
		}
	}
	return nil
}

// Kicks reports how many kick-start syscall-equivalents were issued.
func (d *Device) Kicks() int64 { return d.m.kicks.Load() }

// Completed reports how many requests have completed.
func (d *Device) Completed() int64 { return d.m.completed.Load() }

// BytesMoved reports the total payload moved.
func (d *Device) BytesMoved() int64 {
	var n int64
	for i := range d.ctr {
		n += d.ctr[i].bytesMoved.Load()
	}
	return n
}
