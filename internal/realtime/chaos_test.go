package realtime

// Chaos-driven coverage: fault injection through Options.Chaos forces
// the failure windows real load only samples — stalled controllers
// under a cancel storm, persistent slab exhaustion at the flush,
// shutdown with chunked requests in flight, and close/cancel races
// inside the submission protocol. After every storm the suite asserts
// the two invariants the device promises: no index ever vanishes
// (AuditSlots) and completion fires exactly once (DoubleCompletes == 0).
//
// These tests are the CI smoke corpus (`go test -run Chaos -count=20`):
// each run takes milliseconds and every scheduling decision the test
// itself makes is forced through hooks, so repeated runs explore fresh
// runtime interleavings cheaply.

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// drainAll retrieves every pending completion, polling until count
// completions arrived or the deadline passes.
func drainAll(t *testing.T, d *Device, count int) []*Request {
	t.Helper()
	var got []*Request
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < count {
		if r := d.RetrieveCompleted(); r != nil {
			got = append(got, r)
			continue
		}
		if time.Now().After(deadline) {
			st := d.Stats()
			t.Fatalf("drained %d/%d completions before timeout; stats=%+v", len(got), count, st)
		}
		d.Poll(10 * time.Millisecond)
	}
	return got
}

// TestChaosCancelVsCompleteStalledControllers stalls every transfer
// controller on its first chunk, lands a cancel storm while the copies
// are frozen, then releases the stall: every request must complete
// exactly once, with either a clean result or ErrCanceled, and every
// slot must return to the free list.
func TestChaosCancelVsCompleteStalledControllers(t *testing.T) {
	stall := make(chan struct{})
	var once sync.Once
	opts := Options{
		NumReqs:     32,
		Controllers: 2,
		ChunkBytes:  1 << 10,
		Chaos: &ChaosHooks{
			BeforeChunkCopy: func(idx uint32, off, end int) { <-stall },
		},
	}
	d := Open(opts)
	defer d.Close()
	defer once.Do(func() { close(stall) })

	const n = 8
	reqs := make([]*Request, 0, n)
	for i := 0; i < n; i++ {
		r := d.AllocRequest()
		if r == nil {
			t.Fatal("alloc failed")
		}
		src := bytes.Repeat([]byte{byte(i + 1)}, 4<<10) // 4 chunks each
		r.Src, r.Dst = src, make([]byte, len(src))
		if err := d.Submit(r); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		reqs = append(reqs, r)
	}
	// Cancel storm while the controllers are frozen mid-pipeline: some
	// requests are stalled in chunks, some still queued.
	canceled := map[*Request]bool{}
	for i, r := range reqs {
		if i%2 == 0 {
			canceled[r] = d.Cancel(r)
		}
	}
	once.Do(func() { close(stall) })

	got := drainAll(t, d, n)
	seen := map[*Request]int{}
	for _, r := range got {
		seen[r]++
	}
	for i, r := range reqs {
		if seen[r] != 1 {
			t.Errorf("request %d completed %d times, want exactly once", i, seen[r])
		}
		switch {
		case r.Err == nil:
			if canceled[r] {
				t.Errorf("request %d: cancel won but completed clean", i)
			}
			if !bytes.Equal(r.Src, r.Dst) {
				t.Errorf("request %d: clean completion with corrupt payload", i)
			}
		case errors.Is(r.Err, ErrCanceled):
			if !canceled[r] {
				t.Errorf("request %d: ErrCanceled without a winning cancel", i)
			}
		default:
			t.Errorf("request %d: unexpected error %v", i, r.Err)
		}
	}
	var held []uint32
	for _, r := range got {
		held = append(held, r.idx)
	}
	if err := d.AuditSlots(held); err != nil {
		t.Error(err)
	}
	for _, r := range got {
		d.FreeRequest(r)
	}
	if err := d.AuditSlots(nil); err != nil {
		t.Error(err)
	}
	if st := d.Stats(); st.DoubleCompletes != 0 {
		t.Errorf("DoubleCompletes = %d, want 0", st.DoubleCompletes)
	}
}

// TestChaosForcedExhaustionErrNoSlots makes every staging→submission
// flush attempt fail, driving requests down the ErrNoSlots completion
// path; the slots must come back through the completion queue, and the
// device must recover fully once the fault clears.
func TestChaosForcedExhaustionErrNoSlots(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	opts := Options{
		NumReqs: 16,
		Chaos: &ChaosHooks{
			FlushEnqueue: func(idx uint32) bool { return failing.Load() },
		},
	}
	d := Open(opts)
	defer d.Close()

	const n = 4
	for i := 0; i < n; i++ {
		r := d.AllocRequest()
		r.Src, r.Dst = []byte{1, 2, 3}, make([]byte, 3)
		if err := d.Submit(r); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	got := drainAll(t, d, n)
	for i, r := range got {
		if !errors.Is(r.Err, ErrNoSlots) {
			t.Errorf("request %d: err = %v, want ErrNoSlots", i, r.Err)
		}
		d.FreeRequest(r)
	}
	if err := d.AuditSlots(nil); err != nil {
		t.Error(err)
	}

	// Fault cleared: the same slots must serve clean copies again.
	failing.Store(false)
	r := d.AllocRequest()
	r.Src, r.Dst = []byte{9, 8, 7}, make([]byte, 3)
	if err := d.Submit(r); err != nil {
		t.Fatalf("post-recovery submit: %v", err)
	}
	rr := drainAll(t, d, 1)[0]
	if rr.Err != nil || !bytes.Equal(rr.Src, rr.Dst) {
		t.Fatalf("post-recovery completion: err=%v dst=%v", rr.Err, rr.Dst)
	}
	d.FreeRequest(rr)
	if st := d.Stats(); st.DoubleCompletes != 0 {
		t.Errorf("DoubleCompletes = %d, want 0", st.DoubleCompletes)
	}
}

// TestChaosCloseDrainInFlightChunked slows every chunk copy and then
// CloseDrains with chunked requests mid-pipeline: the drain must wait
// for all of them, and nothing may vanish across the shutdown.
func TestChaosCloseDrainInFlightChunked(t *testing.T) {
	opts := Options{
		NumReqs:     16,
		Controllers: 2,
		ChunkBytes:  1 << 10,
		Chaos: &ChaosHooks{
			BeforeChunkCopy: func(idx uint32, off, end int) { time.Sleep(100 * time.Microsecond) },
		},
	}
	d := Open(opts)

	const n = 6
	var reqs []*Request
	for i := 0; i < n; i++ {
		r := d.AllocRequest()
		src := bytes.Repeat([]byte{byte(i + 1)}, 8<<10) // 8 chunks each
		r.Src, r.Dst = src, make([]byte, len(src))
		if err := d.Submit(r); err != nil {
			t.Fatalf("submit: %v", err)
		}
		reqs = append(reqs, r)
	}
	if !d.CloseDrain(5 * time.Second) {
		t.Fatal("CloseDrain timed out with in-flight chunked requests")
	}
	got := drainAll(t, d, n)
	var held []uint32
	for _, r := range got {
		if r.Err != nil {
			t.Errorf("request %d failed across drain: %v", r.idx, r.Err)
		} else if !bytes.Equal(r.Src, r.Dst) {
			t.Errorf("request %d: payload corrupt across drain", r.idx)
		}
		held = append(held, r.idx)
	}
	if err := d.AuditSlots(held); err != nil {
		t.Error(err)
	}
	if err := d.Submit(reqs[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after CloseDrain: err = %v, want ErrClosed", err)
	}
	if st := d.Stats(); st.DoubleCompletes != 0 {
		t.Errorf("DoubleCompletes = %d, want 0", st.DoubleCompletes)
	}
}

// TestChaosSubmitCloseRaceNoLostRequests is the regression test for the
// submitter-gate fix: a Submit that has passed the closing check while
// Close runs must either be rejected or produce a completion — before
// the gate, its staging enqueue could land after the worker's final
// drain and strand the request (and its slot) forever.
func TestChaosSubmitCloseRaceNoLostRequests(t *testing.T) {
	for iter := 0; iter < 30; iter++ {
		d := Open(Options{NumReqs: 8, Controllers: 1})
		var accepted, recycled atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := []byte{1, 2, 3, 4}
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Recycle finished slots so submissions keep flowing
				// while Close runs.
				for c := d.RetrieveCompleted(); c != nil; c = d.RetrieveCompleted() {
					d.FreeRequest(c)
					recycled.Add(1)
				}
				r := d.AllocRequest()
				if r == nil {
					continue
				}
				r.Src, r.Dst = src, make([]byte, 4)
				if err := d.Submit(r); err != nil {
					return // ErrClosed: the slot stays user-held, fine
				}
				accepted.Add(1)
			}
		}()
		// Let a few submissions through, then slam the door.
		for d.Completed() == 0 {
			time.Sleep(10 * time.Microsecond)
		}
		d.Close()
		close(stop)
		wg.Wait()
		// Close waited out the worker, so every accepted request's
		// completion is already posted — unless one was stranded in
		// staging, the lost-index bug this test pins.
		var got int64
		for d.RetrieveCompleted() != nil {
			got++
		}
		if total := recycled.Load() + got; total != accepted.Load() {
			t.Fatalf("iter %d: accepted %d submissions but saw %d completions — request lost across Close",
				iter, accepted.Load(), total)
		}
	}
}

// TestChaosCancelVsFailedSubmitHonored is the regression test for the
// cancel-vs-failed-submit fix: when Cancel wins its CAS inside Submit's
// enqueue-failure window, the old code stored the request back to idle
// and returned ErrNoSlots — the cancel's promised ErrCanceled
// completion never fired. Now Submit detects the lost CAS and completes
// the request through the normal path.
func TestChaosCancelVsFailedSubmitHonored(t *testing.T) {
	inWindow := make(chan *Request, 1)
	proceed := make(chan struct{})
	var arm atomic.Bool
	var dev *Device
	opts := Options{
		NumReqs: 8,
		Chaos: &ChaosHooks{
			StagingEnqueue: func(idx uint32) bool {
				if !arm.Load() {
					return false
				}
				r, _ := dev.req(idx)
				inWindow <- r // request is stPending, not yet enqueued
				<-proceed     // hold Submit here until Cancel has won
				return true   // then force the enqueue failure
			},
		},
	}
	d := Open(opts)
	dev = d
	defer d.Close()

	r := d.AllocRequest()
	r.Src, r.Dst = []byte{1}, make([]byte, 1)
	arm.Store(true)
	errc := make(chan error, 1)
	go func() { errc <- d.Submit(r) }()

	target := <-inWindow
	arm.Store(false)
	won := d.Cancel(target)
	close(proceed)
	err := <-errc

	if !won {
		t.Fatal("cancel lost a race it was engineered to win")
	}
	if err != nil {
		t.Fatalf("Submit returned %v; a canceled-in-window submit must be accepted", err)
	}
	rr := drainAll(t, d, 1)[0]
	if rr != r || !errors.Is(rr.Err, ErrCanceled) {
		t.Fatalf("completion = %v err=%v, want the canceled request with ErrCanceled", rr, rr.Err)
	}
	d.FreeRequest(rr)
	if err := d.AuditSlots(nil); err != nil {
		t.Error(err)
	}
	if st := d.Stats(); st.DoubleCompletes != 0 {
		t.Errorf("DoubleCompletes = %d, want 0", st.DoubleCompletes)
	}
}

// TestChaosBatchFlushExhaustionMidBatch forces every staging→submission
// flush attempt to fail while a batch is submitted: all of the batch's
// requests must surface as ErrNoSlots completions — none stranded, none
// silently dropped — and the device must recover once the fault clears.
func TestChaosBatchFlushExhaustionMidBatch(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	d := Open(Options{
		NumReqs: 16,
		Chaos: &ChaosHooks{
			FlushEnqueue: func(idx uint32) bool { return failing.Load() },
		},
	})
	defer d.Close()

	const n = 6
	batch := make([]*Request, n)
	for i := range batch {
		r := d.AllocRequest()
		r.Src, r.Dst = []byte{1, 2, 3}, make([]byte, 3)
		batch[i] = r
	}
	if err := d.SubmitBatch(batch); err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	got := drainAll(t, d, n)
	for i, r := range got {
		if !errors.Is(r.Err, ErrNoSlots) {
			t.Errorf("request %d: err = %v, want ErrNoSlots", i, r.Err)
		}
		d.FreeRequest(r)
	}
	if err := d.AuditSlots(nil); err != nil {
		t.Error(err)
	}

	// Fault cleared: the same slots must serve a clean batch again.
	failing.Store(false)
	for i := range batch {
		r := d.AllocRequest()
		if r == nil {
			t.Fatalf("slot leak: alloc %d failed after exhausted batch", i)
		}
		r.Src, r.Dst = []byte{9, 8, 7}, make([]byte, 3)
		batch[i] = r
	}
	if err := d.SubmitBatch(batch); err != nil {
		t.Fatalf("post-recovery SubmitBatch: %v", err)
	}
	for _, r := range drainAll(t, d, n) {
		if r.Err != nil || !bytes.Equal(r.Src, r.Dst) {
			t.Errorf("post-recovery completion: err=%v dst=%v", r.Err, r.Dst)
		}
		d.FreeRequest(r)
	}
	if st := d.Stats(); st.DoubleCompletes != 0 {
		t.Errorf("DoubleCompletes = %d, want 0", st.DoubleCompletes)
	}
}

// TestChaosBatchStagingExhaustionMidBatch fails the staging enqueue for
// every other request of a batch: the failed half must surface as
// ErrNoSlots completions and the staged half must complete cleanly —
// the batch contract is exactly len(batch) completions either way.
func TestChaosBatchStagingExhaustionMidBatch(t *testing.T) {
	var ctr atomic.Uint32
	d := Open(Options{
		NumReqs: 16,
		Chaos: &ChaosHooks{
			StagingEnqueue: func(idx uint32) bool { return ctr.Add(1)%2 == 0 },
		},
	})
	defer d.Close()

	const n = 8
	batch := make([]*Request, n)
	for i := range batch {
		r := d.AllocRequest()
		r.Src, r.Dst = bytes.Repeat([]byte{byte(i + 1)}, 128), make([]byte, 128)
		batch[i] = r
	}
	if err := d.SubmitBatch(batch); err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	got := drainAll(t, d, n)
	var clean, noSlots int
	for _, r := range got {
		switch {
		case r.Err == nil:
			clean++
			if !bytes.Equal(r.Src, r.Dst) {
				t.Errorf("request %d: clean completion with corrupt payload", r.idx)
			}
		case errors.Is(r.Err, ErrNoSlots):
			noSlots++
		default:
			t.Errorf("request %d: unexpected error %v", r.idx, r.Err)
		}
		d.FreeRequest(r)
	}
	if clean != n/2 || noSlots != n/2 {
		t.Errorf("clean/noSlots = %d/%d, want %d/%d", clean, noSlots, n/2, n/2)
	}
	if err := d.AuditSlots(nil); err != nil {
		t.Error(err)
	}
	if st := d.Stats(); st.DoubleCompletes != 0 {
		t.Errorf("DoubleCompletes = %d, want 0", st.DoubleCompletes)
	}
}

// TestChaosBatchCancelStormStalledControllers lands a cancel storm on a
// batch whose chunks are frozen inside the controllers: every request
// must complete exactly once — clean or ErrCanceled, with the cancel's
// promise honored — and every slot must return to the free list.
func TestChaosBatchCancelStormStalledControllers(t *testing.T) {
	stall := make(chan struct{})
	var once sync.Once
	d := Open(Options{
		NumReqs:     32,
		Controllers: 2,
		ChunkBytes:  1 << 10,
		Chaos: &ChaosHooks{
			BeforeChunkCopy: func(idx uint32, off, end int) { <-stall },
		},
	})
	defer d.Close()
	defer once.Do(func() { close(stall) })

	const n = 10
	batch := make([]*Request, n)
	for i := range batch {
		r := d.AllocRequest()
		src := bytes.Repeat([]byte{byte(i + 1)}, 4<<10) // 4 chunks each
		r.Src, r.Dst = src, make([]byte, len(src))
		batch[i] = r
	}
	if err := d.SubmitBatch(batch); err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	canceled := map[*Request]bool{}
	for i, r := range batch {
		if i%2 == 1 {
			canceled[r] = d.Cancel(r)
		}
	}
	once.Do(func() { close(stall) })

	got := drainAll(t, d, n)
	seen := map[*Request]int{}
	for _, r := range got {
		seen[r]++
	}
	for i, r := range batch {
		if seen[r] != 1 {
			t.Errorf("request %d completed %d times, want exactly once", i, seen[r])
		}
		switch {
		case r.Err == nil:
			if canceled[r] {
				t.Errorf("request %d: cancel won but completed clean", i)
			}
			if !bytes.Equal(r.Src, r.Dst) {
				t.Errorf("request %d: corrupt payload", i)
			}
		case errors.Is(r.Err, ErrCanceled):
			if !canceled[r] {
				t.Errorf("request %d: ErrCanceled without a winning cancel", i)
			}
		default:
			t.Errorf("request %d: unexpected error %v", i, r.Err)
		}
	}
	var held []uint32
	for _, r := range got {
		held = append(held, r.idx)
	}
	if err := d.AuditSlots(held); err != nil {
		t.Error(err)
	}
	for _, r := range got {
		d.FreeRequest(r)
	}
	if err := d.AuditSlots(nil); err != nil {
		t.Error(err)
	}
	if st := d.Stats(); st.DoubleCompletes != 0 {
		t.Errorf("DoubleCompletes = %d, want 0", st.DoubleCompletes)
	}
}

// TestChaosBatchSubmitCloseRaceNoLostRequests is the batched analogue
// of the submitter-gate regression test: a SubmitBatch that has passed
// the closing check while Close runs must either be rejected whole or
// produce a completion for every request it accepted — mid-batch, no
// request may be stranded in a staging shard past the worker's final
// drain.
func TestChaosBatchSubmitCloseRaceNoLostRequests(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		d := Open(Options{NumReqs: 16, Controllers: 1})
		var accepted, recycled atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := []byte{1, 2, 3, 4}
			buf := make([]*Request, 8)
			batch := make([]*Request, 0, 4)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for n := d.RetrieveCompletedBatch(buf); n > 0; n = d.RetrieveCompletedBatch(buf) {
					for i := 0; i < n; i++ {
						d.FreeRequest(buf[i])
					}
					recycled.Add(int64(n))
				}
				batch = batch[:0]
				for len(batch) < 4 {
					r := d.AllocRequest()
					if r == nil {
						break
					}
					r.Src, r.Dst = src, make([]byte, 4)
					batch = append(batch, r)
				}
				if len(batch) == 0 {
					continue
				}
				if err := d.SubmitBatch(batch); err != nil {
					return // ErrClosed: the slots stay user-held, fine
				}
				accepted.Add(int64(len(batch)))
			}
		}()
		for d.Completed() == 0 {
			time.Sleep(10 * time.Microsecond)
		}
		d.Close()
		close(stop)
		wg.Wait()
		var got int64
		for d.RetrieveCompleted() != nil {
			got++
		}
		if total := recycled.Load() + got; total != accepted.Load() {
			t.Fatalf("iter %d: accepted %d batch submissions but saw %d completions — request lost across Close",
				iter, accepted.Load(), total)
		}
	}
}

// TestChaosDispatchStallCancelStorm parks the worker inside dispatch
// (after the request left the submission queue, before chunking) while
// cancels land: the cancel must be observed before any byte moves, and
// the completion must still fire exactly once.
func TestChaosDispatchStallCancelStorm(t *testing.T) {
	entered := make(chan uint32, 16)
	release := make(chan struct{})
	opts := Options{
		NumReqs: 8,
		Chaos: &ChaosHooks{
			BeforeDispatch: func(idx uint32) {
				entered <- idx
				<-release
			},
		},
	}
	d := Open(opts)
	defer d.Close()

	r := d.AllocRequest()
	r.Src, r.Dst = bytes.Repeat([]byte{7}, 1<<10), make([]byte, 1<<10)
	if err := d.Submit(r); err != nil {
		t.Fatal(err)
	}
	<-entered // worker is parked inside dispatch
	if !d.Cancel(r) {
		t.Fatal("cancel of a parked pending request failed")
	}
	close(release)
	rr := drainAll(t, d, 1)[0]
	if !errors.Is(rr.Err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", rr.Err)
	}
	for _, b := range rr.Dst {
		if b != 0 {
			t.Fatal("bytes moved after a pre-dispatch cancel")
		}
	}
	d.FreeRequest(rr)
	if err := d.AuditSlots(nil); err != nil {
		t.Error(err)
	}
}

// TestChaosCancelDuringShed lands a cancel storm inside the admission
// shed window: the pipeline is saturated with stalled foreground work so
// every scavenger in a batch is shed, while a concurrent canceler races
// the shed-completion path for the same requests. Each scavenger must
// complete exactly once — with ErrOverload if the shed won or
// ErrCanceled if the cancel claimed it first — and no slot may leak.
func TestChaosCancelDuringShed(t *testing.T) {
	stall := make(chan struct{})
	var once sync.Once
	opts := Options{
		NumReqs:     16,
		Controllers: 1,
		ChunkBytes:  1 << 10,
		QoS:         QoSOptions{InlineThreshold: -1}, // keep copies off the worker
		Chaos: &ChaosHooks{
			BeforeChunkCopy: func(idx uint32, off, end int) { <-stall },
		},
	}
	d := Open(opts)
	defer d.Close()
	defer once.Do(func() { close(stall) })

	// Saturate to the scavenger admission threshold (50% of 16 = 8
	// slots) with foreground requests frozen in the controller.
	const nFG = 8
	fgs := make([]*Request, 0, nFG)
	for i := 0; i < nFG; i++ {
		r := d.AllocRequest()
		r.Src, r.Dst = bytes.Repeat([]byte{byte(i + 1)}, 4<<10), make([]byte, 4<<10)
		if err := d.Submit(r); err != nil {
			t.Fatalf("foreground submit %d: %v", i, err)
		}
		fgs = append(fgs, r)
	}

	// Batch-submit scavengers — all shed by admission — while a cancel
	// storm races the shed completions for the same requests.
	const nScav = 6
	scavs := make([]*Request, 0, nScav)
	for i := 0; i < nScav; i++ {
		r := d.AllocRequest()
		r.Class = ClassScavenger
		r.Src, r.Dst = bytes.Repeat([]byte{0xEE}, 1<<10), make([]byte, 1<<10)
		scavs = append(scavs, r)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, r := range scavs {
				d.Cancel(r)
			}
		}
	}()
	if err := d.SubmitBatch(scavs); err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	close(stop)
	wg.Wait()
	once.Do(func() { close(stall) })

	got := drainAll(t, d, nFG+nScav)
	seen := map[*Request]int{}
	for _, r := range got {
		seen[r]++
	}
	for i, r := range fgs {
		if seen[r] != 1 {
			t.Errorf("foreground %d completed %d times, want exactly once", i, seen[r])
		}
		if r.Err != nil {
			t.Errorf("foreground %d: %v, want clean completion", i, r.Err)
		} else if !bytes.Equal(r.Src, r.Dst) {
			t.Errorf("foreground %d: clean completion with corrupt payload", i)
		}
	}
	for i, r := range scavs {
		if seen[r] != 1 {
			t.Errorf("scavenger %d completed %d times, want exactly once", i, seen[r])
		}
		switch {
		case errors.Is(r.Err, ErrOverload):
			var oe *OverloadError
			if !errors.As(r.Err, &oe) || oe.Class != ClassScavenger {
				t.Errorf("scavenger %d: shed error %v lacks the typed class", i, r.Err)
			}
		case errors.Is(r.Err, ErrCanceled):
			// The cancel claimed the request inside the shed window.
		default:
			t.Errorf("scavenger %d: err = %v, want ErrOverload or ErrCanceled", i, r.Err)
		}
		for _, b := range r.Dst {
			if b != 0 {
				t.Errorf("scavenger %d: bytes moved despite shed/cancel", i)
				break
			}
		}
	}

	var held []uint32
	for _, r := range got {
		held = append(held, r.idx)
	}
	if err := d.AuditSlots(held); err != nil {
		t.Error(err)
	}
	if st := d.Stats(); st.DoubleCompletes != 0 {
		t.Errorf("DoubleCompletes = %d, want 0", st.DoubleCompletes)
	} else if st.Shed == 0 {
		t.Error("no shed was recorded — the overload window never opened")
	}
}

// TestChaosTenantCancelStorm is the multi-tenant isolation storm: an
// aggressor tenant cancels every one of its requests mid-flight, over
// and over, while two victim tenants submit steadily. The device must
// keep its exactly-once completion promise for everyone, the storm must
// never shed or cancel a victim request, and every slot must come home.
func TestChaosTenantCancelStorm(t *testing.T) {
	d := Open(Options{
		NumReqs:     64,
		Controllers: 2,
		ChunkBytes:  1 << 10,
		Chaos: &ChaosHooks{
			BeforeChunkCopy: func(idx uint32, off, end int) { time.Sleep(5 * time.Microsecond) },
		},
	})
	defer d.Close()

	aggr, err := d.OpenTenant(TenantConfig{Name: "aggressor", Weight: 1, SlotQuota: 16})
	if err != nil {
		t.Fatal(err)
	}
	victims := make([]*Tenant, 2)
	for i := range victims {
		v, err := d.OpenTenant(TenantConfig{Name: fmt.Sprintf("victim%d", i), Weight: 2, SlotQuota: 16})
		if err != nil {
			t.Fatal(err)
		}
		victims[i] = v
	}

	const perVictim = 60
	var (
		wg        sync.WaitGroup
		retrieved atomic.Int64
		stopDrain = make(chan struct{})
	)
	// Drainer: frees every completion; per-tenant outcomes are checked
	// through the tenant counters afterwards.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if r := d.RetrieveCompleted(); r != nil {
				if r.Err == nil && !bytes.Equal(r.Src, r.Dst) {
					t.Errorf("request %d: clean completion with corrupt payload", r.idx)
				}
				d.FreeRequest(r)
				retrieved.Add(1)
				continue
			}
			select {
			case <-stopDrain:
				return
			default:
				d.Poll(time.Millisecond)
			}
		}
	}()

	// Victims: steady submission, multi-chunk payloads so cancels have a
	// window, every submit must be admitted (their quota is theirs alone).
	var accepted atomic.Int64
	for vi, v := range victims {
		wg.Add(1)
		go func(vi int, v *Tenant) {
			defer wg.Done()
			src := bytes.Repeat([]byte{byte(vi + 1)}, 4<<10)
			for n := 0; n < perVictim; {
				// Stay under the victim's own quota so a shed can only
				// mean cross-tenant leakage, never self-inflicted
				// admission pressure.
				if v.Stats().InFlight >= 12 {
					time.Sleep(20 * time.Microsecond)
					continue
				}
				r := d.AllocRequest()
				if r == nil {
					time.Sleep(20 * time.Microsecond)
					continue
				}
				r.Src, r.Dst = src, make([]byte, len(src))
				if err := v.Submit(r); err != nil {
					t.Errorf("victim %d submit: %v — aggressor storm leaked into a victim", vi, err)
					d.FreeRequest(r)
					return
				}
				accepted.Add(1)
				n++
			}
		}(vi, v)
	}

	// Aggressor: floods its quota and mass-cancels everything, forever.
	stopStorm := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := bytes.Repeat([]byte{0xAA}, 4<<10)
		for {
			select {
			case <-stopStorm:
				return
			default:
			}
			for i := 0; i < 8; i++ {
				r := d.AllocRequest()
				if r == nil {
					break
				}
				r.Src, r.Dst = src, make([]byte, len(src))
				if err := aggr.Submit(r); err != nil {
					d.FreeRequest(r)
					break
				}
				accepted.Add(1)
			}
			aggr.CancelAll()
		}
	}()

	// Let the storm rage until every victim request has been accepted,
	// then stop the aggressor and wait for the pipeline to go quiet.
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, v := range victims {
			if v.Stats().Submitted < perVictim {
				done = false
			}
		}
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stopStorm)
	for retrieved.Load() < accepted.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stopDrain)
	wg.Wait()

	if got, want := retrieved.Load(), accepted.Load(); got != want {
		t.Errorf("retrieved %d completions for %d accepted submissions", got, want)
	}
	for vi, v := range victims {
		st := v.Stats()
		if st.Submitted != perVictim {
			t.Errorf("victim %d: submitted %d, want %d", vi, st.Submitted, perVictim)
		}
		if st.Completed != st.Submitted {
			t.Errorf("victim %d: completed %d of %d", vi, st.Completed, st.Submitted)
		}
		if st.Shed != 0 {
			t.Errorf("victim %d: %d sheds — the aggressor's overload reached a victim", vi, st.Shed)
		}
		if st.Canceled != 0 {
			t.Errorf("victim %d: %d canceled — the aggressor's storm claimed a victim request", vi, st.Canceled)
		}
		if st.InFlight != 0 || st.QueueDepth != 0 {
			t.Errorf("victim %d: inFlight=%d queueDepth=%d after quiesce", vi, st.InFlight, st.QueueDepth)
		}
	}
	ast := aggr.Stats()
	if ast.Completed != ast.Submitted {
		t.Errorf("aggressor: completed %d of %d", ast.Completed, ast.Submitted)
	}
	if err := d.AuditSlots(nil); err != nil {
		t.Error(err)
	}
	if st := d.Stats(); st.DoubleCompletes != 0 {
		t.Errorf("DoubleCompletes = %d, want 0", st.DoubleCompletes)
	}
}

// TestChaosBusyPollCancelStormCloseDrain exercises the busy-poll
// spin→park boundary under fire: a tiny idle budget keeps the worker
// bouncing between spinning and parking while a cancel storm lands and
// CloseDrain cuts in mid-spin. The park token must never be lost (the
// drain completes), completion fires exactly once per request, and no
// slot vanishes.
func TestChaosBusyPollCancelStormCloseDrain(t *testing.T) {
	for iter := 0; iter < 5; iter++ {
		d := Open(Options{
			NumReqs:       32,
			Controllers:   2,
			ChunkBytes:    1 << 10,
			StagingShards: 2,
			BusyPoll:      true,
			BusyPollIdle:  50 * time.Microsecond, // force frequent spin→park transitions
			Chaos: &ChaosHooks{
				BeforeChunkCopy: func(idx uint32, off, end int) { time.Sleep(20 * time.Microsecond) },
			},
		})

		const n = 12
		reqs := make([]*Request, 0, n)
		for i := 0; i < n; i++ {
			r := d.AllocRequest()
			if r == nil {
				t.Fatal("alloc failed")
			}
			src := bytes.Repeat([]byte{byte(i + 1)}, 4<<10) // 4 chunks each
			r.Src, r.Dst = src, make([]byte, len(src))
			if err := d.Submit(r); err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			reqs = append(reqs, r)
			if i%3 == 2 {
				// Let the worker drain dry and burn through its idle
				// budget so later submissions land on a parked (or
				// about-to-park) worker, not just a spinning one.
				time.Sleep(100 * time.Microsecond)
			}
		}
		canceled := map[*Request]bool{}
		for i, r := range reqs {
			if i%2 == iter%2 {
				canceled[r] = d.Cancel(r)
			}
		}
		if !d.CloseDrain(5 * time.Second) {
			t.Fatalf("iter %d: CloseDrain timed out — busy-poll worker lost the drain", iter)
		}
		got := drainAll(t, d, n)
		seen := map[*Request]int{}
		var held []uint32
		for _, r := range got {
			seen[r]++
			held = append(held, r.idx)
		}
		for i, r := range reqs {
			if seen[r] != 1 {
				t.Errorf("iter %d: request %d completed %d times, want exactly once", iter, i, seen[r])
			}
			switch {
			case r.Err == nil:
				if !bytes.Equal(r.Src, r.Dst) {
					t.Errorf("iter %d: request %d: clean completion with corrupt payload", iter, i)
				}
			case errors.Is(r.Err, ErrCanceled):
				if !canceled[r] {
					t.Errorf("iter %d: request %d: ErrCanceled without a winning cancel", iter, i)
				}
			default:
				t.Errorf("iter %d: request %d: unexpected error %v", iter, i, r.Err)
			}
		}
		if err := d.AuditSlots(held); err != nil {
			t.Errorf("iter %d: %v", iter, err)
		}
		st := d.Stats()
		if st.DoubleCompletes != 0 {
			t.Errorf("iter %d: DoubleCompletes = %d, want 0", iter, st.DoubleCompletes)
		}
		if st.BusyPollSpins == 0 {
			t.Errorf("iter %d: BusyPollSpins = 0 — the storm never exercised the spin phase", iter)
		}
	}
}
