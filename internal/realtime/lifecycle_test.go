package realtime

import (
	"bytes"
	"errors"
	"math"
	"os"
	"sync"
	"testing"
	"time"

	"memif/internal/obs/flight"
	"memif/internal/obs/lifecycle"
)

// checkMonotone asserts the stamped subset of a lifecycle's stages is
// non-decreasing in stage order — the core tracer invariant: whatever
// path a request takes (clean, canceled, failed, stolen chunks), time
// can only move forward through its stamps.
func checkMonotone(t *testing.T, lc lifecycle.Lifecycle) {
	t.Helper()
	last := int64(0)
	lastStage := lifecycle.Stage(0)
	for st := 0; st < lifecycle.NumStages; st++ {
		ts := lc.TS[st]
		if ts == 0 {
			continue
		}
		if ts < last {
			t.Errorf("lifecycle seq %d (slot %d, %v): stage %v at %d precedes %v at %d",
				lc.Seq, lc.Slot, lc.Outcome, lifecycle.Stage(st), ts, lastStage, last)
		}
		last, lastStage = ts, lifecycle.Stage(st)
	}
	if lc.TS[lifecycle.StageSubmit] == 0 {
		t.Errorf("lifecycle seq %d has no submit stamp", lc.Seq)
	}
	if lc.TS[lifecycle.StageRetrieved] == 0 {
		t.Errorf("lifecycle seq %d has no retrieved stamp", lc.Seq)
	}
}

// TestLifecycleCleanPipelineFullStamps checks that on an unchaotic
// chunked run every captured lifecycle carries all seven stamps in
// order and the span histograms cover every attribution bucket.
func TestLifecycleCleanPipelineFullStamps(t *testing.T) {
	d := Open(Options{
		NumReqs: 32, Controllers: 2, StagingShards: 2, ChunkBytes: 8 << 10,
		TraceFullCapture: true, TraceCaptureDepth: 128,
	})
	defer d.Close()

	const n = 64
	src := bytes.Repeat([]byte{3}, 32<<10)
	for done := 0; done < n; {
		r := d.AllocRequest()
		if r == nil {
			t.Fatal("alloc failed")
		}
		r.Src, r.Dst = src, make([]byte, len(src))
		if err := d.Submit(r); err != nil {
			t.Fatal(err)
		}
		if !d.Poll(time.Second) {
			t.Fatal("Poll timed out")
		}
		for got := d.RetrieveCompleted(); got != nil; got = d.RetrieveCompleted() {
			d.FreeRequest(got)
			done++
		}
	}

	s := d.Stats().Lifecycle
	if !s.Enabled || s.SampleShift != 0 {
		t.Fatalf("full capture not enabled: %+v", s)
	}
	if s.Begun != n || s.Ended != n {
		t.Errorf("begun/ended = %d/%d, want %d/%d", s.Begun, s.Ended, n, n)
	}
	if len(s.Captured) != n {
		t.Fatalf("captured %d lifecycles, want %d", len(s.Captured), n)
	}
	for _, lc := range s.Captured {
		checkMonotone(t, lc)
		for st := 0; st < lifecycle.NumStages; st++ {
			if lc.TS[st] == 0 {
				t.Errorf("clean lifecycle seq %d missing stage %v", lc.Seq, lifecycle.Stage(st))
			}
		}
		if lc.Outcome != lifecycle.OutcomeOK {
			t.Errorf("clean lifecycle seq %d outcome %v", lc.Seq, lc.Outcome)
		}
		if lc.Bytes != int64(len(src)) {
			t.Errorf("lifecycle seq %d bytes %d, want %d", lc.Seq, lc.Bytes, len(src))
		}
	}
	for _, span := range []lifecycle.Span{
		lifecycle.SpanStagingWait, lifecycle.SpanDispatchWait, lifecycle.SpanRingWait,
		lifecycle.SpanCopy, lifecycle.SpanCompletionDwell, lifecycle.SpanTotal,
	} {
		if c := s.Spans.Spans[span].Count; c == 0 {
			t.Errorf("span %v has no samples on a fully sampled run", span)
		}
	}
}

// TestLifecycleMonotoneUnderCancelChaos freezes the controllers, lands
// a cancel storm mid-pipeline, releases, and requires every captured
// lifecycle — clean or canceled — to keep monotone stamps and a
// matching outcome.
func TestLifecycleMonotoneUnderCancelChaos(t *testing.T) {
	stall := make(chan struct{})
	var once sync.Once
	d := Open(Options{
		NumReqs: 32, Controllers: 2, ChunkBytes: 1 << 10,
		TraceFullCapture: true,
		Chaos: &ChaosHooks{
			BeforeChunkCopy: func(idx uint32, off, end int) { <-stall },
		},
	})
	defer d.Close()
	defer once.Do(func() { close(stall) })

	const n = 8
	reqs := make([]*Request, 0, n)
	src := bytes.Repeat([]byte{7}, 4<<10)
	for i := 0; i < n; i++ {
		r := d.AllocRequest()
		r.Src, r.Dst = src, make([]byte, len(src))
		if err := d.Submit(r); err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, r)
	}
	for i, r := range reqs {
		if i%2 == 0 {
			d.Cancel(r)
		}
	}
	once.Do(func() { close(stall) })
	got := drainAll(t, d, n)

	s := d.Stats().Lifecycle
	if len(s.Captured) != n {
		t.Fatalf("captured %d lifecycles, want %d", len(s.Captured), n)
	}
	okCount, canceledCount := 0, 0
	for _, lc := range s.Captured {
		checkMonotone(t, lc)
		switch lc.Outcome {
		case lifecycle.OutcomeOK:
			okCount++
		case lifecycle.OutcomeCanceled:
			canceledCount++
		default:
			t.Errorf("unexpected outcome %v for seq %d", lc.Outcome, lc.Seq)
		}
	}
	if canceledCount == 0 {
		t.Error("cancel storm produced no canceled lifecycles")
	}
	wantCanceled := 0
	for _, r := range got {
		if errors.Is(r.Err, ErrCanceled) {
			wantCanceled++
		}
		d.FreeRequest(r)
	}
	if canceledCount != wantCanceled {
		t.Errorf("captured %d canceled lifecycles, device reports %d", canceledCount, wantCanceled)
	}
	_ = okCount
}

// TestLifecycleErrNoSlotsPath forces the staging→submission flush to
// exhaust: requests complete with ErrNoSlots having never been
// dispatched, and their lifecycles must reflect that — failed outcome,
// no dispatch/copy stamps, still monotone.
func TestLifecycleErrNoSlotsPath(t *testing.T) {
	d := Open(Options{
		NumReqs: 8, Controllers: 1, StagingShards: 1,
		TraceFullCapture: true,
		Chaos: &ChaosHooks{
			FlushEnqueue: func(idx uint32) bool { return true },
		},
	})
	defer d.Close()

	const n = 4
	src := make([]byte, 4096)
	for i := 0; i < n; i++ {
		r := d.AllocRequest()
		r.Src, r.Dst = src, make([]byte, len(src))
		if err := d.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	got := drainAll(t, d, n)
	failed := 0
	for _, r := range got {
		if errors.Is(r.Err, ErrNoSlots) {
			failed++
		}
		d.FreeRequest(r)
	}
	if failed == 0 {
		t.Fatal("forced exhaustion produced no ErrNoSlots completions")
	}
	s := d.Stats().Lifecycle
	for _, lc := range s.Captured {
		checkMonotone(t, lc)
		if lc.Outcome != lifecycle.OutcomeFailed {
			continue
		}
		if lc.TS[lifecycle.StageDispatched] != 0 || lc.TS[lifecycle.StageCopyStart] != 0 {
			t.Errorf("undispatched lifecycle seq %d has dispatch/copy stamps: %v", lc.Seq, lc.TS)
		}
	}
	// The failed path must not leak span samples for stages never reached.
	if c := s.Spans.Spans[lifecycle.SpanCopy].Count; c != 0 {
		t.Errorf("copy span has %d samples with every dispatch exhausted", c)
	}
}

// TestLifecycleSamplingRateOnDevice submits sequentially at shift 3 and
// requires exactly 1 in 8 requests sampled — the deterministic counter
// decision, observable end to end through Stats.
func TestLifecycleSamplingRateOnDevice(t *testing.T) {
	d := Open(Options{NumReqs: 8, Controllers: 1, TraceSampleShift: 3})
	defer d.Close()

	const n = 64
	src := make([]byte, 4096)
	for i := 0; i < n; i++ {
		r := d.AllocRequest()
		r.Src, r.Dst = src, make([]byte, len(src))
		if err := d.Submit(r); err != nil {
			t.Fatal(err)
		}
		if !d.Poll(time.Second) {
			t.Fatal("Poll timed out")
		}
		for got := d.RetrieveCompleted(); got != nil; got = d.RetrieveCompleted() {
			d.FreeRequest(got)
		}
	}
	s := d.Stats().Lifecycle
	if s.SampleShift != 3 {
		t.Fatalf("sample shift = %d, want 3", s.SampleShift)
	}
	if want := int64(n / 8); s.Begun != want || s.Ended != want {
		t.Errorf("begun/ended = %d/%d, want %d/%d at shift 3", s.Begun, s.Ended, want, want)
	}
	if c := s.Spans.Spans[lifecycle.SpanTotal].Count; c != int64(n/8) {
		t.Errorf("total span samples = %d, want %d", c, n/8)
	}
}

// TestLifecycleDisabled checks a negative shift turns the tracer off
// entirely.
func TestLifecycleDisabled(t *testing.T) {
	d := Open(Options{NumReqs: 8, Controllers: 1, TraceSampleShift: -1})
	defer d.Close()
	src := make([]byte, 4096)
	r := d.AllocRequest()
	r.Src, r.Dst = src, make([]byte, len(src))
	if err := d.Submit(r); err != nil {
		t.Fatal(err)
	}
	if !d.Poll(time.Second) {
		t.Fatal("Poll timed out")
	}
	got := d.RetrieveCompleted()
	d.FreeRequest(got)
	s := d.Stats().Lifecycle
	if s.Enabled || s.SampleShift != -1 || s.Begun != 0 || len(s.Captured) != 0 {
		t.Errorf("disabled tracer recorded: %+v", s)
	}
}

// TestLifecycleTracingOverheadGuard is the CI benchmark guard for the
// always-on tracing cost: at the default sample shift, the acceptance
// benchmark configuration (8 submitters, 4 KB batched x16 — the
// sharded-batched16 case of BenchmarkSmallRequest8Submitters) must run
// within 3% of the tracing-disabled build. Gated behind
// MEMIF_BENCH_GUARD because it spends several benchmark windows.
func TestLifecycleTracingOverheadGuard(t *testing.T) {
	if os.Getenv("MEMIF_BENCH_GUARD") == "" {
		t.Skip("set MEMIF_BENCH_GUARD=1 to run the tracing-overhead guard")
	}
	measure := func(shift int) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			benchConcurrentSubmit(b, 8, 4<<10, 16, Options{
				NumReqs: 512, Controllers: 4, StagingShards: 4,
				TraceSampleShift: shift,
				// Disarm the flight recorder on both sides so this guard
				// isolates the lifecycle-sampling cost; the recorder has
				// its own guard (TestFlightOverheadGuard).
				Flight: flight.Options{Disable: true},
			})
		})
		return float64(r.NsPerOp())
	}
	// Interleave the two configurations and keep each one's minimum, so
	// machine-load drift hits both sides equally and the lower-bound
	// ns/op comparison stays stable.
	off, on := math.MaxFloat64, math.MaxFloat64
	for round := 0; round < 6; round++ {
		if v := measure(-1); v < off { // tracing disabled
			off = v
		}
		if v := measure(0); v < on { // 0 resolves to DefaultTraceSampleShift
			on = v
		}
	}
	ratio := on / off
	t.Logf("tracing-disabled %.0f ns/op, default sampling %.0f ns/op, ratio %.4f", off, on, ratio)
	if ratio > 1.03 {
		t.Errorf("default lifecycle sampling costs %.1f%% (> 3%% budget)", (ratio-1)*100)
	}
}

// TestFlightOverheadGuard is the CI benchmark guard for the always-on
// flight recorder: with capture armed at defaults (per-slot stage
// stamping, threshold comparison on every completion, SLO accounting,
// watchdog monitor running), the acceptance benchmark configuration
// must run within 2% of the recorder-disabled build. Gated behind
// MEMIF_BENCH_GUARD because it spends several benchmark windows.
func TestFlightOverheadGuard(t *testing.T) {
	if os.Getenv("MEMIF_BENCH_GUARD") == "" {
		t.Skip("set MEMIF_BENCH_GUARD=1 to run the flight-overhead guard")
	}
	measure := func(disable bool) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			benchConcurrentSubmit(b, 8, 4<<10, 16, Options{
				NumReqs: 512, Controllers: 4, StagingShards: 4,
				Flight: flight.Options{Disable: disable},
			})
		})
		return float64(r.NsPerOp())
	}
	// Interleaved min-of-6, as above: load drift hits both sides alike.
	off, on := math.MaxFloat64, math.MaxFloat64
	for round := 0; round < 6; round++ {
		if v := measure(true); v < off {
			off = v
		}
		if v := measure(false); v < on {
			on = v
		}
	}
	ratio := on / off
	t.Logf("flight-disabled %.0f ns/op, capture armed %.0f ns/op, ratio %.4f", off, on, ratio)
	if ratio > 1.02 {
		t.Errorf("armed flight recorder costs %.1f%% (> 2%% budget)", (ratio-1)*100)
	}
}
