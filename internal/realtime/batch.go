package realtime

import (
	"fmt"
	"time"

	"memif/internal/obs/flight"
	"memif/internal/rbq"
)

// SubmitBatch queues every request in reqs as one protocol round: all
// of them are staged on the submitter's shard, and the flush / recolor
// / kick sequence runs at most once for the whole batch — one color
// observation and at most one syscall-equivalent, the Figure 7
// amortization — while each request still gets its own completion.
//
// The whole batch is validated before anything is staged: a size
// mismatch rejects the batch with ErrBadSizes and no request is
// submitted. After validation every request is accepted: one that
// cannot be staged (slab exhaustion) surfaces through the completion
// queue with ErrNoSlots rather than as a return value, and one the
// admission controller sheds surfaces the same way with an
// *OverloadError (errors.Is ErrOverload) — so a batch caller always
// collects exactly len(reqs) completions — none stranded, none to
// special-case. A concurrent Cancel that claims a request in the window
// keeps its ErrCanceled promise.
func (d *Device) SubmitBatch(reqs []*Request) error {
	for _, r := range reqs {
		r.tenant.Store(0)
	}
	return d.submitBatch(reqs)
}

// submitBatch is the tenant-agnostic SubmitBatch body: every request's
// tenant is already stamped by the caller-facing wrapper.
func (d *Device) submitBatch(reqs []*Request) error {
	if len(reqs) == 0 {
		return nil
	}
	// Submitter gate, as in Submit: the increment precedes the closing
	// check so Close cannot complete while the batch is mid-staging.
	d.active.Add(1)
	defer d.active.Add(-1)
	if d.closing.Load() || d.closed.Load() {
		return ErrClosed
	}
	for i, r := range reqs {
		if len(r.Src) != len(r.Dst) {
			return fmt.Errorf("%w: request %d: %d vs %d", ErrBadSizes, i, len(r.Src), len(r.Dst))
		}
	}
	sh := d.shard()
	mustFlush := false
	for _, r := range reqs {
		if err := d.admit(r); err != nil {
			// Shed by admission mid-batch. The batch contract promises a
			// completion per request, so the rejection surfaces through
			// the completion queue instead of failing the whole batch.
			r.submitted.Store(0) // no pipeline latency to attribute
			r.state.Store(r.word(stPending))
			d.accept(r)
			d.finish(r, err)
			continue
		}
		color, ok := d.stage(sh, r)
		if !ok {
			// Staging failed mid-batch. The request was accepted, so it
			// must surface as a completion: ErrNoSlots, or ErrCanceled
			// if a cancel already claimed it (finish resolves that).
			d.accept(r)
			d.finish(r, ErrNoSlots)
			continue
		}
		if color == rbq.Blue {
			mustFlush = true
		}
	}
	d.m.batches.Inc()
	if mustFlush {
		// At least one enqueue observed blue: this batch owns the flush.
		// Running it once at the end drains everything staged above (and
		// anything a neighbor staged meanwhile) with a single recolor
		// and at most a single kick.
		d.flushShard(sh, reqs[0].idx)
	}
	return nil
}

// RetrieveCompletedBatch fills buf with completed requests without
// blocking and returns how many it retrieved (0 when none are pending).
// One call replaces up to len(buf) Poll/RetrieveCompleted round trips
// on the completion path. Draining starts at this poller's home
// completion ring (local-first bias) and round-robins across the rest,
// so concurrent batch pollers spread over the rings instead of
// serializing on one head.
func (d *Device) RetrieveCompletedBatch(buf []*Request) int {
	n := 0
	start := d.pollerRing()
	// One clock read and one accumulator flush serve the whole batch's
	// flight accounting: the retrieve timestamp is read at the first
	// completion (an empty call costs nothing) and every request's lane
	// and SLO arithmetic folds locally until Flush. Batch-level
	// staleness only shifts breach latencies by microseconds; the
	// sampled lifecycles inside lcEnd still read fresh clocks.
	var acc flight.Acc
	acc.Init(d.fr)
	var nano int64
	for n < len(buf) {
		idx, ok := d.popCompletion(start)
		if !ok {
			break
		}
		if r, valid := d.req(idx); valid {
			d.m.retrieved.Inc()
			if nano == 0 && d.fr != nil {
				nano = time.Now().UnixNano()
			}
			d.lcEnd(r, nano, &acc)
			buf[n] = r
			n++
		}
	}
	acc.Flush()
	if n > 0 && !d.completionEmpty() {
		d.wake() // keep concurrent pollers from sleeping past the rest
	}
	return n
}
