package realtime

// Tenant namespaces: one physical device shared by many logical
// tenants, each carrying its own slot quota, DRR weight, counters,
// latency histogram and lifecycle span attribution.
//
// A tenant is a namespace over the device, not a copy of it: requests
// still come from the shared slab and flow through the shared staging /
// submission / completion queues. The tenant id rides on the request
// (stamped at Submit) and three mechanisms keyed off it provide the
// isolation guarantees:
//
//   - admission: a tenanted request is admitted against its *own*
//     occupancy (in-flight vs quota x class share), never the global
//     one — so one tenant's overload sheds only that tenant's requests;
//   - scheduling: the worker serves tenants inside each class by
//     weighted deficit round robin (tsched.go), so a backlogged tenant
//     gets throughput proportional to its weight, not its submit rate;
//   - cancellation: the tenant id is packed into the request's atomic
//     state word alongside the lifecycle state, so CancelAll's
//     compare-and-swap claims exactly the canceling tenant's pending
//     requests — a mass cancel can never touch a slot that was freed
//     and re-allocated by another tenant in the window.
//
// Tenant id 0 is the device's built-in default namespace: requests
// submitted through the plain Device API belong to it, it has weight 1
// and no quota (global PR 5 admission applies), so pre-tenant callers
// observe exactly the old behavior.

import (
	"errors"
	"fmt"
	"sync/atomic"

	"memif/internal/obs"
	"memif/internal/obs/lifecycle"
)

// Tenant-config validation errors.
var (
	// ErrBadTenant rejects an OpenTenant call whose config fails
	// validation (empty or oversized name, bad label characters, weight
	// or quota out of range, duplicate name).
	ErrBadTenant = errors.New("realtime: invalid tenant config")
	// ErrTenantExists rejects a duplicate tenant name.
	ErrTenantExists = errors.New("realtime: tenant name already open")
)

// Tenant-config bounds. MaxTenantWeight keeps one round of DRR bounded;
// maxTenantNameLen keeps the /metrics label sane. The tenant-id space
// itself is bounded by the state-word packing (29 usable bits), far
// beyond any realistic tenant count.
const (
	MaxTenantWeight   = 1 << 16
	maxTenantNameLen  = 64
	maxTenantID       = 1<<(32-stateBits) - 1
	defaultTenantName = "default"
)

// TenantConfig describes one tenant namespace.
type TenantConfig struct {
	// Name identifies the tenant in Stats and /metrics labels. Required;
	// at most 64 bytes of printable ASCII (no '"' or '\\'), unique per
	// device.
	Name string
	// Weight is the tenant's DRR quantum: the number of requests it is
	// served per scheduling round, relative to other backlogged tenants
	// in the same class. 0 means 1; range [1, MaxTenantWeight].
	Weight int
	// SlotQuota caps the tenant's in-flight requests (its private
	// occupancy limit; class shares scale it exactly like the global
	// admission thresholds). Required; range [1, NumReqs of the device].
	SlotQuota int
}

// Validate checks the config's device-independent invariants: name
// shape, weight range and quota positivity. OpenTenant additionally
// bounds SlotQuota by the device's NumReqs and enforces name
// uniqueness. Always returns either nil or an error matching
// errors.Is(err, ErrBadTenant).
func (c TenantConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("%w: empty name", ErrBadTenant)
	}
	if len(c.Name) > maxTenantNameLen {
		return fmt.Errorf("%w: name %d bytes, max %d", ErrBadTenant, len(c.Name), maxTenantNameLen)
	}
	for i := 0; i < len(c.Name); i++ {
		b := c.Name[i]
		if b < 0x20 || b > 0x7e || b == '"' || b == '\\' {
			return fmt.Errorf("%w: name byte %d (0x%02x) not printable label ASCII", ErrBadTenant, i, b)
		}
	}
	if c.Weight < 0 || c.Weight > MaxTenantWeight {
		return fmt.Errorf("%w: weight %d outside [0, %d]", ErrBadTenant, c.Weight, MaxTenantWeight)
	}
	if c.SlotQuota <= 0 {
		return fmt.Errorf("%w: slot quota %d, want >= 1", ErrBadTenant, c.SlotQuota)
	}
	return nil
}

// tenantState is the device-side record of one tenant: identity,
// scheduling parameters, admission limits and per-tenant instruments.
type tenantState struct {
	id         uint32
	name       string
	weight     int64
	quota      int64 // 0 on the default tenant: global admission applies
	classLimit [NumClasses]int64

	// inFlight is RMW'd by submitters (accept) and finishers (finish);
	// queued by submitters (flush) and the worker (dispatch). Padding
	// keeps each on its own cache line so the worker's queued decrements
	// don't invalidate the submitters' inFlight line and vice versa.
	_        [64]byte
	inFlight atomic.Int64 // accepted, not yet terminal
	_        [56]byte
	queued   atomic.Int64 // flushed to submission, not yet dispatched
	_        [56]byte

	submitted, completed obs.Counter
	shed, canceled       obs.Counter
	latency              obs.Histogram
	spans                lifecycle.SpanSet
}

// Tenant is a handle on one tenant namespace of a Device. Handles are
// cheap, immutable and safe for concurrent use; there is no close — a
// tenant lives as long as its device.
type Tenant struct {
	d  *Device
	id uint32
}

// OpenTenant registers a tenant namespace on the device and returns its
// handle. The config is validated (errors match ErrBadTenant; a
// duplicate name additionally matches ErrTenantExists); SlotQuota is
// clamped to the device's NumReqs. Tenants may be opened at any time,
// including while the device is under load.
func (d *Device) OpenTenant(cfg TenantConfig) (*Tenant, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	weight := int64(cfg.Weight)
	if weight == 0 {
		weight = 1
	}
	quota := int64(cfg.SlotQuota)
	if quota > int64(len(d.reqs)) {
		quota = int64(len(d.reqs))
	}
	ts := &tenantState{name: cfg.Name, weight: weight, quota: quota}
	for c := range ts.classLimit {
		limit := int64(d.qos.ClassShares[c] * float64(quota))
		if d.qos.ClassShares[c] >= 1 || limit > quota {
			limit = quota
		}
		if limit < 1 {
			limit = 1
		}
		ts.classLimit[c] = limit
	}
	d.tenantMu.Lock()
	defer d.tenantMu.Unlock()
	old := *d.tenants.Load()
	for _, t := range old {
		if t.name == cfg.Name {
			return nil, fmt.Errorf("%w: %w: %q", ErrBadTenant, ErrTenantExists, cfg.Name)
		}
	}
	if len(old) > maxTenantID {
		return nil, fmt.Errorf("%w: tenant id space exhausted", ErrBadTenant)
	}
	ts.id = uint32(len(old))
	// Copy-on-write: readers (admission, finish, Stats, the worker's
	// weight lookup) load the table pointer once and never see a slice
	// mid-append.
	tab := make([]*tenantState, len(old)+1)
	copy(tab, old)
	tab[len(old)] = ts
	d.tenants.Store(&tab)
	// Grow the flight recorder's lane table in lockstep so the new
	// tenant's completions train their own EWMA/SLO lanes from request
	// one instead of folding into tenant 0.
	d.fr.EnsureTenants(len(tab))
	return &Tenant{d: d, id: ts.id}, nil
}

// newDefaultTenant builds tenant id 0: the namespace of every request
// submitted through the plain Device API. Quota 0 selects the global
// PR 5 admission path, weight 1 makes untenanted work one DRR
// participant among equals.
func newDefaultTenant() *tenantState {
	return &tenantState{id: 0, name: defaultTenantName, weight: 1}
}

// tenant returns the state for id, falling back to the default tenant
// for an out-of-range id (impossible through the public API; the
// fallback keeps the accounting total even if a stale id ever appears).
func (d *Device) tenant(id uint32) *tenantState {
	tab := *d.tenants.Load()
	if int(id) < len(tab) {
		return tab[id]
	}
	return tab[0]
}

// tenantOf resolves the tenant owning r.
func (d *Device) tenantOf(r *Request) *tenantState { return d.tenant(r.tenant.Load()) }

// tenantWeight is the scheduler's weight lookup (worker goroutine).
func (d *Device) tenantWeight(id uint32) int64 { return d.tenant(id).weight }

// Name returns the tenant's configured name.
func (t *Tenant) Name() string { return t.d.tenant(t.id).name }

// ID returns the tenant's dense device-local id (0 is the device's
// default namespace; handles from OpenTenant start at 1).
func (t *Tenant) ID() int { return int(t.id) }

// Device returns the underlying device.
func (t *Tenant) Device() *Device { return t.d }

// Submit queues r under this tenant: admission is checked against the
// tenant's own quota, dispatch is weighted by its DRR share, and the
// completion is attributed to its counters and histograms. Same
// contract as Device.Submit otherwise.
func (t *Tenant) Submit(r *Request) error {
	r.tenant.Store(t.id)
	return t.d.submit(r)
}

// SubmitBatch queues the batch under this tenant; same contract as
// Device.SubmitBatch (exactly one completion per request, sheds surface
// as ErrOverload completions).
func (t *Tenant) SubmitBatch(reqs []*Request) error {
	for _, r := range reqs {
		r.tenant.Store(t.id)
	}
	return t.d.submitBatch(reqs)
}

// CancelAll cancels every pending request of this tenant and returns
// how many cancels won. Each claimed request completes with ErrCanceled
// through the normal path. The claim is a single compare-and-swap on
// the packed (tenant, state) word, so a storm of CancelAll calls can
// never cancel — or even observe — another tenant's requests: a slot
// freed and re-allocated by tenant B mid-scan carries B's id in the
// word and the CAS simply fails.
func (t *Tenant) CancelAll() int {
	d := t.d
	pending := packState(t.id, stPending)
	canceled := packState(t.id, stCanceled)
	n := 0
	for _, r := range d.reqs {
		if r.state.Load() == pending && r.state.CompareAndSwap(pending, canceled) {
			d.trace(EvCancel, uint64(r.idx), 0)
			n++
		}
	}
	return n
}

// Stats returns this tenant's slice of the device counters.
func (t *Tenant) Stats() TenantStats { return t.d.tenant(t.id).snapshot() }

// TenantStats is one tenant's slice of the device counters, exported
// through StatsSnapshot.Tenants and the memif_realtime_tenant_* series.
type TenantStats struct {
	// ID is the dense device-local tenant id (0 = the default
	// namespace); Name the configured name.
	ID   int
	Name string
	// Weight is the DRR quantum; SlotQuota the in-flight cap (0 on the
	// default tenant, whose admission is the global controller).
	Weight, SlotQuota int64
	// Submitted counts accepted submissions; Completed terminal ones;
	// Shed admission rejections charged to this tenant; Canceled the
	// ErrCanceled completions (CancelAll and per-request Cancel alike).
	Submitted, Completed, Shed, Canceled int64
	// InFlight is the live accepted-but-not-terminal count; QueueDepth
	// the flushed-but-not-yet-dispatched count (submission queue plus
	// scheduler bucket).
	InFlight, QueueDepth int64
	// Latency is the submission-to-completion histogram (ns) of this
	// tenant alone.
	Latency obs.HistogramSnapshot
	// Spans carries the tenant's lifecycle stage-latency attribution
	// (sampled requests only, like the device-wide spans).
	Spans lifecycle.SpanSnapshot
}

func (ts *tenantState) snapshot() TenantStats {
	return TenantStats{
		ID:         int(ts.id),
		Name:       ts.name,
		Weight:     ts.weight,
		SlotQuota:  ts.quota,
		Submitted:  ts.submitted.Load(),
		Completed:  ts.completed.Load(),
		Shed:       ts.shed.Load(),
		Canceled:   ts.canceled.Load(),
		InFlight:   ts.inFlight.Load(),
		QueueDepth: ts.queued.Load(),
		Latency:    ts.latency.Snapshot(),
		Spans:      ts.spans.Snapshot(),
	}
}
