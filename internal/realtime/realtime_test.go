package realtime

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memif/internal/rbq"
)

func TestBasicCopy(t *testing.T) {
	d := Open(DefaultOptions())
	defer d.Close()

	src := bytes.Repeat([]byte{7}, 1<<16)
	dst := make([]byte, 1<<16)
	r := d.AllocRequest()
	if r == nil {
		t.Fatal("AllocRequest failed")
	}
	r.Src, r.Dst = src, dst
	if _, ok := r.Latency(); ok {
		t.Error("Latency reported valid before submission")
	}
	if err := d.Submit(r); err != nil {
		t.Fatal(err)
	}
	if !d.Poll(time.Second) {
		t.Fatal("Poll timed out")
	}
	got := d.RetrieveCompleted()
	if got != r {
		t.Fatalf("retrieved %v, want %v", got, r)
	}
	if got.Err != nil {
		t.Errorf("Err = %v", got.Err)
	}
	if !bytes.Equal(dst, src) {
		t.Error("copy corrupted data")
	}
	if lat, ok := got.Latency(); !ok || lat <= 0 {
		t.Errorf("latency = %v, %v", lat, ok)
	}
	d.FreeRequest(got)
}

func TestSizeMismatchRejected(t *testing.T) {
	d := Open(DefaultOptions())
	defer d.Close()
	r := d.AllocRequest()
	r.Src, r.Dst = make([]byte, 10), make([]byte, 20)
	if err := d.Submit(r); err == nil {
		t.Error("mismatched sizes accepted")
	}
}

func TestBurstSingleKick(t *testing.T) {
	d := Open(DefaultOptions())
	defer d.Close()
	const n = 50
	src := make([]byte, 4096)
	for i := 0; i < n; i++ {
		r := d.AllocRequest()
		r.Src, r.Dst = src, make([]byte, 4096)
		r.Cookie = uint64(i)
		if err := d.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	seen := make([]bool, n)
	for done := 0; done < n; {
		if r := d.RetrieveCompleted(); r != nil {
			if seen[r.Cookie] {
				t.Fatalf("cookie %d completed twice", r.Cookie)
			}
			seen[r.Cookie] = true
			d.FreeRequest(r)
			done++
			continue
		}
		if !d.Poll(time.Second) {
			t.Fatal("Poll timed out")
		}
	}
	// A tight burst needs only a few kicks — usually one, the paper's
	// headline property. Allow scheduler slack but demand amortization.
	if k := d.Kicks(); k > n/4 {
		t.Errorf("kicks = %d for a %d-request burst", k, n)
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	d := Open(Options{NumReqs: 512, Controllers: 4})
	defer d.Close()
	const (
		submitters = 8
		perSub     = 200
	)
	var wg sync.WaitGroup
	var retrieved atomic.Int64
	var failures atomic.Int64

	// One retriever drains completions concurrently with submissions.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			if r := d.RetrieveCompleted(); r != nil {
				if len(r.Dst) > 0 && r.Dst[0] != byte(r.Cookie) {
					failures.Add(1)
				}
				d.FreeRequest(r)
				retrieved.Add(1)
				continue
			}
			select {
			case <-stop:
				for {
					r := d.RetrieveCompleted()
					if r == nil {
						return
					}
					d.FreeRequest(r)
					retrieved.Add(1)
				}
			default:
				d.Poll(10 * time.Millisecond)
			}
		}
	}()

	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSub; i++ {
				cookie := uint64(s*perSub+i) % 251
				var r *Request
				for {
					r = d.AllocRequest()
					if r != nil {
						break
					}
					time.Sleep(time.Microsecond) // retriever frees slots
				}
				src := bytes.Repeat([]byte{byte(cookie)}, 512)
				r.Src, r.Dst = src, make([]byte, 512)
				r.Cookie = cookie
				if err := d.Submit(r); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	// Wait for the pipeline to drain.
	deadline := time.After(5 * time.Second)
	for d.Completed() < submitters*perSub {
		select {
		case <-deadline:
			t.Fatalf("only %d of %d completed", d.Completed(), submitters*perSub)
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	rwg.Wait()
	if got := retrieved.Load(); got != submitters*perSub {
		t.Errorf("retrieved %d, want %d", got, submitters*perSub)
	}
	if failures.Load() != 0 {
		t.Errorf("%d corrupted copies", failures.Load())
	}
	if d.BytesMoved() != int64(submitters*perSub*512) {
		t.Errorf("BytesMoved = %d", d.BytesMoved())
	}
}

func TestPollTimeout(t *testing.T) {
	d := Open(DefaultOptions())
	defer d.Close()
	start := time.Now()
	if d.Poll(20 * time.Millisecond) {
		t.Error("Poll reported ready on idle device")
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("Poll returned early")
	}
}

func TestSubmitAfterClose(t *testing.T) {
	d := Open(DefaultOptions())
	r := d.AllocRequest()
	r.Src, r.Dst = make([]byte, 8), make([]byte, 8)
	d.Close()
	if err := d.Submit(r); err != ErrClosed {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	// Poll on a closed idle device returns promptly.
	done := make(chan bool, 1)
	go func() { done <- d.Poll(0) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Error("Poll hung on closed device")
	}
}

func TestCloseWaitsForOutstanding(t *testing.T) {
	d := Open(Options{NumReqs: 64, Controllers: 1})
	const n = 32
	dsts := make([][]byte, n)
	src := bytes.Repeat([]byte{0xCC}, 1<<20)
	for i := 0; i < n; i++ {
		dsts[i] = make([]byte, 1<<20)
		r := d.AllocRequest()
		r.Src, r.Dst = src, dsts[i]
		if err := d.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	if got := d.Completed(); got != n {
		t.Fatalf("Close returned with %d of %d complete", got, n)
	}
	for i, dst := range dsts {
		if dst[0] != 0xCC || dst[len(dst)-1] != 0xCC {
			t.Fatalf("dst %d incomplete", i)
		}
	}
}

func TestDoubleCloseSafe(t *testing.T) {
	d := Open(DefaultOptions())
	d.Close()
	d.Close()
}

func TestAllocExhaustion(t *testing.T) {
	d := Open(Options{NumReqs: 4, Controllers: 1})
	defer d.Close()
	var rs []*Request
	for i := 0; i < 4; i++ {
		r := d.AllocRequest()
		if r == nil {
			t.Fatalf("alloc %d failed", i)
		}
		rs = append(rs, r)
	}
	if d.AllocRequest() != nil {
		t.Error("alloc beyond capacity succeeded")
	}
	d.FreeRequest(rs[0])
	if d.AllocRequest() == nil {
		t.Error("alloc after free failed")
	}
}

// drainOne blocks until one completion is retrieved.
func drainOne(t *testing.T, d *Device) *Request {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if r := d.RetrieveCompleted(); r != nil {
			return r
		}
		if time.Now().After(deadline) {
			t.Fatal("no completion within 5s")
		}
		d.Poll(100 * time.Millisecond)
	}
}

func TestChunkedCopyCorrectness(t *testing.T) {
	d := Open(Options{NumReqs: 16, Controllers: 4, ChunkBytes: 4096})
	defer d.Close()
	// An odd size forces a short tail chunk.
	size := 1<<20 + 12345
	src := make([]byte, size)
	rand.New(rand.NewSource(42)).Read(src)
	dst := make([]byte, size)
	r := d.AllocRequest()
	r.Src, r.Dst = src, dst
	if err := d.Submit(r); err != nil {
		t.Fatal(err)
	}
	got := drainOne(t, d)
	if got.Err != nil {
		t.Fatalf("Err = %v", got.Err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("chunked copy corrupted data")
	}
	st := d.Stats()
	wantChunks := int64((size + 4095) / 4096)
	if st.Chunks != wantChunks {
		t.Errorf("Chunks = %d, want %d", st.Chunks, wantChunks)
	}
	if st.BytesMoved != int64(size) {
		t.Errorf("BytesMoved = %d, want %d", st.BytesMoved, size)
	}
	d.FreeRequest(got)
}

func TestChunkingDisabled(t *testing.T) {
	d := Open(Options{NumReqs: 8, Controllers: 2, ChunkBytes: -1})
	defer d.Close()
	r := d.AllocRequest()
	r.Src, r.Dst = make([]byte, 4<<20), make([]byte, 4<<20)
	if err := d.Submit(r); err != nil {
		t.Fatal(err)
	}
	d.FreeRequest(drainOne(t, d))
	if st := d.Stats(); st.Chunks != 1 {
		t.Errorf("Chunks = %d with chunking disabled, want 1", st.Chunks)
	}
}

func TestCancelBeforeDispatch(t *testing.T) {
	// One controller, pinned down by a large copy, so the canceled
	// request is still queued when the cancel lands.
	d := Open(Options{NumReqs: 8, Controllers: 1, ChunkBytes: -1})
	defer d.Close()

	big := d.AllocRequest()
	big.Src, big.Dst = make([]byte, 32<<20), make([]byte, 32<<20)
	if err := d.Submit(big); err != nil {
		t.Fatal(err)
	}

	victim := d.AllocRequest()
	victim.Src = bytes.Repeat([]byte{0xAB}, 1<<16)
	victim.Dst = make([]byte, 1<<16)
	if err := d.Submit(victim); err != nil {
		t.Fatal(err)
	}
	canceled := d.Cancel(victim)

	var sawVictim bool
	for i := 0; i < 2; i++ {
		r := drainOne(t, d)
		if r == victim {
			sawVictim = true
			if canceled {
				if !errors.Is(r.Err, ErrCanceled) {
					t.Errorf("canceled request Err = %v, want ErrCanceled", r.Err)
				}
				if r.Dst[0] != 0 {
					t.Error("canceled-before-dispatch request copied bytes")
				}
			} else if r.Err != nil {
				t.Errorf("uncanceled request Err = %v", r.Err)
			}
		}
		d.FreeRequest(r)
	}
	if !sawVictim {
		t.Fatal("victim never completed")
	}
	if canceled {
		if st := d.Stats(); st.Canceled != 1 {
			t.Errorf("Stats.Canceled = %d, want 1", st.Canceled)
		}
	}
	// Cancel after completion must lose.
	if d.Cancel(victim) {
		t.Error("Cancel succeeded on a completed request")
	}
}

func TestDeadlineExpired(t *testing.T) {
	d := Open(Options{NumReqs: 8, Controllers: 2})
	defer d.Close()
	r := d.AllocRequest()
	r.Src = bytes.Repeat([]byte{1}, 4096)
	r.Dst = make([]byte, 4096)
	r.Deadline = time.Now().Add(-time.Millisecond) // already past
	if err := d.Submit(r); err != nil {
		t.Fatal(err)
	}
	got := drainOne(t, d)
	if !errors.Is(got.Err, ErrDeadline) {
		t.Fatalf("Err = %v, want ErrDeadline", got.Err)
	}
	if got.Dst[0] != 0 {
		t.Error("expired request copied bytes")
	}
	if st := d.Stats(); st.Expired != 1 {
		t.Errorf("Stats.Expired = %d, want 1", st.Expired)
	}
	d.FreeRequest(got)
}

func TestCloseDrain(t *testing.T) {
	d := Open(Options{NumReqs: 32, Controllers: 2})
	const n = 16
	src := bytes.Repeat([]byte{0xEE}, 1<<20)
	for i := 0; i < n; i++ {
		r := d.AllocRequest()
		r.Src, r.Dst = src, make([]byte, 1<<20)
		if err := d.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if !d.CloseDrain(5 * time.Second) {
		t.Error("CloseDrain did not drain in time")
	}
	if got := d.Completed(); got != n {
		t.Errorf("Completed = %d, want %d", got, n)
	}
	r := &Request{Src: make([]byte, 8), Dst: make([]byte, 8)}
	if err := d.Submit(r); err != ErrClosed {
		t.Errorf("Submit after CloseDrain = %v, want ErrClosed", err)
	}
}

// TestMultiPollerNoLostWakeup pins the intended Poll semantics: with N
// completions pending, N pollers must all return promptly — the single
// buffered notify token must be re-armed, not swallowed.
func TestMultiPollerNoLostWakeup(t *testing.T) {
	for round := 0; round < 20; round++ {
		d := Open(Options{NumReqs: 8, Controllers: 2})
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if r := d.RetrieveCompleted(); r != nil {
						d.FreeRequest(r)
						return
					}
					if !d.Poll(10 * time.Second) {
						t.Error("Poll timed out with completions pending")
						return
					}
				}
			}()
		}
		time.Sleep(time.Millisecond) // let both pollers go to sleep
		src := make([]byte, 64)
		for i := 0; i < 2; i++ {
			r := d.AllocRequest()
			r.Src, r.Dst = src, make([]byte, 64)
			if err := d.Submit(r); err != nil {
				t.Fatal(err)
			}
		}
		donec := make(chan struct{})
		go func() { wg.Wait(); close(donec) }()
		select {
		case <-donec:
		case <-time.After(3 * time.Second):
			t.Fatal("a poller hung past a retrievable completion")
		}
		d.Close()
	}
}

// TestSlabExhaustionNoLeak is the regression test for the silent
// request drop: under artificial slab starvation (a parasite queue
// holding most of the slack nodes), every accepted submission must
// still complete — possibly with ErrNoSlots — and every slot must
// remain allocatable afterwards. The pre-fix device lost indices when
// submission.Enqueue failed, leaking slots forever.
func TestSlabExhaustionNoLeak(t *testing.T) {
	d := Open(Options{NumReqs: 8, Controllers: 2, StagingShards: 1})
	defer d.Close()

	// With one staging shard the slab holds NumReqs+13 nodes; 4 device
	// dummies + 1 parasite dummy + 8 live indices leave 8 spare. Pin 6,
	// leaving 2 — enough that the device works, tight enough that
	// transient exhaustion is constant under concurrency.
	parasite := d.slab.NewQueue(rbq.Blue)
	for i := 0; i < 6; i++ {
		if _, ok := parasite.Enqueue(0); !ok {
			t.Fatalf("parasite enqueue %d failed at setup", i)
		}
	}

	const (
		submitters = 4
		perSub     = 200
	)
	var accepted, completed atomic.Int64
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			if r := d.RetrieveCompleted(); r != nil {
				completed.Add(1)
				d.FreeRequest(r)
				continue
			}
			select {
			case <-stop:
				for {
					r := d.RetrieveCompleted()
					if r == nil {
						return
					}
					completed.Add(1)
					d.FreeRequest(r)
				}
			default:
				d.Poll(time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	src := make([]byte, 64)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSub; i++ {
				var r *Request
				for r == nil {
					r = d.AllocRequest()
					if r == nil {
						time.Sleep(time.Microsecond)
					}
				}
				r.Src, r.Dst = src, make([]byte, 64)
				for {
					err := d.Submit(r)
					if err == nil {
						accepted.Add(1)
						break
					}
					if !errors.Is(err, ErrNoSlots) {
						t.Errorf("submit: %v", err)
						return
					}
					time.Sleep(time.Microsecond)
				}
			}
		}()
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for d.Completed() < accepted.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("completed %d of %d accepted submissions — indices were dropped",
				d.Completed(), accepted.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	rwg.Wait()
	if completed.Load() != accepted.Load() {
		t.Errorf("retrieved %d completions for %d accepted submissions",
			completed.Load(), accepted.Load())
	}

	// No slot may have leaked: all NumReqs must be allocatable.
	var rs []*Request
	for i := 0; i < 8; i++ {
		r := d.AllocRequest()
		if r == nil {
			t.Fatalf("slot leak: only %d of 8 slots allocatable after drain", i)
		}
		rs = append(rs, r)
	}
	for _, r := range rs {
		d.FreeRequest(r)
	}
}

func TestSubmitBatchBasic(t *testing.T) {
	d := Open(Options{NumReqs: 64, Controllers: 2})
	defer d.Close()
	const n = 32
	reqs := make([]*Request, n)
	srcs := make([][]byte, n)
	for i := range reqs {
		r := d.AllocRequest()
		if r == nil {
			t.Fatalf("alloc %d failed", i)
		}
		srcs[i] = bytes.Repeat([]byte{byte(i + 1)}, 2048)
		r.Src, r.Dst = srcs[i], make([]byte, 2048)
		r.Cookie = uint64(i)
		reqs[i] = r
	}
	if err := d.SubmitBatch(reqs); err != nil {
		t.Fatal(err)
	}
	got := drainAllReqs(t, d, n)
	for _, r := range got {
		if r.Err != nil {
			t.Errorf("request %d: err = %v", r.Cookie, r.Err)
		}
		if !bytes.Equal(r.Src, r.Dst) {
			t.Errorf("request %d: corrupt copy", r.Cookie)
		}
		d.FreeRequest(r)
	}
	st := d.Stats()
	if st.Batches != 1 {
		t.Errorf("Batches = %d, want 1", st.Batches)
	}
	// One quiet-device batch = one color observation = exactly one kick.
	if st.Kicks != 1 {
		t.Errorf("Kicks = %d for one batch on an idle device, want 1", st.Kicks)
	}
	if err := d.AuditSlots(nil); err != nil {
		t.Error(err)
	}
}

// drainAllReqs retrieves count completions via the batch retrieval API.
func drainAllReqs(t *testing.T, d *Device, count int) []*Request {
	t.Helper()
	var got []*Request
	buf := make([]*Request, 16)
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < count {
		if n := d.RetrieveCompletedBatch(buf); n > 0 {
			got = append(got, buf[:n]...)
			continue
		}
		if time.Now().After(deadline) {
			t.Fatalf("drained %d/%d completions before timeout", len(got), count)
		}
		d.Poll(10 * time.Millisecond)
	}
	return got
}

func TestSubmitBatchValidation(t *testing.T) {
	d := Open(Options{NumReqs: 8})
	defer d.Close()
	good := d.AllocRequest()
	good.Src, good.Dst = make([]byte, 8), make([]byte, 8)
	bad := d.AllocRequest()
	bad.Src, bad.Dst = make([]byte, 8), make([]byte, 4)
	err := d.SubmitBatch([]*Request{good, bad})
	if !errors.Is(err, ErrBadSizes) {
		t.Fatalf("err = %v, want ErrBadSizes", err)
	}
	// Nothing was submitted: no completion may ever arrive.
	if st := d.Stats(); st.Submitted != 0 {
		t.Errorf("Submitted = %d after rejected batch, want 0", st.Submitted)
	}
	if d.SubmitBatch(nil) != nil {
		t.Error("empty batch returned an error")
	}
}

func TestSubmitBatchAfterClose(t *testing.T) {
	d := Open(DefaultOptions())
	r := d.AllocRequest()
	r.Src, r.Dst = make([]byte, 8), make([]byte, 8)
	d.Close()
	if err := d.SubmitBatch([]*Request{r}); !errors.Is(err, ErrClosed) {
		t.Errorf("SubmitBatch after Close = %v, want ErrClosed", err)
	}
}

func TestRetrieveCompletedBatchPartial(t *testing.T) {
	d := Open(Options{NumReqs: 16})
	defer d.Close()
	const n = 5
	src := make([]byte, 64)
	for i := 0; i < n; i++ {
		r := d.AllocRequest()
		r.Src, r.Dst = src, make([]byte, 64)
		if err := d.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Completed() < n {
		if time.Now().After(deadline) {
			t.Fatal("pipeline did not drain")
		}
		d.Poll(10 * time.Millisecond)
	}
	// A buffer smaller than the backlog fills completely...
	buf := make([]*Request, 3)
	if got := d.RetrieveCompletedBatch(buf); got != 3 {
		t.Fatalf("first batch retrieve = %d, want 3", got)
	}
	for _, r := range buf {
		d.FreeRequest(r)
	}
	// ...and the rest comes on the next call, after which the queue is dry.
	if got := d.RetrieveCompletedBatch(buf); got != 2 {
		t.Fatalf("second batch retrieve = %d, want 2", got)
	}
	d.FreeRequest(buf[0])
	d.FreeRequest(buf[1])
	if got := d.RetrieveCompletedBatch(buf); got != 0 {
		t.Fatalf("empty batch retrieve = %d, want 0", got)
	}
}

// TestStagingShardsConcurrent runs the concurrent-submitter workout
// across explicit shard counts, batched and unbatched, asserting every
// payload lands intact — the sharded flush protocol must be
// indistinguishable from the single queue's semantics.
func TestStagingShardsConcurrent(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		for _, batch := range []int{1, 8} {
			t.Run(fmt.Sprintf("shards=%d/batch=%d", shards, batch), func(t *testing.T) {
				d := Open(Options{NumReqs: 256, Controllers: 2, StagingShards: shards})
				defer d.Close()
				const (
					submitters = 4
					perSub     = 96
				)
				var wg sync.WaitGroup
				var retrieved, corrupt atomic.Int64
				stop := make(chan struct{})
				var rwg sync.WaitGroup
				rwg.Add(1)
				go func() {
					defer rwg.Done()
					buf := make([]*Request, 32)
					for {
						n := d.RetrieveCompletedBatch(buf)
						for i := 0; i < n; i++ {
							r := buf[i]
							if r.Err != nil || len(r.Dst) == 0 || r.Dst[0] != byte(r.Cookie) {
								corrupt.Add(1)
							}
							d.FreeRequest(r)
							retrieved.Add(1)
						}
						if n > 0 {
							continue
						}
						select {
						case <-stop:
							if d.RetrieveCompletedBatch(buf) == 0 {
								return
							}
						default:
							d.Poll(time.Millisecond)
						}
					}
				}()
				for s := 0; s < submitters; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						pending := make([]*Request, 0, batch)
						for i := 0; i < perSub; i++ {
							cookie := uint64(s*perSub+i) % 251
							var r *Request
							for r == nil {
								if r = d.AllocRequest(); r == nil {
									time.Sleep(time.Microsecond)
								}
							}
							r.Src = bytes.Repeat([]byte{byte(cookie)}, 256)
							r.Dst = make([]byte, 256)
							r.Cookie = cookie
							pending = append(pending, r)
							if len(pending) == batch || i == perSub-1 {
								if err := d.SubmitBatch(pending); err != nil {
									t.Errorf("SubmitBatch: %v", err)
									return
								}
								pending = pending[:0]
							}
						}
					}(s)
				}
				wg.Wait()
				deadline := time.After(5 * time.Second)
				for d.Completed() < submitters*perSub {
					select {
					case <-deadline:
						t.Fatalf("only %d of %d completed", d.Completed(), submitters*perSub)
					case <-time.After(time.Millisecond):
					}
				}
				close(stop)
				rwg.Wait()
				if got := retrieved.Load(); got != submitters*perSub {
					t.Errorf("retrieved %d, want %d", got, submitters*perSub)
				}
				if corrupt.Load() != 0 {
					t.Errorf("%d corrupted copies", corrupt.Load())
				}
				if err := d.AuditSlots(nil); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestWorkStealingUnblocksStalledController pins the point of the
// per-controller rings: with one controller frozen mid-chunk, requests
// whose chunks landed in the frozen controller's ring must still
// complete — stolen by the other controller — where the old shared
// channel would simply have kept them waiting.
func TestWorkStealingUnblocksStalledController(t *testing.T) {
	stall := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(stall) })
	var stalled atomic.Bool
	opts := Options{
		NumReqs:     32,
		Controllers: 2,
		ChunkBytes:  -1,
		// Inline completion would have the worker copy these small
		// requests itself; this test is about the ring/steal path.
		QoS: QoSOptions{InlineThreshold: -1},
		Chaos: &ChaosHooks{
			BeforeChunkCopy: func(idx uint32, off, end int) {
				// Freeze exactly one controller: the first to take a chunk.
				if stalled.CompareAndSwap(false, true) {
					<-stall
				}
			},
		},
	}
	d := Open(opts)
	defer d.Close()

	const n = 16
	src := bytes.Repeat([]byte{0x5A}, 4096)
	reqs := make([]*Request, n)
	for i := range reqs {
		r := d.AllocRequest()
		r.Src, r.Dst = src, make([]byte, 4096)
		if err := d.Submit(r); err != nil {
			t.Fatal(err)
		}
		reqs[i] = r
	}
	// All but the frozen one must complete while the stall holds.
	deadline := time.Now().Add(5 * time.Second)
	for d.Completed() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d completed with one controller stalled — stealing failed",
				d.Completed(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	if st := d.Stats(); st.Steals == 0 {
		t.Error("no steals recorded while draining past a stalled controller")
	}
	once.Do(func() { close(stall) })
	for _, r := range drainAllReqs(t, d, n) {
		if r.Err != nil || !bytes.Equal(r.Src, r.Dst) {
			t.Errorf("request %d: err=%v corrupt=%v", r.idx, r.Err, !bytes.Equal(r.Src, r.Dst))
		}
		d.FreeRequest(r)
	}
	if err := d.AuditSlots(nil); err != nil {
		t.Error(err)
	}
}

// TestLegacyCopyQueueCorrectness keeps the ablation path honest: the
// shared-channel dispatch must still move bytes correctly.
func TestLegacyCopyQueueCorrectness(t *testing.T) {
	d := Open(Options{NumReqs: 16, Controllers: 4, ChunkBytes: 4096, LegacyCopyQueue: true})
	defer d.Close()
	size := 1<<19 + 777
	src := make([]byte, size)
	rand.New(rand.NewSource(7)).Read(src)
	r := d.AllocRequest()
	r.Src, r.Dst = src, make([]byte, size)
	if err := d.Submit(r); err != nil {
		t.Fatal(err)
	}
	got := drainOne(t, d)
	if got.Err != nil || !bytes.Equal(got.Src, got.Dst) {
		t.Fatalf("legacy path corrupt: err=%v", got.Err)
	}
	if st := d.Stats(); st.Steals != 0 {
		t.Errorf("Steals = %d on the legacy path, want 0", st.Steals)
	}
	d.FreeRequest(got)
}

func TestStatsSnapshotAndTrace(t *testing.T) {
	d := Open(Options{NumReqs: 16, Controllers: 2, ChunkBytes: 4096, TraceDepth: 64})
	const n = 10
	src := bytes.Repeat([]byte{3}, 16384)
	for i := 0; i < n; i++ {
		r := d.AllocRequest()
		r.Src, r.Dst = src, make([]byte, 16384)
		if err := d.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		d.FreeRequest(drainOne(t, d))
	}
	st := d.Stats()
	if st.Submitted != n || st.Completed != n {
		t.Errorf("Submitted/Completed = %d/%d, want %d/%d", st.Submitted, st.Completed, n, n)
	}
	if st.BytesMoved != n*16384 {
		t.Errorf("BytesMoved = %d", st.BytesMoved)
	}
	if st.Chunks != n*4 {
		t.Errorf("Chunks = %d, want %d", st.Chunks, n*4)
	}
	if st.Latency.Count != n {
		t.Errorf("Latency.Count = %d, want %d", st.Latency.Count, n)
	}
	if st.Sizes.Count != n || st.Sizes.Sum != n*16384 {
		t.Errorf("Sizes = n%d sum%d", st.Sizes.Count, st.Sizes.Sum)
	}
	if len(st.Trace) == 0 {
		t.Error("TraceDepth set but no events captured")
	}
	var kinds [8]bool
	for _, e := range st.Trace {
		if e.Kind < 8 {
			kinds[e.Kind] = true
		}
	}
	for _, k := range []uint32{EvDispatch, EvChunk, EvComplete} {
		if !kinds[k] {
			t.Errorf("no %s events in trace", EventName(k))
		}
	}
	d.Close()
}
