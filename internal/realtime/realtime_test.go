package realtime

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBasicCopy(t *testing.T) {
	d := Open(DefaultOptions())
	defer d.Close()

	src := bytes.Repeat([]byte{7}, 1<<16)
	dst := make([]byte, 1<<16)
	r := d.AllocRequest()
	if r == nil {
		t.Fatal("AllocRequest failed")
	}
	r.Src, r.Dst = src, dst
	if err := d.Submit(r); err != nil {
		t.Fatal(err)
	}
	if !d.Poll(time.Second) {
		t.Fatal("Poll timed out")
	}
	got := d.RetrieveCompleted()
	if got != r {
		t.Fatalf("retrieved %v, want %v", got, r)
	}
	if !bytes.Equal(dst, src) {
		t.Error("copy corrupted data")
	}
	if got.Latency() <= 0 {
		t.Errorf("latency = %v", got.Latency())
	}
	d.FreeRequest(got)
}

func TestSizeMismatchRejected(t *testing.T) {
	d := Open(DefaultOptions())
	defer d.Close()
	r := d.AllocRequest()
	r.Src, r.Dst = make([]byte, 10), make([]byte, 20)
	if err := d.Submit(r); err == nil {
		t.Error("mismatched sizes accepted")
	}
}

func TestBurstSingleKick(t *testing.T) {
	d := Open(DefaultOptions())
	defer d.Close()
	const n = 50
	src := make([]byte, 4096)
	for i := 0; i < n; i++ {
		r := d.AllocRequest()
		r.Src, r.Dst = src, make([]byte, 4096)
		r.Cookie = uint64(i)
		if err := d.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	seen := make([]bool, n)
	for done := 0; done < n; {
		if r := d.RetrieveCompleted(); r != nil {
			if seen[r.Cookie] {
				t.Fatalf("cookie %d completed twice", r.Cookie)
			}
			seen[r.Cookie] = true
			d.FreeRequest(r)
			done++
			continue
		}
		if !d.Poll(time.Second) {
			t.Fatal("Poll timed out")
		}
	}
	// A tight burst needs only a few kicks — usually one, the paper's
	// headline property. Allow scheduler slack but demand amortization.
	if k := d.Kicks(); k > n/4 {
		t.Errorf("kicks = %d for a %d-request burst", k, n)
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	d := Open(Options{NumReqs: 512, Controllers: 4})
	defer d.Close()
	const (
		submitters = 8
		perSub     = 200
	)
	var wg sync.WaitGroup
	var retrieved atomic.Int64
	var failures atomic.Int64

	// One retriever drains completions concurrently with submissions.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			if r := d.RetrieveCompleted(); r != nil {
				if len(r.Dst) > 0 && r.Dst[0] != byte(r.Cookie) {
					failures.Add(1)
				}
				d.FreeRequest(r)
				retrieved.Add(1)
				continue
			}
			select {
			case <-stop:
				for {
					r := d.RetrieveCompleted()
					if r == nil {
						return
					}
					d.FreeRequest(r)
					retrieved.Add(1)
				}
			default:
				d.Poll(10 * time.Millisecond)
			}
		}
	}()

	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSub; i++ {
				cookie := uint64(s*perSub+i) % 251
				var r *Request
				for {
					r = d.AllocRequest()
					if r != nil {
						break
					}
					time.Sleep(time.Microsecond) // retriever frees slots
				}
				src := bytes.Repeat([]byte{byte(cookie)}, 512)
				r.Src, r.Dst = src, make([]byte, 512)
				r.Cookie = cookie
				if err := d.Submit(r); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	// Wait for the pipeline to drain.
	deadline := time.After(5 * time.Second)
	for d.Completed() < submitters*perSub {
		select {
		case <-deadline:
			t.Fatalf("only %d of %d completed", d.Completed(), submitters*perSub)
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	rwg.Wait()
	if got := retrieved.Load(); got != submitters*perSub {
		t.Errorf("retrieved %d, want %d", got, submitters*perSub)
	}
	if failures.Load() != 0 {
		t.Errorf("%d corrupted copies", failures.Load())
	}
	if d.BytesMoved() != int64(submitters*perSub*512) {
		t.Errorf("BytesMoved = %d", d.BytesMoved())
	}
}

func TestPollTimeout(t *testing.T) {
	d := Open(DefaultOptions())
	defer d.Close()
	start := time.Now()
	if d.Poll(20 * time.Millisecond) {
		t.Error("Poll reported ready on idle device")
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("Poll returned early")
	}
}

func TestSubmitAfterClose(t *testing.T) {
	d := Open(DefaultOptions())
	r := d.AllocRequest()
	r.Src, r.Dst = make([]byte, 8), make([]byte, 8)
	d.Close()
	if err := d.Submit(r); err != ErrClosed {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	// Poll on a closed idle device returns promptly.
	done := make(chan bool, 1)
	go func() { done <- d.Poll(0) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Error("Poll hung on closed device")
	}
}

func TestCloseWaitsForOutstanding(t *testing.T) {
	d := Open(Options{NumReqs: 64, Controllers: 1})
	const n = 32
	dsts := make([][]byte, n)
	src := bytes.Repeat([]byte{0xCC}, 1<<20)
	for i := 0; i < n; i++ {
		dsts[i] = make([]byte, 1<<20)
		r := d.AllocRequest()
		r.Src, r.Dst = src, dsts[i]
		if err := d.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	if got := d.Completed(); got != n {
		t.Fatalf("Close returned with %d of %d complete", got, n)
	}
	for i, dst := range dsts {
		if dst[0] != 0xCC || dst[len(dst)-1] != 0xCC {
			t.Fatalf("dst %d incomplete", i)
		}
	}
}

func TestDoubleCloseSafe(t *testing.T) {
	d := Open(DefaultOptions())
	d.Close()
	d.Close()
}

func TestAllocExhaustion(t *testing.T) {
	d := Open(Options{NumReqs: 4, Controllers: 1})
	defer d.Close()
	var rs []*Request
	for i := 0; i < 4; i++ {
		r := d.AllocRequest()
		if r == nil {
			t.Fatalf("alloc %d failed", i)
		}
		rs = append(rs, r)
	}
	if d.AllocRequest() != nil {
		t.Error("alloc beyond capacity succeeded")
	}
	d.FreeRequest(rs[0])
	if d.AllocRequest() == nil {
		t.Error("alloc after free failed")
	}
}
