package realtime

import (
	"errors"
	"testing"
)

// FuzzTenantConfigValidate drives TenantConfig.Validate with arbitrary
// configs. Validate is the gate between user input and the /metrics
// label namespace plus the scheduler's quantum arithmetic, so the fuzz
// properties are its contract: it never panics, every rejection matches
// ErrBadTenant, and every accepted config satisfies the invariants the
// rest of the device assumes (label-safe name, bounded weight, positive
// quota).
func FuzzTenantConfigValidate(f *testing.F) {
	f.Add("tenant-a", 1, 64)
	f.Add("", 0, 0)
	f.Add("has\"quote", 4, 8)
	f.Add("back\\slash", 4, 8)
	f.Add("newline\nname", 1, 1)
	f.Add("okname", -1, 16)
	f.Add("okname", MaxTenantWeight+1, 16)
	f.Add("\xff\xfe", 2, 2)
	f.Fuzz(func(t *testing.T, name string, weight, quota int) {
		cfg := TenantConfig{Name: name, Weight: weight, SlotQuota: quota}
		err := cfg.Validate()
		if err != nil {
			if !errors.Is(err, ErrBadTenant) {
				t.Fatalf("Validate(%+v) = %v, not ErrBadTenant", cfg, err)
			}
			return
		}
		if name == "" || len(name) > maxTenantNameLen {
			t.Fatalf("accepted name %q of length %d", name, len(name))
		}
		for i := 0; i < len(name); i++ {
			b := name[i]
			if b < 0x20 || b > 0x7e || b == '"' || b == '\\' {
				t.Fatalf("accepted name %q with label-unsafe byte 0x%02x at %d", name, b, i)
			}
		}
		if weight < 0 || weight > MaxTenantWeight {
			t.Fatalf("accepted weight %d outside [0, %d]", weight, MaxTenantWeight)
		}
		if quota <= 0 {
			t.Fatalf("accepted non-positive slot quota %d", quota)
		}
	})
}
