package realtime

// Busy-poll worker mode and per-core completion-ring coverage: the
// submit fast path with a spinning worker (no kicks, no wakes), the
// spin→park fallback once the idle budget is exhausted, the
// Poll/PollContext spin-before-sleep micro-wait, round-robin completion
// routing across rings, and DRR fairness with the spinning worker in
// place of park/wake.

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// TestBusyPollNoWorkerWakesOrKicks is the tentpole regression: with the
// worker spinning, the staging shards stay red, so steady-state
// submitters never flush and never kick, and the worker never parks or
// wakes. The kick/wake counters must be flat across hundreds of
// submit→retrieve cycles.
func TestBusyPollNoWorkerWakesOrKicks(t *testing.T) {
	d := Open(Options{
		NumReqs:       16,
		StagingShards: 1,
		BusyPoll:      true,
		BusyPollIdle:  time.Hour, // never exhaust the budget in-test
	})
	defer d.Close()

	src := bytes.Repeat([]byte{3}, 4<<10)
	dst := make([]byte, len(src))
	cycle := func() {
		r := d.AllocRequest()
		if r == nil {
			t.Fatal("alloc failed")
		}
		r.Src, r.Dst = src, dst
		if err := d.Submit(r); err != nil {
			t.Fatal(err)
		}
		if !d.Poll(time.Second) {
			t.Fatal("Poll timed out")
		}
		got := d.RetrieveCompleted()
		if got == nil {
			t.Fatal("no completion after Poll")
		}
		d.FreeRequest(got)
	}

	// Warm-up: the first submit may still observe the shard blue from
	// Open and pay one flush+kick before the spinning worker takes over.
	cycle()

	before := d.Stats()
	const n = 200
	for i := 0; i < n; i++ {
		cycle()
	}
	after := d.Stats()

	if dk := after.Kicks - before.Kicks; dk != 0 {
		t.Errorf("kicks delta = %d over %d busy-poll cycles, want 0", dk, n)
	}
	if dw := after.WorkerWakes - before.WorkerWakes; dw != 0 {
		t.Errorf("worker wakes delta = %d over %d busy-poll cycles, want 0", dw, n)
	}
	if after.BusyPollSpins == 0 {
		t.Error("BusyPollSpins = 0 with BusyPoll enabled")
	}
	if after.BusyPollParks != 0 {
		t.Errorf("BusyPollParks = %d with an hour-long idle budget, want 0", after.BusyPollParks)
	}
	if after.Completed != before.Completed+n {
		t.Errorf("completed delta = %d, want %d", after.Completed-before.Completed, n)
	}
}

// TestBusyPollIdleFallbackParks drives the spin budget to exhaustion:
// an idle busy-polling worker must recolor, park (BusyPollParks > 0)
// and remain wakeable — the next submit kicks it exactly as in
// park/wake mode, with no lost token and no lost request.
func TestBusyPollIdleFallbackParks(t *testing.T) {
	d := Open(Options{
		NumReqs:       16,
		StagingShards: 1,
		BusyPoll:      true,
		BusyPollIdle:  100 * time.Microsecond,
	})
	defer d.Close()

	src := bytes.Repeat([]byte{5}, 1<<10)
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().BusyPollParks == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never exhausted a 100µs idle budget; stats=%+v", d.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// The worker is parked (or about to be): the submit path must still
	// deliver — blue shard, flush, kick, wake — and complete.
	wakesBefore := d.Stats().WorkerWakes
	r := d.AllocRequest()
	r.Src, r.Dst = src, make([]byte, len(src))
	if err := d.Submit(r); err != nil {
		t.Fatal(err)
	}
	if !d.Poll(time.Second) {
		t.Fatal("Poll timed out after busy-poll park")
	}
	got := d.RetrieveCompleted()
	if got != r || got.Err != nil {
		t.Fatalf("retrieve after park: got %v err %v", got, got.Err)
	}
	if !bytes.Equal(r.Src, r.Dst) {
		t.Error("payload corrupt across park/wake fallback")
	}
	d.FreeRequest(got)
	// The wake may have been consumed by a pre-park refill check rather
	// than an actual park/wake cycle, so only sanity-bound it.
	if dw := d.Stats().WorkerWakes - wakesBefore; dw > 2 {
		t.Errorf("worker wakes delta = %d for one submit, want <= 2", dw)
	}
}

// TestPollMicroWaitSpins pins the Poll spin-before-sleep micro-wait:
// with a busy-polling worker and a few-microsecond copy delay, a
// high-rate poller must resolve at least some waits inside the spin
// budget (PollerSpins > 0) without a single worker sleep/wake cycle
// (WorkerWakes delta == 0).
func TestPollMicroWaitSpins(t *testing.T) {
	d := Open(Options{
		NumReqs:       16,
		StagingShards: 1,
		Controllers:   1,
		BusyPoll:      true,
		BusyPollIdle:  time.Hour,
		QoS:           QoSOptions{InlineThreshold: -1}, // force the controller path
		Chaos: &ChaosHooks{
			BeforeChunkCopy: func(idx uint32, off, end int) { time.Sleep(5 * time.Microsecond) },
		},
	})
	defer d.Close()

	src := bytes.Repeat([]byte{9}, 1<<10)
	dst := make([]byte, len(src))
	warm := d.AllocRequest()
	warm.Src, warm.Dst = src, dst
	if err := d.Submit(warm); err != nil {
		t.Fatal(err)
	}
	if !d.Poll(time.Second) {
		t.Fatal("warm-up Poll timed out")
	}
	d.FreeRequest(d.RetrieveCompleted())

	before := d.Stats()
	const n = 300
	for i := 0; i < n; i++ {
		r := d.AllocRequest()
		r.Src, r.Dst = src, dst
		if err := d.Submit(r); err != nil {
			t.Fatal(err)
		}
		if !d.Poll(time.Second) {
			t.Fatal("Poll timed out")
		}
		got := d.RetrieveCompleted()
		if got == nil {
			t.Fatal("no completion after Poll")
		}
		d.FreeRequest(got)
	}
	after := d.Stats()

	if ds := after.PollerSpins - before.PollerSpins; ds == 0 {
		t.Errorf("PollerSpins delta = 0 over %d submit+Poll cycles, want > 0 (micro-wait regressed)", n)
	}
	if dw := after.WorkerWakes - before.WorkerWakes; dw != 0 {
		t.Errorf("worker wakes delta = %d, want 0", dw)
	}
}

// TestPollTimeoutParks: with nothing in flight, a bounded Poll must
// take the sleeping slow path (PollerParks) after the spin budget
// misses, and still return false.
func TestPollTimeoutParks(t *testing.T) {
	d := Open(Options{NumReqs: 8})
	defer d.Close()
	before := d.Stats().PollerParks
	if d.Poll(5 * time.Millisecond) {
		t.Error("Poll reported a completion on an idle device")
	}
	if dp := d.Stats().PollerParks - before; dp == 0 {
		t.Error("PollerParks delta = 0 for a timed-out Poll, want >= 1")
	}
}

// TestCompletionRingsRoundRobin checks the idx%N completion routing:
// with 4 rings and every one of 32 slots completed-but-unretrieved,
// each ring must hold exactly its 8 residue-class slots, the summed
// depth must match, and a batched drain must recover every index with
// a clean audit.
func TestCompletionRingsRoundRobin(t *testing.T) {
	const nReqs = 32
	d := Open(Options{
		NumReqs:         nReqs,
		Controllers:     2,
		CompletionRings: 4,
	})
	defer d.Close()

	src := bytes.Repeat([]byte{11}, 1<<10)
	for i := 0; i < nReqs; i++ {
		r := d.AllocRequest()
		if r == nil {
			t.Fatalf("alloc %d failed", i)
		}
		r.Src, r.Dst = src, make([]byte, len(src))
		if err := d.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().Completed < nReqs {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d completed before timeout", d.Stats().Completed, nReqs)
		}
		time.Sleep(time.Millisecond)
	}

	st := d.Stats()
	if len(st.CompletionDepths) != 4 {
		t.Fatalf("len(CompletionDepths) = %d, want 4", len(st.CompletionDepths))
	}
	var sum int64
	for i, depth := range st.CompletionDepths {
		sum += depth
		if depth != nReqs/4 {
			t.Errorf("ring %d depth = %d, want %d (idx%%4 routing)", i, depth, nReqs/4)
		}
	}
	if sum != st.CompletionDepth || sum != nReqs {
		t.Errorf("depth sum = %d, CompletionDepth = %d, want both %d", sum, st.CompletionDepth, nReqs)
	}

	buf := make([]*Request, nReqs)
	n := d.RetrieveCompletedBatch(buf)
	if n != nReqs {
		t.Fatalf("RetrieveCompletedBatch = %d, want %d", n, nReqs)
	}
	held := make([]uint32, 0, n)
	seen := map[uint32]bool{}
	for _, r := range buf[:n] {
		if seen[r.idx] {
			t.Errorf("slot %d retrieved twice", r.idx)
		}
		seen[r.idx] = true
		held = append(held, r.idx)
	}
	if err := d.AuditSlots(held); err != nil {
		t.Error(err)
	}
	if st := d.Stats(); st.DoubleCompletes != 0 {
		t.Errorf("DoubleCompletes = %d, want 0", st.DoubleCompletes)
	}
}

// TestBusyPollTenantFairness is the DRR smoke under busy-poll: the
// spinning worker runs the identical tenant scheduler, so two
// backlogged tenants at weights 4:1 must still complete work in
// roughly that ratio.
func TestBusyPollTenantFairness(t *testing.T) {
	d := Open(Options{
		NumReqs:     256,
		Controllers: 1,
		BusyPoll:    true,
		QoS:         QoSOptions{InlineThreshold: -1},
		Chaos: &ChaosHooks{
			BeforeChunkCopy: func(idx uint32, off, end int) { time.Sleep(10 * time.Microsecond) },
		},
	})
	defer d.Close()
	heavy, err := d.OpenTenant(TenantConfig{Name: "heavy", Weight: 4, SlotQuota: 96})
	if err != nil {
		t.Fatal(err)
	}
	light, err := d.OpenTenant(TenantConfig{Name: "light", Weight: 1, SlotQuota: 96})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if r := d.RetrieveCompleted(); r != nil {
				d.FreeRequest(r)
				continue
			}
			select {
			case <-stop:
				return
			default:
				d.Poll(time.Millisecond)
			}
		}
	}()
	runner := func(ten *Tenant) {
		defer wg.Done()
		src := bytes.Repeat([]byte{7}, 4<<10)
		dst := make([]byte, len(src))
		for {
			select {
			case <-stop:
				return
			default:
			}
			r := d.AllocRequest()
			if r == nil {
				time.Sleep(50 * time.Microsecond)
				continue
			}
			r.Src, r.Dst = src, dst
			if err := ten.Submit(r); err != nil {
				d.FreeRequest(r)
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
	wg.Add(2)
	go runner(heavy)
	go runner(light)

	time.Sleep(50 * time.Millisecond)
	h0, l0 := heavy.Stats().Completed, light.Stats().Completed
	time.Sleep(300 * time.Millisecond)
	h1, l1 := heavy.Stats().Completed, light.Stats().Completed
	close(stop)
	wg.Wait()

	dh, dl := h1-h0, l1-l0
	if dl == 0 || dh == 0 {
		t.Fatalf("no progress in window: heavy=%d light=%d", dh, dl)
	}
	ratio := float64(dh) / float64(dl)
	if ratio < 2.0 || ratio > 8.0 {
		t.Errorf("busy-poll weighted ratio = %.2f (heavy %d, light %d), want ~4 (accept [2, 8])", ratio, dh, dl)
	}
}
