package realtime

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"memif/internal/rbq"
)

func TestTenantConfigValidate(t *testing.T) {
	bad := []TenantConfig{
		{Name: "", SlotQuota: 4},
		{Name: strings.Repeat("x", maxTenantNameLen+1), SlotQuota: 4},
		{Name: "has\"quote", SlotQuota: 4},
		{Name: "has\\slash", SlotQuota: 4},
		{Name: "ctrl\x01char", SlotQuota: 4},
		{Name: "nonascii\xff", SlotQuota: 4},
		{Name: "w", Weight: -1, SlotQuota: 4},
		{Name: "w", Weight: MaxTenantWeight + 1, SlotQuota: 4},
		{Name: "q", SlotQuota: 0},
		{Name: "q", SlotQuota: -3},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); !errors.Is(err, ErrBadTenant) {
			t.Errorf("config %d (%+v): err = %v, want ErrBadTenant", i, cfg, err)
		}
	}
	good := []TenantConfig{
		{Name: "a", SlotQuota: 1},
		{Name: strings.Repeat("y", maxTenantNameLen), Weight: MaxTenantWeight, SlotQuota: 1 << 20},
		{Name: "spaces and. punct_ok-2", Weight: 7, SlotQuota: 3},
	}
	for i, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("config %d (%+v): unexpected error %v", i, cfg, err)
		}
	}
}

func TestOpenTenantDuplicateAndClamp(t *testing.T) {
	d := Open(Options{NumReqs: 16})
	defer d.Close()

	a, err := d.OpenTenant(TenantConfig{Name: "a", Weight: 3, SlotQuota: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != 1 || a.Name() != "a" || a.Device() != d {
		t.Errorf("handle = id %d name %q, want 1 %q", a.ID(), a.Name(), "a")
	}
	st := a.Stats()
	if st.SlotQuota != 16 {
		t.Errorf("SlotQuota = %d, want clamped to NumReqs 16", st.SlotQuota)
	}
	if st.Weight != 3 {
		t.Errorf("Weight = %d, want 3", st.Weight)
	}
	if _, err := d.OpenTenant(TenantConfig{Name: "a", SlotQuota: 4}); !errors.Is(err, ErrTenantExists) || !errors.Is(err, ErrBadTenant) {
		t.Errorf("duplicate name: err = %v, want ErrTenantExists (and ErrBadTenant)", err)
	}
	if _, err := d.OpenTenant(TenantConfig{Name: defaultTenantName, SlotQuota: 4}); !errors.Is(err, ErrTenantExists) {
		t.Errorf("shadowing the default namespace: err = %v, want ErrTenantExists", err)
	}
	b, err := d.OpenTenant(TenantConfig{Name: "b", SlotQuota: 4})
	if err != nil {
		t.Fatal(err)
	}
	if b.ID() != 2 {
		t.Errorf("second tenant id = %d, want 2", b.ID())
	}
	stats := d.Stats()
	if len(stats.Tenants) != 3 {
		t.Fatalf("Stats().Tenants has %d entries, want 3 (default + 2)", len(stats.Tenants))
	}
	if stats.Tenants[0].Name != defaultTenantName || stats.Tenants[1].Name != "a" || stats.Tenants[2].Name != "b" {
		t.Errorf("tenant names = %q %q %q", stats.Tenants[0].Name, stats.Tenants[1].Name, stats.Tenants[2].Name)
	}
}

// TestTenantQuotaAdmissionIsolated freezes the pipeline and fills tenant
// A to its quota: A's next submit is shed with the tenant named in the
// typed error, while tenant B and the untenanted default path admit
// normally — one tenant's overload sheds only its own requests.
func TestTenantQuotaAdmissionIsolated(t *testing.T) {
	stall := make(chan struct{})
	var once sync.Once
	d := Open(Options{
		NumReqs:     32,
		Controllers: 1,
		QoS:         QoSOptions{InlineThreshold: -1}, // keep copies off the worker
		Chaos: &ChaosHooks{
			BeforeChunkCopy: func(idx uint32, off, end int) { <-stall },
		},
	})
	defer d.Close()
	defer once.Do(func() { close(stall) })

	a, err := d.OpenTenant(TenantConfig{Name: "A", SlotQuota: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.OpenTenant(TenantConfig{Name: "B", SlotQuota: 8})
	if err != nil {
		t.Fatal(err)
	}

	submit := func(ten *Tenant) error {
		r := d.AllocRequest()
		if r == nil {
			t.Fatal("alloc failed")
		}
		r.Src, r.Dst = []byte{1, 2, 3, 4}, make([]byte, 4)
		if ten != nil {
			return ten.Submit(r)
		}
		return d.Submit(r)
	}

	const quota = 4
	for i := 0; i < quota; i++ {
		if err := submit(a); err != nil {
			t.Fatalf("A submit %d within quota: %v", i, err)
		}
	}
	err = submit(a)
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("A submit past quota: err = %v, want ErrOverload", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Tenant != "A" {
		t.Errorf("shed error %v does not name tenant A", err)
	}
	// A is saturated; B and the default namespace must be unaffected.
	for i := 0; i < 4; i++ {
		if err := submit(b); err != nil {
			t.Errorf("B submit %d while A overloaded: %v", i, err)
		}
		if err := submit(nil); err != nil {
			t.Errorf("default submit %d while A overloaded: %v", i, err)
		}
	}
	if st := a.Stats(); st.Shed != 1 || st.InFlight != quota {
		t.Errorf("A stats: shed=%d inFlight=%d, want 1 and %d", st.Shed, st.InFlight, quota)
	}
	if st := b.Stats(); st.Shed != 0 {
		t.Errorf("B shed = %d, want 0", st.Shed)
	}

	once.Do(func() { close(stall) })
	got := drainAll(t, d, quota+8)
	for _, r := range got {
		if r.Err != nil {
			t.Errorf("request %d: %v, want clean completion", r.idx, r.Err)
		}
		d.FreeRequest(r)
	}
	if st := a.Stats(); st.Completed != quota || st.InFlight != 0 || st.Latency.Count != quota {
		t.Errorf("A after drain: completed=%d inFlight=%d latencyCount=%d", st.Completed, st.InFlight, st.Latency.Count)
	}
	if st := b.Stats(); st.Completed != 4 || st.InFlight != 0 {
		t.Errorf("B after drain: completed=%d inFlight=%d", st.Completed, st.InFlight)
	}
}

// TestTenantSchedWeightedOrder drives the DRR scheduler directly: with
// two backlogged tenants at weights 3 and 1 the pop sequence must grant
// three consecutive slots to the heavy tenant per round, and total
// service must match the 3:1 ratio.
func TestTenantSchedWeightedOrder(t *testing.T) {
	slab := rbq.NewSlab(64)
	q := slab.NewQueue(rbq.Blue)
	owner := map[uint32]uint32{}
	weights := map[uint32]int64{1: 3, 2: 1}
	s := newTenantSched([]*rbq.Queue{q},
		func(idx uint32) uint32 { return owner[idx] },
		func(ten uint32) int64 { return weights[ten] },
		16)

	// Interleave enqueues: 12 for tenant 1, 12 for tenant 2.
	idx := uint32(0)
	for i := 0; i < 12; i++ {
		for ten := uint32(1); ten <= 2; ten++ {
			owner[idx] = ten
			if _, ok := q.Enqueue(idx); !ok {
				t.Fatal("enqueue failed")
			}
			idx++
		}
	}
	var order []uint32
	for {
		_, ten, aged, ok := s.pop()
		if !ok {
			break
		}
		if aged {
			t.Error("aged pop with a single class")
		}
		order = append(order, ten)
	}
	if len(order) != 24 {
		t.Fatalf("popped %d requests, want 24", len(order))
	}
	// While both tenants are backlogged (first 16 pops), service comes in
	// 3:1 quanta.
	want := []uint32{1, 1, 1, 2, 1, 1, 1, 2, 1, 1, 1, 2, 1, 1, 1, 2}
	for i, ten := range want {
		if order[i] != ten {
			t.Fatalf("pop %d served tenant %d, want %d (order %v)", i, order[i], ten, order)
		}
	}
	if s.queuedTotal() != 0 {
		t.Errorf("queuedTotal = %d after drain, want 0", s.queuedTotal())
	}
}

// TestTenantSchedNoBanking checks that an idle tenant does not
// accumulate deficit: after its bucket empties and it re-activates, it
// is served from a fresh quantum at the tail of the round.
func TestTenantSchedNoBanking(t *testing.T) {
	slab := rbq.NewSlab(64)
	q := slab.NewQueue(rbq.Blue)
	owner := map[uint32]uint32{}
	s := newTenantSched([]*rbq.Queue{q},
		func(idx uint32) uint32 { return owner[idx] },
		func(ten uint32) int64 { return 8 }, // big quantum for everyone
		16)
	enq := func(ten uint32, n int, base uint32) {
		for i := 0; i < n; i++ {
			owner[base+uint32(i)] = ten
			if _, ok := q.Enqueue(base + uint32(i)); !ok {
				t.Fatal("enqueue failed")
			}
		}
	}
	// Tenant 1 has one request: it is served, empties, deficit resets.
	enq(1, 1, 0)
	if _, ten, _, ok := s.pop(); !ok || ten != 1 {
		t.Fatalf("first pop = tenant %d ok=%v", ten, ok)
	}
	// Now 1 re-activates behind 2; with weight 8 each and both
	// backlogged, 2 (activated first) is served its full quantum before 1
	// sees service — 1's earlier idle round banked nothing.
	enq(2, 8, 100)
	enq(1, 8, 200)
	var order []uint32
	for i := 0; i < 16; i++ {
		_, ten, _, ok := s.pop()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		order = append(order, ten)
	}
	for i := 0; i < 8; i++ {
		if order[i] != 2 {
			t.Fatalf("pop %d served tenant %d, want 2 (order %v)", i, order[i], order)
		}
	}
	for i := 8; i < 16; i++ {
		if order[i] != 1 {
			t.Fatalf("pop %d served tenant %d, want 1 (order %v)", i, order[i], order)
		}
	}
}

// TestTenantCancelAllIsolation freezes the controllers with both
// tenants' requests mid-pipeline, mass-cancels tenant A, and asserts
// the storm claimed every pending A request and nothing of B's.
func TestTenantCancelAllIsolation(t *testing.T) {
	stall := make(chan struct{})
	var once sync.Once
	d := Open(Options{
		NumReqs:     32,
		Controllers: 2,
		ChunkBytes:  1 << 10,
		QoS:         QoSOptions{InlineThreshold: -1},
		Chaos: &ChaosHooks{
			BeforeChunkCopy: func(idx uint32, off, end int) { <-stall },
		},
	})
	defer d.Close()
	defer once.Do(func() { close(stall) })

	a, err := d.OpenTenant(TenantConfig{Name: "A", SlotQuota: 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.OpenTenant(TenantConfig{Name: "B", SlotQuota: 16})
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	var aReqs, bReqs []*Request
	for i := 0; i < n; i++ {
		ra := d.AllocRequest()
		ra.Src, ra.Dst = bytes.Repeat([]byte{byte(i + 1)}, 4<<10), make([]byte, 4<<10)
		if err := a.Submit(ra); err != nil {
			t.Fatalf("A submit %d: %v", i, err)
		}
		aReqs = append(aReqs, ra)
		rb := d.AllocRequest()
		rb.Src, rb.Dst = bytes.Repeat([]byte{byte(i + 0x80)}, 4<<10), make([]byte, 4<<10)
		if err := b.Submit(rb); err != nil {
			t.Fatalf("B submit %d: %v", i, err)
		}
		bReqs = append(bReqs, rb)
	}

	won := a.CancelAll()
	if won == 0 {
		t.Error("CancelAll claimed nothing with pending requests frozen in the pipeline")
	}
	once.Do(func() { close(stall) })

	got := drainAll(t, d, 2*n)
	var aCanceled int
	for _, r := range got {
		d.FreeRequest(r)
	}
	for i, r := range aReqs {
		switch {
		case errors.Is(r.Err, ErrCanceled):
			aCanceled++
		case r.Err == nil:
			if !bytes.Equal(r.Src, r.Dst) {
				t.Errorf("A request %d: clean completion with corrupt payload", i)
			}
		default:
			t.Errorf("A request %d: unexpected error %v", i, r.Err)
		}
	}
	if aCanceled != won {
		t.Errorf("A: %d ErrCanceled completions, CancelAll reported %d wins", aCanceled, won)
	}
	for i, r := range bReqs {
		if r.Err != nil {
			t.Errorf("B request %d: %v — A's CancelAll touched tenant B", i, r.Err)
		} else if !bytes.Equal(r.Src, r.Dst) {
			t.Errorf("B request %d: corrupt payload", i)
		}
	}
	if st := a.Stats(); st.Canceled != int64(won) {
		t.Errorf("A Canceled = %d, want %d", st.Canceled, won)
	}
	if st := b.Stats(); st.Canceled != 0 {
		t.Errorf("B Canceled = %d, want 0", st.Canceled)
	}
	if err := d.AuditSlots(nil); err != nil {
		t.Error(err)
	}
}

// TestTenantCancelAllMissesReallocatedSlot pins the TOCTOU the packed
// state word closes: a slot freed by tenant A and re-submitted by tenant
// B mid-storm carries B's id in the word, so A's CancelAll CAS must
// fail against it even though the slot index once belonged to A.
func TestTenantCancelAllMissesReallocatedSlot(t *testing.T) {
	d := Open(Options{NumReqs: 4})
	defer d.Close()
	a, _ := d.OpenTenant(TenantConfig{Name: "A", SlotQuota: 4})
	b, _ := d.OpenTenant(TenantConfig{Name: "B", SlotQuota: 4})

	// Run an A request to completion so its slot returns to the free
	// list, then hand the same slot to B.
	r := d.AllocRequest()
	r.Src, r.Dst = []byte{1}, make([]byte, 1)
	if err := a.Submit(r); err != nil {
		t.Fatal(err)
	}
	rr := drainAll(t, d, 1)[0]
	d.FreeRequest(rr)

	r2 := d.AllocRequest()
	r2.Src, r2.Dst = []byte{2}, make([]byte, 1)
	r2.tenant.Store(b.id)
	r2.state.Store(packState(b.id, stPending)) // B pending, not yet queued
	if n := a.CancelAll(); n != 0 {
		t.Fatalf("A's CancelAll claimed %d of tenant B's requests", n)
	}
	if b.CancelAll() != 1 {
		t.Fatal("B's CancelAll failed to claim its own pending request")
	}
	// Restore the slot so Close doesn't trip the audit.
	r2.state.Store(stIdle)
	d.FreeRequest(r2)
}

// TestTenantQueueDepthAccounting verifies the live queued gauge: depth
// rises while the worker is parked pre-dispatch and returns to zero
// after the drain.
func TestTenantQueueDepthAccounting(t *testing.T) {
	entered := make(chan uint32, 1)
	release := make(chan struct{})
	d := Open(Options{
		NumReqs: 8,
		Chaos: &ChaosHooks{
			BeforeDispatch: func(idx uint32) {
				entered <- idx
				<-release
			},
		},
	})
	defer d.Close()
	ten, err := d.OpenTenant(TenantConfig{Name: "T", SlotQuota: 8})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	for i := 0; i < n; i++ {
		r := d.AllocRequest()
		r.Src, r.Dst = []byte{1, 2}, make([]byte, 2)
		if err := ten.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	<-entered // worker parked with one request in dispatch, rest queued
	// The parked request has been popped (depth n-1); allow either n-1 or
	// n depending on whether the pop's decrement landed.
	if depth := ten.Stats().QueueDepth; depth < int64(n-1) || depth > int64(n) {
		t.Errorf("QueueDepth = %d while parked, want %d or %d", depth, n-1, n)
	}
	close(release)
	for i := 0; i < n-1; i++ {
		<-entered
	}
	got := drainAll(t, d, n)
	for _, r := range got {
		d.FreeRequest(r)
	}
	st := ten.Stats()
	if st.QueueDepth != 0 || st.InFlight != 0 {
		t.Errorf("after drain: QueueDepth=%d InFlight=%d, want 0/0", st.QueueDepth, st.InFlight)
	}
	if st.Submitted != n || st.Completed != n {
		t.Errorf("Submitted=%d Completed=%d, want %d/%d", st.Submitted, st.Completed, n, n)
	}
}

// TestTenantBatchSubmit runs SubmitBatch through a tenant handle: every
// request is stamped with the tenant id and completes under its
// accounting.
func TestTenantBatchSubmit(t *testing.T) {
	d := Open(Options{NumReqs: 16})
	defer d.Close()
	ten, err := d.OpenTenant(TenantConfig{Name: "batch", Weight: 2, SlotQuota: 16})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	batch := make([]*Request, n)
	for i := range batch {
		r := d.AllocRequest()
		r.Src, r.Dst = bytes.Repeat([]byte{byte(i + 1)}, 256), make([]byte, 256)
		batch[i] = r
	}
	if err := ten.SubmitBatch(batch); err != nil {
		t.Fatal(err)
	}
	for _, r := range drainAll(t, d, n) {
		if r.Err != nil || !bytes.Equal(r.Src, r.Dst) {
			t.Errorf("request %d: err=%v", r.idx, r.Err)
		}
		d.FreeRequest(r)
	}
	st := ten.Stats()
	if st.Submitted != n || st.Completed != n || st.Latency.Count != n {
		t.Errorf("stats: submitted=%d completed=%d latency=%d, want %d each", st.Submitted, st.Completed, st.Latency.Count, n)
	}
	if def := d.Stats().Tenants[0]; def.Submitted != 0 {
		t.Errorf("default namespace charged %d submissions for tenant batch work", def.Submitted)
	}
}

// TestTenantWeightedThroughput is the end-to-end fairness check: two
// closed-loop backlogged tenants at weights 4 and 1 must see completed
// work in roughly that ratio while both stay saturated.
func TestTenantWeightedThroughput(t *testing.T) {
	// DRR order binds throughput only when the scheduler has a standing
	// backlog, so the pipeline downstream of it must be the bottleneck:
	// one controller, slowed per chunk, with per-tenant quotas larger
	// than the 64-deep chunk ring so dispatch backpressure reaches the
	// submission queues.
	d := Open(Options{
		NumReqs:     256,
		Controllers: 1,
		QoS:         QoSOptions{InlineThreshold: -1},
		Chaos: &ChaosHooks{
			BeforeChunkCopy: func(idx uint32, off, end int) { time.Sleep(10 * time.Microsecond) },
		},
	})
	defer d.Close()
	heavy, err := d.OpenTenant(TenantConfig{Name: "heavy", Weight: 4, SlotQuota: 96})
	if err != nil {
		t.Fatal(err)
	}
	light, err := d.OpenTenant(TenantConfig{Name: "light", Weight: 1, SlotQuota: 96})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Shared drainer: completions from both tenants funnel through the
	// one completion queue; per-tenant attribution comes from Stats.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if r := d.RetrieveCompleted(); r != nil {
				d.FreeRequest(r)
				continue
			}
			select {
			case <-stop:
				return
			default:
				d.Poll(time.Millisecond)
			}
		}
	}()
	// Closed-loop submitters: each keeps its tenant saturated at its
	// quota; ErrOverload is the backpressure signal.
	runner := func(ten *Tenant) {
		defer wg.Done()
		src := bytes.Repeat([]byte{7}, 4<<10)
		dst := make([]byte, len(src))
		for {
			select {
			case <-stop:
				return
			default:
			}
			r := d.AllocRequest()
			if r == nil {
				time.Sleep(50 * time.Microsecond)
				continue
			}
			r.Src, r.Dst = src, dst
			if err := ten.Submit(r); err != nil {
				d.FreeRequest(r)
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
	wg.Add(2)
	go runner(heavy)
	go runner(light)

	// Warm up, then measure a completion window.
	time.Sleep(50 * time.Millisecond)
	h0, l0 := heavy.Stats().Completed, light.Stats().Completed
	time.Sleep(300 * time.Millisecond)
	h1, l1 := heavy.Stats().Completed, light.Stats().Completed
	close(stop)
	wg.Wait()

	dh, dl := h1-h0, l1-l0
	if dl == 0 || dh == 0 {
		t.Fatalf("no progress in window: heavy=%d light=%d", dh, dl)
	}
	ratio := float64(dh) / float64(dl)
	if ratio < 2.0 || ratio > 8.0 {
		t.Errorf("weighted throughput ratio = %.2f (heavy %d, light %d), want ~4 (accept [2, 8])", ratio, dh, dl)
	}
}
