// Package check is the concurrency-verification harness for the
// lock-free interface: a history recorder plus Wing/Gong-style
// linearizability checker (history.go, linearize.go), a seeded
// deterministic scheduler for systematic interleaving exploration
// (sched.go), and sequential specifications for the structures the
// memif protocol is built from — the red-blue queue, the slab's
// Treiber free stack, and the uapi.Area ownership protocol (models.go).
//
// The pieces compose into one workflow:
//
//  1. spawn virtual threads on a Sched seeded with a small integer;
//  2. route the rbq scheduling hook (rbq.SetSchedHook) into the Sched so
//     every linearization-relevant step of the lock-free code becomes a
//     preemption point;
//  3. record each operation's invocation and response into a History;
//  4. after the run, Check the history against the structure's
//     sequential Model.
//
// A failing schedule is reported together with its seed; re-running the
// same test body with that seed replays the exact interleaving, because
// the scheduler is the only source of nondeterminism once the hook is
// installed.
package check

import (
	"fmt"
	"sync/atomic"
)

// Op is one completed operation in a concurrent history: an input
// (the invocation), an output (the response), and the logical times the
// two were recorded at. Times come from a single atomic counter, so the
// real-time partial order of the run is captured exactly: op A precedes
// op B iff A.Return < B.Call.
type Op struct {
	Client int
	Input  any
	Output any
	Call   int64
	Return int64
}

// History records operations from concurrently running clients without
// adding synchronization that could mask reorderings: each client owns a
// private slice, and only the logical clock is shared (a single atomic
// counter — the same linearization-point granularity the checked
// structures themselves use).
type History struct {
	clock   atomic.Int64
	clients [][]Op
}

// NewHistory returns a recorder for nClients concurrent clients,
// numbered 0..nClients-1.
func NewHistory(nClients int) *History {
	return &History{clients: make([][]Op, nClients)}
}

// Record runs fn as one operation of the given client: it stamps the
// invocation, calls fn, stamps the response, and appends the completed
// Op. fn's return value is the operation's output. Each client must
// record from a single goroutine; distinct clients may record
// concurrently.
func (h *History) Record(client int, input any, fn func() any) {
	call := h.clock.Add(1)
	out := fn()
	ret := h.clock.Add(1)
	h.clients[client] = append(h.clients[client], Op{
		Client: client, Input: input, Output: out, Call: call, Return: ret,
	})
}

// Ops flattens the per-client logs into one slice. Call only after the
// concurrent phase has finished (all recording clients joined).
func (h *History) Ops() []Op {
	var ops []Op
	for _, c := range h.clients {
		ops = append(ops, c...)
	}
	return ops
}

// Len returns the total number of recorded operations.
func (h *History) Len() int {
	n := 0
	for _, c := range h.clients {
		n += len(c)
	}
	return n
}

func (o Op) String() string {
	return fmt.Sprintf("client %d: %v -> %v [%d,%d]", o.Client, o.Input, o.Output, o.Call, o.Return)
}
