package check

import (
	"strings"
	"testing"
)

// schedTrial runs three threads that interleave appends to a shared log
// (safe: the scheduler serializes execution) and returns the log plus
// the schedule trace.
func schedTrial(t *testing.T, seed int64, cfg *SchedConfig) (string, []int) {
	t.Helper()
	var s *Sched
	if cfg != nil {
		s = NewSchedConfig(seed, *cfg)
	} else {
		s = NewSched(seed)
	}
	var log strings.Builder
	for i := 0; i < 3; i++ {
		i := i
		s.Go(func(th *Thread) {
			for j := 0; j < 5; j++ {
				log.WriteByte(byte('a' + i))
				th.Yield()
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return log.String(), s.Trace()
}

func TestSchedSameSeedSameSchedule(t *testing.T) {
	for _, seed := range []int64{1, 2, 42, 12345} {
		log1, trace1 := schedTrial(t, seed, nil)
		log2, trace2 := schedTrial(t, seed, nil)
		if log1 != log2 {
			t.Fatalf("seed %d: logs diverge: %q vs %q", seed, log1, log2)
		}
		if len(trace1) != len(trace2) {
			t.Fatalf("seed %d: trace lengths diverge", seed)
		}
		for i := range trace1 {
			if trace1[i] != trace2[i] {
				t.Fatalf("seed %d: traces diverge at step %d", seed, i)
			}
		}
	}
}

func TestSchedSeedsExploreDistinctSchedules(t *testing.T) {
	seen := map[string]bool{}
	for seed := int64(1); seed <= 20; seed++ {
		log, _ := schedTrial(t, seed, nil)
		seen[log] = true
	}
	if len(seen) < 2 {
		t.Fatalf("20 seeds produced only %d distinct interleavings", len(seen))
	}
}

func TestSchedBoundedPreemptionRunsToCompletion(t *testing.T) {
	cfg := SchedConfig{MaxPreemptions: 3}
	for seed := int64(1); seed <= 10; seed++ {
		log, _ := schedTrial(t, seed, &cfg)
		if len(log) != 15 {
			t.Fatalf("seed %d: log %q, want 15 steps", seed, log)
		}
	}
}

func TestSchedStepBudgetReportsSeed(t *testing.T) {
	s := NewSchedConfig(7, SchedConfig{MaxPreemptions: -1, MaxSteps: 100})
	s.Go(func(th *Thread) {
		for {
			th.Yield() // never terminates: the budget must trip
		}
	})
	err := s.Run()
	if err == nil {
		t.Fatal("livelocked run returned nil")
	}
	if !strings.Contains(err.Error(), "seed=7") {
		t.Fatalf("budget error does not name the seed: %v", err)
	}
}

func TestSchedThreadPanicReportsSeed(t *testing.T) {
	s := NewSched(11)
	s.Go(func(th *Thread) {
		th.Yield()
		panic("invariant violated")
	})
	s.Go(func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Yield() // abandoned when the sibling fails
		}
	})
	err := s.Run()
	if err == nil {
		t.Fatal("panicking thread returned nil")
	}
	if !strings.Contains(err.Error(), "seed=11") || !strings.Contains(err.Error(), "invariant violated") {
		t.Fatalf("error missing seed or panic value: %v", err)
	}
}

func TestYieldHookNoopOutsideRun(t *testing.T) {
	s := NewSched(1)
	hook := s.YieldHook()
	hook() // must not deadlock or panic before Run
	s.Go(func(th *Thread) { th.Yield() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	hook() // and not after either
}
